package taupsm

import (
	"strings"

	"taupsm/internal/engine"
	"taupsm/internal/types"
)

// Value is one SQL value of a query result.
type Value struct {
	inner types.Value
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.inner.IsNull() }

// Int returns the value as an int64 (0 for NULL).
func (v Value) Int() int64 { return v.inner.Int() }

// Float returns the value as a float64 (0 for NULL).
func (v Value) Float() float64 { return v.inner.Float() }

// Bool returns the value as a bool.
func (v Value) Bool() bool { return v.inner.Bool() }

// String renders the value the way a result row prints it; dates
// render as YYYY-MM-DD and NULL as "NULL".
func (v Value) String() string { return v.inner.Text() }

// Result is the outcome of executing a statement.
type Result struct {
	// Columns are the output column names (empty for non-queries).
	Columns []string
	// Rows are the result rows.
	Rows [][]Value
	// Affected is the number of rows a modification touched.
	Affected int
	// Warnings are warning-severity diagnostics the static analyzer
	// attached (routine definitions only; errors reject the statement
	// instead).
	Warnings []Diagnostic
}

func wrapResult(r *engine.Result) *Result {
	if r == nil {
		return &Result{}
	}
	out := &Result{Columns: r.Cols, Affected: r.Affected}
	for _, row := range r.Rows {
		vr := make([]Value, len(row))
		for i, v := range row {
			vr[i] = Value{inner: v}
		}
		out.Rows = append(out.Rows, vr)
	}
	return out
}

// String renders the result as a simple aligned text table.
func (r *Result) String() string {
	if len(r.Columns) == 0 {
		return "(no result set)"
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for i, s := range vals {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(s)
			for p := len(s); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	var seps []string
	for _, w := range widths {
		seps = append(seps, strings.Repeat("-", w))
	}
	writeRow(seps)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}
