package taupsm

import (
	"fmt"
	"math/rand"
	"testing"
)

// Property test for sequenced modifications: apply a random sequence of
// sequenced UPDATEs and DELETEs to a temporal table and, in parallel,
// to a brute-force per-day model (a map day -> value per key). After
// every step, the table's timeslice at each day must equal the model —
// the very definition of sequenced semantics.
func TestSequencedDMLAgainstPerDayModel(t *testing.T) {
	const horizon = 120 // days
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			db := Open()
			db.SetNow(2020, 1, 1)
			db.MustExec(`CREATE TABLE reading (sensor CHAR(5), val INTEGER) AS VALIDTIME`)

			// model[sensor][day] = value (or absent)
			sensors := []string{"s1", "s2", "s3"}
			model := map[string]map[int]int{}
			base := int64(18262) // 2020-01-01 in epoch days
			day := func(offset int) string {
				d := base + int64(offset)
				y, m, dd := civil(d)
				return fmt.Sprintf("%04d-%02d-%02d", y, m, dd)
			}

			// initial rows covering the whole horizon
			for i, s := range sensors {
				model[s] = map[int]int{}
				for d := 0; d < horizon; d++ {
					model[s][d] = i * 100
				}
				db.MustExec(fmt.Sprintf(
					`NONSEQUENCED VALIDTIME INSERT INTO reading VALUES ('%s', %d, DATE '%s', DATE '%s')`,
					s, i*100, day(0), day(horizon)))
			}

			check := func(step string) {
				res, err := db.Query(`NONSEQUENCED VALIDTIME SELECT sensor, val, begin_time, end_time FROM reading`)
				if err != nil {
					t.Fatalf("%s: %v", step, err)
				}
				got := map[string]map[int][]int{}
				for _, row := range res.Rows {
					s := row[0].String()
					v := int(row[1].Int())
					b, e := row[2].String(), row[3].String()
					for d := 0; d < horizon; d++ {
						ds := day(d)
						if b <= ds && ds < e {
							if got[s] == nil {
								got[s] = map[int][]int{}
							}
							got[s][d] = append(got[s][d], v)
						}
					}
				}
				for _, s := range sensors {
					for d := 0; d < horizon; d++ {
						want, ok := model[s][d]
						vals := got[s][d]
						if !ok {
							if len(vals) != 0 {
								t.Fatalf("%s: %s day %d: model deleted, table has %v", step, s, d, vals)
							}
							continue
						}
						if len(vals) != 1 || vals[0] != want {
							t.Fatalf("%s: %s day %d: model %d, table %v", step, s, d, want, vals)
						}
					}
				}
			}

			check("initial")
			for step := 0; step < 12; step++ {
				s := sensors[rng.Intn(len(sensors))]
				p1 := rng.Intn(horizon)
				p2 := p1 + 1 + rng.Intn(horizon-p1)
				if rng.Intn(3) == 0 {
					// sequenced delete over [p1, p2)
					db.MustExec(fmt.Sprintf(
						`VALIDTIME (DATE '%s', DATE '%s') DELETE FROM reading WHERE sensor = '%s'`,
						day(p1), day(p2), s))
					for d := p1; d < p2; d++ {
						delete(model[s], d)
					}
				} else {
					nv := rng.Intn(1000)
					db.MustExec(fmt.Sprintf(
						`VALIDTIME (DATE '%s', DATE '%s') UPDATE reading SET val = %d WHERE sensor = '%s'`,
						day(p1), day(p2), nv, s))
					for d := p1; d < p2; d++ {
						if _, ok := model[s][d]; ok {
							model[s][d] = nv
						}
					}
				}
				check(fmt.Sprintf("step %d", step))
			}
		})
	}
}

// civil converts epoch days to (y, m, d) without importing internals.
func civil(z int64) (int, int, int) {
	z += 719468
	era := z / 146097
	if z < 0 {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d := int(doy - (153*mp+2)/5 + 1)
	m := int(mp + 3)
	if mp >= 10 {
		m = int(mp - 9)
	}
	if m <= 2 {
		y++
	}
	return int(y), m, d
}
