package taupsm

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"taupsm/internal/engine"
	"taupsm/internal/sqlast"
	"taupsm/internal/stats"
	"taupsm/internal/types"
)

// This file is the stratum half of the statistics subsystem: the
// ANALYZE statement, the estimate helper feeding the §VII-F heuristic
// and EXPLAIN, and the snapshot document served by the /statistics
// telemetry endpoint. The registry itself (internal/stats) is
// maintained incrementally by the engine's DML hooks and persisted
// through WAL checkpoints.

// execAnalyze runs ANALYZE [table]: it recomputes the named table's
// (or every stored table's) statistics from the stored rows, including
// the ANALYZE-only extras — overlap-depth histogram and maximum
// overlap — and reports one summary row per table.
func (db *DB) execAnalyze(s *sqlast.AnalyzeStmt) (*Result, error) {
	reg := db.eng.TabStats
	if reg == nil {
		return nil, errors.New("taupsm: statistics are disabled")
	}
	var names []string
	if s.Table != "" {
		t := db.eng.Cat.Table(s.Table)
		if t == nil || t.Temporary {
			return nil, fmt.Errorf("table %s does not exist", s.Table)
		}
		names = []string{t.Name}
	} else {
		for _, n := range db.eng.Cat.TableNames() {
			if t := db.eng.Cat.Table(n); t != nil && !t.Temporary {
				names = append(names, n)
			}
		}
		sort.Strings(names)
	}
	res := &engine.Result{Cols: []string{
		"table_name", "rows", "distinct_points", "constant_periods", "max_overlap",
	}}
	for _, n := range names {
		t := db.eng.Cat.Table(n)
		if t == nil {
			continue
		}
		snap := reg.Analyze(t)
		res.Rows = append(res.Rows, []types.Value{
			types.NewString(snap.Name),
			types.NewInt(snap.AnalyzedRows),
			types.NewInt(snap.DistinctPoints),
			types.NewInt(snap.ConstantPeriods),
			types.NewInt(snap.MaxOverlap),
		})
	}
	return wrapResult(res), nil
}

// statsEstimate is what the registry predicts for one statement's
// temporal context; see statsEstimates.
type statsEstimate struct {
	// ConstantPeriods estimates how many constant periods MAX slicing
	// evaluates: stored endpoints strictly inside the context, plus
	// one. Exact for single-table statements (the common case); across
	// tables, endpoints shared between tables are counted per table, so
	// the estimate is an upper bound.
	ConstantPeriods int64
	// Rows estimates the stored fragments overlapping the context.
	Rows int64
}

// statsEstimates predicts a sequenced statement's slicing cost from
// the statistics registry without touching row data beyond a possible
// first-read recompute. whole marks an unbounded context (no period
// clause). Estimates exist only when every reachable table has been
// ANALYZEd — statistics-informed behavior is opted into per table, so
// a database that never runs ANALYZE decides exactly as before.
func (db *DB) statsEstimates(tables []string, whole bool, b, e int64) (statsEstimate, bool) {
	reg := db.eng.TabStats
	if reg == nil || len(tables) == 0 {
		return statsEstimate{}, false
	}
	if whole {
		b, e = math.MinInt64, math.MaxInt64
	}
	var est statsEstimate
	for _, name := range tables {
		t := db.eng.Cat.Table(name)
		if t == nil || !reg.HasAnalyzed(t) {
			return statsEstimate{}, false
		}
		est.ConstantPeriods += reg.InteriorPoints(t, b, e)
		est.Rows += reg.RowsOverlapping(t, b, e)
	}
	est.ConstantPeriods++
	return est, true
}

// noteStatementProfile folds one finished top-level statement into the
// always-on per-digest workload profile (tau_stat_statements).
func (db *DB) noteStatementProfile(stmt sqlast.Stmt, kind, strategy string, d time.Duration, failed bool) {
	reg := db.eng.TabStats
	if reg == nil {
		return
	}
	text := stmt.SQL()
	reg.NoteStatement(digestSQL(text), text, kind, strategy, d, failed)
}

// StatisticsSnapshot is the self-describing statistics document the
// /statistics telemetry endpoint serves and the REPL's \stats renders:
// per-table temporal statistics plus the workload profiles.
type StatisticsSnapshot struct {
	Tables     []stats.TableSnapshot     `json:"tables"`
	Routines   []stats.RoutineSnapshot   `json:"routines"`
	Statements []stats.StatementSnapshot `json:"statements"`
}

// Statistics returns a point-in-time snapshot of everything the
// statistics registry knows. The same data is queryable in SQL through
// the tau_stat_tables, tau_stat_routines, and tau_stat_statements
// system tables.
func (db *DB) Statistics() StatisticsSnapshot {
	reg := db.eng.TabStats
	return StatisticsSnapshot{
		Tables:     reg.TableSnapshots(db.eng.Cat),
		Routines:   reg.RoutineSnapshots(),
		Statements: reg.StatementSnapshots(),
	}
}
