package taupsm_test

// One benchmark family per evaluation artifact of the paper:
//
//	BenchmarkFig12  - runtime vs temporal context, DS1-SMALL (Fig. 12)
//	BenchmarkFig13  - runtime vs temporal context, DS1-LARGE (Fig. 13)
//	BenchmarkFig14  - runtime vs dataset size (Fig. 14)
//	BenchmarkFig15  - runtime vs data characteristics (Fig. 15)
//	BenchmarkTabLoC - translation cost for the SVII-B code-expansion table
//	BenchmarkConstantPeriods - ablation: native cp vs the Figure-8 SQL
//
// Sub-benchmarks are named query/x-axis/strategy so `go test -bench
// Fig12/q2` reproduces one series. The LARGE-dataset figures bench a
// representative query subset by default; set TAUBENCH_FULL=1 for all
// sixteen (or use `go run ./cmd/taubench -exp figNN`, which always
// sweeps everything and prints the figure's table).

import (
	"fmt"
	"os"
	"testing"

	"taupsm"
	"taupsm/internal/taubench"
)

var runnerCache = map[string]*taubench.Runner{}

func getBenchRunner(b *testing.B, spec taubench.Spec) *taubench.Runner {
	b.Helper()
	key := spec.Name + "/" + spec.Size.String()
	if r, ok := runnerCache[key]; ok {
		return r
	}
	r, err := taubench.NewRunner(spec)
	if err != nil {
		b.Fatalf("load %s: %v", key, err)
	}
	runnerCache[key] = r
	return r
}

func fullSweep() bool { return os.Getenv("TAUBENCH_FULL") != "" }

// benchQueries returns the queries to bench: all sixteen for small
// datasets or under TAUBENCH_FULL, otherwise a representative subset
// covering the paper's classes (B, A/per-period-cursor, C, collection).
func benchQueries(small bool) []taubench.Query {
	if small || fullSweep() {
		return taubench.Queries()
	}
	var out []taubench.Query
	for _, name := range []string{"q2", "q7", "q17", "q19"} {
		q, _ := taubench.QueryByName(name)
		out = append(out, q)
	}
	return out
}

func strategyName(s taupsm.Strategy) string {
	if s == taupsm.Max {
		return "MAX"
	}
	return "PERST"
}

func benchSequenced(b *testing.B, r *taubench.Runner, q taubench.Query, s taupsm.Strategy, ctx int) {
	if s == taupsm.PerStatement && !q.PerstOK {
		b.Skip("per-statement slicing does not apply (non-nested FETCH)")
	}
	var rows int
	for i := 0; i < b.N; i++ {
		m := r.RunSequenced(q, s, ctx)
		if m.Err != nil {
			b.Fatal(m.Err)
		}
		rows = m.Rows
	}
	b.ReportMetric(float64(rows), "rows")
}

func contextSweepBench(b *testing.B, spec taubench.Spec, small bool) {
	r := getBenchRunner(b, spec)
	for _, q := range benchQueries(small) {
		for _, ctx := range taubench.ContextLengths {
			for _, s := range []taupsm.Strategy{taupsm.Max, taupsm.PerStatement} {
				name := fmt.Sprintf("%s/%s/%s", q.Name, taubench.ContextLabel(ctx), strategyName(s))
				q, s, ctx := q, s, ctx
				b.Run(name, func(b *testing.B) { benchSequenced(b, r, q, s, ctx) })
			}
		}
	}
}

// BenchmarkFig12 regenerates the Figure 12 series: every query at
// every context length on DS1-SMALL under both strategies.
func BenchmarkFig12(b *testing.B) {
	contextSweepBench(b, taubench.DS1(taubench.Small), true)
}

// BenchmarkFig13 is the same sweep on DS1-LARGE.
func BenchmarkFig13(b *testing.B) {
	contextSweepBench(b, taubench.DS1(taubench.Large), false)
}

// BenchmarkFig14 regenerates the scalability series: SMALL, MEDIUM and
// LARGE at the one-month context.
func BenchmarkFig14(b *testing.B) {
	for _, size := range []taubench.Size{taubench.Small, taubench.Medium, taubench.Large} {
		r := getBenchRunner(b, taubench.DS1(size))
		for _, q := range benchQueries(size == taubench.Small) {
			for _, s := range []taupsm.Strategy{taupsm.Max, taupsm.PerStatement} {
				name := fmt.Sprintf("%s/%s/%s", q.Name, size, strategyName(s))
				q, s := q, s
				b.Run(name, func(b *testing.B) { benchSequenced(b, r, q, s, 30) })
			}
		}
	}
}

// BenchmarkFig15 regenerates the data-characteristics series: DS1
// (weekly/uniform), DS2 (weekly/Gaussian hot spots) and DS3 (daily)
// at SMALL and the one-month context.
func BenchmarkFig15(b *testing.B) {
	for _, spec := range []taubench.Spec{
		taubench.DS1(taubench.Small), taubench.DS2(taubench.Small), taubench.DS3(taubench.Small),
	} {
		r := getBenchRunner(b, spec)
		for _, q := range benchQueries(true) {
			for _, s := range []taupsm.Strategy{taupsm.Max, taupsm.PerStatement} {
				name := fmt.Sprintf("%s/%s/%s", q.Name, spec.Name, strategyName(s))
				q, s := q, s
				b.Run(name, func(b *testing.B) { benchSequenced(b, r, q, s, 30) })
			}
		}
	}
}

// BenchmarkTabLoC measures the source-to-source translation itself
// (the work behind the SVII-B code-expansion table): all sixteen
// queries through each strategy.
func BenchmarkTabLoC(b *testing.B) {
	r := getBenchRunner(b, taubench.DS1(taubench.Small))
	for _, s := range []taupsm.Strategy{taupsm.Max, taupsm.PerStatement} {
		s := s
		b.Run(strategyName(s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := taubench.CodeExpansion(r.DB); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConstantPeriods is the design-choice ablation called out in
// DESIGN.md: MAX slicing with the stratum's native constant-period
// computation versus executing the paper's Figure-8 SQL (quadratic
// self-join with NOT EXISTS).
func BenchmarkConstantPeriods(b *testing.B) {
	r := getBenchRunner(b, taubench.DS1(taubench.Small))
	q, _ := taubench.QueryByName("q2")
	b.Run("native", func(b *testing.B) {
		r.DB.UseFigure8SQL = false
		for i := 0; i < b.N; i++ {
			if m := r.RunSequenced(q, taupsm.Max, 30); m.Err != nil {
				b.Fatal(m.Err)
			}
		}
	})
	b.Run("figure8-sql", func(b *testing.B) {
		r.DB.UseFigure8SQL = true
		defer func() { r.DB.UseFigure8SQL = false }()
		for i := 0; i < b.N; i++ {
			if m := r.RunSequenced(q, taupsm.Max, 30); m.Err != nil {
				b.Fatal(m.Err)
			}
		}
	})
}

// BenchmarkCostOrdering is the second design-choice ablation: cheap
// predicates evaluated before stored-routine invocations (on) versus
// textual order (off). With ordering off, MAX-sliced queries invoke the
// routine once per candidate tuple rather than once per satisfying
// tuple.
func BenchmarkCostOrdering(b *testing.B) {
	r := getBenchRunner(b, taubench.DS1(taubench.Small))
	q, _ := taubench.QueryByName("q2")
	for _, off := range []bool{false, true} {
		name := "on"
		if off {
			name = "off"
		}
		off := off
		b.Run(name, func(b *testing.B) {
			r.DB.Engine().DisableCostOrdering = off
			defer func() { r.DB.Engine().DisableCostOrdering = false }()
			for i := 0; i < b.N; i++ {
				if m := r.RunSequenced(q, taupsm.Max, 30); m.Err != nil {
					b.Fatal(m.Err)
				}
			}
		})
	}
}

// BenchmarkHashIndexes ablates the lazily built hash indexes: equality
// probes inside stored functions degrade to full scans without them.
func BenchmarkHashIndexes(b *testing.B) {
	r := getBenchRunner(b, taubench.DS1(taubench.Small))
	q, _ := taubench.QueryByName("q2")
	for _, off := range []bool{false, true} {
		name := "on"
		if off {
			name = "off"
		}
		off := off
		b.Run(name, func(b *testing.B) {
			r.DB.Engine().DisableIndexes = off
			defer func() { r.DB.Engine().DisableIndexes = false }()
			for i := 0; i < b.N; i++ {
				if m := r.RunSequenced(q, taupsm.Max, 30); m.Err != nil {
					b.Fatal(m.Err)
				}
			}
		})
	}
}

// BenchmarkBatchedExecution ablates the two batched-execution features
// together and separately: the shared prepared plan (source relations,
// join hash tables and sorted spans reused across fragment executions)
// and the sweep-line interval join. The one-year context gives the
// sweep's cost model enough constant periods to choose it; q7 joins
// three temporal tables, so the plan caches several relations.
func BenchmarkBatchedExecution(b *testing.B) {
	r := getBenchRunner(b, taubench.DS1(taubench.Small))
	q, _ := taubench.QueryByName("q7")
	eng := r.DB.Engine()
	for _, cfg := range []struct {
		name                 string
		noPlanReuse, noSweep bool
	}{
		{"batched", false, false},
		{"no-plan-reuse", true, false},
		{"no-sweep", false, true},
		{"unbatched", true, true},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			eng.DisablePlanReuse, eng.DisableSweepJoin = cfg.noPlanReuse, cfg.noSweep
			defer func() { eng.DisablePlanReuse, eng.DisableSweepJoin = false, false }()
			for i := 0; i < b.N; i++ {
				if m := r.RunSequenced(q, taupsm.Max, 365); m.Err != nil {
					b.Fatal(m.Err)
				}
			}
		})
	}
}
