package taupsm_test

// Differential recovery test: the full 16-query benchmark corpus must
// produce identical results on an in-memory database and on a
// persistent database that was loaded, closed, and recovered from its
// snapshot + WAL — under both sequenced slicing strategies. Recovery
// rebuilds tables, views, and routines through the effect log, so any
// drift in what the log captures (a missed column flag, a routine that
// re-renders differently, a row out of order) surfaces here as a
// result mismatch.

import (
	"testing"

	"taupsm"
	"taupsm/internal/enginetest"
	"taupsm/internal/taubench"
	"taupsm/internal/wal"
)

func TestDifferentialRecoveryCorpus(t *testing.T) {
	spec, err := taubench.SpecByName("DS1", taubench.Small)
	if err != nil {
		t.Fatal(err)
	}

	mem := taupsm.Open()
	enginetest.LoadCorpus(t, mem, spec)

	fs := wal.NewMemFS()
	per, err := taupsm.OpenFS(fs)
	if err != nil {
		t.Fatal(err)
	}
	enginetest.LoadCorpus(t, per, spec)
	// The bulk loader writes rows straight into storage (bypassing the
	// statement path and so the WAL); checkpoint folds them into the
	// snapshot before the simulated crash.
	if err := per.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	per.Close()

	rec, err := taupsm.OpenFS(fs.CrashImage())
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer rec.Close()
	rec.SetNow(2011, 1, 1)

	queries := 0
	for _, q := range taubench.Queries() {
		sql := taubench.SequencedSQL(q, 30)
		for _, strat := range []taupsm.Strategy{taupsm.Max, taupsm.PerStatement} {
			if strat == taupsm.PerStatement && !q.PerstOK {
				continue
			}
			mem.SetStrategy(strat)
			rec.SetStrategy(strat)
			want, err := mem.Query(sql)
			if err != nil {
				t.Fatalf("%s strategy %v in-memory: %v", q.Name, strat, err)
			}
			got, err := rec.Query(sql)
			if err != nil {
				t.Fatalf("%s strategy %v recovered: %v", q.Name, strat, err)
			}
			if w, g := enginetest.SortedRows(want), enginetest.SortedRows(got); w != g {
				t.Errorf("%s strategy %v: recovered database diverges\n--- in-memory\n%s\n--- recovered\n%s",
					q.Name, strat, w, g)
			}
			queries++
		}
	}
	if queries < 16 {
		t.Fatalf("corpus ran only %d query/strategy pairs", queries)
	}
	t.Logf("differential recovery: %d query/strategy pairs agree", queries)
}
