package taupsm_test

import (
	"fmt"

	"taupsm"
)

// The paper's running example: a current query through a stored
// function, then its sequenced variant — the only change is the
// prepended VALIDTIME.
func Example() {
	db := taupsm.Open()
	db.SetNow(2010, 6, 15)
	db.MustExec(`
		CREATE TABLE author (author_id CHAR(10), first_name CHAR(50)) AS VALIDTIME;
		NONSEQUENCED VALIDTIME INSERT INTO author VALUES
		  ('a1', 'Ben',      DATE '2010-01-01', DATE '2010-07-01'),
		  ('a1', 'Benjamin', DATE '2010-07-01', DATE '2011-01-01');
		CREATE FUNCTION get_author_name (aid CHAR(10))
		RETURNS CHAR(50)
		READS SQL DATA
		LANGUAGE SQL
		BEGIN
		  DECLARE fname CHAR(50);
		  SET fname = (SELECT first_name FROM author WHERE author_id = aid);
		  RETURN fname;
		END;
	`)

	cur := db.MustExec(`SELECT DISTINCT get_author_name('a1') AS name FROM author`)
	fmt.Println("now:", cur.Rows[0][0])

	seq := db.MustExec(`VALIDTIME SELECT DISTINCT get_author_name('a1') AS name FROM author`)
	for _, row := range seq.Rows {
		fmt.Printf("%s to %s: %s\n", row[0], row[1], row[2])
	}
	// Output:
	// now: Ben
	// 2010-01-01 to 2010-07-01: Ben
	// 2010-07-01 to 2011-01-01: Benjamin
}

// Translating without executing: the stratum as a source-to-source
// compiler, showing the maximally-fragmented output's key pieces.
func ExampleDB_Translate() {
	db := taupsm.Open()
	db.MustExec(`CREATE TABLE item (id CHAR(10), title CHAR(100)) AS VALIDTIME`)

	out, err := db.Translate(
		`VALIDTIME (DATE '2010-01-01', DATE '2011-01-01') SELECT title FROM item`,
		taupsm.Max)
	if err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output:
	// DROP TABLE IF EXISTS taupsm_ts;
	// DROP TABLE IF EXISTS taupsm_cp;
	// CREATE TEMPORARY TABLE taupsm_ts (time_point DATE);
	// INSERT INTO taupsm_ts SELECT begin_time AS time_point FROM item UNION SELECT end_time AS time_point FROM item UNION VALUES (DATE '2010-01-01'), (DATE '2011-01-01');
	// CREATE TEMPORARY TABLE taupsm_cp AS (SELECT ts1.time_point AS begin_time, ts2.time_point AS end_time FROM taupsm_ts AS ts1, taupsm_ts AS ts2 WHERE ts1.time_point < ts2.time_point AND DATE '2010-01-01' <= ts1.time_point AND ts1.time_point < DATE '2011-01-01' AND ts2.time_point <= DATE '2011-01-01' AND NOT EXISTS (SELECT time_point FROM taupsm_ts AS ts3 WHERE ts1.time_point < ts3.time_point AND ts3.time_point < ts2.time_point)) WITH DATA;
	// SELECT cp.begin_time AS begin_time, cp.end_time AS end_time, title FROM taupsm_cp AS cp, item WHERE item.begin_time <= cp.begin_time AND cp.begin_time < item.end_time;
	// DROP TABLE IF EXISTS taupsm_ts;
	// DROP TABLE IF EXISTS taupsm_cp;
}

// Sequenced modifications patch exactly the stated period.
func ExampleDB_Exec_sequencedUpdate() {
	db := taupsm.Open()
	db.SetNow(2024, 1, 1)
	db.MustExec(`
		CREATE TABLE salary (emp CHAR(10), amount INTEGER) AS VALIDTIME;
		NONSEQUENCED VALIDTIME INSERT INTO salary VALUES
		  ('grace', 90, DATE '2024-01-01', DATE '2025-01-01');
		VALIDTIME (DATE '2024-06-01', DATE '2024-09-01')
		UPDATE salary SET amount = 95 WHERE emp = 'grace';
	`)
	res := db.MustExec(`NONSEQUENCED VALIDTIME
		SELECT amount, begin_time, end_time FROM salary ORDER BY begin_time`)
	for _, row := range res.Rows {
		fmt.Printf("%s [%s, %s)\n", row[0], row[1], row[2])
	}
	// Output:
	// 90 [2024-01-01, 2024-06-01)
	// 95 [2024-06-01, 2024-09-01)
	// 90 [2024-09-01, 2025-01-01)
}
