// Package taupsm is a Temporal SQL/PSM database: an in-memory SQL
// engine with stored procedures and functions (SQL/PSM) fronted by a
// stratum that implements the SQL/Temporal statement modifiers
// VALIDTIME and NONSEQUENCED VALIDTIME for queries, modifications, and
// — the contribution of the underlying paper — stored routines.
//
// It reproduces "Temporal Support for Persistent Stored Modules"
// (Snodgrass, Gao, Zhang, Thomas; ICDE 2012): statements without a
// temporal modifier get current semantics (temporal upward
// compatibility), VALIDTIME statements get sequenced semantics
// implemented by maximally-fragmented or per-statement slicing, and
// NONSEQUENCED VALIDTIME exposes the period timestamps as ordinary
// columns.
//
// Quick start:
//
//	db := taupsm.Open()
//	db.MustExec(`CREATE TABLE author (author_id CHAR(10), first_name CHAR(50)) AS VALIDTIME`)
//	db.MustExec(`INSERT INTO author VALUES ('a1', 'Ben', DATE '2010-01-01', DATE '2010-06-01')`)
//	res, err := db.Query(`VALIDTIME SELECT first_name FROM author`)
package taupsm

import (
	"errors"
	"fmt"
	"strings"

	"taupsm/internal/core"
	"taupsm/internal/engine"
	"taupsm/internal/sqlast"
	"taupsm/internal/sqlparser"
	"taupsm/internal/storage"
	"taupsm/internal/temporal"
	"taupsm/internal/types"
)

// Strategy selects the sequenced slicing strategy.
type Strategy = core.Strategy

// Slicing strategies. Auto applies the paper's §VII-F heuristic.
const (
	Auto         = core.StrategyAuto
	Max          = core.StrategyMax
	PerStatement = core.StrategyPerStatement
)

// ErrNotTransformable reports that per-statement slicing cannot handle
// a statement; use Max instead (Auto falls back automatically).
var ErrNotTransformable = core.ErrNotTransformable

// DB is a temporal database: the stratum plus the conventional engine.
type DB struct {
	eng      *engine.DB
	tr       *core.Translator
	strategy Strategy

	// UseFigure8SQL, when true, computes the constant periods of MAX
	// slicing by executing the paper's Figure-8 SQL instead of the
	// stratum's native computation. Slower; useful to validate the two
	// paths against each other.
	UseFigure8SQL bool

	// CoalesceResults, when true, merges value-equivalent rows with
	// adjacent or overlapping periods in sequenced query results,
	// returning maximal periods. Off by default: the raw fragmentation
	// is what the slicing strategies naturally produce (and what the
	// benchmark measures); snapshot equivalence holds either way.
	CoalesceResults bool
}

// Open creates an empty temporal database.
func Open() *DB {
	eng := engine.New()
	db := &DB{eng: eng, strategy: Auto}
	db.tr = core.NewTranslator(&schemaInfo{cat: eng.Cat})
	return db
}

// SetStrategy fixes the slicing strategy for sequenced statements;
// Auto (the default) uses the §VII-F heuristic with fallback to MAX
// when per-statement slicing does not apply.
func (db *DB) SetStrategy(s Strategy) { db.strategy = s }

// Strategy returns the current strategy setting.
func (db *DB) Strategy() Strategy { return db.strategy }

// SetNow fixes CURRENT_DATE, making current-semantics results
// deterministic.
func (db *DB) SetNow(year, month, day int) {
	db.eng.Now = types.MustDate(year, month, day)
}

// Engine exposes the underlying conventional engine (statistics,
// direct conventional execution). Intended for benchmarks and tests.
func (db *DB) Engine() *engine.DB { return db.eng }

// Exec parses and executes a Temporal SQL/PSM script, returning the
// result of the last statement.
func (db *DB) Exec(src string) (*Result, error) {
	stmts, err := sqlparser.ParseScript(src)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, s := range stmts {
		last, err = db.ExecParsed(s)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// MustExec is Exec that panics on error; for setup code and examples.
func (db *DB) MustExec(src string) *Result {
	res, err := db.Exec(src)
	if err != nil {
		panic(err)
	}
	return res
}

// Query executes a single statement and returns its rows.
func (db *DB) Query(src string) (*Result, error) {
	stmt, err := sqlparser.ParseStatement(src)
	if err != nil {
		return nil, err
	}
	return db.ExecParsed(stmt)
}

// ExecParsed translates and executes one parsed statement.
func (db *DB) ExecParsed(stmt sqlast.Stmt) (*Result, error) {
	t, err := db.translateStmt(stmt)
	if err != nil {
		return nil, err
	}
	res, err := db.runTranslation(t)
	if err != nil {
		return nil, err
	}
	if db.CoalesceResults && isSequencedQueryResult(stmt, res) {
		res = coalesceResult(res)
	}
	return wrapResult(res), nil
}

// isSequencedQueryResult reports whether res is the row set of a
// sequenced query (leading begin_time/end_time columns).
func isSequencedQueryResult(stmt sqlast.Stmt, res *engine.Result) bool {
	ts, ok := stmt.(*sqlast.TemporalStmt)
	if !ok || ts.Mod != sqlast.ModSequenced || res == nil || len(res.Cols) < 2 {
		return false
	}
	return strings.EqualFold(res.Cols[0], "begin_time") && strings.EqualFold(res.Cols[1], "end_time")
}

// coalesceResult merges value-equivalent rows with adjacent or
// overlapping periods into maximal periods.
func coalesceResult(res *engine.Result) *engine.Result {
	type keyed struct {
		row  []types.Value
		key  string
		used bool
	}
	rows := make([]keyed, 0, len(res.Rows))
	byKey := map[string][]*keyed{}
	for _, r := range res.Rows {
		var b strings.Builder
		for _, v := range r[2:] {
			b.WriteString(v.HashKey())
			b.WriteByte('|')
		}
		rows = append(rows, keyed{row: r, key: b.String()})
	}
	for i := range rows {
		byKey[rows[i].key] = append(byKey[rows[i].key], &rows[i])
	}
	out := &engine.Result{Cols: res.Cols, Affected: res.Affected}
	for i := range rows {
		if rows[i].used {
			continue
		}
		group := byKey[rows[i].key]
		// gather periods of this value group, coalesce, emit
		trs := make([]temporal.TimestampedRow, 0, len(group))
		for _, g := range group {
			g.used = true
			trs = append(trs, temporal.TimestampedRow{
				Key:    "",
				Period: temporal.Period{Begin: g.row[0].I, End: g.row[1].I},
			})
		}
		for _, tr := range temporal.Coalesce(trs) {
			nr := append([]types.Value{
				types.NewDate(tr.Period.Begin), types.NewDate(tr.Period.End),
			}, rows[i].row[2:]...)
			out.Rows = append(out.Rows, nr)
		}
	}
	return out
}

// translateStmt picks the strategy (running the heuristic for Auto)
// and translates.
func (db *DB) translateStmt(stmt sqlast.Stmt) (*core.Translation, error) {
	ts, isTemporal := stmt.(*sqlast.TemporalStmt)
	if !isTemporal || ts.Mod != sqlast.ModSequenced {
		return db.tr.Translate(stmt, db.strategy)
	}
	strategy := db.strategy
	if strategy == Auto {
		strategy = db.chooseStrategy(ts)
	}
	t, err := db.tr.Translate(stmt, strategy)
	if err != nil && errors.Is(err, core.ErrNotTransformable) && strategy == PerStatement && db.strategy == Auto {
		return db.tr.Translate(stmt, Max)
	}
	return t, err
}

// chooseStrategy applies the §VII-F heuristic to a sequenced statement.
func (db *DB) chooseStrategy(ts *sqlast.TemporalStmt) Strategy {
	f := core.Features{PerstTransformable: true}
	begin, end := int64(0), int64(0)
	if ts.Period != nil {
		if bv, err := db.eng.EvalConstExpr(ts.Period.Begin); err == nil {
			begin = bv.Int()
		}
		if ev, err := db.eng.EvalConstExpr(ts.Period.End); err == nil {
			end = ev.Int()
		}
		f.ContextDays = end - begin
	} else {
		f.ContextDays = 1 << 30 // whole timeline
	}
	// Probe the PERST translation for applicability and per-period
	// cursor use, and count the reachable temporal rows.
	t, err := db.tr.Translate(&sqlast.TemporalStmt{Mod: sqlast.ModSequenced, Period: ts.Period, Body: ts.Body}, PerStatement)
	if err != nil {
		if errors.Is(err, core.ErrNotTransformable) {
			f.PerstTransformable = false
			return core.Choose(f)
		}
		return Max
	}
	f.UsesPerPeriodCursor = t.UsesPerPeriodCursor
	f.TemporalRows = db.temporalRowCount()
	return core.Choose(f)
}

// temporalRowCount is the heuristic's "data set size" proxy: total
// rows across all temporal tables.
func (db *DB) temporalRowCount() int {
	n := 0
	for _, name := range db.eng.Cat.TableNames() {
		if t := db.eng.Cat.Table(name); t != nil && (t.ValidTime || t.TransactionTime) {
			n += len(t.Rows)
		}
	}
	return n
}

// runTranslation registers routines, runs setup (natively computing
// constant periods for MAX unless UseFigure8SQL), executes the main
// statement, and tears down.
func (db *DB) runTranslation(t *core.Translation) (res *engine.Result, err error) {
	for _, r := range t.Routines {
		if _, err := db.eng.ExecStmt(r); err != nil {
			return nil, fmt.Errorf("registering transformed routine: %w", err)
		}
	}
	if len(t.Teardown) > 0 {
		defer func() {
			for _, s := range t.Teardown {
				if _, terr := db.eng.ExecStmt(s); terr != nil && err == nil {
					err = terr
				}
			}
		}()
	}
	if t.NeedsConstantPeriods && !db.UseFigure8SQL {
		if err := db.nativeConstantPeriods(t); err != nil {
			return nil, err
		}
	} else {
		for _, s := range t.Setup {
			if _, err := db.eng.ExecStmt(s); err != nil {
				return nil, fmt.Errorf("translation setup: %w", err)
			}
		}
	}
	if t.Main == nil {
		return &engine.Result{}, nil
	}
	return db.eng.ExecStmt(t.Main)
}

// nativeConstantPeriods materializes the taupsm_cp table directly from
// the storage layer: collect every begin/end instant of the reachable
// temporal tables, clamp to the context, and emit adjacent pairs. This
// is semantically identical to executing the Figure-8 SQL (a test
// proves it) but linear instead of a quadratic self-join.
func (db *DB) nativeConstantPeriods(t *core.Translation) error {
	bv, err := db.eng.EvalConstExpr(t.ContextBegin)
	if err != nil {
		return err
	}
	ev, err := db.eng.EvalConstExpr(t.ContextEnd)
	if err != nil {
		return err
	}
	ctxPeriod := temporal.Period{Begin: bv.Int(), End: ev.Int()}

	var points []int64
	for _, tn := range t.TemporalTables {
		tab := db.eng.Cat.Table(tn)
		if tab == nil {
			continue
		}
		bc, ec := tab.BeginCol(), tab.EndCol()
		for _, row := range tab.Rows {
			points = append(points, row[bc].I, row[ec].I)
		}
	}
	periods := temporal.ConstantPeriods(points, ctxPeriod)

	for _, name := range []string{"taupsm_ts", "taupsm_cp"} {
		db.eng.Cat.DropTable(name)
		tsTab := storage.NewTable(name, storage.NewSchema([]storage.Column{
			{Name: "time_point", Type: sqlast.TypeName{Base: "DATE"}},
		}))
		if name == "taupsm_cp" {
			tsTab = storage.NewTable(name, storage.NewSchema([]storage.Column{
				{Name: "begin_time", Type: sqlast.TypeName{Base: "DATE"}},
				{Name: "end_time", Type: sqlast.TypeName{Base: "DATE"}},
			}))
			for _, p := range periods {
				if err := tsTab.Insert([]types.Value{types.NewDate(p.Begin), types.NewDate(p.End)}); err != nil {
					return err
				}
			}
		}
		tsTab.Temporary = true
		db.eng.Cat.PutTable(tsTab)
	}
	return nil
}

// Translate performs the pure source-to-source transformation: it
// parses one Temporal SQL/PSM statement and returns the conventional
// SQL/PSM script it compiles to, without executing anything.
func (db *DB) Translate(src string, strategy Strategy) (string, error) {
	stmt, err := sqlparser.ParseStatement(src)
	if err != nil {
		return "", err
	}
	t, err := db.tr.Translate(stmt, strategy)
	if err != nil {
		return "", err
	}
	return t.SQL(), nil
}

// TranslateStmt is Translate over a parsed statement, returning the
// structured translation.
func (db *DB) TranslateStmt(stmt sqlast.Stmt, strategy Strategy) (*core.Translation, error) {
	return db.tr.Translate(stmt, strategy)
}

// schemaInfo adapts the engine catalog to the translator.
type schemaInfo struct {
	cat *storage.Catalog
}

func (si *schemaInfo) IsTemporalTable(name string) bool {
	t := si.cat.Table(name)
	return t != nil && (t.ValidTime || t.TransactionTime)
}

func (si *schemaInfo) IsTransactionTable(name string) bool {
	t := si.cat.Table(name)
	return t != nil && t.TransactionTime
}

func (si *schemaInfo) IsTable(name string) bool {
	return si.cat.Table(name) != nil || si.cat.View(name) != nil
}

func (si *schemaInfo) Function(name string) *sqlast.CreateFunctionStmt {
	if r := si.cat.Routine(name); r != nil && r.Kind == storage.KindFunction {
		return r.Fn
	}
	return nil
}

func (si *schemaInfo) Procedure(name string) *sqlast.CreateProcedureStmt {
	if r := si.cat.Routine(name); r != nil && r.Kind == storage.KindProcedure {
		return r.Proc
	}
	return nil
}

func (si *schemaInfo) TableColumns(name string) []string {
	if t := si.cat.Table(name); t != nil {
		return t.Schema.Names()
	}
	if v := si.cat.View(name); v != nil {
		return v.Cols
	}
	return nil
}

var _ core.SchemaInfo = (*schemaInfo)(nil)
