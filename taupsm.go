// Package taupsm is a Temporal SQL/PSM database: an in-memory SQL
// engine with stored procedures and functions (SQL/PSM) fronted by a
// stratum that implements the SQL/Temporal statement modifiers
// VALIDTIME and NONSEQUENCED VALIDTIME for queries, modifications, and
// — the contribution of the underlying paper — stored routines.
//
// It reproduces "Temporal Support for Persistent Stored Modules"
// (Snodgrass, Gao, Zhang, Thomas; ICDE 2012): statements without a
// temporal modifier get current semantics (temporal upward
// compatibility), VALIDTIME statements get sequenced semantics
// implemented by maximally-fragmented or per-statement slicing, and
// NONSEQUENCED VALIDTIME exposes the period timestamps as ordinary
// columns.
//
// Quick start:
//
//	db := taupsm.Open()
//	db.MustExec(`CREATE TABLE author (author_id CHAR(10), first_name CHAR(50)) AS VALIDTIME`)
//	db.MustExec(`NONSEQUENCED VALIDTIME INSERT INTO author VALUES ('a1', 'Ben', DATE '2010-01-01', DATE '2010-06-01')`)
//	res, err := db.Query(`VALIDTIME SELECT first_name FROM author`)
//
// Open creates an in-memory database; OpenDir creates one whose
// committed state persists in a data directory (write-ahead log plus
// snapshots) and survives restarts.
package taupsm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"taupsm/internal/check"
	"taupsm/internal/core"
	"taupsm/internal/engine"
	"taupsm/internal/obs"
	"taupsm/internal/proc"
	"taupsm/internal/sqlast"
	"taupsm/internal/sqlparser"
	"taupsm/internal/stats"
	"taupsm/internal/storage"
	"taupsm/internal/temporal"
	"taupsm/internal/types"
	"taupsm/internal/wal"
)

// Strategy selects the sequenced slicing strategy.
type Strategy = core.Strategy

// Slicing strategies. Auto applies the paper's §VII-F heuristic.
const (
	Auto         = core.StrategyAuto
	Max          = core.StrategyMax
	PerStatement = core.StrategyPerStatement
)

// ErrNotTransformable reports that per-statement slicing cannot handle
// a statement; use Max instead (Auto falls back automatically).
var ErrNotTransformable = core.ErrNotTransformable

// DB is a temporal database: the stratum plus the conventional engine.
type DB struct {
	eng      *engine.DB
	tr       *core.Translator
	strategy Strategy

	// tracer receives spans and events from the stratum and (shared)
	// from the engine; nil means tracing is off and every
	// instrumentation site reduces to one pointer comparison.
	tracer obs.Tracer
	// metrics is the always-on registry; sm caches its hot handles.
	metrics *obs.Metrics
	sm      stratumMetrics

	// ring buffers recently captured spans for /traces and the REPL's
	// \trace; sampleN/sampleCtr implement every-Nth-statement capture
	// into it (0 = off, the default). See trace.go.
	ring      *obs.Ring
	sampleN   atomic.Int64
	sampleCtr atomic.Uint64

	// procs is the always-on in-flight statement registry: every user
	// statement registers a process entry whose progress counters the
	// engine and the parallel workers update, and which SHOW
	// PROCESSLIST, tau_stat_activity, the REPL and /processlist read
	// live. KILL works through it. See process.go.
	procs *proc.Registry

	// slowW/slowMin configure the structured slow-query log; slowMu
	// serializes entry writes so concurrent statements never interleave
	// JSON lines. See slowlog.go.
	slowMu  sync.Mutex
	slowW   io.Writer
	slowMin time.Duration

	// UseFigure8SQL, when true, computes the constant periods of MAX
	// slicing by executing the paper's Figure-8 SQL instead of the
	// stratum's native computation. Slower; useful to validate the two
	// paths against each other.
	UseFigure8SQL bool

	// CoalesceResults, when true, merges value-equivalent rows with
	// adjacent or overlapping periods in sequenced query results,
	// returning maximal periods. Off by default: the raw fragmentation
	// is what the slicing strategies naturally produce (and what the
	// benchmark measures); snapshot equivalence holds either way.
	CoalesceResults bool

	// mu guards the caches below, the parallelism setting, and the
	// merge of per-statement engine journals into eng.Stats. Statements
	// execute on engine sessions, so any number of goroutines may call
	// Query concurrently; writes (DML/DDL) still need external
	// serialization against concurrent readers.
	mu         sync.Mutex
	par        int
	parseCache map[string][]sqlast.Stmt
	tcache     map[string]*translationEntry
	cpcache    map[string]*cpEntry
	// lintCache keyed by statement text serves repeated static analysis
	// (EXPLAIN's lint section, re-executed statements) for one catalog
	// version; any catalog-shape change wipes it wholesale.
	lintCache  map[string][]Diagnostic
	lintCacheV int64

	// lastFallbackNote describes the most recent PERST→MAX fallback
	// and whether the static analyzer predicted it; see
	// LastFallbackNote.
	lastFallbackNote string

	// lastTrace/lastDur describe the most recent statement for
	// LastStatement (the REPL's \timing and \trace); guarded by mu.
	lastTrace obs.TraceID
	lastDur   time.Duration

	// dur is the write-ahead log of a persistent database (nil for
	// in-memory databases); recovery describes what the last OpenDir /
	// OpenFS reconstructed. See durability.go.
	dur      *wal.Store
	recovery *wal.RecoveryInfo
}

// Open creates an empty in-memory temporal database. For a durable
// database backed by a data directory, see OpenDir.
func Open() *DB {
	return newDB(engine.New(), obs.NewMetrics())
}

// newDB assembles a stratum over an engine (whose catalog may have
// been recovered from a snapshot + WAL) and a metrics registry.
func newDB(eng *engine.DB, metrics *obs.Metrics) *DB {
	db := &DB{
		eng:        eng,
		strategy:   Auto,
		metrics:    metrics,
		par:        runtime.GOMAXPROCS(0),
		parseCache: map[string][]sqlast.Stmt{},
		tcache:     map[string]*translationEntry{},
		cpcache:    map[string]*cpEntry{},
		lintCache:  map[string][]Diagnostic{},
		ring:       obs.NewRing(0),
		procs:      proc.NewRegistry(),
	}
	eng.Procs = db.procs
	db.sm = newStratumMetrics(db.metrics)
	db.sm.parWorkers.Set(int64(db.par))
	eng.Metrics = db.metrics
	if eng.TabStats == nil {
		// In-memory databases get a fresh registry; persistent ones
		// arrive with the registry the WAL store recovered (OpenFS).
		eng.TabStats = stats.NewRegistry()
	}
	db.tr = core.NewTranslator(&schemaInfo{cat: eng.Cat})
	return db
}

// SetParallelism sets the worker-pool size used to evaluate the
// constant-period fragments of MAX-sliced sequenced queries
// concurrently. The default is GOMAXPROCS. n <= 1 disables parallel
// evaluation. Tracing no longer forces serial evaluation: each worker
// emits its own stratum.worker span, and span parent/trace IDs carry
// the structure regardless of delivery order.
func (db *DB) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	db.mu.Lock()
	db.par = n
	db.mu.Unlock()
	db.sm.parWorkers.Set(int64(n))
}

// Parallelism returns the current worker-pool size.
func (db *DB) Parallelism() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.par
}

// SetTracer attaches (or, with nil, detaches) a tracer receiving spans
// and events from every layer: stratum statement phases, strategy
// decisions, engine query evaluations and routine invocations. A
// tracer also enables the detailed metrics that require timing or
// extra bookkeeping (engine.routine_ns, stratum.fragments). Use
// obs.MultiTracer to fan out to several sinks.
func (db *DB) SetTracer(t obs.Tracer) {
	db.tracer = t
	db.eng.Tracer = t
}

// Tracer returns the attached tracer (nil when tracing is off).
func (db *DB) Tracer() obs.Tracer { return db.tracer }

// Metrics returns the database's metrics registry: atomic counters,
// gauges and latency histograms covering the stratum (statement kinds,
// strategy decisions, constant periods) and the engine (rows scanned
// and returned, routine invocations). Render it with String().
func (db *DB) Metrics() *obs.Metrics { return db.metrics }

// stratumMetrics caches the registry handles the stratum updates on
// every statement, so the hot path never takes the registry lock.
type stratumMetrics struct {
	statements    *obs.Counter
	kind          map[string]*obs.Counter
	explain       *obs.Counter
	strategyMax   *obs.Counter
	strategyPerst *obs.Counter
	autoDecisions *obs.Counter
	autoReason    map[core.Reason]*obs.Counter
	perstFallback *obs.Counter
	cpLast        *obs.Gauge
	cpTotal       *obs.Counter
	fragLast      *obs.Gauge
	fragTotal     *obs.Counter
	parseNS       *obs.Histogram
	translateNS   *obs.Histogram
	executeNS     *obs.Histogram

	transHits   *obs.Counter
	transMisses *obs.Counter
	cpHits      *obs.Counter
	cpMisses    *obs.Counter
	parStmts    *obs.Counter
	parFrags    *obs.Counter
	parWorkers  *obs.Gauge

	lintRuns *obs.Counter
	lintHits *obs.Counter

	engRowsScanned    *obs.Counter
	engRowsReturned   *obs.Counter
	engRoutineCalls   *obs.Counter
	engStatements     *obs.Counter
	engLogWrites      *obs.Counter
	engIntervalProbes *obs.Counter
	engPlanReuseHits  *obs.Counter
	engSweepJoins     *obs.Counter
}

func newStratumMetrics(m *obs.Metrics) stratumMetrics {
	sm := stratumMetrics{
		statements: m.Counter("stratum.statements_total"),
		kind: map[string]*obs.Counter{
			"current":      m.Counter("stratum.statements.current_total"),
			"sequenced":    m.Counter("stratum.statements.sequenced_total"),
			"nonsequenced": m.Counter("stratum.statements.nonsequenced_total"),
		},
		explain:       m.Counter("stratum.explain_total"),
		strategyMax:   m.Counter("stratum.strategy.max_total"),
		strategyPerst: m.Counter("stratum.strategy.perst_total"),
		autoDecisions: m.Counter("stratum.auto.decisions_total"),
		autoReason:    map[core.Reason]*obs.Counter{},
		perstFallback: m.Counter("stratum.perst_fallback_total"),
		cpLast:        m.Gauge("stratum.constant_periods"),
		cpTotal:       m.Counter("stratum.constant_periods_total"),
		fragLast:      m.Gauge("stratum.fragments"),
		fragTotal:     m.Counter("stratum.fragments_total"),
		parseNS:       m.Histogram("stratum.parse_ns"),
		translateNS:   m.Histogram("stratum.translate_ns"),
		executeNS:     m.Histogram("stratum.execute_ns"),

		transHits:   m.Counter("stratum.cache.translation_hits_total"),
		transMisses: m.Counter("stratum.cache.translation_misses_total"),
		cpHits:      m.Counter("stratum.cache.cp_hits_total"),
		cpMisses:    m.Counter("stratum.cache.cp_misses_total"),
		parStmts:    m.Counter("stratum.parallel.statements_total"),
		parFrags:    m.Counter("stratum.parallel.fragments_total"),
		parWorkers:  m.Gauge("stratum.parallel.workers"),

		lintRuns: m.Counter("stratum.lint.analysis_runs_total"),
		lintHits: m.Counter("stratum.lint.cache_hits_total"),

		engRowsScanned:    m.Counter("engine.rows_scanned_total"),
		engRowsReturned:   m.Counter("engine.rows_returned_total"),
		engRoutineCalls:   m.Counter("engine.routine_calls_total"),
		engStatements:     m.Counter("engine.statements_total"),
		engLogWrites:      m.Counter("engine.log_writes_total"),
		engIntervalProbes: m.Counter("engine.interval_probes_total"),
		engPlanReuseHits:  m.Counter("engine.plan_reuse_hits_total"),
		engSweepJoins:     m.Counter("engine.sweep_joins_total"),
	}
	for _, r := range []core.Reason{
		core.ReasonNotTransformable, core.ReasonPerPeriodCursor,
		core.ReasonShortContext, core.ReasonStatsFewPeriods,
		core.ReasonDefault, core.ReasonProbeError,
	} {
		sm.autoReason[r] = m.Counter("stratum.auto.reason." + string(r) + "_total")
	}
	return sm
}

// stmtKind classifies a statement by its temporal modifier.
func stmtKind(stmt sqlast.Stmt) string {
	switch s := stmt.(type) {
	case *sqlast.TemporalStmt:
		switch s.Mod {
		case sqlast.ModSequenced:
			return "sequenced"
		case sqlast.ModNonsequenced:
			return "nonsequenced"
		}
	case *sqlast.CreateViewStmt:
		switch s.Mod {
		case sqlast.ModSequenced:
			return "sequenced"
		case sqlast.ModNonsequenced:
			return "nonsequenced"
		}
	}
	return "current"
}

// SetStrategy fixes the slicing strategy for sequenced statements;
// Auto (the default) uses the §VII-F heuristic with fallback to MAX
// when per-statement slicing does not apply.
func (db *DB) SetStrategy(s Strategy) { db.strategy = s }

// Strategy returns the current strategy setting.
func (db *DB) Strategy() Strategy { return db.strategy }

// SetNow fixes CURRENT_DATE, making current-semantics results
// deterministic.
func (db *DB) SetNow(year, month, day int) {
	db.eng.Now = types.MustDate(year, month, day)
}

// Engine exposes the underlying conventional engine (statistics,
// direct conventional execution). Intended for benchmarks and tests.
func (db *DB) Engine() *engine.DB { return db.eng }

// parseScript parses src, timing the parse phase; repeated sources
// come from the parse cache (reusing AST pointers, which also keys the
// engine's plan cache). When ctx carries a trace session the parse
// span joins that trace as a root-level span.
func (db *DB) parseScript(ctx context.Context, src string) ([]sqlast.Stmt, error) {
	if stmts, ok := db.cachedParse(src); ok {
		return stmts, nil
	}
	start := time.Now()
	stmts, err := sqlparser.ParseScript(src)
	d := time.Since(start)
	db.sm.parseNS.Record(d)
	tr, sp := db.tracer, obs.Span{Name: "stratum.parse", Start: start, Dur: d}
	if ts := sessionFromContext(ctx); ts != nil {
		tr = ts.tr
		sp.Trace, sp.ID = ts.trace, obs.NewSpanID()
	}
	if tr != nil {
		sp.Attrs = []obs.Attr{obs.AInt("statements", int64(len(stmts)))}
		if err != nil {
			sp.Attrs = append(sp.Attrs, obs.A("error", err.Error()))
		}
		tr.Span(sp)
	}
	if err == nil {
		db.storeParse(src, stmts)
	}
	return stmts, err
}

// Exec parses and executes a Temporal SQL/PSM script, returning the
// result of the last statement.
func (db *DB) Exec(src string) (*Result, error) {
	return db.ExecContext(context.Background(), src)
}

// ExecContext is Exec under a context. The context may carry a forced
// trace session (WithTrace); otherwise the sampling policy decides
// whether the script is traced. All statements of one script share one
// trace.
func (db *DB) ExecContext(ctx context.Context, src string) (*Result, error) {
	ctx = db.ensureTraceContext(ctx)
	stmts, err := db.parseScript(ctx, src)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, s := range stmts {
		last, err = db.ExecParsedContext(ctx, s)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// MustExec is Exec that panics on error; for setup code and examples.
func (db *DB) MustExec(src string) *Result {
	res, err := db.Exec(src)
	if err != nil {
		panic(err)
	}
	return res
}

// Query executes a single statement and returns its rows.
func (db *DB) Query(src string) (*Result, error) {
	return db.QueryContext(context.Background(), src)
}

// QueryContext is Query under a context; see ExecContext for trace
// semantics.
func (db *DB) QueryContext(ctx context.Context, src string) (*Result, error) {
	ctx = db.ensureTraceContext(ctx)
	stmts, err := db.parseScript(ctx, src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected exactly one statement, found %d", len(stmts))
	}
	return db.ExecParsedContext(ctx, stmts[0])
}

// ExecParsed translates and executes one parsed statement. EXPLAIN
// statements are answered by the stratum without executing their body;
// EXPLAIN ANALYZE executes the body and annotates the plan with the
// observed timings.
func (db *DB) ExecParsed(stmt sqlast.Stmt) (*Result, error) {
	return db.ExecParsedContext(context.Background(), stmt)
}

// ExecParsedContext is ExecParsed under a context; see ExecContext for
// trace semantics.
func (db *DB) ExecParsedContext(ctx context.Context, stmt sqlast.Stmt) (*Result, error) {
	if ex, ok := stmt.(*sqlast.ExplainStmt); ok {
		var e *Explain
		var err error
		if ex.Analyze {
			e, err = db.explainAnalyzeParsed(ctx, ex.Body)
		} else {
			start := time.Now()
			e, err = db.ExplainParsed(ex.Body)
			db.noteLastStatement(0, time.Since(start))
		}
		if err != nil {
			return nil, err
		}
		return e.Result(), nil
	}
	if an, ok := stmt.(*sqlast.AnalyzeStmt); ok {
		start := time.Now()
		res, err := db.execAnalyze(an)
		d := time.Since(start)
		db.noteLastStatement(0, d)
		db.noteStatementProfile(stmt, "current", "", d, err != nil)
		return res, err
	}
	if _, ok := stmt.(*sqlast.ShowProcessListStmt); ok {
		start := time.Now()
		res := db.processListResult()
		db.noteLastStatement(0, time.Since(start))
		return res, nil
	}
	if k, ok := stmt.(*sqlast.KillStmt); ok {
		start := time.Now()
		err := db.Kill(k.PID)
		db.noteLastStatement(0, time.Since(start))
		if err != nil {
			return nil, err
		}
		return &Result{}, nil
	}
	res, _, err := db.execStatement(ctx, stmt)
	return res, err
}

// execStatement is the statement spine: classification, CREATE-time
// lint, translation, execution, commit — with one stmtState carrying
// the statement's observability end to end. It returns the state so
// EXPLAIN ANALYZE can render what actually happened.
func (db *DB) execStatement(ctx context.Context, stmt sqlast.Stmt) (*Result, *stmtState, error) {
	kind := stmtKind(stmt)
	db.sm.statements.Inc()
	if c := db.sm.kind[kind]; c != nil {
		c.Inc()
	}
	st := db.beginStmt(ctx, kind)
	// Process registration is independent of tracing: the registry is
	// always on (st is nil whenever tracing and the slow log are off).
	pr := db.beginProcess(ctx, stmt, st, kind)
	defer db.procs.Finish(pr)
	if st != nil && pr != nil {
		st.procID = pr.ID
	}
	start := time.Now()

	// CREATE-time validation: routine definitions pass through the
	// static analyzer before translation. Error diagnostics (undeclared
	// variables or cursors, unknown callees, arity mismatches, ...)
	// reject the definition outright; warnings ride on the result.
	var warnings []Diagnostic
	switch stmt.(type) {
	case *sqlast.CreateFunctionStmt, *sqlast.CreateProcedureStmt:
		pr.SetStage("lint")
		var cerr error
		warnings, cerr = db.timedLint(st, stmt)
		if cerr != nil {
			db.finishStmt(st, stmt, start, time.Since(start), cerr)
			return nil, st, cerr
		}
	}

	pr.SetStage("translate")
	t, ent, err := db.timedTranslate(st, stmt, kind)
	if err != nil {
		db.finishStmt(st, stmt, start, time.Since(start), err)
		return nil, st, err
	}
	if t != nil && kind == "sequenced" {
		if st != nil {
			st.strategy = t.Strategy.String()
		}
		pr.SetStrategy(t.Strategy.String())
	}
	res, err := db.timedRun(st, pr, t, ent, kind)
	if err != nil {
		db.finishStmt(st, stmt, start, time.Since(start), err)
		return nil, st, err
	}
	if db.CoalesceResults && isSequencedQueryResult(stmt, res) {
		res = coalesceResult(res)
	}
	out := wrapResult(res)
	out.Warnings = warnings
	db.finishStmt(st, stmt, start, time.Since(start), nil)
	return out, st, nil
}

// timedLint runs CREATE-time validation, timing it as the lint stage.
func (db *DB) timedLint(st *stmtState, stmt sqlast.Stmt) ([]Diagnostic, error) {
	start := time.Now()
	warnings, err := db.checkCreate(stmt)
	d := time.Since(start)
	if st != nil {
		st.lintDur = d
		if st.tr != nil {
			attrs := []obs.Attr{obs.AInt("warnings", int64(len(warnings)))}
			if err != nil {
				attrs = append(attrs, obs.A("error", err.Error()))
			}
			st.tr.Span(obs.Span{Name: "stratum.lint", Start: start, Dur: d,
				Trace: st.root.Trace, ID: obs.NewSpanID(), Parent: st.root.Span, Attrs: attrs})
		}
	}
	return warnings, err
}

// timedTranslate runs the translation phase, recording its latency and
// a stratum.translate span.
func (db *DB) timedTranslate(st *stmtState, stmt sqlast.Stmt, kind string) (*core.Translation, *translationEntry, error) {
	start := time.Now()
	t, ent, err := db.cachedTranslate(st, stmt)
	d := time.Since(start)
	db.sm.translateNS.Record(d)
	if st != nil {
		st.translateDur = d
	}
	if st.traced() {
		attrs := []obs.Attr{obs.A("kind", kind)}
		if t != nil && kind == "sequenced" {
			attrs = append(attrs, obs.A("strategy", t.Strategy.String()))
		}
		if st.transProbed {
			attrs = append(attrs, obs.A("cached", fmt.Sprintf("%v", st.transHit)))
		}
		if err != nil {
			attrs = append(attrs, obs.A("error", err.Error()))
		}
		st.tr.Span(obs.Span{Name: "stratum.translate", Start: start, Dur: d,
			Trace: st.root.Trace, ID: obs.NewSpanID(), Parent: st.root.Span, Attrs: attrs})
	}
	return t, ent, err
}

// cachedTranslate consults the translation cache before translating.
// Only sequenced statements are cached: their translation is what the
// strategy heuristic, routine cloning, and slicing rewrites make
// expensive; current and nonsequenced translations are cheap syntax
// rewrites.
func (db *DB) cachedTranslate(st *stmtState, stmt sqlast.Stmt) (*core.Translation, *translationEntry, error) {
	ts, isTemporal := stmt.(*sqlast.TemporalStmt)
	if !isTemporal || ts.Mod != sqlast.ModSequenced {
		t, err := db.translateStmt(stmt)
		return t, nil, err
	}
	if st != nil {
		st.transProbed = true
	}
	key := db.translationKey(stmt)
	if ent := db.lookupTranslation(key); ent != nil {
		db.sm.transHits.Inc()
		if st != nil {
			st.transHit = true
		}
		switch ent.t.Strategy {
		case Max:
			db.sm.strategyMax.Inc()
		case PerStatement:
			db.sm.strategyPerst.Inc()
		}
		return ent.t, ent, nil
	}
	db.sm.transMisses.Inc()
	catV := db.eng.Cat.PersistentVersion()
	t, err := db.translateStmt(stmt)
	if err != nil || t == nil {
		return t, nil, err
	}
	sum := db.mainSummary(t)
	ent := &translationEntry{
		t:            t,
		catVersion:   catV,
		stamps:       db.tableStamps(t.TemporalTables),
		summary:      sum,
		origSummary:  check.Summarize(check.FromStorage(db.eng.Cat), nil, stmt),
		parallelSafe: chunkOrderSafeMain(t) && sum.SharedWriteFree(),
	}
	db.pinDeps(ent)
	db.storeTranslation(key, ent)
	return t, ent, nil
}

// timedRun runs the execution phase on a fresh engine session,
// recording its latency, a stratum.execute span, and the session's
// work journal (rows scanned/returned, routine invocations) as metric
// deltas before merging it into the shared engine statistics. The
// journal commit (WAL append + fsync) is timed as its own stage with
// its own stratum.commit span.
func (db *DB) timedRun(st *stmtState, pr *proc.Process, t *core.Translation, ent *translationEntry, kind string) (*engine.Result, error) {
	ses := db.eng.NewSession()
	ses.Proc = pr
	// One journal spans the whole user statement: a sequenced DML
	// translation is several engine statements, but commits (and rolls
	// back) as a unit.
	j := engine.NewJournal()
	ses.Journal = j
	var execID obs.SpanID
	if st.traced() {
		ses.Tracer = st.tr
		ses.Trace, execID = st.root.Child()
	}
	pr.SetStage("execute")
	start := time.Now()
	res, err := db.runTranslation(st, ses, ent, t)
	d := time.Since(start)
	pr.SetWALPending(int64(j.Len()))
	if err != nil && pr.KilledBy(err) {
		// A killed statement must leave storage as if it never ran:
		// undo everything it journaled and skip the WAL append. The
		// journal's undo closures also revert the statistics the
		// partial execution recorded, and translation-cache entries
		// whose registrations were undone re-pin on next use.
		pr.SetStage("rollback")
		j.RollbackAll()
		pr.SetWALPending(0)
		res = nil
	} else {
		pr.SetStage("commit")
		if cerr := db.commitJournal(st, j); cerr != nil && err == nil {
			res, err = nil, cerr
		}
		pr.SetWALPending(0)
	}
	db.sm.executeNS.Record(d)
	delta := ses.Stats
	db.mu.Lock()
	db.eng.Stats.Merge(delta)
	db.mu.Unlock()
	db.sm.engRowsScanned.Add(delta.RowsScanned)
	db.sm.engRowsReturned.Add(delta.RowsReturned)
	db.sm.engRoutineCalls.Add(delta.RoutineCalls)
	db.sm.engStatements.Add(delta.Statements)
	db.sm.engLogWrites.Add(delta.LogWrites)
	db.sm.engIntervalProbes.Add(delta.IntervalProbes)
	db.sm.engPlanReuseHits.Add(delta.PlanReuseHits)
	db.sm.engSweepJoins.Add(delta.SweepJoins)
	if st != nil {
		st.executeDur = d
		st.routineCalls = delta.RoutineCalls
		st.rowsScanned = delta.RowsScanned
		st.planHits = delta.PlanReuseHits
		st.sweepJoins = delta.SweepJoins
		if res != nil {
			st.rows = len(res.Rows)
			st.affected = res.Affected
		}
	}
	if st.traced() {
		attrs := []obs.Attr{
			obs.A("kind", kind),
			obs.AInt("routine_calls", delta.RoutineCalls),
			obs.AInt("rows_scanned", delta.RowsScanned),
		}
		if err == nil && res != nil {
			attrs = append(attrs, obs.AInt("rows", int64(len(res.Rows))))
		}
		if err != nil {
			attrs = append(attrs, obs.A("error", err.Error()))
		}
		st.tr.Span(obs.Span{Name: "stratum.execute", Start: start, Dur: d,
			Trace: st.root.Trace, ID: execID, Parent: st.root.Span, Attrs: attrs})
	}
	return res, err
}

// isSequencedQueryResult reports whether res is the row set of a
// sequenced query (leading begin_time/end_time columns).
func isSequencedQueryResult(stmt sqlast.Stmt, res *engine.Result) bool {
	ts, ok := stmt.(*sqlast.TemporalStmt)
	if !ok || ts.Mod != sqlast.ModSequenced || res == nil || len(res.Cols) < 2 {
		return false
	}
	return strings.EqualFold(res.Cols[0], "begin_time") && strings.EqualFold(res.Cols[1], "end_time")
}

// coalesceResult merges value-equivalent rows with adjacent or
// overlapping periods into maximal periods.
func coalesceResult(res *engine.Result) *engine.Result {
	type keyed struct {
		row  []types.Value
		key  string
		used bool
	}
	rows := make([]keyed, 0, len(res.Rows))
	byKey := map[string][]*keyed{}
	for _, r := range res.Rows {
		var b strings.Builder
		for _, v := range r[2:] {
			b.WriteString(v.HashKey())
			b.WriteByte('|')
		}
		rows = append(rows, keyed{row: r, key: b.String()})
	}
	for i := range rows {
		byKey[rows[i].key] = append(byKey[rows[i].key], &rows[i])
	}
	out := &engine.Result{Cols: res.Cols, Affected: res.Affected}
	for i := range rows {
		if rows[i].used {
			continue
		}
		group := byKey[rows[i].key]
		// gather periods of this value group, coalesce, emit
		trs := make([]temporal.TimestampedRow, 0, len(group))
		for _, g := range group {
			g.used = true
			trs = append(trs, temporal.TimestampedRow{
				Key:    "",
				Period: temporal.Period{Begin: g.row[0].I, End: g.row[1].I},
			})
		}
		for _, tr := range temporal.Coalesce(trs) {
			nr := append([]types.Value{
				types.NewDate(tr.Period.Begin), types.NewDate(tr.Period.End),
			}, rows[i].row[2:]...)
			out.Rows = append(out.Rows, nr)
		}
	}
	return out
}

// translateStmt picks the strategy (running the heuristic for Auto)
// and translates, recording the strategy decision, the §VII-F reason,
// and any PERST fallback in the metrics registry.
func (db *DB) translateStmt(stmt sqlast.Stmt) (*core.Translation, error) {
	ts, isTemporal := stmt.(*sqlast.TemporalStmt)
	if !isTemporal || ts.Mod != sqlast.ModSequenced {
		return db.tr.Translate(stmt, db.strategy)
	}
	strategy := db.strategy
	if strategy == Auto {
		var reason core.Reason
		strategy, reason = db.chooseStrategy(ts)
		db.sm.autoDecisions.Inc()
		if c := db.sm.autoReason[reason]; c != nil {
			c.Inc()
		}
		if db.tracer != nil {
			db.tracer.Event(obs.Event{Name: "stratum.auto", Attrs: []obs.Attr{
				obs.A("strategy", strategy.String()), obs.A("reason", string(reason)),
			}})
		}
	}
	t, err := db.tr.Translate(stmt, strategy)
	if err != nil && errors.Is(err, core.ErrNotTransformable) && strategy == PerStatement && db.strategy == Auto {
		db.sm.perstFallback.Inc()
		db.noteFallback(ts, err)
		if db.tracer != nil {
			db.tracer.Event(obs.Event{Name: "stratum.perst_fallback",
				Attrs: []obs.Attr{obs.A("error", err.Error())}})
		}
		t, err = db.tr.Translate(stmt, Max)
	}
	if err == nil {
		switch t.Strategy {
		case Max:
			db.sm.strategyMax.Inc()
		case PerStatement:
			db.sm.strategyPerst.Inc()
		}
	}
	return t, err
}

// chooseStrategy applies the §VII-F heuristic to a sequenced
// statement, reporting which clause decided.
func (db *DB) chooseStrategy(ts *sqlast.TemporalStmt) (Strategy, core.Reason) {
	f := core.Features{PerstTransformable: true}
	begin, end := int64(0), int64(0)
	if ts.Period != nil {
		if bv, err := db.eng.EvalConstExpr(ts.Period.Begin); err == nil {
			begin = bv.Int()
		}
		if ev, err := db.eng.EvalConstExpr(ts.Period.End); err == nil {
			end = ev.Int()
		}
		f.ContextDays = end - begin
	} else {
		f.ContextDays = 1 << 30 // whole timeline
	}
	// Probe the PERST translation for applicability and per-period
	// cursor use, and count the reachable temporal rows.
	t, err := db.tr.Translate(&sqlast.TemporalStmt{Mod: sqlast.ModSequenced, Period: ts.Period, Body: ts.Body}, PerStatement)
	if err != nil {
		if errors.Is(err, core.ErrNotTransformable) {
			f.PerstTransformable = false
			db.noteFallback(ts, err)
			return core.ChooseExplained(f)
		}
		return Max, core.ReasonProbeError
	}
	f.UsesPerPeriodCursor = t.UsesPerPeriodCursor
	f.TemporalRows = db.temporalRowCount()
	if est, ok := db.statsEstimates(t.TemporalTables, ts.Period == nil, begin, end); ok {
		f.HasStats = true
		f.EstConstantPeriods = est.ConstantPeriods
		f.EstRows = est.Rows
	}
	return core.ChooseExplained(f)
}

// temporalRowCount is the heuristic's "data set size" proxy: total
// rows across all temporal tables.
func (db *DB) temporalRowCount() int {
	n := 0
	for _, name := range db.eng.Cat.TableNames() {
		if t := db.eng.Cat.Table(name); t != nil && (t.ValidTime || t.TransactionTime) {
			n += len(t.Rows)
		}
	}
	return n
}

// runTranslation registers the translation's routines (once per cache
// entry — the entry's catalog-version check guarantees they are still
// installed on later hits), then executes the main statement on the
// given engine session: natively for MAX constant periods unless
// UseFigure8SQL, through the translation's own Setup/Teardown script
// otherwise.
func (db *DB) runTranslation(st *stmtState, e *engine.DB, ent *translationEntry, t *core.Translation) (res *engine.Result, err error) {
	register := true
	if ent != nil {
		db.mu.Lock()
		register = !ent.registered
		db.mu.Unlock()
	}
	if register {
		for _, r := range t.Routines {
			if _, err := e.ExecStmt(r); err != nil {
				return nil, fmt.Errorf("registering transformed routine: %w", err)
			}
		}
		if ent != nil {
			// Registration may have bumped the catalog version and changed
			// what the clone names resolve to; re-pin the entry and its
			// dependency snapshot so the very next lookup already hits.
			db.mu.Lock()
			ent.registered = true
			ent.catVersion = db.eng.Cat.PersistentVersion()
			db.pinDeps(ent)
			db.mu.Unlock()
		}
	}
	if t.NeedsConstantPeriods && !db.UseFigure8SQL {
		return db.runNative(st, e, ent, t)
	}
	if len(t.Teardown) > 0 {
		defer func() {
			for _, s := range t.Teardown {
				if _, terr := e.ExecStmt(s); terr != nil && err == nil {
					err = terr
				}
			}
		}()
	}
	for _, s := range t.Setup {
		if _, err := e.ExecStmt(s); err != nil {
			return nil, fmt.Errorf("translation setup: %w", err)
		}
	}
	if t.NeedsConstantPeriods {
		// Figure-8 SQL path: the cp table holds the constant periods.
		if tab := db.eng.Cat.Table("taupsm_cp"); tab != nil {
			db.sm.cpLast.Set(int64(len(tab.Rows)))
			db.sm.cpTotal.Add(int64(len(tab.Rows)))
			if st != nil {
				st.cps = int64(len(tab.Rows))
			}
		}
	}
	db.recordFragments(st, t)
	if t.Main == nil {
		return &engine.Result{}, nil
	}
	return e.ExecStmt(t.Main)
}

// runNative executes a MAX-sliced translation without materializing
// catalog tables: the (cached) constant-period relation binds to the
// main statement as a table variable, so the catalog version never
// churns and repeated statements keep every cache warm. When the
// statement shape allows it, fragments evaluate in parallel.
func (db *DB) runNative(st *stmtState, e *engine.DB, ent *translationEntry, t *core.Translation) (*engine.Result, error) {
	ctxPeriod, err := db.contextPeriod(t)
	if err != nil {
		return nil, err
	}
	e.Proc.SetStage("constant-periods")
	cpTab := db.constantPeriodTable(st, e.Trace, t, ctxPeriod)
	db.sm.cpLast.Set(int64(len(cpTab.Rows)))
	db.sm.cpTotal.Add(int64(len(cpTab.Rows)))
	if st != nil {
		st.cps = int64(len(cpTab.Rows))
	}
	e.Proc.SetCPTotal(int64(len(cpTab.Rows)))
	e.Proc.SetFragsTotal(int64(len(cpTab.Rows)))
	e.Proc.SetStage("execute")
	db.recordFragments(st, t)
	if t.Main == nil {
		return &engine.Result{}, nil
	}
	safe := false
	if ent != nil {
		safe = ent.parallelSafe // immutable after construction
	} else {
		safe = db.computeParallelSafe(t)
	}
	// The shared prepared plan: cached on the translation entry so it
	// survives across executions of the same statement text (and is
	// dropped with the entry); a one-shot statement still gets a fresh
	// plan, which its own fragments share via the per-statement routine
	// calls.
	var prep *engine.Prepared
	if ent != nil {
		db.mu.Lock()
		if ent.prepared == nil {
			ent.prepared = engine.NewPrepared()
		}
		prep = ent.prepared
		db.mu.Unlock()
	} else {
		prep = engine.NewPrepared()
	}
	if par := db.Parallelism(); par > 1 && len(cpTab.Rows) > 1 && safe {
		return db.runParallelMain(st, e, t, cpTab, par, prep)
	}
	res, err := e.ExecPreparedWithTables(prep, t.Main, map[string]*storage.Table{"taupsm_cp": cpTab})
	if err == nil {
		// The serial path evaluates every period in one engine
		// statement, so period progress resolves at completion.
		e.Proc.AddCPDone(int64(len(cpTab.Rows)))
		e.Proc.AddFragsDone(int64(len(cpTab.Rows)))
	}
	return res, err
}

// recordFragments is traced-mode-only fragment accounting (it walks
// the reachable temporal tables), so the untraced hot path skips it.
// The slow-log-only path skips it too: fragment counting is the one
// piece of stage accounting whose cost scales with the data.
func (db *DB) recordFragments(st *stmtState, t *core.Translation) {
	if !st.traced() || t.ContextBegin == nil {
		return
	}
	if ctx, err := db.contextPeriod(t); err == nil {
		n := int64(db.countFragments(t.TemporalTables, ctx, t.Dim))
		db.sm.fragLast.Set(n)
		db.sm.fragTotal.Add(n)
		st.fragments = n
	}
}

// contextPeriod resolves a sequenced translation's temporal context
// [Begin, End) to concrete instants.
func (db *DB) contextPeriod(t *core.Translation) (temporal.Period, error) {
	bv, err := db.eng.EvalConstExpr(t.ContextBegin)
	if err != nil {
		return temporal.Period{}, err
	}
	ev, err := db.eng.EvalConstExpr(t.ContextEnd)
	if err != nil {
		return temporal.Period{}, err
	}
	return temporal.Period{Begin: bv.Int(), End: ev.Int()}, nil
}

// slicedPeriodCols returns the ordinals of the period columns a
// statement sliced along dim reads from tab: the transaction-time pair
// for a TT-sliced bitemporal table, the standard pair otherwise
// (mirrors core's slicePeriodCols).
func slicedPeriodCols(tab *storage.Table, dim sqlast.TemporalDimension) (int, int) {
	if dim == sqlast.DimTransaction && tab.Bitemporal() {
		return tab.TTBeginCol(), tab.TTEndCol()
	}
	return tab.BeginCol(), tab.EndCol()
}

// collectTimePoints gathers every begin/end instant stored in the
// given temporal tables along the sliced dimension.
func (db *DB) collectTimePoints(tables []string, dim sqlast.TemporalDimension) []int64 {
	var points []int64
	for _, tn := range tables {
		tab := db.eng.Cat.Table(tn)
		if tab == nil {
			continue
		}
		bc, ec := slicedPeriodCols(tab, dim)
		for _, row := range tab.Rows {
			points = append(points, row[bc].I, row[ec].I)
		}
	}
	return points
}

// countFragments counts the stored row fragments of the given temporal
// tables whose period along the sliced dimension overlaps the context —
// the candidate fragments a sequenced statement evaluates.
func (db *DB) countFragments(tables []string, ctx temporal.Period, dim sqlast.TemporalDimension) int {
	n := 0
	for _, tn := range tables {
		tab := db.eng.Cat.Table(tn)
		if tab == nil {
			continue
		}
		bc, ec := slicedPeriodCols(tab, dim)
		for _, row := range tab.Rows {
			if row[bc].I < ctx.End && ctx.Begin < row[ec].I {
				n++
			}
		}
	}
	return n
}

// Translate performs the pure source-to-source transformation: it
// parses one Temporal SQL/PSM statement and returns the conventional
// SQL/PSM script it compiles to, without executing anything.
func (db *DB) Translate(src string, strategy Strategy) (string, error) {
	stmt, err := sqlparser.ParseStatement(src)
	if err != nil {
		return "", err
	}
	t, err := db.tr.Translate(stmt, strategy)
	if err != nil {
		return "", err
	}
	return t.SQL(), nil
}

// TranslateStmt is Translate over a parsed statement, returning the
// structured translation.
func (db *DB) TranslateStmt(stmt sqlast.Stmt, strategy Strategy) (*core.Translation, error) {
	return db.tr.Translate(stmt, strategy)
}

// schemaInfo adapts the engine catalog to the translator.
type schemaInfo struct {
	cat *storage.Catalog
}

func (si *schemaInfo) IsTemporalTable(name string) bool {
	t := si.cat.Table(name)
	return t != nil && (t.ValidTime || t.TransactionTime)
}

func (si *schemaInfo) IsTransactionTable(name string) bool {
	t := si.cat.Table(name)
	return t != nil && t.TransactionTime
}

func (si *schemaInfo) IsBitemporalTable(name string) bool {
	t := si.cat.Table(name)
	return t != nil && t.ValidTime && t.TransactionTime
}

func (si *schemaInfo) IsTable(name string) bool {
	return si.cat.Table(name) != nil || si.cat.View(name) != nil
}

func (si *schemaInfo) Function(name string) *sqlast.CreateFunctionStmt {
	if r := si.cat.Routine(name); r != nil && r.Kind == storage.KindFunction {
		return r.Fn
	}
	return nil
}

func (si *schemaInfo) Procedure(name string) *sqlast.CreateProcedureStmt {
	if r := si.cat.Routine(name); r != nil && r.Kind == storage.KindProcedure {
		return r.Proc
	}
	return nil
}

func (si *schemaInfo) TableColumns(name string) []string {
	if t := si.cat.Table(name); t != nil {
		return t.Schema.Names()
	}
	if v := si.cat.View(name); v != nil {
		return v.Cols
	}
	return nil
}

var _ core.SchemaInfo = (*schemaInfo)(nil)
