package taupsm

import (
	"context"
	"errors"
	"fmt"

	"taupsm/internal/engine"
	"taupsm/internal/proc"
	"taupsm/internal/sqlast"
)

// Live query introspection: the stratum half of the in-flight process
// registry (internal/proc). Every user statement registers a process
// entry in execStatement; the engine session and the parallel MAX
// workers update its progress counters; SHOW PROCESSLIST, the
// tau_stat_activity system table, the REPL's \processlist and the
// telemetry server's /processlist endpoint all read the same
// snapshots; KILL <pid> (and client context cancellation) flips its
// cooperative kill switch.

// ErrQueryKilled is the sentinel a KILL-cancelled statement's error
// wraps; test with errors.Is. Client context cancellation surfaces
// the context's cause instead.
var ErrQueryKilled = proc.ErrQueryKilled

// ProcessSnapshot is one entry of the process list as returned by
// ProcessList — a point-in-time copy of an in-flight statement's
// identity and progress counters.
type ProcessSnapshot = proc.Snapshot

// beginProcess registers the statement in the process registry and
// arms the context watcher that converts client cancellation into a
// kill. Returns nil when the registry is disabled (the A/A overhead
// switch) — all downstream mirrors tolerate nil.
func (db *DB) beginProcess(ctx context.Context, stmt sqlast.Stmt, st *stmtState, kind string) *proc.Process {
	if !db.procs.Enabled() {
		return nil
	}
	text := renderStmtSQL(stmt)
	var traceID string
	if st != nil && st.root.Trace != 0 {
		traceID = st.root.Trace.String()
	}
	pr := db.procs.Begin("embedded", kind, truncateStmt(text, 240), digestSQL(text), traceID)
	if pr != nil && ctx != nil && ctx.Done() != nil {
		go pr.WatchContext(ctx)
	}
	return pr
}

// ProcessList snapshots every in-flight statement, ordered by process
// ID — the API behind SHOW PROCESSLIST, tau_stat_activity, the REPL
// and /processlist. Note that a statement querying the list through
// SQL observes itself; this method does not register one.
func (db *DB) ProcessList() []proc.Snapshot {
	return db.procs.List()
}

// Kill requests cooperative cancellation of the in-flight statement
// with the given process ID. The statement stops at its next
// fragment, scan, or routine boundary, rolls back its journal (so
// storage is as if it never ran), and returns an error wrapping
// ErrQueryKilled. Killing an unknown or already-finished PID is an
// error.
func (db *DB) Kill(pid int64) error {
	if !db.procs.Kill(pid, nil) {
		return fmt.Errorf("kill %d: no such process", pid)
	}
	return nil
}

// SetProcessRegistry turns the in-flight process registry off or back
// on. It exists for the A/A overhead measurement (taubench -exp
// procoverhead); with the registry off, statements are invisible to
// SHOW PROCESSLIST and cannot be killed.
func (db *DB) SetProcessRegistry(on bool) {
	db.procs.SetDisabled(!on)
}

// processListResult renders the process list as a statement result
// with the tau_stat_activity schema.
func (db *DB) processListResult() *Result {
	res := &engine.Result{Cols: engine.ActivityColumns}
	for _, s := range db.ProcessList() {
		res.Rows = append(res.Rows, engine.ActivityRow(s))
	}
	return wrapResult(res)
}

// Health reports the database's liveness: nil when healthy, an error
// naming the reason otherwise. Today the one unhealthy state is a
// poisoned WAL — a failed checkpoint left the store refusing appends
// until a checkpoint succeeds — which the telemetry server surfaces
// as HTTP 503 on /healthz.
func (db *DB) Health() error {
	if db.dur != nil && db.dur.Failed() {
		return errors.New("wal poisoned: a checkpoint failed; writes are refused until a checkpoint succeeds")
	}
	return nil
}
