package taupsm

import (
	"strings"
	"testing"
)

// Transaction-time tables: the engine records what the database stated
// over time; timestamps are system-maintained (set from CURRENT_DATE by
// the current-semantics transform), append-only, and queryable with the
// TRANSACTIONTIME statement modifiers. The paper notes everything shown
// for valid time "also applies to transaction time" (§III); bitemporal
// tables combine both dimensions (the cross-axis coverage lives in
// internal/enginetest's scenario corpus).

func ttDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	db.SetNow(2024, 1, 1)
	db.MustExec(`CREATE TABLE account (id CHAR(10), balance FLOAT) AS TRANSACTIONTIME`)
	db.MustExec(`INSERT INTO account VALUES ('a1', 100.0)`)
	db.SetNow(2024, 2, 1)
	db.MustExec(`UPDATE account SET balance = 150.0 WHERE id = 'a1'`)
	db.SetNow(2024, 3, 1)
	db.MustExec(`UPDATE account SET balance = 120.0 WHERE id = 'a1'`)
	return db
}

func TestTransactionTimeAudit(t *testing.T) {
	db := ttDB(t)
	// Current query: the latest recorded state.
	res, err := db.Query(`SELECT balance FROM account WHERE id = 'a1'`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res, "120.0")
	// The full audit trail via NONSEQUENCED TRANSACTIONTIME.
	res, err = db.Query(`NONSEQUENCED TRANSACTIONTIME
		SELECT balance, begin_time, end_time FROM account ORDER BY begin_time`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res,
		"100.0|2024-01-01|2024-02-01",
		"150.0|2024-02-01|2024-03-01",
		"120.0|2024-03-01|9999-12-31")
}

func TestTransactionTimeSequencedQuery(t *testing.T) {
	db := ttDB(t)
	for _, s := range []Strategy{Max, PerStatement} {
		db.SetStrategy(s)
		res, err := db.Query(`TRANSACTIONTIME (DATE '2024-01-01', DATE '2024-04-01')
			SELECT balance FROM account WHERE id = 'a1'`)
		if err != nil {
			t.Fatalf("strategy %v: %v", s, err)
		}
		got := coalesceRows(res)
		want := []string{
			"100.0 [2024-01-01,2024-02-01)",
			"120.0 [2024-03-01,2024-04-01)",
			"150.0 [2024-02-01,2024-03-01)",
		}
		if strings.Join(got, ";") != strings.Join(want, ";") {
			t.Fatalf("strategy %v:\ngot  %v\nwant %v", s, got, want)
		}
	}
}

func TestTransactionTimeThroughRoutine(t *testing.T) {
	db := ttDB(t)
	db.MustExec(`
CREATE FUNCTION balance_of (aid CHAR(10))
RETURNS FLOAT
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE b FLOAT;
  SET b = (SELECT balance FROM account WHERE id = aid);
  RETURN b;
END`)
	// "as best known now" through the routine
	res, err := db.Query(`SELECT balance_of('a1') FROM account WHERE id = 'a1'`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res, "120.0")
	// the recorded history through the routine, sliced
	db.SetStrategy(Max)
	res, err = db.Query(`TRANSACTIONTIME (DATE '2024-01-15', DATE '2024-02-15')
		SELECT balance_of('a1') FROM account WHERE id = 'a1'`)
	if err != nil {
		t.Fatal(err)
	}
	got := coalesceRows(res)
	want := []string{
		"100.0 [2024-01-15,2024-02-01)",
		"150.0 [2024-02-01,2024-02-15)",
	}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestTransactionTimeDelete(t *testing.T) {
	db := ttDB(t)
	db.SetNow(2024, 4, 1)
	db.MustExec(`DELETE FROM account WHERE id = 'a1'`)
	res, err := db.Query(`SELECT COUNT(*) FROM account`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res, "0") // logically deleted now
	res, err = db.Query(`NONSEQUENCED TRANSACTIONTIME
		SELECT COUNT(*) FROM account WHERE end_time = DATE '2024-04-01'`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res, "1") // the closed version survives in the audit
}

func TestTransactionTimeIsAppendOnly(t *testing.T) {
	db := ttDB(t)
	// Manual timestamps are forbidden.
	if _, err := db.Exec(`NONSEQUENCED TRANSACTIONTIME
		INSERT INTO account VALUES ('a2', 1.0, DATE '2000-01-01', DATE '2001-01-01')`); err == nil {
		t.Fatal("manual transaction timestamps must be rejected")
	}
	// Rewriting the recorded past is forbidden.
	if _, err := db.Exec(`TRANSACTIONTIME (DATE '2024-01-01', DATE '2024-02-01')
		UPDATE account SET balance = 999 WHERE id = 'a1'`); err == nil {
		t.Fatal("sequenced transaction-time update must be rejected")
	}
	if _, err := db.Exec(`VALIDTIME (DATE '2024-01-01', DATE '2024-02-01')
		DELETE FROM account WHERE id = 'a1'`); err == nil {
		t.Fatal("sequenced delete against a transaction-time table must be rejected")
	}
}

// A statement that slices one dimension but also reaches tables
// carrying only the other is no longer rejected: the other-dimension
// tables are filtered to the current context, so mixed joins work.
func TestDimensionMixingFiltersToCurrent(t *testing.T) {
	db := ttDB(t)
	db.MustExec(`CREATE TABLE vt (id CHAR(10), v FLOAT) AS VALIDTIME`)
	db.MustExec(`VALIDTIME (DATE '2024-01-01', DATE '2024-06-01') INSERT INTO vt VALUES ('a1', 7.0)`)
	db.SetStrategy(Max)
	db.SetNow(2024, 3, 15)
	// VALIDTIME slice: vt is sliced; account contributes its currently
	// recorded balance (120 since Mar 1).
	res, err := db.Query(`VALIDTIME (DATE '2024-02-01', DATE '2024-04-01')
		SELECT vt.v, a.balance FROM vt, account a WHERE vt.id = a.id`)
	if err != nil {
		t.Fatal(err)
	}
	got := coalesceRows(res)
	if want := "7.0|120.0 [2024-02-01,2024-04-01)"; strings.Join(got, ";") != want {
		t.Fatalf("VALIDTIME mixed join: got %v want %v", got, want)
	}
	// TRANSACTIONTIME slice: account's history is sliced; vt contributes
	// its currently valid row.
	res, err = db.Query(`TRANSACTIONTIME (DATE '2024-01-01', DATE '2024-04-01')
		SELECT a.balance, vt.v FROM account a, vt WHERE vt.id = a.id`)
	if err != nil {
		t.Fatal(err)
	}
	got = coalesceRows(res)
	want := []string{
		"100.0|7.0 [2024-01-01,2024-02-01)",
		"120.0|7.0 [2024-03-01,2024-04-01)",
		"150.0|7.0 [2024-02-01,2024-03-01)",
	}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("TRANSACTIONTIME mixed join:\ngot  %v\nwant %v", got, want)
	}
}

// Bitemporal tables carry both dimensions at once; the deep coverage is
// the enginetest scenario corpus, this is the in-package smoke test.
func TestBitemporalSmoke(t *testing.T) {
	db := Open()
	db.SetNow(2024, 1, 10)
	db.MustExec(`CREATE TABLE bt (id CHAR(4), v FLOAT) AS VALIDTIME AS TRANSACTIONTIME`)
	db.MustExec(`VALIDTIME (DATE '2024-01-01', DATE '2024-07-01') INSERT INTO bt VALUES ('x1', 1.0)`)
	db.SetNow(2024, 2, 10)
	db.MustExec(`VALIDTIME (DATE '2024-03-01', DATE '2024-07-01') UPDATE bt SET v = 2.0 WHERE id = 'x1'`)
	// By April the updated valid period is current.
	db.SetNow(2024, 4, 1)
	res, err := db.Query(`SELECT v FROM bt WHERE id = 'x1'`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res, "2.0")
	// The belief of Jan 15 about May 1: still 1.0.
	res, err = db.Query(`VALIDTIME (DATE '2024-05-01') AND TRANSACTIONTIME (DATE '2024-01-15')
		SELECT v FROM bt WHERE id = 'x1'`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res, "2024-05-01|2024-05-02|1.0")
	// Both period pairs are visible to nonsequenced audit access.
	res, err = db.Query(`NONSEQUENCED TRANSACTIONTIME
		SELECT v, begin_time, end_time, tt_begin_time, tt_end_time FROM bt`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res,
		"1.0|2024-01-01|2024-07-01|2024-01-10|2024-02-10",
		"1.0|2024-01-01|2024-03-01|2024-02-10|9999-12-31",
		"2.0|2024-03-01|2024-07-01|2024-02-10|9999-12-31")
}

func TestAlterAddTransactionTime(t *testing.T) {
	db := Open()
	db.SetNow(2024, 6, 1)
	db.MustExec(`CREATE TABLE log (msg VARCHAR(50)); INSERT INTO log VALUES ('hello')`)
	db.MustExec(`ALTER TABLE log ADD TRANSACTIONTIME`)
	res, err := db.Query(`NONSEQUENCED TRANSACTIONTIME SELECT msg, begin_time FROM log`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res, "hello|2024-06-01")
	if _, err := db.Exec(`ALTER TABLE log ADD VALIDTIME`); err == nil {
		t.Fatal("double temporal support must be rejected")
	}
}

func TestTransactionTimeCommutativity(t *testing.T) {
	// Timeslice of the TT-sequenced result at recording day d equals
	// the current query as of d.
	db := ttDB(t)
	db.SetStrategy(Max)
	seq, err := db.Query(`TRANSACTIONTIME SELECT balance FROM account WHERE id = 'a1'`)
	if err != nil {
		t.Fatal(err)
	}
	for _, day := range []string{"2024-01-01", "2024-01-20", "2024-02-01", "2024-02-28", "2024-03-15"} {
		var slice []string
		for _, row := range seq.Rows {
			if row[0].String() <= day && day < row[1].String() {
				slice = append(slice, row[2].String())
			}
		}
		db2 := ttDB(t)
		parts := strings.Split(day, "-")
		db2.SetNow(atoi(parts[0]), atoi(parts[1]), atoi(parts[2]))
		cur, err := db2.Query(`SELECT balance FROM account WHERE id = 'a1'`)
		if err != nil {
			t.Fatal(err)
		}
		curRows := sortedRows(cur)
		if strings.Join(slice, ";") != strings.Join(curRows, ";") {
			t.Fatalf("day %s: timeslice %v != as-of state %v", day, slice, curRows)
		}
	}
}
