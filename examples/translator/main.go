// Translator: using the stratum purely as a source-to-source compiler
// (the deployment mode the paper proposes for vendors): feed it a
// schema, routine definitions, and a Temporal SQL/PSM statement, and
// get back conventional SQL/PSM under each strategy — including the
// heuristic's automatic choice and the q17b-style applicability error.
package main

import (
	"errors"
	"fmt"

	"taupsm"
)

const schema = `
CREATE TABLE sensor (sensor_id CHAR(10), room VARCHAR(20)) AS VALIDTIME;
CREATE TABLE reading_limit (room VARCHAR(20), max_temp FLOAT) AS VALIDTIME;

CREATE FUNCTION limit_for (sid CHAR(10))
RETURNS FLOAT
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE r VARCHAR(20);
  DECLARE l FLOAT;
  SET r = (SELECT room FROM sensor WHERE sensor_id = sid);
  SET l = (SELECT max_temp FROM reading_limit WHERE room = r);
  RETURN l;
END;
`

func main() {
	db := taupsm.Open()
	db.MustExec(schema)

	query := `VALIDTIME (DATE '2024-01-01', DATE '2025-01-01')
SELECT s.sensor_id FROM sensor s WHERE limit_for(s.sensor_id) > 30`

	for _, strategy := range []taupsm.Strategy{taupsm.Max, taupsm.PerStatement} {
		out, err := db.Translate(query, strategy)
		if err != nil {
			panic(err)
		}
		fmt.Printf("==== %v translation ====\n%s\n", strategy, out)
	}

	// A sequenced aggregate is outside per-statement slicing's reach:
	// the translator reports it, and Auto falls back to MAX.
	agg := `VALIDTIME SELECT COUNT(*) FROM sensor`
	if _, err := db.Translate(agg, taupsm.PerStatement); errors.Is(err, taupsm.ErrNotTransformable) {
		fmt.Printf("PERST correctly refuses %q:\n  %v\n\n", agg, err)
	}
	out, err := db.Translate(agg, taupsm.Max)
	if err != nil {
		panic(err)
	}
	fmt.Printf("==== MAX fallback for the aggregate ====\n%s\n", out)
}
