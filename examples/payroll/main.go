// Payroll: temporal upward compatibility and sequenced modifications.
// An existing snapshot application (employees, a salary-lookup
// procedure) keeps working unchanged after ALTER TABLE ... ADD
// VALIDTIME renders the table temporal; history then accumulates
// automatically, sequenced updates patch past periods, and sequenced
// queries reconstruct any employee's salary history through the same
// stored routines.
package main

import (
	"fmt"

	"taupsm"
)

func main() {
	db := taupsm.Open()
	db.SetNow(2024, 1, 1)

	// A conventional (snapshot) payroll application.
	db.MustExec(`
		CREATE TABLE employee (emp_id CHAR(10), name VARCHAR(50), salary FLOAT, dept VARCHAR(20));
		INSERT INTO employee VALUES
		  ('e1', 'Ada',   90000, 'Research'),
		  ('e2', 'Grace', 95000, 'Systems'),
		  ('e3', 'Edsger', 88000, 'Theory');

		CREATE FUNCTION dept_of (eid CHAR(10))
		RETURNS VARCHAR(20)
		READS SQL DATA
		LANGUAGE SQL
		BEGIN
		  DECLARE d VARCHAR(20);
		  SET d = (SELECT dept FROM employee WHERE emp_id = eid);
		  RETURN d;
		END;

		CREATE PROCEDURE salary_of (IN eid CHAR(10), OUT s FLOAT)
		READS SQL DATA
		LANGUAGE SQL
		BEGIN
		  SET s = (SELECT salary FROM employee WHERE emp_id = eid);
		END;

		CREATE FUNCTION lookup_salary (eid CHAR(10))
		RETURNS FLOAT
		READS SQL DATA
		LANGUAGE SQL
		BEGIN
		  DECLARE s FLOAT DEFAULT 0.0;
		  CALL salary_of(eid, s);
		  RETURN s;
		END;
	`)

	// Render the table temporal. Existing queries keep working
	// (temporal upward compatibility).
	db.MustExec(`ALTER TABLE employee ADD VALIDTIME`)
	fmt.Println("== legacy query, unchanged, after ADD VALIDTIME ==")
	fmt.Println(db.MustExec(`SELECT name, lookup_salary(emp_id) AS salary FROM employee ORDER BY name`).String())

	// Time passes; current updates version the rows automatically.
	db.SetNow(2024, 7, 1)
	db.MustExec(`UPDATE employee SET salary = 99000 WHERE emp_id = 'e1'`)
	db.SetNow(2025, 2, 1)
	db.MustExec(`UPDATE employee SET salary = 105000, dept = 'Directorate' WHERE emp_id = 'e1'`)

	// A retroactive correction: Grace's salary was actually 97000
	// during Q4 2024 — a sequenced UPDATE patches exactly that period.
	db.MustExec(`VALIDTIME (DATE '2024-10-01', DATE '2025-01-01')
		UPDATE employee SET salary = 97000 WHERE emp_id = 'e2'`)

	// Sequenced query through the stored routines: salary history.
	fmt.Println("== salary history via the stored procedure chain ==")
	db.SetStrategy(taupsm.PerStatement)
	fmt.Println(db.MustExec(`VALIDTIME (DATE '2024-01-01', DATE '2025-06-01')
		SELECT e.name, lookup_salary(e.emp_id) AS salary
		FROM employee e WHERE e.emp_id = 'e1'`).String())

	fmt.Println("== Grace's corrected history (nonsequenced view of raw rows) ==")
	fmt.Println(db.MustExec(`NONSEQUENCED VALIDTIME
		SELECT salary, begin_time, end_time FROM employee
		WHERE emp_id = 'e2' ORDER BY begin_time`).String())

	// The same sequenced query under MAX must agree with PERST.
	db.SetStrategy(taupsm.Max)
	fmt.Println("== the same history under maximally-fragmented slicing ==")
	fmt.Println(db.MustExec(`VALIDTIME (DATE '2024-01-01', DATE '2025-06-01')
		SELECT e.name, lookup_salary(e.emp_id) AS salary
		FROM employee e WHERE e.emp_id = 'e1'`).String())
}
