// Bookstore: the paper's running example end to end. Builds the
// temporal bookstore (item, author, item_author), defines
// get_author_name() (Figure 1), runs the sequenced query of Figure 3
// under BOTH slicing strategies, shows they agree, and prints the
// conventional SQL/PSM each strategy compiles to (Figures 8-11).
package main

import (
	"fmt"

	"taupsm"
)

const schema = `
CREATE TABLE item (id CHAR(10), title CHAR(100)) AS VALIDTIME;
CREATE TABLE author (author_id CHAR(10), first_name CHAR(50)) AS VALIDTIME;
CREATE TABLE item_author (item_id CHAR(10), author_id CHAR(10)) AS VALIDTIME;

NONSEQUENCED VALIDTIME INSERT INTO item VALUES
  ('i1', 'SQL Basics',    DATE '2010-01-01', DATE '2011-01-01'),
  ('i2', 'Advanced SQL',  DATE '2010-03-01', DATE '2010-09-01'),
  ('i3', 'Temporal Data', DATE '2010-05-01', DATE '2011-01-01');

NONSEQUENCED VALIDTIME INSERT INTO author VALUES
  ('a1', 'Ben',      DATE '2010-01-01', DATE '2010-07-01'),
  ('a1', 'Benjamin', DATE '2010-07-01', DATE '2011-01-01'),
  ('a2', 'Amy',      DATE '2010-01-01', DATE '2011-01-01');

NONSEQUENCED VALIDTIME INSERT INTO item_author VALUES
  ('i1', 'a1', DATE '2010-01-01', DATE '2011-01-01'),
  ('i2', 'a1', DATE '2010-03-01', DATE '2010-09-01'),
  ('i3', 'a2', DATE '2010-05-01', DATE '2011-01-01');

-- Figure 1: the conventional stored function.
CREATE FUNCTION get_author_name (aid CHAR(10))
RETURNS CHAR(50)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE fname CHAR(50);
  SET fname = (SELECT first_name FROM author WHERE author_id = aid);
  RETURN fname;
END;
`

// Figure 3: the sequenced query — the Figure 2 query with VALIDTIME
// prepended.
const fig3 = `VALIDTIME SELECT i.title FROM item i, item_author ia
WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`

func main() {
	db := taupsm.Open()
	db.SetNow(2010, 6, 15)
	db.MustExec(schema)

	fmt.Println("== Figure 2 (current): titles by 'Ben' today ==")
	fmt.Println(db.MustExec(`SELECT i.title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`).String())

	db.SetStrategy(taupsm.Max)
	fmt.Println("== Figure 3 (sequenced), maximally-fragmented slicing ==")
	maxRes := db.MustExec(fig3)
	fmt.Println(maxRes.String())

	db.SetStrategy(taupsm.PerStatement)
	fmt.Println("== Figure 3 (sequenced), per-statement slicing ==")
	psRes := db.MustExec(fig3)
	fmt.Println(psRes.String())

	fmt.Println("== What MAX compiles to (Figures 8-10) ==")
	maxSQL, err := db.Translate(fig3, taupsm.Max)
	if err != nil {
		panic(err)
	}
	fmt.Println(maxSQL)

	fmt.Println("== What PERST compiles to (Figure 11) ==")
	psSQL, err := db.Translate(fig3, taupsm.PerStatement)
	if err != nil {
		panic(err)
	}
	fmt.Println(psSQL)
}
