-- The quickstart schema and queries as a standalone script: a temporal
-- table, a stored function, and the three query semantics of Temporal
-- SQL/PSM. `taupsm vet examples/quickstart/quickstart.sql` must be
-- silent (the script is part of the self-vet corpus), and
-- `taupsm -mode exec -now 2010-06-15` runs it end to end.

CREATE TABLE author (author_id CHAR(10), first_name CHAR(50)) AS VALIDTIME;

-- Load history explicitly (nonsequenced: we manage the periods).
NONSEQUENCED VALIDTIME INSERT INTO author VALUES
  ('a1', 'Ben',      DATE '2010-01-01', DATE '2010-07-01'),
  ('a1', 'Benjamin', DATE '2010-07-01', DATE '2011-01-01');

-- A stored function, written exactly as in conventional SQL/PSM.
CREATE FUNCTION get_author_name (aid CHAR(10))
RETURNS CHAR(50)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE fname CHAR(50);
  SET fname = (SELECT first_name FROM author WHERE author_id = aid);
  RETURN fname;
END;

-- Current semantics: what is the author called today?
SELECT get_author_name('a1') AS name FROM author WHERE author_id = 'a1';

-- Sequenced semantics: the history of the name — just prepend
-- VALIDTIME; the stratum rewrites the query AND the function.
VALIDTIME SELECT get_author_name('a1') AS name FROM author WHERE author_id = 'a1';

-- Nonsequenced semantics: raw periods as ordinary columns.
NONSEQUENCED VALIDTIME
SELECT first_name, begin_time, end_time FROM author ORDER BY begin_time;
