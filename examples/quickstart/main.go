// Quickstart: a temporal table, a stored function, and the three query
// semantics of Temporal SQL/PSM — current (no modifier), sequenced
// (VALIDTIME), and nonsequenced (NONSEQUENCED VALIDTIME).
package main

import (
	"fmt"

	"taupsm"
)

func main() {
	db := taupsm.Open()
	db.SetNow(2010, 6, 15)

	db.MustExec(`
		CREATE TABLE author (author_id CHAR(10), first_name CHAR(50)) AS VALIDTIME;

		-- Load history explicitly (nonsequenced: we manage the periods).
		NONSEQUENCED VALIDTIME INSERT INTO author VALUES
		  ('a1', 'Ben',      DATE '2010-01-01', DATE '2010-07-01'),
		  ('a1', 'Benjamin', DATE '2010-07-01', DATE '2011-01-01');

		-- A stored function, written exactly as in conventional SQL/PSM.
		CREATE FUNCTION get_author_name (aid CHAR(10))
		RETURNS CHAR(50)
		READS SQL DATA
		LANGUAGE SQL
		BEGIN
		  DECLARE fname CHAR(50);
		  SET fname = (SELECT first_name FROM author WHERE author_id = aid);
		  RETURN fname;
		END;
	`)

	// Current semantics: what is the author called today (June 15)?
	cur := db.MustExec(`SELECT get_author_name('a1') AS name FROM author WHERE author_id = 'a1'`)
	fmt.Println("current:")
	fmt.Println(cur.String())

	// Sequenced semantics: the history of the name — just prepend
	// VALIDTIME; the stratum rewrites the query AND the function.
	seq := db.MustExec(`VALIDTIME SELECT get_author_name('a1') AS name FROM author WHERE author_id = 'a1'`)
	fmt.Println("sequenced (history):")
	fmt.Println(seq.String())

	// Nonsequenced semantics: raw periods as ordinary columns.
	non := db.MustExec(`NONSEQUENCED VALIDTIME
		SELECT first_name, begin_time, end_time FROM author ORDER BY begin_time`)
	fmt.Println("nonsequenced (raw rows):")
	fmt.Println(non.String())
}
