// Auditlog: transaction-time tables. The engine records every state the
// database ever asserted; timestamps are system-maintained and
// append-only (no backdating, no rewriting the audit past), and the
// TRANSACTIONTIME statement modifiers reconstruct what was recorded —
// including through stored routines.
package main

import (
	"fmt"

	"taupsm"
)

func main() {
	db := taupsm.Open()

	db.SetNow(2024, 1, 10)
	db.MustExec(`
		CREATE TABLE price_list (sku CHAR(10), price FLOAT) AS TRANSACTIONTIME;
		INSERT INTO price_list VALUES ('widget', 9.99), ('gadget', 24.00);

		CREATE FUNCTION price_of (s CHAR(10))
		RETURNS FLOAT
		READS SQL DATA
		LANGUAGE SQL
		BEGIN
		  DECLARE p FLOAT;
		  SET p = (SELECT price FROM price_list WHERE sku = s);
		  RETURN p;
		END;
	`)

	// Corrections over time: each one closes the old recorded row and
	// opens a new one — automatically.
	db.SetNow(2024, 3, 1)
	db.MustExec(`UPDATE price_list SET price = 11.50 WHERE sku = 'widget'`)
	db.SetNow(2024, 5, 20)
	db.MustExec(`UPDATE price_list SET price = 10.75 WHERE sku = 'widget'`)
	db.MustExec(`DELETE FROM price_list WHERE sku = 'gadget'`) // logical delete

	fmt.Println("== what the database states now ==")
	fmt.Println(db.MustExec(`SELECT sku, price FROM price_list`).String())

	fmt.Println("== the raw audit trail ==")
	fmt.Println(db.MustExec(`NONSEQUENCED TRANSACTIONTIME
		SELECT sku, price, begin_time, end_time FROM price_list ORDER BY sku, begin_time`).String())

	fmt.Println("== what did we quote for the widget over Q1, via the stored function? ==")
	db.SetStrategy(taupsm.Max)
	fmt.Println(db.MustExec(`TRANSACTIONTIME (DATE '2024-01-01', DATE '2024-04-01')
		SELECT price_of('widget') AS quoted FROM price_list WHERE sku = 'widget'`).String())

	// Integrity: the recorded past cannot be rewritten.
	_, err := db.Exec(`TRANSACTIONTIME (DATE '2024-01-01', DATE '2024-02-01')
		UPDATE price_list SET price = 1.00 WHERE sku = 'widget'`)
	fmt.Printf("rewriting history: %v\n", err)
}
