package taupsm

import "runtime"

// Version identifies this taupsm build. It feeds the taupsm -version
// flag and the tau_build_info gauge on /metrics.
const Version = "0.10.0"

// BuildInfo returns the identifying facts of this build as labels for
// the tau_build_info gauge: release version, Go toolchain version, and
// target platform.
func BuildInfo() map[string]string {
	return map[string]string{
		"version":   Version,
		"goversion": runtime.Version(),
		"goos":      runtime.GOOS,
		"goarch":    runtime.GOARCH,
	}
}
