package taupsm

import (
	"strings"
	"testing"

	"taupsm/internal/obs"
)

// EXPLAIN on a sequenced query reports the plan and the exact slicing
// statistics without executing anything.
func TestExplainSequencedWithoutExecuting(t *testing.T) {
	db := paperDB(t)
	db.SetStrategy(Max)
	engBase := db.Metrics().Value("engine.statements_total")
	e, err := db.Explain(`VALIDTIME (DATE '2010-01-01', DATE '2011-01-01') SELECT title FROM item`)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != "sequenced" {
		t.Fatalf("kind = %q, want sequenced", e.Kind)
	}
	if e.Strategy != Max {
		t.Fatalf("strategy = %v, want MAX", e.Strategy)
	}
	if len(e.TemporalTables) != 1 || e.TemporalTables[0] != "item" {
		t.Fatalf("temporal tables = %v, want [item]", e.TemporalTables)
	}
	if e.ContextBegin != "2010-01-01" || e.ContextEnd != "2011-01-01" {
		t.Fatalf("context = [%s, %s), want [2010-01-01, 2011-01-01)", e.ContextBegin, e.ContextEnd)
	}
	// item holds 3 rows, all overlapping the context.
	if e.Fragments != 3 {
		t.Fatalf("fragments = %d, want 3", e.Fragments)
	}
	// item's instants inside the context — 01-01, 03-01, 05-01, 09-01,
	// 2011-01-01 — yield 4 constant periods.
	if e.ConstantPeriods != 4 {
		t.Fatalf("constant periods = %d, want 4", e.ConstantPeriods)
	}
	if e.SQL == "" {
		t.Fatal("empty plan SQL")
	}
	// Nothing executed: the engine never saw a statement.
	if n := db.Metrics().Value("engine.statements_total") - engBase; n != 0 {
		t.Fatalf("EXPLAIN executed %d engine statements, want 0", n)
	}
	if n := db.Metrics().Value("stratum.explain_total"); n != 1 {
		t.Fatalf("stratum.explain_total = %d, want 1", n)
	}
}

// The acceptance criterion: EXPLAIN's constant-period and fragment
// counts match what execution then reports through DB.Metrics.
func TestExplainMatchesExecution(t *testing.T) {
	db := paperDB(t)
	db.SetStrategy(Max)
	db.SetTracer(&obs.Collector{}) // fragment accounting is detailed-mode
	const q = `VALIDTIME (DATE '2010-01-01', DATE '2011-01-01')
		SELECT i.title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`

	m := db.Metrics()
	engBase := m.Value("engine.statements_total")
	e, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if e.ConstantPeriods == 0 || e.Fragments == 0 {
		t.Fatalf("trivial explanation: %+v", e)
	}
	if n := m.Value("engine.statements_total") - engBase; n != 0 {
		t.Fatalf("EXPLAIN executed %d engine statements, want 0", n)
	}

	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if got := m.Value("stratum.constant_periods"); got != int64(e.ConstantPeriods) {
		t.Fatalf("execution computed %d constant periods, EXPLAIN said %d", got, e.ConstantPeriods)
	}
	if got := m.Value("stratum.fragments"); got != int64(e.Fragments) {
		t.Fatalf("execution evaluated %d fragments, EXPLAIN said %d", got, e.Fragments)
	}
	if got := m.Value("stratum.strategy.max_total"); got != 1 {
		t.Fatalf("stratum.strategy.max_total = %d, want 1", got)
	}
}

// The SQL-level EXPLAIN statement returns the explanation as a
// two-column result set (golden test).
func TestExplainStatementGolden(t *testing.T) {
	db := Open()
	db.SetNow(2010, 6, 15)
	db.SetStrategy(Max)
	db.SetParallelism(4) // pin: the default degree is machine-dependent
	db.MustExec(`
CREATE TABLE author (author_id CHAR(10), first_name CHAR(50)) AS VALIDTIME;
NONSEQUENCED VALIDTIME INSERT INTO author VALUES
  ('a1', 'Ben', DATE '2010-01-01', DATE '2010-07-01'),
  ('a2', 'Amy', DATE '2010-03-01', DATE '2010-05-01');
`)
	res, err := db.Query(`EXPLAIN VALIDTIME (DATE '2010-01-01', DATE '2010-07-01') SELECT first_name FROM author`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"kind|sequenced",
		"strategy|MAX",
		"context|[2010-01-01, 2010-07-01)",
		"temporal_tables|author",
		"reads|author[validtime]",
		"constant_periods|3",
		"fragments|2",
		"parallelism|3",
		"translation_cache|miss",
		"cp_cache|miss",
		"plan_reuse|new",
		"join|probe (probe_small)",
		"plan|DROP TABLE IF EXISTS taupsm_ts;",
		"|DROP TABLE IF EXISTS taupsm_cp;",
		"|CREATE TEMPORARY TABLE taupsm_ts (time_point DATE);",
		"|INSERT INTO taupsm_ts SELECT begin_time AS time_point FROM author UNION SELECT end_time AS time_point FROM author UNION VALUES (DATE '2010-01-01'), (DATE '2010-07-01');",
		"|CREATE TEMPORARY TABLE taupsm_cp AS (SELECT ts1.time_point AS begin_time, ts2.time_point AS end_time FROM taupsm_ts AS ts1, taupsm_ts AS ts2 WHERE ts1.time_point < ts2.time_point AND DATE '2010-01-01' <= ts1.time_point AND ts1.time_point < DATE '2010-07-01' AND ts2.time_point <= DATE '2010-07-01' AND NOT EXISTS (SELECT time_point FROM taupsm_ts AS ts3 WHERE ts1.time_point < ts3.time_point AND ts3.time_point < ts2.time_point)) WITH DATA;",
		"|SELECT cp.begin_time AS begin_time, cp.end_time AS end_time, first_name FROM taupsm_cp AS cp, author WHERE author.begin_time <= cp.begin_time AND cp.begin_time < author.end_time;",
		"|DROP TABLE IF EXISTS taupsm_ts;",
		"|DROP TABLE IF EXISTS taupsm_cp;",
	}
	if cols := strings.Join(res.Columns, "|"); cols != "property|value" {
		t.Fatalf("columns = %q, want property|value", cols)
	}
	var got []string
	for _, row := range res.Rows {
		got = append(got, row[0].String()+"|"+row[1].String())
	}
	if len(got) != len(want) {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d:\n got %q\nwant %q", i, got[i], want[i])
		}
	}
}

// EXPLAIN reports the planned parallelism degree and whether the
// translation and constant-period caches would hit, without touching
// either cache or its counters; after an execution warms the caches
// the same EXPLAIN reports hits, and DML on a referenced table turns
// them back into misses.
func TestExplainCacheAndParallelism(t *testing.T) {
	db := paperDB(t)
	db.SetStrategy(Max)
	db.SetParallelism(4)
	m := db.Metrics()
	const q = `VALIDTIME (DATE '2010-01-01', DATE '2011-01-01') SELECT title FROM item`

	counters := func() [4]int64 {
		return [4]int64{
			m.Value("stratum.cache.translation_hits_total"),
			m.Value("stratum.cache.translation_misses_total"),
			m.Value("stratum.cache.cp_hits_total"),
			m.Value("stratum.cache.cp_misses_total"),
		}
	}

	before := counters()
	e, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if e.TranslationCacheHit || e.CPCacheHit {
		t.Fatalf("cold caches reported as hits: %+v", e)
	}
	if want := min(4, e.ConstantPeriods); e.Parallelism != want {
		t.Fatalf("parallelism = %d, want %d (degree 4, %d periods)", e.Parallelism, want, e.ConstantPeriods)
	}
	if counters() != before {
		t.Fatalf("EXPLAIN moved cache counters: %v -> %v", before, counters())
	}

	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	e, err = db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !e.TranslationCacheHit || !e.CPCacheHit {
		t.Fatalf("warm caches reported as misses: %+v", e)
	}
	if m.Value("stratum.parallel.statements_total") == 0 {
		t.Fatal("parallel path not taken despite EXPLAIN planning it")
	}

	// DML on a referenced table invalidates both caches (the Auto
	// heuristic and the constant periods depend on the rows).
	db.MustExec(`NONSEQUENCED VALIDTIME INSERT INTO item VALUES ('i9', 'New', DATE '2010-02-01', DATE '2010-04-01')`)
	e, err = db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if e.TranslationCacheHit || e.CPCacheHit {
		t.Fatalf("caches survived DML on a referenced table: %+v", e)
	}

	// Serial settings plan a degree of 1.
	db.SetParallelism(1)
	e, err = db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if e.Parallelism != 1 {
		t.Fatalf("parallelism = %d with a serial setting, want 1", e.Parallelism)
	}
}

// Regression test for EXPLAIN re-running the static analyzer per call:
// the lint section is served from the statement-text cache, so repeated
// EXPLAIN of one statement moves stratum.lint.analysis_runs_total
// exactly once; a catalog change invalidates and recounts.
func TestExplainServesLintFromCache(t *testing.T) {
	db := paperDB(t)
	db.SetStrategy(Max)
	m := db.Metrics()
	const q = `VALIDTIME (DATE '2010-01-01', DATE '2011-01-01') SELECT title FROM item`

	if _, err := db.Explain(q); err != nil {
		t.Fatal(err)
	}
	runs := m.Value("stratum.lint.analysis_runs_total")
	if runs == 0 {
		t.Fatal("first EXPLAIN ran no analysis")
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Explain(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Value("stratum.lint.analysis_runs_total"); got != runs {
		t.Fatalf("repeated EXPLAIN re-ran the analysis: %d runs, want %d", got, runs)
	}
	if hits := m.Value("stratum.lint.cache_hits_total"); hits < 3 {
		t.Fatalf("lint cache hits = %d, want >= 3", hits)
	}

	// A catalog change invalidates the cached findings.
	db.MustExec(`CREATE TABLE other (x CHAR(3))`)
	base := m.Value("stratum.lint.analysis_runs_total")
	if _, err := db.Explain(q); err != nil {
		t.Fatal(err)
	}
	if got := m.Value("stratum.lint.analysis_runs_total"); got != base+1 {
		t.Fatalf("post-DDL EXPLAIN analysis runs = %d, want %d", got, base+1)
	}
}

// EXPLAIN of a current statement reports the kind and plan, no slicing
// stats.
func TestExplainCurrentStatement(t *testing.T) {
	db := paperDB(t)
	e, err := db.Explain(`SELECT title FROM item`)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != "current" {
		t.Fatalf("kind = %q, want current", e.Kind)
	}
	if e.ConstantPeriods != 0 || e.Fragments != 0 {
		t.Fatalf("current statement has slicing stats: %+v", e)
	}
	if e.SQL == "" {
		t.Fatal("empty plan SQL")
	}
}

// EXPLAIN cannot nest.
func TestExplainNested(t *testing.T) {
	if _, err := paperDB(t).Exec(`EXPLAIN EXPLAIN SELECT title FROM item`); err == nil {
		t.Fatal("nested EXPLAIN accepted")
	}
}

// With the Auto strategy, EXPLAIN reports the §VII-F clause that
// decided, and execution records the same decision in the metrics.
func TestAutoStrategyMetrics(t *testing.T) {
	db := paperDB(t) // 9 temporal rows: a small database
	m := db.Metrics()

	// Short context on a small database: clause (c) picks MAX.
	short := `VALIDTIME (DATE '2010-06-01', DATE '2010-06-05') SELECT title FROM item`
	e, err := db.Explain(short)
	if err != nil {
		t.Fatal(err)
	}
	if e.Strategy != Max || e.AutoReason != "short_context" {
		t.Fatalf("short context: (%v, %q), want (MAX, short_context)", e.Strategy, e.AutoReason)
	}
	if _, err := db.Query(short); err != nil {
		t.Fatal(err)
	}

	// Year-long context: no clause fires, PERST by default.
	long := `VALIDTIME (DATE '2010-01-01', DATE '2011-01-01') SELECT title FROM item`
	e, err = db.Explain(long)
	if err != nil {
		t.Fatal(err)
	}
	if e.Strategy != PerStatement || e.AutoReason != "perst_default" {
		t.Fatalf("long context: (%v, %q), want (PERST, perst_default)", e.Strategy, e.AutoReason)
	}
	if _, err := db.Query(long); err != nil {
		t.Fatal(err)
	}

	// EXPLAIN resolves Auto but only executions record decisions, so
	// the decision counters reflect actual statement runs.
	for name, want := range map[string]int64{
		"stratum.auto.decisions_total":            2,
		"stratum.auto.reason.short_context_total": 1,
		"stratum.auto.reason.perst_default_total": 1,
		"stratum.strategy.max_total":              1,
		"stratum.strategy.perst_total":            1,
		"stratum.statements.sequenced_total":      2,
		"stratum.explain_total":                   2,
	} {
		if got := m.Value(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// Statement kinds, engine work, and phase latencies all land in the
// metrics registry; spans arrive at an attached tracer.
func TestStatementMetricsAndSpans(t *testing.T) {
	db := paperDB(t)
	col := &obs.Collector{}
	db.SetTracer(col)
	m := db.Metrics()
	base := map[string]int64{}
	for _, name := range []string{
		"stratum.statements_total",
		"stratum.statements.current_total",
		"stratum.statements.sequenced_total",
		"stratum.statements.nonsequenced_total",
	} {
		base[name] = m.Value(name)
	}

	if _, err := db.Query(`SELECT title FROM item`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`VALIDTIME SELECT title FROM item`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`NONSEQUENCED VALIDTIME SELECT title FROM item`); err != nil {
		t.Fatal(err)
	}

	for name, want := range map[string]int64{
		"stratum.statements_total":              3,
		"stratum.statements.current_total":      1,
		"stratum.statements.sequenced_total":    1,
		"stratum.statements.nonsequenced_total": 1,
	} {
		if got := m.Value(name) - base[name]; got != want {
			t.Errorf("%s delta = %d, want %d", name, got, want)
		}
	}
	if m.Value("engine.rows_returned_total") == 0 {
		t.Error("engine.rows_returned_total = 0, want > 0")
	}
	if m.Value("engine.rows_scanned_total") == 0 {
		t.Error("engine.rows_scanned_total = 0, want > 0")
	}
	for _, span := range []string{"stratum.parse", "stratum.translate", "stratum.execute"} {
		if len(col.SpansNamed(span)) < 3 {
			t.Errorf("%s spans = %d, want >= 3", span, len(col.SpansNamed(span)))
		}
	}
	// The exposition renders every recorded series.
	text := m.String()
	for _, name := range []string{
		"stratum.statements_total", "stratum.parse_ns", "engine.rows_scanned_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metrics exposition missing %s:\n%s", name, text)
		}
	}
}

// Routine invocations are counted always and timed when a tracer is
// attached.
func TestRoutineObservability(t *testing.T) {
	db := paperDB(t)
	col := &obs.Collector{}
	db.SetTracer(col)
	if _, err := db.Query(`
		SELECT i.title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	calls := m.Value("engine.routine_calls_total")
	if calls == 0 {
		t.Fatal("engine.routine_calls_total = 0, want > 0")
	}
	spans := col.SpansNamed("engine.routine")
	if int64(len(spans)) != calls {
		t.Fatalf("engine.routine spans = %d, routine_calls_total = %d", len(spans), calls)
	}
	if got := m.Histogram("engine.routine_ns").Count(); got != calls {
		t.Fatalf("engine.routine_ns count = %d, want %d", got, calls)
	}
}

// Regression test for EXPLAIN ANALYZE counter drift under plan reuse:
// actual_plan_reuse and actual_sweep_joins report the statement's own
// execution, not the prepared plan's lifetime totals — so repeated runs
// of the same statement show stable values, not a growing sum. The
// plan_reuse row itself flips from "new" to "reuse" once the first
// execution populates the shared plan.
func TestExplainAnalyzeCountersPerStatement(t *testing.T) {
	db := paperDB(t)
	db.SetStrategy(Max)
	const q = `EXPLAIN ANALYZE VALIDTIME (DATE '2010-01-01', DATE '2011-01-01')
		SELECT i.title FROM item i, item_author ia WHERE i.id = ia.item_id`

	type runInfo struct{ planReuse, hits, sweeps string }
	run := func() runInfo {
		t.Helper()
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		var info runInfo
		for _, row := range res.Rows {
			switch row[0].String() {
			case "plan_reuse":
				info.planReuse = row[1].String()
			case "actual_plan_reuse":
				info.hits = row[1].String()
			case "actual_sweep_joins":
				info.sweeps = row[1].String()
			}
		}
		if info.hits == "" || info.sweeps == "" {
			t.Fatalf("EXPLAIN ANALYZE emitted no actual counter rows: %+v", info)
		}
		return info
	}

	first := run()
	if first.planReuse != "new" {
		t.Fatalf("cold plan_reuse = %q, want new", first.planReuse)
	}
	second := run()
	if second.planReuse != "reuse" {
		t.Fatalf("warm plan_reuse = %q, want reuse", second.planReuse)
	}
	if second.hits == "0" {
		t.Fatal("warm execution reported actual_plan_reuse = 0; the plan served nothing")
	}
	third := run()
	// The drift this guards against: counters accumulated over the plan's
	// lifetime would make every repeat larger than the last.
	if third.hits != second.hits {
		t.Fatalf("actual_plan_reuse drifted across identical runs: %s then %s (cumulative counters?)",
			second.hits, third.hits)
	}
	if third.sweeps != second.sweeps {
		t.Fatalf("actual_sweep_joins drifted across identical runs: %s then %s",
			second.sweeps, third.sweeps)
	}
}
