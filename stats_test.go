package taupsm

// Statistics subsystem tests: the ANALYZE statement, the tau_stat_*
// system tables, the incremental-vs-recomputed consistency property
// under DML (including failed statements), persistence through
// checkpoints and crash recovery, EXPLAIN's estimate columns, and the
// stats-informed strategy hint.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"taupsm/internal/stats"
	"taupsm/internal/wal"
)

func TestAnalyzeStatement(t *testing.T) {
	db := paperDB(t)
	defer db.Close()

	res := db.MustExec(`ANALYZE item`)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "item" {
		t.Fatalf("ANALYZE item rows: %v", res.Rows)
	}
	if got := res.Columns; strings.Join(got, ",") !=
		"table_name,rows,distinct_points,constant_periods,max_overlap" {
		t.Fatalf("ANALYZE columns: %v", got)
	}
	if rows := res.Rows[0][1].Int(); rows != 3 {
		t.Fatalf("item analyzed rows = %d, want 3", rows)
	}

	res = db.MustExec(`ANALYZE`)
	if len(res.Rows) != 3 {
		t.Fatalf("bare ANALYZE must cover all 3 tables, got %d rows", len(res.Rows))
	}
	for i, want := range []string{"author", "item", "item_author"} {
		if got := res.Rows[i][0].String(); got != want {
			t.Fatalf("ANALYZE row %d table = %q, want %q", i, got, want)
		}
	}

	if _, err := db.Exec(`ANALYZE nope`); err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("ANALYZE of a missing table: %v", err)
	}
}

func TestSystemTablesSelect(t *testing.T) {
	db := paperDB(t)
	defer db.Close()
	db.MustExec(`ANALYZE item`)

	res := db.MustExec(`SELECT table_name, row_count, inserts, analyzed FROM tau_stat_tables`)
	byName := map[string][]string{}
	for _, r := range res.Rows {
		byName[r[0].String()] = []string{r[1].String(), r[2].String(), r[3].String()}
	}
	if got := byName["item"]; len(got) != 3 || got[0] != "3" || got[1] != "3" || got[2] != "TRUE" {
		t.Fatalf("item stats row: %v (all: %v)", got, byName)
	}
	if got := byName["author"]; len(got) != 3 || got[2] != "FALSE" {
		t.Fatalf("author must not be analyzed yet: %v", got)
	}

	// The workload tables exist and see the statements just executed.
	res = db.MustExec(`SELECT digest, statement FROM tau_stat_statements`)
	found := false
	for _, r := range res.Rows {
		if strings.Contains(r[1].String(), "tau_stat_tables") {
			found = true
			if len(r[0].String()) != 16 {
				t.Fatalf("digest %q is not 16 hex chars", r[0].String())
			}
		}
	}
	if !found {
		t.Fatalf("tau_stat_statements misses the profiled SELECT:\n%s", res)
	}
	if _, err := db.Exec(`SELECT routine_name, calls FROM tau_stat_routines`); err != nil {
		t.Fatalf("tau_stat_routines: %v", err)
	}

	// A real table with the same name shadows the system one.
	db.MustExec(`CREATE TABLE tau_stat_tables (x INTEGER)`)
	db.MustExec(`INSERT INTO tau_stat_tables VALUES (7)`)
	res = db.MustExec(`SELECT x FROM tau_stat_tables`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 7 {
		t.Fatalf("user table must shadow the system table, got %s", res)
	}
}

// TestStatsConsistencyUnderDML is the incremental==recomputed property
// at the SQL level: a random stream of sequenced and nonsequenced DML —
// with a quarter of the statements failing mid-scan and rolling back —
// must leave the incrementally maintained distribution identical to a
// from-scratch recompute after every statement.
func TestStatsConsistencyUnderDML(t *testing.T) {
	db := Open()
	defer db.Close()
	db.SetNow(2010, 6, 15)
	db.MustExec(`CREATE TABLE h (id INTEGER, v INTEGER) AS VALIDTIME`)

	rng := rand.New(rand.NewSource(11))
	day := func(n int) string { return fmt.Sprintf("DATE '2010-%02d-%02d'", 1+n/28%12, 1+n%28) }
	check := func(step int, sql string) {
		tab := db.eng.Cat.Table("h")
		got := db.eng.TabStats.DistributionOf(tab)
		want := stats.RecomputeDistribution(tab)
		if !got.Equal(want) {
			t.Fatalf("step %d (%s): incremental stats diverged\n got %+v\nwant %+v", step, sql, got, want)
		}
	}
	for step := 0; step < 120; step++ {
		b := rng.Intn(200)
		e := b + 1 + rng.Intn(100)
		var sql string
		fail := rng.Intn(4) == 0
		switch rng.Intn(3) {
		case 0:
			sql = fmt.Sprintf(`NONSEQUENCED VALIDTIME INSERT INTO h VALUES (%d, %d, %s, %s)`,
				step, rng.Intn(50), day(b), day(e))
			if fail {
				// Second row divides by zero: the whole statement, first
				// row included, must roll back out of the stats.
				sql = fmt.Sprintf(`NONSEQUENCED VALIDTIME INSERT INTO h VALUES (%d, %d, %s, %s), (%d, 1/0, %s, %s)`,
					step, rng.Intn(50), day(b), day(e), step+1000, day(b), day(e))
			}
		case 1:
			sql = fmt.Sprintf(`VALIDTIME (%s, %s) UPDATE h SET v = v + 1 WHERE id < %d`,
				day(b), day(e), rng.Intn(200))
			if fail {
				sql = fmt.Sprintf(`VALIDTIME (%s, %s) UPDATE h SET v = v / (v - v) WHERE id < %d`,
					day(b), day(e), rng.Intn(200))
			}
		default:
			sql = fmt.Sprintf(`VALIDTIME (%s, %s) DELETE FROM h WHERE id = %d`,
				day(b), day(e), rng.Intn(step+1))
		}
		// A statement built to fail only fails when it reaches a row
		// (UPDATEs over an empty overlap never divide); the property
		// holds either way, so the error itself is not asserted.
		db.Exec(sql)
		check(step, sql)
	}
}

// TestStatsSurviveCheckpointAndRecovery: the DML counters and the last
// ANALYZE's extras persist through a checkpoint, accumulate across the
// WAL tail, and come back after both a clean reopen and a crash-style
// reopen (no Close).
func TestStatsSurviveCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.SetNow(2010, 7, 1)
	db.MustExec(`CREATE TABLE item (id INTEGER, v INTEGER) AS VALIDTIME`)
	db.MustExec(`NONSEQUENCED VALIDTIME INSERT INTO item VALUES
		(1, 10, DATE '2010-01-01', DATE '2010-06-01'),
		(2, 20, DATE '2010-03-01', DATE '2010-09-01')`)
	db.MustExec(`ANALYZE item`)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// WAL tail past the checkpoint: one more insert and a delete.
	db.MustExec(`NONSEQUENCED VALIDTIME INSERT INTO item VALUES (3, 30, DATE '2010-05-01', DATE '2010-07-01')`)
	db.MustExec(`VALIDTIME (DATE '2010-01-01', DATE '2011-01-01') DELETE FROM item WHERE id = 1`)
	want := db.Statistics().Tables
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := db2.Statistics().Tables
	if len(got) != 1 || len(want) != 1 {
		t.Fatalf("table stats: got %d entries, want 1", len(got))
	}
	g, w := got[0], want[0]
	if g.Inserts != w.Inserts || g.Updates != w.Updates || g.Deletes != w.Deletes {
		t.Fatalf("recovered counters %+v, want %+v", g, w)
	}
	if !g.Analyzed || g.MaxOverlap != w.MaxOverlap || g.AnalyzedRows != w.AnalyzedRows {
		t.Fatalf("recovered ANALYZE extras %+v, want %+v", g, w)
	}
	if g.RowCount != w.RowCount || g.DistinctPoints != w.DistinctPoints {
		t.Fatalf("recovered distribution %+v, want %+v", g, w)
	}
	if g.Inserts != 3 || g.Deletes == 0 {
		t.Fatalf("history must span checkpoint + tail: %+v", g)
	}

	// Crash-style recovery: no Close, reopen straight from the synced
	// WAL. Every commit fsyncs, so the stats must come back identically.
	fs := wal.NewMemFS()
	db3, err := OpenFS(fs)
	if err != nil {
		t.Fatal(err)
	}
	db3.SetNow(2010, 7, 1)
	db3.MustExec(`CREATE TABLE item (id INTEGER, v INTEGER) AS VALIDTIME`)
	db3.MustExec(`NONSEQUENCED VALIDTIME INSERT INTO item VALUES (1, 10, DATE '2010-01-01', DATE '2010-06-01')`)
	db3.MustExec(`ANALYZE item`)
	if err := db3.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db3.MustExec(`NONSEQUENCED VALIDTIME INSERT INTO item VALUES (2, 20, DATE '2010-02-01', DATE '2010-05-01')`)
	wantSnap := db3.Statistics().Tables[0]
	// No Close: simulate a crash by abandoning the handle.
	db4, err := OpenFS(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer db4.Close()
	gotSnap := db4.Statistics().Tables[0]
	if gotSnap.Inserts != wantSnap.Inserts || gotSnap.RowCount != wantSnap.RowCount ||
		!gotSnap.Analyzed || gotSnap.MaxOverlap != wantSnap.MaxOverlap {
		t.Fatalf("crash recovery stats %+v, want %+v", gotSnap, wantSnap)
	}
}

// TestExplainEstimates: before ANALYZE the estimate layer stays dark;
// after ANALYZE of every reachable table EXPLAIN carries est_* numbers
// that agree exactly with the actual slicing counts for a single-table
// statement.
func TestExplainEstimates(t *testing.T) {
	db := paperDB(t)
	defer db.Close()
	db.SetStrategy(Max)
	const q = `VALIDTIME (DATE '2010-02-01', DATE '2010-10-01') SELECT id FROM item`

	e, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if e.HasStats {
		t.Fatal("estimates must require ANALYZE first")
	}
	if got := e.Result().String(); strings.Contains(got, "est_constant_periods") {
		t.Fatalf("un-ANALYZEd EXPLAIN must not render estimates:\n%s", got)
	}

	db.MustExec(`ANALYZE`)
	e, err = db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !e.HasStats {
		t.Fatal("estimates missing after ANALYZE")
	}
	if int(e.EstConstantPeriods) != e.ConstantPeriods {
		t.Fatalf("est_constant_periods %d != actual %d", e.EstConstantPeriods, e.ConstantPeriods)
	}
	if int(e.EstRows) != e.Fragments {
		t.Fatalf("est_rows %d != fragments %d", e.EstRows, e.Fragments)
	}
	out := e.Result().String()
	if !strings.Contains(out, "est_constant_periods") || !strings.Contains(out, "est_rows") {
		t.Fatalf("EXPLAIN output misses estimate rows:\n%s", out)
	}
}

// TestStatsHeuristicHint: once tables are ANALYZEd, the §VII-F Auto
// strategy picks MAX for a context the registry predicts to hold only
// a few constant periods, and reports the stats_few_periods reason.
func TestStatsHeuristicHint(t *testing.T) {
	db := paperDB(t)
	defer db.Close()

	// A one-year context over the paper fixture would default to PERST;
	// the registry knows only a handful of endpoints fall inside it.
	const q = `VALIDTIME (DATE '2010-01-01', DATE '2011-01-01') SELECT id FROM item`
	e, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if e.Strategy != PerStatement || e.AutoReason != "perst_default" {
		t.Fatalf("pre-ANALYZE: strategy %v reason %q, want PERST/perst_default", e.Strategy, e.AutoReason)
	}

	db.MustExec(`ANALYZE`)
	e, err = db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if e.Strategy != Max || e.AutoReason != "stats_few_periods" {
		t.Fatalf("post-ANALYZE: strategy %v reason %q, want Max/stats_few_periods", e.Strategy, e.AutoReason)
	}
}

// TestDigestStableAcrossRestarts: the statement digest — the join key
// between the slow log, tau_stat_statements, and /statistics — must be
// a pure function of the SQL text, identical in a fresh process or
// after recovery.
func TestDigestStableAcrossRestarts(t *testing.T) {
	const q = `SELECT COUNT(*) FROM item`
	digestOf := func(db *DB) string {
		t.Helper()
		db.MustExec(q)
		for _, s := range db.Statistics().Statements {
			if strings.Contains(s.Text, "COUNT") {
				return s.Digest
			}
		}
		t.Fatal("statement profile missing")
		return ""
	}

	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.SetNow(2010, 7, 1)
	db.MustExec(`CREATE TABLE item (id INTEGER, v INTEGER) AS VALIDTIME`)
	d1 := digestOf(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	d2 := digestOf(db2)
	if d1 != d2 {
		t.Fatalf("digest changed across restart: %s vs %s", d1, d2)
	}

	mem := Open()
	defer mem.Close()
	mem.MustExec(`CREATE TABLE item (id INTEGER, v INTEGER) AS VALIDTIME`)
	if d3 := digestOf(mem); d3 != d1 {
		t.Fatalf("digest differs between processes: %s vs %s", d3, d1)
	}
	if d := digestSQL(q + ";"); d == d1 {
		t.Fatalf("different text must not collide: %s", d)
	}
}
