package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"taupsm/internal/taubench"
)

func TestParseSize(t *testing.T) {
	for in, want := range map[string]string{
		"SMALL": "SMALL", "s": "SMALL", "medium": "MEDIUM", "L": "LARGE",
	} {
		sz, err := parseSize(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if sz.String() != want {
			t.Fatalf("%q: got %s want %s", in, sz, want)
		}
	}
	if _, err := parseSize("gigantic"); err == nil {
		t.Fatal("expected error for unknown size")
	}
}

func TestRunLoC(t *testing.T) {
	if err := run("loc", "DS1", "SMALL", "", "", 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweepFiltered(t *testing.T) {
	// One query on DS1-SMALL: fast enough for a unit test.
	if err := run("sweep", "DS1", "SMALL", "q20", "", 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunReportJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := run("report", "DS1", "SMALL", "", path, 1, 0); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep taubench.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Dataset != "DS1" || rep.Size != "SMALL" || len(rep.Queries) == 0 {
		t.Fatalf("unexpected report header: %+v", rep)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", "DS1", "SMALL", "", "", 1, 0); err == nil {
		t.Fatal("expected error")
	}
	if err := run("sweep", "DS9", "SMALL", "", "", 1, 0); err == nil {
		t.Fatal("expected unknown-dataset error")
	}
	if err := run("sweep", "DS1", "HUGE", "", "", 1, 0); err == nil {
		t.Fatal("expected unknown-size error")
	}
}
