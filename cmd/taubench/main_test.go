package main

import "testing"

func TestParseSize(t *testing.T) {
	for in, want := range map[string]string{
		"SMALL": "SMALL", "s": "SMALL", "medium": "MEDIUM", "L": "LARGE",
	} {
		sz, err := parseSize(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if sz.String() != want {
			t.Fatalf("%q: got %s want %s", in, sz, want)
		}
	}
	if _, err := parseSize("gigantic"); err == nil {
		t.Fatal("expected error for unknown size")
	}
}

func TestRunLoC(t *testing.T) {
	if err := run("loc", "DS1", "SMALL", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweepFiltered(t *testing.T) {
	// One query on DS1-SMALL: fast enough for a unit test.
	if err := run("sweep", "DS1", "SMALL", "q20"); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", "DS1", "SMALL", ""); err == nil {
		t.Fatal("expected error")
	}
	if err := run("sweep", "DS9", "SMALL", ""); err == nil {
		t.Fatal("expected unknown-dataset error")
	}
	if err := run("sweep", "DS1", "HUGE", ""); err == nil {
		t.Fatal("expected unknown-size error")
	}
}
