// Command taubench regenerates the paper's evaluation artifacts: the
// temporal-context sweeps of Figures 12-13, the scalability experiment
// of Figure 14, the data-characteristics comparison of Figure 15, the
// §VII-B code-expansion accounting, and the §VII-F heuristic
// evaluation.
//
// Usage:
//
//	taubench -exp fig12            # one experiment
//	taubench -exp all              # everything (slow: builds LARGE data)
//	taubench -exp sweep -dataset DS2 -size MEDIUM -queries q2,q7
//	taubench -exp report -reps 5 -json BENCH_1.json
//	taubench -compare old.json new.json   # per-cell delta report
//
// The compare mode diffs two benchmark artifacts (either the latency
// reports of -exp report or the observability reports of
// -exp obsreport) cell by cell and exits non-zero when any cell is
// slower than -threshold percent — the CI regression gate.
//
// The report experiment emits the structured benchmark artifact:
// median/p95 latencies plus the fragment and constant-period counts of
// every query × strategy × context cell, as JSON. The obsreport
// experiment emits the observability artifact instead: per-query
// span-stage breakdowns from EXPLAIN ANALYZE plus the tracer-overhead
// comparison (sampling off vs. every statement sampled) on the MAX
// one-month workload. The -slow flag enables a slow-query log on
// stderr for any measured statement over the threshold (it applies to
// sweep and report).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"taupsm"
	"taupsm/internal/taubench"
)

func main() {
	exp := flag.String("exp", "fig12", "experiment: fig12, fig13, fig14, fig15, loc, heuristic, classes, sweep, report, obsreport, procoverhead, all")
	dataset := flag.String("dataset", "DS1", "dataset for -exp sweep/report: DS1, DS2, DS3")
	sizeFlag := flag.String("size", "SMALL", "size for -exp sweep/report: SMALL, MEDIUM, LARGE")
	queriesFlag := flag.String("queries", "", "comma-separated query filter for -exp sweep (default: all)")
	jsonPath := flag.String("json", "", "for -exp report: write JSON to this file instead of stdout")
	reps := flag.Int("reps", 3, "for -exp report: repetitions per cell")
	slow := flag.Duration("slow", 0, "log measured statements at least this slow to stderr (0 disables)")
	par := flag.Int("par", 0, "fragment worker-pool size for measured databases (0 = GOMAXPROCS)")
	strategy := flag.String("strategy", "", "restrict sweep/report/obsreport to one strategy: max, perst (default: both)")
	workload := flag.String("workload", "", "measure a named workload instead of an experiment: BT-SMALL (bitemporal audit queries, BENCH_5)")
	compare := flag.Bool("compare", false, "compare two benchmark artifacts: taubench -compare old.json new.json")
	threshold := flag.Float64("threshold", 25, "for -compare: per-cell regression threshold in percent")
	geoThreshold := flag.Float64("geomean-threshold", 0, "for -compare: fail when the MAX-strategy geomean regresses past this percent (0 disables; -strategy perst gates PERST instead)")
	flag.Parse()
	taubench.Parallelism = *par
	switch strings.ToLower(*strategy) {
	case "", "max", "perst":
		taubench.StrategyFilter = strings.ToLower(*strategy)
	default:
		fmt.Fprintf(os.Stderr, "taubench: unknown -strategy %q (want max or perst)\n", *strategy)
		os.Exit(2)
	}

	if *compare {
		gateStrategy := "MAX"
		if taubench.StrategyFilter == "perst" {
			gateStrategy = "PERST"
		}
		os.Exit(runCompare(flag.Args(), *threshold, *geoThreshold, gateStrategy))
	}
	if *workload != "" {
		if err := runWorkload(*workload, *jsonPath, *reps); err != nil {
			fmt.Fprintln(os.Stderr, "taubench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *dataset, *sizeFlag, *queriesFlag, *jsonPath, *reps, *slow); err != nil {
		fmt.Fprintln(os.Stderr, "taubench:", err)
		os.Exit(1)
	}
}

// runWorkload measures a named workload (currently only the BT-SMALL
// bitemporal audit workload) and writes the artifact: JSON when -json
// is given (BENCH_5.json), a table on stdout otherwise.
func runWorkload(name, jsonPath string, reps int) error {
	if !strings.EqualFold(name, "BT-SMALL") {
		return fmt.Errorf("unknown workload %q (want BT-SMALL)", name)
	}
	rep, err := taubench.MeasureBitemporal(reps)
	if err != nil {
		return err
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Fprintf(os.Stderr, "taubench: wrote %s (%d cells)\n", jsonPath, len(rep.Queries))
		return rep.WriteJSON(f)
	}
	rep.Write(os.Stdout)
	return nil
}

// runCompare diffs two benchmark artifacts and returns the process
// exit code: 0 when neither gate tripped, 1 when a cell regressed past
// -threshold or the gate strategy's geomean regressed past
// -geomean-threshold, 2 on usage or parse errors. The per-cell gate
// catches a single query falling off a cliff; the geomean gate catches
// a broad slowdown that no single (noisy) cell exceeds on its own.
func runCompare(args []string, threshold, geoThreshold float64, gateStrategy string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: taubench -compare [-threshold pct] [-geomean-threshold pct] old.json new.json")
		return 2
	}
	oldJSON, err := os.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "taubench:", err)
		return 2
	}
	newJSON, err := os.ReadFile(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "taubench:", err)
		return 2
	}
	cmp, err := taubench.Compare(oldJSON, newJSON, threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "taubench:", err)
		return 2
	}
	cmp.Write(os.Stdout)
	code := 0
	if len(cmp.Regressions()) > 0 {
		code = 1
	}
	if geoThreshold > 0 {
		factor, n := cmp.GeomeanSpeedup(gateStrategy)
		if n > 0 {
			regressPct := 100 * (1/factor - 1)
			if regressPct > geoThreshold {
				fmt.Printf("GEOMEAN REGRESSION: %s %.1f%% slower than baseline (threshold %.0f%%, %d cells)\n",
					gateStrategy, regressPct, geoThreshold, n)
				code = 1
			} else {
				fmt.Printf("geomean gate ok: %s within %.0f%% of baseline (%d cells)\n",
					gateStrategy, geoThreshold, n)
			}
		}
	}
	return code
}

func parseSize(s string) (taubench.Size, error) {
	switch strings.ToUpper(s) {
	case "SMALL", "S":
		return taubench.Small, nil
	case "MEDIUM", "M":
		return taubench.Medium, nil
	case "LARGE", "L":
		return taubench.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func run(exp, dataset, sizeFlag, queriesFlag, jsonPath string, reps int, slow time.Duration) error {
	switch exp {
	case "fig12":
		_, out, err := taubench.Fig12()
		fmt.Print(out)
		return err
	case "fig13":
		_, out, err := taubench.Fig13()
		fmt.Print(out)
		return err
	case "fig14":
		_, out, err := taubench.Fig14()
		fmt.Print(out)
		return err
	case "fig15":
		_, out, err := taubench.Fig15()
		fmt.Print(out)
		return err
	case "loc":
		out, err := taubench.LoCExperiment()
		fmt.Print(out)
		return err
	case "classes":
		ms, _, err := taubench.Fig12()
		if err != nil {
			return err
		}
		match := 0
		total := 0
		for _, q := range taubench.Queries() {
			if q.ClassSmall == "-" {
				continue
			}
			got := taubench.Classify(ms, q.Name)
			total++
			if got == q.ClassSmall {
				match++
			}
			fmt.Printf("%-5s measured=%s paper=%s\n", q.Name, got, q.ClassSmall)
		}
		fmt.Printf("agreement: %d/%d\n", match, total)
		return nil
	case "heuristic":
		return runHeuristic()
	case "sweep":
		size, err := parseSize(sizeFlag)
		if err != nil {
			return err
		}
		spec, err := taubench.SpecByName(dataset, size)
		if err != nil {
			return err
		}
		r, err := taubench.NewRunner(spec)
		if err != nil {
			return err
		}
		if slow > 0 {
			r.SlowThreshold, r.SlowLog = slow, os.Stderr
		}
		want := map[string]bool{}
		for _, q := range strings.Split(queriesFlag, ",") {
			if q = strings.TrimSpace(q); q != "" {
				want[q] = true
			}
		}
		var ms []taubench.Measurement
		for _, q := range taubench.Queries() {
			if len(want) > 0 && !want[q.Name] {
				continue
			}
			for _, c := range taubench.ContextLengths {
				ms = append(ms, r.RunSequenced(q, taupsm.Max, c))
				ms = append(ms, r.RunSequenced(q, taupsm.PerStatement, c))
			}
		}
		fmt.Printf("%s-%s sweep (rows: %d)\n\n", dataset, size, r.Stats.Rows)
		fmt.Print(taubench.FormatTable(ms, func(m taubench.Measurement) string {
			return taubench.ContextLabel(m.Context)
		}))
		return nil
	case "report":
		size, err := parseSize(sizeFlag)
		if err != nil {
			return err
		}
		spec, err := taubench.SpecByName(dataset, size)
		if err != nil {
			return err
		}
		r, err := taubench.NewRunner(spec)
		if err != nil {
			return err
		}
		if slow > 0 {
			r.SlowThreshold, r.SlowLog = slow, os.Stderr
		}
		rep := r.BuildReport(taubench.ContextLengths, reps)
		out := os.Stdout
		if jsonPath != "" {
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
			fmt.Fprintf(os.Stderr, "taubench: wrote %s (%d cells)\n", jsonPath, len(rep.Queries))
		}
		return rep.WriteJSON(out)
	case "obsreport":
		size, err := parseSize(sizeFlag)
		if err != nil {
			return err
		}
		spec, err := taubench.SpecByName(dataset, size)
		if err != nil {
			return err
		}
		r, err := taubench.NewRunner(spec)
		if err != nil {
			return err
		}
		rep := r.BuildObsReport(taubench.ContextLengths, reps)
		out := os.Stdout
		if jsonPath != "" {
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
			fmt.Fprintf(os.Stderr, "taubench: wrote %s (%d stage cells)\n", jsonPath, len(rep.Stages))
		}
		return rep.WriteJSON(out)
	case "procoverhead":
		size, err := parseSize(sizeFlag)
		if err != nil {
			return err
		}
		spec, err := taubench.SpecByName(dataset, size)
		if err != nil {
			return err
		}
		r, err := taubench.NewRunner(spec)
		if err != nil {
			return err
		}
		for _, c := range []int{30, 365} {
			o := r.MeasureProcOverhead(c, reps)
			fmt.Printf("%s\n  registry off: %s   off (A/A): %s (%+.2f%%)   registry on: %s (%+.2f%%)\n",
				o.Workload,
				time.Duration(o.OffNS), time.Duration(o.OffRepeatNS), o.OffOverheadPct,
				time.Duration(o.SampledNS), o.SampledOverheadPct)
		}
		return nil
	case "all":
		for _, e := range []string{"loc", "fig12", "fig15", "fig14", "fig13", "heuristic"} {
			fmt.Printf("==================== %s ====================\n", e)
			if err := run(e, dataset, sizeFlag, queriesFlag, "", reps, slow); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	return fmt.Errorf("unknown experiment %q", exp)
}

// runHeuristic replays every figure's measurements through the §VII-F
// heuristic, reproducing the in-text win/error rates.
func runHeuristic() error {
	runners := map[string]*taubench.Runner{}
	getRunner := func(m taubench.Measurement) *taubench.Runner {
		key := m.Dataset + "/" + m.Size.String()
		if r, ok := runners[key]; ok {
			return r
		}
		spec, err := taubench.SpecByName(m.Dataset, m.Size)
		if err != nil {
			panic(err)
		}
		r, err := taubench.NewRunner(spec)
		if err != nil {
			panic(err)
		}
		runners[key] = r
		return r
	}

	var all []taubench.Measurement
	for _, f := range []func() ([]taubench.Measurement, string, error){
		taubench.Fig12, taubench.Fig13, taubench.Fig14, taubench.Fig15,
	} {
		ms, _, err := f()
		if err != nil {
			return err
		}
		all = append(all, ms...)
	}
	points := taubench.CollectHeuristicPoints(all, getRunner)
	fmt.Print(taubench.HeuristicEval(points))
	return nil
}
