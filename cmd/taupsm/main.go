// Command taupsm is the Temporal SQL/PSM front end: it translates
// Temporal SQL/PSM to conventional SQL/PSM (the stratum as a filter)
// or executes a script against an in-memory temporal database.
//
// Usage:
//
//	taupsm -mode exec script.sql          # run a script, print results
//	taupsm -mode translate -strategy max query.sql
//	taupsm -mode translate -strategy perst -          # read stdin
//	taupsm -mode repl                     # interactive shell
//	taupsm -mode repl -data ./db          # persistent database in ./db
//	taupsm vet [-json] [-Werror] script.sql ...   # static analysis, no execution
//
// In exec mode every statement is translated by the stratum and run;
// results of queries are printed as text tables. In translate mode the
// final statement of the input is translated and the conventional
// SQL/PSM is printed without executing it; earlier statements (DDL,
// routine definitions) are executed to build the schema the translator
// needs. The repl mode reads statements interactively and adds
// backslash commands (\timing, \metrics, \strategy, \help).
//
// With -data the database persists in the named directory: committed
// statements are written to a write-ahead log, and a later invocation
// with the same -data recovers the full catalog before running.
//
// With -telemetry ADDR an HTTP telemetry server runs for the life of
// the process: Prometheus-format /metrics (registry plus process
// self-metrics), /statistics (data & workload statistics as JSON),
// /traces (sampled span trees, see -sample), /healthz, and
// /debug/pprof. -slowlog DUR logs every statement at or above the
// threshold as one JSON line on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"

	"taupsm"
	"taupsm/internal/obs/httpexport"
	"taupsm/internal/sqlparser"
)

func main() {
	if len(os.Args) >= 2 && os.Args[1] == "vet" {
		os.Exit(runVet(os.Args[2:], os.Stdout))
	}
	mode := flag.String("mode", "exec", "exec, translate, or repl")
	strategy := flag.String("strategy", "auto", "sequenced slicing strategy: auto, max, perst")
	now := flag.String("now", "", "fix CURRENT_DATE (YYYY-MM-DD)")
	data := flag.String("data", "", "data directory for a persistent database (default in-memory)")
	telemetry := flag.String("telemetry", "", "serve /metrics, /traces, /healthz, /debug/pprof on this address (e.g. :9090)")
	sample := flag.Int("sample", 0, "trace every Nth statement into the span buffer (0 = off, 1 = all)")
	slowlog := flag.Duration("slowlog", 0, "log statements at or above this duration as JSON lines on stderr (0 = off)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Printf("taupsm %s %s %s/%s\n", taupsm.Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return
	}
	if *mode != "repl" && flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: taupsm [-mode exec|translate|repl] [-strategy auto|max|perst] [-data dir] [-telemetry addr] <file.sql | ->")
		os.Exit(2)
	}
	db, err := newDB(*strategy, *now, *data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "taupsm:", err)
		os.Exit(1)
	}
	db.SetTraceSampling(*sample)
	if *slowlog > 0 {
		db.SetSlowLog(os.Stderr, *slowlog)
	}
	if *telemetry != "" {
		stop, terr := serveTelemetry(db, *telemetry)
		if terr != nil {
			db.Close()
			fmt.Fprintln(os.Stderr, "taupsm:", terr)
			os.Exit(1)
		}
		defer stop()
	}

	if *mode == "repl" {
		err = runREPL(os.Stdin, os.Stdout, db)
	} else {
		err = runScript(db, *mode, flag.Arg(0))
	}
	if cerr := db.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "taupsm:", err)
		os.Exit(1)
	}
}

// serveTelemetry starts the HTTP telemetry endpoint for db on addr,
// returning a shutdown function. The bound address is announced on
// stderr so scripts can scrape ":0" listeners.
func serveTelemetry(db *taupsm.DB, addr string) (func(), error) {
	srv := &httpexport.Server{
		Metrics:    db.Metrics(),
		Ring:       db.TraceBuffer(),
		Statistics: func() any { return db.Statistics() },
		Processes:  func() any { return db.ProcessList() },
		Healthz:    db.Health,
		BuildInfo:  taupsm.BuildInfo(),
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	fmt.Fprintf(os.Stderr, "taupsm: telemetry listening on http://%s\n", lis.Addr())
	go http.Serve(lis, srv.Handler())
	return func() { lis.Close() }, nil
}

func parseStrategy(s string) (taupsm.Strategy, error) {
	switch strings.ToLower(s) {
	case "auto":
		return taupsm.Auto, nil
	case "max":
		return taupsm.Max, nil
	case "perst", "per-statement", "ps":
		return taupsm.PerStatement, nil
	}
	return taupsm.Auto, fmt.Errorf("unknown strategy %q", s)
}

// newDB opens a database configured by the -strategy, -now, and -data
// flags: in-memory by default, persistent when -data names a directory.
func newDB(strategyFlag, now, data string) (*taupsm.DB, error) {
	strategy, err := parseStrategy(strategyFlag)
	if err != nil {
		return nil, err
	}
	var db *taupsm.DB
	if data != "" {
		db, err = taupsm.OpenDir(data)
		if err != nil {
			return nil, err
		}
	} else {
		db = taupsm.Open()
	}
	db.SetStrategy(strategy)
	if now != "" {
		var y, m, d int
		if _, err := fmt.Sscanf(now, "%d-%d-%d", &y, &m, &d); err != nil {
			db.Close()
			return nil, fmt.Errorf("invalid -now %q: %w", now, err)
		}
		db.SetNow(y, m, d)
	}
	return db, nil
}

// run opens a database per the flags and executes path's script —
// the one-shot (non-REPL, no-telemetry) path, kept for tests.
func run(mode, strategyFlag, now, data, path string) error {
	db, err := newDB(strategyFlag, now, data)
	if err != nil {
		return err
	}
	defer db.Close()
	return runScript(db, mode, path)
}

// runScript reads and executes (or translates) one script file on an
// already-configured database.
func runScript(db *taupsm.DB, mode, path string) error {
	var src []byte
	var err error
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}

	stmts, err := sqlparser.ParseScript(string(src))
	if err != nil {
		return err
	}
	if len(stmts) == 0 {
		return fmt.Errorf("no statements in input")
	}

	switch mode {
	case "exec":
		for _, s := range stmts {
			res, err := db.ExecParsed(s)
			if err != nil {
				return fmt.Errorf("%w\n  statement: %s", err, s.SQL())
			}
			if len(res.Columns) > 0 {
				fmt.Println(res.String())
			}
		}
		return nil
	case "translate":
		for _, s := range stmts[:len(stmts)-1] {
			if _, err := db.ExecParsed(s); err != nil {
				return fmt.Errorf("%w\n  statement: %s", err, s.SQL())
			}
		}
		last := stmts[len(stmts)-1]
		t, err := db.TranslateStmt(last, db.Strategy())
		if err != nil {
			return fmt.Errorf("%w\n  statement: %s", err, last.SQL())
		}
		fmt.Printf("-- strategy: %s\n%s", t.Strategy, t.SQL())
		return nil
	}
	return fmt.Errorf("unknown mode %q", mode)
}
