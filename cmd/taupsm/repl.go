package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"taupsm"
	"taupsm/internal/obs"
	"taupsm/internal/sqlparser"
)

// repl is the interactive shell: statements accumulate until a
// terminating semicolon completes a parseable script, backslash
// commands control the session.
type repl struct {
	db     *taupsm.DB
	out    io.Writer
	timing bool
	lint   bool
	trace  bool
	buf    strings.Builder
}

const replHelp = `Backslash commands:
  \timing [on|off]   toggle printing per-statement elapsed time (ms)
  \trace [on|off]    toggle per-statement trace: trace ID + stage tree
  \slowlog [dur|off] show or set the slow-query log threshold (e.g. 250ms)
  \lint [on|off]     toggle static analysis of each submitted statement
  \metrics [reset]   print the metrics registry, or reset every series
  \stats             print table, routine, and statement statistics
  \strategy [s]      show or set the slicing strategy: auto, max, perst
  \parallel [n]      show or set the fragment worker-pool size
  \processlist       list in-flight statements with live progress
  \kill <pid>        request cooperative cancellation of a statement
  \checkpoint        compact durable state into a fresh snapshot (-data only)
  \r                 clear the statement buffer
  \help, \?          this help
  \q                 quit
Statements end with ';' and may span lines. EXPLAIN <statement> shows
the translation plan without executing; EXPLAIN ANALYZE <statement>
executes it and annotates the plan with observed timings.
`

// runREPL drives the shell until \q or EOF.
func runREPL(in io.Reader, out io.Writer, db *taupsm.DB) error {
	r := &repl{db: db, out: out}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	r.prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, `\`):
			if quit := r.meta(trimmed); quit {
				return sc.Err()
			}
		case trimmed == "" && r.buf.Len() == 0:
		default:
			r.buf.WriteString(line)
			r.buf.WriteByte('\n')
			if strings.HasSuffix(strings.TrimSpace(r.buf.String()), ";") {
				r.submit()
			}
		}
		r.prompt()
	}
	if strings.TrimSpace(r.buf.String()) != "" {
		r.buf.WriteString(";")
		r.submit()
	}
	return sc.Err()
}

func (r *repl) prompt() {
	if r.buf.Len() == 0 {
		fmt.Fprint(r.out, "taupsm> ")
	} else {
		fmt.Fprint(r.out, "   ...> ")
	}
}

// meta handles a backslash command; it reports whether to quit.
func (r *repl) meta(cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case `\q`, `\quit`:
		return true
	case `\timing`:
		switch {
		case len(fields) > 1 && fields[1] == "on":
			r.timing = true
		case len(fields) > 1 && fields[1] == "off":
			r.timing = false
		default:
			r.timing = !r.timing
		}
		state := "off"
		if r.timing {
			state = "on"
		}
		fmt.Fprintf(r.out, "Timing is %s.\n", state)
	case `\trace`:
		switch {
		case len(fields) > 1 && fields[1] == "on":
			r.trace = true
		case len(fields) > 1 && fields[1] == "off":
			r.trace = false
		default:
			r.trace = !r.trace
		}
		state := "off"
		if r.trace {
			state = "on"
		}
		fmt.Fprintf(r.out, "Trace is %s.\n", state)
	case `\slowlog`:
		if len(fields) > 1 {
			if fields[1] == "off" || fields[1] == "0" {
				r.db.SetSlowLog(nil, 0)
			} else {
				d, err := time.ParseDuration(fields[1])
				if err != nil || d <= 0 {
					fmt.Fprintf(r.out, "error: \\slowlog wants a positive duration (e.g. 250ms) or off, got %q\n", fields[1])
					return false
				}
				r.db.SetSlowLog(r.out, d)
			}
		}
		if min := r.db.SlowLogThreshold(); min > 0 {
			fmt.Fprintf(r.out, "Slow-query log threshold is %s.\n", min)
		} else {
			fmt.Fprintln(r.out, "Slow-query log is off.")
		}
	case `\lint`:
		switch {
		case len(fields) > 1 && fields[1] == "on":
			r.lint = true
		case len(fields) > 1 && fields[1] == "off":
			r.lint = false
		default:
			r.lint = !r.lint
		}
		state := "off"
		if r.lint {
			state = "on"
		}
		fmt.Fprintf(r.out, "Lint is %s.\n", state)
	case `\metrics`:
		if len(fields) > 1 && fields[1] == "reset" {
			r.db.Metrics().Reset()
			fmt.Fprintln(r.out, "Metrics reset.")
			return false
		}
		fmt.Fprint(r.out, r.db.Metrics().String())
	case `\stats`:
		r.printStats()
	case `\strategy`:
		if len(fields) > 1 {
			s, err := parseStrategy(fields[1])
			if err != nil {
				fmt.Fprintf(r.out, "error: %v\n", err)
				return false
			}
			r.db.SetStrategy(s)
		}
		fmt.Fprintf(r.out, "Strategy is %s.\n", r.db.Strategy())
		if note := r.db.LastFallbackNote(); note != "" {
			fmt.Fprintf(r.out, "%s\n", note)
		}
	case `\parallel`:
		if len(fields) > 1 {
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				fmt.Fprintf(r.out, "error: \\parallel wants a positive integer, got %q\n", fields[1])
				return false
			}
			r.db.SetParallelism(n)
		}
		fmt.Fprintf(r.out, "Parallelism is %d.\n", r.db.Parallelism())
	case `\processlist`:
		r.printProcessList()
	case `\kill`:
		if len(fields) < 2 {
			fmt.Fprintln(r.out, `error: \kill wants a process ID (see \processlist)`)
			return false
		}
		pid, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			fmt.Fprintf(r.out, "error: \\kill wants a numeric process ID, got %q\n", fields[1])
			return false
		}
		if err := r.db.Kill(pid); err != nil {
			fmt.Fprintf(r.out, "error: %v\n", err)
			return false
		}
		fmt.Fprintf(r.out, "Kill requested for process %d.\n", pid)
	case `\checkpoint`:
		if err := r.db.Checkpoint(); err != nil {
			fmt.Fprintf(r.out, "error: %v\n", err)
			return false
		}
		fmt.Fprintln(r.out, "Checkpoint complete.")
	case `\r`, `\reset`:
		r.buf.Reset()
		fmt.Fprintln(r.out, "Statement buffer cleared.")
	case `\help`, `\?`:
		fmt.Fprint(r.out, replHelp)
	default:
		fmt.Fprintf(r.out, "unknown command %s; try \\help\n", fields[0])
	}
	return false
}

// printStats renders the statistics registry snapshot — the same data
// the tau_stat_* system tables and the /statistics endpoint expose —
// as three aligned text sections.
func (r *repl) printStats() {
	snap := r.db.Statistics()
	fmt.Fprintf(r.out, "Tables (%d):\n", len(snap.Tables))
	for _, t := range snap.Tables {
		fmt.Fprintf(r.out, "  %-20s rows=%d periods=%d points=%d ins=%d upd=%d del=%d",
			t.Name, t.RowCount, t.ConstantPeriods, t.DistinctPoints, t.Inserts, t.Updates, t.Deletes)
		if t.Analyzed {
			fmt.Fprintf(r.out, " analyzed(max_overlap=%d)", t.MaxOverlap)
		}
		fmt.Fprintln(r.out)
	}
	fmt.Fprintf(r.out, "Routines (%d):\n", len(snap.Routines))
	for _, p := range snap.Routines {
		fmt.Fprintf(r.out, "  %-20s calls=%d", p.Name, p.Calls)
		if p.TracedCalls > 0 {
			fmt.Fprintf(r.out, " traced=%d mean=%.3fms", p.TracedCalls, float64(p.TracedMeanNS)/1e6)
		}
		fmt.Fprintln(r.out)
	}
	fmt.Fprintf(r.out, "Statements (%d):\n", len(snap.Statements))
	for _, p := range snap.Statements {
		fmt.Fprintf(r.out, "  %s %-10s calls=%d errs=%d mean=%.3fms max=%.3fms",
			p.Digest, p.Kind, p.Calls, p.Errors, float64(p.MeanNS)/1e6, float64(p.MaxNS)/1e6)
		if p.LastStrategy != "" {
			fmt.Fprintf(r.out, " strategy=%s", p.LastStrategy)
		}
		fmt.Fprintf(r.out, "\n    %s\n", p.Text)
	}
}

// printProcessList renders the in-flight statement registry — the
// same snapshots SHOW PROCESSLIST, tau_stat_activity and the
// /processlist endpoint serve. The REPL's own statements finish
// before the prompt returns, so entries here are statements of other
// sessions sharing the DB (or of the telemetry server's clients).
func (r *repl) printProcessList() {
	procs := r.db.ProcessList()
	if len(procs) == 0 {
		fmt.Fprintln(r.out, "No statements in flight.")
		return
	}
	for _, p := range procs {
		fmt.Fprintf(r.out, "  [%d] %-10s %-9s stage=%-16s elapsed=%.1fms", p.ID, p.Kind, p.Strategy, p.Stage, float64(p.ElapsedNS)/1e6)
		if p.CPTotal > 0 {
			fmt.Fprintf(r.out, " periods=%d/%d", p.CPDone, p.CPTotal)
		}
		fmt.Fprintf(r.out, " rows=%d scanned=%d calls=%d", p.Rows, p.RowsScanned, p.RoutineCalls)
		if p.Workers > 0 {
			fmt.Fprintf(r.out, " workers=%d", p.Workers)
		}
		if p.Killed {
			fmt.Fprint(r.out, " KILLED")
		}
		fmt.Fprintf(r.out, "\n      %s\n", p.SQL)
	}
}

// incompleteInput reports a parse error that means "keep reading":
// the statement is syntactically unfinished, not wrong.
func incompleteInput(err error) bool {
	msg := err.Error()
	return strings.Contains(msg, "unexpected end of input") ||
		strings.Contains(msg, `found ""`) ||
		strings.Contains(msg, "unterminated")
}

// caret prints the source line a parse error points at, with a caret
// under the offending column.
func (r *repl) caret(src string, line, col int) {
	lines := strings.Split(src, "\n")
	if line < 1 || line > len(lines) || col < 1 {
		return
	}
	text := strings.TrimRight(lines[line-1], "\r")
	fmt.Fprintf(r.out, "  %s\n", text)
	pad := col - 1
	if pad > len(text) {
		pad = len(text)
	}
	fmt.Fprintf(r.out, "  %s^\n", strings.Repeat(" ", pad))
}

// submit parses the buffered input and, when it forms a complete
// script, executes it statement by statement. Errors echo the
// offending statement so multi-statement input pinpoints the failure.
func (r *repl) submit() {
	src := r.buf.String()
	stmts, err := sqlparser.ParseScript(src)
	if err != nil {
		if incompleteInput(err) {
			return // an inner ';' (PSM body); keep buffering
		}
		r.buf.Reset()
		fmt.Fprintf(r.out, "error: %v\nstatement: %s\n", err, strings.TrimSpace(src))
		var perr *sqlparser.Error
		if errors.As(err, &perr) {
			r.caret(src, perr.Pos.Line, perr.Pos.Col)
		}
		return
	}
	r.buf.Reset()
	for _, s := range stmts {
		if r.lint {
			for _, d := range r.db.LintParsed(s) {
				fmt.Fprintf(r.out, "lint: %s\n", d)
				if d.Line > 0 {
					r.caret(src, d.Line, d.Col)
				}
			}
		}
		ctx := context.Background()
		var traceID obs.TraceID
		if r.trace {
			ctx, traceID = r.db.WithTrace(ctx)
		}
		res, err := r.db.ExecParsedContext(ctx, s)
		if err != nil {
			fmt.Fprintf(r.out, "error: %v\nstatement: %s\n", err, s.SQL())
			var lerr *taupsm.LintError
			if errors.As(err, &lerr) {
				for _, d := range lerr.Diagnostics {
					if d.Severity == "error" && d.Line > 0 {
						r.caret(src, d.Line, d.Col)
					}
				}
			}
			return
		}
		for _, d := range res.Warnings {
			fmt.Fprintf(r.out, "warning: %s\n", d)
		}
		if len(res.Columns) > 0 {
			fmt.Fprint(r.out, res.String())
			fmt.Fprintf(r.out, "(%d rows)\n", len(res.Rows))
		} else if res.Affected > 0 {
			fmt.Fprintf(r.out, "(%d rows affected)\n", res.Affected)
		}
		if r.trace && traceID != 0 {
			fmt.Fprintf(r.out, "Trace: %s\n", traceID)
			if tree := obs.FormatTree(r.db.TraceBuffer().TraceSpans(traceID)); tree != "" {
				fmt.Fprint(r.out, tree)
			}
		}
		if r.timing {
			// The span clock: the same end-to-end measurement the
			// stratum.statement root span and the slow log report, so
			// \timing never disagrees with a trace.
			_, elapsed := r.db.LastStatement()
			fmt.Fprintf(r.out, "Time: %.3f ms\n", float64(elapsed.Nanoseconds())/1e6)
		}
	}
}
