package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// A -data run persists across invocations: the first exec builds the
// schema and rows, the second queries them from the recovered catalog.
func TestRunExecPersistsAcrossInvocations(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	build := writeScript(t, `
CREATE TABLE author (author_id CHAR(10), first_name CHAR(50)) AS VALIDTIME;
NONSEQUENCED VALIDTIME INSERT INTO author VALUES
  ('a1', 'Ben', DATE '2010-01-01', DATE '2010-07-01');
`)
	if err := run("exec", "max", "2010-03-01", dir, build); err != nil {
		t.Fatalf("first run: %v", err)
	}
	query := writeScript(t, `VALIDTIME SELECT first_name FROM author;`)
	if err := run("exec", "max", "2010-03-01", dir, query); err != nil {
		t.Fatalf("second run: %v", err)
	}
}

// The REPL over a persistent database supports \checkpoint, shows the
// wal metrics under \metrics, and recovers its state on the next open.
func TestREPLPersistentCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := newDB("max", "2010-03-01", dir)
	if err != nil {
		t.Fatal(err)
	}
	out := replOut(t, db, `
CREATE TABLE t (x INTEGER);
INSERT INTO t VALUES (41);
\checkpoint
\metrics
\q
`)
	db.Close()
	if !strings.Contains(out, "Checkpoint complete.") {
		t.Fatalf("\\checkpoint output missing:\n%s", out)
	}
	if !strings.Contains(out, "wal.epoch") || !strings.Contains(out, "wal.snapshots_total") {
		t.Fatalf("\\metrics output missing wal series:\n%s", out)
	}

	db2, err := newDB("max", "2010-03-01", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	out2 := replOut(t, db2, `
SELECT x FROM t;
\q
`)
	if !strings.Contains(out2, "41") {
		t.Fatalf("recovered row missing:\n%s", out2)
	}
}

// \checkpoint on an in-memory session reports the error instead of
// crashing the shell.
func TestREPLCheckpointInMemoryErrors(t *testing.T) {
	db, err := newDB("max", "", "")
	if err != nil {
		t.Fatal(err)
	}
	out := replOut(t, db, "\\checkpoint\n\\q\n")
	if !strings.Contains(out, "error:") {
		t.Fatalf("in-memory \\checkpoint did not error:\n%s", out)
	}
}
