package main

import (
	"os"
	"path/filepath"
	"testing"

	"taupsm"
)

func writeScript(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "script.sql")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const script = `
CREATE TABLE author (author_id CHAR(10), first_name CHAR(50)) AS VALIDTIME;
NONSEQUENCED VALIDTIME INSERT INTO author VALUES
  ('a1', 'Ben', DATE '2010-01-01', DATE '2010-07-01');
CREATE FUNCTION get_author_name (aid CHAR(10))
RETURNS CHAR(50)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE fname CHAR(50);
  SET fname = (SELECT first_name FROM author WHERE author_id = aid);
  RETURN fname;
END;
VALIDTIME SELECT get_author_name('a1') FROM author;
`

func TestRunExec(t *testing.T) {
	p := writeScript(t, script)
	if err := run("exec", "max", "2010-03-01", "", p); err != nil {
		t.Fatal(err)
	}
}

func TestRunTranslate(t *testing.T) {
	p := writeScript(t, script)
	for _, s := range []string{"max", "perst", "auto"} {
		if err := run("translate", s, "", "", p); err != nil {
			t.Fatalf("strategy %s: %v", s, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	p := writeScript(t, script)
	if err := run("bogus", "max", "", "", p); err == nil {
		t.Fatal("expected unknown-mode error")
	}
	if err := run("exec", "bogus", "", "", p); err == nil {
		t.Fatal("expected unknown-strategy error")
	}
	if err := run("exec", "max", "not-a-date", "", p); err == nil {
		t.Fatal("expected -now parse error")
	}
	if err := run("exec", "max", "", "", filepath.Join(t.TempDir(), "missing.sql")); err == nil {
		t.Fatal("expected missing-file error")
	}
	bad := writeScript(t, "SELEC nonsense")
	if err := run("exec", "max", "", "", bad); err == nil {
		t.Fatal("expected parse error")
	}
	empty := writeScript(t, "  -- nothing\n")
	if err := run("exec", "max", "", "", empty); err == nil {
		t.Fatal("expected empty-script error")
	}
}

func TestParseStrategy(t *testing.T) {
	if s, err := parseStrategy("per-statement"); err != nil || s != taupsm.PerStatement {
		t.Fatalf("per-statement: %v %v", s, err)
	}
	if s, err := parseStrategy("AUTO"); err != nil || s != taupsm.Auto {
		t.Fatalf("AUTO: %v %v", s, err)
	}
}
