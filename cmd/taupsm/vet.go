package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"taupsm/internal/check"
	"taupsm/internal/sqlparser"
	"taupsm/internal/storage"
)

// vetFinding is one static-analyzer finding in machine-readable form,
// emitted as one JSON object per line under -json.
type vetFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Severity string `json:"severity"`
	Code     string `json:"code"`
	Message  string `json:"message"`
	Hint     string `json:"hint,omitempty"`
}

// text renders the finding in the classic text form,
// file:line:col: severity CODE: message.
func (f vetFinding) text() string {
	return fmt.Sprintf("%s:%d:%d: %s %s: %s", f.File, f.Line, f.Col, f.Severity, f.Code, f.Message)
}

// runVet statically checks each file (or stdin for "-") without
// executing anything: every statement is analyzed against a script
// catalog that follows the file's DDL, and findings print as
// file:line:col: severity CODE: message, or as JSON Lines with -json.
// The exit code is 1 when any file fails to read or parse, any
// diagnostic has error severity, or -Werror is set and any diagnostic
// has warning severity; 0 otherwise.
func runVet(args []string, w io.Writer) int {
	jsonOut, werror := false, false
	for len(args) > 0 {
		switch args[0] {
		case "-json", "--json":
			jsonOut = true
		case "-Werror", "--Werror":
			werror = true
		default:
			goto parsed
		}
		args = args[1:]
	}
parsed:
	if len(args) == 0 {
		fmt.Fprintln(w, "usage: taupsm vet [-json] [-Werror] <file.sql ... | ->")
		return 2
	}
	enc := json.NewEncoder(w)
	failed := false
	for _, path := range args {
		var src []byte
		var err error
		if path == "-" {
			src, err = io.ReadAll(os.Stdin)
			path = "<stdin>"
		} else {
			src, err = os.ReadFile(path)
		}
		if err != nil {
			fmt.Fprintf(w, "%s: %v\n", path, err)
			failed = true
			continue
		}
		findings, bad := vetCollect(path, string(src))
		if bad {
			failed = true
		}
		for _, f := range findings {
			if werror && f.Severity == "warning" {
				failed = true
			}
			if jsonOut {
				enc.Encode(f)
			} else {
				fmt.Fprintln(w, f.text())
			}
		}
	}
	if failed {
		return 1
	}
	return 0
}

// vetCollect checks one script and returns its findings; failed
// reports a parse error or any error-severity diagnostic. A parse
// error becomes a single finding with code "parse".
func vetCollect(path, src string) (findings []vetFinding, failed bool) {
	stmts, err := sqlparser.ParseScript(src)
	if err != nil {
		var perr *sqlparser.Error
		if errors.As(err, &perr) {
			return []vetFinding{{File: path, Line: perr.Pos.Line, Col: perr.Pos.Col,
				Severity: "error", Code: "parse", Message: perr.Msg}}, true
		}
		return []vetFinding{{File: path, Severity: "error", Code: "parse", Message: err.Error()}}, true
	}
	cat := check.NewScriptCatalog(check.FromStorage(storage.NewCatalog()))
	for _, s := range stmts {
		for _, d := range check.Check(cat, s) {
			findings = append(findings, vetFinding{
				File:     path,
				Line:     d.Pos.Line,
				Col:      d.Pos.Col,
				Severity: d.Severity.String(),
				Code:     d.Code,
				Message:  d.Message,
				Hint:     d.Hint,
			})
			if d.Severity == check.Error {
				failed = true
			}
		}
		cat.Apply(s)
	}
	return findings, failed
}

// vetSource checks one script, printing findings in text form; it
// reports whether the script has a parse error or any error-severity
// diagnostic.
func vetSource(w io.Writer, path, src string) bool {
	findings, failed := vetCollect(path, src)
	for _, f := range findings {
		fmt.Fprintln(w, f.text())
	}
	return failed
}
