package main

import (
	"errors"
	"fmt"
	"io"
	"os"

	"taupsm/internal/check"
	"taupsm/internal/sqlparser"
	"taupsm/internal/storage"
)

// runVet statically checks each file (or stdin for "-") without
// executing anything: every statement is analyzed against a script
// catalog that follows the file's DDL, and findings print as
// file:line:col: severity CODE: message. The exit code is 1 when any
// file fails to parse or any diagnostic has error severity, 0
// otherwise.
func runVet(args []string, w io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(w, "usage: taupsm vet <file.sql ... | ->")
		return 2
	}
	failed := false
	for _, path := range args {
		var src []byte
		var err error
		if path == "-" {
			src, err = io.ReadAll(os.Stdin)
			path = "<stdin>"
		} else {
			src, err = os.ReadFile(path)
		}
		if err != nil {
			fmt.Fprintf(w, "%s: %v\n", path, err)
			failed = true
			continue
		}
		if vetSource(w, path, string(src)) {
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

// vetSource checks one script, printing findings; it reports whether
// the script has a parse error or any error-severity diagnostic.
func vetSource(w io.Writer, path, src string) bool {
	stmts, err := sqlparser.ParseScript(src)
	if err != nil {
		var perr *sqlparser.Error
		if errors.As(err, &perr) {
			fmt.Fprintf(w, "%s:%d:%d: error parse: %s\n", path, perr.Pos.Line, perr.Pos.Col, perr.Msg)
		} else {
			fmt.Fprintf(w, "%s: %v\n", path, err)
		}
		return true
	}
	cat := check.NewScriptCatalog(check.FromStorage(storage.NewCatalog()))
	failed := false
	for _, s := range stmts {
		for _, d := range check.Check(cat, s) {
			fmt.Fprintf(w, "%s:%s\n", path, d.String())
			if d.Severity == check.Error {
				failed = true
			}
		}
		cat.Apply(s)
	}
	return failed
}
