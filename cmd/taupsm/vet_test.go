package main

import (
	"regexp"
	"strings"
	"testing"
)

func TestVetBadRoutines(t *testing.T) {
	var out strings.Builder
	code := runVet([]string{"../../testdata/bad_routines.sql"}, &out)
	if code == 0 {
		t.Fatalf("vet of bad_routines.sql exited 0; output:\n%s", out.String())
	}

	// Every finding prints as file:line:col: severity CODE: message.
	lineRE := regexp.MustCompile(`^(.+\.sql):(\d+):(\d+): (error|warning) (TAU\d{3}): .+$`)
	codes := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		m := lineRE.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed diagnostic line %q", line)
			continue
		}
		if m[2] == "0" || m[3] == "0" {
			t.Errorf("diagnostic without a real position: %q", line)
		}
		codes[m[5]] = true
	}
	if len(codes) < 8 {
		t.Errorf("want >= 8 distinct codes, got %d: %v\noutput:\n%s", len(codes), codes, out.String())
	}
	for _, want := range []string{"TAU001", "TAU002", "TAU003", "TAU004", "TAU006", "TAU007", "TAU009", "TAU010", "TAU012", "TAU013", "TAU020"} {
		if !codes[want] {
			t.Errorf("missing code %s in vet output:\n%s", want, out.String())
		}
	}
}

func TestVetCleanScript(t *testing.T) {
	var out strings.Builder
	failed := vetSource(&out, "clean.sql", `
CREATE TABLE t (a INTEGER, b INTEGER);
CREATE FUNCTION sumab () RETURNS INTEGER READS SQL DATA
BEGIN
  RETURN (SELECT SUM(a + b) FROM t);
END;
SELECT a FROM t;
`)
	if failed {
		t.Fatalf("clean script failed vet:\n%s", out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean script produced diagnostics:\n%s", out.String())
	}
}

func TestVetParseError(t *testing.T) {
	var out strings.Builder
	if !vetSource(&out, "broken.sql", "SELECT FROM FROM;") {
		t.Fatal("parse error did not fail vet")
	}
	if !strings.Contains(out.String(), "broken.sql:1:") {
		t.Errorf("parse error lacks position: %q", out.String())
	}
}

func TestVetNoArgs(t *testing.T) {
	var out strings.Builder
	if code := runVet(nil, &out); code != 2 {
		t.Fatalf("runVet with no args = %d, want 2", code)
	}
}
