package main

import (
	"encoding/json"
	"flag"
	"os"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files instead of comparing")

func TestVetBadRoutines(t *testing.T) {
	var out strings.Builder
	code := runVet([]string{"../../testdata/bad_routines.sql"}, &out)
	if code == 0 {
		t.Fatalf("vet of bad_routines.sql exited 0; output:\n%s", out.String())
	}

	// Every finding prints as file:line:col: severity CODE: message.
	lineRE := regexp.MustCompile(`^(.+\.sql):(\d+):(\d+): (error|warning) (TAU\d{3}): .+$`)
	codes := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		m := lineRE.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed diagnostic line %q", line)
			continue
		}
		if m[2] == "0" || m[3] == "0" {
			t.Errorf("diagnostic without a real position: %q", line)
		}
		codes[m[5]] = true
	}
	if len(codes) < 8 {
		t.Errorf("want >= 8 distinct codes, got %d: %v\noutput:\n%s", len(codes), codes, out.String())
	}
	for _, want := range []string{
		"TAU001", "TAU002", "TAU003", "TAU004", "TAU006", "TAU007",
		"TAU009", "TAU010", "TAU012", "TAU013", "TAU020",
		"TAU040", "TAU041", "TAU042", "TAU043", "TAU044", "TAU045",
		"TAU046", "TAU047", "TAU050", "TAU051", "TAU052", "TAU053",
	} {
		if !codes[want] {
			t.Errorf("missing code %s in vet output:\n%s", want, out.String())
		}
	}
}

// TestVetSelfCorpusGolden is the self-vet gate: the analyzer's full
// output over the defect corpus must match the checked-in golden list
// line for line (regenerate with `go test ./cmd/taupsm -run
// SelfCorpus -update`), and the example scripts must vet silently.
func TestVetSelfCorpusGolden(t *testing.T) {
	var out strings.Builder
	if code := runVet([]string{"../../testdata/bad_routines.sql"}, &out); code != 1 {
		t.Fatalf("vet of bad_routines.sql = %d, want 1; output:\n%s", code, out.String())
	}
	got := strings.ReplaceAll(out.String(), "../../testdata/", "testdata/")
	golden := "../../testdata/bad_routines.golden"
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("vet output diverges from %s (rerun with -update after intentional changes)\n--- want\n%s\n--- got\n%s",
			golden, want, got)
	}

	// The clean side of the corpus: example scripts must stay silent.
	for _, path := range []string{"../../examples/quickstart/quickstart.sql"} {
		out.Reset()
		if code := runVet([]string{path}, &out); code != 0 || out.Len() != 0 {
			t.Errorf("%s: vet exit %d with output:\n%s", path, code, out.String())
		}
	}
}

func TestVetCleanScript(t *testing.T) {
	var out strings.Builder
	failed := vetSource(&out, "clean.sql", `
CREATE TABLE t (a INTEGER, b INTEGER);
CREATE FUNCTION sumab () RETURNS INTEGER READS SQL DATA
BEGIN
  RETURN (SELECT SUM(a + b) FROM t);
END;
SELECT a FROM t;
`)
	if failed {
		t.Fatalf("clean script failed vet:\n%s", out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean script produced diagnostics:\n%s", out.String())
	}
}

func TestVetParseError(t *testing.T) {
	var out strings.Builder
	if !vetSource(&out, "broken.sql", "SELECT FROM FROM;") {
		t.Fatal("parse error did not fail vet")
	}
	if !strings.Contains(out.String(), "broken.sql:1:") {
		t.Errorf("parse error lacks position: %q", out.String())
	}
}

func TestVetNoArgs(t *testing.T) {
	var out strings.Builder
	if code := runVet(nil, &out); code != 2 {
		t.Fatalf("runVet with no args = %d, want 2", code)
	}
	out.Reset()
	if code := runVet([]string{"-json", "-Werror"}, &out); code != 2 {
		t.Fatalf("runVet with only flags = %d, want 2", code)
	}
}

func TestVetJSON(t *testing.T) {
	var out strings.Builder
	code := runVet([]string{"-json", "../../testdata/bad_routines.sql"}, &out)
	if code != 1 {
		t.Fatalf("vet -json of bad_routines.sql = %d, want 1; output:\n%s", code, out.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("vet -json produced no output")
	}
	codes := map[string]bool{}
	for _, line := range lines {
		var f struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Severity string `json:"severity"`
			Code     string `json:"code"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("non-JSON line %q: %v", line, err)
		}
		if f.File == "" || f.Line == 0 || f.Col == 0 || f.Code == "" || f.Message == "" {
			t.Errorf("incomplete finding: %q", line)
		}
		if f.Severity != "error" && f.Severity != "warning" {
			t.Errorf("bad severity in %q", line)
		}
		codes[f.Code] = true
	}
	if len(codes) < 8 {
		t.Errorf("want >= 8 distinct codes in JSON output, got %d: %v", len(codes), codes)
	}
}

func TestVetWerror(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/warn.sql"
	// TAU042: a WHERE condition of string type is warning severity.
	src := "CREATE TABLE t (a INTEGER);\nSELECT a FROM t WHERE 'yes';\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := runVet([]string{path}, &out); code != 0 {
		t.Fatalf("warnings without -Werror = exit %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "warning") {
		t.Fatalf("expected a warning diagnostic, got:\n%s", out.String())
	}
	out.Reset()
	if code := runVet([]string{"-Werror", path}, &out); code != 1 {
		t.Fatalf("warnings with -Werror = exit %d, want 1; output:\n%s", code, out.String())
	}
}
