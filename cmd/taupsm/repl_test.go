package main

import (
	"strings"
	"testing"

	"taupsm"
)

// replOut feeds input lines to the REPL and returns everything it
// printed.
func replOut(t *testing.T, db *taupsm.DB, input string) string {
	t.Helper()
	var out strings.Builder
	if err := runREPL(strings.NewReader(input), &out, db); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestREPLExecutesStatements(t *testing.T) {
	out := replOut(t, taupsm.Open(), `
CREATE TABLE author (author_id CHAR(10), first_name CHAR(50)) AS VALIDTIME;
NONSEQUENCED VALIDTIME INSERT INTO author VALUES
  ('a1', 'Ben', DATE '2010-01-01', DATE '2010-07-01');
VALIDTIME SELECT first_name FROM author;
\q
`)
	if !strings.Contains(out, "Ben") {
		t.Fatalf("query result missing from output:\n%s", out)
	}
	if !strings.Contains(out, "(1 rows affected)") {
		t.Fatalf("affected-rows note missing:\n%s", out)
	}
}

// A routine body holds inner semicolons; the REPL must keep buffering
// until the statement is complete.
func TestREPLBuffersCompoundStatements(t *testing.T) {
	out := replOut(t, taupsm.Open(), `
CREATE TABLE author (author_id CHAR(10), first_name CHAR(50)) AS VALIDTIME;
CREATE FUNCTION get_author_name (aid CHAR(10))
RETURNS CHAR(50)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE fname CHAR(50);
  SET fname = (SELECT first_name FROM author WHERE author_id = aid);
  RETURN fname;
END;
SELECT get_author_name('a1') FROM author;
\q
`)
	if strings.Contains(out, "error:") {
		t.Fatalf("unexpected error:\n%s", out)
	}
	// the continuation prompt must have appeared while buffering
	if !strings.Contains(out, "...>") {
		t.Fatalf("no continuation prompt:\n%s", out)
	}
}

// Errors echo the offending statement, so a failure inside a
// multi-statement line is attributable.
func TestREPLEchoesFailingStatement(t *testing.T) {
	out := replOut(t, taupsm.Open(), `
CREATE TABLE t (x CHAR(5)); SELECT x FROM missing_table;
\q
`)
	if !strings.Contains(out, "error:") {
		t.Fatalf("no error reported:\n%s", out)
	}
	if !strings.Contains(out, "statement: SELECT x FROM missing_table") {
		t.Fatalf("offending statement not echoed:\n%s", out)
	}
}

func TestREPLParseErrorEchoesInput(t *testing.T) {
	out := replOut(t, taupsm.Open(), "SELEC nonsense;\n\\q\n")
	if !strings.Contains(out, "error:") || !strings.Contains(out, "statement: SELEC nonsense") {
		t.Fatalf("parse error not echoed:\n%s", out)
	}
}

func TestREPLTimingAndMetrics(t *testing.T) {
	out := replOut(t, taupsm.Open(), `
\timing
CREATE TABLE t (x CHAR(5));
\metrics
\timing off
\q
`)
	if !strings.Contains(out, "Timing is on.") {
		t.Fatalf("timing toggle missing:\n%s", out)
	}
	if !strings.Contains(out, "Time: ") || !strings.Contains(out, " ms") {
		t.Fatalf("no millisecond elapsed time printed:\n%s", out)
	}
	if !strings.Contains(out, "stratum.statements_total 1") {
		t.Fatalf("metrics exposition missing statement counter:\n%s", out)
	}
	if !strings.Contains(out, "stratum.parse_ns") {
		t.Fatalf("metrics exposition missing latency histogram:\n%s", out)
	}
	if !strings.Contains(out, "Timing is off.") {
		t.Fatalf("timing off missing:\n%s", out)
	}
}

func TestREPLStrategyAndMisc(t *testing.T) {
	out := replOut(t, taupsm.Open(), `
\strategy
\strategy max
\strategy bogus
\help
partial input
\r
\unknown
\q
`)
	for _, want := range []string{
		"Strategy is AUTO.",
		"Strategy is MAX.",
		`unknown strategy "bogus"`,
		"Backslash commands:",
		"Statement buffer cleared.",
		`unknown command \unknown`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// \metrics reset clears every series, and \parallel shows or sets the
// fragment worker-pool size.
func TestREPLMetricsResetAndParallel(t *testing.T) {
	db := taupsm.Open()
	out := replOut(t, db, `
CREATE TABLE t (x CHAR(5));
\metrics reset
\metrics
\parallel 8
\parallel
\parallel zero
\q
`)
	if !strings.Contains(out, "Metrics reset.") {
		t.Fatalf("reset note missing:\n%s", out)
	}
	// After the reset, the exposition that follows shows a zeroed
	// statement counter.
	if !strings.Contains(out, "stratum.statements_total 0") {
		t.Fatalf("counter not reset:\n%s", out)
	}
	if strings.Count(out, "Parallelism is 8.") != 2 {
		t.Fatalf("parallel set/show missing:\n%s", out)
	}
	if db.Parallelism() != 8 {
		t.Fatalf("db parallelism = %d, want 8", db.Parallelism())
	}
	if !strings.Contains(out, `\parallel wants a positive integer`) {
		t.Fatalf("bad \\parallel argument not rejected:\n%s", out)
	}
}

// EOF with a dangling unterminated statement still executes it (the
// REPL appends the final semicolon).
func TestREPLDanglingStatementOnEOF(t *testing.T) {
	out := replOut(t, taupsm.Open(), "CREATE TABLE t (x CHAR(5))\n")
	if strings.Contains(out, "error:") {
		t.Fatalf("dangling statement failed:\n%s", out)
	}
}

// A parse error prints the offending line with a caret under the
// failing column.
func TestREPLParseErrorCaret(t *testing.T) {
	out := replOut(t, taupsm.Open(), "SELECT x FROM;\n\\q\n")
	if !strings.Contains(out, "error:") {
		t.Fatalf("no parse error:\n%s", out)
	}
	if !strings.Contains(out, "  SELECT x FROM;") || !strings.Contains(out, "^") {
		t.Fatalf("no caret rendering:\n%s", out)
	}
}

func TestREPLLintToggle(t *testing.T) {
	out := replOut(t, taupsm.Open(), `
CREATE TABLE t (a INTEGER);
\lint on
SELECT b FROM missing;
\lint off
\q
`)
	if !strings.Contains(out, "Lint is on.") || !strings.Contains(out, "Lint is off.") {
		t.Fatalf("lint toggle missing:\n%s", out)
	}
	if !strings.Contains(out, "TAU004") {
		t.Fatalf("no lint diagnostic for unknown table:\n%s", out)
	}
}

// A rejected CREATE points a caret at the offending position.
func TestREPLCreateRejectionCaret(t *testing.T) {
	out := replOut(t, taupsm.Open(), `CREATE PROCEDURE p ()
BEGIN
  SET nope = 1;
END;
\q
`)
	if !strings.Contains(out, "TAU001") {
		t.Fatalf("CREATE not rejected by analyzer:\n%s", out)
	}
	if !strings.Contains(out, "  SET nope = 1;") {
		t.Fatalf("offending line not echoed with caret:\n%s", out)
	}
}

func TestREPLTraceToggle(t *testing.T) {
	out := replOut(t, taupsm.Open(), `
\trace
CREATE TABLE t (x CHAR(5)) AS VALIDTIME;
VALIDTIME SELECT x FROM t;
\trace off
CREATE TABLE u (y CHAR(5));
\q
`)
	if !strings.Contains(out, "Trace is on.") || !strings.Contains(out, "Trace is off.") {
		t.Fatalf("trace toggle missing:\n%s", out)
	}
	// Each traced statement prints its trace ID and the stage tree.
	if n := strings.Count(out, "Trace: "); n != 2 {
		t.Fatalf("want 2 trace ID lines, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "stratum.statement") || !strings.Contains(out, "  stratum.translate") {
		t.Fatalf("stage tree missing:\n%s", out)
	}
	// After \trace off, the untraced statement prints no tree.
	tail := out[strings.LastIndex(out, "Trace is off."):]
	if strings.Contains(tail, "stratum.statement") {
		t.Fatalf("trace output after \\trace off:\n%s", out)
	}
}

func TestREPLSlowLog(t *testing.T) {
	out := replOut(t, taupsm.Open(), `
\slowlog
\slowlog 1ns
CREATE TABLE t (x CHAR(5));
\slowlog off
\slowlog bogus
\q
`)
	if !strings.Contains(out, "Slow-query log is off.") {
		t.Fatalf("disarmed state missing:\n%s", out)
	}
	if !strings.Contains(out, "Slow-query log threshold is 1ns.") {
		t.Fatalf("threshold not reported:\n%s", out)
	}
	// The armed statement logged one JSON entry to the REPL output.
	if !strings.Contains(out, `"statement":"CREATE TABLE t (x CHAR(5))"`) ||
		!strings.Contains(out, `"elapsed_ns"`) {
		t.Fatalf("no slow-log JSON line:\n%s", out)
	}
	if !strings.Contains(out, "error: \\slowlog wants a positive duration") {
		t.Fatalf("bad duration not rejected:\n%s", out)
	}
}

// \timing reports the span clock: the same end-to-end measurement the
// trace's root span carries.
func TestREPLTimingMatchesTrace(t *testing.T) {
	db := taupsm.Open()
	out := replOut(t, db, `
\timing on
\trace on
CREATE TABLE t (x CHAR(5));
\q
`)
	if !strings.Contains(out, "Trace: ") || !strings.Contains(out, "Time: ") {
		t.Fatalf("trace or timing output missing:\n%s", out)
	}
	_, elapsed := db.LastStatement()
	if elapsed <= 0 {
		t.Fatalf("span clock not recorded: %v", elapsed)
	}
}
