package taupsm_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"taupsm"
	"taupsm/internal/enginetest"
)

// Live query introspection tests: process-list visibility, progress
// monotonicity, registry cleanup, cooperative kill (KILL and context
// cancellation), and the kill-rollback differential — a killed
// statement must leave storage exactly as if it never ran.

// slowDB builds a valid-time table whose rows carry staggered periods
// (many constant periods under sequenced evaluation) plus a spin(x)
// stored function that burns loop PSM statements per call and returns
// x unchanged. Queries calling spin per row run long enough to observe
// and kill.
func slowDB(t testing.TB, rows, loop int) *taupsm.DB {
	t.Helper()
	db := taupsm.Open()
	db.SetNow(2010, 6, 15)
	db.MustExec(`CREATE TABLE work (k INTEGER, v INTEGER) AS VALIDTIME`)
	var b strings.Builder
	b.WriteString("NONSEQUENCED VALIDTIME INSERT INTO work VALUES ")
	base := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < rows; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		lo := base.AddDate(0, 0, i)
		hi := lo.AddDate(0, 0, 30)
		fmt.Fprintf(&b, "(%d, %d, DATE '%s', DATE '%s')",
			i, i%7, lo.Format("2006-01-02"), hi.Format("2006-01-02"))
	}
	db.MustExec(b.String())
	db.MustExec(fmt.Sprintf(`CREATE FUNCTION spin (x INTEGER) RETURNS INTEGER
BEGIN
  DECLARE i INTEGER;
  SET i = 0;
  WHILE i < %d DO SET i = i + 1; END WHILE;
  RETURN x + i - %d;
END`, loop, loop))
	return db
}

const slowQuery = `VALIDTIME (DATE '2010-01-01', DATE '2010-04-01') SELECT k, spin(k) FROM work`

// waitEmpty polls until no process is in flight (the worker goroutine
// has deregistered its statement).
func waitEmpty(t *testing.T, db *taupsm.DB) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(db.ProcessList()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("registry not empty: %+v", db.ProcessList())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestProcessListKill is the tentpole scenario: a long-running
// sequenced MAX statement is visible in the process list with
// monotonically advancing progress counters, KILL stops it with an
// error wrapping ErrQueryKilled, and the registry is empty afterward.
func TestProcessListKill(t *testing.T) {
	db := slowDB(t, 40, 50000)
	defer db.Close()
	db.SetStrategy(taupsm.Max)
	db.SetParallelism(4)

	if n := len(db.ProcessList()); n != 0 {
		t.Fatalf("process list not empty before work: %d", n)
	}

	errc := make(chan error, 1)
	go func() {
		_, err := db.Query(slowQuery)
		errc <- err
	}()

	// Poll until the statement is visible with advancing progress,
	// checking monotonicity on the way.
	var prev taupsm.ProcessSnapshot
	var pid int64
	advanced := false
	deadline := time.Now().Add(30 * time.Second)
	for !advanced {
		if time.Now().After(deadline) {
			t.Fatal("statement never showed advancing progress")
		}
		select {
		case err := <-errc:
			t.Fatalf("statement finished before it could be observed: %v", err)
		default:
		}
		ls := db.ProcessList()
		if len(ls) == 0 {
			time.Sleep(time.Millisecond)
			continue
		}
		s := ls[0]
		if pid == 0 {
			pid = s.ID
			if s.Kind != "sequenced" || !strings.Contains(s.SQL, "spin(k)") {
				t.Fatalf("unexpected entry: %+v", s)
			}
		}
		if s.ID == prev.ID {
			if s.RoutineCalls < prev.RoutineCalls || s.FragsDone < prev.FragsDone ||
				s.CPDone < prev.CPDone || s.Rows < prev.Rows || s.RowsScanned < prev.RowsScanned {
				t.Fatalf("progress regressed: %+v -> %+v", prev, s)
			}
			if s.RoutineCalls > prev.RoutineCalls && prev.RoutineCalls > 0 {
				advanced = true
			}
		}
		prev = s
		time.Sleep(time.Millisecond)
	}
	if prev.Strategy != "MAX" {
		t.Errorf("strategy = %q, want MAX", prev.Strategy)
	}
	if prev.Stage == "" || prev.StartUnixNS == 0 || prev.ElapsedNS <= 0 {
		t.Errorf("snapshot missing liveness fields: %+v", prev)
	}

	if err := db.Kill(pid); err != nil {
		t.Fatal(err)
	}
	err := <-errc
	if err == nil {
		t.Fatal("killed statement returned nil error")
	}
	if !errors.Is(err, taupsm.ErrQueryKilled) {
		t.Fatalf("error does not wrap ErrQueryKilled: %v", err)
	}
	waitEmpty(t, db)

	// Killing the now-finished pid is an error.
	if err := db.Kill(pid); err == nil {
		t.Fatal("Kill of finished pid succeeded")
	}

	// The database stays fully usable: the same query completes.
	quick := slowDB(t, 8, 10)
	defer quick.Close()
	if _, err := quick.Query(slowQuery); err != nil {
		t.Fatalf("post-kill query: %v", err)
	}
}

// TestRegistryEmptyAfterCompletion: normal completion also deregisters.
func TestRegistryEmptyAfterCompletion(t *testing.T) {
	db := slowDB(t, 8, 10)
	defer db.Close()
	db.SetStrategy(taupsm.Max)
	if _, err := db.Query(slowQuery); err != nil {
		t.Fatal(err)
	}
	if n := len(db.ProcessList()); n != 0 {
		t.Fatalf("registry has %d entries after completion", n)
	}
}

// TestContextCancellation: a cancelled client context kills the
// statement and the error carries the context's cause, not
// ErrQueryKilled.
func TestContextCancellation(t *testing.T) {
	db := slowDB(t, 40, 50000)
	defer db.Close()
	db.SetStrategy(taupsm.Max)
	db.SetParallelism(4)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := db.QueryContext(ctx, slowQuery)
		errc <- err
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("statement never appeared in the process list")
		}
		if ls := db.ProcessList(); len(ls) > 0 && ls[0].RoutineCalls > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-errc
	if err == nil {
		t.Fatal("cancelled statement returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if errors.Is(err, taupsm.ErrQueryKilled) {
		t.Fatalf("context cancellation mislabeled as KILL: %v", err)
	}
	waitEmpty(t, db)
}

// dump renders the table's full nonsequenced history, sorted — the
// storage-equality probe of the differential tests.
func dump(t *testing.T, db *taupsm.DB) string {
	t.Helper()
	res, err := db.Query(`NONSEQUENCED VALIDTIME
		SELECT k, v, begin_time, end_time FROM work ORDER BY begin_time, k, v`)
	if err != nil {
		t.Fatal(err)
	}
	return enginetest.RenderRows(res)
}

// TestKillRollbackDifferential: killing an UPDATE mid-run rolls its
// journal back, leaving storage identical to a control database that
// never ran the statement — and both databases keep agreeing on
// sequenced queries under both strategies afterward. The UPDATE runs
// under current semantics (sequenced DML may not invoke routines, and
// spin is what makes it observable/killable); on a valid-time table
// that is still journaled period surgery, so the rollback property it
// probes is the same.
func TestKillRollbackDifferential(t *testing.T) {
	victim := slowDB(t, 40, 50000)
	defer victim.Close()
	control := slowDB(t, 40, 50000)
	defer control.Close()
	// Move "now" inside the rows' periods so the current UPDATE has
	// rows to modify.
	victim.SetNow(2010, 1, 20)
	control.SetNow(2010, 1, 20)

	before := dump(t, victim)
	if before != dump(t, control) {
		t.Fatal("victim and control diverge before the kill")
	}

	update := `UPDATE work SET v = spin(k)`
	errc := make(chan error, 1)
	go func() {
		_, err := victim.Exec(update)
		errc <- err
	}()
	deadline := time.Now().Add(30 * time.Second)
	var pid int64
	for pid == 0 {
		if time.Now().After(deadline) {
			t.Fatal("update never appeared with routine calls in flight")
		}
		select {
		case err := <-errc:
			t.Fatalf("update finished before it could be killed: %v", err)
		default:
		}
		if ls := victim.ProcessList(); len(ls) > 0 && ls[0].RoutineCalls > 0 {
			pid = ls[0].ID
		}
		time.Sleep(time.Millisecond)
	}
	if err := victim.Kill(pid); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; !errors.Is(err, taupsm.ErrQueryKilled) {
		t.Fatalf("killed update error = %v", err)
	}
	waitEmpty(t, victim)

	if after := dump(t, victim); after != before {
		t.Fatalf("kill left residue in storage\n--- before ---\n%s--- after ---\n%s", before, after)
	}

	// Post-kill agreement: both strategies, both databases.
	probe := `VALIDTIME (DATE '2010-01-15', DATE '2010-03-01') SELECT k, v FROM work`
	for _, s := range []taupsm.Strategy{taupsm.Max, taupsm.PerStatement} {
		victim.SetStrategy(s)
		control.SetStrategy(s)
		vr, err := victim.Query(probe)
		if err != nil {
			t.Fatalf("victim %v: %v", s, err)
		}
		cr, err := control.Query(probe)
		if err != nil {
			t.Fatalf("control %v: %v", s, err)
		}
		if enginetest.RenderRows(vr) != enginetest.RenderRows(cr) {
			t.Fatalf("strategy %v: victim and control disagree after kill", s)
		}
	}

	// And the victim still accepts writes: an update with a cheap
	// expression commits.
	if _, err := victim.Exec(`UPDATE work SET v = v + 1`); err != nil {
		t.Fatalf("post-kill update: %v", err)
	}
}

// TestBitemporalKillAgreement: killing an UPDATE on a bitemporal table
// mid-run must not record any transaction-time state — the audit trail
// stays identical to a control that never ran it (the cross-axis
// agreement property under kills).
func TestBitemporalKillAgreement(t *testing.T) {
	mk := func() *taupsm.DB {
		db := taupsm.Open()
		db.SetNow(2011, 1, 10)
		db.MustExec(`CREATE TABLE position (id CHAR(4), grade INTEGER) AS VALIDTIME AS TRANSACTIONTIME`)
		var b strings.Builder
		b.WriteString("VALIDTIME (DATE '2011-01-01', DATE '2011-07-01') INSERT INTO position VALUES ")
		for i := 0; i < 30; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "('p%02d', %d)", i, i)
		}
		db.MustExec(b.String())
		db.MustExec(`CREATE FUNCTION spin2 (x INTEGER) RETURNS INTEGER
BEGIN
  DECLARE i INTEGER;
  SET i = 0;
  WHILE i < 50000 DO SET i = i + 1; END WHILE;
  RETURN x + i - 50000;
END`)
		db.SetNow(2011, 2, 10)
		return db
	}
	victim, control := mk(), mk()
	defer victim.Close()
	defer control.Close()

	audit := func(db *taupsm.DB) string {
		res, err := db.Query(`NONSEQUENCED TRANSACTIONTIME
			SELECT id, grade, begin_time, end_time FROM position ORDER BY id, begin_time`)
		if err != nil {
			t.Fatal(err)
		}
		return enginetest.RenderRows(res)
	}
	before := audit(victim)
	if before != audit(control) {
		t.Fatal("victim and control audit trails diverge before the kill")
	}

	errc := make(chan error, 1)
	go func() {
		_, err := victim.Exec(`UPDATE position SET grade = spin2(grade)`)
		errc <- err
	}()
	deadline := time.Now().Add(30 * time.Second)
	var pid int64
	for pid == 0 {
		if time.Now().After(deadline) {
			t.Fatal("update never appeared with routine calls in flight")
		}
		select {
		case err := <-errc:
			t.Fatalf("update finished before it could be killed: %v", err)
		default:
		}
		if ls := victim.ProcessList(); len(ls) > 0 && ls[0].RoutineCalls > 0 {
			pid = ls[0].ID
		}
		time.Sleep(time.Millisecond)
	}
	if err := victim.Kill(pid); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; !errors.Is(err, taupsm.ErrQueryKilled) {
		t.Fatalf("killed update error = %v", err)
	}
	waitEmpty(t, victim)

	if after := audit(victim); after != before {
		t.Fatalf("kill recorded transaction-time state\n--- before ---\n%s--- after ---\n%s", before, after)
	}
	// Both axes agree with the control afterward.
	for _, probe := range []string{
		`SELECT id, grade FROM position`,
		`VALIDTIME (DATE '2011-01-01', DATE '2012-01-01') SELECT id, grade FROM position`,
		`VALIDTIME (DATE '2011-05-01') AND TRANSACTIONTIME (DATE '2011-02-01') SELECT id, grade FROM position`,
	} {
		vr, err := victim.Query(probe)
		if err != nil {
			t.Fatalf("victim %q: %v", probe, err)
		}
		cr, err := control.Query(probe)
		if err != nil {
			t.Fatalf("control %q: %v", probe, err)
		}
		if enginetest.RenderRows(vr) != enginetest.RenderRows(cr) {
			t.Fatalf("%q: victim and control disagree after kill", probe)
		}
	}
}

// TestKillPersistentRecovery: on a persistent database, a killed
// statement must leave nothing in the WAL — after closing and
// recovering, storage matches a control that never ran it, and the
// database accepts further committed writes.
func TestKillPersistentRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := taupsm.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.SetNow(2010, 1, 20)
	db.MustExec(`CREATE TABLE work (k INTEGER, v INTEGER) AS VALIDTIME`)
	var b strings.Builder
	b.WriteString("NONSEQUENCED VALIDTIME INSERT INTO work VALUES ")
	for i := 0; i < 30; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d, DATE '2010-01-01', DATE '2010-03-01')", i, i)
	}
	db.MustExec(b.String())
	db.MustExec(`CREATE FUNCTION spin (x INTEGER) RETURNS INTEGER
BEGIN
  DECLARE i INTEGER;
  SET i = 0;
  WHILE i < 50000 DO SET i = i + 1; END WHILE;
  RETURN x + i - 50000;
END`)
	before := dump(t, db)

	errc := make(chan error, 1)
	go func() {
		_, err := db.Exec(`UPDATE work SET v = spin(k)`)
		errc <- err
	}()
	deadline := time.Now().Add(30 * time.Second)
	var pid int64
	for pid == 0 {
		if time.Now().After(deadline) {
			t.Fatal("update never appeared with routine calls in flight")
		}
		select {
		case err := <-errc:
			t.Fatalf("update finished before it could be killed: %v", err)
		default:
		}
		if ls := db.ProcessList(); len(ls) > 0 && ls[0].RoutineCalls > 0 {
			pid = ls[0].ID
		}
		time.Sleep(time.Millisecond)
	}
	if err := db.Kill(pid); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; !errors.Is(err, taupsm.ErrQueryKilled) {
		t.Fatalf("killed update error = %v", err)
	}
	waitEmpty(t, db)
	// A committed write after the kill, then recover.
	db.MustExec(`UPDATE work SET v = v + 100 WHERE k = 0`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := taupsm.OpenDir(dir)
	if err != nil {
		t.Fatalf("recovery after kill: %v", err)
	}
	defer db2.Close()
	db2.SetNow(2010, 1, 20)
	after := dump(t, db2)
	if after == before {
		t.Fatal("post-kill committed write did not survive recovery")
	}
	if !strings.Contains(after, "100") {
		t.Fatalf("recovered state missing committed write:\n%s", after)
	}
	// The killed update's spin result (k + 0 for every row) must not
	// appear: row k=5 keeps v=5.
	res, err := db2.Query(`SELECT v FROM work WHERE k = 5`)
	if err != nil {
		t.Fatal(err)
	}
	if got := enginetest.RenderRows(res); !strings.Contains(got, "5") {
		t.Fatalf("killed update leaked into the WAL: row k=5 has v=%s", got)
	}
}

// TestShowProcesslistAndKillSQL drives the SQL surface: SHOW
// PROCESSLIST, KILL <pid>, and the tau_stat_activity system table
// (which observes the querying statement itself).
func TestShowProcesslistAndKillSQL(t *testing.T) {
	db := slowDB(t, 40, 50000)
	defer db.Close()

	// An idle database: SHOW PROCESSLIST returns the activity columns
	// and no rows — the SHOW statement is answered by the stratum
	// before registration, so unlike tau_stat_activity it does not
	// observe itself.
	res, err := db.Exec(`SHOW PROCESSLIST`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) == 0 || res.Columns[0] != "pid" {
		t.Fatalf("SHOW PROCESSLIST columns = %v", res.Columns)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("SHOW PROCESSLIST on idle db: %d rows, want 0", len(res.Rows))
	}

	// tau_stat_activity via plain SQL sees exactly the querying
	// statement.
	res, err = db.Query(`SELECT kind, statement FROM tau_stat_activity`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][1].String(), "tau_stat_activity") {
		t.Fatalf("tau_stat_activity self-view = %v", res.Rows)
	}

	// KILL of an unknown pid is an error.
	if _, err := db.Exec(`KILL 999999`); err == nil {
		t.Fatal("KILL of unknown pid succeeded")
	}

	// KILL a live statement through SQL.
	db.SetStrategy(taupsm.Max)
	db.SetParallelism(4)
	errc := make(chan error, 1)
	go func() {
		_, err := db.Query(slowQuery)
		errc <- err
	}()
	deadline := time.Now().Add(30 * time.Second)
	var pid int64
	for pid == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow query never appeared")
		}
		for _, s := range db.ProcessList() {
			if s.Kind == "sequenced" && s.RoutineCalls > 0 {
				pid = s.ID
			}
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := db.Exec(fmt.Sprintf("KILL %d", pid)); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; !errors.Is(err, taupsm.ErrQueryKilled) {
		t.Fatalf("killed query error = %v", err)
	}
	waitEmpty(t, db)
}

// TestProcessRegistryDisabled: with the registry off (the A/A overhead
// switch) statements are invisible and unkillable, but execute
// normally.
func TestProcessRegistryDisabled(t *testing.T) {
	db := slowDB(t, 8, 10)
	defer db.Close()
	db.SetProcessRegistry(false)
	res, err := db.Query(slowQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows with registry off")
	}
	if n := len(db.ProcessList()); n != 0 {
		t.Fatalf("registry off but %d entries", n)
	}
	db.SetProcessRegistry(true)
	res, err = db.Query(`SELECT pid FROM tau_stat_activity`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("registry back on: %d entries, want 1 (self)", len(res.Rows))
	}
}
