package taupsm

// Durability tests: the persistence contract is that a database
// reopened from its data directory — after a clean close OR after a
// crash at ANY single I/O operation — holds exactly the state of some
// statement-aligned prefix of what was acknowledged, and specifically
// the full acknowledged prefix (a statement whose Exec returned
// success is never lost, one whose Exec failed never partially
// applies). The fault-injection harness below proves this for every
// injection point of a multi-statement workload.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"taupsm/internal/sqlast"
	"taupsm/internal/storage"
	"taupsm/internal/wal"
)

// stateDump renders the persistent part of a database's catalog
// deterministically: durable tables with rows in storage order, views,
// and routines. Temporary tables are session scratch and excluded —
// they are exactly what recovery is NOT expected to rebuild.
func stateDump(db *DB) string {
	cat := db.eng.Cat
	var b strings.Builder
	tables := cat.TableNames()
	sort.Strings(tables)
	for _, name := range tables {
		t := cat.Table(name)
		if t.Temporary {
			continue
		}
		fmt.Fprintf(&b, "table %s valid=%v trans=%v cols=%v\n", t.Name, t.ValidTime, t.TransactionTime, t.Schema.Cols)
		for _, row := range t.Rows {
			fmt.Fprintf(&b, "  %v\n", row)
		}
	}
	views := cat.ViewNames()
	sort.Strings(views)
	for _, name := range views {
		v := cat.View(name)
		s := &sqlast.CreateViewStmt{Name: v.Name, Cols: v.Cols, Query: v.Query, Mod: v.Mod}
		fmt.Fprintf(&b, "view %s: %s\n", name, s.SQL())
	}
	routines := cat.RoutineNames()
	sort.Strings(routines)
	for _, name := range routines {
		r := cat.Routine(name)
		if r.Kind == storage.KindFunction {
			fmt.Fprintf(&b, "routine %s: %s\n", name, r.Fn.SQL())
		} else {
			fmt.Fprintf(&b, "routine %s: %s\n", name, r.Proc.SQL())
		}
	}
	return b.String()
}

// durabilityWorkload is a deterministic statement sequence covering
// every effect the WAL can carry: DDL (temporal and plain tables,
// views, routines, ALTER ... ADD VALIDTIME), current and nonsequenced
// inserts, sequenced and current updates and deletes, and a procedure
// whose CALL commits several effects as one statement. Every statement
// changes durable state, so the acknowledged-statement count fully
// determines the expected recovered state.
func durabilityWorkload() []string {
	return []string{
		`CREATE TABLE item (id INTEGER, name CHAR(20), price INTEGER) AS VALIDTIME`,
		`CREATE TABLE plain (k INTEGER, v INTEGER)`,
		`NONSEQUENCED VALIDTIME INSERT INTO item VALUES (1, 'alpha', 10, DATE '2010-01-01', DATE '2012-01-01')`,
		`NONSEQUENCED VALIDTIME INSERT INTO item VALUES (2, 'beta', 20, DATE '2010-03-01', DATE '2010-09-01')`,
		`NONSEQUENCED VALIDTIME INSERT INTO item VALUES (3, 'gamma', 30, DATE '2010-06-01', DATE '2011-06-01')`,
		`INSERT INTO plain VALUES (1, 100), (2, 200), (3, 300)`,
		`INSERT INTO item VALUES (4, 'delta', 40)`,
		`VALIDTIME (DATE '2010-04-01', DATE '2010-08-01') UPDATE item SET price = price + 5 WHERE id = 2`,
		`UPDATE plain SET v = v + 1 WHERE k = 1`,
		`VALIDTIME (DATE '2010-06-01', DATE '2010-07-01') DELETE FROM item WHERE id = 3`,
		`DELETE FROM plain WHERE k = 2`,
		`CREATE VIEW cheap AS SELECT id FROM item WHERE price < 25`,
		`CREATE FUNCTION bump (x INTEGER) RETURNS INTEGER RETURN x + 1`,
		`CREATE PROCEDURE pay (IN d INTEGER) MODIFIES SQL DATA LANGUAGE SQL BEGIN UPDATE plain SET v = v + d; INSERT INTO plain VALUES (9, d); END`,
		`CALL pay(7)`,
		`INSERT INTO plain VALUES (10, 1000)`,
		`VALIDTIME (DATE '2010-01-01', DATE '2010-02-01') UPDATE item SET name = 'alpha2' WHERE id = 1`,
		`NONSEQUENCED VALIDTIME INSERT INTO item VALUES (5, 'eps', 50, DATE '2011-01-01', DATE '2011-12-01')`,
		`UPDATE plain SET v = v * 2 WHERE k = 3`,
		`DELETE FROM plain WHERE k = 9`,
		`DROP VIEW cheap`,
		`CREATE VIEW rich AS SELECT id FROM item WHERE price > 15`,
		`INSERT INTO plain VALUES (11, 1), (12, 2), (13, 3)`,
		`VALIDTIME (DATE '2010-09-01', DATE '2011-03-01') DELETE FROM item WHERE id = 1`,
		`UPDATE plain SET v = v - 1`,
		`ALTER TABLE plain ADD VALIDTIME`,
		`INSERT INTO plain VALUES (14, 999)`,
		`DELETE FROM plain WHERE k = 11`,
		`DROP FUNCTION bump`,
		`NONSEQUENCED VALIDTIME INSERT INTO item VALUES (6, 'zeta', 60, DATE '2010-02-01', DATE '2010-04-01')`,
	}
}

// openMem opens a persistent database over fs with the workload's
// fixed clock.
func openMem(t *testing.T, fs wal.FS) *DB {
	t.Helper()
	db, err := OpenFS(fs)
	if err != nil {
		t.Fatalf("OpenFS: %v", err)
	}
	db.SetNow(2010, 7, 1)
	return db
}

// TestPersistRoundtrip is the basic contract over a real directory:
// exec, close, reopen, same state and same query results.
func TestPersistRoundtrip(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	db.SetNow(2010, 7, 1)
	for _, stmt := range durabilityWorkload() {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("exec %q: %v", stmt, err)
		}
	}
	const q = `VALIDTIME (DATE '2010-01-01', DATE '2012-01-01') SELECT id, name, price FROM item`
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := stateDump(db)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	db2.SetNow(2010, 7, 1)
	if got := stateDump(db2); got != want {
		t.Fatalf("recovered state differs:\n--- want\n%s--- got\n%s", want, got)
	}
	res2, err := db2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != res2.String() {
		t.Fatalf("query results differ after reopen:\n--- before\n%s--- after\n%s", res, res2)
	}
	if !db2.Persistent() || db2.RecoveryInfo() == nil {
		t.Fatal("reopened database does not report persistence")
	}
}

// TestCheckpointCompacts proves checkpoint preserves state and resets
// the log: after Checkpoint the WAL holds only its header, and a
// reopen recovers everything from the snapshot alone.
func TestCheckpointCompacts(t *testing.T) {
	fs := wal.NewMemFS()
	db := openMem(t, fs)
	for _, stmt := range durabilityWorkload() {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("exec %q: %v", stmt, err)
		}
	}
	want := stateDump(db)
	before := db.Metrics().Value("wal.bytes")
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if after := db.Metrics().Value("wal.bytes"); after >= before {
		t.Fatalf("checkpoint did not shrink the log: %d -> %d bytes", before, after)
	}
	db.Close()

	db2 := openMem(t, fs.CrashImage())
	defer db2.Close()
	if got := stateDump(db2); got != want {
		t.Fatalf("post-checkpoint recovery differs:\n--- want\n%s--- got\n%s", want, got)
	}
	info := db2.RecoveryInfo()
	if info.Commits != 0 {
		t.Fatalf("recovery replayed %d commits from a checkpointed log, want 0", info.Commits)
	}
}

// TestInMemoryHasNoCheckpoint pins the in-memory API: Checkpoint
// errors, Close is a no-op, the database is not persistent.
func TestInMemoryHasNoCheckpoint(t *testing.T) {
	db := Open()
	if db.Persistent() || db.RecoveryInfo() != nil {
		t.Fatal("in-memory database claims persistence")
	}
	if err := db.Checkpoint(); err == nil {
		t.Fatal("in-memory Checkpoint succeeded")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("in-memory Close: %v", err)
	}
}

// TestRecoveryMetricsVisible asserts the durability counters surface
// through the same registry the REPL's \metrics prints.
func TestRecoveryMetricsVisible(t *testing.T) {
	fs := wal.NewMemFS()
	db := openMem(t, fs)
	if _, err := db.Exec(`CREATE TABLE m (x INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO m VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2 := openMem(t, fs.CrashImage())
	defer db2.Close()
	m := db2.Metrics()
	if got := m.Value("wal.recovery_commits"); got != 2 {
		t.Fatalf("wal.recovery_commits = %d, want 2", got)
	}
	if m.Value("wal.epoch") < 2 {
		t.Fatalf("wal.epoch = %d, want >= 2 after reopen", m.Value("wal.epoch"))
	}
	text := m.String()
	for _, name := range []string{"wal.epoch", "wal.bytes", "wal.fsyncs_total", "wal.recovery_ns", "wal.recovery_commits"} {
		if !strings.Contains(text, name) {
			t.Fatalf("metrics dump is missing %s:\n%s", name, text)
		}
	}
	e, err := db2.Explain(`SELECT x FROM m`)
	if err != nil {
		t.Fatal(err)
	}
	if e.Durability == "" || !strings.Contains(e.String(), "durability") {
		t.Fatalf("EXPLAIN has no durability line: %+v", e)
	}
}

// TestStatementAtomicityOnDisk is the regression for the
// statement-atomicity fix, on the durable path: an UPDATE that fails
// mid-scan (division by zero after earlier rows were rewritten) leaves
// the table untouched in memory AND writes nothing to the log, so the
// reopened database agrees.
func TestStatementAtomicityOnDisk(t *testing.T) {
	fs := wal.NewMemFS()
	db := openMem(t, fs)
	for _, stmt := range []string{
		`CREATE TABLE acct (id INTEGER, bal INTEGER)`,
		`INSERT INTO acct VALUES (1, 10), (2, 20), (3, 0), (4, 40)`,
	} {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	want := stateDump(db)
	logBytes := db.Metrics().Value("wal.bytes")

	if _, err := db.Exec(`UPDATE acct SET bal = 100 / bal`); err == nil {
		t.Fatal("UPDATE over a zero divisor succeeded")
	}
	if got := stateDump(db); got != want {
		t.Fatalf("failed UPDATE changed memory:\n--- want\n%s--- got\n%s", want, got)
	}
	if got := db.Metrics().Value("wal.bytes"); got != logBytes {
		t.Fatalf("failed UPDATE wrote %d log bytes", got-logBytes)
	}
	db.Close()

	db2 := openMem(t, fs.CrashImage())
	defer db2.Close()
	if got := stateDump(db2); got != want {
		t.Fatalf("failed UPDATE leaked to disk:\n--- want\n%s--- got\n%s", want, got)
	}
}

// TestFaultInjection is the headline harness: for EVERY I/O operation
// position n of the reference run — including the operations of the
// initial Open and its checkpoint — crash the filesystem at n (both
// fail-stop and torn-write models), reopen from the crash image, and
// require the recovered state to be byte-identical to the reference
// state after exactly the acknowledged statements. No acknowledged
// statement may be lost, no unacknowledged statement may surface, no
// crash point may make recovery itself fail.
func TestFaultInjection(t *testing.T) {
	stmts := durabilityWorkload()

	// Reference run: dumps[i] is the state after i acknowledged
	// statements; totalOps the I/O budget a clean run consumes.
	ref := wal.NewMemFS()
	rdb := openMem(t, ref)
	dumps := []string{stateDump(rdb)}
	for _, stmt := range stmts {
		if _, err := rdb.Exec(stmt); err != nil {
			t.Fatalf("reference exec %q: %v", stmt, err)
		}
		dumps = append(dumps, stateDump(rdb))
	}
	totalOps := ref.Ops()
	rdb.Close()

	if totalOps < 50 {
		t.Fatalf("workload exercises only %d I/O operations, need >= 50 crash points", totalOps)
	}

	crashes := 0
	for n := 1; n <= totalOps; n++ {
		for _, mode := range []wal.FaultMode{wal.FaultFail, wal.FaultTorn} {
			fs := wal.NewMemFS()
			fs.SetFault(n, mode)
			acked := 0
			db, err := OpenFS(fs)
			if err == nil {
				db.SetNow(2010, 7, 1)
				for _, stmt := range stmts {
					if _, err := db.Exec(stmt); err != nil {
						break
					}
					acked++
				}
				db.Close()
			}
			if fs.Crashed() {
				crashes++
			}

			img := fs.CrashImage()
			db2, err := OpenFS(img)
			if err != nil {
				t.Fatalf("op %d mode %d: recovery failed: %v", n, mode, err)
			}
			if got := stateDump(db2); got != dumps[acked] {
				t.Errorf("op %d mode %d: recovered state is not the %d-statement prefix:\n--- want\n%s--- got\n%s",
					n, mode, acked, dumps[acked], got)
			}
			db2.Close()
			if t.Failed() {
				return
			}
		}
	}
	t.Logf("fault injection: %d I/O positions, %d crashes, all recoveries prefix-exact", totalOps, crashes)
	if crashes < 50 {
		t.Fatalf("only %d crash points fired, need >= 50", crashes)
	}
}

// TestShortReadAbortsRecovery: a transient read failure during
// recovery must abort Open — never be misread as a truncated log (that
// would silently discard durable statements). A clean retry then
// recovers everything.
func TestShortReadAbortsRecovery(t *testing.T) {
	fs := wal.NewMemFS()
	db := openMem(t, fs)
	for _, stmt := range durabilityWorkload() {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	want := stateDump(db)
	db.Close()
	img := fs.CrashImage()

	// Count the read path's operations with a clean probe, then inject
	// a short read at each position.
	probe := img.CrashImage()
	pdb := openMem(t, probe)
	pdb.Close()
	openOps := probe.Ops()

	aborted := 0
	for n := 1; n <= openOps; n++ {
		fsn := img.CrashImage()
		fsn.SetFault(n, wal.FaultShortRead)
		db2, err := OpenFS(fsn)
		if err != nil {
			aborted++
		} else {
			// The fault landed on a non-read op and so never fired; the
			// open must have recovered everything.
			if got := stateDump(db2); got != want {
				t.Fatalf("op %d: clean-looking open lost state", n)
			}
			db2.Close()
		}
		// Either way a clean retry sees the full acknowledged state.
		retry := openMem(t, img.CrashImage())
		if got := stateDump(retry); got != want {
			t.Fatalf("op %d: retry after short read lost state:\n--- want\n%s--- got\n%s", n, want, got)
		}
		retry.Close()
	}
	if aborted == 0 {
		t.Fatal("no short read ever aborted recovery; the fault never hit the read path")
	}
}
