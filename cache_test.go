package taupsm

import (
	"testing"
)

// Repeated execution of the same sequenced statement hits the
// translation and constant-period caches; DML on a referenced table
// invalidates both (the constant periods and the Auto heuristic read
// the rows), and DDL invalidates the translation cache.
func TestCachesHitAndInvalidate(t *testing.T) {
	db := paperDB(t)
	db.SetStrategy(Max)
	m := db.Metrics()
	const q = `VALIDTIME (DATE '2010-01-01', DATE '2011-01-01') SELECT title FROM item`

	run := func() {
		t.Helper()
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}

	run() // cold: miss + fill
	if hits, misses := m.Value("stratum.cache.translation_hits_total"), m.Value("stratum.cache.translation_misses_total"); hits != 0 || misses != 1 {
		t.Fatalf("after cold run: translation hits=%d misses=%d, want 0/1", hits, misses)
	}
	if hits, misses := m.Value("stratum.cache.cp_hits_total"), m.Value("stratum.cache.cp_misses_total"); hits != 0 || misses != 1 {
		t.Fatalf("after cold run: cp hits=%d misses=%d, want 0/1", hits, misses)
	}

	run() // warm: both hit
	run()
	if hits := m.Value("stratum.cache.translation_hits_total"); hits != 2 {
		t.Fatalf("translation hits = %d, want 2", hits)
	}
	if hits := m.Value("stratum.cache.cp_hits_total"); hits != 2 {
		t.Fatalf("cp hits = %d, want 2", hits)
	}

	// DML on the referenced table: both caches must recompute.
	db.MustExec(`NONSEQUENCED VALIDTIME INSERT INTO item VALUES ('i9', 'New', DATE '2010-02-01', DATE '2010-04-01')`)
	run()
	if misses := m.Value("stratum.cache.translation_misses_total"); misses != 2 {
		t.Fatalf("translation misses after DML = %d, want 2", misses)
	}
	if misses := m.Value("stratum.cache.cp_misses_total"); misses != 2 {
		t.Fatalf("cp misses after DML = %d, want 2", misses)
	}

	// DDL on an unrelated table: the catalog version moved, but the
	// entry's dependency set — the routines, tables, and views the
	// statement can reach — is untouched, so the entry revalidates and
	// re-pins instead of recomputing. The constant periods only depend
	// on the unchanged item table and stay cached too.
	db.MustExec(`CREATE TABLE unrelated (x CHAR(5))`)
	run()
	if hits, misses := m.Value("stratum.cache.translation_hits_total"), m.Value("stratum.cache.translation_misses_total"); hits != 3 || misses != 2 {
		t.Fatalf("after unrelated DDL: translation hits=%d misses=%d, want 3/2 (dep revalidation re-pins)", hits, misses)
	}
	if misses := m.Value("stratum.cache.cp_misses_total"); misses != 2 {
		t.Fatalf("cp misses after DDL = %d, want 2 (stamps still valid)", misses)
	}

	// Dropping the unrelated table moves the version again; the entry
	// keeps re-pinning as long as its own dependencies hold.
	db.MustExec(`DROP TABLE unrelated`)
	run()
	if hits, misses := m.Value("stratum.cache.translation_hits_total"), m.Value("stratum.cache.translation_misses_total"); hits != 4 || misses != 2 {
		t.Fatalf("after unrelated DROP: translation hits=%d misses=%d, want 4/2", hits, misses)
	}
}

// The translation cache's dependency revalidation distinguishes DDL by
// reachability: redefining a routine the statement calls invalidates
// its entry, while creating unrelated objects merely re-pins it.
func TestTranslationCacheDepInvalidation(t *testing.T) {
	db := paperDB(t)
	db.SetStrategy(Max)
	m := db.Metrics()
	db.MustExec(`CREATE FUNCTION twice (n INTEGER) RETURNS INTEGER RETURN n + n`)
	const q = `VALIDTIME (DATE '2010-01-01', DATE '2011-01-01') SELECT twice(2) FROM item`

	run := func() {
		t.Helper()
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}

	run()
	run()
	if hits, misses := m.Value("stratum.cache.translation_hits_total"), m.Value("stratum.cache.translation_misses_total"); hits != 1 || misses != 1 {
		t.Fatalf("warmup: translation hits=%d misses=%d, want 1/1", hits, misses)
	}

	// Unrelated routine DDL: version bump, dependency set unchanged.
	db.MustExec(`CREATE FUNCTION thrice (n INTEGER) RETURNS INTEGER RETURN n * 3`)
	run()
	if hits, misses := m.Value("stratum.cache.translation_hits_total"), m.Value("stratum.cache.translation_misses_total"); hits != 2 || misses != 1 {
		t.Fatalf("after unrelated routine DDL: hits=%d misses=%d, want 2/1", hits, misses)
	}

	// Redefining the called routine: the original name is in the
	// dependency set (even though the translation calls a clone), so the
	// stale entry must not survive.
	db.MustExec(`CREATE OR REPLACE FUNCTION twice (n INTEGER) RETURNS INTEGER RETURN n * 3`)
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if misses := m.Value("stratum.cache.translation_misses_total"); misses != 2 {
		t.Fatalf("translation misses after redefining twice = %d, want 2", misses)
	}
	if len(res.Rows) == 0 || res.Rows[0][len(res.Rows[0])-1].String() != "6" {
		t.Fatalf("redefined routine result = %v, want trailing column 6", res.Rows)
	}
}

// The MAX point predicates (table.begin <= cp.begin < table.end) run
// through the storage layer's sorted-interval index: executing a
// sequenced MAX query must record interval probes.
func TestMaxSlicingUsesIntervalIndex(t *testing.T) {
	db := paperDB(t)
	db.SetStrategy(Max)
	m := db.Metrics()
	if _, err := db.Query(`VALIDTIME (DATE '2010-01-01', DATE '2011-01-01') SELECT title FROM item`); err != nil {
		t.Fatal(err)
	}
	if probes := m.Value("engine.interval_probes_total"); probes == 0 {
		t.Fatal("engine.interval_probes_total = 0; MAX slicing scanned instead of probing the interval index")
	}
}

// The two strategies cache independently: the translation key includes
// the strategy setting.
func TestTranslationCacheKeyedByStrategy(t *testing.T) {
	db := paperDB(t)
	m := db.Metrics()
	const q = `VALIDTIME (DATE '2010-01-01', DATE '2011-01-01') SELECT title FROM item`

	db.SetStrategy(Max)
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	db.SetStrategy(PerStatement)
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if misses := m.Value("stratum.cache.translation_misses_total"); misses != 2 {
		t.Fatalf("translation misses = %d, want 2 (one per strategy)", misses)
	}
	db.SetStrategy(Max)
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if hits := m.Value("stratum.cache.translation_hits_total"); hits != 1 {
		t.Fatalf("translation hits = %d, want 1 (MAX entry still valid)", hits)
	}
}
