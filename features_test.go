package taupsm

import (
	"errors"
	"strings"
	"testing"

	"taupsm/internal/sqlast"
	"taupsm/internal/sqlparser"
)

// Sequenced views: CREATE VIEW ... AS VALIDTIME (...) is translated
// once, data-independently, and stays correct as data changes.
func TestSequencedView(t *testing.T) {
	db := paperDB(t)
	if _, err := db.Exec(`CREATE VIEW title_history AS VALIDTIME (
		SELECT i.title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben')`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`NONSEQUENCED VALIDTIME SELECT * FROM title_history ORDER BY begin_time, title`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("sequenced view returned no history")
	}
	if !strings.EqualFold(res.Columns[0], "begin_time") || !strings.EqualFold(res.Columns[1], "end_time") {
		t.Fatalf("sequenced view must expose period columns: %v", res.Columns)
	}
	// the view tracks later data changes
	before := len(res.Rows)
	db.MustExec(`NONSEQUENCED VALIDTIME INSERT INTO item_author VALUES
		('i3', 'a1', DATE '2010-05-01', DATE '2010-06-01')`)
	res2, err := db.Query(`NONSEQUENCED VALIDTIME SELECT * FROM title_history`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) <= before {
		t.Fatalf("view must reflect new data: %d -> %d rows", before, len(res2.Rows))
	}
}

func TestSequencedViewWithVALIDTIMEPrefix(t *testing.T) {
	db := paperDB(t)
	// the modifier may also prefix the whole statement
	if _, err := db.Exec(`VALIDTIME CREATE VIEW vh AS
		SELECT first_name FROM author`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`NONSEQUENCED VALIDTIME SELECT * FROM vh`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("expected 3 timestamped rows, got %d", len(res.Rows))
	}
}

func TestSequencedViewRejectsAggregates(t *testing.T) {
	db := paperDB(t)
	_, err := db.Exec(`CREATE VIEW bad AS VALIDTIME (SELECT COUNT(*) FROM item)`)
	if !errors.Is(err, ErrNotTransformable) {
		t.Fatalf("expected ErrNotTransformable for sequenced aggregate view, got %v", err)
	}
}

func TestNonsequencedView(t *testing.T) {
	db := paperDB(t)
	db.MustExec(`CREATE VIEW raw_author AS NONSEQUENCED VALIDTIME
		(SELECT first_name, begin_time FROM author)`)
	res, err := db.Query(`NONSEQUENCED VALIDTIME SELECT first_name FROM raw_author WHERE begin_time = DATE '2010-07-01'`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res, "Benjamin")
}

// CoalesceResults merges fragmented periods from MAX slicing.
func TestCoalesceResults(t *testing.T) {
	db := paperDB(t)
	db.SetStrategy(Max)
	db.CoalesceResults = true
	res, err := db.Query(`VALIDTIME SELECT i.title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res,
		"2010-01-01|2010-07-01|SQL Basics",
		"2010-03-01|2010-07-01|Advanced SQL")
}

func TestCoalesceDoesNotTouchCurrentResults(t *testing.T) {
	db := paperDB(t)
	db.CoalesceResults = true
	res, err := db.Query(`SELECT title FROM item ORDER BY title`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 {
		t.Fatalf("current result must be untouched: %v", res.Columns)
	}
}

// The Auto heuristic picks MAX for short contexts and PERST for long
// ones on this engine (the calibrated §VII-F thresholds).
func TestAutoHeuristicChoices(t *testing.T) {
	db := paperDB(t)
	short, err := db.TranslateStmt(mustParse(t, `VALIDTIME (DATE '2010-01-01', DATE '2010-01-03')
		SELECT i.title FROM item i WHERE get_author_name('a1') = 'Ben'`), Auto)
	if err != nil {
		t.Fatal(err)
	}
	_ = short
	// direct check through the internal chooser: the facade applies it
	// in translateStmt; verify both paths execute.
	db.SetStrategy(Auto)
	if _, err := db.Query(`VALIDTIME (DATE '2010-01-01', DATE '2010-01-03')
		SELECT i.title FROM item i WHERE get_author_name('a1') = 'Ben'`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`VALIDTIME SELECT i.title FROM item i WHERE get_author_name('a1') = 'Ben'`); err != nil {
		t.Fatal(err)
	}
}

func TestResultString(t *testing.T) {
	db := paperDB(t)
	res, err := db.Query(`SELECT title FROM item WHERE id = 'i1'`)
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "title") || !strings.Contains(s, "SQL Basics") {
		t.Fatalf("table rendering: %s", s)
	}
	empty := &Result{}
	if empty.String() != "(no result set)" {
		t.Fatalf("empty rendering: %q", empty.String())
	}
}

func TestValueAccessors(t *testing.T) {
	db := paperDB(t)
	res, err := db.Query(`SELECT 1, 2.5, 'x', TRUE, NULL, DATE '2010-01-01' FROM item WHERE id = 'i1'`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].Int() != 1 || row[1].Float() != 2.5 || row[2].String() != "x" ||
		!row[3].Bool() || !row[4].IsNull() || row[5].String() != "2010-01-01" {
		t.Fatalf("accessors: %v", row)
	}
}

func TestTranslateParseError(t *testing.T) {
	db := Open()
	if _, err := db.Translate(`SELEC nonsense`, Max); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := db.Exec(`SELEC nonsense`); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestTeardownRunsOnQueryError(t *testing.T) {
	db := paperDB(t)
	db.SetStrategy(Max)
	// Force a runtime error in the main query via a bad function arg
	// count after setup ran; the cp temp tables must still be dropped.
	_, err := db.Query(`VALIDTIME SELECT i.title FROM item i WHERE get_author_name(i.id, i.id) = 'x'`)
	if err == nil {
		t.Fatal("expected arity error")
	}
	if db.Engine().Cat.Table("taupsm_cp") != nil {
		t.Fatal("teardown must drop taupsm_cp even on error")
	}
}

func mustParse(t *testing.T, src string) sqlast.Stmt {
	t.Helper()
	s, err := sqlparser.ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
