package taupsm_test

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"taupsm"
)

func openWithItem(t *testing.T) *taupsm.DB {
	t.Helper()
	db := taupsm.Open()
	db.MustExec(`CREATE TABLE item (item_id CHAR(10), price FLOAT) AS VALIDTIME;`)
	return db
}

// A routine referencing an undeclared variable is rejected when
// defined, not when first executed.
func TestCreateRejectsUndeclaredVariable(t *testing.T) {
	db := openWithItem(t)
	_, err := db.Exec(`CREATE FUNCTION f () RETURNS INTEGER
BEGIN
  SET missing = 1;
  RETURN 0;
END;`)
	if err == nil {
		t.Fatal("CREATE FUNCTION with undeclared variable succeeded")
	}
	var lerr *taupsm.LintError
	if !errors.As(err, &lerr) {
		t.Fatalf("error is %T, want *LintError: %v", err, err)
	}
	if !strings.Contains(err.Error(), "TAU001") || !strings.Contains(err.Error(), "variable missing is not declared") {
		t.Errorf("unexpected message: %v", err)
	}
}

func TestCreateRejectsUndeclaredCursor(t *testing.T) {
	db := openWithItem(t)
	_, err := db.Exec(`CREATE PROCEDURE p ()
BEGIN
  OPEN nope;
END;`)
	if err == nil || !strings.Contains(err.Error(), "TAU002") {
		t.Fatalf("want TAU002 rejection, got: %v", err)
	}
}

func TestCreateRejectsUnknownCallee(t *testing.T) {
	db := openWithItem(t)
	_, err := db.Exec(`CREATE PROCEDURE p ()
BEGIN
  CALL ghost(1);
END;`)
	if err == nil || !strings.Contains(err.Error(), "TAU006") {
		t.Fatalf("want TAU006 rejection, got: %v", err)
	}
}

// Warning-severity findings do not reject; they ride on the result.
func TestCreateAttachesWarnings(t *testing.T) {
	db := openWithItem(t)
	res, err := db.Exec(`CREATE PROCEDURE p ()
BEGIN
  DECLARE unused INTEGER;
  SET unused = 1;
END;`)
	if err != nil {
		t.Fatalf("warning-only routine rejected: %v", err)
	}
	found := false
	for _, w := range res.Warnings {
		if w.Code == "TAU010" {
			found = true
			if w.Severity != "warning" || w.Line == 0 {
				t.Errorf("malformed warning: %+v", w)
			}
		}
	}
	if !found {
		t.Errorf("TAU010 missing from result warnings: %+v", res.Warnings)
	}
}

// Prepare lints a whole script against a shadow catalog that follows
// the script's own DDL, without executing anything.
func TestPrepareLintsScript(t *testing.T) {
	db := taupsm.Open()
	_, err := db.Prepare(`
CREATE TABLE t (a INTEGER);
SELECT b FROM t;
`)
	if err == nil || !strings.Contains(err.Error(), "TAU005") && !strings.Contains(err.Error(), "TAU001") {
		t.Fatalf("unknown column not caught by Prepare: %v", err)
	}

	p, err := db.Prepare(`
CREATE TABLE t (a INTEGER);
INSERT INTO t VALUES (1);
SELECT a FROM t;
`)
	if err != nil {
		t.Fatalf("clean script failed Prepare: %v", err)
	}
	res, err := p.Exec()
	if err != nil {
		t.Fatalf("prepared exec: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(res.Rows))
	}
}

// EXPLAIN reports lint findings instead of rejecting.
func TestExplainCarriesLint(t *testing.T) {
	db := openWithItem(t)
	db.MustExec(`CREATE TABLE snap (a INTEGER);`)
	e, err := db.Explain(`VALIDTIME SELECT a FROM snap;`)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	found := false
	for _, d := range e.Lint {
		if d.Code == "TAU020" {
			found = true
		}
	}
	if !found {
		t.Fatalf("TAU020 missing from Explain.Lint: %+v", e.Lint)
	}
	if !strings.Contains(e.Result().String(), "TAU020") {
		t.Error("lint rows missing from EXPLAIN result table")
	}
}

// genRoutine emits a random PSM function. Roughly a third of the
// variable references draw from a pool wider than the declarations,
// so many programs are invalid — the property below is only about
// what the checker passes.
func genRoutine(rng *rand.Rand, name string) string {
	pool := []string{"v0", "v1", "v2", "v3", "v4"}
	ndecl := 1 + rng.Intn(4)
	declared := pool[:ndecl]
	pick := func() string {
		if rng.Intn(3) == 0 {
			return pool[rng.Intn(len(pool))] // possibly undeclared
		}
		return declared[rng.Intn(len(declared))]
	}
	expr := func() string {
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", rng.Intn(100))
		case 1:
			return pick()
		default:
			return fmt.Sprintf("%s + %d", pick(), rng.Intn(10))
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE FUNCTION %s () RETURNS INTEGER\nBEGIN\n", name)
	for _, v := range declared {
		fmt.Fprintf(&b, "  DECLARE %s INTEGER;\n", v)
	}
	for i, n := 0, 1+rng.Intn(5); i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&b, "  SET %s = %s;\n", pick(), expr())
		case 1:
			fmt.Fprintf(&b, "  IF %s > %d THEN SET %s = %s; END IF;\n",
				pick(), rng.Intn(50), pick(), expr())
		default:
			// The loop variable is the one assigned, so every
			// admitted loop terminates.
			v := pick()
			fmt.Fprintf(&b, "  WHILE %s < %d DO SET %s = %s + 1; END WHILE;\n",
				v, rng.Intn(3), v, v)
		}
	}
	fmt.Fprintf(&b, "  RETURN %s;\nEND;", expr())
	return b.String()
}

// notDeclaredClass matches the execution errors the checker exists to
// front-run: unresolved names of any kind.
func notDeclaredClass(err error) bool {
	msg := err.Error()
	return strings.Contains(msg, "is not declared") ||
		strings.Contains(msg, "is neither a column in scope nor a variable") ||
		strings.Contains(msg, "does not exist") ||
		strings.Contains(msg, "unknown function")
}

// Property: any routine the checker admits runs without name-resolution
// errors; any rejection is a *LintError, never a parse panic.
func TestCheckCleanRoutinesExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(20120401)) // fixed: the corpus is part of the test
	db := taupsm.Open()
	db.MustExec(`CREATE TABLE unit (x INTEGER);`)
	db.MustExec(`INSERT INTO unit VALUES (1);`)
	admitted, rejected := 0, 0
	for i := 0; i < 300; i++ {
		name := fmt.Sprintf("gen%d", i)
		src := genRoutine(rng, name)
		_, err := db.Exec(src)
		if err != nil {
			var lerr *taupsm.LintError
			if !errors.As(err, &lerr) {
				t.Fatalf("non-lint error defining %s: %v\n%s", name, err, src)
			}
			rejected++
			continue
		}
		admitted++
		if _, err := db.Query(fmt.Sprintf("SELECT %s() FROM unit;", name)); err != nil && notDeclaredClass(err) {
			t.Fatalf("check-clean routine %s failed with a name-resolution error: %v\n%s", name, err, src)
		}
	}
	if admitted == 0 || rejected == 0 {
		t.Fatalf("generator is degenerate: %d admitted, %d rejected", admitted, rejected)
	}
}

// When Auto resolves PERST→MAX because the transform does not apply,
// the database records a note saying whether lint predicted it.
func TestLastFallbackNotePredicted(t *testing.T) {
	db := taupsm.Open()
	db.MustExec(`CREATE TABLE item (item_id CHAR(10), subject VARCHAR(30)) AS VALIDTIME;
CREATE TABLE author (author_id CHAR(10), first_name VARCHAR(30)) AS VALIDTIME;
CREATE TABLE item_author (item_id CHAR(10), author_id CHAR(10)) AS VALIDTIME;
CREATE TABLE publisher (publisher_id CHAR(10), country VARCHAR(20)) AS VALIDTIME;`)
	res := db.MustExec(`CREATE FUNCTION mixed_scan (sub VARCHAR(30))
RETURNS INTEGER
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE done INTEGER DEFAULT 0;
  DECLARE iid CHAR(10) DEFAULT '';
  DECLARE n INTEGER DEFAULT 0;
  DECLARE all_items CURSOR FOR SELECT item_id FROM item WHERE subject = sub;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
  OPEN all_items;
  FETCH all_items INTO iid;
  wl: WHILE done = 0 DO
    FOR r AS SELECT a.first_name AS fn FROM author a, item_author ia
        WHERE ia.item_id = iid AND a.author_id = ia.author_id DO
      SET n = n + 1;
      FETCH all_items INTO iid;
      IF done = 1 THEN
        LEAVE wl;
      END IF;
    END FOR;
    FETCH all_items INTO iid;
  END WHILE wl;
  CLOSE all_items;
  RETURN n;
END;`)
	predicted := false
	for _, w := range res.Warnings {
		if w.Code == "TAU030" {
			predicted = true
		}
	}
	if !predicted {
		t.Fatalf("TAU030 not attached at CREATE: %+v", res.Warnings)
	}
	if note := db.LastFallbackNote(); note != "" {
		t.Fatalf("fallback note before any fallback: %q", note)
	}
	db.MustExec(`VALIDTIME SELECT publisher_id FROM publisher WHERE mixed_scan('Databases') > 0;`)
	note := db.LastFallbackNote()
	if !strings.Contains(note, "predicted by lint: true") {
		t.Fatalf("fallback note missing or unpredicted: %q", note)
	}
}
