GO ?= go

.PHONY: build test race verify fuzz-smoke bench obsbench bench4 bench5 microbench report clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the full gate: formatting, static checks (staticcheck when
# installed — CI installs a pinned version), the race-enabled test
# run, and a short fuzz smoke over the two untrusted-input surfaces.
verify:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping"; fi
	$(GO) test -race ./...
	$(MAKE) fuzz-smoke

# fuzz-smoke runs each fuzz target briefly: enough to catch shallow
# decoder/parser panics on every verify, without CI-scale fuzzing.
fuzz-smoke:
	$(GO) test -fuzz=FuzzWALReplay -fuzztime=5s -run '^$$' ./internal/wal
	$(GO) test -fuzz=FuzzParse -fuzztime=5s -run '^$$' ./internal/sqlparser

# bench regenerates the machine-readable benchmark artifact extending
# the perf trajectory (BENCH_1.json is the pre-caching baseline).
bench:
	$(GO) run ./cmd/taubench -exp report -reps 3 -json BENCH_2.json

# obsbench regenerates the observability artifact: per-query stage
# breakdowns (EXPLAIN ANALYZE) and tracer overhead, sampled vs. off.
obsbench:
	$(GO) run ./cmd/taubench -exp obsreport -reps 15 -json BENCH_3.json

# bench4 regenerates the batched-execution artifact: BENCH_3's contents
# plus the interleaved A/A-controlled batch section (shared prepared
# plans + sweep joins vs both ablated, with plan-reuse and sweep-join
# counters as evidence). CI gates its geomean against this file.
bench4:
	$(GO) run ./cmd/taubench -exp obsreport -reps 15 -json BENCH_4.json

# bench5 regenerates the bitemporal workload artifact: BT-SMALL audit
# queries under both strategies with the interleaved A/A noise bound.
bench5:
	$(GO) run ./cmd/taubench -workload BT-SMALL -reps 15 -json BENCH_5.json

# microbench runs the Go benchmark suite once over every cell.
microbench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# report regenerates the original baseline artifact.
report:
	$(GO) run ./cmd/taubench -exp report -reps 3 -json BENCH_1.json

clean:
	$(GO) clean ./...
