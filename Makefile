GO ?= go

.PHONY: build test race verify bench microbench report clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the full gate: formatting, static checks (staticcheck when
# installed — CI installs a pinned version), then the race-enabled
# test run.
verify:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping"; fi
	$(GO) test -race ./...

# bench regenerates the machine-readable benchmark artifact extending
# the perf trajectory (BENCH_1.json is the pre-caching baseline).
bench:
	$(GO) run ./cmd/taubench -exp report -reps 3 -json BENCH_2.json

# microbench runs the Go benchmark suite once over every cell.
microbench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# report regenerates the original baseline artifact.
report:
	$(GO) run ./cmd/taubench -exp report -reps 3 -json BENCH_1.json

clean:
	$(GO) clean ./...
