GO ?= go

.PHONY: build test race verify bench report clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the full gate: static checks plus the race-enabled test run.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# report regenerates the machine-readable benchmark artifact.
report:
	$(GO) run ./cmd/taubench -exp report -reps 3 -json BENCH_1.json

clean:
	$(GO) clean ./...
