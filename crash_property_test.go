package taupsm

// Crash-consistency property test: random sequenced and nonsequenced
// DML, random crash points (both injected I/O faults and raw byte
// truncation of the log file), and the invariant that recovery always
// lands on a statement-aligned prefix of the acknowledged history —
// never a torn statement, never an invented row, never a failure to
// open. Seeds are fixed so a failure names its (seed, crash point)
// pair; shrink by rerunning one seed with -run and a shorter maxStmts.

import (
	"fmt"
	"math/rand"
	"testing"

	"taupsm/internal/wal"
)

// randWorkload generates a deterministic random DML sequence over one
// valid-time table. Every statement is chosen to modify durable state
// so prefix dumps are strictly informative.
func randWorkload(rng *rand.Rand, n int) []string {
	day := func(d int) string {
		return fmt.Sprintf("2010-%02d-%02d", 1+d/28%12, 1+d%28)
	}
	stmts := []string{`CREATE TABLE reading (sensor CHAR(4), val INTEGER) AS VALIDTIME`}
	for i := 0; i < 4; i++ {
		stmts = append(stmts, fmt.Sprintf(
			`NONSEQUENCED VALIDTIME INSERT INTO reading VALUES ('s%d', %d, DATE '2010-01-01', DATE '2011-01-01')`,
			i, i*100))
	}
	for len(stmts) < n {
		s := rng.Intn(4)
		p1 := rng.Intn(300)
		p2 := p1 + 1 + rng.Intn(300-p1%300)
		switch rng.Intn(4) {
		case 0:
			stmts = append(stmts, fmt.Sprintf(
				`NONSEQUENCED VALIDTIME INSERT INTO reading VALUES ('s%d', %d, DATE '%s', DATE '%s')`,
				s, rng.Intn(1000), day(p1), day(p2)))
		case 1:
			stmts = append(stmts, fmt.Sprintf(
				`VALIDTIME (DATE '%s', DATE '%s') UPDATE reading SET val = %d WHERE sensor = 's%d'`,
				day(p1), day(p2), rng.Intn(1000), s))
		case 2:
			stmts = append(stmts, fmt.Sprintf(
				`VALIDTIME (DATE '%s', DATE '%s') DELETE FROM reading WHERE sensor = 's%d'`,
				day(p1), day(p2), s))
		default:
			stmts = append(stmts, fmt.Sprintf(
				`INSERT INTO reading VALUES ('n%d', %d)`, rng.Intn(10), rng.Intn(1000)))
		}
	}
	return stmts
}

// runPrefix executes stmts against a fresh database over fs until the
// first failure, returning the dump after each acknowledged statement.
// Sequenced DML can legitimately commit zero effects (an empty
// temporal overlap), so consecutive dumps may repeat; the property
// compares against the acked index, not dump uniqueness.
func runPrefix(t *testing.T, fs *wal.MemFS, stmts []string) (dumps []string, acked int) {
	t.Helper()
	db, err := OpenFS(fs)
	if err != nil {
		return []string{""}, 0
	}
	db.SetNow(2010, 6, 1)
	dumps = []string{stateDump(db)}
	for _, stmt := range stmts {
		if _, err := db.Exec(stmt); err != nil {
			break
		}
		acked++
		dumps = append(dumps, stateDump(db))
	}
	db.Close()
	return dumps, acked
}

func TestCrashPropertyRandomDML(t *testing.T) {
	const maxStmts = 25
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			stmts := randWorkload(rng, maxStmts)

			// Reference run on a fault-free filesystem.
			ref := wal.NewMemFS()
			dumps, acked := runPrefix(t, ref, stmts)
			if acked != len(stmts) {
				t.Fatalf("reference run acked %d/%d statements", acked, len(stmts))
			}
			totalOps := ref.Ops()

			// Random injected crashes: recovered state must equal the
			// acknowledged prefix exactly.
			for trial := 0; trial < 40; trial++ {
				n := 1 + rng.Intn(totalOps)
				mode := wal.FaultFail
				if rng.Intn(2) == 0 {
					mode = wal.FaultTorn
				}
				fs := wal.NewMemFS()
				fs.SetFault(n, mode)
				_, got := runPrefix(t, fs, stmts)
				db, err := OpenFS(fs.CrashImage())
				if err != nil {
					t.Fatalf("seed %d op %d mode %d: recovery failed: %v", seed, n, mode, err)
				}
				if d := stateDump(db); d != dumps[got] {
					t.Fatalf("seed %d op %d mode %d: recovered state is not the %d-statement prefix:\n--- want\n%s--- got\n%s",
						seed, n, mode, got, dumps[got], d)
				}
				db.Close()
			}

			// Raw truncation: chop the log file itself at random byte
			// offsets (a crash model no injected fault produces — e.g.
			// filesystem-level tail loss). Recovery must land on SOME
			// statement-aligned prefix, and monotonically: truncating
			// more bytes never yields a longer prefix.
			img := ref.CrashImage()
			var logName string
			names, err := img.List()
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range names {
				if len(name) > 4 && name[:4] == "wal-" {
					logName = name
				}
			}
			if logName == "" {
				t.Fatal("no log file in the reference image")
			}
			prefixSet := map[string]int{}
			for i, d := range dumps {
				prefixSet[d] = i
			}
			full, err := img.ReadFile(logName)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 40; trial++ {
				cut := rng.Intn(len(full) + 1)
				fs := img.CrashImage()
				fs.WriteFile(logName, full[:cut])
				db, err := OpenFS(fs)
				if err != nil {
					t.Fatalf("seed %d cut %d: recovery failed: %v", seed, cut, err)
				}
				d := stateDump(db)
				db.Close()
				if _, ok := prefixSet[d]; !ok {
					t.Fatalf("seed %d cut %d: recovered state is no prefix of the history:\n%s", seed, cut, d)
				}
			}
		})
	}
}
