-- A deliberately broken script exercising the static analyzer:
-- `taupsm vet testdata/bad_routines.sql` must report every class of
-- defect below and exit non-zero.

CREATE TABLE item (item_id CHAR(10), title VARCHAR(100), price FLOAT) AS VALIDTIME;
CREATE TABLE item_author (item_id CHAR(10), author_id CHAR(10));

-- TAU001 (undeclared variable) and TAU013 (missing RETURN).
CREATE FUNCTION f1 () RETURNS INTEGER
BEGIN
  SET x = 1;
END;

-- TAU002: cursor never declared.
CREATE PROCEDURE p1 ()
BEGIN
  OPEN missing_cursor;
END;

-- TAU003: no enclosing statement carries this label.
CREATE PROCEDURE p2 ()
BEGIN
  LEAVE nowhere;
END;

-- TAU004: unknown table.
SELECT title FROM no_such_table;

-- TAU006: callee does not exist.
CREATE PROCEDURE p3 ()
BEGIN
  CALL does_not_exist(1);
END;

-- TAU007: a function invoked as a procedure.
CREATE FUNCTION f2 () RETURNS INTEGER
BEGIN
  RETURN 1;
END;
CREATE PROCEDURE p4 ()
BEGIN
  CALL f2();
END;

-- TAU009: wrong argument count.
CREATE PROCEDURE p5 (IN a INTEGER)
BEGIN
  SET a = 0;
END;
CREATE PROCEDURE p6 ()
BEGIN
  CALL p5(1, 2);
END;

-- TAU010: value assigned but never read.
CREATE PROCEDURE p7 ()
BEGIN
  DECLARE unused INTEGER;
  SET unused = 3;
END;

-- TAU012: duplicate declaration in one compound.
CREATE PROCEDURE p8 ()
BEGIN
  DECLARE v INTEGER;
  DECLARE v INTEGER;
  SET v = 1;
END;

-- TAU020: temporal modifier over a snapshot-only table.
VALIDTIME SELECT item_id FROM item_author;
