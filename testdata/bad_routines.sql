-- A deliberately broken script exercising the static analyzer:
-- `taupsm vet testdata/bad_routines.sql` must report every class of
-- defect below and exit non-zero.

CREATE TABLE item (item_id CHAR(10), title VARCHAR(100), price FLOAT) AS VALIDTIME;
CREATE TABLE item_author (item_id CHAR(10), author_id CHAR(10));

-- TAU001 (undeclared variable) and TAU013 (missing RETURN).
CREATE FUNCTION f1 () RETURNS INTEGER
BEGIN
  SET x = 1;
END;

-- TAU002: cursor never declared.
CREATE PROCEDURE p1 ()
BEGIN
  OPEN missing_cursor;
END;

-- TAU003: no enclosing statement carries this label.
CREATE PROCEDURE p2 ()
BEGIN
  LEAVE nowhere;
END;

-- TAU004: unknown table.
SELECT title FROM no_such_table;

-- TAU006: callee does not exist.
CREATE PROCEDURE p3 ()
BEGIN
  CALL does_not_exist(1);
END;

-- TAU007: a function invoked as a procedure.
CREATE FUNCTION f2 () RETURNS INTEGER
BEGIN
  RETURN 1;
END;
CREATE PROCEDURE p4 ()
BEGIN
  CALL f2();
END;

-- TAU009: wrong argument count.
CREATE PROCEDURE p5 (IN a INTEGER)
BEGIN
  SET a = 0;
END;
CREATE PROCEDURE p6 ()
BEGIN
  CALL p5(1, 2);
END;

-- TAU010: value assigned but never read.
CREATE PROCEDURE p7 ()
BEGIN
  DECLARE unused INTEGER;
  SET unused = 3;
END;

-- TAU012: duplicate declaration in one compound.
CREATE PROCEDURE p8 ()
BEGIN
  DECLARE v INTEGER;
  DECLARE v INTEGER;
  SET v = 1;
END;

-- TAU020: temporal modifier over a snapshot-only table.
VALIDTIME SELECT item_id FROM item_author;

-- TAU040: arithmetic the engine rejects whenever it is evaluated.
SELECT begin_time + end_time FROM item;
SELECT title * 2 FROM item;

-- TAU041: comparison that is always UNKNOWN.
SELECT item_id FROM item WHERE title = 1;

-- TAU042: condition of a type that can never be TRUE.
SELECT item_id FROM item WHERE 'open';

-- TAU043: assignment silently coerced away from the declared type.
CREATE PROCEDURE p9 ()
BEGIN
  DECLARE n INTEGER;
  SET n = CURRENT_DATE;
END;

-- TAU044: RETURN value incompatible with the declared return type.
CREATE FUNCTION f3 () RETURNS INTEGER
BEGIN
  RETURN CURRENT_DATE;
END;

-- TAU045: argument incompatible with the parameter type.
CREATE FUNCTION shift_date (d DATE, n INTEGER) RETURNS DATE
BEGIN
  RETURN d + n;
END;
SELECT shift_date(DATE '2010-01-01', 'x') FROM item;

-- TAU046: INSERT arity does not match the target columns.
INSERT INTO item_author VALUES ('a1');

-- TAU047: INSERT/UPDATE value incompatible with the column type.
UPDATE item SET price = 'cheap' WHERE item_id = 'i1';
INSERT INTO item (item_id, title, price) VALUES ('i9', 't', 'expensive');

-- TAU050 and TAU051: a constant condition and the branch it kills.
CREATE PROCEDURE p10 ()
BEGIN
  DECLARE v INTEGER;
  IF 1 > 2 THEN
    SET v = 1;
  END IF;
END;

-- TAU052: statically-empty applicability period.
VALIDTIME (DATE '2011-01-01', DATE '2010-01-01') SELECT title FROM item;

-- TAU053: constant division by zero.
SELECT price / (3 - 3) FROM item;
