package taupsm

import (
	"encoding/json"
	"io"
	"time"

	"taupsm/internal/sqlast"
)

// The structured slow-query log: one JSON object per line for every
// statement whose total duration meets the configured threshold. Each
// entry carries the statement's trace ID (when it was traced), a
// stable digest of its SQL text, the chosen strategy, and the
// per-stage breakdown — enough to find the trace in /traces, aggregate
// by digest, and see where the time went without re-running anything.

// SlowLogStages is the per-stage duration breakdown of one slow
// statement, in nanoseconds. Stages that did not run are zero and
// omitted.
type SlowLogStages struct {
	LintNS      int64 `json:"lint_ns,omitempty"`
	TranslateNS int64 `json:"translate_ns,omitempty"`
	CPNS        int64 `json:"cp_ns,omitempty"`
	ExecuteNS   int64 `json:"execute_ns,omitempty"`
	CommitNS    int64 `json:"commit_ns,omitempty"`
	FsyncNS     int64 `json:"fsync_ns,omitempty"`
}

// SlowLogEntry is one slow-query log record.
type SlowLogEntry struct {
	Time      string        `json:"time"`
	TraceID   string        `json:"trace_id,omitempty"`
	ProcessID int64         `json:"process_id,omitempty"`
	Digest    string        `json:"digest,omitempty"`
	Statement string        `json:"statement"`
	Kind      string        `json:"kind"`
	Strategy  string        `json:"strategy,omitempty"`
	ElapsedNS int64         `json:"elapsed_ns"`
	Stages    SlowLogStages `json:"stages"`

	Rows            int    `json:"rows,omitempty"`
	Affected        int    `json:"affected,omitempty"`
	RowsScanned     int64  `json:"rows_scanned,omitempty"`
	RoutineCalls    int64  `json:"routine_calls,omitempty"`
	ConstantPeriods int64  `json:"constant_periods,omitempty"`
	Fragments       int64  `json:"fragments,omitempty"`
	Workers         int    `json:"workers,omitempty"`
	WALBytes        int64  `json:"wal_bytes,omitempty"`
	WALFsyncs       int64  `json:"wal_fsyncs,omitempty"`
	Error           string `json:"error,omitempty"`
}

// SetSlowLog arms the slow-query log: statements taking min or longer
// are logged to w as one JSON line each. min <= 0 (or a nil w)
// disarms. The log does not require tracing — stage durations are
// collected either way — but entries of traced statements carry their
// trace ID.
func (db *DB) SetSlowLog(w io.Writer, min time.Duration) {
	db.slowMu.Lock()
	if w == nil || min <= 0 {
		db.slowW, db.slowMin = nil, 0
	} else {
		db.slowW, db.slowMin = w, min
	}
	db.slowMu.Unlock()
}

// SlowLogThreshold returns the current slow-query threshold (0 when
// the log is disarmed).
func (db *DB) SlowLogThreshold() time.Duration {
	db.slowMu.Lock()
	defer db.slowMu.Unlock()
	return db.slowMin
}

// slowLogArmed reports whether statements should collect stage
// durations for the slow log.
func (db *DB) slowLogArmed() bool {
	db.slowMu.Lock()
	defer db.slowMu.Unlock()
	return db.slowW != nil
}

// maybeSlowLog writes the statement's entry when it meets the
// threshold. Serialization under slowMu keeps concurrent statements'
// JSON lines whole.
func (db *DB) maybeSlowLog(st *stmtState, stmt sqlast.Stmt, total time.Duration, execErr error) {
	db.slowMu.Lock()
	defer db.slowMu.Unlock()
	if db.slowW == nil || total < db.slowMin {
		return
	}
	text := renderStmtSQL(stmt)
	ent := SlowLogEntry{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		Statement: truncateStmt(text, 240),
		Kind:      st.kind,
		Strategy:  st.strategy,
		ElapsedNS: int64(total),
		Stages: SlowLogStages{
			LintNS:      int64(st.lintDur),
			TranslateNS: int64(st.translateDur),
			CPNS:        int64(st.cpDur),
			ExecuteNS:   int64(st.executeDur),
			CommitNS:    int64(st.commitDur),
			FsyncNS:     int64(st.fsyncDur),
		},
		Rows:            st.rows,
		Affected:        st.affected,
		RowsScanned:     st.rowsScanned,
		RoutineCalls:    st.routineCalls,
		ConstantPeriods: st.cps,
		Fragments:       st.fragments,
		Workers:         st.workers,
		WALBytes:        st.walBytes,
		WALFsyncs:       st.walFsyncs,
	}
	if text != "" {
		ent.Digest = digestSQL(text)
	}
	if st.root.Trace != 0 {
		ent.TraceID = st.root.Trace.String()
	}
	ent.ProcessID = st.procID
	if execErr != nil {
		ent.Error = execErr.Error()
	}
	b, err := json.Marshal(ent)
	if err != nil {
		return
	}
	db.slowW.Write(append(b, '\n'))
}

// truncateStmt bounds the statement text carried by a log entry.
func truncateStmt(s string, max int) string {
	if len(s) <= max {
		return s
	}
	return s[:max] + "..."
}
