package taupsm

import (
	"context"
	"fmt"
	"strings"

	"taupsm/internal/check"
	"taupsm/internal/sqlast"
)

// Diagnostic is one static-analyzer finding, the public mirror of
// internal/check's diagnostic: a severity ("error" or "warning"), a
// stable TAUxxx code, a 1-based source position, and a message.
type Diagnostic struct {
	Code     string
	Severity string
	Line     int
	Col      int
	Message  string
	Hint     string
}

// String renders the diagnostic as "line:col: severity CODE: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%d:%d: %s %s: %s", d.Line, d.Col, d.Severity, d.Code, d.Message)
}

func fromCheck(d check.Diagnostic) Diagnostic {
	return Diagnostic{
		Code:     d.Code,
		Severity: d.Severity.String(),
		Line:     d.Pos.Line,
		Col:      d.Pos.Col,
		Message:  d.Message,
		Hint:     d.Hint,
	}
}

func fromChecks(diags []check.Diagnostic) []Diagnostic {
	out := make([]Diagnostic, len(diags))
	for i, d := range diags {
		out[i] = fromCheck(d)
	}
	return out
}

// LintError reports that a statement was rejected by compile-time
// analysis; Diagnostics holds every finding (errors and warnings).
type LintError struct {
	Diagnostics []Diagnostic
}

func (e *LintError) Error() string {
	var errs []string
	for _, d := range e.Diagnostics {
		if d.Severity == "error" {
			errs = append(errs, d.String())
		}
	}
	return fmt.Sprintf("semantic check failed:\n  %s", strings.Join(errs, "\n  "))
}

// lintCacheCap bounds the per-version lint cache.
const lintCacheCap = 256

// LintParsed statically analyzes one parsed statement against the live
// catalog without executing it. Results are cached by statement text
// for the current catalog shape: repeated EXPLAIN (whose lint section
// used to re-run the whole analysis every call) and re-executed
// statements serve the stored findings; any catalog change — the full
// version, so temporary tables count too — wipes the cache. The
// stratum.lint.analysis_runs_total counter moves only when the
// analysis really runs.
func (db *DB) LintParsed(stmt sqlast.Stmt) []Diagnostic {
	key := renderStmtSQL(stmt)
	catV := db.eng.Cat.Version()
	if key != "" {
		db.mu.Lock()
		if db.lintCacheV == catV {
			if diags, ok := db.lintCache[key]; ok {
				db.mu.Unlock()
				db.sm.lintHits.Inc()
				return diags
			}
		}
		db.mu.Unlock()
	}
	db.sm.lintRuns.Inc()
	out := fromChecks(check.Check(check.FromStorage(db.eng.Cat), stmt))
	if key != "" {
		db.mu.Lock()
		if db.lintCacheV != catV || len(db.lintCache) >= lintCacheCap {
			db.lintCache = map[string][]Diagnostic{}
			db.lintCacheV = catV
		}
		db.lintCache[key] = out
		db.mu.Unlock()
	}
	return out
}

// Lint parses a script and statically analyzes each statement,
// applying DDL to a shadow catalog (layered over the live one) so
// later statements see the schema earlier statements would create.
func (db *DB) Lint(src string) ([]Diagnostic, error) {
	stmts, err := db.parseScript(context.Background(), src)
	if err != nil {
		return nil, err
	}
	sc := check.NewScriptCatalog(check.FromStorage(db.eng.Cat))
	var out []Diagnostic
	for _, s := range stmts {
		out = append(out, fromChecks(check.Check(sc, s))...)
		sc.Apply(s)
	}
	return out, nil
}

// checkCreate runs CREATE-time validation on a routine definition:
// error-severity diagnostics reject the statement, warnings are
// returned for attachment to the result.
func (db *DB) checkCreate(stmt sqlast.Stmt) ([]Diagnostic, error) {
	db.sm.lintRuns.Inc()
	diags := check.CheckRoutine(check.FromStorage(db.eng.Cat), stmt)
	if len(check.Errors(diags)) > 0 {
		return nil, &LintError{Diagnostics: fromChecks(diags)}
	}
	return fromChecks(diags), nil
}

// Prepared is a parsed, analyzer-validated script ready to execute.
type Prepared struct {
	db *DB
	// Stmts are the parsed statements, in order.
	stmts []sqlast.Stmt
	// Warnings are the warning-severity findings of preparation.
	Warnings []Diagnostic
}

// Prepare parses and statically checks a script without executing it.
// Any error-severity diagnostic fails preparation with a *LintError;
// warnings are collected on the returned Prepared.
func (db *DB) Prepare(src string) (*Prepared, error) {
	stmts, err := db.parseScript(context.Background(), src)
	if err != nil {
		return nil, err
	}
	sc := check.NewScriptCatalog(check.FromStorage(db.eng.Cat))
	var all []Diagnostic
	errs := 0
	for _, s := range stmts {
		diags := check.Check(sc, s)
		errs += len(check.Errors(diags))
		all = append(all, fromChecks(diags)...)
		sc.Apply(s)
	}
	if errs > 0 {
		return nil, &LintError{Diagnostics: all}
	}
	return &Prepared{db: db, stmts: stmts, Warnings: all}, nil
}

// Exec executes the prepared script, returning the result of the last
// statement.
func (p *Prepared) Exec() (*Result, error) {
	var last *Result
	for _, s := range p.stmts {
		res, err := p.db.ExecParsed(s)
		if err != nil {
			return nil, err
		}
		last = res
	}
	return last, nil
}

// noteFallback records a PERST→MAX fallback for \strategy, including
// whether the static analyzer predicted it (TAU030).
func (db *DB) noteFallback(ts *sqlast.TemporalStmt, terr error) {
	predicted := false
	for _, d := range check.Check(check.FromStorage(db.eng.Cat), ts) {
		if d.Code == check.CodePerstFallback {
			predicted = true
			break
		}
	}
	note := fmt.Sprintf("last PERST fallback: %v (predicted by lint: %v)", terr, predicted)
	db.mu.Lock()
	db.lastFallbackNote = note
	db.mu.Unlock()
}

// LastFallbackNote describes the most recent PERST→MAX fallback and
// whether lint predicted it; "" when no fallback has occurred.
func (db *DB) LastFallbackNote() string {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.lastFallbackNote
}
