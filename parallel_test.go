package taupsm_test

import (
	"fmt"
	"sync"
	"testing"

	"taupsm"
	"taupsm/internal/enginetest"
	"taupsm/internal/taubench"
)

// TestParallelEqualsSerial is the correctness property of parallel MAX
// fragment evaluation: for every benchmark query, every parallelism
// degree produces exactly the serial result — same rows, same order —
// both raw and coalesced. Fragment workers chunk the constant-period
// relation contiguously and their results concatenate in chunk order,
// so even row order must survive.
func TestParallelEqualsSerial(t *testing.T) {
	spec, err := taubench.SpecByName("DS1", taubench.Small)
	if err != nil {
		t.Fatal(err)
	}
	r, err := taubench.NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	db := r.DB
	db.SetStrategy(taupsm.Max)
	for _, coalesce := range []bool{false, true} {
		db.CoalesceResults = coalesce
		for _, q := range taubench.Queries() {
			sql := taubench.SequencedSQL(q, 30)
			db.SetParallelism(1)
			serial, err := db.Query(sql)
			if err != nil {
				t.Fatalf("%s serial: %v", q.Name, err)
			}
			want := enginetest.RenderRows(serial)
			for _, par := range []int{4, 8} {
				db.SetParallelism(par)
				got, err := db.Query(sql)
				if err != nil {
					t.Fatalf("%s par=%d: %v", q.Name, par, err)
				}
				if g := enginetest.RenderRows(got); g != want {
					t.Errorf("%s par=%d coalesce=%v: results diverge from serial\n--- serial ---\n%s--- parallel ---\n%s",
						q.Name, par, coalesce, want, g)
				}
			}
		}
	}
	if db.Metrics().Value("stratum.parallel.statements_total") == 0 {
		t.Fatal("no statement took the parallel path; the property test exercised nothing")
	}
}

// TestConcurrentQueries hammers one database from many goroutines —
// same and different sequenced statements, so the parse, translation,
// and constant-period caches and the parallel fragment path all run
// concurrently. Run under -race this is the re-entrancy proof for the
// read path.
func TestConcurrentQueries(t *testing.T) {
	spec, err := taubench.SpecByName("DS1", taubench.Small)
	if err != nil {
		t.Fatal(err)
	}
	r, err := taubench.NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	db := r.DB
	db.SetStrategy(taupsm.Max)
	db.SetParallelism(4)

	var stmts []string
	var want []int
	for _, q := range taubench.Queries()[:4] {
		for _, c := range []int{7, 30} {
			sql := taubench.SequencedSQL(q, c)
			res, err := db.Query(sql)
			if err != nil {
				t.Fatalf("%s: %v", q.Name, err)
			}
			stmts = append(stmts, sql)
			want = append(want, len(res.Rows))
		}
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				k := (g + i) % len(stmts)
				res, err := db.Query(stmts[k])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %v", g, err)
					return
				}
				if len(res.Rows) != want[k] {
					errs <- fmt.Errorf("goroutine %d: %d rows, want %d", g, len(res.Rows), want[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
