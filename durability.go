package taupsm

import (
	"errors"
	"fmt"
	"time"

	"taupsm/internal/engine"
	"taupsm/internal/obs"
	"taupsm/internal/wal"
)

// OpenDir opens a persistent temporal database backed by the data
// directory at path, creating it if necessary. State is recovered from
// the newest valid snapshot plus its write-ahead-log tail, then
// checkpointed into a fresh epoch, so every successful OpenDir leaves
// the directory in a clean single-epoch layout. Close the returned
// database to release the log file; call Checkpoint to compact it.
func OpenDir(path string) (*DB, error) {
	fs, err := wal.NewDirFS(path)
	if err != nil {
		return nil, err
	}
	return OpenFS(fs)
}

// OpenFS is OpenDir over an explicit wal.FS. The fault-injection
// harness uses it with wal.MemFS to crash the database at every I/O
// operation; production code wants OpenDir.
func OpenFS(fs wal.FS) (*DB, error) {
	metrics := obs.NewMetrics()
	store, cat, info, err := wal.Open(fs, metrics)
	if err != nil {
		return nil, err
	}
	eng := engine.New()
	eng.Cat = cat
	// Adopt the store's registry: it carries the statistics recovered
	// from the snapshot (plus replayed counter deltas), and the store
	// persists the same registry at every checkpoint.
	eng.TabStats = store.Stats()
	db := newDB(eng, metrics)
	db.dur = store
	db.recovery = info
	return db, nil
}

// Persistent reports whether the database is backed by a write-ahead
// log (opened with OpenDir/OpenFS rather than Open).
func (db *DB) Persistent() bool { return db.dur != nil }

// RecoveryInfo describes what opening this database recovered: the
// snapshot epoch loaded, the log tail replayed, whether a torn tail
// was truncated. Nil for in-memory databases.
func (db *DB) RecoveryInfo() *wal.RecoveryInfo { return db.recovery }

// Checkpoint compacts the database's durable state: the current
// catalog becomes a fresh snapshot epoch and the write-ahead log
// restarts empty. Recovery time is proportional to the log tail, so
// checkpoint after bulk loads. Errors for in-memory databases.
func (db *DB) Checkpoint() error {
	if db.dur == nil {
		return errors.New("taupsm: in-memory database has no checkpoint")
	}
	return db.dur.Checkpoint()
}

// Close releases the database's durable resources (the open log
// file). Committed statements are already on disk — every statement's
// effect batch is fsynced before its result returns — so Close is not
// a flush, just a release. In-memory databases close trivially.
func (db *DB) Close() error {
	if db.dur == nil {
		return nil
	}
	return db.dur.Close()
}

// commitJournal appends a user statement's journaled effects to the
// write-ahead log. If the log rejects the batch, the statement is
// rolled back in memory too: a persistent database's memory image and
// disk image never diverge, whichever side fails first. The append is
// timed as the statement's commit stage; under tracing it emits a
// stratum.commit span whose wal.fsync child the log itself records.
func (db *DB) commitJournal(st *stmtState, j *engine.Journal) error {
	if db.dur == nil {
		return nil
	}
	effects := j.Effects()
	if len(effects) == 0 {
		return nil
	}
	var tr obs.Tracer
	var commitCtx obs.SpanContext
	var commitID obs.SpanID
	if st.traced() {
		tr = st.tr
		commitCtx, commitID = st.root.Child()
	}
	start := time.Now()
	stats, err := db.dur.AppendTraced(effects, tr, commitCtx)
	d := time.Since(start)
	if st != nil {
		st.commitDur = d
		st.fsyncDur = stats.Fsync
		st.walBytes = stats.Bytes
		if err == nil {
			st.walFsyncs = 1
		}
	}
	if tr != nil {
		attrs := []obs.Attr{
			obs.AInt("effects", int64(len(effects))),
			obs.AInt("bytes", stats.Bytes),
		}
		if err != nil {
			attrs = append(attrs, obs.A("error", err.Error()))
		}
		tr.Span(obs.Span{Name: "stratum.commit", Start: start, Dur: d,
			Trace: commitCtx.Trace, ID: commitID, Parent: st.root.Span, Attrs: attrs})
	}
	if err != nil {
		j.RollbackAll()
		return fmt.Errorf("taupsm: durable commit: %w", err)
	}
	return nil
}

// durabilityNote renders the one-line durability summary EXPLAIN
// shows for persistent databases.
func (db *DB) durabilityNote() string {
	if db.dur == nil {
		return ""
	}
	return fmt.Sprintf("wal epoch %d, %d bytes; recovered %s",
		db.dur.Epoch(), db.dur.Bytes(), db.recovery)
}
