package taupsm

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"taupsm/internal/check"
	"taupsm/internal/core"
	"taupsm/internal/engine"
	"taupsm/internal/obs"
	"taupsm/internal/sqlast"
	"taupsm/internal/storage"
)

// computeParallelSafe decides whether a MAX-sliced translation's main
// statement may be evaluated as independent chunks of the constant-
// period relation. Chunking is sound because MAX injects the constant
// period into every output row (and into GROUP BY when aggregating),
// so rows from different periods never interact: DISTINCT, set
// operations, and grouping all partition by period. Two statement
// shapes break that independence and force serial evaluation:
//
//   - a top-level ORDER BY or FETCH FIRST, which orders/limits across
//     the whole result rather than per period;
//   - a reachable write to SHARED state: DML on a stored table, or DDL
//     against the shared catalog, whose concurrent execution would race.
//
// The second condition is the interprocedural effect summary's
// shared-write set, not mere write-freedom: writes confined to
// collection variables and to temporary tables a routine creates for
// itself are frame-local (each invocation gets a private instance), so
// a routine that stages intermediate results in its own temp table
// still qualifies. Both conditions are decided by the static analyzer
// (internal/check), the single source of truth for effect inference:
// the translation's routine clones resolve locals-first, everything
// else through the catalog.
func (db *DB) computeParallelSafe(t *core.Translation) bool {
	return chunkOrderSafeMain(t) && db.mainSummary(t).SharedWriteFree()
}

// chunkOrderSafeMain is the statement-shape half of the parallel gate.
func chunkOrderSafeMain(t *core.Translation) bool {
	q, ok := t.Main.(sqlast.QueryExpr)
	return ok && check.ChunkOrderSafe(q)
}

// mainSummary computes the interprocedural effect summary of a
// translation's main statement, resolving its routine clones first.
func (db *DB) mainSummary(t *core.Translation) *check.Summary {
	local := map[string]sqlast.Stmt{}
	for _, r := range t.Routines {
		switch x := r.(type) {
		case *sqlast.CreateFunctionStmt:
			local[strings.ToLower(x.Name)] = x.Body
		case *sqlast.CreateProcedureStmt:
			local[strings.ToLower(x.Name)] = x.Body
		}
	}
	return check.Summarize(check.FromStorage(db.eng.Cat), local, t.Main)
}

// ParallelSafe reports whether a MAX translation's main statement may
// be evaluated as independent constant-period chunks. Exported for
// agreement tests between the static analyzer and the legacy inline
// walker.
func (db *DB) ParallelSafe(t *core.Translation) bool {
	return db.computeParallelSafe(t)
}

// chunkCPTable wraps rows [lo, hi) of the constant-period table as an
// independent table sharing the underlying row storage (read-only).
func chunkCPTable(cp *storage.Table, lo, hi int) *storage.Table {
	t := storage.NewTable(cp.Name, cp.Schema)
	t.Temporary = true
	t.Rows = cp.Rows[lo:hi]
	return t
}

// parallelChunkSize bounds the constant periods per work unit: small
// enough that the process entry's progress counters advance many
// times per statement (and a kill lands at the next chunk boundary),
// large enough that per-chunk execution setup stays amortized.
func parallelChunkSize(n, workers int) int {
	size := n / (workers * 8)
	if size < 1 {
		return 1
	}
	if size > 64 {
		return 64
	}
	return size
}

// runParallelMain evaluates the main statement across a bounded worker
// pool pulling bounded-size chunks of constant periods from a shared
// queue. Because the translator prepends cp as the first FROM entry,
// the serial engine iterates periods outermost — so concatenating
// chunk results in chunk-index order reproduces the serial row order
// exactly, regardless of which worker ran which chunk. Each worker
// runs on its own engine session; the per-worker stats are merged
// into e's in worker-index order, deterministically.
//
// Workers inherit the statement's process entry through NewSession:
// every completed chunk advances the shared constant-period/fragment
// progress counters, and each chunk boundary polls the kill switch —
// a KILL (or cancelled client context) stops the queue and surfaces
// the cancellation cause as the statement error.
//
// Under tracing, each worker emits a stratum.worker span parented to
// the execute span; the engine spans it produces parent to the worker
// span. Tracers are concurrency-safe by contract, so workers record
// directly — span IDs, not delivery order, carry the tree structure.
func (db *DB) runParallelMain(st *stmtState, e *engine.DB, t *core.Translation, cp *storage.Table, workers int, prep *engine.Prepared) (*engine.Result, error) {
	n := len(cp.Rows)
	k := workers
	if k > n {
		k = n
	}
	chunkSize := parallelChunkSize(n, k)
	nchunks := (n + chunkSize - 1) / chunkSize
	type chunkOut struct {
		res *engine.Result
		err error
	}
	outs := make([]chunkOut, nchunks)
	wstats := make([]engine.Stats, k)
	var next atomic.Int64
	var stop atomic.Bool
	e.Proc.SetWorkers(int64(k))
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		ses := e.NewSession()
		// The parallel-safety gate proves the statement write-free, so
		// workers don't journal; sharing e's journal would race.
		ses.Journal = nil
		var workerID obs.SpanID
		if st.traced() {
			ses.Trace, workerID = e.Trace.Child()
		}
		wg.Add(1)
		go func(w int, ses *engine.DB, workerID obs.SpanID) {
			defer wg.Done()
			start := time.Now()
			periods := 0
			var werr error
			for !stop.Load() {
				ci := int(next.Add(1)) - 1
				if ci >= nchunks {
					break
				}
				if err := ses.Proc.Killed(); err != nil {
					outs[ci] = chunkOut{err: err}
					stop.Store(true)
					break
				}
				lo := ci * chunkSize
				hi := lo + chunkSize
				if hi > n {
					hi = n
				}
				// Workers share the read-only prepared plan: the first one to
				// need a source relation or hash table builds it, the rest
				// reuse it (the statement is write-free here, so the plan's
				// version stamps stay valid for the whole run).
				res, err := ses.ExecPreparedWithTables(prep, t.Main, map[string]*storage.Table{
					"taupsm_cp": chunkCPTable(cp, lo, hi),
				})
				outs[ci] = chunkOut{res: res, err: err}
				if err != nil {
					werr = err
					stop.Store(true)
					break
				}
				periods += hi - lo
				ses.Proc.AddCPDone(int64(hi - lo))
				ses.Proc.AddFragsDone(int64(hi - lo))
			}
			if workerID != 0 {
				attrs := []obs.Attr{
					obs.AInt("worker", int64(w)),
					obs.AInt("periods", int64(periods)),
				}
				if werr != nil {
					attrs = append(attrs, obs.A("error", werr.Error()))
				}
				st.tr.Span(obs.Span{Name: "stratum.worker", Start: start, Dur: time.Since(start),
					Trace: e.Trace.Trace, ID: workerID, Parent: e.Trace.Span, Attrs: attrs})
			}
			wstats[w] = ses.Stats
		}(w, ses, workerID)
	}
	wg.Wait()

	db.sm.parStmts.Inc()
	db.sm.parFrags.Add(int64(n))
	if st != nil {
		st.workers = k
	}
	for _, s := range wstats {
		e.Stats.Merge(s)
	}
	merged := &engine.Result{}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		if o.res == nil {
			continue
		}
		if merged.Cols == nil {
			merged.Cols = o.res.Cols
		}
		merged.Rows = append(merged.Rows, o.res.Rows...)
		merged.Affected += o.res.Affected
	}
	return merged, nil
}
