package taupsm_test

// Agreement tests: internal/check statically reimplements two engine
// analyses — routine purity (the function-result memo gate) and
// parallel chunk safety (the MAX fragment-worker gate). Both engine
// paths now delegate to the analyzer; these tests keep verbatim copies
// of the legacy inline walkers they replaced and assert the analyzer
// agrees with them on every routine and every query of the 16-query
// benchmark corpus.

import (
	"strings"
	"testing"

	"taupsm"
	"taupsm/internal/core"
	"taupsm/internal/enginetest"
	"taupsm/internal/sqlast"
	"taupsm/internal/sqlparser"
	"taupsm/internal/storage"
	"taupsm/internal/taubench"
	"taupsm/internal/wal"
)

// legacyPure is the engine's pre-analyzer purity walker, verbatim
// except that the sync.Map cache became a plain map: provisionally
// impure on entry (recursion resolves to impure), DML against stored
// tables and any DDL impure, callees resolved through the catalog.
func legacyPure(cat *storage.Catalog, r *storage.Routine, memo map[*storage.Routine]bool) bool {
	if v, ok := memo[r]; ok {
		return v
	}
	memo[r] = false
	pure := true
	sqlast.Walk(r.Body(), func(m sqlast.Node) bool {
		if !pure {
			return false
		}
		switch x := m.(type) {
		case *sqlast.InsertStmt:
			if cat.Table(x.Table) != nil {
				pure = false
			}
		case *sqlast.UpdateStmt:
			if cat.Table(x.Table) != nil {
				pure = false
			}
		case *sqlast.DeleteStmt:
			if cat.Table(x.Table) != nil {
				pure = false
			}
		case *sqlast.CreateTableStmt, *sqlast.DropTableStmt,
			*sqlast.CreateViewStmt, *sqlast.DropViewStmt,
			*sqlast.CreateFunctionStmt, *sqlast.CreateProcedureStmt,
			*sqlast.DropRoutineStmt, *sqlast.AlterAddValidTime:
			pure = false
		case *sqlast.FuncCall:
			if r2 := cat.Routine(x.Name); r2 != nil && !legacyPure(cat, r2, memo) {
				pure = false
			}
		case *sqlast.CallStmt:
			if r2 := cat.Routine(x.Name); r2 != nil && !legacyPure(cat, r2, memo) {
				pure = false
			}
		}
		return pure
	})
	memo[r] = pure
	return pure
}

// legacyParallelSafe is the stratum's pre-analyzer chunk-safety
// walker, verbatim: top-level ORDER BY / FETCH FIRST unsafe, then a
// write-freedom walk over the main statement and every reachable
// routine, translation-local clones resolved before the catalog.
func legacyParallelSafe(cat *storage.Catalog, t *core.Translation) bool {
	q, ok := t.Main.(sqlast.QueryExpr)
	if !ok || !legacyChunkOrderSafe(q) {
		return false
	}
	local := map[string]sqlast.Stmt{}
	for _, r := range t.Routines {
		switch x := r.(type) {
		case *sqlast.CreateFunctionStmt:
			local[strings.ToLower(x.Name)] = x.Body
		case *sqlast.CreateProcedureStmt:
			local[strings.ToLower(x.Name)] = x.Body
		}
	}
	seen := map[string]bool{}
	safe := true
	var checkNode func(n sqlast.Node)
	visitRoutine := func(name string) {
		k := strings.ToLower(name)
		if seen[k] {
			return
		}
		seen[k] = true
		if body, ok := local[k]; ok {
			checkNode(body)
			return
		}
		if r := cat.Routine(name); r != nil {
			checkNode(r.Body())
		}
	}
	checkNode = func(n sqlast.Node) {
		sqlast.Walk(n, func(m sqlast.Node) bool {
			if !safe {
				return false
			}
			switch x := m.(type) {
			case *sqlast.InsertStmt:
				if cat.Table(x.Table) != nil {
					safe = false
				}
			case *sqlast.UpdateStmt:
				if cat.Table(x.Table) != nil {
					safe = false
				}
			case *sqlast.DeleteStmt:
				if cat.Table(x.Table) != nil {
					safe = false
				}
			case *sqlast.CreateTableStmt, *sqlast.DropTableStmt,
				*sqlast.CreateViewStmt, *sqlast.DropViewStmt,
				*sqlast.CreateFunctionStmt, *sqlast.CreateProcedureStmt,
				*sqlast.DropRoutineStmt:
				safe = false
			case *sqlast.FuncCall:
				visitRoutine(x.Name)
			case *sqlast.CallStmt:
				visitRoutine(x.Name)
			}
			return safe
		})
	}
	checkNode(t.Main)
	return safe
}

func legacyChunkOrderSafe(q sqlast.QueryExpr) bool {
	switch x := q.(type) {
	case *sqlast.SelectStmt:
		return len(x.OrderBy) == 0 && x.Limit == nil
	case *sqlast.SetOpExpr:
		if len(x.OrderBy) > 0 {
			return false
		}
		return legacyChunkOrderSafe(x.L) && legacyChunkOrderSafe(x.R)
	case *sqlast.ValuesExpr:
		return true
	}
	return false
}

func TestStaticPurityAgreesWithEngine(t *testing.T) {
	for _, q := range taubench.Queries() {
		t.Run(q.Name, func(t *testing.T) {
			e := enginetest.CorpusEngine(t, q.Routines)
			memo := map[*storage.Routine]bool{}
			for _, name := range e.Cat.RoutineNames() {
				want := legacyPure(e.Cat, e.Cat.Routine(name), memo)
				got := e.RoutinePure(name)
				if got != want {
					t.Errorf("%s: static purity %v, legacy walker %v", name, got, want)
				}
			}
		})
	}
}

// frameLocalUpgrades are the corpus queries whose only writes the
// effect summary proves frame-local (temporary tables a routine
// creates for itself), making them parallel-eligible where the legacy
// write-freedom walker refused. Any other divergence is a bug.
var frameLocalUpgrades = map[string]bool{
	"q11": true, // count_subject_books stages rows in its own temp table
}

func TestStaticParallelSafetyAgreesWithEngine(t *testing.T) {
	upgraded := map[string]bool{}
	for _, q := range taubench.Queries() {
		t.Run(q.Name, func(t *testing.T) {
			db := taupsm.Open()
			db.MustExec(taubench.Schema)
			if strings.TrimSpace(q.Routines) != "" {
				db.MustExec(q.Routines)
			}
			stmt, err := sqlparser.ParseStatement("VALIDTIME " + q.Text)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			tr, err := db.TranslateStmt(stmt, taupsm.Max)
			if err != nil {
				t.Fatalf("translate: %v", err)
			}
			// The legacy walker reads the catalog directly; mirror the
			// database's catalog state in a bare engine.
			e := enginetest.CorpusEngine(t, q.Routines)
			want := legacyParallelSafe(e.Cat, tr)
			got := db.ParallelSafe(tr)
			switch {
			case got == want:
			case got && !want && frameLocalUpgrades[q.Name]:
				upgraded[q.Name] = true
			default:
				t.Errorf("%s: static parallel safety %v, legacy walker %v", q.Name, got, want)
			}
		})
	}
	for name := range frameLocalUpgrades {
		if !upgraded[name] {
			t.Errorf("%s: expected the effect summary to upgrade it to parallel-eligible", name)
		}
	}
}

// TestFrameLocalUpgradeResultsAgree proves the upgraded queries are not
// just eligible but correct: serial, parallel, persistent, and
// recovered executions all return the same rows, and the parallel runs
// really take the fragment-worker path.
func TestFrameLocalUpgradeResultsAgree(t *testing.T) {
	spec, err := taubench.SpecByName("DS1", taubench.Small)
	if err != nil {
		t.Fatal(err)
	}

	serial := taupsm.Open()
	enginetest.LoadCorpus(t, serial, spec)
	serial.SetStrategy(taupsm.Max)
	serial.SetParallelism(1)

	par := taupsm.Open()
	enginetest.LoadCorpus(t, par, spec)
	par.SetStrategy(taupsm.Max)
	par.SetParallelism(4)

	fs := wal.NewMemFS()
	per, err := taupsm.OpenFS(fs)
	if err != nil {
		t.Fatal(err)
	}
	enginetest.LoadCorpus(t, per, spec)
	per.SetStrategy(taupsm.Max)
	per.SetParallelism(4)

	for _, q := range taubench.Queries() {
		if !frameLocalUpgrades[q.Name] {
			continue
		}
		sql := taubench.SequencedSQL(q, 30)
		want, err := serial.Query(sql)
		if err != nil {
			t.Fatalf("%s serial: %v", q.Name, err)
		}
		for name, db := range map[string]*taupsm.DB{"parallel": par, "persistent": per} {
			got, err := db.Query(sql)
			if err != nil {
				t.Fatalf("%s %s: %v", q.Name, name, err)
			}
			if w, g := enginetest.SortedRows(want), enginetest.SortedRows(got); w != g {
				t.Errorf("%s: %s execution diverges from serial\n--- serial\n%s\n--- %s\n%s", q.Name, name, w, name, g)
			}
		}
	}
	if par.Metrics().Value("stratum.parallel.statements_total") == 0 {
		t.Fatal("upgraded queries never took the parallel path")
	}

	// Recovery: the frame-local temp tables must not have leaked into
	// the persistent catalog, and the recovered database must still
	// produce the same rows, still in parallel.
	if err := per.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	per.Close()
	rec, err := taupsm.OpenFS(fs.CrashImage())
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer rec.Close()
	rec.SetNow(2011, 1, 1)
	rec.SetStrategy(taupsm.Max)
	rec.SetParallelism(4)
	for _, q := range taubench.Queries() {
		if !frameLocalUpgrades[q.Name] {
			continue
		}
		sql := taubench.SequencedSQL(q, 30)
		want, err := serial.Query(sql)
		if err != nil {
			t.Fatalf("%s serial: %v", q.Name, err)
		}
		got, err := rec.Query(sql)
		if err != nil {
			t.Fatalf("%s recovered: %v", q.Name, err)
		}
		if w, g := enginetest.SortedRows(want), enginetest.SortedRows(got); w != g {
			t.Errorf("%s: recovered execution diverges from serial\n--- serial\n%s\n--- recovered\n%s", q.Name, w, g)
		}
	}
	if rec.Metrics().Value("stratum.parallel.statements_total") == 0 {
		t.Fatal("recovered database never took the parallel path")
	}
}
