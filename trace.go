package taupsm

import (
	"context"
	"hash/fnv"
	"time"

	"taupsm/internal/obs"
	"taupsm/internal/sqlast"
)

// This file is the stratum half of the tracing layer: trace sessions
// (which sinks receive a statement's spans, under which trace ID),
// the per-statement state threaded through translate → slice →
// execute → commit, and the sampling policy.
//
// A trace covers one top-level unit of work: one user statement, or —
// when Exec runs a multi-statement script — the whole script (the
// parse span and every statement root share the script's trace ID).
// Span identity lives in internal/obs; the stratum only decides when
// a trace starts and which spans join it.

// traceSession is the per-script (or per-statement) trace decision:
// the trace ID and the effective sink set. It rides on the
// context.Context so every layer below sees one consistent decision.
type traceSession struct {
	trace obs.TraceID
	tr    obs.Tracer
}

type traceSessionKey struct{}

func sessionFromContext(ctx context.Context) *traceSession {
	ts, _ := ctx.Value(traceSessionKey{}).(*traceSession)
	return ts
}

// WithTrace returns a context that forces span capture for every
// statement executed under it, regardless of the sampling setting,
// and the trace ID the spans will carry. Spans land in the trace
// buffer (TraceBuffer) and in the attached tracer, if any. The REPL's
// \trace and EXPLAIN ANALYZE are built on it.
func (db *DB) WithTrace(ctx context.Context) (context.Context, obs.TraceID) {
	ts := &traceSession{trace: obs.NewTraceID(), tr: obs.MultiTracer(db.tracer, db.ring)}
	return context.WithValue(ctx, traceSessionKey{}, ts), ts.trace
}

// ensureTraceContext attaches a trace session to ctx when none is
// present yet: the sampler decides once for the whole unit (script or
// statement). When the decision is "untraced", an empty session is
// still attached so the per-statement layer sees a decision was made
// and does not roll the sampler a second time.
func (db *DB) ensureTraceContext(ctx context.Context) context.Context {
	if sessionFromContext(ctx) != nil {
		return ctx
	}
	ts := db.newTraceSession()
	if ts == nil {
		ts = &traceSession{}
	}
	return context.WithValue(ctx, traceSessionKey{}, ts)
}

// newTraceSession makes the per-unit tracing decision: the attached
// tracer (SetTracer) always participates; the trace buffer joins for
// every Nth unit per the sampling setting. Nil when neither applies —
// the fully-disabled fast path.
func (db *DB) newTraceSession() *traceSession {
	var ring obs.Tracer
	if n := db.sampleN.Load(); n > 0 && db.sampleCtr.Add(1)%uint64(n) == 0 {
		ring = db.ring
	}
	tr := obs.MultiTracer(db.tracer, ring)
	if tr == nil {
		return nil
	}
	return &traceSession{trace: obs.NewTraceID(), tr: tr}
}

// SetTraceSampling controls span capture into the trace buffer: n = 1
// records every statement, n = k every kth, n = 0 (the default) none.
// Sampling is independent of SetTracer — an attached tracer always
// receives every span. The /traces telemetry endpoint and the
// taubench observability report read the sampled buffer.
func (db *DB) SetTraceSampling(n int) {
	if n < 0 {
		n = 0
	}
	db.sampleN.Store(int64(n))
}

// TraceSampling returns the current sampling setting (0 = off).
func (db *DB) TraceSampling() int { return int(db.sampleN.Load()) }

// TraceBuffer returns the bounded ring buffer holding recently
// sampled spans, grouped by trace ID — the store behind the /traces
// endpoint and the REPL's \trace.
func (db *DB) TraceBuffer() *obs.Ring { return db.ring }

// LastStatement reports the most recently executed statement's trace
// ID (zero when it was not traced) and its total duration measured on
// the span clock — the same measurement the stratum.statement root
// span and the slow-query log carry, so \timing never disagrees with
// a trace.
func (db *DB) LastStatement() (obs.TraceID, time.Duration) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.lastTrace, db.lastDur
}

func (db *DB) noteLastStatement(trace obs.TraceID, d time.Duration) {
	db.mu.Lock()
	db.lastTrace, db.lastDur = trace, d
	db.mu.Unlock()
}

// stmtState carries one statement's observability through the
// execution layers: the effective tracer and root span context, the
// per-stage durations, and the execution facts (fragments, cache
// outcomes, WAL cost) that EXPLAIN ANALYZE and the slow-query log
// report. It exists only when the statement is traced or the slow log
// is armed; the disabled hot path passes nil and every site reduces
// to one pointer comparison.
type stmtState struct {
	// tr receives the statement's spans; nil when only the slow log is
	// armed (stage durations are still collected — they cost two clock
	// reads each, already paid for the latency histograms).
	tr   obs.Tracer
	root obs.SpanContext

	kind     string
	strategy string
	// procID is the statement's process-list entry ID, joining slow-log
	// lines and EXPLAIN ANALYZE output against live introspection.
	procID int64
	// total is the statement's end-to-end duration, set by finishStmt.
	total time.Duration

	lintDur      time.Duration
	translateDur time.Duration
	cpDur        time.Duration
	executeDur   time.Duration
	commitDur    time.Duration
	fsyncDur     time.Duration

	rows         int
	affected     int
	fragments    int64
	cps          int64
	workers      int
	transProbed  bool
	transHit     bool
	cpProbed     bool
	cpHit        bool
	walBytes     int64
	walFsyncs    int64
	routineCalls int64
	rowsScanned  int64
	// planHits/sweepJoins are this statement's deltas (from the session
	// journal, like routineCalls), not the prepared plan's lifetime
	// totals — EXPLAIN ANALYZE must report per-statement figures even
	// though the plan is shared across a batch.
	planHits   int64
	sweepJoins int64
}

// traced reports whether spans should be emitted.
func (st *stmtState) traced() bool { return st != nil && st.tr != nil }

// beginStmt decides this statement's observability: the context's
// trace session (possibly an empty "decided: untraced" one), or —
// for callers that never went through ensureTraceContext — a fresh
// per-statement sampling decision. Plain stage accounting happens
// whenever the slow log is armed. Returns nil when everything is off.
func (db *DB) beginStmt(ctx context.Context, kind string) *stmtState {
	ts := sessionFromContext(ctx)
	if ts == nil {
		ts = db.newTraceSession()
	}
	traced := ts != nil && ts.tr != nil
	if !traced && !db.slowLogArmed() {
		return nil
	}
	st := &stmtState{kind: kind}
	if traced {
		st.tr = ts.tr
		st.root = obs.SpanContext{Trace: ts.trace, Span: obs.NewSpanID()}
	}
	return st
}

// finishStmt closes out a statement: the stratum.statement root span,
// the \timing record, and the slow-query log entry.
func (db *DB) finishStmt(st *stmtState, stmt sqlast.Stmt, start time.Time, total time.Duration, execErr error) {
	var trace obs.TraceID
	if st != nil {
		trace = st.root.Trace
		st.total = total
	}
	db.noteLastStatement(trace, total)
	if st.traced() {
		attrs := []obs.Attr{obs.A("kind", st.kind)}
		if st.strategy != "" {
			attrs = append(attrs, obs.A("strategy", st.strategy))
		}
		attrs = append(attrs, obs.AInt("rows", int64(st.rows)))
		if execErr != nil {
			attrs = append(attrs, obs.A("error", execErr.Error()))
		}
		st.tr.Span(obs.Span{Name: "stratum.statement", Start: start, Dur: total,
			Trace: st.root.Trace, ID: st.root.Span, Attrs: attrs})
	}
	if st != nil {
		db.maybeSlowLog(st, stmt, total, execErr)
	}
	kind, strategy := "", ""
	if st != nil {
		kind, strategy = st.kind, st.strategy
	} else {
		kind = stmtKind(stmt)
	}
	db.noteStatementProfile(stmt, kind, strategy, total, execErr != nil)
}

// digestSQL is the statement digest carried by slow-log entries and
// span attributes: a stable 64-bit FNV-1a of the rendered SQL text,
// so repeated executions of one statement aggregate under one key.
func digestSQL(text string) string {
	h := fnv.New64a()
	h.Write([]byte(text))
	return obs.TraceID(h.Sum64()).String()
}
