// Package obs is the observability layer of the stratum: a Tracer hook
// interface that receives spans (timed operations) and events
// (instantaneous occurrences) from every layer of the stack, plus an
// in-process Metrics registry of atomic counters, gauges, and
// lightweight latency histograms with an expvar-style text exposition.
//
// Design constraints, in order:
//
//  1. Zero overhead when disabled. Instrumentation sites nil-check the
//     tracer before touching the clock; with no tracer attached the
//     cost is one pointer comparison.
//  2. No allocation bookkeeping on the caller. Spans are delivered
//     complete (name, start, duration, attributes) in a single call
//     rather than as begin/end pairs the caller must pair up.
//  3. Race-free by construction. Counters, gauges and histogram
//     buckets are atomics, so concurrent sessions can share one
//     registry; `go test -race` covers them.
package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value attribute attached to a span or event.
type Attr struct {
	Key string
	Val string
}

// A builds a string attribute.
func A(key, val string) Attr { return Attr{Key: key, Val: val} }

// AInt builds an integer attribute.
func AInt(key string, v int64) Attr { return Attr{Key: key, Val: fmt.Sprintf("%d", v)} }

// Span is one completed, timed operation: a statement phase in the
// stratum (parse, translate, execute) or a unit of engine work (a
// query evaluation, a routine invocation — one per evaluated fragment
// under MAX slicing).
//
// Trace, ID, and Parent place the span in a trace tree. They are
// optional: instrumentation that predates tracing (or runs outside a
// traced statement) delivers spans with the zero values, and every
// sink must accept them.
type Span struct {
	Name  string
	Start time.Time
	Dur   time.Duration
	Attrs []Attr

	// Trace is the trace this span belongs to (0 = untraced).
	Trace TraceID
	// ID is the span's own identity within the process (0 = anonymous).
	ID SpanID
	// Parent is the enclosing span (0 = a trace root).
	Parent SpanID
}

// Event is one instantaneous occurrence, e.g. a strategy decision of
// the §VII-F heuristic or a PERST fallback to MAX.
type Event struct {
	Name  string
	Attrs []Attr
}

// Tracer receives spans and events. Implementations must be safe for
// use from the goroutine executing statements; they should return
// quickly (expensive sinks should buffer).
type Tracer interface {
	Span(s Span)
	Event(e Event)
}

// attr returns the value of the named attribute, or "".
func attr(attrs []Attr, key string) string {
	for _, a := range attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// ---------- fan-out ----------

// multiTracer forwards every span and event to each member.
type multiTracer []Tracer

func (m multiTracer) Span(s Span) {
	for _, t := range m {
		t.Span(s)
	}
}

func (m multiTracer) Event(e Event) {
	for _, t := range m {
		t.Event(e)
	}
}

// MultiTracer fans spans and events out to every non-nil tracer in ts.
// It returns nil when no tracer remains, preserving the nil fast path.
func MultiTracer(ts ...Tracer) Tracer {
	var out multiTracer
	for _, t := range ts {
		if t != nil {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return nil
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}

// ---------- collecting tracer ----------

// Collector is a Tracer that records everything it receives, for tests
// and for interactive inspection (the REPL's \timing uses one). Safe
// for concurrent use.
type Collector struct {
	mu     sync.Mutex
	spans  []Span
	events []Event
}

// Span records s.
func (c *Collector) Span(s Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

// Event records e.
func (c *Collector) Event(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Span(nil), c.spans...)
}

// Events returns a copy of the recorded events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// SpansNamed returns the recorded spans with the given name.
func (c *Collector) SpansNamed(name string) []Span {
	var out []Span
	for _, s := range c.Spans() {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// EventsNamed returns the recorded events with the given name.
func (c *Collector) EventsNamed(name string) []Event {
	var out []Event
	for _, e := range c.Events() {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// Reset discards everything recorded so far.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.spans, c.events = nil, nil
	c.mu.Unlock()
}

// ---------- writer tracer ----------

// WriterTracer renders each span and event as one line on w — the
// slow-query-log and debug sink. MinDur, when non-zero, suppresses
// spans shorter than the threshold (events always print).
type WriterTracer struct {
	mu     sync.Mutex
	W      io.Writer
	MinDur time.Duration
}

// Span prints the span as a single line when it meets MinDur. Traced
// spans carry their trace ID so lines from one statement correlate.
func (t *WriterTracer) Span(s Span) {
	if s.Dur < t.MinDur {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.Trace != 0 {
		fmt.Fprintf(t.W, "span %s %s trace=%s%s\n", s.Name, s.Dur, s.Trace, formatAttrs(s.Attrs))
		return
	}
	fmt.Fprintf(t.W, "span %s %s%s\n", s.Name, s.Dur, formatAttrs(s.Attrs))
}

// Event prints the event as a single line.
func (t *WriterTracer) Event(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.W, "event %s%s\n", e.Name, formatAttrs(e.Attrs))
}

func formatAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, a := range attrs {
		fmt.Fprintf(&b, " %s=%s", a.Key, a.Val)
	}
	return b.String()
}
