package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1 * time.Nanosecond, 0},
		{1 * time.Microsecond, 0},
		{1*time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{2*time.Microsecond + 1, 2},
		{4 * time.Microsecond, 2},
		{1 * time.Millisecond, 10},   // 1µs·2^10 = 1.024ms
		{100 * time.Millisecond, 17}, // 1µs·2^17 ≈ 131ms
		{1 * time.Second, 20},        // 1µs·2^20 ≈ 1.05s
		{24 * time.Hour, histOverflow},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every bucket's upper bound must map back into that bucket.
	for i := 0; i < histBuckets; i++ {
		if got := bucketIndex(bucketUpper(i)); got != i {
			t.Errorf("bucketIndex(bucketUpper(%d)) = %d", i, got)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	// 90 fast observations, 10 slow ones: p50 small, p95 large.
	for i := 0; i < 90; i++ {
		h.Record(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(50 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.Quantile(0.50); p50 > time.Millisecond {
		t.Errorf("p50 = %v, want <= 1ms", p50)
	}
	if p95 := h.Quantile(0.95); p95 < 10*time.Millisecond {
		t.Errorf("p95 = %v, want >= 10ms", p95)
	}
	if h.Quantile(1.0) < h.Quantile(0.5) {
		t.Error("quantiles not monotone")
	}
}

func TestConcurrentCounters(t *testing.T) {
	m := NewMetrics()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := m.Counter("test.ops_total")
			h := m.Histogram("test.ns")
			ga := m.Gauge("test.last")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Record(time.Duration(i) * time.Microsecond)
				ga.Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("test.ops_total").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := m.Histogram("test.ns").Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestMetricsResetAndString(t *testing.T) {
	m := NewMetrics()
	m.Counter("b.counter").Add(7)
	m.Gauge("a.gauge").Set(42)
	m.Histogram("c.hist").Record(3 * time.Millisecond)
	out := m.String()
	if !strings.Contains(out, "b.counter 7") || !strings.Contains(out, "a.gauge 42") {
		t.Fatalf("exposition missing values:\n%s", out)
	}
	// Sorted by name: a.gauge before b.counter before c.hist.
	if ai, bi := strings.Index(out, "a.gauge"), strings.Index(out, "b.counter"); ai > bi {
		t.Fatalf("exposition not sorted:\n%s", out)
	}
	if m.Value("b.counter") != 7 || m.Value("a.gauge") != 42 || m.Value("nope") != 0 {
		t.Fatal("Value lookups wrong")
	}
	m.Reset()
	if m.Value("b.counter") != 0 || m.Histogram("c.hist").Count() != 0 {
		t.Fatal("Reset did not zero metrics")
	}
}

func TestMultiTracerFanOut(t *testing.T) {
	var a, b Collector
	tr := MultiTracer(&a, nil, &b)
	tr.Span(Span{Name: "x", Dur: time.Millisecond})
	tr.Event(Event{Name: "y", Attrs: []Attr{A("k", "v")}})
	for _, c := range []*Collector{&a, &b} {
		if len(c.Spans()) != 1 || len(c.Events()) != 1 {
			t.Fatalf("collector did not receive fan-out: %d spans, %d events",
				len(c.Spans()), len(c.Events()))
		}
	}
	if got := attr(b.Events()[0].Attrs, "k"); got != "v" {
		t.Fatalf("attr k = %q", got)
	}
	if MultiTracer(nil, nil) != nil {
		t.Fatal("MultiTracer of nils should be nil")
	}
	if MultiTracer(&a) != Tracer(&a) {
		t.Fatal("MultiTracer of one tracer should return it unwrapped")
	}
}

func TestCollectorFilters(t *testing.T) {
	var c Collector
	c.Span(Span{Name: "engine.routine"})
	c.Span(Span{Name: "stratum.translate"})
	c.Event(Event{Name: "stratum.auto"})
	if got := len(c.SpansNamed("engine.routine")); got != 1 {
		t.Fatalf("SpansNamed = %d", got)
	}
	if got := len(c.EventsNamed("stratum.auto")); got != 1 {
		t.Fatalf("EventsNamed = %d", got)
	}
	c.Reset()
	if len(c.Spans()) != 0 || len(c.Events()) != 0 {
		t.Fatal("Reset did not clear collector")
	}
}

func TestWriterTracer(t *testing.T) {
	var buf bytes.Buffer
	wt := &WriterTracer{W: &buf, MinDur: 10 * time.Millisecond}
	wt.Span(Span{Name: "fast", Dur: time.Millisecond})
	wt.Span(Span{Name: "slow", Dur: 20 * time.Millisecond, Attrs: []Attr{A("q", "q2")}})
	wt.Event(Event{Name: "decided", Attrs: []Attr{A("strategy", "MAX")}})
	out := buf.String()
	if strings.Contains(out, "fast") {
		t.Fatalf("MinDur did not suppress fast span:\n%s", out)
	}
	if !strings.Contains(out, "span slow 20ms q=q2") {
		t.Fatalf("slow span not rendered:\n%s", out)
	}
	if !strings.Contains(out, "event decided strategy=MAX") {
		t.Fatalf("event not rendered:\n%s", out)
	}
}
