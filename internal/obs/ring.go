package obs

import (
	"sort"
	"sync"
)

// Ring is a bounded in-memory span buffer: the sink behind the
// /traces telemetry endpoint and the REPL's \trace. It keeps the most
// recent Cap spans (older spans of a still-referenced trace fall off —
// memory stays bounded no matter how many spans a statement emits) and
// serves them back grouped by trace. Safe for concurrent use; parallel
// fragment workers record into one Ring.
type Ring struct {
	mu    sync.Mutex
	cap   int
	spans []Span // ring storage, len grows to cap then stays
	next  int    // next write position once len == cap
	total uint64 // spans ever recorded (monotonic)
}

// DefaultRingCap bounds the span buffer when the caller does not pick
// a capacity: at ~100 bytes a span this is well under a megabyte.
const DefaultRingCap = 4096

// NewRing returns a ring holding at most cap spans (DefaultRingCap
// when cap <= 0).
func NewRing(cap int) *Ring {
	if cap <= 0 {
		cap = DefaultRingCap
	}
	return &Ring{cap: cap}
}

// Span records s, evicting the oldest span when full.
func (r *Ring) Span(s Span) {
	r.mu.Lock()
	if len(r.spans) < r.cap {
		r.spans = append(r.spans, s)
	} else {
		r.spans[r.next] = s
		r.next = (r.next + 1) % r.cap
	}
	r.total++
	r.mu.Unlock()
}

// Event is a no-op: the ring keeps spans only (events carry no
// duration and the decisions they record ride on span attributes).
func (r *Ring) Event(Event) {}

// Cap returns the ring's capacity in spans.
func (r *Ring) Cap() int { return r.cap }

// Len returns the number of spans currently buffered (<= Cap).
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Total returns the number of spans ever recorded, including evicted
// ones.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Reset discards every buffered span.
func (r *Ring) Reset() {
	r.mu.Lock()
	r.spans, r.next, r.total = nil, 0, 0
	r.mu.Unlock()
}

// snapshot copies the buffered spans oldest-first.
func (r *Ring) snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.spans))
	out = append(out, r.spans[r.next:]...)
	out = append(out, r.spans[:r.next]...)
	return out
}

// Spans returns a copy of the buffered spans, oldest first.
func (r *Ring) Spans() []Span { return r.snapshot() }

// TraceSpans returns the buffered spans belonging to the given trace,
// oldest first. Empty when the trace was never sampled or has been
// fully evicted.
func (r *Ring) TraceSpans(id TraceID) []Span {
	var out []Span
	for _, s := range r.snapshot() {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	return out
}

// TraceSummary describes one buffered trace for the /traces listing.
type TraceSummary struct {
	Trace TraceID
	Root  string // name of the root span, "" when evicted
	Spans int
}

// Traces lists the distinct traces currently buffered, newest first.
func (r *Ring) Traces() []TraceSummary {
	type agg struct {
		sum  TraceSummary
		last int // highest buffer position, for recency ordering
	}
	byID := map[TraceID]*agg{}
	for i, s := range r.snapshot() {
		if s.Trace == 0 {
			continue
		}
		a := byID[s.Trace]
		if a == nil {
			a = &agg{sum: TraceSummary{Trace: s.Trace}}
			byID[s.Trace] = a
		}
		a.sum.Spans++
		a.last = i
		if s.Parent == 0 {
			a.sum.Root = s.Name
		}
	}
	out := make([]*agg, 0, len(byID))
	for _, a := range byID {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].last > out[j].last })
	sums := make([]TraceSummary, len(out))
	for i, a := range out {
		sums[i] = a.sum
	}
	return sums
}
