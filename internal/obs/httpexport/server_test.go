package httpexport

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"taupsm/internal/obs"
)

func testMetrics() *obs.Metrics {
	m := obs.NewMetrics()
	m.Counter("stratum.statements_total").Add(7)
	m.Gauge("stratum.constant_periods").Set(12)
	h := m.Histogram("stratum.execute_ns")
	for _, d := range []time.Duration{time.Microsecond, 3 * time.Microsecond, 40 * time.Millisecond} {
		h.Record(d)
	}
	return m
}

func TestPrometheusTextValidates(t *testing.T) {
	text := PrometheusText(testMetrics())
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE stratum_statements_total counter",
		"stratum_statements_total 7",
		"# TYPE stratum_constant_periods gauge",
		"stratum_constant_periods 12",
		"# TYPE stratum_execute_ns histogram",
		`stratum_execute_ns_bucket{le="+Inf"} 3`,
		"stratum_execute_ns_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"stratum.parse_ns": "stratum_parse_ns",
		"wal.fsyncs_total": "wal_fsyncs_total",
		"a-b c":            "a_b_c",
		"9lives":           "_9lives",
		"ok:name_1":        "ok:name_1",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := &Server{Metrics: testMetrics(), Ring: obs.NewRing(64)}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	code, body, _ := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz = %d %q", code, body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, body, hdr := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if err := ValidateExposition(body); err != nil {
		t.Fatalf("served exposition invalid: %v", err)
	}
}

func TestTracesEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)

	// Empty ring: an empty JSON array, not null.
	code, body, hdr := get(t, ts.URL+"/traces")
	if code != http.StatusOK {
		t.Fatalf("traces status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var list []map[string]any
	if err := json.Unmarshal([]byte(body), &list); err != nil || len(list) != 0 {
		t.Fatalf("empty listing = %q (%v)", body, err)
	}

	tr := obs.NewTraceID()
	root := obs.NewSpanID()
	child := obs.NewSpanID()
	srv.Ring.Span(obs.Span{Name: "stratum.execute", Trace: tr, ID: child, Parent: root,
		Start: time.Now(), Dur: time.Millisecond, Attrs: []obs.Attr{obs.AInt("rows", 2)}})
	srv.Ring.Span(obs.Span{Name: "stratum.statement", Trace: tr, ID: root,
		Start: time.Now(), Dur: 2 * time.Millisecond})

	_, body, _ = get(t, ts.URL+"/traces")
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("listing: %v", err)
	}
	if len(list) != 1 || list[0]["trace_id"] != tr.String() ||
		list[0]["root"] != "stratum.statement" || list[0]["spans"].(float64) != 2 {
		t.Fatalf("listing = %q", body)
	}

	code, body, _ = get(t, ts.URL+"/traces?id="+tr.String())
	if code != http.StatusOK {
		t.Fatalf("trace by id status = %d: %s", code, body)
	}
	var tree struct {
		TraceID string `json:"trace_id"`
		Spans   []struct {
			Name     string `json:"name"`
			Children []struct {
				Name  string            `json:"name"`
				Attrs map[string]string `json:"attrs"`
			} `json:"children"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &tree); err != nil {
		t.Fatalf("tree: %v\n%s", err, body)
	}
	if tree.TraceID != tr.String() || len(tree.Spans) != 1 ||
		tree.Spans[0].Name != "stratum.statement" ||
		len(tree.Spans[0].Children) != 1 ||
		tree.Spans[0].Children[0].Name != "stratum.execute" ||
		tree.Spans[0].Children[0].Attrs["rows"] != "2" {
		t.Fatalf("tree = %s", body)
	}

	if code, _, _ := get(t, ts.URL+"/traces?id=zzz"); code != http.StatusBadRequest {
		t.Errorf("bad id status = %d, want 400", code)
	}
	if code, _, _ := get(t, ts.URL+"/traces?id="+obs.NewTraceID().String()); code != http.StatusNotFound {
		t.Errorf("unknown id status = %d, want 404", code)
	}
}

func TestPprofMounted(t *testing.T) {
	_, ts := newTestServer(t)
	code, body, _ := get(t, ts.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index = %d", code)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE": "some_metric 1\n",
		"malformed sample": "# TYPE m counter\n" +
			"m one\n",
		"malformed label": "# TYPE m counter\n" +
			"m{le=\"x} 1\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.001\"} 5\n" +
			"h_bucket{le=\"0.01\"} 3\n" +
			"h_bucket{le=\"+Inf\"} 5\n" +
			"h_sum 1\nh_count 5\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.001\"} 5\n" +
			"h_sum 1\nh_count 5\n",
		"bucket after +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 5\n" +
			"h_bucket{le=\"0.001\"} 5\n" +
			"h_sum 1\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 5\n" +
			"h_sum 1\nh_count 4\n",
		"bucket without le": "# TYPE h histogram\n" +
			"h_bucket 5\n" +
			"h_sum 1\nh_count 5\n",
	}
	for name, text := range cases {
		if err := ValidateExposition(text); err == nil {
			t.Errorf("%s: validator accepted:\n%s", name, text)
		}
	}
	good := "# TYPE h histogram\n" +
		"h_bucket{le=\"0.001\"} 2\n" +
		"h_bucket{le=\"+Inf\"} 5\n" +
		"h_sum 0.004\nh_count 5\n"
	if err := ValidateExposition(good); err != nil {
		t.Errorf("validator rejected well-formed exposition: %v", err)
	}
}
