// Command promlint validates a Prometheus text exposition file (or
// stdin with no argument) against the line-format invariants in
// httpexport.ValidateExposition. The CI telemetry job runs it on a
// live /metrics scrape; exits non-zero on the first violation.
package main

import (
	"fmt"
	"io"
	"os"

	"taupsm/internal/obs/httpexport"
)

func main() {
	var data []byte
	var err error
	switch len(os.Args) {
	case 1:
		data, err = io.ReadAll(os.Stdin)
	case 2:
		data, err = os.ReadFile(os.Args[1])
	default:
		fmt.Fprintln(os.Stderr, "usage: promlint [metrics.txt]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	if err := httpexport.ValidateExposition(string(data)); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
}
