package httpexport

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// processStart anchors the uptime metric to process initialization.
var processStart = time.Now()

// ProcessText renders the process self-metrics appended to /metrics:
// Go runtime health (goroutines, heap, GC) and uptime, so one scrape
// answers both "what is the database doing" and "how is the process
// holding up". Names follow the Prometheus process_/go_ conventions
// and are emitted in sorted order, matching the registry exposition.
func ProcessText() string {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	var b strings.Builder
	gauge := func(name string, v int64) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, v)
	}
	fmt.Fprintf(&b, "# TYPE process_gc_cycles_total counter\nprocess_gc_cycles_total %d\n", ms.NumGC)
	fmt.Fprintf(&b, "# TYPE process_gc_pause_seconds_total counter\nprocess_gc_pause_seconds_total %s\n",
		formatSeconds(int64(ms.PauseTotalNs)))
	gauge("process_goroutines", int64(runtime.NumGoroutine()))
	gauge("process_heap_alloc_bytes", int64(ms.HeapAlloc))
	gauge("process_heap_objects", int64(ms.HeapObjects))
	gauge("process_uptime_seconds", int64(time.Since(processStart).Seconds()))
	return b.String()
}
