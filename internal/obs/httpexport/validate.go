package httpexport

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// ValidateExposition checks a Prometheus text exposition for the
// line-format invariants a scraper depends on. It is deliberately a
// small validator, not a full parser: the CI telemetry job and the
// exporter's own tests use it to fail fast on malformed output
// without pulling in external tooling.
//
// Checked:
//   - every line is a comment (# ...) or a sample "name[{labels}] value";
//   - metric and label names are well-formed;
//   - sample values parse as floats (+Inf/-Inf/NaN allowed);
//   - every sample's base name was declared by a preceding # TYPE line;
//   - histogram buckets are cumulative (non-decreasing in le order),
//     end with le="+Inf", and agree with the _count sample.
var (
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	labelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
)

func ValidateExposition(text string) error {
	type histState struct {
		lastCum   float64
		infSeen   bool
		infCum    float64
		count     float64
		hasCount  bool
		hasSum    bool
		bucketSeq int
	}
	types := map[string]string{}
	hists := map[string]*histState{}

	for i, line := range strings.Split(text, "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "# TYPE ") {
				m := typeRe.FindStringSubmatch(line)
				if m == nil {
					return fmt.Errorf("line %d: malformed TYPE comment: %q", lineNo, line)
				}
				types[m[1]] = m[2]
				if m[2] == "histogram" {
					hists[m[1]] = &histState{}
				}
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample: %q", lineNo, line)
		}
		name, labels, valStr := m[1], m[3], m[4]
		val, err := parseValue(valStr)
		if err != nil {
			return fmt.Errorf("line %d: bad value %q: %v", lineNo, valStr, err)
		}
		var le string
		if labels != "" {
			for _, lab := range strings.Split(labels, ",") {
				lm := labelRe.FindStringSubmatch(strings.TrimSpace(lab))
				if lm == nil {
					return fmt.Errorf("line %d: malformed label %q", lineNo, lab)
				}
				if lm[1] == "le" {
					le = lm[2]
				}
			}
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if t, ok := types[strings.TrimSuffix(name, suffix)]; ok && t == "histogram" && strings.HasSuffix(name, suffix) {
				base = strings.TrimSuffix(name, suffix)
				break
			}
		}
		if _, ok := types[base]; !ok {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE declaration", lineNo, name)
		}
		if h, ok := hists[base]; ok {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le == "" {
					return fmt.Errorf("line %d: histogram bucket %q without le label", lineNo, name)
				}
				if val < h.lastCum {
					return fmt.Errorf("line %d: histogram %q buckets not cumulative (%v after %v)", lineNo, base, val, h.lastCum)
				}
				h.lastCum = val
				h.bucketSeq++
				if le == "+Inf" {
					h.infSeen = true
					h.infCum = val
				} else if h.infSeen {
					return fmt.Errorf("line %d: histogram %q has buckets after le=\"+Inf\"", lineNo, base)
				}
			case strings.HasSuffix(name, "_sum"):
				h.hasSum = true
			case strings.HasSuffix(name, "_count"):
				h.hasCount = true
				h.count = val
			}
		}
	}
	for name, h := range hists {
		if h.bucketSeq == 0 && !h.hasCount && !h.hasSum {
			// Declared but never sampled — fine (registry empty).
			continue
		}
		if !h.infSeen {
			return fmt.Errorf("histogram %q has no le=\"+Inf\" bucket", name)
		}
		if !h.hasSum || !h.hasCount {
			return fmt.Errorf("histogram %q is missing _sum or _count", name)
		}
		if h.count != h.infCum {
			return fmt.Errorf("histogram %q: _count %v != +Inf bucket %v", name, h.count, h.infCum)
		}
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "-Inf", "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}
