// Package httpexport serves a taupsm database's observability over
// HTTP: the metrics registry in Prometheus text exposition format
// (hand-rolled — no client library), the sampled span buffer as JSON,
// the Go runtime profiler, and a liveness probe.
//
// Endpoints:
//
//	/metrics        Prometheus text format (counters, gauges, histograms)
//	/statistics     data & workload statistics snapshot (JSON)
//	/traces         recent sampled traces, newest first (JSON)
//	/traces?id=ID   one trace's span tree (JSON)
//	/processlist    in-flight statements with live progress (JSON)
//	/healthz        liveness probe ("ok", or 503 with a reason)
//	/debug/pprof/   net/http/pprof profiles
//
// The server is read-only and unauthenticated; bind it to loopback or
// an operations network, not the public internet.
package httpexport

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"taupsm/internal/obs"
)

// Server exposes one database's metrics registry and span buffer.
type Server struct {
	Metrics *obs.Metrics
	Ring    *obs.Ring
	// Statistics, when set, backs the /statistics endpoint: it returns
	// the document to serialize (the stratum passes its statistics
	// snapshot). Nil disables the endpoint with 404.
	Statistics func() any
	// Processes, when set, backs the /processlist endpoint: it returns
	// the in-flight process snapshots to serialize (the stratum passes
	// its ProcessList). Nil disables the endpoint with 404.
	Processes func() any
	// Healthz, when set, decides /healthz: nil keeps the plain "ok",
	// a non-nil error becomes HTTP 503 with the error text as reason.
	Healthz func() error
	// BuildInfo, when non-empty, is appended to /metrics as a
	// tau_build_info gauge with one label per map entry (version, go
	// version, GOOS/GOARCH), value 1 — the standard build-info idiom.
	BuildInfo map[string]string
}

// Handler returns the telemetry endpoint mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statistics", s.handleStatistics)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/processlist", s.handleProcessList)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Healthz != nil {
			if err := s.Healthz(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "unhealthy: %s\n", err)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(PrometheusText(s.Metrics)))
	w.Write([]byte(ProcessText()))
	w.Write([]byte(BuildInfoText(s.BuildInfo)))
}

// BuildInfoText renders the build-info gauge: constant value 1, the
// identifying facts as labels, sorted for a deterministic exposition.
// Empty info renders nothing.
func BuildInfoText(info map[string]string) string {
	if len(info) == 0 {
		return ""
	}
	keys := make([]string, 0, len(info))
	for k := range info {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# TYPE tau_build_info gauge\ntau_build_info{")
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(info[k])
		fmt.Fprintf(&b, "%s=\"%s\"", SanitizeMetricName(k), v)
	}
	b.WriteString("} 1\n")
	return b.String()
}

func (s *Server) handleProcessList(w http.ResponseWriter, _ *http.Request) {
	if s.Processes == nil {
		http.Error(w, "process list not available", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Processes())
}

func (s *Server) handleStatistics(w http.ResponseWriter, _ *http.Request) {
	if s.Statistics == nil {
		http.Error(w, "statistics not available", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Statistics())
}

// traceSummaryJSON is one /traces listing entry.
type traceSummaryJSON struct {
	TraceID string `json:"trace_id"`
	Root    string `json:"root,omitempty"`
	Spans   int    `json:"spans"`
}

// spanJSON is one span in a /traces?id= tree.
type spanJSON struct {
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	DurNS    int64             `json:"dur_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []spanJSON        `json:"children,omitempty"`
}

func toSpanJSON(n *obs.TraceNode) spanJSON {
	out := spanJSON{Name: n.Name, Start: n.Start, DurNS: int64(n.Dur)}
	if len(n.Attrs) > 0 {
		out.Attrs = make(map[string]string, len(n.Attrs))
		for _, a := range n.Attrs {
			out.Attrs[a.Key] = a.Val
		}
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, toSpanJSON(c))
	}
	return out
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if idStr := r.URL.Query().Get("id"); idStr != "" {
		id, err := obs.ParseTraceID(idStr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		spans := s.Ring.TraceSpans(id)
		if len(spans) == 0 {
			http.Error(w, "trace not found (never sampled, or evicted)", http.StatusNotFound)
			return
		}
		var roots []spanJSON
		for _, n := range obs.BuildTree(spans) {
			roots = append(roots, toSpanJSON(n))
		}
		enc.Encode(map[string]any{"trace_id": id.String(), "spans": roots})
		return
	}
	sums := s.Ring.Traces()
	out := make([]traceSummaryJSON, 0, len(sums))
	for _, t := range sums {
		out = append(out, traceSummaryJSON{TraceID: t.Trace.String(), Root: t.Root, Spans: t.Spans})
	}
	enc.Encode(out)
}

// ---------- Prometheus text exposition ----------

// PrometheusText renders the registry in Prometheus text exposition
// format (version 0.0.4). Metric names have their dots replaced by
// underscores; histogram buckets (nanosecond durations internally) are
// exposed with `le` bounds in seconds, cumulatively, ending at +Inf,
// plus the standard _sum (seconds) and _count series.
func PrometheusText(m *obs.Metrics) string {
	var b strings.Builder
	snap := m.Snapshot()
	// The registry sorts by raw name; sanitizing can reorder (dots sort
	// below underscores and digits). Sort by the exposed name so the
	// exposition is deterministic in its own alphabet.
	sort.SliceStable(snap, func(i, j int) bool {
		return SanitizeMetricName(snap[i].Name) < SanitizeMetricName(snap[j].Name)
	})
	for _, ms := range snap {
		name := SanitizeMetricName(ms.Name)
		switch ms.Kind {
		case "counter":
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, ms.Value)
		case "gauge":
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, ms.Value)
		case "histogram":
			h := ms.Hist
			fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
			// Bucket counts come from one snapshot, so deriving _count
			// from their sum (rather than the separately-read Count)
			// keeps the exposition internally consistent even when a
			// concurrent Record straddled the snapshot.
			var cum int64
			for i := 0; i < h.NumBuckets()-1; i++ {
				cum += h.Buckets[i]
				fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", name, formatLE(h.Upper(i)), cum)
			}
			cum += h.Buckets[h.NumBuckets()-1] // overflow bucket: +Inf
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", name, formatSeconds(h.SumNS))
			fmt.Fprintf(&b, "%s_count %d\n", name, cum)
		}
	}
	return b.String()
}

// SanitizeMetricName maps a registry name ("stratum.parse_ns") to a
// valid Prometheus metric name ("stratum_parse_ns"): every character
// outside [a-zA-Z0-9_:] becomes an underscore, with a leading
// underscore prepended if the name would start with a digit.
func SanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatLE renders a duration bucket bound in seconds without
// float-noise: exact powers of two of a microsecond always have a
// finite decimal representation.
func formatLE(d time.Duration) string {
	return trimFloat(float64(d) / float64(time.Second))
}

// formatSeconds renders a nanosecond total as seconds.
func formatSeconds(ns int64) string {
	return trimFloat(float64(ns) / float64(time.Second))
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%.9f", f)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}
