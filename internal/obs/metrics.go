package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic last-value metric (e.g. the constant-period count
// of the most recent MAX-sliced statement).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histogram geometry: bucket i holds durations d with
// upper(i-1) < d <= upper(i), where upper(i) = 1µs·2^i. The first
// bucket also absorbs everything at or below 1µs, the last bucket
// everything above ~2.3 hours. 32 buckets cover the full range any
// statement plausibly takes.
const (
	histBuckets  = 32
	histUnitNS   = int64(time.Microsecond)
	histOverflow = histBuckets - 1
)

// Histogram is a lightweight latency histogram over exponential
// (power-of-two) buckets from 1µs up. Recording is two atomic adds and
// an atomic increment; quantiles are approximated by the upper bound
// of the bucket that crosses the requested rank.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	q := (int64(d) + histUnitNS - 1) / histUnitNS // ceil(d / 1µs)
	if q <= 1 {
		return 0
	}
	// bits.Len64(q-1) == ceil(log2(q)) for q >= 2.
	i := bits.Len64(uint64(q - 1))
	if i > histOverflow {
		return histOverflow
	}
	return i
}

// bucketUpper is the inclusive upper bound of bucket i.
func bucketUpper(i int) time.Duration {
	return time.Duration(histUnitNS << uint(i))
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.buckets[bucketIndex(d)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile approximates the q-quantile (0 < q <= 1) as the upper bound
// of the bucket containing that rank; it returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histOverflow)
}

// reset zeroes the histogram.
func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Metrics is a named registry of counters, gauges, and histograms.
// Get-or-create accessors take a lock; the returned handles are
// lock-free, so hot paths should cache them.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (m *Metrics) Histogram(name string) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.histograms[name]
	if !ok {
		h = &Histogram{}
		m.histograms[name] = h
	}
	return h
}

// Value returns the current value of the named counter or gauge, or 0
// if no such metric exists. Convenience for tests and the EXPLAIN
// cross-checks.
func (m *Metrics) Value(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.counters[name]; ok {
		return c.Value()
	}
	if g, ok := m.gauges[name]; ok {
		return g.Value()
	}
	return 0
}

// Reset zeroes every registered metric (the registry keeps its names
// and handles, so cached handles stay valid).
func (m *Metrics) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.counters {
		c.v.Store(0)
	}
	for _, g := range m.gauges {
		g.v.Store(0)
	}
	for _, h := range m.histograms {
		h.reset()
	}
}

// String renders every metric as one "name value" line, sorted by
// name — the expvar-style text exposition. Histograms render their
// count, mean, p50, p95 and total.
func (m *Metrics) String() string {
	m.mu.Lock()
	type line struct{ name, val string }
	var lines []line
	for n, c := range m.counters {
		lines = append(lines, line{n, fmt.Sprintf("%d", c.Value())})
	}
	for n, g := range m.gauges {
		lines = append(lines, line{n, fmt.Sprintf("%d", g.Value())})
	}
	for n, h := range m.histograms {
		lines = append(lines, line{n, fmt.Sprintf("count=%d mean=%s p50=%s p95=%s total=%s",
			h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Sum())})
	}
	m.mu.Unlock()
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l.name)
		b.WriteByte(' ')
		b.WriteString(l.val)
		b.WriteByte('\n')
	}
	return b.String()
}
