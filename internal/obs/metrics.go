package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic last-value metric (e.g. the constant-period count
// of the most recent MAX-sliced statement).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histogram geometry: bucket i holds durations d with
// upper(i-1) < d <= upper(i), where upper(i) = 1µs·2^i. The first
// bucket also absorbs everything at or below 1µs, the last bucket
// everything above ~2.3 hours. 32 buckets cover the full range any
// statement plausibly takes.
const (
	histBuckets  = 32
	histUnitNS   = int64(time.Microsecond)
	histOverflow = histBuckets - 1
)

// Histogram is a lightweight latency histogram over exponential
// (power-of-two) buckets from 1µs up. Recording is two atomic adds and
// an atomic increment; quantiles are approximated by the upper bound
// of the bucket that crosses the requested rank.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	q := (int64(d) + histUnitNS - 1) / histUnitNS // ceil(d / 1µs)
	if q <= 1 {
		return 0
	}
	// bits.Len64(q-1) == ceil(log2(q)) for q >= 2.
	i := bits.Len64(uint64(q - 1))
	if i > histOverflow {
		return histOverflow
	}
	return i
}

// bucketUpper is the inclusive upper bound of bucket i.
func bucketUpper(i int) time.Duration {
	return time.Duration(histUnitNS << uint(i))
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.buckets[bucketIndex(d)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile approximates the q-quantile (0 < q <= 1) by locating the
// bucket containing the requested rank and interpolating linearly
// within it (observations are assumed uniform inside a bucket). The
// old estimator returned the bucket's upper bound, quantizing every
// quantile to a power of the bucket base — a p95 of 33ms read as
// "64ms". It returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i == histOverflow {
				// No finite upper bound to interpolate toward.
				return bucketUpper(histOverflow)
			}
			lower := time.Duration(0)
			if i > 0 {
				lower = bucketUpper(i - 1)
			}
			upper := bucketUpper(i)
			frac := float64(rank-cum) / float64(c) // in (0, 1]
			return lower + time.Duration(frac*float64(upper-lower))
		}
		cum += c
	}
	return bucketUpper(histOverflow)
}

// HistogramSnapshot is a point-in-time copy of a histogram's buckets
// for exposition (Prometheus text, JSON). Buckets are non-cumulative;
// the exporter accumulates as its wire format requires.
type HistogramSnapshot struct {
	Count int64
	SumNS int64
	// Buckets holds one count per bucket; Upper(i) gives the inclusive
	// upper bound of bucket i. The last bucket is the overflow bucket.
	Buckets [histBuckets]int64
}

// Upper returns the inclusive upper bound of bucket i. The overflow
// bucket reports its nominal bound; exporters render it as +Inf.
func (HistogramSnapshot) Upper(i int) time.Duration { return bucketUpper(i) }

// NumBuckets returns the bucket count.
func (HistogramSnapshot) NumBuckets() int { return histBuckets }

// Snapshot copies the histogram's current state. The copy is not an
// atomic cut across buckets — concurrent Records may straddle it —
// but each field is individually consistent, which is all a scrape
// needs.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.SumNS = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// reset zeroes the histogram.
func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Metrics is a named registry of counters, gauges, and histograms.
// Get-or-create accessors take a lock; the returned handles are
// lock-free, so hot paths should cache them.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (m *Metrics) Histogram(name string) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.histograms[name]
	if !ok {
		h = &Histogram{}
		m.histograms[name] = h
	}
	return h
}

// Value returns the current value of the named counter or gauge, or 0
// if no such metric exists. Convenience for tests and the EXPLAIN
// cross-checks.
func (m *Metrics) Value(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.counters[name]; ok {
		return c.Value()
	}
	if g, ok := m.gauges[name]; ok {
		return g.Value()
	}
	return 0
}

// Reset zeroes every registered metric (the registry keeps its names
// and handles, so cached handles stay valid).
func (m *Metrics) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.counters {
		c.v.Store(0)
	}
	for _, g := range m.gauges {
		g.v.Store(0)
	}
	for _, h := range m.histograms {
		h.reset()
	}
}

// MetricSnapshot is one metric's point-in-time state, for exporters.
type MetricSnapshot struct {
	Name string
	Kind string // "counter", "gauge", or "histogram"
	// Value holds the counter or gauge value (unset for histograms).
	Value int64
	// Hist holds the histogram state (nil for counters and gauges).
	Hist *HistogramSnapshot
}

// Snapshot copies every registered metric, sorted by name — the
// exporter-facing view of the registry.
func (m *Metrics) Snapshot() []MetricSnapshot {
	m.mu.Lock()
	out := make([]MetricSnapshot, 0, len(m.counters)+len(m.gauges)+len(m.histograms))
	for n, c := range m.counters {
		out = append(out, MetricSnapshot{Name: n, Kind: "counter", Value: c.Value()})
	}
	for n, g := range m.gauges {
		out = append(out, MetricSnapshot{Name: n, Kind: "gauge", Value: g.Value()})
	}
	for n, h := range m.histograms {
		hs := h.Snapshot()
		out = append(out, MetricSnapshot{Name: n, Kind: "histogram", Hist: &hs})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders every metric as one "name value" line, sorted by
// name — the expvar-style text exposition. Histograms render their
// count, mean, p50, p95 and total.
func (m *Metrics) String() string {
	m.mu.Lock()
	type line struct{ name, val string }
	var lines []line
	for n, c := range m.counters {
		lines = append(lines, line{n, fmt.Sprintf("%d", c.Value())})
	}
	for n, g := range m.gauges {
		lines = append(lines, line{n, fmt.Sprintf("%d", g.Value())})
	}
	for n, h := range m.histograms {
		lines = append(lines, line{n, fmt.Sprintf("count=%d mean=%s p50=%s p95=%s total=%s",
			h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Sum())})
	}
	m.mu.Unlock()
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l.name)
		b.WriteByte(' ')
		b.WriteString(l.val)
		b.WriteByte('\n')
	}
	return b.String()
}
