package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// TraceID identifies one traced unit of work — in the stratum, one
// top-level user statement (or one script, when the caller groups a
// script under a single trace). IDs are process-unique: an atomic
// counter, never reused within a process. The zero value means
// "untraced".
type TraceID uint64

// String renders the ID as 16 hex digits, the form logs, /traces, and
// the REPL print.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// ParseTraceID parses the String form back into an ID.
func ParseTraceID(s string) (TraceID, error) {
	var v uint64
	if _, err := fmt.Sscanf(s, "%x", &v); err != nil {
		return 0, fmt.Errorf("obs: bad trace id %q: %w", s, err)
	}
	return TraceID(v), nil
}

// SpanID identifies one span within the process. Like TraceID it is a
// process-unique atomic counter; zero means "no span" (a root).
type SpanID uint64

var traceCtr, spanCtr atomic.Uint64

// NewTraceID allocates a process-unique trace ID.
func NewTraceID() TraceID { return TraceID(traceCtr.Add(1)) }

// NewSpanID allocates a process-unique span ID.
func NewSpanID() SpanID { return SpanID(spanCtr.Add(1)) }

// SpanContext names the position in a trace that new work should
// attach under: spans emitted "inside" it carry Trace and use Span as
// their Parent. The zero value means untraced; instrumentation sites
// may still emit spans (they form their own roots).
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Traced reports whether the context belongs to a live trace.
func (sc SpanContext) Traced() bool { return sc.Trace != 0 }

// Child returns a context for work nested under a freshly allocated
// span ID, plus that ID (the caller emits the span with it when the
// work completes — span IDs are allocated at start so children can
// reference their parent before the parent span is delivered).
func (sc SpanContext) Child() (SpanContext, SpanID) {
	id := NewSpanID()
	return SpanContext{Trace: sc.Trace, Span: id}, id
}

// ---------- span trees ----------

// TraceNode is one span with its children resolved, for rendering and
// JSON export of a trace.
type TraceNode struct {
	Span
	Children []*TraceNode
}

// BuildTree arranges the spans of one trace into forest form: children
// under their parents, siblings ordered by start time. Spans whose
// parent is absent (or zero) become roots. The input order does not
// matter — concurrent workers may have delivered spans interleaved.
func BuildTree(spans []Span) []*TraceNode {
	nodes := make(map[SpanID]*TraceNode, len(spans))
	ordered := make([]*TraceNode, 0, len(spans))
	for _, s := range spans {
		n := &TraceNode{Span: s}
		if s.ID != 0 {
			nodes[s.ID] = n
		}
		ordered = append(ordered, n)
	}
	var roots []*TraceNode
	for _, n := range ordered {
		if p, ok := nodes[n.Parent]; ok && n.Parent != 0 && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortKids func(ns []*TraceNode)
	sortKids = func(ns []*TraceNode) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].Start.Before(ns[j].Start) })
		for _, n := range ns {
			sortKids(n.Children)
		}
	}
	sortKids(roots)
	return roots
}

// FormatTree renders the spans of one trace as an indented stage tree,
// one line per span: name, duration, attributes. The REPL's \trace
// prints it after each statement.
func FormatTree(spans []Span) string {
	var b strings.Builder
	var walk func(ns []*TraceNode, depth int)
	walk = func(ns []*TraceNode, depth int) {
		for _, n := range ns {
			fmt.Fprintf(&b, "%s%s %s%s\n",
				strings.Repeat("  ", depth), n.Name, fmtDur(n.Dur), formatAttrs(n.Attrs))
			walk(n.Children, depth+1)
		}
	}
	walk(BuildTree(spans), 0)
	return b.String()
}

// fmtDur rounds a duration for display so trees stay aligned-ish
// without drowning in nanosecond noise.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}
