package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestRingConcurrentEviction hammers one ring far past capacity from
// many writers at once. Afterwards the ring must hold exactly cap
// spans, every buffered span must be one that was actually written
// (no torn or zeroed slots), and the total must count every write.
func TestRingConcurrentEviction(t *testing.T) {
	const (
		writers   = 8
		perWriter = 5000
		cap       = 64
	)
	r := NewRing(cap)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Span(Span{
					Name:  fmt.Sprintf("w%d", w),
					Trace: TraceID(w + 1),
					ID:    SpanID(i + 1),
				})
			}
		}(w)
	}
	wg.Wait()

	if got := r.Len(); got != cap {
		t.Fatalf("Len = %d, want the capacity %d", got, cap)
	}
	if got := r.Total(); got != writers*perWriter {
		t.Fatalf("Total = %d, want %d", got, writers*perWriter)
	}
	for i, s := range r.Spans() {
		if s.Trace < 1 || s.Trace > writers || s.ID < 1 || s.ID > perWriter {
			t.Fatalf("span %d is not a recorded write: %+v", i, s)
		}
		if want := fmt.Sprintf("w%d", s.Trace-1); s.Name != want {
			t.Fatalf("span %d torn: name %q with trace %d", i, s.Name, s.Trace)
		}
	}
	// The summaries must agree with the buffer contents.
	total := 0
	for _, sum := range r.Traces() {
		total += sum.Spans
	}
	if total != cap {
		t.Fatalf("trace summaries cover %d spans, want %d", total, cap)
	}
}

// TestRingConcurrentReaders interleaves writers with snapshot readers:
// the race detector guards the locking, the assertions guard that a
// mid-eviction snapshot never exposes more than cap spans.
func TestRingConcurrentReaders(t *testing.T) {
	r := NewRing(32)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Span(Span{Name: "s", Trace: TraceID(w + 1), ID: SpanID(i + 1)})
			}
		}(w)
	}
	var rerr error
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := len(r.Spans()); n > r.Cap() {
				rerr = fmt.Errorf("snapshot of %d spans exceeds cap %d", n, r.Cap())
				return
			}
			r.Traces()
			r.TraceSpans(TraceID(1))
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()
	if rerr != nil {
		t.Fatal(rerr)
	}
}
