package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceAndSpanIDsUnique(t *testing.T) {
	const goroutines, perG = 8, 500
	var mu sync.Mutex
	traces := map[TraceID]bool{}
	spans := map[SpanID]bool{}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			localT := make([]TraceID, 0, perG)
			localS := make([]SpanID, 0, perG)
			for i := 0; i < perG; i++ {
				localT = append(localT, NewTraceID())
				localS = append(localS, NewSpanID())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range localT {
				if id == 0 || traces[id] {
					t.Errorf("trace ID %v zero or duplicated", id)
				}
				traces[id] = true
			}
			for _, id := range localS {
				if id == 0 || spans[id] {
					t.Errorf("span ID %v zero or duplicated", id)
				}
				spans[id] = true
			}
		}()
	}
	wg.Wait()
	if len(traces) != goroutines*perG || len(spans) != goroutines*perG {
		t.Fatalf("got %d traces, %d spans, want %d each", len(traces), len(spans), goroutines*perG)
	}
}

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	s := id.String()
	if len(s) != 16 {
		t.Fatalf("String() = %q, want 16 hex digits", s)
	}
	back, err := ParseTraceID(s)
	if err != nil || back != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v, want %v", s, back, err, id)
	}
	if _, err := ParseTraceID("not-hex"); err == nil {
		t.Fatal("ParseTraceID accepted garbage")
	}
}

func TestSpanContextChild(t *testing.T) {
	var zero SpanContext
	if zero.Traced() {
		t.Fatal("zero SpanContext claims to be traced")
	}
	root := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	child, id := root.Child()
	if child.Trace != root.Trace {
		t.Fatal("child lost the trace")
	}
	if child.Span != id || id == root.Span || id == 0 {
		t.Fatalf("Child() = %+v, %v: want a fresh span ID", child, id)
	}
}

// TestBuildTreeOutOfOrder feeds a two-level tree in delivery order
// (children complete before parents) and checks the forest comes back
// parent-first with siblings in start order.
func TestBuildTreeOutOfOrder(t *testing.T) {
	tr := NewTraceID()
	root := NewSpanID()
	childA, childB, grand := NewSpanID(), NewSpanID(), NewSpanID()
	t0 := time.Now()
	spans := []Span{
		{Name: "grand", Trace: tr, ID: grand, Parent: childB, Start: t0.Add(3 * time.Millisecond)},
		{Name: "childB", Trace: tr, ID: childB, Parent: root, Start: t0.Add(2 * time.Millisecond)},
		{Name: "childA", Trace: tr, ID: childA, Parent: root, Start: t0.Add(1 * time.Millisecond)},
		{Name: "root", Trace: tr, ID: root, Start: t0},
	}
	roots := BuildTree(spans)
	if len(roots) != 1 || roots[0].Name != "root" {
		t.Fatalf("roots = %+v, want single root", roots)
	}
	kids := roots[0].Children
	if len(kids) != 2 || kids[0].Name != "childA" || kids[1].Name != "childB" {
		t.Fatalf("children out of order: %+v", kids)
	}
	if len(kids[1].Children) != 1 || kids[1].Children[0].Name != "grand" {
		t.Fatalf("grandchild misplaced: %+v", kids[1].Children)
	}

	// A span whose parent never arrived becomes its own root.
	orphan := Span{Name: "orphan", Trace: tr, ID: NewSpanID(), Parent: NewSpanID()}
	roots = BuildTree(append(spans, orphan))
	if len(roots) != 2 {
		t.Fatalf("expected orphan to surface as a second root, got %d roots", len(roots))
	}
}

func TestFormatTreeIndentation(t *testing.T) {
	tr := NewTraceID()
	root, child := NewSpanID(), NewSpanID()
	out := FormatTree([]Span{
		{Name: "stratum.statement", Trace: tr, ID: root, Dur: 2 * time.Millisecond},
		{Name: "stratum.execute", Trace: tr, ID: child, Parent: root, Dur: time.Millisecond,
			Attrs: []Attr{AInt("rows", 3)}},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("FormatTree output:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "stratum.statement ") {
		t.Errorf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  stratum.execute ") || !strings.Contains(lines[1], "rows=3") {
		t.Errorf("child line = %q", lines[1])
	}
}

func TestRingEvictionAndBounds(t *testing.T) {
	r := NewRing(4)
	if r.Cap() != 4 {
		t.Fatalf("Cap() = %d", r.Cap())
	}
	tr := NewTraceID()
	for i := 0; i < 6; i++ {
		r.Span(Span{Name: "s", Trace: tr, ID: NewSpanID(), Dur: time.Duration(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len() = %d, want capacity 4", r.Len())
	}
	if r.Total() != 6 {
		t.Fatalf("Total() = %d, want 6", r.Total())
	}
	got := r.Spans()
	if len(got) != 4 || got[0].Dur != 2 || got[3].Dur != 5 {
		t.Fatalf("expected the two oldest spans evicted, got %+v", got)
	}
	if n := len(r.TraceSpans(tr)); n != 4 {
		t.Fatalf("TraceSpans kept %d spans", n)
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || len(r.TraceSpans(tr)) != 0 {
		t.Fatal("Reset did not clear the ring")
	}
}

func TestRingTracesNewestFirst(t *testing.T) {
	r := NewRing(16)
	old, new := NewTraceID(), NewTraceID()
	oldRoot, newRoot := NewSpanID(), NewSpanID()
	r.Span(Span{Name: "old.stmt", Trace: old, ID: oldRoot})
	r.Span(Span{Name: "old.child", Trace: old, ID: NewSpanID(), Parent: oldRoot})
	r.Span(Span{Name: "new.stmt", Trace: new, ID: newRoot})
	r.Span(Span{Name: "untraced", ID: NewSpanID()}) // must not be listed

	sums := r.Traces()
	if len(sums) != 2 {
		t.Fatalf("Traces() = %+v, want 2 traces", sums)
	}
	if sums[0].Trace != new || sums[0].Root != "new.stmt" || sums[0].Spans != 1 {
		t.Fatalf("newest trace wrong: %+v", sums[0])
	}
	if sums[1].Trace != old || sums[1].Root != "old.stmt" || sums[1].Spans != 2 {
		t.Fatalf("older trace wrong: %+v", sums[1])
	}
}

// TestQuantileInterpolation pins the within-bucket linear interpolation:
// the estimator must land between bucket bounds in proportion to the
// requested rank, not snap to the bucket's upper bound as the old
// estimator did.
func TestQuantileInterpolation(t *testing.T) {
	us := time.Microsecond
	cases := []struct {
		name string
		fill func(h *Histogram)
		q    float64
		want time.Duration
	}{
		// 100 observations in bucket (2µs, 4µs]: p50 sits at rank 50 of
		// 100, half-way through the bucket.
		{"mid-bucket", func(h *Histogram) {
			for i := 0; i < 100; i++ {
				h.Record(3 * us)
			}
		}, 0.50, 3 * us},
		// Same bucket, p100: the full bucket width.
		{"bucket-top", func(h *Histogram) {
			for i := 0; i < 100; i++ {
				h.Record(3 * us)
			}
		}, 1.00, 4 * us},
		// 50 in bucket 0 (<=1µs), 50 in (4µs, 8µs]: p25 is half-way
		// through the first bucket, p75 half-way through the second.
		{"two-buckets-low", func(h *Histogram) {
			for i := 0; i < 50; i++ {
				h.Record(us)
				h.Record(8 * us)
			}
		}, 0.25, 500 * time.Nanosecond},
		{"two-buckets-high", func(h *Histogram) {
			for i := 0; i < 50; i++ {
				h.Record(us)
				h.Record(8 * us)
			}
		}, 0.75, 6 * us},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := &Histogram{}
			tc.fill(h)
			if got := h.Quantile(tc.q); got != tc.want {
				t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}

	// Overflow bucket: no finite upper bound, so the estimator returns
	// the histogram's nominal ceiling rather than interpolating.
	h := &Histogram{}
	h.Record(100 * time.Hour)
	if got := h.Quantile(0.5); got != bucketUpper(histOverflow) {
		t.Errorf("overflow Quantile = %v, want %v", got, bucketUpper(histOverflow))
	}
}
