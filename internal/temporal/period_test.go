package temporal

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"taupsm/internal/types"
)

func p(b, e int64) Period { return Period{Begin: b, End: e} }

func TestPeriodBasics(t *testing.T) {
	if !p(1, 5).Valid() || p(5, 5).Valid() || p(6, 5).Valid() {
		t.Fatal("validity")
	}
	if !p(1, 5).Contains(1) || p(1, 5).Contains(5) || p(1, 5).Contains(0) {
		t.Fatal("half-open containment")
	}
	if !p(1, 5).Overlaps(p(4, 9)) || p(1, 5).Overlaps(p(5, 9)) {
		t.Fatal("overlap is exclusive of the end point")
	}
	if got := p(1, 5).Intersect(p(3, 9)); got != p(3, 5) {
		t.Fatalf("intersect = %v", got)
	}
	if p(1, 5).Intersect(p(7, 9)).Valid() {
		t.Fatal("disjoint intersection must be invalid")
	}
	if !p(1, 5).Meets(p(5, 9)) || p(1, 5).Meets(p(6, 9)) {
		t.Fatal("meets")
	}
	if p(1, 5).Duration() != 4 || p(5, 1).Duration() != 0 {
		t.Fatal("duration")
	}
	if p(0, 1).String() != "[1970-01-01, 1970-01-02)" {
		t.Fatalf("string: %s", p(0, 1).String())
	}
}

func TestInstanceHelpers(t *testing.T) {
	if FirstInstance(3, 7) != 3 || FirstInstance(7, 3) != 3 {
		t.Fatal("FirstInstance")
	}
	if LastInstance(3, 7) != 7 || LastInstance(7, 3) != 7 {
		t.Fatal("LastInstance")
	}
}

func TestOverlapSymmetricQuick(t *testing.T) {
	f := func(a, b, c, d int16) bool {
		p1, p2 := p(int64(a), int64(b)), p(int64(c), int64(d))
		return p1.Overlaps(p2) == p2.Overlaps(p1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapMatchesIntersectQuick(t *testing.T) {
	f := func(a, b, c, d int16) bool {
		p1, p2 := p(int64(a), int64(b)), p(int64(c), int64(d))
		if !p1.Valid() || !p2.Valid() {
			return true
		}
		return p1.Overlaps(p2) == p1.Intersect(p2).Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConstantPeriods(t *testing.T) {
	ctx := p(0, 100)
	// no interior points: one period covering the context
	got := ConstantPeriods(nil, ctx)
	if len(got) != 1 || got[0] != ctx {
		t.Fatalf("empty points: %v", got)
	}
	// interior points split; points outside are ignored; duplicates collapse
	got = ConstantPeriods([]int64{10, 10, 50, -5, 200, 0, 100}, ctx)
	want := []Period{p(0, 10), p(10, 50), p(50, 100)}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// invalid context
	if ConstantPeriods([]int64{1}, p(5, 5)) != nil {
		t.Fatal("empty context must yield no periods")
	}
}

// Property: constant periods partition the context exactly — adjacent,
// non-overlapping, covering [begin, end).
func TestConstantPeriodsPartitionQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ctx := p(0, 365)
		points := make([]int64, int(n)%40)
		for i := range points {
			points[i] = rng.Int63n(500) - 50
		}
		ps := ConstantPeriods(points, ctx)
		if len(ps) == 0 {
			return false
		}
		if ps[0].Begin != ctx.Begin || ps[len(ps)-1].End != ctx.End {
			return false
		}
		for i := 0; i < len(ps); i++ {
			if !ps[i].Valid() {
				return false
			}
			if i > 0 && ps[i-1].End != ps[i].Begin {
				return false
			}
		}
		// every in-context point must be a boundary
		for _, pt := range points {
			if pt <= ctx.Begin || pt >= ctx.End {
				continue
			}
			found := false
			for _, per := range ps {
				if per.Begin == pt {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesce(t *testing.T) {
	rows := []TimestampedRow{
		{Key: "a", Period: p(0, 10)},
		{Key: "a", Period: p(10, 20)}, // adjacent: merge
		{Key: "a", Period: p(15, 25)}, // overlapping: merge
		{Key: "a", Period: p(30, 40)}, // gap: separate
		{Key: "b", Period: p(0, 50)},
		{Key: "b", Period: p(5, 7)}, // contained: absorbed
		{Key: "c", Period: p(9, 9)}, // invalid: dropped
	}
	got := Coalesce(rows)
	want := []TimestampedRow{
		{Key: "a", Period: p(0, 25)},
		{Key: "a", Period: p(30, 40)},
		{Key: "b", Period: p(0, 50)},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: coalescing preserves timeslices.
func TestCoalescePreservesTimeslicesQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var rows []TimestampedRow
		keys := []string{"x", "y", "z"}
		for i := 0; i < int(n)%30; i++ {
			b := rng.Int63n(100)
			rows = append(rows, TimestampedRow{
				Key:    keys[rng.Intn(len(keys))],
				Period: p(b, b+rng.Int63n(30)+1),
			})
		}
		co := Coalesce(rows)
		for d := int64(0); d < 130; d += 7 {
			a := Timeslice(rows, d)
			b := Timeslice(co, d)
			a = dedup(a)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func dedup(ss []string) []string {
	sort.Strings(ss)
	out := ss[:0:0]
	for i, s := range ss {
		if i == 0 || ss[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}

func TestCoalesceIsMaximal(t *testing.T) {
	got := Coalesce([]TimestampedRow{
		{Key: "a", Period: p(0, 10)},
		{Key: "a", Period: p(10, 20)},
	})
	if len(got) != 1 || got[0].Period != p(0, 20) {
		t.Fatalf("adjacent periods must merge to a maximal period: %v", got)
	}
	for i := 0; i+1 < len(got); i++ {
		if got[i].Key == got[i+1].Key && got[i].Period.End >= got[i+1].Period.Begin {
			t.Fatal("output not maximal")
		}
	}
}

func TestAllPeriod(t *testing.T) {
	if !All.Contains(0) || !All.Contains(types.Forever-1) {
		t.Fatal("All must span the timeline")
	}
}
