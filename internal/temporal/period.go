// Package temporal implements the SQL/Temporal period algebra the
// stratum relies on: half-open valid-time periods, overlap and
// intersection, coalescing, timeslicing, and the constant-period
// computation at the heart of maximally-fragmented slicing (paper §V-A).
package temporal

import (
	"fmt"
	"sort"

	"taupsm/internal/types"
)

// Period is a half-open valid-time period [Begin, End) in epoch days.
// The half-open convention matches the paper's predicates
// (begin_time <= p AND p < end_time).
type Period struct {
	Begin int64
	End   int64
}

// All is the period covering all of time.
var All = Period{Begin: -1 << 40, End: types.Forever}

// Valid reports whether the period is non-empty.
func (p Period) Valid() bool { return p.Begin < p.End }

// Contains reports whether instant t lies within the period.
func (p Period) Contains(t int64) bool { return p.Begin <= t && t < p.End }

// Overlaps reports whether two periods share at least one instant.
func (p Period) Overlaps(q Period) bool { return p.Begin < q.End && q.Begin < p.End }

// Intersect returns the common sub-period of p and q; the result may be
// invalid (empty) when they do not overlap.
func (p Period) Intersect(q Period) Period {
	r := Period{Begin: maxInt(p.Begin, q.Begin), End: minInt(p.End, q.End)}
	return r
}

// Meets reports whether p ends exactly where q begins.
func (p Period) Meets(q Period) bool { return p.End == q.Begin }

// Duration returns the number of granules (days) in the period.
func (p Period) Duration() int64 {
	if !p.Valid() {
		return 0
	}
	return p.End - p.Begin
}

// String renders the period as [YYYY-MM-DD, YYYY-MM-DD).
func (p Period) String() string {
	return fmt.Sprintf("[%s, %s)", types.FormatDate(p.Begin), types.FormatDate(p.End))
}

// FIRST_INSTANCE and LAST_INSTANCE are the stored helper functions the
// paper's Figure 4 relies on ("return the earlier or later,
// respectively, of the two argument times").

// FirstInstance returns the earlier of two instants.
func FirstInstance(a, b int64) int64 { return minInt(a, b) }

// LastInstance returns the later of two instants.
func LastInstance(a, b int64) int64 { return maxInt(a, b) }

func minInt(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ConstantPeriods computes the constant periods of a set of timestamped
// rows (paper §V-A): collect every begin and end time, restrict to the
// temporal context, and return the adjacent pairs of the sorted distinct
// time points. Within each returned period, no input row starts or
// stops being valid, so any sequenced evaluation is constant there.
//
// points is the multiset of begin/end instants of every row of every
// reachable temporal table; context delimits the query's temporal
// context (min_time/max_time in Figure 8).
func ConstantPeriods(points []int64, context Period) []Period {
	if !context.Valid() {
		return nil
	}
	// Sort + dedup, clamping to the context. The context bounds
	// themselves are modification points (the slice must not leak
	// outside the requested period).
	ps := make([]int64, 0, len(points)+2)
	for _, t := range points {
		if t > context.Begin && t < context.End {
			ps = append(ps, t)
		}
	}
	ps = append(ps, context.Begin, context.End)
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	out := make([]Period, 0, len(ps))
	prev := int64(0)
	first := true
	for _, t := range ps {
		if !first && t == prev {
			continue
		}
		if !first {
			out = append(out, Period{Begin: prev, End: t})
		}
		prev = t
		first = false
	}
	return out
}

// TimestampedRow pairs an arbitrary row key with its validity period;
// it is the currency of Coalesce and Timeslice.
type TimestampedRow struct {
	Key    string
	Period Period
}

// Coalesce merges value-equivalent rows with adjacent or overlapping
// periods into maximal periods, the canonical form used when comparing
// sequenced results for equivalence (paper §VII-B commutativity tests).
// The input order is not preserved; output is sorted by (Key, Begin).
func Coalesce(rows []TimestampedRow) []TimestampedRow {
	sorted := make([]TimestampedRow, len(rows))
	copy(sorted, rows)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Key != sorted[j].Key {
			return sorted[i].Key < sorted[j].Key
		}
		if sorted[i].Period.Begin != sorted[j].Period.Begin {
			return sorted[i].Period.Begin < sorted[j].Period.Begin
		}
		return sorted[i].Period.End < sorted[j].Period.End
	})
	out := make([]TimestampedRow, 0, len(sorted))
	for _, r := range sorted {
		if !r.Period.Valid() {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Key == r.Key && out[n-1].Period.End >= r.Period.Begin {
			if r.Period.End > out[n-1].Period.End {
				out[n-1].Period.End = r.Period.End
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// Timeslice returns the keys of the rows valid at instant t — the τ
// operator of SQL/Temporal, used to define current semantics and to
// check commutativity.
func Timeslice(rows []TimestampedRow, t int64) []string {
	var out []string
	for _, r := range rows {
		if r.Period.Contains(t) {
			out = append(out, r.Key)
		}
	}
	sort.Strings(out)
	return out
}
