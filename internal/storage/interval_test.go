package storage

import (
	"math/rand"
	"sort"
	"testing"

	"taupsm/internal/sqlast"
	"taupsm/internal/types"
)

func newTemporalTable(t *testing.T) *Table {
	t.Helper()
	tab := NewTable("iv", NewSchema([]Column{
		{Name: "id", Type: sqlast.TypeName{Base: "INT"}},
		{Name: "begin_time", Type: sqlast.TypeName{Base: "DATE"}},
		{Name: "end_time", Type: sqlast.TypeName{Base: "DATE"}},
	}))
	tab.ValidTime = true
	return tab
}

// TestOverlappingMatchesBruteForce cross-checks the interval tree
// against a direct scan over random period data, including stab
// queries (lo == hi) and ranges.
func TestOverlappingMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tab := newTemporalTable(t)
	type span struct{ b, e int64 }
	var spans []span
	for i := 0; i < 500; i++ {
		b := int64(rng.Intn(1000))
		e := b + 1 + int64(rng.Intn(200))
		spans = append(spans, span{b, e})
		if err := tab.Insert([]types.Value{
			types.NewInt(int64(i)), types.NewDate(b), types.NewDate(e),
		}); err != nil {
			t.Fatal(err)
		}
	}
	check := func(lo, hi int64) {
		t.Helper()
		var want []int
		for i, s := range spans {
			if s.b <= hi && s.e > lo {
				want = append(want, i)
			}
		}
		got, ok := tab.Overlapping(lo, hi)
		if !ok {
			t.Fatalf("Overlapping(%d,%d): not indexable", lo, hi)
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("Overlapping(%d,%d): ordinals not sorted: %v", lo, hi, got)
		}
		if len(got) != len(want) {
			t.Fatalf("Overlapping(%d,%d): got %d ordinals, want %d", lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Overlapping(%d,%d): ordinal %d: got %d want %d", lo, hi, i, got[i], want[i])
			}
		}
		if n, ok := tab.CountOverlapping(lo, hi); !ok || n != len(want) {
			t.Fatalf("CountOverlapping(%d,%d) = %d, want %d", lo, hi, n, len(want))
		}
	}
	for i := 0; i < 300; i++ {
		lo := int64(rng.Intn(1300)) - 50
		check(lo, lo) // stab
		check(lo, lo+int64(rng.Intn(150)))
	}
	check(-100, -50) // entirely before all data
	check(1400, 1500)
}

// TestOverlappingInvalidation proves the index follows table mutations.
func TestOverlappingInvalidation(t *testing.T) {
	tab := newTemporalTable(t)
	ins := func(id, b, e int64) {
		t.Helper()
		if err := tab.Insert([]types.Value{types.NewInt(id), types.NewDate(b), types.NewDate(e)}); err != nil {
			t.Fatal(err)
		}
	}
	ins(1, 10, 20)
	if got, _ := tab.Overlapping(15, 15); len(got) != 1 {
		t.Fatalf("stab 15: got %v", got)
	}
	ins(2, 12, 30)
	if got, _ := tab.Overlapping(15, 15); len(got) != 2 {
		t.Fatalf("after insert, stab 15: got %v", got)
	}
	tab.Rows[0][2] = types.NewDate(14) // shrink row 0's period in place
	tab.Bump()
	if got, _ := tab.Overlapping(15, 15); len(got) != 1 || got[0] != 1 {
		t.Fatalf("after bump, stab 15: got %v", got)
	}
}

// TestOverlappingOddEndpoints proves rows with NULL endpoints are
// always returned as candidates for the caller's residual check.
func TestOverlappingOddEndpoints(t *testing.T) {
	tab := newTemporalTable(t)
	if err := tab.Insert([]types.Value{types.NewInt(1), types.NewDate(10), types.NewDate(20)}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert([]types.Value{types.NewInt(2), types.Value{}, types.NewDate(20)}); err != nil {
		t.Fatal(err)
	}
	got, ok := tab.Overlapping(100, 100)
	if !ok || len(got) != 1 || got[0] != 1 {
		t.Fatalf("stab 100: got %v ok=%v, want just the NULL-endpoint row", got, ok)
	}
}

// TestCatalogVersion proves the schema version bumps only on real
// mutations: no-op drops and identical routine re-registrations keep
// version-keyed caches warm.
func TestCatalogVersion(t *testing.T) {
	c := NewCatalog()
	v0 := c.Version()
	if c.DropTable("missing") {
		t.Fatal("DropTable of missing table reported true")
	}
	if c.Version() != v0 {
		t.Fatal("no-op DropTable bumped the version")
	}
	tab := NewTable("t", NewSchema([]Column{{Name: "a", Type: sqlast.TypeName{Base: "INT"}}}))
	c.PutTable(tab)
	if c.Version() == v0 {
		t.Fatal("PutTable did not bump the version")
	}
}
