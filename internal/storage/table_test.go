package storage

import (
	"testing"

	"taupsm/internal/sqlast"
	"taupsm/internal/types"
)

func testSchema() *Schema {
	return NewSchema([]Column{
		{Name: "id", Type: sqlast.TypeName{Base: "INTEGER"}},
		{Name: "Name", Type: sqlast.TypeName{Base: "VARCHAR", Length: 20}},
	})
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema()
	if s.Index("id") != 0 || s.Index("ID") != 0 {
		t.Fatal("case-insensitive column lookup")
	}
	if s.Index("name") != 1 || s.Index("NAME") != 1 {
		t.Fatal("mixed-case declared name")
	}
	if s.Index("missing") != -1 {
		t.Fatal("missing column must be -1")
	}
	names := s.Names()
	if len(names) != 2 || names[1] != "Name" {
		t.Fatalf("names: %v", names)
	}
}

func TestTableInsertAndLookup(t *testing.T) {
	tab := NewTable("t", testSchema())
	for i := 0; i < 10; i++ {
		if err := tab.Insert([]types.Value{types.NewInt(int64(i % 3)), types.NewString("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Insert([]types.Value{types.NewInt(1)}); err == nil {
		t.Fatal("expected arity error")
	}
	hits := tab.Lookup(0, types.NewInt(1))
	if len(hits) != 3 {
		t.Fatalf("expected 3 hits for id=1, got %d", len(hits))
	}
	for _, i := range hits {
		if tab.Rows[i][0].Int() != 1 {
			t.Fatal("lookup returned wrong row")
		}
	}
	if len(tab.Lookup(0, types.NewInt(99))) != 0 {
		t.Fatal("lookup miss must be empty")
	}
}

func TestIndexInvalidation(t *testing.T) {
	tab := NewTable("t", testSchema())
	_ = tab.Insert([]types.Value{types.NewInt(1), types.NewString("a")})
	if n := len(tab.Lookup(0, types.NewInt(1))); n != 1 {
		t.Fatalf("initial lookup: %d", n)
	}
	// in-place modification + Bump invalidates
	tab.Rows[0][0] = types.NewInt(2)
	tab.Bump()
	if n := len(tab.Lookup(0, types.NewInt(1))); n != 0 {
		t.Fatalf("stale index after Bump: %d hits", n)
	}
	if n := len(tab.Lookup(0, types.NewInt(2))); n != 1 {
		t.Fatalf("rebuilt index: %d hits", n)
	}
	// insert also invalidates
	_ = tab.Insert([]types.Value{types.NewInt(2), types.NewString("b")})
	if n := len(tab.Lookup(0, types.NewInt(2))); n != 2 {
		t.Fatalf("index after insert: %d hits", n)
	}
}

func TestTemporalColumnOrdinals(t *testing.T) {
	tab := NewTable("tt", NewSchema([]Column{
		{Name: "a", Type: sqlast.TypeName{Base: "INTEGER"}},
		{Name: "begin_time", Type: sqlast.TypeName{Base: "DATE"}},
		{Name: "end_time", Type: sqlast.TypeName{Base: "DATE"}},
	}))
	tab.ValidTime = true
	if tab.BeginCol() != 1 || tab.EndCol() != 2 {
		t.Fatalf("timestamp ordinals: %d %d", tab.BeginCol(), tab.EndCol())
	}
}

func TestCatalogCRUD(t *testing.T) {
	c := NewCatalog()
	tab := NewTable("Item", testSchema())
	c.PutTable(tab)
	if c.Table("item") != tab || c.Table("ITEM") != tab {
		t.Fatal("case-insensitive table lookup")
	}
	if !c.DropTable("iTem") || c.Table("item") != nil {
		t.Fatal("drop table")
	}
	if c.DropTable("item") {
		t.Fatal("double drop must report false")
	}

	v := &View{Name: "v1", Cols: []string{"a"}}
	c.PutView(v)
	if c.View("V1") != v {
		t.Fatal("view lookup")
	}
	if !c.DropView("v1") || c.DropView("v1") {
		t.Fatal("view drop")
	}

	r := &Routine{Kind: KindFunction, Name: "F", Fn: &sqlast.CreateFunctionStmt{Name: "F"}}
	c.PutRoutine(r)
	if c.Routine("f") != r {
		t.Fatal("routine lookup")
	}
	if len(c.RoutineNames()) != 1 {
		t.Fatal("routine names")
	}
	if !c.DropRoutine("F") || c.DropRoutine("F") {
		t.Fatal("routine drop")
	}
}

func TestRoutineAccessors(t *testing.T) {
	fn := &sqlast.CreateFunctionStmt{
		Name:   "f",
		Params: []sqlast.ParamDef{{Name: "x", Type: sqlast.TypeName{Base: "INTEGER"}}},
		Body:   &sqlast.ReturnStmt{},
	}
	r := &Routine{Kind: KindFunction, Name: "f", Fn: fn}
	if len(r.Params()) != 1 || r.Body() != fn.Body {
		t.Fatal("function accessors")
	}
	pr := &sqlast.CreateProcedureStmt{
		Name:   "p",
		Params: []sqlast.ParamDef{{Name: "a"}, {Name: "b"}},
		Body:   &sqlast.CompoundStmt{},
	}
	rp := &Routine{Kind: KindProcedure, Name: "p", Proc: pr}
	if len(rp.Params()) != 2 || rp.Body() != pr.Body {
		t.Fatal("procedure accessors")
	}
}

func TestPersistentVersion(t *testing.T) {
	c := NewCatalog()
	base := c.PersistentVersion()

	// Durable table DDL bumps both counters.
	c.PutTable(NewTable("d", testSchema()))
	if got := c.PersistentVersion(); got != base+1 {
		t.Fatalf("durable create: persist %d, want %d", got, base+1)
	}

	// Temp-table churn bumps the full version but not the persistent one.
	v := c.Version()
	tmp := NewTable("scratch", testSchema())
	tmp.Temporary = true
	c.PutTable(tmp)
	c.DropTable("scratch")
	if c.Version() == v {
		t.Fatal("full version must see temp churn")
	}
	if got := c.PersistentVersion(); got != base+1 {
		t.Fatalf("temp churn moved persist to %d, want %d", got, base+1)
	}

	// A temp table replacing a durable one changes what the name means.
	shadow := NewTable("d", testSchema())
	shadow.Temporary = true
	c.PutTable(shadow)
	if got := c.PersistentVersion(); got != base+2 {
		t.Fatalf("temp-over-durable: persist %d, want %d", got, base+2)
	}

	// Views and routines always count as durable schema.
	c.PutView(&View{Name: "v", Cols: []string{"a"}})
	c.DropView("v")
	c.PutRoutine(&Routine{Kind: KindFunction, Name: "f", Fn: &sqlast.CreateFunctionStmt{Name: "f"}})
	c.DropRoutine("f")
	if got := c.PersistentVersion(); got != base+6 {
		t.Fatalf("view/routine DDL: persist %d, want %d", got, base+6)
	}
}

func TestTableNames(t *testing.T) {
	c := NewCatalog()
	c.PutTable(NewTable("a", testSchema()))
	c.PutTable(NewTable("b", testSchema()))
	if len(c.TableNames()) != 2 {
		t.Fatal("table names")
	}
}
