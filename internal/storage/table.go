// Package storage provides the in-memory relational storage taupsm
// executes against: schemas, tables (including temporal tables carrying
// begin_time/end_time columns), views, stored routines, and lazily
// built hash indexes that the engine uses for equality lookups.
package storage

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"taupsm/internal/sqlast"
	"taupsm/internal/types"
)

// Column is one column of a stored table.
type Column struct {
	Name string
	Type sqlast.TypeName
}

// Schema is an ordered list of columns with name lookup.
type Schema struct {
	Cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from columns; names are matched
// case-insensitively.
func NewSchema(cols []Column) *Schema {
	s := &Schema{Cols: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		s.byName[strings.ToLower(c.Name)] = i
	}
	return s
}

// Index returns the ordinal of the named column, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// Table is an in-memory table. For temporal tables (ValidTime true) the
// final two columns are begin_time and end_time (DATE), maintained by
// DDL when the table is created or altered with valid-time support.
//
// Concurrency contract: any number of goroutines may read (including
// Lookup and Overlapping, which lazily build indexes under the table's
// internal lock), but writers (Insert, Bump, direct Rows mutation) need
// exclusive access — the same reader/writer discipline as Catalog.
type Table struct {
	Name      string
	Schema    *Schema
	Rows      [][]types.Value
	ValidTime bool
	// TransactionTime marks an audit table: the same physical
	// begin_time/end_time layout as a valid-time table, but the
	// periods are system-maintained (set from CURRENT_DATE by the
	// current-semantics transform) and may not be written manually.
	TransactionTime bool
	Temporary       bool

	id      int64
	version int64

	mu      sync.RWMutex // guards lazily built indexes
	indexes map[int]*hashIndex
	ival    *intervalIndex
}

type hashIndex struct {
	version int64
	m       map[string][]int
}

// tableSeq issues unique table identities, so caches keyed by table
// version can tell a mutated table apart from a dropped-and-recreated
// one (whose version restarts at zero).
var tableSeq atomic.Int64

// NewTable creates an empty table.
func NewTable(name string, schema *Schema) *Table {
	return &Table{Name: name, Schema: schema, id: tableSeq.Add(1),
		indexes: make(map[int]*hashIndex)}
}

// ID returns the table's process-unique identity.
func (t *Table) ID() int64 { return t.id }

// Version returns the table's mutation counter; it changes on every
// Insert or Bump, so (ID, Version) pairs identify a table state.
func (t *Table) Version() int64 { return t.version }

// Insert appends a row; the row length must match the schema.
func (t *Table) Insert(row []types.Value) error {
	if len(row) != len(t.Schema.Cols) {
		return fmt.Errorf("table %s: row has %d values, schema has %d columns",
			t.Name, len(row), len(t.Schema.Cols))
	}
	t.Rows = append(t.Rows, row)
	t.version++
	return nil
}

// Bump invalidates indexes after in-place modification of Rows.
func (t *Table) Bump() { t.version++ }

// Lookup returns the ordinals of rows whose column col equals v,
// building (or rebuilding) a hash index on demand. The returned slice
// must not be modified. Safe for concurrent readers.
func (t *Table) Lookup(col int, v types.Value) []int {
	t.mu.RLock()
	idx := t.indexes[col]
	if idx != nil && idx.version == t.version {
		t.mu.RUnlock()
		return idx.m[v.HashKey()]
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	idx = t.indexes[col]
	if idx == nil || idx.version != t.version {
		idx = &hashIndex{version: t.version, m: make(map[string][]int, len(t.Rows))}
		for i, r := range t.Rows {
			k := r[col].HashKey()
			idx.m[k] = append(idx.m[k], i)
		}
		t.indexes[col] = idx
	}
	return idx.m[v.HashKey()]
}

// Bitemporal reports whether the table carries both periods: the
// valid-time begin_time/end_time pair followed by the transaction-time
// tt_begin_time/tt_end_time pair as the final four columns.
func (t *Table) Bitemporal() bool { return t.ValidTime && t.TransactionTime }

// BeginCol returns the ordinal of the primary period's begin column:
// begin_time, which is valid time on valid-time and bitemporal tables
// and transaction time on transaction-time-only tables (both layouts
// share the column names).
func (t *Table) BeginCol() int {
	if t.Bitemporal() {
		return len(t.Schema.Cols) - 4
	}
	return len(t.Schema.Cols) - 2
}

// EndCol returns the ordinal of the primary period's end column.
func (t *Table) EndCol() int {
	if t.Bitemporal() {
		return len(t.Schema.Cols) - 3
	}
	return len(t.Schema.Cols) - 1
}

// TTBeginCol returns the ordinal of tt_begin_time on a bitemporal
// table (on transaction-time-only tables the pair is begin_time /
// end_time, reported by BeginCol/EndCol).
func (t *Table) TTBeginCol() int { return len(t.Schema.Cols) - 2 }

// TTEndCol returns the ordinal of tt_end_time on a bitemporal table.
func (t *Table) TTEndCol() int { return len(t.Schema.Cols) - 1 }

// View is a named stored query, optionally with a temporal modifier on
// its body (used by generated MAX-slicing code for the cp view).
type View struct {
	Name  string
	Cols  []string
	Query sqlast.QueryExpr
	Mod   sqlast.TemporalModifier
}

// RoutineKind distinguishes functions from procedures.
type RoutineKind uint8

// Routine kinds.
const (
	KindFunction RoutineKind = iota
	KindProcedure
)

// Routine is a stored routine definition kept as AST.
type Routine struct {
	Kind RoutineKind
	Name string
	Fn   *sqlast.CreateFunctionStmt
	Proc *sqlast.CreateProcedureStmt

	sql string // lazily rendered definition, for identity comparison
}

// renderedSQL returns (caching) the routine's rendered definition.
func (r *Routine) renderedSQL() string {
	if r.sql == "" {
		if r.Kind == KindFunction {
			r.sql = r.Fn.SQL()
		} else {
			r.sql = r.Proc.SQL()
		}
	}
	return r.sql
}

// Params returns the routine's parameter list.
func (r *Routine) Params() []sqlast.ParamDef {
	if r.Kind == KindFunction {
		return r.Fn.Params
	}
	return r.Proc.Params
}

// Body returns the routine's body statement.
func (r *Routine) Body() sqlast.Stmt {
	if r.Kind == KindFunction {
		return r.Fn.Body
	}
	return r.Proc.Body
}

// Catalog holds all named schema objects. It is safe for concurrent
// readers; writers (DDL) take the exclusive lock.
type Catalog struct {
	mu       sync.RWMutex
	version  atomic.Int64
	persist  atomic.Int64
	tables   map[string]*Table
	views    map[string]*View
	routines map[string]*Routine
}

// Version returns the catalog's schema version: a counter bumped on
// every mutation that actually changes the set of schema objects.
// No-op drops (DROP ... IF EXISTS of a missing object) and routine
// re-registrations with an identical definition do not bump it, so
// plan and translation caches keyed by this version stay warm across
// repeated executions of generated setup/teardown scripts.
func (c *Catalog) Version() int64 { return c.version.Load() }

// PersistentVersion is Version restricted to the durable schema: DDL
// touching only temporary tables leaves it unchanged. Generated plans
// create and drop statement-scoped scratch tables on every execution;
// caches keyed by the full version would thrash on that churn, so the
// plan and translation caches key on this counter instead and validate
// their temporary-table resolutions individually.
func (c *Catalog) PersistentVersion() int64 { return c.persist.Load() }

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables:   make(map[string]*Table),
		views:    make(map[string]*View),
		routines: make(map[string]*Routine),
	}
}

func key(name string) string { return strings.ToLower(name) }

// Table returns the named table or nil.
func (c *Catalog) Table(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[key(name)]
}

// PutTable registers a table, replacing any previous definition.
func (c *Catalog) PutTable(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.tables[key(t.Name)]
	c.tables[key(t.Name)] = t
	c.version.Add(1)
	// Only purely-temporary churn is invisible to the durable schema:
	// creating a temp table over a persistent one changes what the name
	// means to every cached plan.
	if !t.Temporary || (old != nil && !old.Temporary) {
		c.persist.Add(1)
	}
}

// DropTable removes a table; it reports whether it existed.
func (c *Catalog) DropTable(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	old, ok := c.tables[key(name)]
	if !ok {
		return false
	}
	delete(c.tables, key(name))
	c.version.Add(1)
	if !old.Temporary {
		c.persist.Add(1)
	}
	return true
}

// View returns the named view or nil.
func (c *Catalog) View(name string) *View {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.views[key(name)]
}

// PutView registers a view.
func (c *Catalog) PutView(v *View) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.views[key(v.Name)] = v
	c.version.Add(1)
	c.persist.Add(1)
}

// DropView removes a view; it reports whether it existed.
func (c *Catalog) DropView(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.views[key(name)]; !ok {
		return false
	}
	delete(c.views, key(name))
	c.version.Add(1)
	c.persist.Add(1)
	return true
}

// Routine returns the named routine or nil.
func (c *Catalog) Routine(name string) *Routine {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.routines[key(name)]
}

// PutRoutine registers a routine, replacing any previous definition.
// Re-registering a routine whose rendered definition is identical to
// the stored one keeps the existing entry and does not bump the schema
// version: the MAX/PERST strategies re-emit the same generated clones
// (max_*, ps_*) on every execution, and treating those as DDL would
// permanently thrash every version-keyed cache.
func (c *Catalog) PutRoutine(r *Routine) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old := c.routines[key(r.Name)]; old != nil &&
		old.Kind == r.Kind && old.renderedSQL() == r.renderedSQL() {
		return
	}
	c.routines[key(r.Name)] = r
	c.version.Add(1)
	c.persist.Add(1)
}

// DropRoutine removes a routine; it reports whether it existed.
func (c *Catalog) DropRoutine(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.routines[key(name)]; !ok {
		return false
	}
	delete(c.routines, key(name))
	c.version.Add(1)
	c.persist.Add(1)
	return true
}

// TableNames returns the names of all tables (unsorted).
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	return out
}

// ViewNames returns the names of all views (unsorted).
func (c *Catalog) ViewNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.views))
	for _, v := range c.views {
		out = append(out, v.Name)
	}
	return out
}

// RoutineNames returns the names of all routines (unsorted).
func (c *Catalog) RoutineNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.routines))
	for _, r := range c.routines {
		out = append(out, r.Name)
	}
	return out
}
