package storage

import (
	"sort"

	"taupsm/internal/types"
)

// intervalIndex is a centered interval tree over the half-open
// [begin_time, end_time) periods of a temporal table's rows. It
// answers "which rows overlap [lo, hi]" — exactly the shape of the
// point predicates MAX slicing injects (begin_time <= P AND
// P < end_time is the stab query lo = hi = P) — in O(log n + k)
// instead of a full scan. Like the hash indexes it is built lazily
// and invalidated by the table version counter.
type intervalIndex struct {
	version int64
	root    *intervalNode
	// odd holds ordinals of rows whose period endpoints are not plain
	// DATE/INT values (NULLs, strings). They are returned with every
	// query so the caller's residual predicate evaluation — which all
	// index users perform — keeps exact SQL semantics for them.
	odd []int
	// empt holds degenerate periods (end <= begin). They contain no
	// stab point but the index predicate begin <= hi AND end > lo can
	// still admit them for range queries — and the centered tree cannot
	// partition them (an empty interval can sit exactly on every
	// center, so the recursion would never shrink), so they are kept
	// aside and filtered linearly.
	empt []tableInterval
	// spans is every indexable row's period sorted ascending by begin
	// (ties by ordinal) — the cursor a sweep-line overlap join walks
	// instead of stabbing the tree once per outer row.
	spans []IntervalSpan
}

// IntervalSpan is one row's half-open [Begin, End) period with its
// ordinal in Table.Rows, for sweep-line consumers.
type IntervalSpan struct {
	Begin, End int64
	Ord        int
}

type intervalNode struct {
	center int64
	// The intervals containing center, sorted two ways: ascending by
	// begin (for queries entirely left of center) and descending by
	// end (for queries entirely right of center).
	byBegin []tableInterval
	byEnd   []tableInterval
	left    *intervalNode
	right   *intervalNode
}

type tableInterval struct {
	begin, end int64
	ord        int
}

// buildIntervalTree recursively builds a balanced centered tree.
func buildIntervalTree(ivs []tableInterval) *intervalNode {
	if len(ivs) == 0 {
		return nil
	}
	// Center on the median begin: cheap, and keeps the tree balanced
	// for the clustered period data temporal tables hold.
	begins := make([]int64, len(ivs))
	for i, iv := range ivs {
		begins[i] = iv.begin
	}
	sort.Slice(begins, func(i, j int) bool { return begins[i] < begins[j] })
	center := begins[len(begins)/2]

	node := &intervalNode{center: center}
	var left, right []tableInterval
	for _, iv := range ivs {
		switch {
		case iv.end <= center: // entirely left of center
			left = append(left, iv)
		case iv.begin > center: // entirely right of center
			right = append(right, iv)
		default: // contains center: begin <= center < end
			node.byBegin = append(node.byBegin, iv)
		}
	}
	node.byEnd = append([]tableInterval(nil), node.byBegin...)
	sort.Slice(node.byBegin, func(i, j int) bool { return node.byBegin[i].begin < node.byBegin[j].begin })
	sort.Slice(node.byEnd, func(i, j int) bool { return node.byEnd[i].end > node.byEnd[j].end })
	node.left = buildIntervalTree(left)
	node.right = buildIntervalTree(right)
	return node
}

// query appends to out the ordinals of intervals [b, e) satisfying
// b <= hi AND e > lo, i.e. overlapping the closed query range [lo, hi].
func (n *intervalNode) query(lo, hi int64, out []int) []int {
	if n == nil {
		return out
	}
	switch {
	case lo <= n.center && n.center <= hi:
		// The query range contains the center, which every interval at
		// this node contains too: all of them overlap.
		for _, iv := range n.byBegin {
			out = append(out, iv.ord)
		}
	case hi < n.center:
		// Every node interval has e > center > hi >= lo, so e > lo
		// holds; filter on b <= hi via the begin-ascending order.
		for _, iv := range n.byBegin {
			if iv.begin > hi {
				break
			}
			out = append(out, iv.ord)
		}
	default: // lo > n.center
		// Every node interval has b <= center < lo <= hi, so b <= hi
		// holds; filter on e > lo via the end-descending order.
		for _, iv := range n.byEnd {
			if iv.end <= lo {
				break
			}
			out = append(out, iv.ord)
		}
	}
	if lo < n.center {
		out = n.left.query(lo, hi, out)
	}
	if hi > n.center {
		out = n.right.query(lo, hi, out)
	}
	return out
}

// count is query without materializing ordinals.
func (n *intervalNode) count(lo, hi int64) int {
	if n == nil {
		return 0
	}
	c := 0
	switch {
	case lo <= n.center && n.center <= hi:
		c = len(n.byBegin)
	case hi < n.center:
		for _, iv := range n.byBegin {
			if iv.begin > hi {
				break
			}
			c++
		}
	default:
		for _, iv := range n.byEnd {
			if iv.end <= lo {
				break
			}
			c++
		}
	}
	if lo < n.center {
		c += n.left.count(lo, hi)
	}
	if hi > n.center {
		c += n.right.count(lo, hi)
	}
	return c
}

// endpointOK reports whether a value can serve as an interval
// endpoint: DATE and INT compare by their integer payload, which is
// exactly what the tree orders on.
func endpointOK(v types.Value) bool {
	return v.Kind == types.KindDate || v.Kind == types.KindInt
}

// intervalIdx returns the table's interval index, building it when
// missing or stale. Safe for concurrent readers. Returns nil when the
// table has no temporal period columns.
func (t *Table) intervalIdx() *intervalIndex {
	if !(t.ValidTime || t.TransactionTime) || len(t.Schema.Cols) < 2 {
		return nil
	}
	t.mu.RLock()
	idx := t.ival
	if idx != nil && idx.version == t.version {
		t.mu.RUnlock()
		return idx
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ival == nil || t.ival.version != t.version {
		t.ival = t.buildIntervalIdx()
	}
	return t.ival
}

// buildIntervalIdx constructs the index; caller holds the write lock.
func (t *Table) buildIntervalIdx() *intervalIndex {
	bc, ec := t.BeginCol(), t.EndCol()
	idx := &intervalIndex{version: t.version}
	ivs := make([]tableInterval, 0, len(t.Rows))
	for i, row := range t.Rows {
		b, e := row[bc], row[ec]
		if !endpointOK(b) || !endpointOK(e) {
			idx.odd = append(idx.odd, i)
			continue
		}
		iv := tableInterval{begin: b.I, end: e.I, ord: i}
		idx.spans = append(idx.spans, IntervalSpan{Begin: iv.begin, End: iv.end, Ord: iv.ord})
		if iv.end <= iv.begin {
			idx.empt = append(idx.empt, iv)
			continue
		}
		ivs = append(ivs, iv)
	}
	sort.Slice(idx.spans, func(i, j int) bool {
		if idx.spans[i].Begin != idx.spans[j].Begin {
			return idx.spans[i].Begin < idx.spans[j].Begin
		}
		return idx.spans[i].Ord < idx.spans[j].Ord
	})
	idx.root = buildIntervalTree(ivs)
	return idx
}

// Overlapping returns, in ascending row order, the ordinals of rows
// whose [begin_time, end_time) period satisfies begin <= hi AND
// end > lo — the rows overlapping the closed range [lo, hi] (a stab
// query when lo == hi). Rows with non-temporal endpoint values are
// always included, so callers re-checking the originating predicates
// on the returned candidates get exact SQL semantics. Returns ok=false
// when the table has no period columns to index.
func (t *Table) Overlapping(lo, hi int64) (ords []int, ok bool) {
	idx := t.intervalIdx()
	if idx == nil {
		return nil, false
	}
	out := idx.root.query(lo, hi, nil)
	for _, iv := range idx.empt {
		if iv.begin <= hi && iv.end > lo {
			out = append(out, iv.ord)
		}
	}
	out = append(out, idx.odd...)
	sort.Ints(out)
	return out, true
}

// SortedSpans returns every indexable row's [begin_time, end_time)
// period sorted ascending by begin (ties by ordinal), plus the
// ordinals of rows with non-temporal endpoint values (which every
// index consumer must treat as always-candidates). Both slices are
// shared, immutable, and cached with the interval index — callers must
// not modify them. Returns ok=false when the table has no period
// columns to index.
func (t *Table) SortedSpans() (spans []IntervalSpan, odd []int, ok bool) {
	idx := t.intervalIdx()
	if idx == nil {
		return nil, nil, false
	}
	return idx.spans, idx.odd, true
}

// CountOverlapping counts rows overlapping [lo, hi] (odd-endpoint rows
// excluded, matching a direct scan of date-valued periods). Returns
// ok=false when the table has no period columns to index.
func (t *Table) CountOverlapping(lo, hi int64) (n int, ok bool) {
	idx := t.intervalIdx()
	if idx == nil {
		return 0, false
	}
	n = idx.root.count(lo, hi)
	for _, iv := range idx.empt {
		if iv.begin <= hi && iv.end > lo {
			n++
		}
	}
	return n, true
}
