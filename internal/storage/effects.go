package storage

import "taupsm/internal/types"

// EffectKind enumerates the durable mutation types the engine emits
// while executing statements. Row effects are physical (exact rows and
// ordinals); schema effects are structural (object definitions), so a
// log replay reconstructs the catalog without re-running any query —
// replay is therefore independent of CURRENT_DATE and of the data
// visible at replay time.
type EffectKind uint8

// Effect kinds.
const (
	// EffInsert appends Row to table Name.
	EffInsert EffectKind = iota + 1
	// EffUpdate replaces the row at Index of table Name with Row.
	EffUpdate
	// EffDelete removes the row at Index of table Name. A statement
	// deleting several rows logs them in descending index order, so
	// applying the effects one by one reproduces the original state.
	EffDelete
	// EffPutTable creates (or replaces with) an empty table named Name
	// with schema Cols and the given temporal flags; the table's rows
	// follow as EffInsert effects.
	EffPutTable
	// EffDropTable removes table Name.
	EffDropTable
	// EffPutView registers the view defined by SQL (a CREATE VIEW
	// statement).
	EffPutView
	// EffDropView removes view Name.
	EffDropView
	// EffPutRoutine registers the routine defined by SQL (a CREATE
	// FUNCTION or CREATE PROCEDURE statement).
	EffPutRoutine
	// EffDropRoutine removes routine Name.
	EffDropRoutine
)

// String names the kind for diagnostics.
func (k EffectKind) String() string {
	switch k {
	case EffInsert:
		return "insert"
	case EffUpdate:
		return "update"
	case EffDelete:
		return "delete"
	case EffPutTable:
		return "put-table"
	case EffDropTable:
		return "drop-table"
	case EffPutView:
		return "put-view"
	case EffDropView:
		return "drop-view"
	case EffPutRoutine:
		return "put-routine"
	case EffDropRoutine:
		return "drop-routine"
	}
	return "unknown"
}

// EffectColumn is one column of a put-table effect. Table columns are
// always scalar (collection types exist only in PSM variables), so
// Base/Length/Scale describe the type completely.
type EffectColumn struct {
	Name   string
	Base   string
	Length int
	Scale  int
}

// Effect is one physical change to stored state — the unit the
// write-ahead log records and recovery replays. The engine emits a
// batch of effects per committed statement; internal/wal frames each
// batch as one checksummed record, so a statement is either fully
// replayed or (torn tail) fully absent after a crash.
type Effect struct {
	Kind EffectKind
	// Name is the affected object: the table of a row effect, or the
	// object a schema effect creates or drops.
	Name string
	// Index is the row ordinal for update and delete effects.
	Index int
	// Row is the inserted row, or the full new row of an update.
	Row []types.Value
	// Cols is the schema of a put-table effect.
	Cols            []EffectColumn
	ValidTime       bool
	TransactionTime bool
	// SQL is the rendered definition for put-view and put-routine.
	SQL string
}
