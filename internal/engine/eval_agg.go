package engine

import (
	"fmt"
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/types"
)

// aggregate function names.
var aggFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

func isAggregate(name string) bool { return aggFuncs[strings.ToUpper(name)] }

// collectAggregates finds aggregate function call nodes in the select
// list, HAVING, and ORDER BY of sel, without descending into
// subqueries (whose aggregates belong to the subquery).
func collectAggregates(sel *sqlast.SelectStmt) []*sqlast.FuncCall {
	var out []*sqlast.FuncCall
	visit := func(n sqlast.Node) bool {
		switch x := n.(type) {
		case *sqlast.SubqueryExpr, *sqlast.ExistsExpr:
			return false
		case *sqlast.FuncCall:
			if isAggregate(x.Name) {
				out = append(out, x)
				return false // no nested aggregates
			}
		}
		return true
	}
	for _, it := range sel.Items {
		if it.Expr != nil {
			sqlast.Walk(it.Expr, visit)
		}
	}
	if sel.Having != nil {
		sqlast.Walk(sel.Having, visit)
	}
	for _, o := range sel.OrderBy {
		sqlast.Walk(o.Expr, visit)
	}
	return out
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	count    int64
	sum      float64
	sumInt   int64
	isFloat  bool
	min, max types.Value
	distinct map[string]bool
	seenAny  bool
}

func (a *aggState) add(fc *sqlast.FuncCall, v types.Value) {
	if fc.Star {
		a.count++
		return
	}
	if v.IsNull() {
		return
	}
	if fc.Distinct {
		if a.distinct == nil {
			a.distinct = make(map[string]bool)
		}
		k := v.HashKey()
		if a.distinct[k] {
			return
		}
		a.distinct[k] = true
	}
	a.count++
	switch v.Kind {
	case types.KindFloat:
		a.isFloat = true
		a.sum += v.F
	case types.KindInt, types.KindBool, types.KindDate:
		a.sumInt += v.I
		a.sum += float64(v.I)
	}
	if !a.seenAny {
		a.min, a.max = v, v
		a.seenAny = true
	} else {
		if c, ok := types.Compare(v, a.min); ok && c < 0 {
			a.min = v
		}
		if c, ok := types.Compare(v, a.max); ok && c > 0 {
			a.max = v
		}
	}
}

func (a *aggState) result(fc *sqlast.FuncCall) types.Value {
	switch strings.ToUpper(fc.Name) {
	case "COUNT":
		return types.NewInt(a.count)
	case "SUM":
		if a.count == 0 {
			return types.Null
		}
		if a.isFloat {
			return types.NewFloat(a.sum)
		}
		return types.NewInt(a.sumInt)
	case "AVG":
		if a.count == 0 {
			return types.Null
		}
		return types.NewFloat(a.sum / float64(a.count))
	case "MIN":
		if !a.seenAny {
			return types.Null
		}
		return a.min
	case "MAX":
		if !a.seenAny {
			return types.Null
		}
		return a.max
	}
	return types.Null
}

// evalGrouped implements GROUP BY / HAVING / aggregate evaluation over
// the joined relation.
func (db *DB) evalGrouped(ctx *execCtx, sel *sqlast.SelectStmt, acc *rel, aggs []*sqlast.FuncCall) (*Result, error) {
	type group struct {
		rep    [][]types.Value // representative row for group expressions
		states []*aggState
	}
	groups := make(map[string]*group)
	var order []string

	gscope := newBoundScope(ctx.scope, acc.metas)
	rctx := ctx.withScope(gscope)
	for _, row := range acc.rows {
		gscope.bind(row)
		var key string
		if len(sel.GroupBy) > 0 {
			var b strings.Builder
			for _, g := range sel.GroupBy {
				v, err := db.evalExpr(rctx, g)
				if err != nil {
					return nil, err
				}
				b.WriteString(v.HashKey())
				b.WriteByte('|')
			}
			key = b.String()
		}
		gr := groups[key]
		if gr == nil {
			gr = &group{rep: row, states: make([]*aggState, len(aggs))}
			for i := range gr.states {
				gr.states[i] = &aggState{}
			}
			groups[key] = gr
			order = append(order, key)
		}
		for i, fc := range aggs {
			if fc.Star {
				gr.states[i].add(fc, types.Null)
				continue
			}
			v, err := db.evalExpr(rctx, fc.Args[0])
			if err != nil {
				return nil, err
			}
			gr.states[i].add(fc, v)
		}
	}

	// Grand aggregate over an empty input still yields one row.
	if len(sel.GroupBy) == 0 && len(groups) == 0 {
		gr := &group{rep: nil, states: make([]*aggState, len(aggs))}
		for i := range gr.states {
			gr.states[i] = &aggState{}
		}
		groups[""] = gr
		order = append(order, "")
	}

	res := &Result{}
	for i, it := range sel.Items {
		if it.Star || it.TableStar != "" {
			return nil, fmt.Errorf("SELECT * cannot be combined with GROUP BY or aggregates")
		}
		res.Cols = append(res.Cols, itemName(it, i))
	}

	var rows []projRow
	for _, key := range order {
		gr := groups[key]
		var scope *rowScope
		if gr.rep != nil {
			scope = bindScope(ctx.scope, acc.metas, gr.rep)
		} else {
			// empty-input grand aggregate: bind NULL rows
			nullRow := make([][]types.Value, len(acc.metas))
			for i, m := range acc.metas {
				nullRow[i] = make([]types.Value, len(m.cols))
			}
			scope = bindScope(ctx.scope, acc.metas, nullRow)
		}
		gctx := ctx.withScope(scope)
		gctx.aggVals = make(map[*sqlast.FuncCall]types.Value, len(aggs))
		for i, fc := range aggs {
			gctx.aggVals[fc] = gr.states[i].result(fc)
		}
		if sel.Having != nil {
			hv, err := db.evalExpr(gctx, sel.Having)
			if err != nil {
				return nil, err
			}
			if types.TriboolFromValue(hv) != types.True {
				continue
			}
		}
		var vals []types.Value
		for _, it := range sel.Items {
			v, err := db.evalExpr(gctx, it.Expr)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		pr := projRow{vals: vals}
		if len(sel.OrderBy) > 0 {
			keys, err := db.orderKeys(gctx, sel, vals)
			if err != nil {
				return nil, err
			}
			pr.keys = keys
		}
		rows = append(rows, pr)
	}
	return db.finishResult(ctx, sel, res, rows)
}
