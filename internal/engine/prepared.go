package engine

import (
	"sync"

	"taupsm/internal/sqlast"
	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// Prepared is the shared execution state of a fragment batch: the
// per-statement structures that are identical for every fragment —
// materialized source relations whose pushdown filters are closed
// (reference nothing that changes between executions), the hash tables
// joinRels builds over them, and the begin-sorted interval spans the
// sweep-line join consumes — cached once and reused by every
// execution that runs with the same Prepared attached.
//
// The stratum creates one Prepared per cached translation and passes
// it to ExecPreparedWithTables for the serial path and to every worker
// session of a parallel MAX run, so the batch plans once and executes
// many times: across the constant periods of one statement, across
// repeated executions of the same statement text, and across workers.
//
// Safety is by validation, exactly like the cp and translation caches:
// every cached relation is stamped with its table's identity, version,
// and the clock (CURRENT_DATE can appear in a closed filter), and the
// exact pushdown conjunct set it was filtered by, all re-checked on
// every consult. A mid-batch DML bumps the table version and the next
// consult rebuilds. Entries are immutable once published; the mutex
// only guards the maps.
type Prepared struct {
	mu   sync.Mutex
	rels map[*sqlast.BaseTable]*prepRel
}

// NewPrepared returns an empty prepared-plan cache.
func NewPrepared() *Prepared {
	return &Prepared{rels: map[*sqlast.BaseTable]*prepRel{}}
}

// prepRel is one cached source relation, keyed by the FROM-clause node
// that produced it. tab/version/now/push are the validity stamp; rel
// is served to evalSelect as a shallow struct copy (its rows are never
// mutated in place by the evaluator — filters reallocate). The derived
// caches (join hash tables by key signature, begin-sorted spans) are
// built on demand under mu.
type prepRel struct {
	tab     *storage.Table
	version int64
	now     int64
	push    []*conjunct // pushdown set at build time, compared by identity

	rel *rel

	mu       sync.Mutex
	hashes   map[string]map[string][][][]types.Value
	spans    []storage.IntervalSpan
	spansOdd []int
	spansOK  bool
	hasSpans bool
}

// valid reports whether the entry still describes table t filtered by
// exactly the given pushdown conjuncts under the current clock.
func (e *prepRel) valid(t *storage.Table, now int64, pushdown []*conjunct) bool {
	if e.tab != t || e.version != t.Version() || e.now != now {
		return false
	}
	if len(e.push) != len(pushdown) {
		return false
	}
	for i, c := range pushdown {
		if e.push[i] != c {
			return false
		}
	}
	return true
}

// cacheablePushdown reports whether every pushdown conjunct is closed:
// no subqueries, no unresolved or outer/parameter references, no
// routine calls. Only then does filtering commute with caching — the
// filtered relation is a pure function of (table contents, clock).
func cacheablePushdown(cs []*conjunct) bool {
	for _, c := range cs {
		if c.hasSub || c.unresolved || c.external || c.expensive {
			return false
		}
	}
	return true
}

// loadSourcePrepared is loadSource behind the batch's prepared-plan
// cache. Only plain catalog-table references with cacheable pushdown
// take the cached path; everything else (views, derived tables,
// table-valued variables, parameter-dependent filters) falls through
// to a fresh load.
func (db *DB) loadSourcePrepared(ctx *execCtx, ref sqlast.TableRef, metas []entryMeta, pushdown []*conjunct) (*rel, error) {
	p := ctx.prep
	if p == nil || db.DisablePlanReuse {
		return db.loadSource(ctx, ref, metas, pushdown)
	}
	bt, ok := ref.(*sqlast.BaseTable)
	if !ok || !cacheablePushdown(pushdown) {
		return db.loadSource(ctx, ref, metas, pushdown)
	}
	if ctx.vars != nil && ctx.vars.getTable(bt.Name) != nil {
		// Shadowed by a table-valued variable (the cp relation, a
		// collection parameter): contents are per-execution.
		return db.loadSource(ctx, ref, metas, pushdown)
	}
	t := db.Cat.Table(bt.Name)
	if t == nil {
		return db.loadSource(ctx, ref, metas, pushdown)
	}

	p.mu.Lock()
	if ent := p.rels[bt]; ent != nil && ent.valid(t, db.Now, pushdown) {
		cp := *ent.rel
		cp.prepEnt = ent
		p.mu.Unlock()
		db.Stats.PlanReuseHits++
		return &cp, nil
	}
	p.mu.Unlock()

	// Read the version before scanning so a racing bump can only make
	// the stamp too old (a spurious rebuild), never too new.
	version := t.Version()
	loaded, err := db.loadSource(ctx, ref, metas, pushdown)
	if err != nil {
		return nil, err
	}
	if loaded.tab != t {
		// Resolved to something other than the stored table's scan
		// (e.g. a view of the same name): don't cache.
		return loaded, nil
	}
	ent := &prepRel{
		tab:     t,
		version: version,
		now:     db.Now,
		push:    append([]*conjunct(nil), pushdown...),
		rel:     loaded,
	}
	p.mu.Lock()
	p.rels[bt] = ent
	p.mu.Unlock()
	cp := *loaded
	cp.prepEnt = ent
	return &cp, nil
}

// hashFor returns the cached join hash table for the rendered key
// signature.
func (e *prepRel) hashFor(sig string) (map[string][][][]types.Value, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	idx, ok := e.hashes[sig]
	return idx, ok
}

func (e *prepRel) putHash(sig string, idx map[string][][][]types.Value) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.hashes == nil {
		e.hashes = map[string]map[string][][][]types.Value{}
	}
	e.hashes[sig] = idx
}

// cachedSpans returns the begin-sorted spans of the cached relation's
// rows, if a previous sweep join built them.
func (e *prepRel) cachedSpans() (spans []storage.IntervalSpan, odd []int, built, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.spans, e.spansOdd, e.hasSpans, e.spansOK
}

func (e *prepRel) putSpans(spans []storage.IntervalSpan, odd []int, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.spans, e.spansOdd, e.hasSpans, e.spansOK = spans, odd, true, ok
}

// hashIndexFor builds (or serves from the prepared plan) the hash
// table over the right relation's rows keyed by rkeys. Only cached
// when the right side came out of the prepared cache and every key is
// a plain column reference — then the table is a pure function of the
// (already version-validated) cached rows.
func (db *DB) hashIndexFor(ctx *execCtx, right *rel, rkeys []sqlast.Expr) (map[string][][][]types.Value, error) {
	sig := ""
	cacheable := right.prepEnt != nil && !db.DisablePlanReuse
	if cacheable {
		for _, k := range rkeys {
			if _, isCol := k.(*sqlast.ColumnRef); !isCol {
				cacheable = false
				break
			}
			s := renderSQL(k)
			if s == "" {
				cacheable = false
				break
			}
			sig += s + "|"
		}
	}
	if cacheable {
		if idx, ok := right.prepEnt.hashFor(sig); ok {
			db.Stats.PlanReuseHits++
			return idx, nil
		}
	}
	index := make(map[string][][][]types.Value, len(right.rows))
	rscope := newBoundScope(ctx.scope, right.metas)
	rctx := ctx.withScope(rscope)
	for _, rrow := range right.rows {
		rscope.bind(rrow)
		key, null, err := db.keyOf(rctx, rkeys)
		if err != nil {
			return nil, err
		}
		if null {
			continue
		}
		index[key] = append(index[key], rrow)
	}
	if cacheable {
		right.prepEnt.putHash(sig, index)
	}
	return index, nil
}
