package engine

import (
	"fmt"

	"taupsm/internal/sqlast"
	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// resolveTarget finds the table a DML statement modifies: a
// table-valued variable (INSERT INTO TABLE v) or a stored table.
func (db *DB) resolveTarget(ctx *execCtx, name string, varTarget bool) (*storage.Table, error) {
	if varTarget {
		if ctx.vars != nil {
			if t := ctx.vars.getTable(name); t != nil {
				return t, nil
			}
		}
		return nil, fmt.Errorf("table-valued variable %s not declared", name)
	}
	if ctx.vars != nil {
		if t := ctx.vars.getTable(name); t != nil {
			return t, nil
		}
	}
	if t := db.Cat.Table(name); t != nil {
		return t, nil
	}
	return nil, fmt.Errorf("table %s does not exist", name)
}

func (db *DB) execInsert(ctx *execCtx, s *sqlast.InsertStmt) (*Result, error) {
	t, err := db.resolveTarget(ctx, s.Table, s.VarTarget)
	if err != nil {
		return nil, err
	}
	src, err := db.evalQuery(ctx, s.Source)
	if err != nil {
		return nil, err
	}
	// column mapping
	ncols := len(t.Schema.Cols)
	mapping := make([]int, 0, ncols) // target ordinal for each source column
	if len(s.Cols) > 0 {
		for _, c := range s.Cols {
			ord := t.Schema.Index(c)
			if ord < 0 {
				return nil, fmt.Errorf("table %s has no column %s", t.Name, c)
			}
			mapping = append(mapping, ord)
		}
	} else {
		for i := 0; i < ncols; i++ {
			mapping = append(mapping, i)
		}
	}
	if len(src.Cols) != len(mapping) {
		return nil, fmt.Errorf("INSERT into %s supplies %d values for %d columns",
			t.Name, len(src.Cols), len(mapping))
	}
	l := db.dmlLogFor(ctx, t)
	for _, row := range src.Rows {
		nr := make([]types.Value, ncols)
		for i, ord := range mapping {
			v, err := coerce(row[i], t.Schema.Cols[ord].Type)
			if err != nil {
				return nil, fmt.Errorf("column %s of %s: %w", t.Schema.Cols[ord].Name, t.Name, err)
			}
			nr[ord] = v
		}
		if err := t.Insert(nr); err != nil {
			return nil, err
		}
		l.insert(nr)
	}
	db.logDelay(len(src.Rows))
	return &Result{Affected: len(src.Rows)}, nil
}

// coerce converts an inserted value to the column's declared kind.
func coerce(v types.Value, t sqlast.TypeName) (types.Value, error) {
	if v.IsNull() {
		return types.Null, nil
	}
	want := t.Kind()
	if v.Kind == want || want == types.KindNull {
		return v, nil
	}
	switch want {
	case types.KindDate:
		if v.Kind == types.KindString {
			d, err := types.ParseDate(v.S)
			if err != nil {
				return types.Null, err
			}
			return types.NewDate(d), nil
		}
		if v.Kind == types.KindInt {
			return types.NewDate(v.I), nil
		}
	case types.KindFloat:
		if v.Kind == types.KindInt {
			return types.NewFloat(float64(v.I)), nil
		}
	case types.KindInt:
		if v.Kind == types.KindFloat {
			return types.NewInt(int64(v.F)), nil
		}
	case types.KindString:
		return types.NewString(v.Text()), nil
	}
	return v, nil
}

func (db *DB) execUpdate(ctx *execCtx, s *sqlast.UpdateStmt) (*Result, error) {
	t, err := db.resolveTarget(ctx, s.Table, s.VarTarget)
	if err != nil {
		return nil, err
	}
	alias := s.Alias
	if alias == "" {
		alias = s.Table
	}
	scope := &rowScope{parent: ctx.scope, entries: []scopeEntry{{alias: alias, cols: t.Schema.Names()}}}
	rctx := ctx.withScope(scope)

	ords := make([]int, len(s.Sets))
	for i, sc := range s.Sets {
		ord := t.Schema.Index(sc.Column)
		if ord < 0 {
			return nil, fmt.Errorf("table %s has no column %s", t.Name, sc.Column)
		}
		ords[i] = ord
	}

	l := db.dmlLogFor(ctx, t)
	affected := 0
	for idx, row := range t.Rows {
		scope.entries[0].row = row
		if s.Where != nil {
			v, err := db.evalExpr(rctx, s.Where)
			if err != nil {
				return nil, err
			}
			if types.TriboolFromValue(v) != types.True {
				continue
			}
		}
		// Evaluate all new values against the pre-update row.
		newVals := make([]types.Value, len(s.Sets))
		for i, sc := range s.Sets {
			v, err := db.evalExpr(rctx, sc.Value)
			if err != nil {
				return nil, err
			}
			cv, err := coerce(v, t.Schema.Cols[ords[i]].Type)
			if err != nil {
				return nil, err
			}
			newVals[i] = cv
		}
		// Journal the old values before mutating in place: if a later
		// row's evaluation fails, the rollback writes them back into the
		// same row slices, so the scan's partial mutations don't leak.
		// The statistics delta needs the old endpoints too.
		var old []types.Value
		if l.needsOld() {
			old = cloneRow(row)
		}
		for i, ord := range ords {
			row[ord] = newVals[i]
		}
		l.update(idx, row, old)
		affected++
	}
	if affected > 0 {
		t.Bump()
		db.logDelay(affected)
	}
	return &Result{Affected: affected}, nil
}

func (db *DB) execDelete(ctx *execCtx, s *sqlast.DeleteStmt) (*Result, error) {
	t, err := db.resolveTarget(ctx, s.Table, s.VarTarget)
	if err != nil {
		return nil, err
	}
	alias := s.Alias
	if alias == "" {
		alias = s.Table
	}
	scope := &rowScope{parent: ctx.scope, entries: []scopeEntry{{alias: alias, cols: t.Schema.Names()}}}
	rctx := ctx.withScope(scope)

	l := db.dmlLogFor(ctx, t)
	oldRows := t.Rows
	kept := t.Rows[:0:0]
	var removed []int
	for i, row := range t.Rows {
		scope.entries[0].row = row
		del := true
		if s.Where != nil {
			v, err := db.evalExpr(rctx, s.Where)
			if err != nil {
				return nil, err
			}
			del = types.TriboolFromValue(v) == types.True
		}
		if del {
			removed = append(removed, i)
		} else {
			kept = append(kept, row)
		}
	}
	affected := len(removed)
	if affected > 0 {
		t.Rows = kept
		t.Bump()
		l.deleteRows(oldRows, removed)
	}
	return &Result{Affected: affected}, nil
}
