package engine

import (
	"strings"
	"testing"

	"taupsm/internal/sqlast"
	"taupsm/internal/sqlparser"
	"taupsm/internal/types"
)

type sqlastExpr = sqlast.Expr

// mustExec executes a script and fails the test on error.
func mustExec(t *testing.T, db *DB, src string) *Result {
	t.Helper()
	res, err := db.ExecScript(src)
	if err != nil {
		t.Fatalf("exec %q: %v", src, err)
	}
	return res
}

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, `
		CREATE TABLE item (id INTEGER, title VARCHAR(100), price FLOAT);
		INSERT INTO item VALUES (1, 'SQL Basics', 10.0), (2, 'Go in Action', 20.0), (3, 'Temporal Data', 30.0);
		CREATE TABLE item_author (item_id INTEGER, author_id INTEGER);
		INSERT INTO item_author VALUES (1, 10), (2, 10), (2, 11), (3, 12);
		CREATE TABLE author (author_id INTEGER, first_name VARCHAR(50), last_name VARCHAR(50));
		INSERT INTO author VALUES (10, 'Ben', 'Stone'), (11, 'Amy', 'Reed'), (12, 'Cy', 'Tan');
	`)
	return db
}

func rowsText(res *Result) []string {
	var out []string
	for _, r := range res.Rows {
		var parts []string
		for _, v := range r {
			parts = append(parts, v.Text())
		}
		out = append(out, strings.Join(parts, ","))
	}
	return out
}

func expectRows(t *testing.T, res *Result, want ...string) {
	t.Helper()
	got := rowsText(res)
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestSimpleSelect(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT title FROM item WHERE id = 2`)
	expectRows(t, res, "Go in Action")
}

func TestJoinImplicit(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `
		SELECT i.title FROM item i, item_author ia, author a
		WHERE i.id = ia.item_id AND ia.author_id = a.author_id AND a.first_name = 'Ben'
		ORDER BY i.title`)
	expectRows(t, res, "Go in Action", "SQL Basics")
}

func TestJoinExplicit(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `
		SELECT a.first_name FROM item i JOIN item_author ia ON i.id = ia.item_id
		JOIN author a ON a.author_id = ia.author_id
		WHERE i.id = 2 ORDER BY a.first_name`)
	expectRows(t, res, "Amy", "Ben")
}

func TestLeftJoin(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `INSERT INTO item VALUES (4, 'Orphan Book', 5.0)`)
	res := mustExec(t, db, `
		SELECT i.title FROM item i LEFT JOIN item_author ia ON i.id = ia.item_id
		WHERE ia.author_id IS NULL`)
	expectRows(t, res, "Orphan Book")
}

func TestAggregates(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT COUNT(*), SUM(price), MIN(price), MAX(price), AVG(price) FROM item`)
	expectRows(t, res, "3,60.0,10.0,30.0,20.0")
}

func TestGroupByHaving(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `
		SELECT ia.author_id, COUNT(*) AS n FROM item_author ia
		GROUP BY ia.author_id HAVING COUNT(*) > 1 ORDER BY ia.author_id`)
	expectRows(t, res, "10,2")
}

func TestAggregateEmptyInput(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT COUNT(*), SUM(price) FROM item WHERE id > 99`)
	expectRows(t, res, "0,NULL")
}

func TestSubqueries(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `
		SELECT title FROM item
		WHERE id IN (SELECT item_id FROM item_author WHERE author_id = 12)`)
	expectRows(t, res, "Temporal Data")

	res = mustExec(t, db, `
		SELECT title FROM item i
		WHERE EXISTS (SELECT 1 FROM item_author ia WHERE ia.item_id = i.id AND ia.author_id = 11)`)
	expectRows(t, res, "Go in Action")

	res = mustExec(t, db, `
		SELECT (SELECT first_name FROM author WHERE author_id = 10) FROM item WHERE id = 1`)
	expectRows(t, res, "Ben")
}

func TestScalarSubqueryCardinality(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.ExecScript(`SELECT (SELECT author_id FROM author) FROM item`); err == nil {
		t.Fatal("expected error for multi-row scalar subquery")
	}
	res := mustExec(t, db, `SELECT (SELECT first_name FROM author WHERE author_id = 99) FROM item WHERE id = 1`)
	expectRows(t, res, "NULL")
}

func TestSetOperations(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `
		SELECT author_id FROM item_author WHERE item_id = 1
		UNION SELECT author_id FROM item_author WHERE item_id = 2
		ORDER BY author_id`)
	expectRows(t, res, "10", "11")

	res = mustExec(t, db, `
		SELECT author_id FROM item_author WHERE item_id = 2
		EXCEPT SELECT author_id FROM item_author WHERE item_id = 1`)
	expectRows(t, res, "11")

	res = mustExec(t, db, `
		SELECT author_id FROM item_author WHERE item_id = 2
		INTERSECT SELECT author_id FROM item_author WHERE item_id = 1`)
	expectRows(t, res, "10")
}

func TestDistinctOrderLimit(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT DISTINCT author_id FROM item_author ORDER BY author_id DESC FETCH FIRST 2 ROWS ONLY`)
	expectRows(t, res, "12", "11")
}

func TestNullSemantics(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `INSERT INTO item VALUES (5, NULL, NULL)`)
	res := mustExec(t, db, `SELECT id FROM item WHERE title = NULL`)
	expectRows(t, res) // = NULL is unknown, never true
	res = mustExec(t, db, `SELECT id FROM item WHERE title IS NULL`)
	expectRows(t, res, "5")
	res = mustExec(t, db, `SELECT id FROM item WHERE NOT (price > 0) AND id = 5`)
	expectRows(t, res) // NOT UNKNOWN is UNKNOWN
}

func TestUpdateDelete(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `UPDATE item SET price = price + 1 WHERE id <= 2`)
	if res.Affected != 2 {
		t.Fatalf("affected = %d, want 2", res.Affected)
	}
	res = mustExec(t, db, `SELECT price FROM item WHERE id = 1`)
	expectRows(t, res, "11.0")
	res = mustExec(t, db, `DELETE FROM item WHERE id = 3`)
	if res.Affected != 1 {
		t.Fatalf("affected = %d, want 1", res.Affected)
	}
	res = mustExec(t, db, `SELECT COUNT(*) FROM item`)
	expectRows(t, res, "2")
}

func TestInsertColumnList(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `INSERT INTO item (id, title) VALUES (9, 'Partial')`)
	res := mustExec(t, db, `SELECT id, title, price FROM item WHERE id = 9`)
	expectRows(t, res, "9,Partial,NULL")
}

func TestCreateTableAsQuery(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE cheap AS (SELECT id, title FROM item WHERE price < 25)`)
	res := mustExec(t, db, `SELECT COUNT(*) FROM cheap`)
	expectRows(t, res, "2")
}

func TestViews(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE VIEW ben_items AS (
		SELECT i.title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND ia.author_id = 10)`)
	res := mustExec(t, db, `SELECT title FROM ben_items ORDER BY title`)
	expectRows(t, res, "Go in Action", "SQL Basics")
}

func TestTemporalTableDDL(t *testing.T) {
	db := New()
	db.Now = types.MustDate(2010, 6, 1)
	mustExec(t, db, `CREATE TABLE pub (id INTEGER, name VARCHAR(20)) AS VALIDTIME`)
	tab := db.Cat.Table("pub")
	if tab == nil || !tab.ValidTime {
		t.Fatal("expected temporal table")
	}
	if n := len(tab.Schema.Cols); n != 4 {
		t.Fatalf("expected 4 columns (2 + timestamps), got %d", n)
	}
	mustExec(t, db, `INSERT INTO pub VALUES (1, 'ACM', DATE '2010-01-01', DATE '2010-12-31')`)
	res := mustExec(t, db, `SELECT name FROM pub WHERE begin_time <= CURRENT_DATE AND CURRENT_DATE < end_time`)
	expectRows(t, res, "ACM")
}

func TestAlterAddValidTime(t *testing.T) {
	db := New()
	db.Now = types.MustDate(2010, 6, 1)
	mustExec(t, db, `CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1)`)
	mustExec(t, db, `ALTER TABLE t ADD VALIDTIME`)
	res := mustExec(t, db, `SELECT a, begin_time, end_time FROM t`)
	expectRows(t, res, "1,2010-06-01,9999-12-31")
}

func TestStoredFunction(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION get_author_name (aid INTEGER)
RETURNS CHAR(50)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE fname CHAR(50);
  SET fname = (SELECT first_name FROM author WHERE author_id = aid);
  RETURN fname;
END`)
	res := mustExec(t, db, `
		SELECT i.title FROM item i, item_author ia
		WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'
		ORDER BY i.title`)
	expectRows(t, res, "Go in Action", "SQL Basics")
	if db.Stats.RoutineCalls == 0 {
		t.Fatal("expected routine call stats")
	}
}

func TestFunctionControlFlow(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION classify (p FLOAT)
RETURNS CHAR(10)
LANGUAGE SQL
BEGIN
  IF p < 15 THEN RETURN 'cheap';
  ELSEIF p < 25 THEN RETURN 'mid';
  ELSE RETURN 'dear';
  END IF;
END`)
	res := mustExec(t, db, `SELECT classify(price) FROM item ORDER BY id`)
	expectRows(t, res, "cheap", "mid", "dear")
}

func TestWhileLoopFunction(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION sum_to (n INTEGER)
RETURNS INTEGER
LANGUAGE SQL
BEGIN
  DECLARE i INTEGER DEFAULT 0;
  DECLARE acc INTEGER DEFAULT 0;
  WHILE i < n DO
    SET i = i + 1;
    SET acc = acc + i;
  END WHILE;
  RETURN acc;
END`)
	res := mustExec(t, db, `SELECT sum_to(10) FROM item WHERE id = 1`)
	expectRows(t, res, "55")
}

func TestRepeatLoop(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION rep (n INTEGER)
RETURNS INTEGER
LANGUAGE SQL
BEGIN
  DECLARE i INTEGER DEFAULT 0;
  REPEAT SET i = i + 1; UNTIL i >= n END REPEAT;
  RETURN i;
END`)
	res := mustExec(t, db, `SELECT rep(0) FROM item WHERE id = 1`)
	expectRows(t, res, "1") // REPEAT bodies run at least once
}

func TestForLoop(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION total_price ()
RETURNS FLOAT
LANGUAGE SQL
BEGIN
  DECLARE acc FLOAT DEFAULT 0.0;
  FOR r AS SELECT price FROM item DO
    SET acc = acc + r.price;
  END FOR;
  RETURN acc;
END`)
	res := mustExec(t, db, `SELECT total_price() FROM item WHERE id = 1`)
	expectRows(t, res, "60.0")
}

func TestCursorWithHandler(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION count_items ()
RETURNS INTEGER
LANGUAGE SQL
BEGIN
  DECLARE done INTEGER DEFAULT 0;
  DECLARE n INTEGER DEFAULT 0;
  DECLARE v INTEGER DEFAULT 0;
  DECLARE cur CURSOR FOR SELECT id FROM item;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
  OPEN cur;
  wl: WHILE done = 0 DO
    FETCH cur INTO v;
    IF done = 0 THEN SET n = n + 1; END IF;
  END WHILE wl;
  CLOSE cur;
  RETURN n;
END`)
	res := mustExec(t, db, `SELECT count_items() FROM item WHERE id = 1`)
	expectRows(t, res, "3")
}

func TestProcedureOutParam(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE PROCEDURE get_count (IN aid INTEGER, OUT n INTEGER)
LANGUAGE SQL
BEGIN
  SET n = (SELECT COUNT(*) FROM item_author WHERE author_id = aid);
END`)
	mustExec(t, db, `
CREATE FUNCTION wrap (aid INTEGER)
RETURNS INTEGER
LANGUAGE SQL
BEGIN
  DECLARE m INTEGER DEFAULT 0;
  CALL get_count(aid, m);
  RETURN m;
END`)
	res := mustExec(t, db, `SELECT wrap(10) FROM item WHERE id = 1`)
	expectRows(t, res, "2")
}

func TestLeaveIterate(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION f ()
RETURNS INTEGER
LANGUAGE SQL
BEGIN
  DECLARE i INTEGER DEFAULT 0;
  DECLARE acc INTEGER DEFAULT 0;
  lp: WHILE i < 100 DO
    SET i = i + 1;
    IF i = 5 THEN ITERATE lp; END IF;
    IF i > 8 THEN LEAVE lp; END IF;
    SET acc = acc + i;
  END WHILE lp;
  RETURN acc;
END`)
	res := mustExec(t, db, `SELECT f() FROM item WHERE id = 1`)
	// 1+2+3+4+6+7+8 = 31 (5 skipped, loop left at 9)
	expectRows(t, res, "31")
}

func TestCaseStatement(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION size_of (p FLOAT)
RETURNS CHAR(5)
LANGUAGE SQL
BEGIN
  DECLARE r CHAR(5);
  CASE
    WHEN p < 15 THEN SET r = 'small';
    WHEN p < 25 THEN SET r = 'mid';
    ELSE SET r = 'big';
  END CASE;
  RETURN r;
END`)
	res := mustExec(t, db, `SELECT size_of(price) FROM item ORDER BY id`)
	expectRows(t, res, "small", "mid", "big")
}

func TestTableValuedVariableAndTableFunc(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION hist (aid INTEGER)
RETURNS ROW(taupsm_result CHAR(50), begin_time DATE, end_time DATE) ARRAY
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE acc ROW(taupsm_result CHAR(50), begin_time DATE, end_time DATE) ARRAY;
  INSERT INTO TABLE acc
    SELECT first_name, DATE '2010-01-01', DATE '2011-01-01'
    FROM author WHERE author_id = aid;
  RETURN acc;
END`)
	res := mustExec(t, db, `
		SELECT f.taupsm_result, f.begin_time FROM TABLE(hist(10)) AS f`)
	expectRows(t, res, "Ben,2010-01-01")
}

func TestLateralTableFunc(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION name_of (aid INTEGER)
RETURNS ROW(taupsm_result CHAR(50), begin_time DATE, end_time DATE) ARRAY
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE acc ROW(taupsm_result CHAR(50), begin_time DATE, end_time DATE) ARRAY;
  INSERT INTO TABLE acc
    SELECT first_name, DATE '2010-01-01', DATE '2011-01-01'
    FROM author WHERE author_id = aid;
  RETURN acc;
END`)
	// lateral: function argument references the preceding table
	res := mustExec(t, db, `
		SELECT i.title FROM item i, item_author ia, TABLE(name_of(ia.author_id)) AS f
		WHERE i.id = ia.item_id AND f.taupsm_result = 'Ben'
		ORDER BY i.title`)
	expectRows(t, res, "Go in Action", "SQL Basics")
}

func TestSignalAndHandlers(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION risky (x INTEGER)
RETURNS CHAR(5)
LANGUAGE SQL
BEGIN
  DECLARE EXIT HANDLER FOR SQLSTATE '70001' RETURN 'err';
  IF x = 1 THEN SIGNAL SQLSTATE '70001' SET MESSAGE_TEXT = 'boom'; END IF;
  RETURN 'ok';
END`)
	res := mustExec(t, db, `SELECT risky(1), risky(0) FROM item WHERE id = 1`)
	expectRows(t, res, "err,ok")
}

func TestNestedRoutineCalls(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION inner_f (x INTEGER) RETURNS INTEGER LANGUAGE SQL BEGIN RETURN x * 2; END;
CREATE FUNCTION outer_f (x INTEGER) RETURNS INTEGER LANGUAGE SQL BEGIN RETURN inner_f(x) + 1; END;
`)
	res := mustExec(t, db, `SELECT outer_f(20) FROM item WHERE id = 1`)
	expectRows(t, res, "41")
}

func TestRecursionGuard(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE FUNCTION rec (x INTEGER) RETURNS INTEGER LANGUAGE SQL BEGIN RETURN rec(x); END`)
	if _, err := db.ExecScript(`SELECT rec(1) FROM item WHERE id = 1`); err == nil {
		t.Fatal("expected recursion error")
	}
}

func TestTemporalModifierRejected(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.ExecScript(`VALIDTIME SELECT title FROM item`); err == nil {
		t.Fatal("expected rejection of sequenced query by conventional engine")
	}
	if _, err := db.ExecScript(`NONSEQUENCED VALIDTIME SELECT title FROM item`); err == nil {
		t.Fatal("expected rejection of nonsequenced query by conventional engine")
	}
}

func TestBuiltins(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT UPPER('ab'), LOWER('AB'), LENGTH('abc'), SUBSTR('hello', 2, 3),
		ABS(-4), MOD(7, 3), COALESCE(NULL, 'x'), NULLIF(1, 1),
		FIRST_INSTANCE(DATE '2010-01-01', DATE '2010-06-01'),
		LAST_INSTANCE(DATE '2010-01-01', DATE '2010-06-01'),
		YEAR(DATE '2010-03-04'), MONTH(DATE '2010-03-04'), DAY(DATE '2010-03-04')
		FROM item WHERE id = 1`)
	expectRows(t, res, "AB,ab,3,ell,4,1,x,NULL,2010-01-01,2010-06-01,2010,3,4")
}

func TestDateArithmetic(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT DATE '2010-01-01' + 31, DATE '2010-02-01' - DATE '2010-01-01' FROM item WHERE id = 1`)
	expectRows(t, res, "2010-02-01,31")
}

func TestCaseExprAndBetween(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `
		SELECT CASE WHEN price BETWEEN 15 AND 25 THEN 'band' ELSE 'out' END
		FROM item ORDER BY id`)
	expectRows(t, res, "out", "band", "out")
}

func TestLike(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT title FROM item WHERE title LIKE '%Action%'`)
	expectRows(t, res, "Go in Action")
	res = mustExec(t, db, `SELECT title FROM item WHERE title LIKE '_QL%'`)
	expectRows(t, res, "SQL Basics")
}

func TestDerivedTable(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `
		SELECT x.t FROM (SELECT title AS t, price FROM item WHERE price > 15) AS x
		ORDER BY x.price DESC`)
	expectRows(t, res, "Temporal Data", "Go in Action")
}

func TestAnonymousBlock(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
BEGIN
  DECLARE n INTEGER DEFAULT 0;
  SET n = (SELECT COUNT(*) FROM item);
  IF n > 0 THEN
    INSERT INTO item VALUES (100, 'From Block', 1.0);
  END IF;
END`)
	res := mustExec(t, db, `SELECT title FROM item WHERE id = 100`)
	expectRows(t, res, "From Block")
}

func TestStatsRowsScanned(t *testing.T) {
	db := newTestDB(t)
	db.Stats.Reset()
	mustExec(t, db, `SELECT title FROM item WHERE id = 1`)
	if db.Stats.RowsScanned == 0 {
		t.Fatal("expected rows scanned to be counted")
	}
}

func TestIndexLookupUsed(t *testing.T) {
	db := newTestDB(t)
	// Prime the index, then verify a repeated equality probe scans
	// fewer rows than a full scan would.
	mustExec(t, db, `SELECT title FROM item WHERE id = 1`)
	db.Stats.Reset()
	mustExec(t, db, `SELECT title FROM item WHERE id = 1`)
	if db.Stats.RowsScanned > 1 {
		t.Fatalf("expected index probe to scan 1 row, scanned %d", db.Stats.RowsScanned)
	}
}

func mustParseExpr(t *testing.T, src string) sqlastExpr {
	t.Helper()
	e, err := sqlparser.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
