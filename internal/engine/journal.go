package engine

import (
	"taupsm/internal/sqlast"
	"taupsm/internal/stats"
	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// Journal is the engine's statement-effect journal. Every catalog
// mutation a statement makes is recorded twice: as an undo closure
// (so a failed statement rolls back cleanly instead of leaking partial
// writes) and, for durable objects, as a redo storage.Effect (the
// record the write-ahead log persists and recovery replays).
//
// The stratum attaches one Journal to the engine session that executes
// a user statement, so a sequenced DML translation — which expands to
// several engine statements — still commits or rolls back as a unit:
// the WAL sees one effect batch per user statement, never a torn half
// of a translation.
type Journal struct {
	entries []journalEntry
}

type journalEntry struct {
	undo func()
	redo *storage.Effect
}

// NewJournal returns an empty journal.
func NewJournal() *Journal { return &Journal{} }

// mark returns a savepoint for rollbackTo.
func (j *Journal) mark() int {
	if j == nil {
		return 0
	}
	return len(j.entries)
}

// rollbackTo undoes every change journaled after the savepoint, newest
// first, and discards the undone entries (their redo effects must not
// reach the log).
func (j *Journal) rollbackTo(n int) {
	if j == nil {
		return
	}
	for i := len(j.entries) - 1; i >= n; i-- {
		if u := j.entries[i].undo; u != nil {
			u()
		}
	}
	j.entries = j.entries[:n]
}

// RollbackAll undoes everything the journal recorded. The stratum calls
// it when the write-ahead log rejects the statement's effect batch:
// memory reverts to the pre-statement state, so the image on disk and
// the image in memory never diverge.
func (j *Journal) RollbackAll() { j.rollbackTo(0) }

// Len reports the number of journaled changes.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	return len(j.entries)
}

// Effects returns the redo records of the journaled changes in commit
// order; changes to non-durable state (table variables, temporary
// tables) journal undo only and contribute nothing here.
func (j *Journal) Effects() []storage.Effect {
	if j == nil {
		return nil
	}
	out := make([]storage.Effect, 0, len(j.entries))
	for _, e := range j.entries {
		if e.redo != nil {
			out = append(out, *e.redo)
		}
	}
	return out
}

// record appends one change; nil-receiver safe so call sites need no
// guard on contexts without a journal (EvalConstExpr).
func (j *Journal) record(undo func(), redo *storage.Effect) {
	if j == nil {
		return
	}
	j.entries = append(j.entries, journalEntry{undo: undo, redo: redo})
}

// dmlLog scopes journaling to one DML statement's target table. Redo
// effects are emitted only for durable targets — tables resolved from
// the catalog that are not temporary; table variables and temp tables
// roll back via undo but never reach the log. For tracked targets the
// log also keeps the statistics registry incrementally current — and,
// through the same undo closures, exactly reverted on rollback, so
// "incremental == recomputed" holds across failed statements too.
type dmlLog struct {
	j    *Journal
	t    *storage.Table
	redo bool
	st   *stats.Registry // non-nil when the target's statistics are tracked
}

// dmlLogFor classifies the statement's target once.
func (db *DB) dmlLogFor(ctx *execCtx, t *storage.Table) dmlLog {
	l := dmlLog{j: ctx.journal, t: t}
	durable := !t.Temporary && db.Cat.Table(t.Name) == t
	if l.j != nil && durable {
		l.redo = true
	}
	if durable {
		l.st = db.TabStats // nil when statistics are disabled
	}
	return l
}

// needsOld reports whether update sites must snapshot the pre-mutation
// row: for the undo image, or for the statistics delta.
func (l dmlLog) needsOld() bool { return l.j != nil || l.st != nil }

// insert journals a row just appended by Table.Insert (it must be the
// last row).
func (l dmlLog) insert(row []types.Value) {
	l.st.NoteInsert(l.t, row)
	if l.j == nil {
		return
	}
	t := l.t
	st := l.st
	idx := len(t.Rows) - 1
	var redo *storage.Effect
	if l.redo {
		redo = &storage.Effect{Kind: storage.EffInsert, Name: t.Name, Row: cloneRow(row)}
	}
	l.j.record(func() {
		// row is the stored slice itself; any later same-statement update
		// has already been copied back (undo runs newest-first), so it
		// holds the as-inserted values again.
		st.RevertInsert(t, row)
		t.Rows = append(t.Rows[:idx], t.Rows[idx+1:]...)
		t.Bump()
	}, redo)
}

// update journals an in-place row mutation. old is a pre-mutation copy;
// the undo writes it back into the row slice itself (not the table
// slot), so every alias of the row — scopes, snapshots of t.Rows taken
// by later statements — sees the restoration.
func (l dmlLog) update(idx int, row, old []types.Value) {
	l.st.NoteUpdate(l.t, old, row)
	if l.j == nil {
		return
	}
	t := l.t
	st := l.st
	var redo *storage.Effect
	if l.redo {
		redo = &storage.Effect{Kind: storage.EffUpdate, Name: t.Name, Index: idx, Row: cloneRow(row)}
	}
	l.j.record(func() {
		// row still holds this update's new values here: undo entries run
		// newest-first, so any later update of the same row has already
		// been copied back.
		st.RevertUpdate(t, old, row)
		copy(row, old)
		t.Bump()
	}, redo)
}

// deleteRows journals a whole-statement deletion: oldRows is the
// pre-statement row slice (restored wholesale on undo — the kept slice
// is freshly built, so the original backing array is intact), and
// removed holds the deleted ordinals in ascending order. Redo effects
// are logged in DESCENDING index order, so a replay that splices one
// row at a time reproduces the deletion exactly.
func (l dmlLog) deleteRows(oldRows [][]types.Value, removed []int) {
	if len(removed) == 0 {
		return
	}
	for _, i := range removed {
		l.st.NoteDelete(l.t, oldRows[i])
	}
	if l.j == nil {
		return
	}
	t := l.t
	st := l.st
	l.j.record(func() {
		for _, i := range removed {
			st.RevertDelete(t, oldRows[i])
		}
		t.Rows = oldRows
		t.Bump()
	}, nil)
	if !l.redo {
		return
	}
	for i := len(removed) - 1; i >= 0; i-- {
		l.j.record(nil, &storage.Effect{Kind: storage.EffDelete, Name: t.Name, Index: removed[i]})
	}
}

// cloneRow copies a row's value slice (values themselves are immutable
// scalars in stored tables).
func cloneRow(row []types.Value) []types.Value {
	out := make([]types.Value, len(row))
	copy(out, row)
	return out
}

// tableEffect renders a table's schema as a put-table effect (schema
// only — rows follow as insert effects).
func tableEffect(t *storage.Table) *storage.Effect {
	eff := &storage.Effect{
		Kind:            storage.EffPutTable,
		Name:            t.Name,
		ValidTime:       t.ValidTime,
		TransactionTime: t.TransactionTime,
	}
	for _, c := range t.Schema.Cols {
		eff.Cols = append(eff.Cols, storage.EffectColumn{
			Name:   c.Name,
			Base:   c.Type.Base,
			Length: c.Type.Length,
			Scale:  c.Type.Scale,
		})
	}
	return eff
}

// journalPutTable journals a table creation or replacement: undo
// restores the previous binding (or drops), redo re-creates the schema
// and re-inserts the rows the table already carries (CREATE TABLE AS
// ... WITH DATA, ALTER ADD VALIDTIME). Row values are logged as
// computed, so replay never re-evaluates the defining query.
func journalPutTable(j *Journal, cat *storage.Catalog, old, t *storage.Table) {
	if j == nil {
		return
	}
	j.record(func() {
		if old != nil {
			cat.PutTable(old)
		} else {
			cat.DropTable(t.Name)
		}
	}, nil)
	if t.Temporary {
		return
	}
	j.record(nil, tableEffect(t))
	for _, row := range t.Rows {
		j.record(nil, &storage.Effect{Kind: storage.EffInsert, Name: t.Name, Row: cloneRow(row)})
	}
}

// journalDropTable journals a table drop.
func journalDropTable(j *Journal, cat *storage.Catalog, old *storage.Table) {
	if j == nil || old == nil {
		return
	}
	var redo *storage.Effect
	if !old.Temporary {
		redo = &storage.Effect{Kind: storage.EffDropTable, Name: old.Name}
	}
	j.record(func() { cat.PutTable(old) }, redo)
}

// journalPutView journals a view registration; the redo carries the
// rendered CREATE VIEW source, parsed back on replay.
func journalPutView(j *Journal, cat *storage.Catalog, old *storage.View, s *sqlast.CreateViewStmt) {
	if j == nil {
		return
	}
	name := s.Name
	j.record(func() {
		if old != nil {
			cat.PutView(old)
		} else {
			cat.DropView(name)
		}
	}, &storage.Effect{Kind: storage.EffPutView, Name: name, SQL: s.SQL()})
}

// journalDropView journals a view drop.
func journalDropView(j *Journal, cat *storage.Catalog, old *storage.View) {
	if j == nil || old == nil {
		return
	}
	j.record(func() { cat.PutView(old) },
		&storage.Effect{Kind: storage.EffDropView, Name: old.Name})
}

// journalPutRoutine journals a routine registration; the redo carries
// the rendered definition.
func journalPutRoutine(j *Journal, cat *storage.Catalog, old *storage.Routine, name, sql string) {
	if j == nil {
		return
	}
	j.record(func() {
		if old != nil {
			cat.PutRoutine(old)
		} else {
			cat.DropRoutine(name)
		}
	}, &storage.Effect{Kind: storage.EffPutRoutine, Name: name, SQL: sql})
}

// journalDropRoutine journals a routine drop.
func journalDropRoutine(j *Journal, cat *storage.Catalog, old *storage.Routine) {
	if j == nil || old == nil {
		return
	}
	j.record(func() { cat.PutRoutine(old) },
		&storage.Effect{Kind: storage.EffDropRoutine, Name: old.Name})
}
