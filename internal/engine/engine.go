// Package engine implements the conventional SQL/PSM execution engine
// that transformed (conventional) statements run on: a tree-walking
// relational evaluator with predicate pushdown and hash joins, DML and
// DDL execution, and a PSM interpreter for stored routines (compound
// blocks, control statements, cursors, handlers, and the table-valued
// variables per-statement slicing relies on).
//
// The engine deliberately speaks only conventional SQL/PSM: temporal
// statement modifiers are rejected here and must be removed by the
// stratum (internal/core) first, exactly as a stratum sits above the
// query evaluator in the paper's architecture (§III).
package engine

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"taupsm/internal/obs"
	"taupsm/internal/proc"
	"taupsm/internal/sqlast"
	"taupsm/internal/sqlparser"
	"taupsm/internal/stats"
	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// Stats counts engine work, letting benchmarks and tests observe the
// behavioural difference between slicing strategies (e.g. MAX invoking
// a routine once per constant period versus PERST invoking it once per
// satisfying tuple).
type Stats struct {
	RoutineCalls    int64 // stored routine invocations (logical; includes memo hits)
	RoutineMemoHits int64 // invocations answered from the function-result memo
	RowsScanned     int64 // base-table rows visited by scans and lookups
	RowsReturned    int64 // rows produced by executed query statements
	Statements      int64 // statements executed (including PSM statements)
	LogWrites       int64 // rows appended to tables (models DBMS log pressure)
	IntervalProbes  int64 // temporal overlap-index stab queries answered
	PlanReuseHits   int64 // source relations served from a shared prepared plan
	SweepJoins      int64 // overlap joins answered by the sweep-line algorithm
}

// Reset zeroes the counters.
func (s *Stats) Reset() { *s = Stats{} }

// DB is an in-memory SQL/PSM database.
type DB struct {
	Cat   *storage.Catalog
	Stats Stats

	// Tracer, when non-nil, receives an "engine.query" span per
	// executed query statement and an "engine.routine" span per stored
	// routine invocation (one per evaluated fragment under MAX
	// slicing). Hot paths nil-check it first, so the disabled cost is
	// one pointer comparison.
	Tracer obs.Tracer

	// Trace is the span context engine spans attach under: spans carry
	// Trace.Trace as their trace ID and Trace.Span as their parent. The
	// stratum sets it per session (per statement, or per parallel
	// fragment worker); the zero value emits root spans, preserving the
	// pre-trace behavior for direct engine use.
	Trace obs.SpanContext

	// Metrics, when set alongside Tracer, additionally receives
	// routine-invocation latencies in the engine.routine_ns histogram.
	// The stratum shares its registry here.
	Metrics *obs.Metrics

	// Proc, when set on a session, is the in-flight process entry of
	// the user statement this session executes: the engine mirrors
	// batched progress counters (rows scanned, rows returned, routine
	// calls) into it and polls its kill switch at statement, scan and
	// routine boundaries for cooperative cancellation. Parallel
	// fragment workers inherit the same entry through NewSession, so
	// their progress aggregates into one set of counters. Every mirror
	// is nil-receiver safe; nil disables tracking.
	Proc *proc.Process

	// Procs is the shared in-flight process registry backing the
	// tau_stat_activity system table (NewSession copies the pointer).
	Procs *proc.Registry

	// TabStats is the table and workload statistics registry shared by
	// every session of this database (NewSession copies the pointer).
	// DML keeps the per-table temporal distributions incrementally
	// current through the journal hooks; stored-routine invocations are
	// profiled by name. Nil disables statistics maintenance — every
	// registry method is nil-receiver safe.
	TabStats *stats.Registry

	// routineNS caches the engine.routine_ns histogram handle.
	routineNS *obs.Histogram

	// Now is the engine's CURRENT_DATE in epoch days. Fixing it makes
	// current-semantics results deterministic in tests.
	Now int64

	// MaxRecursion bounds routine call nesting.
	MaxRecursion int

	// LogWriteCost simulates per-row transaction-log overhead
	// (nanoseconds of busy work per inserted row). The paper observed
	// DB2's transaction log dominating PERST cursor-per-period queries
	// (§VII-C); a non-zero cost reproduces that effect.
	LogWriteCost time.Duration

	// DisableCostOrdering turns off the evaluation of cheap predicates
	// before stored-routine invocations. Ablation switch: with it on,
	// MAX-sliced queries call routines once per *candidate* tuple
	// instead of once per satisfying tuple.
	DisableCostOrdering bool

	// DisableIndexes turns off the lazily built hash and interval
	// indexes, forcing full scans for equality and overlap lookups.
	// Ablation switch.
	DisableIndexes bool

	// DisableFnMemo turns off per-statement memoization of pure
	// stored-function results (see fnmemo.go). Ablation switch.
	DisableFnMemo bool

	// DisablePlanReuse turns off the shared prepared-plan caches (source
	// relations, join hash tables, sorted interval spans) of
	// ExecPreparedWithTables, forcing every fragment execution to redo
	// its per-statement work. Ablation switch.
	DisablePlanReuse bool

	// DisableSweepJoin turns off the sweep-line overlap join, keeping
	// the per-row interval-index probe (or nested loop) path. Ablation
	// switch.
	DisableSweepJoin bool

	// plans caches the analysis phase of SELECT evaluation, shared by
	// all sessions of this database (see selPlan).
	plans *planCache

	// fnPure caches routine-purity verdicts, shared by all sessions.
	fnPure *sync.Map

	// Journal, when set on a session, collects the undo/redo records of
	// every statement the session executes, letting the stratum treat a
	// whole user statement — which a sequenced translation expands into
	// several engine statements — as one atomic, loggable unit. When
	// nil, each top-level statement still gets a private journal so a
	// failed statement rolls back its partial writes.
	Journal *Journal

	// writeGen counts DML/DDL executed through this session; the
	// function-result memo wipes itself when it changes.
	writeGen int64
}

// New returns an empty database with CURRENT_DATE set to the real
// current date.
func New() *DB {
	now := time.Now().UTC()
	return &DB{
		Cat:          storage.NewCatalog(),
		Now:          types.CivilToDays(now.Year(), int(now.Month()), now.Day()),
		MaxRecursion: 64,
		plans:        newPlanCache(),
		fnPure:       &sync.Map{},
	}
}

// Result is the outcome of executing one statement.
type Result struct {
	Cols     []string
	Rows     [][]types.Value
	Affected int
}

// ExecScript parses and executes a semicolon-separated script,
// returning the result of the last statement.
func (db *DB) ExecScript(src string) (*Result, error) {
	stmts, err := sqlparser.ParseScript(src)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, s := range stmts {
		last, err = db.ExecStmt(s)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// ExecStmt executes one (conventional) statement.
func (db *DB) ExecStmt(stmt sqlast.Stmt) (*Result, error) {
	ctx := &execCtx{db: db, memo: db.newFnMemo(), journal: db.Journal}
	return db.execTop(ctx, stmt)
}

// execTop runs one top-level statement with statement atomicity: on
// error, every change journaled after entry is undone, so a statement
// failing mid-scan (an UPDATE whose SET expression divides by zero on
// the Nth row, say) leaves no partial writes behind.
func (db *DB) execTop(ctx *execCtx, stmt sqlast.Stmt) (*Result, error) {
	if ctx.journal == nil {
		ctx.journal = NewJournal()
	}
	m := ctx.journal.mark()
	res, err := db.exec(ctx, stmt)
	if err != nil {
		ctx.journal.rollbackTo(m)
	}
	return res, err
}

// newFnMemo returns a fresh per-statement function-result memo, or nil
// when memoization is off (ablation, or detailed mode — spans must
// correspond to real executions).
func (db *DB) newFnMemo() *fnMemoState {
	if db.DisableFnMemo || db.Tracer != nil {
		return nil
	}
	return &fnMemoState{gen: db.writeGen}
}

func (db *DB) exec(ctx *execCtx, stmt sqlast.Stmt) (*Result, error) {
	if err := db.Proc.Killed(); err != nil {
		return nil, err
	}
	if db.Proc != nil {
		// Live journaled-change count: the user statement's changes
		// pending WAL commit, visible mid-statement in the process list.
		db.Proc.SetWALPending(int64(ctx.journal.Len()))
	}
	db.Stats.Statements++
	switch stmt.(type) {
	case *sqlast.InsertStmt, *sqlast.UpdateStmt, *sqlast.DeleteStmt,
		*sqlast.CreateTableStmt, *sqlast.DropTableStmt,
		*sqlast.CreateViewStmt, *sqlast.DropViewStmt,
		*sqlast.AlterAddValidTime, *sqlast.CreateFunctionStmt,
		*sqlast.CreateProcedureStmt, *sqlast.DropRoutineStmt:
		db.writeGen++
	}
	switch s := stmt.(type) {
	case *sqlast.TemporalStmt:
		if s.Mod == sqlast.ModCurrent {
			return db.exec(ctx, s.Body)
		}
		return nil, fmt.Errorf("engine: temporal statement modifier %s reached the conventional engine; translate it with the stratum first", s.Mod)
	case *sqlast.SelectStmt:
		return db.execQuery(ctx, s)
	case *sqlast.SetOpExpr:
		return db.execQuery(ctx, s)
	case *sqlast.ExplainStmt:
		return nil, fmt.Errorf("engine: EXPLAIN reached the conventional engine; it is a stratum-level statement")
	case *sqlast.AnalyzeStmt:
		return nil, fmt.Errorf("engine: ANALYZE reached the conventional engine; it is a stratum-level statement")
	case *sqlast.InsertStmt:
		return db.execInsert(ctx, s)
	case *sqlast.UpdateStmt:
		return db.execUpdate(ctx, s)
	case *sqlast.DeleteStmt:
		return db.execDelete(ctx, s)
	case *sqlast.CreateTableStmt:
		return db.execCreateTable(ctx, s)
	case *sqlast.DropTableStmt:
		// Inside a routine, a temporary table the routine created is
		// bound in its variable frame, not the shared catalog; dropping
		// it just removes the binding. Collection variables are not
		// eligible, and anything else falls through to the catalog.
		if ctx.depth > 0 && ctx.vars != nil && ctx.vars.dropTableVar(s.Name) {
			return &Result{}, nil
		}
		old := db.Cat.Table(s.Name)
		if !db.Cat.DropTable(s.Name) && !s.IfExists {
			return nil, fmt.Errorf("table %s does not exist", s.Name)
		}
		journalDropTable(ctx.journal, db.Cat, old)
		if old != nil && !old.Temporary {
			db.statsDrop(ctx.journal, old.Name)
		}
		return &Result{}, nil
	case *sqlast.CreateViewStmt:
		if s.Mod != sqlast.ModCurrent {
			return nil, fmt.Errorf("engine: temporal view %s reached the conventional engine", s.Name)
		}
		old := db.Cat.View(s.Name)
		db.Cat.PutView(&storage.View{Name: s.Name, Cols: s.Cols, Query: s.Query, Mod: s.Mod})
		journalPutView(ctx.journal, db.Cat, old, s)
		return &Result{}, nil
	case *sqlast.DropViewStmt:
		old := db.Cat.View(s.Name)
		if !db.Cat.DropView(s.Name) && !s.IfExists {
			return nil, fmt.Errorf("view %s does not exist", s.Name)
		}
		journalDropView(ctx.journal, db.Cat, old)
		return &Result{}, nil
	case *sqlast.AlterAddValidTime:
		return db.execAddValidTime(ctx, s)
	case *sqlast.CreateFunctionStmt:
		old := db.Cat.Routine(s.Name)
		if old != nil && !s.Replace {
			return nil, fmt.Errorf("routine %s already exists", s.Name)
		}
		sql := s.SQL()
		if old != nil && old.Kind == storage.KindFunction && old.Fn.SQL() == sql {
			// Identical re-registration is a no-op (Catalog.PutRoutine
			// would not bump the version either); don't journal or log it.
			return &Result{}, nil
		}
		db.Cat.PutRoutine(&storage.Routine{Kind: storage.KindFunction, Name: s.Name, Fn: s})
		journalPutRoutine(ctx.journal, db.Cat, old, s.Name, sql)
		return &Result{}, nil
	case *sqlast.CreateProcedureStmt:
		old := db.Cat.Routine(s.Name)
		if old != nil && !s.Replace {
			return nil, fmt.Errorf("routine %s already exists", s.Name)
		}
		sql := s.SQL()
		if old != nil && old.Kind == storage.KindProcedure && old.Proc.SQL() == sql {
			return &Result{}, nil
		}
		db.Cat.PutRoutine(&storage.Routine{Kind: storage.KindProcedure, Name: s.Name, Proc: s})
		journalPutRoutine(ctx.journal, db.Cat, old, s.Name, sql)
		return &Result{}, nil
	case *sqlast.DropRoutineStmt:
		old := db.Cat.Routine(s.Name)
		if !db.Cat.DropRoutine(s.Name) && !s.IfExists {
			return nil, fmt.Errorf("routine %s does not exist", s.Name)
		}
		journalDropRoutine(ctx.journal, db.Cat, old)
		return &Result{}, nil
	case *sqlast.CallStmt:
		return db.execCall(ctx, s)
	case *sqlast.CompoundStmt, *sqlast.SetStmt, *sqlast.IfStmt, *sqlast.CaseStmt,
		*sqlast.WhileStmt, *sqlast.RepeatStmt, *sqlast.LoopStmt, *sqlast.ForStmt,
		*sqlast.LeaveStmt, *sqlast.IterateStmt, *sqlast.ReturnStmt,
		*sqlast.OpenStmt, *sqlast.FetchStmt, *sqlast.CloseStmt, *sqlast.SignalStmt:
		if ctx.vars == nil {
			// Anonymous block executed at top level.
			if _, ok := stmt.(*sqlast.CompoundStmt); ok {
				ctx2 := &execCtx{db: db, vars: newFrame(nil), memo: ctx.memo, journal: ctx.journal, prep: ctx.prep}
				if err := db.execPSM(ctx2, stmt); err != nil {
					return nil, err
				}
				return &Result{}, nil
			}
			return nil, fmt.Errorf("engine: PSM statement %T outside a routine body", stmt)
		}
		if err := db.execPSM(ctx, stmt); err != nil {
			return nil, err
		}
		return &Result{}, nil
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
}

func (db *DB) execCreateTable(ctx *execCtx, s *sqlast.CreateTableStmt) (*Result, error) {
	// A temporary table created inside a routine is frame-local: each
	// invocation gets a private instance bound in the variable frame,
	// invisible to the shared catalog. This keeps routines that stage
	// intermediate results in temp tables safe to run concurrently
	// (the parallel-safety analysis discounts such writes) and scopes
	// the table's lifetime to the call.
	frameLocal := s.Temporary && ctx.depth > 0 && ctx.vars != nil
	if frameLocal && ctx.vars.getTable(s.Name) != nil {
		return nil, fmt.Errorf("table %s already exists", s.Name)
	}
	if db.Cat.Table(s.Name) != nil {
		return nil, fmt.Errorf("table %s already exists", s.Name)
	}
	var cols []storage.Column
	var rows [][]types.Value
	switch {
	case len(s.Cols) > 0:
		for _, c := range s.Cols {
			cols = append(cols, storage.Column{Name: c.Name, Type: c.Type})
		}
	case s.AsQuery != nil:
		res, err := db.evalQuery(ctx, s.AsQuery)
		if err != nil {
			return nil, err
		}
		for i, name := range res.Cols {
			k := types.KindString
			for _, r := range res.Rows {
				if !r[i].IsNull() {
					k = r[i].Kind
					break
				}
			}
			cols = append(cols, storage.Column{Name: name, Type: kindToType(k)})
		}
		if s.WithData {
			rows = res.Rows
		}
	}
	if s.ValidTime || s.TransactionTime {
		cols = append(cols,
			storage.Column{Name: "begin_time", Type: sqlast.TypeName{Base: "DATE"}},
			storage.Column{Name: "end_time", Type: sqlast.TypeName{Base: "DATE"}})
	}
	if s.ValidTime && s.TransactionTime {
		// Bitemporal layout: the valid-time pair above plus the
		// transaction-time pair as the final two columns.
		cols = append(cols,
			storage.Column{Name: "tt_begin_time", Type: sqlast.TypeName{Base: "DATE"}},
			storage.Column{Name: "tt_end_time", Type: sqlast.TypeName{Base: "DATE"}})
	}
	t := storage.NewTable(s.Name, storage.NewSchema(cols))
	t.ValidTime = s.ValidTime
	t.TransactionTime = s.TransactionTime
	t.Temporary = s.Temporary
	t.Rows = rows
	t.Bump()
	if frameLocal {
		ctx.vars.setTableVar(strings.ToLower(s.Name), t)
		return &Result{Affected: len(rows)}, nil
	}
	db.Cat.PutTable(t)
	journalPutTable(ctx.journal, db.Cat, nil, t)
	if !t.Temporary {
		db.statsReset(ctx.journal, t.Name, false)
	}
	return &Result{Affected: len(rows)}, nil
}

func (db *DB) execAddValidTime(ctx *execCtx, s *sqlast.AlterAddValidTime) (*Result, error) {
	t := db.Cat.Table(s.Table)
	if t == nil {
		return nil, fmt.Errorf("table %s does not exist", s.Table)
	}
	if t.ValidTime && s.Transaction && !t.TransactionTime {
		// Migrate a valid-time table to bitemporal: append the
		// transaction-time pair; every existing version becomes believed
		// from now on.
		cols := append(append([]storage.Column{}, t.Schema.Cols...),
			storage.Column{Name: "tt_begin_time", Type: sqlast.TypeName{Base: "DATE"}},
			storage.Column{Name: "tt_end_time", Type: sqlast.TypeName{Base: "DATE"}})
		nt := storage.NewTable(t.Name, storage.NewSchema(cols))
		nt.ValidTime = true
		nt.TransactionTime = true
		nt.Temporary = t.Temporary
		for _, r := range t.Rows {
			nr := append(append([]types.Value{}, r...), types.NewDate(db.Now), types.NewDate(types.Forever))
			nt.Rows = append(nt.Rows, nr)
		}
		nt.Bump()
		db.Cat.PutTable(nt)
		journalPutTable(ctx.journal, db.Cat, t, nt)
		if !nt.Temporary {
			db.statsReset(ctx.journal, nt.Name, true)
		}
		return &Result{Affected: len(nt.Rows)}, nil
	}
	if t.ValidTime || t.TransactionTime {
		return nil, fmt.Errorf("table %s already has temporal support", s.Table)
	}
	cols := append(append([]storage.Column{}, t.Schema.Cols...),
		storage.Column{Name: "begin_time", Type: sqlast.TypeName{Base: "DATE"}},
		storage.Column{Name: "end_time", Type: sqlast.TypeName{Base: "DATE"}})
	nt := storage.NewTable(t.Name, storage.NewSchema(cols))
	nt.ValidTime = !s.Transaction
	nt.TransactionTime = s.Transaction
	nt.Temporary = t.Temporary
	for _, r := range t.Rows {
		nr := append(append([]types.Value{}, r...), types.NewDate(db.Now), types.NewDate(types.Forever))
		nt.Rows = append(nt.Rows, nr)
	}
	nt.Bump()
	db.Cat.PutTable(nt)
	journalPutTable(ctx.journal, db.Cat, t, nt)
	if !nt.Temporary {
		db.statsReset(ctx.journal, nt.Name, true)
	}
	return &Result{Affected: len(nt.Rows)}, nil
}

func kindToType(k types.Kind) sqlast.TypeName {
	switch k {
	case types.KindInt:
		return sqlast.TypeName{Base: "INTEGER"}
	case types.KindFloat:
		return sqlast.TypeName{Base: "FLOAT"}
	case types.KindDate:
		return sqlast.TypeName{Base: "DATE"}
	case types.KindBool:
		return sqlast.TypeName{Base: "BOOLEAN"}
	default:
		return sqlast.TypeName{Base: "VARCHAR"}
	}
}

// execQuery evaluates a query statement, counting rows returned and
// emitting an "engine.query" span when a tracer is attached.
func (db *DB) execQuery(ctx *execCtx, q sqlast.QueryExpr) (*Result, error) {
	if db.Tracer == nil {
		res, err := db.evalQuery(ctx, q)
		if err == nil {
			db.Stats.RowsReturned += int64(len(res.Rows))
			db.Proc.AddRows(int64(len(res.Rows)))
		}
		return res, err
	}
	start := time.Now()
	res, err := db.evalQuery(ctx, q)
	d := time.Since(start)
	rows := 0
	if err == nil {
		rows = len(res.Rows)
		db.Stats.RowsReturned += int64(rows)
		db.Proc.AddRows(int64(rows))
	}
	db.Tracer.Span(obs.Span{Name: "engine.query", Start: start, Dur: d,
		Trace: db.Trace.Trace, ID: obs.NewSpanID(), Parent: db.Trace.Span,
		Attrs: []obs.Attr{obs.AInt("rows", int64(rows))}})
	return res, err
}

// traceRoutine times one stored-routine invocation when a tracer is
// attached; it returns nil (for a one-branch fast path) otherwise. The
// per-invocation latency also feeds the engine.routine_ns histogram —
// under MAX slicing that is the per-fragment evaluation timing, one
// invocation per (satisfying tuple, constant period).
func (db *DB) traceRoutine(name string) func() {
	if db.Tracer == nil {
		return nil
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		db.Tracer.Span(obs.Span{Name: "engine.routine", Start: start, Dur: d,
			Trace: db.Trace.Trace, ID: obs.NewSpanID(), Parent: db.Trace.Span,
			Attrs: []obs.Attr{obs.A("routine", name)}})
		if db.Metrics != nil {
			if db.routineNS == nil {
				db.routineNS = db.Metrics.Histogram("engine.routine_ns")
			}
			db.routineNS.Record(d)
		}
		db.TabStats.NoteRoutineTime(name, d)
	}
}

// noteRoutineCall counts one logical stored-routine invocation in both
// the session's statement statistics and the shared workload profile.
func (db *DB) noteRoutineCall(name string) {
	db.Stats.RoutineCalls++
	db.Proc.AddRoutineCalls(1)
	db.TabStats.NoteRoutineCall(name)
}

// statsReset installs fresh statistics for a created or replaced table
// and journals the restoration of the previous entry, so DDL that rolls
// back leaves the registry exactly as it found it. preserve keeps the
// previous entry's DML history (ALTER ADD VALIDTIME replaces the table
// object, not the table).
func (db *DB) statsReset(j *Journal, name string, preserve bool) {
	if db.TabStats == nil {
		return
	}
	reg := db.TabStats
	prev := reg.Reset(name, preserve)
	j.record(func() { reg.Restore(name, prev) }, nil)
}

// statsDrop removes a dropped table's statistics entry, journaling its
// restoration.
func (db *DB) statsDrop(j *Journal, name string) {
	if db.TabStats == nil {
		return
	}
	reg := db.TabStats
	prev := reg.Drop(name)
	j.record(func() { reg.Restore(name, prev) }, nil)
}

// EvalConstExpr evaluates an expression with no row or variable
// context (literals, CURRENT_DATE, arithmetic); the stratum uses it to
// resolve temporal-context bounds.
func (db *DB) EvalConstExpr(e sqlast.Expr) (types.Value, error) {
	return db.evalExpr(&execCtx{db: db}, e)
}

// logDelay simulates transaction-log write cost for inserted rows.
func (db *DB) logDelay(nrows int) {
	db.Stats.LogWrites += int64(nrows)
	if db.LogWriteCost > 0 && nrows > 0 {
		deadline := time.Now().Add(time.Duration(nrows) * db.LogWriteCost)
		for time.Now().Before(deadline) {
		}
	}
}
