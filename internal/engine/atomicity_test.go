package engine

import (
	"fmt"
	"strings"
	"testing"
)

// dumpTable renders a table's rows for before/after comparison.
func dumpTable(t *testing.T, db *DB, name string) string {
	t.Helper()
	tab := db.Cat.Table(name)
	if tab == nil {
		t.Fatalf("table %s missing", name)
	}
	var b strings.Builder
	for _, row := range tab.Rows {
		fmt.Fprintf(&b, "%v\n", row)
	}
	return b.String()
}

// An UPDATE that fails mid-scan (division by zero on the third row,
// after two rows were already rewritten) must leave the table exactly
// as it was: per-statement atomicity, not partial mutation.
func TestUpdateFailureMidScanRollsBack(t *testing.T) {
	db := New()
	mustExec(t, db, `
		CREATE TABLE acct (id INTEGER, bal INTEGER);
		INSERT INTO acct VALUES (1, 10), (2, 20), (3, 0), (4, 40);
	`)
	before := dumpTable(t, db, "acct")

	if _, err := db.ExecScript(`UPDATE acct SET bal = 100 / bal`); err == nil {
		t.Fatal("UPDATE over a zero divisor succeeded")
	}
	if after := dumpTable(t, db, "acct"); after != before {
		t.Fatalf("failed UPDATE left partial changes:\n--- before\n%s--- after\n%s", before, after)
	}
}

// A failing INSERT of several rows keeps none of them.
func TestInsertFailureMidValuesRollsBack(t *testing.T) {
	db := New()
	mustExec(t, db, `
		CREATE TABLE acct (id INTEGER, bal INTEGER);
		INSERT INTO acct VALUES (1, 10);
	`)
	before := dumpTable(t, db, "acct")

	if _, err := db.ExecScript(`INSERT INTO acct VALUES (2, 20), (3, 1 / 0)`); err == nil {
		t.Fatal("INSERT with a zero divisor succeeded")
	}
	if after := dumpTable(t, db, "acct"); after != before {
		t.Fatalf("failed INSERT left rows behind:\n--- before\n%s--- after\n%s", before, after)
	}
}

// A procedure that deletes, inserts, and then fails must undo all of
// its statements' work: the journal spans the whole CALL.
func TestProcedureFailureRollsBackAllStatements(t *testing.T) {
	db := New()
	mustExec(t, db, `
		CREATE TABLE acct (id INTEGER, bal INTEGER);
		INSERT INTO acct VALUES (1, 10), (2, 20);
		CREATE PROCEDURE churn (IN d INTEGER)
		MODIFIES SQL DATA
		LANGUAGE SQL
		BEGIN
		  DELETE FROM acct WHERE id = 1;
		  INSERT INTO acct VALUES (9, 90);
		  UPDATE acct SET bal = bal / d;
		END;
	`)
	before := dumpTable(t, db, "acct")

	if _, err := db.ExecScript(`CALL churn(0)`); err == nil {
		t.Fatal("CALL churn(0) succeeded")
	}
	if after := dumpTable(t, db, "acct"); after != before {
		t.Fatalf("failed CALL left partial changes:\n--- before\n%s--- after\n%s", before, after)
	}

	// And the same procedure with a valid divisor commits everything.
	mustExec(t, db, `CALL churn(2)`)
	after := dumpTable(t, db, "acct")
	if after == before || !strings.Contains(after, "9") {
		t.Fatalf("successful CALL did not apply: %s", after)
	}
}

// A failed CREATE-and-populate sequence must not leave the catalog
// holding half-built DDL: journaled DDL undo drops the new table.
func TestDDLFailureRollsBack(t *testing.T) {
	db := New()
	mustExec(t, db, `
		CREATE TABLE src (id INTEGER);
		INSERT INTO src VALUES (1), (2);
		CREATE PROCEDURE build ()
		MODIFIES SQL DATA
		LANGUAGE SQL
		BEGIN
		  CREATE TABLE built (id INTEGER);
		  INSERT INTO built SELECT 1 / (id - 2) FROM src;
		END;
	`)
	if _, err := db.ExecScript(`CALL build()`); err == nil {
		t.Fatal("CALL build() succeeded")
	}
	if db.Cat.Table("built") != nil {
		t.Fatal("failed CALL left the new table in the catalog")
	}
}
