package engine

import (
	"fmt"
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// ---------- variable frames ----------

// varFrame is one lexical scope of PSM variables: scalar values,
// table-valued (collection) variables, cursors, and condition handlers.
// Frames chain through parent within a routine; routine boundaries
// start a fresh chain.
//
// Variables live in small association slices, not maps: routines
// declare a handful of names but are called once per candidate tuple
// under MAX slicing, and the per-call map allocations dominated the
// engine's allocation profile. Names are stored lowercase; a linear
// scan over ≤8 entries beats a map probe anyway.
type varFrame struct {
	parent   *varFrame
	entries  []varEntry
	tabNames []string
	tabs     []*storage.Table
	curNames []string
	curs     []*cursor
	handlers []*sqlast.HandlerDecl
}

// varEntry is one scalar variable: its value and declared type. A
// name can carry a type without a value (collection parameters get a
// declared type while their data lives in the table list).
type varEntry struct {
	name   string // lowercase
	val    types.Value
	typ    sqlast.TypeName
	hasVal bool
	hasTyp bool
}

func newFrame(parent *varFrame) *varFrame {
	return &varFrame{parent: parent}
}

func (f *varFrame) find(k string) *varEntry {
	for i := range f.entries {
		if f.entries[i].name == k {
			return &f.entries[i]
		}
	}
	return nil
}

func (f *varFrame) setVal(key string, v types.Value) {
	if e := f.find(key); e != nil {
		e.val, e.hasVal = v, true
		return
	}
	f.entries = append(f.entries, varEntry{name: key, val: v, hasVal: true})
}

func (f *varFrame) setType(key string, t sqlast.TypeName) {
	if e := f.find(key); e != nil {
		e.typ, e.hasTyp = t, true
		return
	}
	f.entries = append(f.entries, varEntry{name: key, typ: t, hasTyp: true})
}

func (f *varFrame) setTableVar(key string, t *storage.Table) {
	for i, n := range f.tabNames {
		if n == key {
			f.tabs[i] = t
			return
		}
	}
	f.tabNames = append(f.tabNames, key)
	f.tabs = append(f.tabs, t)
}

func (f *varFrame) setCursor(key string, c *cursor) {
	for i, n := range f.curNames {
		if n == key {
			f.curs[i] = c
			return
		}
	}
	f.curNames = append(f.curNames, key)
	f.curs = append(f.curs, c)
}

func (f *varFrame) get(name string) (types.Value, bool) {
	k := strings.ToLower(name)
	for fr := f; fr != nil; fr = fr.parent {
		if e := fr.find(k); e != nil && e.hasVal {
			return e.val, true
		}
		for i, n := range fr.tabNames {
			if n == k {
				return types.NewTable(fr.tabs[i]), true
			}
		}
	}
	return types.Null, false
}

func (f *varFrame) getTable(name string) *storage.Table {
	k := strings.ToLower(name)
	for fr := f; fr != nil; fr = fr.parent {
		for i, n := range fr.tabNames {
			if n == k {
				return fr.tabs[i]
			}
		}
	}
	return nil
}

// dropTableVar removes a frame-local binding to a temporary table,
// walking the chain. Only bindings whose table is marked Temporary are
// eligible: collection variables live in the same table list, but DROP
// TABLE must not silently consume them.
func (f *varFrame) dropTableVar(name string) bool {
	k := strings.ToLower(name)
	for fr := f; fr != nil; fr = fr.parent {
		for i, n := range fr.tabNames {
			if n == k {
				if fr.tabs[i] == nil || !fr.tabs[i].Temporary {
					return false
				}
				fr.tabNames = append(fr.tabNames[:i], fr.tabNames[i+1:]...)
				fr.tabs = append(fr.tabs[:i], fr.tabs[i+1:]...)
				return true
			}
		}
	}
	return false
}

func (f *varFrame) set(name string, v types.Value) error {
	k := strings.ToLower(name)
	for fr := f; fr != nil; fr = fr.parent {
		if e := fr.find(k); e != nil && e.hasVal {
			if e.hasTyp {
				cv, err := coerce(v, e.typ)
				if err != nil {
					return err
				}
				v = cv
			}
			e.val = v
			return nil
		}
		for i, n := range fr.tabNames {
			if n == k {
				if v.Kind == types.KindTable {
					if t, ok := v.Aux.(*storage.Table); ok {
						fr.tabs[i] = t
						return nil
					}
				}
				return fmt.Errorf("cannot assign a scalar to table-valued variable %s", name)
			}
		}
	}
	return fmt.Errorf("variable %s is not declared", name)
}

func (f *varFrame) getCursor(name string) *cursor {
	k := strings.ToLower(name)
	for fr := f; fr != nil; fr = fr.parent {
		for i, n := range fr.curNames {
			if n == k {
				return fr.curs[i]
			}
		}
	}
	return nil
}

// cursor is a declared cursor: its query and, when open, the
// materialized result and position.
type cursor struct {
	query sqlast.Stmt
	res   *Result
	pos   int
	open  bool
}

// ---------- control-flow signals ----------

type returnSignal struct{ val types.Value }

func (returnSignal) Error() string { return "RETURN outside a function" }

type leaveSignal struct{ label string }

func (s leaveSignal) Error() string { return "no enclosing statement labeled " + s.label }

type iterateSignal struct{ label string }

func (s iterateSignal) Error() string { return "no enclosing loop labeled " + s.label }

// exitHandlerSignal unwinds to the compound block whose frame declared
// an EXIT handler.
type exitHandlerSignal struct{ frame *varFrame }

func (exitHandlerSignal) Error() string { return "unwinding to EXIT handler scope" }

// conditionErr is a raised SQL condition (SIGNAL or engine-raised).
type conditionErr struct {
	state string // SQLSTATE, "02000" for NOT FOUND
	msg   string
}

func (e *conditionErr) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("SQLSTATE %s: %s", e.state, e.msg)
	}
	return "SQLSTATE " + e.state
}

func isControlSignal(err error) bool {
	switch err.(type) {
	case returnSignal, leaveSignal, iterateSignal, exitHandlerSignal:
		return true
	}
	return false
}

// raiseCondition finds and runs the innermost matching handler for a
// condition. It returns (handled, err): when handled with a CONTINUE
// handler err is nil; with an EXIT handler err is an exitHandlerSignal.
func (db *DB) raiseCondition(ctx *execCtx, cond *conditionErr) (bool, error) {
	for fr := ctx.vars; fr != nil; fr = fr.parent {
		for _, h := range fr.handlers {
			if !handlerMatches(h.Condition, cond) {
				continue
			}
			hctx := *ctx
			hctx.vars = fr
			if err := db.execPSM(&hctx, h.Action); err != nil {
				return true, err
			}
			if h.Kind == "EXIT" {
				return true, exitHandlerSignal{frame: fr}
			}
			return true, nil
		}
	}
	return false, cond
}

func handlerMatches(handlerCond string, cond *conditionErr) bool {
	switch {
	case handlerCond == "NOT FOUND":
		return cond.state == "02000"
	case handlerCond == "SQLEXCEPTION":
		return !strings.HasPrefix(cond.state, "02") && cond.state != "00000"
	case strings.HasPrefix(handlerCond, "SQLSTATE"):
		return strings.Contains(handlerCond, "'"+cond.state+"'")
	}
	return false
}

// ---------- routine invocation ----------

// callFunction invokes a stored function with the given argument
// expressions (evaluated in the caller's context).
func (db *DB) callFunction(ctx *execCtx, r *storage.Routine, argExprs []sqlast.Expr) (types.Value, error) {
	params := r.Params()
	if len(argExprs) != len(params) {
		return types.Null, fmt.Errorf("function %s expects %d arguments, got %d", r.Name, len(params), len(argExprs))
	}
	if ctx.depth >= db.MaxRecursion {
		return types.Null, fmt.Errorf("routine call nesting exceeds %d at %s", db.MaxRecursion, r.Name)
	}
	args := make([]types.Value, len(argExprs))
	for i := range argExprs {
		v, err := db.evalExpr(ctx, argExprs[i])
		if err != nil {
			return types.Null, err
		}
		args[i] = v
	}
	var memoKey string
	if ctx.memo != nil {
		if memoKey = db.memoKey(r, args); memoKey != "" {
			if v, ok := ctx.memo.lookup(db, memoKey); ok {
				// A memo hit is still a logical invocation — see fnmemo.go.
				db.noteRoutineCall(r.Name)
				db.Stats.RoutineMemoHits++
				return v, nil
			}
		}
	}
	frame := newFrame(nil)
	frame.entries = make([]varEntry, 0, len(params))
	for i, p := range params {
		v := args[i]
		k := strings.ToLower(p.Name)
		if p.Type.IsCollection() {
			if t, ok := v.Aux.(*storage.Table); ok && v.Kind == types.KindTable {
				frame.setTableVar(k, t)
			} else {
				frame.setTableVar(k, newCollectionTable(p.Name, p.Type))
			}
			continue
		}
		cv, err := coerce(v, p.Type)
		if err != nil {
			return types.Null, err
		}
		frame.setVal(k, cv)
		frame.setType(k, p.Type)
	}
	db.noteRoutineCall(r.Name)
	if done := db.traceRoutine(r.Name); done != nil {
		defer done()
	}
	fctx := &execCtx{db: db, vars: frame, depth: ctx.depth + 1, memo: ctx.memo, journal: ctx.journal, prep: ctx.prep}
	err := db.execPSM(fctx, r.Body())
	if err == nil {
		return types.Null, fmt.Errorf("function %s ended without RETURN", r.Name)
	}
	if rs, ok := err.(returnSignal); ok {
		if r.Fn.Returns.IsCollection() || rs.val.Kind == types.KindTable {
			return rs.val, nil
		}
		cv, cerr := coerce(rs.val, r.Fn.Returns)
		if cerr == nil && memoKey != "" && cv.Kind != types.KindTable {
			ctx.memo.store(db, memoKey, cv)
		}
		return cv, cerr
	}
	return types.Null, fmt.Errorf("in function %s: %w", r.Name, err)
}

// execCall invokes a stored procedure, copying OUT/INOUT parameters
// back into the caller's variables.
func (db *DB) execCall(ctx *execCtx, s *sqlast.CallStmt) (*Result, error) {
	r := db.Cat.Routine(s.Name)
	if r == nil {
		return nil, fmt.Errorf("procedure %s does not exist", s.Name)
	}
	if r.Kind != storage.KindProcedure {
		return nil, fmt.Errorf("%s is a function; invoke it in an expression", s.Name)
	}
	params := r.Params()
	if len(s.Args) != len(params) {
		return nil, fmt.Errorf("procedure %s expects %d arguments, got %d", s.Name, len(params), len(s.Args))
	}
	if ctx.depth >= db.MaxRecursion {
		return nil, fmt.Errorf("routine call nesting exceeds %d at %s", db.MaxRecursion, s.Name)
	}
	frame := newFrame(nil)
	frame.entries = make([]varEntry, 0, len(params))
	type outBinding struct {
		param string
		arg   string
	}
	var outs []outBinding
	for i, p := range params {
		k := strings.ToLower(p.Name)
		frame.setType(k, p.Type)
		switch p.Mode {
		case sqlast.ModeIn:
			v, err := db.evalExpr(ctx, s.Args[i])
			if err != nil {
				return nil, err
			}
			if p.Type.IsCollection() {
				if t, ok := v.Aux.(*storage.Table); ok && v.Kind == types.KindTable {
					frame.setTableVar(k, t)
				} else {
					frame.setTableVar(k, newCollectionTable(p.Name, p.Type))
				}
				continue
			}
			cv, err := coerce(v, p.Type)
			if err != nil {
				return nil, err
			}
			frame.setVal(k, cv)
		case sqlast.ModeOut, sqlast.ModeInOut:
			cr, ok := s.Args[i].(*sqlast.ColumnRef)
			if !ok || cr.Table != "" {
				return nil, fmt.Errorf("argument %d of %s must be a variable (parameter %s is %s)",
					i+1, s.Name, p.Name, p.Mode)
			}
			if ctx.vars == nil {
				return nil, fmt.Errorf("OUT parameter %s requires a variable context", p.Name)
			}
			if p.Mode == sqlast.ModeInOut {
				v, ok := ctx.vars.get(cr.Column)
				if !ok {
					return nil, fmt.Errorf("variable %s is not declared", cr.Column)
				}
				if p.Type.IsCollection() {
					if t, ok := v.Aux.(*storage.Table); ok && v.Kind == types.KindTable {
						frame.setTableVar(k, t)
					} else {
						frame.setTableVar(k, newCollectionTable(p.Name, p.Type))
					}
				} else {
					frame.setVal(k, v)
				}
			} else if p.Type.IsCollection() {
				frame.setTableVar(k, newCollectionTable(p.Name, p.Type))
			} else {
				frame.setVal(k, types.Null)
			}
			outs = append(outs, outBinding{param: k, arg: cr.Column})
		}
	}
	db.noteRoutineCall(s.Name)
	if done := db.traceRoutine(s.Name); done != nil {
		defer done()
	}
	pctx := &execCtx{db: db, vars: frame, depth: ctx.depth + 1, memo: ctx.memo, journal: ctx.journal, prep: ctx.prep}
	err := db.execPSM(pctx, r.Body())
	if err != nil {
		if _, ok := err.(returnSignal); !ok {
			return nil, fmt.Errorf("in procedure %s: %w", s.Name, err)
		}
	}
	for _, ob := range outs {
		v, _ := frame.get(ob.param)
		if err := ctx.vars.set(ob.arg, v); err != nil {
			return nil, err
		}
	}
	return &Result{}, nil
}

// ---------- PSM statement execution ----------

// execPSM executes a PSM statement. Control flow is communicated via
// the signal error types above.
func (db *DB) execPSM(ctx *execCtx, stmt sqlast.Stmt) error {
	if err := db.Proc.Killed(); err != nil {
		return err
	}
	db.Stats.Statements++
	switch s := stmt.(type) {
	case *sqlast.CompoundStmt:
		return db.execCompound(ctx, s)
	case *sqlast.SetStmt:
		v, err := db.evalExpr(ctx, s.Value)
		if err != nil {
			return err
		}
		return ctx.vars.set(s.Target, v)
	case *sqlast.IfStmt:
		cond, err := db.evalExpr(ctx, s.Cond)
		if err != nil {
			return err
		}
		if types.TriboolFromValue(cond) == types.True {
			return db.execStmts(ctx, s.Then)
		}
		for _, ei := range s.ElseIfs {
			cv, err := db.evalExpr(ctx, ei.Cond)
			if err != nil {
				return err
			}
			if types.TriboolFromValue(cv) == types.True {
				return db.execStmts(ctx, ei.Then)
			}
		}
		if s.Else != nil {
			return db.execStmts(ctx, s.Else)
		}
		return nil
	case *sqlast.CaseStmt:
		return db.execCaseStmt(ctx, s)
	case *sqlast.WhileStmt:
		for {
			cond, err := db.evalExpr(ctx, s.Cond)
			if err != nil {
				return err
			}
			if types.TriboolFromValue(cond) != types.True {
				return nil
			}
			if stop, err := db.runLoopBody(ctx, s.Label, s.Body); stop || err != nil {
				return err
			}
		}
	case *sqlast.RepeatStmt:
		for {
			if stop, err := db.runLoopBody(ctx, s.Label, s.Body); stop || err != nil {
				return err
			}
			cond, err := db.evalExpr(ctx, s.Until)
			if err != nil {
				return err
			}
			if types.TriboolFromValue(cond) == types.True {
				return nil
			}
		}
	case *sqlast.LoopStmt:
		for {
			if stop, err := db.runLoopBody(ctx, s.Label, s.Body); stop || err != nil {
				return err
			}
		}
	case *sqlast.ForStmt:
		return db.execFor(ctx, s)
	case *sqlast.LeaveStmt:
		return leaveSignal{label: strings.ToLower(s.Label)}
	case *sqlast.IterateStmt:
		return iterateSignal{label: strings.ToLower(s.Label)}
	case *sqlast.ReturnStmt:
		if s.Value == nil {
			return returnSignal{val: types.Null}
		}
		v, err := db.evalExpr(ctx, s.Value)
		if err != nil {
			return err
		}
		return returnSignal{val: v}
	case *sqlast.CallStmt:
		_, err := db.execCall(ctx, s)
		return err
	case *sqlast.OpenStmt:
		c := ctx.vars.getCursor(s.Cursor)
		if c == nil {
			return fmt.Errorf("cursor %s is not declared", s.Cursor)
		}
		res, err := db.execCursorQuery(ctx, c.query)
		if err != nil {
			return err
		}
		c.res, c.pos, c.open = res, 0, true
		return nil
	case *sqlast.FetchStmt:
		return db.execFetch(ctx, s)
	case *sqlast.CloseStmt:
		c := ctx.vars.getCursor(s.Cursor)
		if c == nil {
			return fmt.Errorf("cursor %s is not declared", s.Cursor)
		}
		if !c.open {
			return fmt.Errorf("cursor %s is not open", s.Cursor)
		}
		c.open, c.res = false, nil
		return nil
	case *sqlast.SignalStmt:
		cond := &conditionErr{state: s.SQLState, msg: s.Message}
		_, err := db.raiseCondition(ctx, cond)
		return err
	default:
		// Plain SQL statement inside a routine body.
		_, err := db.exec(ctx, stmt)
		return err
	}
}

func (db *DB) execCompound(ctx *execCtx, s *sqlast.CompoundStmt) error {
	frame := newFrame(ctx.vars)
	if n := len(s.VarDecls); n > 0 {
		frame.entries = make([]varEntry, 0, n)
	}
	cctx := *ctx
	cctx.vars = frame

	for _, d := range s.VarDecls {
		var def types.Value
		if d.Default != nil {
			v, err := db.evalExpr(&cctx, d.Default)
			if err != nil {
				return err
			}
			def = v
		}
		for _, name := range d.Names {
			k := strings.ToLower(name)
			if d.Type.IsCollection() {
				frame.setTableVar(k, newCollectionTable(name, d.Type))
				continue
			}
			cv, err := coerce(def, d.Type)
			if err != nil {
				return err
			}
			frame.setVal(k, cv)
			frame.setType(k, d.Type)
		}
	}
	for _, cd := range s.Cursors {
		frame.setCursor(strings.ToLower(cd.Name), &cursor{query: cd.Query})
	}
	frame.handlers = s.Handlers

	for _, st := range s.Stmts {
		err := db.execPSM(&cctx, st)
		if err == nil {
			continue
		}
		switch e := err.(type) {
		case returnSignal, iterateSignal:
			return err
		case leaveSignal:
			if s.Label != "" && strings.EqualFold(e.label, s.Label) {
				return nil
			}
			return err
		case exitHandlerSignal:
			if e.frame == frame {
				return nil
			}
			return err
		case *conditionErr:
			handled, herr := db.raiseCondition(&cctx, e)
			if !handled {
				return err
			}
			if herr != nil {
				if ex, ok := herr.(exitHandlerSignal); ok && ex.frame == frame {
					return nil
				}
				return herr
			}
			// CONTINUE handler: resume with the next statement.
		default:
			// A kill is not a condition: it must tear the whole
			// statement down, so no SQLEXCEPTION handler — not even a
			// CONTINUE one — may swallow it.
			if db.Proc.KilledBy(err) {
				return err
			}
			// Generic engine error becomes SQLEXCEPTION.
			cond := &conditionErr{state: "58000", msg: err.Error()}
			handled, herr := db.raiseCondition(&cctx, cond)
			if !handled {
				return err
			}
			if herr != nil {
				if ex, ok := herr.(exitHandlerSignal); ok && ex.frame == frame {
					return nil
				}
				return herr
			}
		}
	}
	return nil
}

// newCollectionTable creates the backing table of a table-valued
// variable from a ROW(...) ARRAY type.
func newCollectionTable(name string, ty sqlast.TypeName) *storage.Table {
	cols := make([]storage.Column, len(ty.Row))
	for i, f := range ty.Row {
		cols[i] = storage.Column{Name: f.Name, Type: f.Type}
	}
	return storage.NewTable(name, storage.NewSchema(cols))
}

func (db *DB) execStmts(ctx *execCtx, stmts []sqlast.Stmt) error {
	for _, st := range stmts {
		if err := db.execPSM(ctx, st); err != nil {
			return err
		}
	}
	return nil
}

// runLoopBody executes a loop body once. stop=true means the loop
// should terminate normally (LEAVE of this loop's label).
func (db *DB) runLoopBody(ctx *execCtx, label string, body []sqlast.Stmt) (bool, error) {
	err := db.execStmts(ctx, body)
	if err == nil {
		return false, nil
	}
	switch e := err.(type) {
	case leaveSignal:
		if label != "" && strings.EqualFold(e.label, label) {
			return true, nil
		}
	case iterateSignal:
		if label != "" && strings.EqualFold(e.label, label) {
			return false, nil
		}
	}
	return true, err
}

func (db *DB) execCaseStmt(ctx *execCtx, s *sqlast.CaseStmt) error {
	if s.Operand != nil {
		op, err := db.evalExpr(ctx, s.Operand)
		if err != nil {
			return err
		}
		for _, w := range s.Whens {
			wv, err := db.evalExpr(ctx, w.When)
			if err != nil {
				return err
			}
			if types.CompareOp("=", op, wv) == types.True {
				return db.execStmts(ctx, w.Then)
			}
		}
	} else {
		for _, w := range s.Whens {
			wv, err := db.evalExpr(ctx, w.When)
			if err != nil {
				return err
			}
			if types.TriboolFromValue(wv) == types.True {
				return db.execStmts(ctx, w.Then)
			}
		}
	}
	if s.Else != nil {
		return db.execStmts(ctx, s.Else)
	}
	// A searched CASE statement with no matching WHEN and no ELSE
	// raises "case not found" per the standard.
	return &conditionErr{state: "20000", msg: "case not found for CASE statement"}
}

// execCursorQuery evaluates the query of a cursor or FOR loop.
func (db *DB) execCursorQuery(ctx *execCtx, q sqlast.Stmt) (*Result, error) {
	if ts, ok := q.(*sqlast.TemporalStmt); ok {
		if ts.Mod == sqlast.ModCurrent {
			q = ts.Body
		} else {
			return nil, fmt.Errorf("engine: temporal cursor query reached the conventional engine")
		}
	}
	qe, ok := q.(sqlast.QueryExpr)
	if !ok {
		return nil, fmt.Errorf("cursor query must be a SELECT")
	}
	return db.evalQuery(ctx, qe)
}

func (db *DB) execFetch(ctx *execCtx, s *sqlast.FetchStmt) error {
	c := ctx.vars.getCursor(s.Cursor)
	if c == nil {
		return fmt.Errorf("cursor %s is not declared", s.Cursor)
	}
	if !c.open {
		return fmt.Errorf("cursor %s is not open", s.Cursor)
	}
	if c.pos >= len(c.res.Rows) {
		_, err := db.raiseCondition(ctx, &conditionErr{state: "02000", msg: "no data"})
		return err
	}
	row := c.res.Rows[c.pos]
	c.pos++
	if len(s.Into) != len(row) {
		return fmt.Errorf("FETCH %s: %d variables for %d columns", s.Cursor, len(s.Into), len(row))
	}
	for i, name := range s.Into {
		if err := ctx.vars.set(name, row[i]); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) execFor(ctx *execCtx, s *sqlast.ForStmt) error {
	res, err := db.execCursorQuery(ctx, s.Query)
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		scope := &rowScope{parent: ctx.scope, entries: []scopeEntry{{
			alias: s.LoopVar, cols: res.Cols, row: row,
		}}}
		lctx := ctx.withScope(scope)
		lerr := db.execStmts(lctx, s.Body)
		if lerr == nil {
			continue
		}
		switch e := lerr.(type) {
		case leaveSignal:
			if s.Label != "" && strings.EqualFold(e.label, s.Label) {
				return nil
			}
		case iterateSignal:
			if s.Label != "" && strings.EqualFold(e.label, s.Label) {
				continue
			}
		}
		return lerr
	}
	return nil
}
