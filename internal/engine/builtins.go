package engine

import (
	"fmt"
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// evalFuncCall dispatches a function invocation: stored routines take
// precedence over builtins, matching a DBMS where user definitions
// shadow library functions of the same name.
func (db *DB) evalFuncCall(ctx *execCtx, fc *sqlast.FuncCall) (types.Value, error) {
	if isAggregate(fc.Name) {
		return types.Null, fmt.Errorf("aggregate %s used outside an aggregation context", fc.Name)
	}
	if r := db.Cat.Routine(fc.Name); r != nil && r.Kind == storage.KindFunction {
		return db.callFunction(ctx, r, fc.Args)
	}
	return db.evalBuiltin(ctx, fc)
}

func (db *DB) evalBuiltin(ctx *execCtx, fc *sqlast.FuncCall) (types.Value, error) {
	name := strings.ToUpper(fc.Name)
	args := make([]types.Value, len(fc.Args))
	for i, a := range fc.Args {
		// COALESCE evaluates lazily.
		if name == "COALESCE" {
			break
		}
		v, err := db.evalExpr(ctx, a)
		if err != nil {
			return types.Null, err
		}
		args[i] = v
	}
	arity := func(n int) error {
		if len(fc.Args) != n {
			return fmt.Errorf("%s expects %d argument(s), got %d", name, n, len(fc.Args))
		}
		return nil
	}
	switch name {
	case "CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP":
		return types.NewDate(db.Now), nil
	case "FIRST_INSTANCE":
		// The earlier of two instants (paper Figure 4).
		if err := arity(2); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return types.Null, nil
		}
		if c, ok := types.Compare(args[0], args[1]); ok && c > 0 {
			return args[1], nil
		}
		return args[0], nil
	case "LAST_INSTANCE":
		// The later of two instants (paper Figure 4).
		if err := arity(2); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return types.Null, nil
		}
		if c, ok := types.Compare(args[0], args[1]); ok && c < 0 {
			return args[1], nil
		}
		return args[0], nil
	case "UPPER", "UCASE":
		if err := arity(1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		return types.NewString(strings.ToUpper(args[0].Text())), nil
	case "LOWER", "LCASE":
		if err := arity(1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		return types.NewString(strings.ToLower(args[0].Text())), nil
	case "LENGTH", "CHAR_LENGTH", "CHARACTER_LENGTH":
		if err := arity(1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		return types.NewInt(int64(len(args[0].Text()))), nil
	case "TRIM":
		if err := arity(1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		return types.NewString(strings.TrimSpace(args[0].Text())), nil
	case "SUBSTR", "SUBSTRING":
		if len(fc.Args) != 2 && len(fc.Args) != 3 {
			return types.Null, fmt.Errorf("%s expects 2 or 3 arguments", name)
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		s := args[0].Text()
		start := int(args[1].Int()) - 1
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := len(s)
		if len(fc.Args) == 3 {
			if n := int(args[2].Int()); start+n < end {
				end = start + n
			}
		}
		return types.NewString(s[start:end]), nil
	case "ABS":
		if err := arity(1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		if args[0].Kind == types.KindFloat {
			f := args[0].F
			if f < 0 {
				f = -f
			}
			return types.NewFloat(f), nil
		}
		n := args[0].Int()
		if n < 0 {
			n = -n
		}
		return types.NewInt(n), nil
	case "MOD":
		if err := arity(2); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return types.Null, nil
		}
		d := args[1].Int()
		if d == 0 {
			return types.Null, fmt.Errorf("MOD by zero")
		}
		return types.NewInt(args[0].Int() % d), nil
	case "COALESCE":
		for _, a := range fc.Args {
			v, err := db.evalExpr(ctx, a)
			if err != nil {
				return types.Null, err
			}
			if !v.IsNull() {
				return v, nil
			}
		}
		return types.Null, nil
	case "NULLIF":
		if err := arity(2); err != nil {
			return types.Null, err
		}
		if types.CompareOp("=", args[0], args[1]) == types.True {
			return types.Null, nil
		}
		return args[0], nil
	case "YEAR":
		if err := arity(1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		y, _, _ := types.DaysToCivil(args[0].Int())
		return types.NewInt(int64(y)), nil
	case "MONTH":
		if err := arity(1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		_, m, _ := types.DaysToCivil(args[0].Int())
		return types.NewInt(int64(m)), nil
	case "DAY":
		if err := arity(1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		_, _, d := types.DaysToCivil(args[0].Int())
		return types.NewInt(int64(d)), nil
	case "DATE":
		if err := arity(1); err != nil {
			return types.Null, err
		}
		return castValue(args[0], sqlast.TypeName{Base: "DATE"})
	}
	return types.Null, fmt.Errorf("unknown function %s", fc.Name)
}
