package engine

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

// ---------- handler semantics ----------

func TestExitHandlerUnwindsBlock(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION f ()
RETURNS INTEGER
LANGUAGE SQL
BEGIN
  DECLARE r INTEGER DEFAULT 0;
  BEGIN
    DECLARE EXIT HANDLER FOR SQLSTATE '70001' SET r = 99;
    SIGNAL SQLSTATE '70001';
    SET r = 1;
  END;
  RETURN r;
END`)
	res := mustExec(t, db, `SELECT f() FROM item WHERE id = 1`)
	expectRows(t, res, "99") // inner block exited; SET r = 1 skipped
}

func TestContinueHandlerResumes(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION f ()
RETURNS INTEGER
LANGUAGE SQL
BEGIN
  DECLARE r INTEGER DEFAULT 0;
  DECLARE CONTINUE HANDLER FOR SQLSTATE '70001' SET r = r + 10;
  SIGNAL SQLSTATE '70001';
  SET r = r + 1;
  RETURN r;
END`)
	res := mustExec(t, db, `SELECT f() FROM item WHERE id = 1`)
	expectRows(t, res, "11") // handler ran, then execution resumed
}

func TestSQLExceptionHandlerCatchesEngineError(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION f ()
RETURNS INTEGER
LANGUAGE SQL
BEGIN
  DECLARE r INTEGER DEFAULT 0;
  DECLARE CONTINUE HANDLER FOR SQLEXCEPTION SET r = -1;
  SET r = (SELECT no_such_col FROM item WHERE id = 1);
  RETURN r;
END`)
	res := mustExec(t, db, `SELECT f() FROM item WHERE id = 1`)
	expectRows(t, res, "-1")
}

func TestUnhandledConditionPropagates(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION f () RETURNS INTEGER LANGUAGE SQL
BEGIN
  SIGNAL SQLSTATE '70002' SET MESSAGE_TEXT = 'kaboom';
END`)
	_, err := db.ExecScript(`SELECT f() FROM item WHERE id = 1`)
	if err == nil || !strings.Contains(err.Error(), "70002") {
		t.Fatalf("expected unhandled SQLSTATE to propagate, got %v", err)
	}
}

func TestFetchWithoutHandlerErrors(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION f () RETURNS INTEGER LANGUAGE SQL
BEGIN
  DECLARE v INTEGER DEFAULT 0;
  DECLARE cur CURSOR FOR SELECT id FROM item WHERE id > 999;
  OPEN cur;
  FETCH cur INTO v;
  RETURN v;
END`)
	if _, err := db.ExecScript(`SELECT f() FROM item WHERE id = 1`); err == nil {
		t.Fatal("FETCH past end without a handler must raise 02000")
	}
}

func TestCaseStatementNoMatchRaises(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION f (x INTEGER) RETURNS INTEGER LANGUAGE SQL
BEGIN
  CASE x WHEN 1 THEN RETURN 10; END CASE;
  RETURN 0;
END`)
	if _, err := db.ExecScript(`SELECT f(5) FROM item WHERE id = 1`); err == nil {
		t.Fatal("CASE statement with no matching WHEN and no ELSE must raise 20000")
	}
	res := mustExec(t, db, `SELECT f(1) FROM item WHERE id = 1`)
	expectRows(t, res, "10")
}

// ---------- error paths ----------

func TestErrorMessages(t *testing.T) {
	db := newTestDB(t)
	for _, tc := range []struct{ src, want string }{
		{`SELECT * FROM missing`, "does not exist"},
		{`SELECT nope FROM item`, "neither a column"},
		{`SELECT i.nope FROM item i`, "does not exist"},
		{`INSERT INTO item VALUES (1)`, "supplies 1 values"},
		{`INSERT INTO item (id, bogus) VALUES (1, 2)`, "no column"},
		{`UPDATE item SET bogus = 1`, "no column"},
		{`SELECT unknown_fn(1) FROM item`, "unknown function"},
		{`SELECT COUNT(*) + price FROM item WHERE SUM(price) > 1`, "aggregate"},
		{`CREATE TABLE item (a INTEGER)`, "already exists"},
		{`DROP TABLE missing`, "does not exist"},
		{`CALL not_there()`, "does not exist"},
		{`SELECT a FROM t1 UNION SELECT a, b FROM t1`, ""}, // t1 missing: any error fine
	} {
		_, err := db.ExecScript(tc.src)
		if err == nil {
			t.Errorf("%q: expected error", tc.src)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %q does not mention %q", tc.src, err, tc.want)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := newTestDB(t)
	_, err := db.ExecScript(`SELECT author_id FROM item_author, author`)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("expected ambiguity error, got %v", err)
	}
}

// ---------- semantics edge cases ----------

func TestSetOpsAllVariants(t *testing.T) {
	db := New()
	mustExec(t, db, `
		CREATE TABLE l (a INTEGER); CREATE TABLE r (a INTEGER);
		INSERT INTO l VALUES (1), (1), (2), (3);
		INSERT INTO r VALUES (1), (2), (2)`)
	res := mustExec(t, db, `SELECT a FROM l UNION ALL SELECT a FROM r`)
	if len(res.Rows) != 7 {
		t.Fatalf("UNION ALL: %d rows", len(res.Rows))
	}
	res = mustExec(t, db, `SELECT a FROM l EXCEPT ALL SELECT a FROM r`)
	// multiset: l={1,1,2,3} minus r={1,2,2} = {1,3}
	if len(res.Rows) != 2 {
		t.Fatalf("EXCEPT ALL: %v", rowsText(res))
	}
	res = mustExec(t, db, `SELECT a FROM l INTERSECT ALL SELECT a FROM r`)
	// multiset intersection {1,2}
	if len(res.Rows) != 2 {
		t.Fatalf("INTERSECT ALL: %v", rowsText(res))
	}
}

func TestOrderByOrdinalAndAlias(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT title AS t, price AS p FROM item ORDER BY 2 DESC`)
	expectRows(t, res, "Temporal Data,30.0", "Go in Action,20.0", "SQL Basics,10.0")
	res = mustExec(t, db, `SELECT title AS t, price AS p FROM item ORDER BY p`)
	expectRows(t, res, "SQL Basics,10.0", "Go in Action,20.0", "Temporal Data,30.0")
	if _, err := db.ExecScript(`SELECT title FROM item ORDER BY 7`); err == nil {
		t.Fatal("out-of-range ordinal must error")
	}
}

func TestOrderByNullsLast(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `INSERT INTO item VALUES (9, 'NoPrice', NULL)`)
	res := mustExec(t, db, `SELECT title FROM item ORDER BY price`)
	if got := rowsText(res); got[len(got)-1] != "NoPrice" {
		t.Fatalf("NULLs must sort last ascending: %v", got)
	}
	res = mustExec(t, db, `SELECT title FROM item ORDER BY price DESC`)
	if got := rowsText(res); got[0] != "NoPrice" {
		t.Fatalf("NULLs must sort first descending: %v", got)
	}
}

func TestGroupByExpression(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `
		SELECT CASE WHEN price < 15 THEN 'lo' ELSE 'hi' END AS band, COUNT(*)
		FROM item GROUP BY CASE WHEN price < 15 THEN 'lo' ELSE 'hi' END
		ORDER BY band`)
	expectRows(t, res, "hi,2", "lo,1")
}

func TestCountDistinct(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT COUNT(DISTINCT author_id), COUNT(author_id) FROM item_author`)
	expectRows(t, res, "3,4")
}

func TestInWithNullSemantics(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE n (a INTEGER); INSERT INTO n VALUES (1), (NULL)`)
	// 2 NOT IN (1, NULL) is UNKNOWN, not TRUE
	res := mustExec(t, db, `SELECT id FROM item WHERE 2 NOT IN (SELECT a FROM n)`)
	expectRows(t, res)
	// 1 IN (1, NULL) is TRUE
	res = mustExec(t, db, `SELECT COUNT(*) FROM item WHERE 1 IN (SELECT a FROM n)`)
	expectRows(t, res, "3")
}

func TestCorrelatedSubqueryInSelectList(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `
		SELECT i.title, (SELECT COUNT(*) FROM item_author ia WHERE ia.item_id = i.id)
		FROM item i ORDER BY i.id`)
	expectRows(t, res, "SQL Basics,1", "Go in Action,2", "Temporal Data,1")
}

func TestNestedDerivedTables(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `
		SELECT y.t FROM (SELECT x.t AS t FROM (SELECT title AS t FROM item WHERE id = 1) AS x) AS y`)
	expectRows(t, res, "SQL Basics")
}

func TestUpdateSelfReferencingSet(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE s (a INTEGER, b INTEGER); INSERT INTO s VALUES (1, 10)`)
	// both SETs must read the pre-update row
	mustExec(t, db, `UPDATE s SET a = b, b = a`)
	res := mustExec(t, db, `SELECT a, b FROM s`)
	expectRows(t, res, "10,1")
}

func TestProcedureInOutParam(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE PROCEDURE dbl (INOUT x INTEGER) LANGUAGE SQL BEGIN SET x = x * 2; END;
CREATE FUNCTION callit (v INTEGER) RETURNS INTEGER LANGUAGE SQL
BEGIN
  DECLARE y INTEGER DEFAULT 0;
  SET y = v;
  CALL dbl(y);
  CALL dbl(y);
  RETURN y;
END`)
	res := mustExec(t, db, `SELECT callit(5) FROM item WHERE id = 1`)
	expectRows(t, res, "20")
}

func TestOutParamRequiresVariable(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE PROCEDURE p (OUT x INTEGER) LANGUAGE SQL BEGIN SET x = 1; END;
CREATE FUNCTION f () RETURNS INTEGER LANGUAGE SQL BEGIN CALL p(42); RETURN 0; END`)
	if _, err := db.ExecScript(`SELECT f() FROM item WHERE id = 1`); err == nil {
		t.Fatal("OUT argument must be a variable")
	}
}

func TestBlockScoping(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION f () RETURNS INTEGER LANGUAGE SQL
BEGIN
  DECLARE x INTEGER DEFAULT 1;
  BEGIN
    DECLARE x INTEGER DEFAULT 2;
    SET x = x + 100;
  END;
  RETURN x;
END`)
	res := mustExec(t, db, `SELECT f() FROM item WHERE id = 1`)
	expectRows(t, res, "1") // inner x shadows, outer untouched
}

func TestVariableVsColumnScoping(t *testing.T) {
	db := newTestDB(t)
	// Columns shadow variables of the same name inside queries.
	mustExec(t, db, `
CREATE FUNCTION f () RETURNS INTEGER LANGUAGE SQL
BEGIN
  DECLARE price INTEGER DEFAULT 12345;
  RETURN (SELECT COUNT(*) FROM item WHERE price > 15);
END`)
	res := mustExec(t, db, `SELECT f() FROM item WHERE id = 1`)
	expectRows(t, res, "2") // column price used, not the variable
}

// ---------- property tests ----------

// LIKE agrees with a regexp-based reference implementation.
func TestLikeMatchesRegexpQuick(t *testing.T) {
	ref := func(s, pat string) bool {
		var re strings.Builder
		re.WriteString("^")
		for _, c := range pat {
			switch c {
			case '%':
				re.WriteString(".*")
			case '_':
				re.WriteString(".")
			default:
				re.WriteString(regexp.QuoteMeta(string(c)))
			}
		}
		re.WriteString("$")
		m, _ := regexp.MatchString(re.String(), s)
		return m
	}
	alphabet := []byte("ab%_")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		genStr := func(n int) string {
			b := make([]byte, rng.Intn(n))
			for i := range b {
				b[i] = alphabet[rng.Intn(2)] // letters only in subject
			}
			return string(b)
		}
		genPat := func(n int) string {
			b := make([]byte, rng.Intn(n))
			for i := range b {
				b[i] = alphabet[rng.Intn(len(alphabet))]
			}
			return string(b)
		}
		s, p := genStr(8), genPat(6)
		return likeMatch(s, p) == ref(s, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// UNION is idempotent: q UNION q has the same rows as SELECT DISTINCT q.
func TestUnionIdempotent(t *testing.T) {
	db := newTestDB(t)
	u := mustExec(t, db, `SELECT author_id FROM item_author UNION SELECT author_id FROM item_author`)
	d := mustExec(t, db, `SELECT DISTINCT author_id FROM item_author`)
	if len(u.Rows) != len(d.Rows) {
		t.Fatalf("UNION self (%d rows) != DISTINCT (%d rows)", len(u.Rows), len(d.Rows))
	}
}

func TestViewOverView(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
		CREATE VIEW v1 AS (SELECT id, price FROM item WHERE price > 5);
		CREATE VIEW v2 AS (SELECT id FROM v1 WHERE price < 25)`)
	res := mustExec(t, db, `SELECT id FROM v2 ORDER BY id`)
	expectRows(t, res, "1", "2")
}

func TestTempTableLifecycleInRoutine(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION f () RETURNS INTEGER LANGUAGE SQL
BEGIN
  DECLARE n INTEGER;
  CREATE TEMPORARY TABLE scratch (x INTEGER);
  INSERT INTO scratch SELECT id FROM item;
  SET n = (SELECT COUNT(*) FROM scratch);
  DROP TABLE scratch;
  RETURN n;
END`)
	// callable repeatedly: the table is dropped each time
	res := mustExec(t, db, `SELECT f(), f() FROM item WHERE id = 1`)
	expectRows(t, res, "3,3")
}

func TestLimitInsideFunctionCursor(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE FUNCTION top_price () RETURNS FLOAT LANGUAGE SQL
BEGIN
  DECLARE p FLOAT DEFAULT 0.0;
  FOR r AS SELECT price FROM item ORDER BY price DESC FETCH FIRST 1 ROWS ONLY DO
    SET p = r.price;
  END FOR;
  RETURN p;
END`)
	res := mustExec(t, db, `SELECT top_price() FROM item WHERE id = 1`)
	expectRows(t, res, "30.0")
}

func TestAblationSwitchesPreserveResults(t *testing.T) {
	run := func(tweak func(*DB)) []string {
		db := newTestDB(t)
		tweak(db)
		res := mustExec(t, db, `
			SELECT i.title FROM item i, item_author ia, author a
			WHERE i.id = ia.item_id AND ia.author_id = a.author_id AND a.first_name = 'Ben'
			ORDER BY i.title`)
		return rowsText(res)
	}
	base := run(func(db *DB) {})
	noIdx := run(func(db *DB) { db.DisableIndexes = true })
	noOrd := run(func(db *DB) { db.DisableCostOrdering = true })
	if strings.Join(base, ";") != strings.Join(noIdx, ";") {
		t.Fatalf("DisableIndexes changed results: %v vs %v", base, noIdx)
	}
	if strings.Join(base, ";") != strings.Join(noOrd, ";") {
		t.Fatalf("DisableCostOrdering changed results: %v vs %v", base, noOrd)
	}
}

func TestInsertCoercion(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE c (d DATE, f FLOAT, i INTEGER, s VARCHAR(10))`)
	// string->date, int->float, float->int, int->string coercions
	mustExec(t, db, `INSERT INTO c VALUES ('2010-05-06', 3, 2.9, 42)`)
	res := mustExec(t, db, `SELECT d, f, i, s FROM c`)
	expectRows(t, res, "2010-05-06,3.0,2,42")
	if _, err := db.ExecScript(`INSERT INTO c VALUES ('not-a-date', 1, 1, 'x')`); err == nil {
		t.Fatal("expected date coercion error")
	}
}

func TestDMLOnViewRejected(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE VIEW v AS (SELECT id FROM item)`)
	for _, src := range []string{
		`INSERT INTO v VALUES (9)`,
		`UPDATE v SET id = 9`,
		`DELETE FROM v`,
	} {
		if _, err := db.ExecScript(src); err == nil {
			t.Errorf("%q: modifying a view must fail", src)
		}
	}
}

func TestEvalConstExpr(t *testing.T) {
	db := New()
	db.Now = 100
	v, err := db.EvalConstExpr(mustParseExpr(t, `CURRENT_DATE + 7`))
	if err != nil || v.Int() != 107 {
		t.Fatalf("const expr: %v %v", v, err)
	}
	if _, err := db.EvalConstExpr(mustParseExpr(t, `some_column`)); err == nil {
		t.Fatal("column ref must fail without scope")
	}
}

func TestZeroArgProcedure(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
CREATE PROCEDURE bump ()
MODIFIES SQL DATA
LANGUAGE SQL
BEGIN
  UPDATE item SET price = price + 1;
END`)
	mustExec(t, db, `CALL bump()`)
	res := mustExec(t, db, `SELECT price FROM item WHERE id = 1`)
	expectRows(t, res, "11.0")
}

func TestFunctionShadowsBuiltin(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE FUNCTION upper (s VARCHAR(10)) RETURNS VARCHAR(20) LANGUAGE SQL
BEGIN RETURN s || '!'; END`)
	res := mustExec(t, db, `SELECT upper('hi') FROM item WHERE id = 1`)
	expectRows(t, res, "hi!")
}

func TestLogWritesCounted(t *testing.T) {
	db := newTestDB(t)
	db.Stats.Reset()
	mustExec(t, db, `INSERT INTO item VALUES (50, 'A', 1.0), (51, 'B', 2.0)`)
	if db.Stats.LogWrites != 2 {
		t.Fatalf("log writes = %d, want 2", db.Stats.LogWrites)
	}
}
