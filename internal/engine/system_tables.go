package engine

import (
	"strings"

	"taupsm/internal/proc"
	"taupsm/internal/sqlast"
	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// Read-only system introspection tables, materialized on demand from
// the statistics registry so ordinary SELECTs (and therefore the REPL
// and any tool speaking SQL) can query what the database knows about
// itself:
//
//	tau_stat_tables      per-table temporal statistics
//	tau_stat_routines    per-routine workload profile
//	tau_stat_statements  per-statement-digest workload profile
//	tau_stat_activity    in-flight statements (the process list)
//
// The names resolve only after real tables and views miss, so a user
// table named tau_stat_tables shadows the system one, and nothing
// changes for existing schemas.

// systemTable materializes the named system table, or returns nil when
// name is not a system table or its backing registry is disabled.
// tau_stat_activity is backed by the process registry, not statistics,
// so it resolves even with TabStats off.
func (db *DB) systemTable(name string) *storage.Table {
	switch strings.ToLower(name) {
	case "tau_stat_activity":
		if db.Procs == nil {
			return nil
		}
		return db.statActivityTable()
	}
	if db.TabStats == nil {
		return nil
	}
	switch strings.ToLower(name) {
	case "tau_stat_tables":
		return db.statTablesTable()
	case "tau_stat_routines":
		return db.statRoutinesTable()
	case "tau_stat_statements":
		return db.statStatementsTable()
	}
	return nil
}

func sysCol(name, base string) storage.Column {
	return storage.Column{Name: name, Type: sqlast.TypeName{Base: base}}
}

func newSystemTable(name string, cols []storage.Column) *storage.Table {
	t := storage.NewTable(name, storage.NewSchema(cols))
	t.Temporary = true // session-transient: never journaled or persisted
	return t
}

// ActivityColumns is the tau_stat_activity schema, shared with the
// stratum's SHOW PROCESSLIST result so both surfaces stay aligned.
var ActivityColumns = []string{
	"pid", "session", "kind", "strategy", "stage", "elapsed_ms",
	"cp_done", "cp_total", "fragments_done", "fragments_total",
	"rows", "rows_scanned", "routine_calls", "wal_pending", "workers",
	"killed", "trace_id", "digest", "statement",
}

// ActivityRow renders one process snapshot in ActivityColumns order.
func ActivityRow(s proc.Snapshot) []types.Value {
	return []types.Value{
		types.NewInt(s.ID),
		types.NewString(s.Session),
		types.NewString(s.Kind),
		types.NewString(s.Strategy),
		types.NewString(s.Stage),
		types.NewFloat(float64(s.ElapsedNS) / 1e6),
		types.NewInt(s.CPDone),
		types.NewInt(s.CPTotal),
		types.NewInt(s.FragsDone),
		types.NewInt(s.FragsTotal),
		types.NewInt(s.Rows),
		types.NewInt(s.RowsScanned),
		types.NewInt(s.RoutineCalls),
		types.NewInt(s.WALPending),
		types.NewInt(s.Workers),
		types.NewBool(s.Killed),
		types.NewString(s.TraceID),
		types.NewString(s.Digest),
		types.NewString(s.SQL),
	}
}

func (db *DB) statActivityTable() *storage.Table {
	cols := make([]storage.Column, len(ActivityColumns))
	for i, name := range ActivityColumns {
		base := "VARCHAR"
		switch name {
		case "pid", "cp_done", "cp_total", "fragments_done", "fragments_total",
			"rows", "rows_scanned", "routine_calls", "wal_pending", "workers":
			base = "INTEGER"
		case "elapsed_ms":
			base = "FLOAT"
		case "killed":
			base = "BOOLEAN"
		}
		cols[i] = sysCol(name, base)
	}
	t := newSystemTable("tau_stat_activity", cols)
	for _, s := range db.Procs.List() {
		t.Rows = append(t.Rows, ActivityRow(s))
	}
	return t
}

func (db *DB) statTablesTable() *storage.Table {
	t := newSystemTable("tau_stat_tables", []storage.Column{
		sysCol("table_name", "VARCHAR"),
		sysCol("temporal", "BOOLEAN"),
		sysCol("row_count", "INTEGER"),
		sysCol("inserts", "INTEGER"),
		sysCol("updates", "INTEGER"),
		sysCol("deletes", "INTEGER"),
		sysCol("distinct_points", "INTEGER"),
		sysCol("constant_periods", "INTEGER"),
		sysCol("period_density", "FLOAT"),
		sysCol("avg_interval_days", "FLOAT"),
		sysCol("analyzed", "BOOLEAN"),
		sysCol("analyzed_rows", "INTEGER"),
		sysCol("max_overlap", "INTEGER"),
	})
	for _, s := range db.TabStats.TableSnapshots(db.Cat) {
		t.Rows = append(t.Rows, []types.Value{
			types.NewString(s.Name),
			types.NewBool(s.Temporal),
			types.NewInt(s.RowCount),
			types.NewInt(s.Inserts),
			types.NewInt(s.Updates),
			types.NewInt(s.Deletes),
			types.NewInt(s.DistinctPoints),
			types.NewInt(s.ConstantPeriods),
			types.NewFloat(s.PeriodDensity),
			types.NewFloat(s.AvgIntervalDays),
			types.NewBool(s.Analyzed),
			types.NewInt(s.AnalyzedRows),
			types.NewInt(s.MaxOverlap),
		})
	}
	return t
}

func (db *DB) statRoutinesTable() *storage.Table {
	t := newSystemTable("tau_stat_routines", []storage.Column{
		sysCol("routine_name", "VARCHAR"),
		sysCol("calls", "INTEGER"),
		sysCol("traced_calls", "INTEGER"),
		sysCol("traced_ns", "INTEGER"),
		sysCol("traced_mean_ns", "INTEGER"),
	})
	for _, s := range db.TabStats.RoutineSnapshots() {
		t.Rows = append(t.Rows, []types.Value{
			types.NewString(s.Name),
			types.NewInt(s.Calls),
			types.NewInt(s.TracedCalls),
			types.NewInt(s.TracedNS),
			types.NewInt(s.TracedMeanNS),
		})
	}
	return t
}

func (db *DB) statStatementsTable() *storage.Table {
	t := newSystemTable("tau_stat_statements", []storage.Column{
		sysCol("digest", "VARCHAR"),
		sysCol("kind", "VARCHAR"),
		sysCol("calls", "INTEGER"),
		sysCol("errors", "INTEGER"),
		sysCol("total_ns", "INTEGER"),
		sysCol("mean_ns", "INTEGER"),
		sysCol("max_ns", "INTEGER"),
		sysCol("last_strategy", "VARCHAR"),
		sysCol("statement", "VARCHAR"),
	})
	for _, s := range db.TabStats.StatementSnapshots() {
		t.Rows = append(t.Rows, []types.Value{
			types.NewString(s.Digest),
			types.NewString(s.Kind),
			types.NewInt(s.Calls),
			types.NewInt(s.Errors),
			types.NewInt(s.TotalNS),
			types.NewInt(s.MeanNS),
			types.NewInt(s.MaxNS),
			types.NewString(s.LastStrategy),
			types.NewString(s.Text),
		})
	}
	return t
}
