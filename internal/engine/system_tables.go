package engine

import (
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// Read-only system introspection tables, materialized on demand from
// the statistics registry so ordinary SELECTs (and therefore the REPL
// and any tool speaking SQL) can query what the database knows about
// itself:
//
//	tau_stat_tables      per-table temporal statistics
//	tau_stat_routines    per-routine workload profile
//	tau_stat_statements  per-statement-digest workload profile
//
// The names resolve only after real tables and views miss, so a user
// table named tau_stat_tables shadows the system one, and nothing
// changes for existing schemas.

// systemTable materializes the named system table, or returns nil when
// name is not a system table or statistics are disabled.
func (db *DB) systemTable(name string) *storage.Table {
	if db.TabStats == nil {
		return nil
	}
	switch strings.ToLower(name) {
	case "tau_stat_tables":
		return db.statTablesTable()
	case "tau_stat_routines":
		return db.statRoutinesTable()
	case "tau_stat_statements":
		return db.statStatementsTable()
	}
	return nil
}

func sysCol(name, base string) storage.Column {
	return storage.Column{Name: name, Type: sqlast.TypeName{Base: base}}
}

func newSystemTable(name string, cols []storage.Column) *storage.Table {
	t := storage.NewTable(name, storage.NewSchema(cols))
	t.Temporary = true // session-transient: never journaled or persisted
	return t
}

func (db *DB) statTablesTable() *storage.Table {
	t := newSystemTable("tau_stat_tables", []storage.Column{
		sysCol("table_name", "VARCHAR"),
		sysCol("temporal", "BOOLEAN"),
		sysCol("row_count", "INTEGER"),
		sysCol("inserts", "INTEGER"),
		sysCol("updates", "INTEGER"),
		sysCol("deletes", "INTEGER"),
		sysCol("distinct_points", "INTEGER"),
		sysCol("constant_periods", "INTEGER"),
		sysCol("period_density", "FLOAT"),
		sysCol("avg_interval_days", "FLOAT"),
		sysCol("analyzed", "BOOLEAN"),
		sysCol("analyzed_rows", "INTEGER"),
		sysCol("max_overlap", "INTEGER"),
	})
	for _, s := range db.TabStats.TableSnapshots(db.Cat) {
		t.Rows = append(t.Rows, []types.Value{
			types.NewString(s.Name),
			types.NewBool(s.Temporal),
			types.NewInt(s.RowCount),
			types.NewInt(s.Inserts),
			types.NewInt(s.Updates),
			types.NewInt(s.Deletes),
			types.NewInt(s.DistinctPoints),
			types.NewInt(s.ConstantPeriods),
			types.NewFloat(s.PeriodDensity),
			types.NewFloat(s.AvgIntervalDays),
			types.NewBool(s.Analyzed),
			types.NewInt(s.AnalyzedRows),
			types.NewInt(s.MaxOverlap),
		})
	}
	return t
}

func (db *DB) statRoutinesTable() *storage.Table {
	t := newSystemTable("tau_stat_routines", []storage.Column{
		sysCol("routine_name", "VARCHAR"),
		sysCol("calls", "INTEGER"),
		sysCol("traced_calls", "INTEGER"),
		sysCol("traced_ns", "INTEGER"),
		sysCol("traced_mean_ns", "INTEGER"),
	})
	for _, s := range db.TabStats.RoutineSnapshots() {
		t.Rows = append(t.Rows, []types.Value{
			types.NewString(s.Name),
			types.NewInt(s.Calls),
			types.NewInt(s.TracedCalls),
			types.NewInt(s.TracedNS),
			types.NewInt(s.TracedMeanNS),
		})
	}
	return t
}

func (db *DB) statStatementsTable() *storage.Table {
	t := newSystemTable("tau_stat_statements", []storage.Column{
		sysCol("digest", "VARCHAR"),
		sysCol("kind", "VARCHAR"),
		sysCol("calls", "INTEGER"),
		sysCol("errors", "INTEGER"),
		sysCol("total_ns", "INTEGER"),
		sysCol("mean_ns", "INTEGER"),
		sysCol("max_ns", "INTEGER"),
		sysCol("last_strategy", "VARCHAR"),
		sysCol("statement", "VARCHAR"),
	})
	for _, s := range db.TabStats.StatementSnapshots() {
		t.Rows = append(t.Rows, []types.Value{
			types.NewString(s.Digest),
			types.NewString(s.Kind),
			types.NewInt(s.Calls),
			types.NewInt(s.Errors),
			types.NewInt(s.TotalNS),
			types.NewInt(s.MeanNS),
			types.NewInt(s.MaxNS),
			types.NewString(s.LastStrategy),
			types.NewString(s.Text),
		})
	}
	return t
}
