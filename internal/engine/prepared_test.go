package engine

import (
	"fmt"
	"testing"

	"taupsm/internal/sqlast"
	"taupsm/internal/sqlparser"
	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// parseStmt parses one statement, failing the test on error. The
// prepared tests parse once and execute the same AST repeatedly — the
// same reuse pattern the stratum's translation cache produces.
func parseStmt(t *testing.T, src string) sqlast.Stmt {
	t.Helper()
	stmt, err := sqlparser.ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return stmt
}

func runPrepared(t *testing.T, db *DB, prep *Prepared, stmt sqlast.Stmt, tables map[string]*storage.Table) *Result {
	t.Helper()
	res, err := db.ExecPreparedWithTables(prep, stmt, tables)
	if err != nil {
		t.Fatalf("exec prepared: %v", err)
	}
	return res
}

// The second execution of a statement under one Prepared serves its
// source relation from the plan instead of rescanning; ablating the
// feature stops the hits without changing results.
func TestPreparedServesSourceRelations(t *testing.T) {
	db := newTestDB(t)
	prep := NewPrepared()
	stmt := parseStmt(t, `SELECT title FROM item WHERE price > 15.0`)

	first := runPrepared(t, db, prep, stmt, nil)
	h0 := db.Stats.PlanReuseHits
	second := runPrepared(t, db, prep, stmt, nil)
	if db.Stats.PlanReuseHits <= h0 {
		t.Fatalf("second execution recorded no plan-reuse hit (hits %d -> %d)", h0, db.Stats.PlanReuseHits)
	}
	if got, want := rowsText(second), rowsText(first); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("cached execution diverges: %v vs %v", got, want)
	}

	db.DisablePlanReuse = true
	defer func() { db.DisablePlanReuse = false }()
	h1 := db.Stats.PlanReuseHits
	third := runPrepared(t, db, prep, stmt, nil)
	if db.Stats.PlanReuseHits != h1 {
		t.Fatalf("DisablePlanReuse still recorded hits")
	}
	if got, want := rowsText(third), rowsText(first); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ablated execution diverges: %v vs %v", got, want)
	}
}

// DML between executions bumps the table version, so the plan's cached
// relation is rebuilt instead of served stale.
func TestPreparedInvalidatedByDML(t *testing.T) {
	db := newTestDB(t)
	prep := NewPrepared()
	stmt := parseStmt(t, `SELECT title FROM item WHERE price > 15.0`)

	first := runPrepared(t, db, prep, stmt, nil)
	runPrepared(t, db, prep, stmt, nil) // warm: entry now published and hit once
	mustExec(t, db, `INSERT INTO item VALUES (4, 'New Book', 40.0)`)
	after := runPrepared(t, db, prep, stmt, nil)
	if len(after.Rows) != len(first.Rows)+1 {
		t.Fatalf("post-DML execution saw %d rows, want %d (stale cached relation?)",
			len(after.Rows), len(first.Rows)+1)
	}
}

// A table-valued variable shadowing a catalog name is per-execution
// state: the prepared plan must neither serve nor cache it.
func TestPreparedSkipsVarShadowedTables(t *testing.T) {
	db := newTestDB(t)
	prep := NewPrepared()
	stmt := parseStmt(t, `SELECT n FROM shadow`)
	mustExec(t, db, `CREATE TABLE shadow (n INTEGER); INSERT INTO shadow VALUES (99)`)

	varTab := func(vals ...int64) *storage.Table {
		tab := storage.NewTable("shadow", storage.NewSchema([]storage.Column{
			{Name: "n", Type: sqlast.TypeName{Base: "INTEGER"}},
		}))
		tab.Temporary = true
		for _, v := range vals {
			tab.Rows = append(tab.Rows, []types.Value{types.NewInt(v)})
		}
		return tab
	}

	h0 := db.Stats.PlanReuseHits
	r1 := runPrepared(t, db, prep, stmt, map[string]*storage.Table{"shadow": varTab(1, 2)})
	r2 := runPrepared(t, db, prep, stmt, map[string]*storage.Table{"shadow": varTab(7)})
	if len(r1.Rows) != 2 || len(r2.Rows) != 1 {
		t.Fatalf("var-shadowed scans returned %d and %d rows, want 2 and 1 (cached across executions?)",
			len(r1.Rows), len(r2.Rows))
	}
	if db.Stats.PlanReuseHits != h0 {
		t.Fatalf("var-shadowed table took the prepared path (%d hits)", db.Stats.PlanReuseHits-h0)
	}
}

// A closed pushdown may contain CURRENT_DATE, so a cached relation is
// stamped with the clock and rebuilt when db.Now moves.
func TestPreparedInvalidatedByClock(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `
		CREATE TABLE evt (name VARCHAR(10), d DATE);
		INSERT INTO evt VALUES ('old', DATE '2010-01-01'), ('new', DATE '2012-01-01');
	`)
	prep := NewPrepared()
	stmt := parseStmt(t, `SELECT name FROM evt WHERE d <= CURRENT_DATE`)

	db.Now = types.MustDate(2011, 1, 1)
	r1 := runPrepared(t, db, prep, stmt, nil)
	runPrepared(t, db, prep, stmt, nil)
	db.Now = types.MustDate(2013, 1, 1)
	r2 := runPrepared(t, db, prep, stmt, nil)
	if len(r1.Rows) != 1 || len(r2.Rows) != 2 {
		t.Fatalf("clock move served stale filtered relation: %d then %d rows, want 1 then 2",
			len(r1.Rows), len(r2.Rows))
	}
}

// Join hash tables are cached per prepared relation and key signature;
// repeated executions of a hash join hit instead of rebuilding.
func TestPreparedCachesJoinHashTables(t *testing.T) {
	db := newTestDB(t)
	prep := NewPrepared()
	stmt := parseStmt(t, `SELECT title, first_name FROM item, item_author, author
		WHERE item.id = item_author.item_id AND item_author.author_id = author.author_id`)

	first := runPrepared(t, db, prep, stmt, nil)
	h0 := db.Stats.PlanReuseHits
	second := runPrepared(t, db, prep, stmt, nil)
	// Two joined sources plus their hash tables: at least 3 hits.
	if db.Stats.PlanReuseHits < h0+3 {
		t.Fatalf("repeat join execution recorded %d hits, want >= 3", db.Stats.PlanReuseHits-h0)
	}
	if got, want := fmt.Sprint(rowsText(second)), fmt.Sprint(rowsText(first)); got != want {
		t.Fatalf("cached join diverges: %v vs %v", got, want)
	}
}
