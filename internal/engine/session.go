package engine

import (
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/storage"
)

// NewSession returns an evaluation session: a DB handle sharing this
// database's catalog, plan cache, configuration, clock, and tracer,
// but with its own zeroed Stats. Sessions make the read path
// re-entrant — any number of sessions may evaluate queries
// concurrently over the shared catalog (writers still need exclusive
// access) — and their Stats act as per-worker journals that the
// caller merges deterministically with Stats.Merge.
func (db *DB) NewSession() *DB {
	s := *db
	s.Stats = Stats{}
	s.routineNS = nil
	return &s
}

// Merge folds a session's journal into s.
func (s *Stats) Merge(d Stats) {
	s.RoutineCalls += d.RoutineCalls
	s.RoutineMemoHits += d.RoutineMemoHits
	s.RowsScanned += d.RowsScanned
	s.RowsReturned += d.RowsReturned
	s.Statements += d.Statements
	s.LogWrites += d.LogWrites
	s.IntervalProbes += d.IntervalProbes
	s.PlanReuseHits += d.PlanReuseHits
	s.SweepJoins += d.SweepJoins
}

// ExecStmtWithTables executes one statement with the given tables
// bound as table-valued variables, shadowing catalog tables of the
// same name. The stratum uses this to hand each evaluation session
// its own constant-period relation (taupsm_cp) without touching the
// shared catalog — the key to both cache stability (no DDL churn per
// statement) and parallel fragment evaluation (each worker sees only
// its chunk of the periods).
func (db *DB) ExecStmtWithTables(stmt sqlast.Stmt, tables map[string]*storage.Table) (*Result, error) {
	frame := newFrame(nil)
	for name, t := range tables {
		frame.setTableVar(strings.ToLower(name), t)
	}
	ctx := &execCtx{db: db, vars: frame, memo: db.newFnMemo(), journal: db.Journal}
	return db.execTop(ctx, stmt)
}

// ExecPreparedWithTables is ExecStmtWithTables with a shared prepared
// plan attached: source relations, join hash tables, and sorted
// interval spans built while executing the statement are cached in p
// and reused by every later execution that passes the same p — across
// the fragments of a batch, across repeated executions of one cached
// translation, and across the worker sessions of a parallel MAX run
// (p is safe for concurrent sessions; every cached structure is
// revalidated against table versions before reuse).
func (db *DB) ExecPreparedWithTables(p *Prepared, stmt sqlast.Stmt, tables map[string]*storage.Table) (*Result, error) {
	frame := newFrame(nil)
	for name, t := range tables {
		frame.setTableVar(strings.ToLower(name), t)
	}
	ctx := &execCtx{db: db, vars: frame, memo: db.newFnMemo(), journal: db.Journal, prep: p}
	return db.execTop(ctx, stmt)
}
