package engine

import (
	"fmt"
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// entryMeta describes one correlation name contributed by a FROM
// source: its alias and column names.
type entryMeta struct {
	alias string
	cols  []string
}

// rel is an intermediate relation: a list of correlation entries and
// rows, where each row holds one value slice per entry.
type rel struct {
	metas []entryMeta
	rows  [][][]types.Value
	// For a single-source scan of a stored table, tab is that table and
	// ords[i] is rows[i]'s ordinal in tab.Rows (ascending). joinRels
	// uses them to probe tab's interval index per outer row.
	tab  *storage.Table
	ords []int
	// prepEnt is set when this relation was served from a Prepared
	// cache; joinRels uses it to share hash tables and sorted spans
	// across the executions of a fragment batch.
	prepEnt *prepRel
}

// bindScope builds a rowScope over the relation's entries for row i,
// chained to parent.
func bindScope(parent *rowScope, metas []entryMeta, row [][]types.Value) *rowScope {
	s := &rowScope{parent: parent, entries: make([]scopeEntry, len(metas))}
	for i, m := range metas {
		s.entries[i] = scopeEntry{alias: m.alias, cols: m.cols, row: row[i]}
	}
	return s
}

// newBoundScope builds a rowScope over metas with no rows bound yet;
// bind points it at successive rows. Reusing one scope across a loop
// avoids a per-row allocation on the evaluator's hottest paths (safe
// because nothing retains a scope past the predicate evaluation:
// routine calls start fresh frames without the scope chain, and
// subqueries are evaluated eagerly).
func newBoundScope(parent *rowScope, metas []entryMeta) *rowScope {
	s := &rowScope{parent: parent, entries: make([]scopeEntry, len(metas))}
	for i, m := range metas {
		s.entries[i] = scopeEntry{alias: m.alias, cols: m.cols}
	}
	return s
}

func (s *rowScope) bind(row [][]types.Value) {
	for i := range s.entries {
		s.entries[i].row = row[i]
	}
}

// sourceMetas computes the correlation entries a table reference will
// contribute, without loading data.
func (db *DB) sourceMetas(ctx *execCtx, ref sqlast.TableRef) ([]entryMeta, error) {
	switch r := ref.(type) {
	case *sqlast.BaseTable:
		alias := r.Alias
		if alias == "" {
			alias = r.Name
		}
		if ctx.vars != nil {
			if tv := ctx.vars.getTable(r.Name); tv != nil {
				cols := tv.Schema.Names()
				if ctx.planRec != nil {
					ctx.planRec.varTables[strings.ToLower(r.Name)] = cols
				}
				return []entryMeta{{alias: alias, cols: cols}}, nil
			}
		}
		if t := db.Cat.Table(r.Name); t != nil {
			cols := t.Schema.Names()
			if ctx.planRec != nil {
				ctx.planRec.catTables[strings.ToLower(r.Name)] = catResolved{table: true, cols: cols}
			}
			return []entryMeta{{alias: alias, cols: cols}}, nil
		}
		if v := db.Cat.View(r.Name); v != nil {
			if ctx.planRec != nil {
				// Record the view by identity: no table holds the name
				// (a later temp table can't silently shadow the
				// resolution), and a redefined view is a new object.
				ctx.planRec.catTables[strings.ToLower(r.Name)] = catResolved{view: v}
			}
			cols := v.Cols
			if len(cols) == 0 {
				var err error
				cols, err = db.inferQueryCols(ctx, v.Query)
				if err != nil {
					return nil, err
				}
			}
			return []entryMeta{{alias: alias, cols: cols}}, nil
		}
		if st := db.systemTable(r.Name); st != nil {
			if ctx.planRec != nil {
				// System-table schemas are code-defined; record only that
				// neither a table nor a view holds the name.
				ctx.planRec.catTables[strings.ToLower(r.Name)] = catResolved{}
			}
			return []entryMeta{{alias: alias, cols: st.Schema.Names()}}, nil
		}
		return nil, fmt.Errorf("table or view %s does not exist", r.Name)
	case *sqlast.DerivedTable:
		cols := r.Cols
		if len(cols) == 0 {
			var err error
			cols, err = db.inferQueryCols(ctx, r.Query)
			if err != nil {
				return nil, err
			}
		}
		return []entryMeta{{alias: r.Alias, cols: cols}}, nil
	case *sqlast.TableFunc:
		cols := r.Cols
		if len(cols) == 0 {
			rt := db.Cat.Routine(r.Call.Name)
			if rt == nil || rt.Kind != storage.KindFunction {
				return nil, fmt.Errorf("table function %s does not exist", r.Call.Name)
			}
			if !rt.Fn.Returns.IsCollection() {
				return nil, fmt.Errorf("function %s does not return a collection type", r.Call.Name)
			}
			for _, f := range rt.Fn.Returns.Row {
				cols = append(cols, f.Name)
			}
		}
		return []entryMeta{{alias: r.Alias, cols: cols}}, nil
	case *sqlast.JoinExpr:
		lm, err := db.sourceMetas(ctx, r.L)
		if err != nil {
			return nil, err
		}
		rm, err := db.sourceMetas(ctx, r.R)
		if err != nil {
			return nil, err
		}
		return append(lm, rm...), nil
	}
	return nil, fmt.Errorf("engine: unsupported table reference %T", ref)
}

// inferQueryCols derives the output column names of a query without
// evaluating it.
func (db *DB) inferQueryCols(ctx *execCtx, q sqlast.QueryExpr) ([]string, error) {
	switch x := q.(type) {
	case *sqlast.SelectStmt:
		var metas []entryMeta
		for _, fr := range x.From {
			ms, err := db.sourceMetas(ctx, fr)
			if err != nil {
				return nil, err
			}
			metas = append(metas, ms...)
		}
		var out []string
		for i, it := range x.Items {
			switch {
			case it.Star:
				for _, m := range metas {
					out = append(out, m.cols...)
				}
			case it.TableStar != "":
				found := false
				for _, m := range metas {
					if strings.EqualFold(m.alias, it.TableStar) {
						out = append(out, m.cols...)
						found = true
					}
				}
				if !found {
					return nil, fmt.Errorf("unknown correlation name %s.*", it.TableStar)
				}
			case it.Alias != "":
				out = append(out, it.Alias)
			default:
				if cr, ok := it.Expr.(*sqlast.ColumnRef); ok {
					out = append(out, cr.Column)
				} else {
					out = append(out, fmt.Sprintf("col%d", i+1))
				}
			}
		}
		return out, nil
	case *sqlast.SetOpExpr:
		return db.inferQueryCols(ctx, x.L)
	case *sqlast.ValuesExpr:
		if len(x.Rows) == 0 {
			return nil, nil
		}
		out := make([]string, len(x.Rows[0]))
		for i := range out {
			out[i] = fmt.Sprintf("col%d", i+1)
		}
		return out, nil
	}
	return nil, fmt.Errorf("engine: unsupported query %T", q)
}

// loadSource materializes a non-lateral table reference as a relation,
// applying pushdown filters (conjuncts referencing only this source's
// aliases). It uses a hash-index lookup when an equality conjunct
// compares a column with an expression that is constant w.r.t. this
// query level.
func (db *DB) loadSource(ctx *execCtx, ref sqlast.TableRef, metas []entryMeta, pushdown []*conjunct) (*rel, error) {
	switch r := ref.(type) {
	case *sqlast.BaseTable:
		t := db.resolveTable(ctx, r.Name)
		if t != nil {
			return db.scanTable(ctx, t, metas[0], pushdown)
		}
		if v := db.Cat.View(r.Name); v != nil {
			if ctx.depth > db.MaxRecursion {
				return nil, fmt.Errorf("view nesting too deep at %s", r.Name)
			}
			sub := *ctx
			sub.depth++
			res, err := db.evalQuery(&sub, v.Query)
			if err != nil {
				return nil, err
			}
			return db.resultToRel(ctx, res, metas[0], pushdown)
		}
		if st := db.systemTable(r.Name); st != nil {
			return db.scanTable(ctx, st, metas[0], pushdown)
		}
		return nil, fmt.Errorf("table or view %s does not exist", r.Name)
	case *sqlast.DerivedTable:
		res, err := db.evalQuery(ctx, r.Query)
		if err != nil {
			return nil, err
		}
		return db.resultToRel(ctx, res, metas[0], pushdown)
	case *sqlast.JoinExpr:
		return db.evalJoinRef(ctx, r, pushdown)
	}
	return nil, fmt.Errorf("engine: unsupported table reference %T", ref)
}

// resolveTable finds a stored table or table-valued variable.
func (db *DB) resolveTable(ctx *execCtx, name string) *storage.Table {
	if ctx.vars != nil {
		if tv := ctx.vars.getTable(name); tv != nil {
			return tv
		}
	}
	return db.Cat.Table(name)
}

// scanTable filters a stored table by pushdown conjuncts, preferring a
// hash-index path for an equality on a column.
func (db *DB) scanTable(ctx *execCtx, t *storage.Table, meta entryMeta, pushdown []*conjunct) (*rel, error) {
	out := &rel{metas: []entryMeta{meta}, tab: t}
	scope := &rowScope{parent: ctx.scope, entries: []scopeEntry{{alias: meta.alias, cols: meta.cols}}}
	sctx := ctx.withScope(scope)

	// Index path: find conjunct of form <col> = <constant-here expr>.
	var candidates []int
	usedIdx := -1
	for ci, c := range pushdown {
		if db.DisableIndexes {
			break
		}
		col, valExpr := c.indexable(meta.alias, meta.cols)
		if col == "" {
			continue
		}
		ord := t.Schema.Index(col)
		if ord < 0 {
			continue
		}
		v, err := db.evalExpr(ctx, valExpr)
		if err != nil {
			// Not actually constant here (references this row); skip.
			continue
		}
		if v.IsNull() {
			// col = NULL is never true: the scan yields no rows.
			candidates = nil
		} else {
			candidates = t.Lookup(ord, v)
		}
		usedIdx = ci
		break
	}

	check := func(row []types.Value) (bool, error) {
		scope.entries[0].row = row
		for i, c := range pushdown {
			if i == usedIdx {
				continue
			}
			v, err := db.evalExpr(sctx, c.expr)
			if err != nil {
				return false, err
			}
			if types.TriboolFromValue(v) != types.True {
				return false, nil
			}
		}
		return true, nil
	}

	scanOrds := func(ords []int) error {
		db.Stats.RowsScanned += int64(len(ords))
		db.Proc.AddRowsScanned(int64(len(ords)))
		if err := db.Proc.Killed(); err != nil {
			return err
		}
		for _, i := range ords {
			ok, err := check(t.Rows[i])
			if err != nil {
				return err
			}
			if ok {
				out.rows = append(out.rows, [][]types.Value{t.Rows[i]})
				out.ords = append(out.ords, i)
			}
		}
		return nil
	}

	if usedIdx >= 0 {
		if err := scanOrds(candidates); err != nil {
			return nil, err
		}
		return out, nil
	}

	// Interval-index path: the point-overlap pair MAX slicing injects
	// (t.begin_time <= X AND X < t.end_time, X constant w.r.t. this
	// scan — typically a routine parameter or outer-query column) is a
	// stab query the temporal overlap index answers in O(log n + k).
	// Every pushdown conjunct, including the pair itself, is still
	// evaluated on the candidates, so rows with non-date endpoints keep
	// exact SQL semantics.
	if !db.DisableIndexes {
		if x := findStab(pushdown, t, meta.alias); x != nil {
			if v, err := db.evalExpr(ctx, x); err == nil &&
				(v.Kind == types.KindDate || v.Kind == types.KindInt) {
				if cands, ok := t.Overlapping(v.I, v.I); ok {
					db.Stats.IntervalProbes++
					if err := scanOrds(cands); err != nil {
						return nil, err
					}
					return out, nil
				}
			}
		}
	}

	db.Stats.RowsScanned += int64(len(t.Rows))
	db.Proc.AddRowsScanned(int64(len(t.Rows)))
	if err := db.Proc.Killed(); err != nil {
		return nil, err
	}
	for i, row := range t.Rows {
		ok, err := check(row)
		if err != nil {
			return nil, err
		}
		if ok {
			out.rows = append(out.rows, [][]types.Value{row})
			out.ords = append(out.ords, i)
		}
	}
	return out, nil
}

// findStab looks among the conjuncts for the injected point-overlap
// pair against the temporal table's period columns: begin <= X (or
// X >= begin) and X < end (or end > X), where both X's render to the
// same SQL and are free of the table's own columns. It returns that X
// expression, or nil when the pattern is absent.
func findStab(cs []*conjunct, t *storage.Table, alias string) sqlast.Expr {
	if !(t.ValidTime || t.TransactionTime) || len(t.Schema.Cols) < 2 {
		return nil
	}
	beginName := t.Schema.Cols[t.BeginCol()].Name
	endName := t.Schema.Cols[t.EndCol()].Name
	meta := []entryMeta{{alias: alias, cols: t.Schema.Names()}}

	isCol := func(e sqlast.Expr, name string) bool {
		cr, ok := e.(*sqlast.ColumnRef)
		if !ok || !strings.EqualFold(cr.Column, name) {
			return false
		}
		return cr.Table == "" || strings.EqualFold(cr.Table, alias)
	}
	freeOf := func(e sqlast.Expr) bool {
		al, _, hasSub, unres := refsOf(e, meta)
		return !hasSub && !unres && len(al) == 0
	}
	var beginXs, endXs []sqlast.Expr
	for _, c := range cs {
		if c.hasSub || c.unresolved {
			continue
		}
		b, ok := c.expr.(*sqlast.BinaryExpr)
		if !ok {
			continue
		}
		switch b.Op {
		case "<=":
			if isCol(b.L, beginName) && freeOf(b.R) {
				beginXs = append(beginXs, b.R)
			}
		case ">=":
			if isCol(b.R, beginName) && freeOf(b.L) {
				beginXs = append(beginXs, b.L)
			}
		case "<":
			if isCol(b.R, endName) && freeOf(b.L) {
				endXs = append(endXs, b.L)
			}
		case ">":
			if isCol(b.L, endName) && freeOf(b.R) {
				endXs = append(endXs, b.R)
			}
		}
	}
	for _, bx := range beginXs {
		bs := renderSQL(bx)
		if bs == "" {
			continue
		}
		for _, ex := range endXs {
			if renderSQL(ex) == bs {
				return bx
			}
		}
	}
	return nil
}

// renderSQL renders an expression back to SQL text for structural
// comparison; "" when the node cannot render itself.
func renderSQL(e sqlast.Expr) string {
	if s, ok := e.(interface{ SQL() string }); ok {
		return s.SQL()
	}
	return ""
}

// resultToRel wraps a materialized result as a relation, applying
// pushdown filters.
func (db *DB) resultToRel(ctx *execCtx, res *Result, meta entryMeta, pushdown []*conjunct) (*rel, error) {
	if len(meta.cols) != len(res.Cols) && len(meta.cols) > 0 && len(res.Cols) > 0 {
		if len(meta.cols) != len(res.Cols) {
			return nil, fmt.Errorf("correlation %s declares %d columns but query produces %d",
				meta.alias, len(meta.cols), len(res.Cols))
		}
	}
	out := &rel{metas: []entryMeta{meta}}
	scope := &rowScope{parent: ctx.scope, entries: []scopeEntry{{alias: meta.alias, cols: meta.cols}}}
	sctx := ctx.withScope(scope)
	for _, row := range res.Rows {
		scope.entries[0].row = row
		keep := true
		for _, c := range pushdown {
			v, err := db.evalExpr(sctx, c.expr)
			if err != nil {
				return nil, err
			}
			if types.TriboolFromValue(v) != types.True {
				keep = false
				break
			}
		}
		if keep {
			out.rows = append(out.rows, [][]types.Value{row})
		}
	}
	return out, nil
}

// evalJoinRef evaluates an explicit JOIN ... ON tree.
func (db *DB) evalJoinRef(ctx *execCtx, j *sqlast.JoinExpr, pushdown []*conjunct) (*rel, error) {
	lm, err := db.sourceMetas(ctx, j.L)
	if err != nil {
		return nil, err
	}
	rm, err := db.sourceMetas(ctx, j.R)
	if err != nil {
		return nil, err
	}
	var lpush, rpush []*conjunct
	for _, c := range pushdown {
		switch {
		case c.subsetOf(lm):
			lpush = append(lpush, c)
		case c.subsetOf(rm) && j.Type == "INNER":
			rpush = append(rpush, c)
		}
	}
	left, err := db.loadOrLateral(ctx, j.L, lm, lpush)
	if err != nil {
		return nil, err
	}
	right, err := db.loadOrLateral(ctx, j.R, rm, rpush)
	if err != nil {
		return nil, err
	}
	onConj := db.splitConjuncts(j.On, append(append([]entryMeta{}, lm...), rm...))
	combined, err := db.joinRels(ctx, left, right, onConj, j.Type == "LEFT")
	if err != nil {
		return nil, err
	}
	// Residual pushdown (conjuncts spanning both sides already in ON;
	// any remaining pushdown conjunct applies post-join for INNER).
	var rest []*conjunct
	for _, c := range pushdown {
		if !contains(lpush, c) && !contains(rpush, c) {
			rest = append(rest, c)
		}
	}
	if len(rest) > 0 {
		if j.Type == "LEFT" {
			// Applied later by the caller as residual; re-filter here
			// would be wrong only if conjunct references the null side;
			// keep conservative and filter after join.
		}
		filtered := combined.rows[:0:0]
		for _, row := range combined.rows {
			scope := bindScope(ctx.scope, combined.metas, row)
			keep := true
			for _, c := range rest {
				v, err := db.evalExpr(ctx.withScope(scope), c.expr)
				if err != nil {
					return nil, err
				}
				if types.TriboolFromValue(v) != types.True {
					keep = false
					break
				}
			}
			if keep {
				filtered = append(filtered, row)
			}
		}
		combined.rows = filtered
	}
	return combined, nil
}

func contains(cs []*conjunct, c *conjunct) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

func (db *DB) loadOrLateral(ctx *execCtx, ref sqlast.TableRef, metas []entryMeta, pushdown []*conjunct) (*rel, error) {
	if tf, ok := ref.(*sqlast.TableFunc); ok {
		// A table function inside a JOIN tree is evaluated with only
		// the outer scope (not lateral to the join's left side).
		rows, err := db.tableFuncRows(ctx, tf, metas[0])
		if err != nil {
			return nil, err
		}
		out := &rel{metas: metas}
		for _, r := range rows {
			out.rows = append(out.rows, [][]types.Value{r})
		}
		return out, nil
	}
	return db.loadSource(ctx, ref, metas, pushdown)
}

// tableFuncRows invokes a collection-returning function and returns its
// rows.
func (db *DB) tableFuncRows(ctx *execCtx, tf *sqlast.TableFunc, meta entryMeta) ([][]types.Value, error) {
	v, err := db.evalFuncCall(ctx, tf.Call)
	if err != nil {
		return nil, err
	}
	if v.IsNull() {
		return nil, nil
	}
	if v.Kind != types.KindTable {
		return nil, fmt.Errorf("function %s used in FROM must return a collection", tf.Call.Name)
	}
	t, ok := v.Aux.(*storage.Table)
	if !ok {
		return nil, fmt.Errorf("function %s returned an invalid collection", tf.Call.Name)
	}
	if len(t.Schema.Cols) != len(meta.cols) {
		return nil, fmt.Errorf("function %s returned %d columns, expected %d",
			tf.Call.Name, len(t.Schema.Cols), len(meta.cols))
	}
	return t.Rows, nil
}

// joinRels joins two relations on the given conjuncts, hash-joining on
// equality conjuncts when possible. leftOuter preserves unmatched left
// rows with NULL extension.
func (db *DB) joinRels(ctx *execCtx, left, right *rel, on []*conjunct, leftOuter bool) (*rel, error) {
	out := &rel{metas: append(append([]entryMeta{}, left.metas...), right.metas...)}

	// split equi conjuncts: one side ⊆ left metas, other ⊆ right metas
	var lkeys, rkeys []sqlast.Expr
	var rest []*conjunct
	for _, c := range on {
		if l, r, ok := c.equiSides(left.metas, right.metas); ok {
			lkeys = append(lkeys, l)
			rkeys = append(rkeys, r)
		} else {
			rest = append(rest, c)
		}
	}
	db.orderByCost(rest)

	cscope := newBoundScope(ctx.scope, out.metas)
	cctx := ctx.withScope(cscope)
	checkRest := func(row [][]types.Value) (bool, error) {
		if len(rest) == 0 {
			return true, nil
		}
		cscope.bind(row)
		for _, c := range rest {
			v, err := db.evalExpr(cctx, c.expr)
			if err != nil {
				return false, err
			}
			if types.TriboolFromValue(v) != types.True {
				return false, nil
			}
		}
		return true, nil
	}

	nullRight := make([][]types.Value, len(right.metas))
	for i, m := range right.metas {
		nr := make([]types.Value, len(m.cols))
		nullRight[i] = nr
	}

	if len(lkeys) > 0 {
		// hash join (the build side is shared across a fragment batch
		// when the right relation came from the prepared plan)
		index, err := db.hashIndexFor(ctx, right, rkeys)
		if err != nil {
			return nil, err
		}
		lscope := newBoundScope(ctx.scope, left.metas)
		lctx := ctx.withScope(lscope)
		for _, lrow := range left.rows {
			lscope.bind(lrow)
			key, null, err := db.keyOf(lctx, lkeys)
			matched := false
			if err != nil {
				return nil, err
			}
			if !null {
				for _, rrow := range index[key] {
					combined := append(append([][]types.Value{}, lrow...), rrow...)
					ok, err := checkRest(combined)
					if err != nil {
						return nil, err
					}
					if ok {
						out.rows = append(out.rows, combined)
						matched = true
					}
				}
			}
			if leftOuter && !matched {
				out.rows = append(out.rows, append(append([][]types.Value{}, lrow...), nullRight...))
			}
		}
		return out, nil
	}

	// Interval stab join: when the right side scanned a stored temporal
	// table and the join predicates contain the injected point-overlap
	// pair t.begin <= X AND X < t.end with X from the left side, probe
	// the right table's interval index per left row instead of testing
	// every (left, right) pair. All rest conjuncts — the pair included —
	// are still evaluated on each candidate, so semantics are exactly
	// the nested loop's.
	if right.tab != nil && len(right.metas) == 1 &&
		len(right.ords) == len(right.rows) && !db.DisableIndexes {
		if x := findStab(rest, right.tab, right.metas[0].alias); x != nil {
			// Sweep-line alternative: one pass over begin-sorted spans
			// and sorted stab points instead of a tree probe per left
			// row; candidate sets, residual checks, and output order are
			// identical to the probe path below.
			if swept, ok, err := db.sweepJoin(ctx, left, right, x, rest, leftOuter); ok {
				return swept, err
			}
			lscope := newBoundScope(ctx.scope, left.metas)
			lctx := ctx.withScope(lscope)
			var cand []int
			for _, lrow := range left.rows {
				lscope.bind(lrow)
				probed := false
				cand = cand[:0]
				if v, err := db.evalExpr(lctx, x); err == nil &&
					(v.Kind == types.KindDate || v.Kind == types.KindInt) {
					if ords, ok := right.tab.Overlapping(v.I, v.I); ok {
						db.Stats.IntervalProbes++
						probed = true
						// Intersect candidate table ordinals with the rows
						// the right scan kept (both ascending).
						j := 0
						for _, o := range ords {
							for j < len(right.ords) && right.ords[j] < o {
								j++
							}
							if j < len(right.ords) && right.ords[j] == o {
								cand = append(cand, j)
								j++
							}
						}
					}
				}
				matched := false
				try := func(rrow [][]types.Value) error {
					combined := append(append([][]types.Value{}, lrow...), rrow...)
					ok, err := checkRest(combined)
					if err != nil {
						return err
					}
					if ok {
						out.rows = append(out.rows, combined)
						matched = true
					}
					return nil
				}
				if probed {
					for _, j := range cand {
						if err := try(right.rows[j]); err != nil {
							return nil, err
						}
					}
				} else {
					// X not evaluable against this left row: fall back to
					// the full inner iteration for it.
					for _, rrow := range right.rows {
						if err := try(rrow); err != nil {
							return nil, err
						}
					}
				}
				if leftOuter && !matched {
					out.rows = append(out.rows, append(append([][]types.Value{}, lrow...), nullRight...))
				}
			}
			return out, nil
		}
	}

	// nested loop
	for _, lrow := range left.rows {
		matched := false
		for _, rrow := range right.rows {
			combined := append(append([][]types.Value{}, lrow...), rrow...)
			ok, err := checkRest(combined)
			if err != nil {
				return nil, err
			}
			if ok {
				out.rows = append(out.rows, combined)
				matched = true
			}
		}
		if leftOuter && !matched {
			out.rows = append(out.rows, append(append([][]types.Value{}, lrow...), nullRight...))
		}
	}
	return out, nil
}

// keyOf evaluates key expressions and returns a composite hash key;
// null=true when any key is NULL (such rows never join).
func (db *DB) keyOf(ctx *execCtx, keys []sqlast.Expr) (string, bool, error) {
	var b strings.Builder
	for _, k := range keys {
		v, err := db.evalExpr(ctx, k)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		b.WriteString(v.HashKey())
		b.WriteByte('|')
	}
	return b.String(), false, nil
}
