package engine

import (
	"fmt"
	"testing"
)

// Temp-table churn between executions — the signature of generated
// MAX/PERST plans, which create and drop scratch tables around every
// statement — must not invalidate cached plans for unrelated queries.
func TestPlanSurvivesTempTableChurn(t *testing.T) {
	db := newTestDB(t)
	prep := NewPrepared()
	stmt := parseStmt(t, `SELECT title FROM item WHERE price > 15.0`)

	first := runPrepared(t, db, prep, stmt, nil)
	h0 := db.Stats.PlanReuseHits
	mustExec(t, db, `
		CREATE TEMP TABLE scratch (x INTEGER);
		INSERT INTO scratch VALUES (1);
		DROP TABLE scratch;
	`)
	second := runPrepared(t, db, prep, stmt, nil)
	if db.Stats.PlanReuseHits <= h0 {
		t.Fatalf("temp-table churn invalidated an unrelated plan (hits %d -> %d)",
			h0, db.Stats.PlanReuseHits)
	}
	if got, want := rowsText(second), rowsText(first); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("results diverged across churn: %v vs %v", got, want)
	}
}

// A plan reading a temp table is still correct when the table is
// recreated: same shape keeps the plan usable, a different shape (or a
// missing table) forces a rebuild rather than serving stale metadata.
func TestPlanValidatesTempTableShape(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TEMP TABLE tt (a INTEGER, b VARCHAR(10));
		INSERT INTO tt VALUES (1, 'x');`)
	stmt := parseStmt(t, `SELECT a, b FROM tt`)
	if _, err := db.ExecStmt(stmt); err != nil {
		t.Fatal(err)
	}

	// Recreate with the columns swapped: the cached plan's metadata no
	// longer matches, so evaluation must re-resolve, not misbind.
	mustExec(t, db, `DROP TABLE tt;
		CREATE TEMP TABLE tt (b VARCHAR(10), a INTEGER);
		INSERT INTO tt VALUES ('y', 2);`)
	res, err := db.ExecStmt(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(rowsText(res)); got != "[2,y]" {
		t.Fatalf("stale plan metadata after temp recreate: %s", got)
	}

	// Dropping the table entirely must surface the resolution error.
	mustExec(t, db, `DROP TABLE tt`)
	if _, err := db.ExecStmt(stmt); err == nil {
		t.Fatal("query over dropped temp table must fail")
	}
}

// A temp table newly shadowing a name that previously resolved to a
// view must invalidate plans built against the view.
func TestPlanInvalidatedByTempShadowingView(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE VIEW pricey (title) AS SELECT title FROM item WHERE price > 15.0`)
	stmt := parseStmt(t, `SELECT title FROM pricey`)
	res, err := db.ExecStmt(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("view query: %d rows, want 2", len(res.Rows))
	}

	mustExec(t, db, `CREATE TEMP TABLE pricey (title VARCHAR(100));
		INSERT INTO pricey VALUES ('only me');`)
	res, err = db.ExecStmt(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(rowsText(res)); got != "[only me]" {
		t.Fatalf("temp table failed to shadow view for cached plan: %s", got)
	}
}
