package engine

import (
	"strings"

	"taupsm/internal/check"
	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// Function-result memoization.
//
// The slicing strategies of the stratum invoke stored functions once
// per (tuple, constant period), and the argument vectors repeat
// heavily — every tuple of one period shares the period's begin time,
// and foreign keys repeat across tuples. When a function is pure
// (reads SQL data but never writes it), two invocations with equal
// arguments must return equal results, so the engine keeps a
// per-statement memo of (function, arguments) → result.
//
// Scope and invalidation: the memo lives for one top-level statement
// (each statement starts with a fresh fnMemoState), and any DML or DDL
// executed during the statement bumps the session's write generation,
// wiping it. Memo hits still count as RoutineCalls — they are logical
// invocations, and the strategy call-count asymmetry the stats exist
// to demonstrate must stay observable — and are additionally counted
// in RoutineMemoHits. Detailed mode (a tracer) bypasses the memo so
// per-invocation spans remain real executions.

// fnMemoCap bounds one statement's memo; overflow wipes wholesale.
const fnMemoCap = 1 << 16

type fnMemoState struct {
	gen int64 // session write generation the entries were computed at
	m   map[string]types.Value
}

// memoLookup returns the cached result for key, wiping entries that
// predate a write.
func (ms *fnMemoState) lookup(db *DB, key string) (types.Value, bool) {
	if ms.gen != db.writeGen {
		ms.m = nil
		ms.gen = db.writeGen
	}
	v, ok := ms.m[key]
	return v, ok
}

func (ms *fnMemoState) store(db *DB, key string, v types.Value) {
	if ms.gen != db.writeGen {
		ms.m = nil
		ms.gen = db.writeGen
	}
	if ms.m == nil {
		ms.m = make(map[string]types.Value)
	} else if len(ms.m) >= fnMemoCap {
		ms.m = make(map[string]types.Value)
	}
	ms.m[key] = v
}

// memoKey builds the memo key for a call, or "" when the call is not
// memoizable (impure routine, or a table-valued argument, whose
// contents the key cannot capture).
func (db *DB) memoKey(r *storage.Routine, args []types.Value) string {
	if r.Fn == nil || r.Fn.Returns.IsCollection() || !db.routinePure(r) {
		return ""
	}
	var b strings.Builder
	b.WriteString(r.Name)
	for _, v := range args {
		if v.Kind == types.KindTable {
			return ""
		}
		b.WriteByte(0)
		b.WriteString(v.HashKey())
	}
	return b.String()
}

// purity is one routinePure verdict. The persistent catalog version is
// a fast-path stamp; on mismatch the verdict revalidates against its
// dependency set — the routines and table names the effect analysis
// consulted — and re-pins if none changed.
type purity struct {
	catV     int64
	pure     bool
	routines map[string]*storage.Routine // consulted routine -> identity at analysis
	tables   map[string]bool             // consulted table name -> existed
}

// depsValid reports whether the recorded dependency set still resolves
// identically: every consulted routine is the same object (PutRoutine
// keeps the pointer when a redefinition renders identically), and every
// consulted table name still (or still doesn't) name a stored table.
func (db *DB) depsValid(routines map[string]*storage.Routine, tables map[string]bool) bool {
	for name, ptr := range routines {
		if db.Cat.Routine(name) != ptr {
			return false
		}
	}
	for name, existed := range tables {
		if (db.Cat.Table(name) != nil) != existed {
			return false
		}
	}
	return true
}

// analysisDeps snapshots the dependency set of an effect summary
// against the live catalog, for later revalidation.
func (db *DB) analysisDeps(sum *check.Summary) (map[string]*storage.Routine, map[string]bool) {
	routines := make(map[string]*storage.Routine, len(sum.Routines))
	for name := range sum.Routines {
		routines[name] = db.Cat.Routine(name)
	}
	tables := make(map[string]bool, len(sum.Tables))
	for name, existed := range sum.Tables {
		tables[name] = existed
	}
	return routines, tables
}

// routinePure reports whether a routine is free of SQL side effects:
// no DML against stored tables, no DDL, and only pure routines called,
// transitively. The verdict itself comes from the static analyzer
// (check.Pure), the single source of truth for effect inference.
// Verdicts are cached by lowercased routine name with two-level
// invalidation: a matching persistent catalog version accepts
// immediately, and a mismatched one falls back to the verdict's
// inferred dependency set (the routines and tables the analysis
// consulted) — unrelated DDL re-pins the verdict instead of
// recomputing it, while redefining the routine or any callee misses
// both levels (CREATE OR REPLACE installs a new *storage.Routine).
// The cache is a sync.Map because parallel fragment workers share it
// through their session handles.
func (db *DB) routinePure(r *storage.Routine) bool {
	catV := db.Cat.PersistentVersion()
	key := strings.ToLower(r.Name)
	if v, ok := db.fnPure.Load(key); ok {
		p := v.(purity)
		if p.catV == catV {
			return p.pure
		}
		if db.depsValid(p.routines, p.tables) {
			p.catV = catV
			db.fnPure.Store(key, p)
			return p.pure
		}
	}
	cat := check.FromStorage(db.Cat)
	pure := check.Pure(cat, r.Name)
	routines, tables := db.analysisDeps(check.SummarizeRoutine(cat, r.Name))
	db.fnPure.Store(key, purity{catV: catV, pure: pure, routines: routines, tables: tables})
	return pure
}

// RoutinePure reports whether the named stored routine is free of SQL
// side effects, or false when no such routine exists.
func (db *DB) RoutinePure(name string) bool {
	r := db.Cat.Routine(name)
	if r == nil {
		return false
	}
	return db.routinePure(r)
}
