package engine

import (
	"strings"

	"taupsm/internal/check"
	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// Function-result memoization.
//
// The slicing strategies of the stratum invoke stored functions once
// per (tuple, constant period), and the argument vectors repeat
// heavily — every tuple of one period shares the period's begin time,
// and foreign keys repeat across tuples. When a function is pure
// (reads SQL data but never writes it), two invocations with equal
// arguments must return equal results, so the engine keeps a
// per-statement memo of (function, arguments) → result.
//
// Scope and invalidation: the memo lives for one top-level statement
// (each statement starts with a fresh fnMemoState), and any DML or DDL
// executed during the statement bumps the session's write generation,
// wiping it. Memo hits still count as RoutineCalls — they are logical
// invocations, and the strategy call-count asymmetry the stats exist
// to demonstrate must stay observable — and are additionally counted
// in RoutineMemoHits. Detailed mode (a tracer) bypasses the memo so
// per-invocation spans remain real executions.

// fnMemoCap bounds one statement's memo; overflow wipes wholesale.
const fnMemoCap = 1 << 16

type fnMemoState struct {
	gen int64 // session write generation the entries were computed at
	m   map[string]types.Value
}

// memoLookup returns the cached result for key, wiping entries that
// predate a write.
func (ms *fnMemoState) lookup(db *DB, key string) (types.Value, bool) {
	if ms.gen != db.writeGen {
		ms.m = nil
		ms.gen = db.writeGen
	}
	v, ok := ms.m[key]
	return v, ok
}

func (ms *fnMemoState) store(db *DB, key string, v types.Value) {
	if ms.gen != db.writeGen {
		ms.m = nil
		ms.gen = db.writeGen
	}
	if ms.m == nil {
		ms.m = make(map[string]types.Value)
	} else if len(ms.m) >= fnMemoCap {
		ms.m = make(map[string]types.Value)
	}
	ms.m[key] = v
}

// memoKey builds the memo key for a call, or "" when the call is not
// memoizable (impure routine, or a table-valued argument, whose
// contents the key cannot capture).
func (db *DB) memoKey(r *storage.Routine, args []types.Value) string {
	if r.Fn == nil || r.Fn.Returns.IsCollection() || !db.routinePure(r) {
		return ""
	}
	var b strings.Builder
	b.WriteString(r.Name)
	for _, v := range args {
		if v.Kind == types.KindTable {
			return ""
		}
		b.WriteByte(0)
		b.WriteString(v.HashKey())
	}
	return b.String()
}

// purity is one routinePure verdict, valid for a persistent catalog
// version.
type purity struct {
	catV int64
	pure bool
}

// routinePure reports whether a routine is free of SQL side effects:
// no DML against stored tables, no DDL, and only pure routines called,
// transitively. The verdict itself comes from the static analyzer
// (check.Pure), the single source of truth for effect inference.
// Verdicts are cached by lowercased routine name and revalidated
// against the persistent catalog version — a CREATE OR REPLACE of the
// routine (or of any callee) bumps that version, so redefinition
// invalidates naturally even though the new *storage.Routine is a
// different object, while the temp-table churn of generated plans
// (which cannot change routine purity) leaves verdicts warm. The
// cache is a sync.Map because parallel fragment workers share it
// through their session handles.
func (db *DB) routinePure(r *storage.Routine) bool {
	catV := db.Cat.PersistentVersion()
	key := strings.ToLower(r.Name)
	if v, ok := db.fnPure.Load(key); ok {
		if p := v.(purity); p.catV == catV {
			return p.pure
		}
	}
	pure := check.Pure(check.FromStorage(db.Cat), r.Name)
	db.fnPure.Store(key, purity{catV: catV, pure: pure})
	return pure
}

// RoutinePure reports whether the named stored routine is free of SQL
// side effects, or false when no such routine exists.
func (db *DB) RoutinePure(name string) bool {
	r := db.Cat.Routine(name)
	if r == nil {
		return false
	}
	return db.routinePure(r)
}
