package engine

import (
	"testing"
)

// memoDB is a database with a pure function over a mutable table and a
// driver procedure that calls it repeatedly in one statement.
func memoDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, `
		CREATE TABLE counters (k INTEGER, v INTEGER);
		INSERT INTO counters VALUES (1, 100), (2, 200);
		CREATE FUNCTION get_v (kk INTEGER)
		RETURNS INTEGER
		READS SQL DATA
		LANGUAGE SQL
		BEGIN
		  DECLARE r INTEGER;
		  SET r = (SELECT v FROM counters WHERE k = kk);
		  RETURN r;
		END;
	`)
	return db
}

// A pure function called twice with the same argument in one statement
// executes once; the second call is a memo hit that still counts as a
// logical routine call.
func TestFnMemoHitCountsAsCall(t *testing.T) {
	db := memoDB(t)
	base := db.Stats
	res := mustExec(t, db, `SELECT get_v(1) + get_v(1) + get_v(2) FROM counters WHERE k = 1`)
	if got := res.Rows[0][0].Int(); got != 400 {
		t.Fatalf("result = %d, want 400", got)
	}
	if calls := db.Stats.RoutineCalls - base.RoutineCalls; calls != 3 {
		t.Fatalf("RoutineCalls delta = %d, want 3 (memo hits are logical calls)", calls)
	}
	if hits := db.Stats.RoutineMemoHits - base.RoutineMemoHits; hits != 1 {
		t.Fatalf("RoutineMemoHits delta = %d, want 1", hits)
	}
}

// The memo is scoped to one statement: a later statement re-executes
// the function and sees data changed between statements.
func TestFnMemoPerStatement(t *testing.T) {
	db := memoDB(t)
	r1 := mustExec(t, db, `SELECT get_v(1) FROM counters WHERE k = 1`)
	mustExec(t, db, `UPDATE counters SET v = 111 WHERE k = 1`)
	r2 := mustExec(t, db, `SELECT get_v(1) FROM counters WHERE k = 1`)
	if a, b := r1.Rows[0][0].Int(), r2.Rows[0][0].Int(); a != 100 || b != 111 {
		t.Fatalf("got %d then %d, want 100 then 111", a, b)
	}
}

// DML inside the statement wipes the memo: a procedure that reads,
// writes, and re-reads through the same pure function must observe the
// write.
func TestFnMemoInvalidatedByWriteInStatement(t *testing.T) {
	db := memoDB(t)
	mustExec(t, db, `
		CREATE TABLE probe (a INTEGER, b INTEGER);
		CREATE PROCEDURE read_write_read ()
		MODIFIES SQL DATA
		LANGUAGE SQL
		BEGIN
		  DECLARE before INTEGER;
		  DECLARE after INTEGER;
		  SET before = get_v(1);
		  UPDATE counters SET v = 999 WHERE k = 1;
		  SET after = get_v(1);
		  INSERT INTO probe VALUES (before, after);
		END;
	`)
	mustExec(t, db, `CALL read_write_read()`)
	res := mustExec(t, db, `SELECT a, b FROM probe`)
	if a, b := res.Rows[0][0].Int(), res.Rows[0][1].Int(); a != 100 || b != 999 {
		t.Fatalf("read-write-read saw %d then %d, want 100 then 999", a, b)
	}
}

// A function that writes a stored table is impure and never memoized —
// every call runs.
func TestFnMemoSkipsImpureFunctions(t *testing.T) {
	db := memoDB(t)
	mustExec(t, db, `
		CREATE TABLE audit (n INTEGER);
		CREATE FUNCTION noisy_v (kk INTEGER)
		RETURNS INTEGER
		MODIFIES SQL DATA
		LANGUAGE SQL
		BEGIN
		  INSERT INTO audit VALUES (kk);
		  RETURN (SELECT v FROM counters WHERE k = kk);
		END;
	`)
	mustExec(t, db, `SELECT noisy_v(1) + noisy_v(1) FROM counters WHERE k = 1`)
	res := mustExec(t, db, `SELECT n FROM audit`)
	if len(res.Rows) != 2 {
		t.Fatalf("impure function ran %d times, want 2", len(res.Rows))
	}
	if db.Stats.RoutineMemoHits != 0 {
		t.Fatalf("RoutineMemoHits = %d for an impure function, want 0", db.Stats.RoutineMemoHits)
	}
	// Transitively: a pure-looking wrapper around an impure callee is
	// impure too.
	mustExec(t, db, `
		CREATE FUNCTION wrapper (kk INTEGER)
		RETURNS INTEGER
		READS SQL DATA
		LANGUAGE SQL
		BEGIN
		  RETURN noisy_v(kk);
		END;
	`)
	mustExec(t, db, `SELECT wrapper(2) + wrapper(2) FROM counters WHERE k = 1`)
	res = mustExec(t, db, `SELECT n FROM audit`)
	if len(res.Rows) != 4 {
		t.Fatalf("impure wrapper ran %d audit inserts total, want 4", len(res.Rows))
	}
}

// DisableFnMemo turns the optimization off: repeated calls all execute
// and no memo hits are counted.
func TestFnMemoDisabled(t *testing.T) {
	db := memoDB(t)
	db.DisableFnMemo = true
	mustExec(t, db, `SELECT get_v(1) + get_v(1) FROM counters WHERE k = 1`)
	if db.Stats.RoutineMemoHits != 0 {
		t.Fatalf("RoutineMemoHits = %d with memo disabled, want 0", db.Stats.RoutineMemoHits)
	}
	if db.Stats.RoutineCalls != 2 {
		t.Fatalf("RoutineCalls = %d, want 2", db.Stats.RoutineCalls)
	}
}
