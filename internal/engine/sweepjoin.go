package engine

import (
	"sort"

	"taupsm/internal/core"
	"taupsm/internal/sqlast"
	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// sweepJoin is the sweep-line alternative to the per-row interval-stab
// probe in joinRels: instead of descending the right table's interval
// tree once per left row (allocating and re-sorting a candidate list
// each time), it sorts the left rows' stab points once, walks the
// right side's begin-sorted spans once, and maintains the set of open
// intervals in a min-heap on end. Every left row receives exactly the
// candidate set Overlapping would have returned — open spans plus the
// rows with non-temporal endpoints, in ascending row order — and all
// rest conjuncts (the stab pair included) are still evaluated per
// candidate, so results and row order are bit-identical to the probe
// and nested-loop paths.
//
// Whether the sweep pays off is decided by core.ChooseJoin from the
// relation sizes and, when the table has been ANALYZEd, the overlap
// depth recorded by internal/stats — deep overlap makes per-probe
// candidate collection expensive and favors the shared sweep.
// Returns ok=false when the sweep was not chosen or spans are
// unavailable; the caller falls back to the probe path.
func (db *DB) sweepJoin(ctx *execCtx, left, right *rel, x sqlast.Expr, rest []*conjunct, leftOuter bool) (*rel, bool, error) {
	if db.DisableSweepJoin {
		return nil, false, nil
	}
	fullTable := len(right.rows) == len(right.tab.Rows)
	depth, analyzed := db.TabStats.OverlapDepth(right.tab)
	if !analyzed {
		depth = 0
	}
	sweep, _ := core.ChooseJoin(core.JoinFeatures{
		OuterRows:    int64(len(left.rows)),
		InnerRows:    int64(len(right.rows)),
		OverlapDepth: depth,
		SpansCached:  fullTable || right.prepEnt != nil,
	})
	if !sweep {
		return nil, false, nil
	}
	spans, odd, ok := db.spansForRel(right, fullTable)
	if !ok {
		return nil, false, nil
	}

	out := &rel{metas: append(append([]entryMeta{}, left.metas...), right.metas...)}
	cscope := newBoundScope(ctx.scope, out.metas)
	cctx := ctx.withScope(cscope)
	checkRest := func(row [][]types.Value) (bool, error) {
		cscope.bind(row)
		for _, c := range rest {
			v, err := db.evalExpr(cctx, c.expr)
			if err != nil {
				return false, err
			}
			if types.TriboolFromValue(v) != types.True {
				return false, nil
			}
		}
		return true, nil
	}
	nullRight := make([][]types.Value, len(right.metas))
	for i, m := range right.metas {
		nullRight[i] = make([]types.Value, len(m.cols))
	}

	// Pass 1: evaluate the stab point of every left row. Rows where X
	// is not a plain date/int fall back to the full inner iteration,
	// exactly as in the probe path.
	type stabPt struct {
		p int64
		i int
	}
	pts := make([]stabPt, 0, len(left.rows))
	evaluable := make([]bool, len(left.rows))
	lscope := newBoundScope(ctx.scope, left.metas)
	lctx := ctx.withScope(lscope)
	for i, lrow := range left.rows {
		lscope.bind(lrow)
		if v, err := db.evalExpr(lctx, x); err == nil &&
			(v.Kind == types.KindDate || v.Kind == types.KindInt) {
			pts = append(pts, stabPt{p: v.I, i: i})
			evaluable[i] = true
		}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].p < pts[b].p })

	// Pass 2: sweep. Spans with begin <= p enter the heap; spans with
	// end <= p leave (the half-open [begin, end) semantics of
	// Overlapping). All points with the same value share one candidate
	// slice.
	db.Stats.SweepJoins++
	cand := make([][]int, len(left.rows))
	var h spanHeap
	si := 0
	for k := 0; k < len(pts); {
		p := pts[k].p
		for si < len(spans) && spans[si].Begin <= p {
			h.push(spans[si])
			si++
		}
		for len(h) > 0 && h[0].End <= p {
			h.pop()
		}
		js := make([]int, 0, len(h)+len(odd))
		for _, s := range h {
			js = append(js, s.Ord)
		}
		js = append(js, odd...)
		sort.Ints(js)
		for ; k < len(pts) && pts[k].p == p; k++ {
			cand[pts[k].i] = js
		}
	}

	// Pass 3: emit in the original left-row order.
	for i, lrow := range left.rows {
		matched := false
		try := func(rrow [][]types.Value) error {
			combined := append(append([][]types.Value{}, lrow...), rrow...)
			ok, err := checkRest(combined)
			if err != nil {
				return err
			}
			if ok {
				out.rows = append(out.rows, combined)
				matched = true
			}
			return nil
		}
		if evaluable[i] {
			for _, j := range cand[i] {
				if err := try(right.rows[j]); err != nil {
					return nil, true, err
				}
			}
		} else {
			for _, rrow := range right.rows {
				if err := try(rrow); err != nil {
					return nil, true, err
				}
			}
		}
		if leftOuter && !matched {
			out.rows = append(out.rows, append(append([][]types.Value{}, lrow...), nullRight...))
		}
	}
	return out, true, nil
}

// spansForRel returns the right relation's periods as begin-sorted
// spans whose Ord indexes right.rows, plus the row indexes with
// non-temporal endpoints. A full-table scan uses the spans cached on
// the storage interval index (row index == table ordinal there); a
// filtered relation builds them from its own rows, caching on the
// prepared entry when one is attached.
func (db *DB) spansForRel(right *rel, fullTable bool) (spans []storage.IntervalSpan, odd []int, ok bool) {
	if fullTable {
		return right.tab.SortedSpans()
	}
	if ent := right.prepEnt; ent != nil {
		if sp, od, built, valid := ent.cachedSpans(); built {
			return sp, od, valid
		}
	}
	spans, odd, ok = buildRelSpans(right)
	if ent := right.prepEnt; ent != nil {
		ent.putSpans(spans, odd, ok)
	}
	return spans, odd, ok
}

// buildRelSpans extracts [begin, end) spans from a filtered scan's
// rows, sorted ascending by begin (ties by row index).
func buildRelSpans(right *rel) (spans []storage.IntervalSpan, odd []int, ok bool) {
	t := right.tab
	if !(t.ValidTime || t.TransactionTime) || len(t.Schema.Cols) < 2 {
		return nil, nil, false
	}
	bc, ec := t.BeginCol(), t.EndCol()
	spans = make([]storage.IntervalSpan, 0, len(right.rows))
	for j, row := range right.rows {
		b, e := row[0][bc], row[0][ec]
		if (b.Kind == types.KindDate || b.Kind == types.KindInt) &&
			(e.Kind == types.KindDate || e.Kind == types.KindInt) {
			spans = append(spans, storage.IntervalSpan{Begin: b.I, End: e.I, Ord: j})
		} else {
			odd = append(odd, j)
		}
	}
	sort.Slice(spans, func(a, b int) bool {
		if spans[a].Begin != spans[b].Begin {
			return spans[a].Begin < spans[b].Begin
		}
		return spans[a].Ord < spans[b].Ord
	})
	return spans, odd, true
}

// spanHeap is a binary min-heap of open spans ordered by End.
type spanHeap []storage.IntervalSpan

func (h *spanHeap) push(s storage.IntervalSpan) {
	*h = append(*h, s)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].End <= q[i].End {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
}

func (h *spanHeap) pop() {
	q := *h
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && q[l].End < q[least].End {
			least = l
		}
		if r < n && q[r].End < q[least].End {
			least = r
		}
		if least == i {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	*h = q
}
