package engine

import (
	"sync"
	"sync/atomic"

	"taupsm/internal/sqlast"
	"taupsm/internal/storage"
)

// selPlan is the cached, immutable analysis of one SELECT: source
// metadata and the conjunct decomposition of its WHERE clause. Those
// two phases are pure functions of the statement and the schema, yet
// the tree-walking evaluator used to redo them on every evaluation —
// under MAX slicing a routine-body SELECT is re-analyzed once per
// (tuple, constant period) pair, which profiling showed to be a
// double-digit share of sequenced execution time.
//
// A plan is valid while every name resolves the same way it did at
// build time: names that resolved to table-valued variables still do
// (with the same column list), names that resolved to catalog objects
// are not shadowed by a variable now, and names that resolved to
// catalog tables still reach a table with the same column list. The
// persistent catalog version serves as a fast path: while it matches,
// the recorded resolutions of durable objects cannot have changed.
// When it differs, the plan is not discarded outright — its inferred
// read set (the recorded resolutions) is revalidated name by name, and
// on success the plan re-pins to the new version. Unrelated DDL (a
// table or routine this statement never touches) therefore leaves warm
// plans warm. Plans are shared by concurrent evaluation sessions, so
// everything reachable from one is read-only except the atomic
// version pin.
type selPlan struct {
	catVersion atomic.Int64 // Catalog.PersistentVersion last validated at
	srcMetas   [][]entryMeta
	allMetas   []entryMeta
	conjuncts  []*conjunct
	varTables  map[string][]string    // lower var name -> column names at build
	catTables  map[string]catResolved // lower name -> catalog resolution at build
}

// catResolved pins how a FROM name resolved through the catalog when
// the plan was built: to a table (with its column list), to a view
// (by identity), or to a system table (neither).
type catResolved struct {
	table bool
	cols  []string
	view  *storage.View // non-nil when the name resolved to a view
}

// planRecorder collects, during plan building, how each base-table
// name was resolved, for revalidation on reuse.
type planRecorder struct {
	varTables map[string][]string
	catTables map[string]catResolved
}

// planCache maps SELECT nodes (by identity) to their plans. Entries
// are never deleted individually — staleness is detected by selPlan
// validation — but the whole cache is wiped when it outgrows
// planCacheCap, bounding memory when many one-shot statements flow
// through (warm statements simply rebuild their plans once).
type planCache struct {
	m sync.Map // *sqlast.SelectStmt -> *selPlan
	n atomic.Int64
}

const planCacheCap = 8192

func newPlanCache() *planCache { return &planCache{} }

func (pc *planCache) get(sel *sqlast.SelectStmt) *selPlan {
	if v, ok := pc.m.Load(sel); ok {
		return v.(*selPlan)
	}
	return nil
}

func (pc *planCache) put(sel *sqlast.SelectStmt, p *selPlan) {
	if _, loaded := pc.m.Swap(sel, p); !loaded {
		if pc.n.Add(1) > planCacheCap {
			pc.m.Range(func(k, _ any) bool {
				pc.m.Delete(k)
				return true
			})
			pc.n.Store(0)
		}
	}
}

// valid reports whether the plan's name resolution still holds in ctx.
// On a persistent-version mismatch the recorded resolutions are
// revalidated individually; if they all hold, the plan re-pins to the
// current version instead of rebuilding. The version is read before
// the checks, so a racing DDL can only leave the pin too old (a
// spurious revalidation next time), never too new.
func (p *selPlan) valid(db *DB, ctx *execCtx) bool {
	catV := db.Cat.PersistentVersion()
	repin := p.catVersion.Load() != catV
	for name, cols := range p.varTables {
		if ctx.vars == nil {
			return false
		}
		tv := ctx.vars.getTable(name)
		if tv == nil {
			return false
		}
		if !sameCols(tv.Schema.Names(), cols) {
			return false
		}
	}
	for name, res := range p.catTables {
		if ctx.vars != nil && ctx.vars.getTable(name) != nil {
			return false // now shadowed by a table variable
		}
		t := db.Cat.Table(name)
		if !res.table {
			// Resolved past the table map (to a view or system table):
			// any table carrying the name now — e.g. a freshly created
			// temp table — would shadow that resolution.
			if t != nil {
				return false
			}
			if repin {
				// A view's output columns can depend on other objects
				// (star expansion), which identity alone doesn't pin:
				// rebuild views on any schema change. System tables
				// (view == nil) have code-defined schemas; just confirm
				// no view took the name.
				if res.view != nil || db.Cat.View(name) != nil {
					return false
				}
			}
			continue
		}
		// Column identity is the real validity condition; the persistent
		// version only fast-paths it. This covers temporary tables on
		// the fast path and every table under revalidation.
		if t == nil || !sameCols(t.Schema.Names(), res.cols) {
			return false
		}
	}
	if repin {
		p.catVersion.Store(catV)
	}
	return true
}

func sameCols(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// selPlanFor returns the plan for sel, building (and caching) it when
// missing or stale.
func (db *DB) selPlanFor(ctx *execCtx, sel *sqlast.SelectStmt) (*selPlan, error) {
	if p := db.plans.get(sel); p != nil && p.valid(db, ctx) {
		return p, nil
	}
	p, err := db.buildSelPlan(ctx, sel)
	if err != nil {
		return nil, err
	}
	db.plans.put(sel, p)
	return p, nil
}

// buildSelPlan runs the analysis phases of evalSelect: source metas
// for every FROM entry, then conjunct decomposition of WHERE.
func (db *DB) buildSelPlan(ctx *execCtx, sel *sqlast.SelectStmt) (*selPlan, error) {
	// Read the schema version before resolving, so a racing DDL can
	// only make the stamp too old (a spurious rebuild), never too new.
	catVersion := db.Cat.PersistentVersion()
	rec := &planRecorder{
		varTables: map[string][]string{},
		catTables: map[string]catResolved{},
	}
	rctx := *ctx
	rctx.planRec = rec

	var allMetas []entryMeta
	srcMetas := make([][]entryMeta, len(sel.From))
	for i, fr := range sel.From {
		ms, err := db.sourceMetas(&rctx, fr)
		if err != nil {
			return nil, err
		}
		srcMetas[i] = ms
		allMetas = append(allMetas, ms...)
	}
	conjuncts := db.splitConjuncts(sel.Where, allMetas)
	p := &selPlan{
		srcMetas:  srcMetas,
		allMetas:  allMetas,
		conjuncts: conjuncts,
		varTables: rec.varTables,
		catTables: rec.catTables,
	}
	p.catVersion.Store(catVersion)
	return p, nil
}
