package engine

import (
	"fmt"
	"sort"
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/types"
)

// conjunct is one AND-factor of a WHERE clause, annotated with the
// correlation names (of the current query level) it references.
type conjunct struct {
	expr       sqlast.Expr
	aliases    map[string]bool
	hasSub     bool
	unresolved bool
	// external marks conjuncts referencing names that resolve outside
	// this query level's metas — routine parameters, outer-query
	// columns. Their value can change between executions of the same
	// statement, so a prepared plan never caches a relation filtered by
	// one.
	external bool
	// expensive marks conjuncts containing subqueries or stored-routine
	// calls. Computed eagerly at analysis time so conjuncts cached in a
	// selPlan are immutable and safe to share across sessions.
	expensive bool
}

// refsOf analyzes which of the metas' aliases expr references.
// external reports references that resolve outside the metas.
func refsOf(expr sqlast.Expr, metas []entryMeta) (aliases map[string]bool, external, hasSub, unresolved bool) {
	aliases = map[string]bool{}
	sqlast.Walk(expr, func(n sqlast.Node) bool {
		switch x := n.(type) {
		case *sqlast.SubqueryExpr, *sqlast.ExistsExpr:
			hasSub = true
			return false
		case *sqlast.InExpr:
			if x.Sub != nil {
				hasSub = true
			}
			return true
		case *sqlast.ColumnRef:
			if x.Table != "" {
				found := false
				for _, m := range metas {
					if strings.EqualFold(m.alias, x.Table) {
						aliases[strings.ToLower(m.alias)] = true
						found = true
						break
					}
				}
				if !found {
					external = true
				}
				return true
			}
			matches := 0
			last := ""
			for _, m := range metas {
				for _, c := range m.cols {
					if strings.EqualFold(c, x.Column) {
						matches++
						last = strings.ToLower(m.alias)
						break
					}
				}
			}
			switch matches {
			case 0:
				external = true
			case 1:
				aliases[last] = true
			default:
				unresolved = true
			}
		}
		return true
	})
	return
}

// splitConjuncts decomposes a WHERE clause into AND-factors analyzed
// against metas.
func (db *DB) splitConjuncts(where sqlast.Expr, metas []entryMeta) []*conjunct {
	var exprs []sqlast.Expr
	var split func(e sqlast.Expr)
	split = func(e sqlast.Expr) {
		if b, ok := e.(*sqlast.BinaryExpr); ok && b.Op == "AND" {
			split(b.L)
			split(b.R)
			return
		}
		exprs = append(exprs, e)
	}
	if where != nil {
		split(where)
	}
	out := make([]*conjunct, 0, len(exprs))
	for _, e := range exprs {
		al, ext, hasSub, unres := refsOf(e, metas)
		c := &conjunct{expr: e, aliases: al, hasSub: hasSub, unresolved: unres, external: ext}
		c.expensive = hasSub || db.callsRoutine(e)
		out = append(out, c)
	}
	return out
}

// callsRoutine reports whether the expression invokes a stored routine.
func (db *DB) callsRoutine(e sqlast.Expr) bool {
	found := false
	sqlast.Walk(e, func(n sqlast.Node) bool {
		if fc, ok := n.(*sqlast.FuncCall); ok {
			if db.Cat.Routine(fc.Name) != nil {
				found = true
			}
		}
		return !found
	})
	return found
}

// subsetOf reports whether the conjunct references only the given
// metas' aliases (and is safe to push down to them).
func (c *conjunct) subsetOf(metas []entryMeta) bool {
	if c.unresolved || c.hasSub {
		return false
	}
	for a := range c.aliases {
		found := false
		for _, m := range metas {
			if strings.EqualFold(m.alias, a) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// equiSides reports whether the conjunct is an equality whose sides
// reference exclusively the left and right metas respectively.
func (c *conjunct) equiSides(lm, rm []entryMeta) (sqlast.Expr, sqlast.Expr, bool) {
	if c.unresolved || c.hasSub {
		return nil, nil, false
	}
	b, ok := c.expr.(*sqlast.BinaryExpr)
	if !ok || b.Op != "=" {
		return nil, nil, false
	}
	la, lext, lsub, lunres := refsOf(b.L, append(append([]entryMeta{}, lm...), rm...))
	ra, rext, rsub, runres := refsOf(b.R, append(append([]entryMeta{}, lm...), rm...))
	if lsub || rsub || lunres || runres || lext || rext {
		return nil, nil, false
	}
	onlyIn := func(as map[string]bool, ms []entryMeta) bool {
		if len(as) == 0 {
			return false
		}
		for a := range as {
			found := false
			for _, m := range ms {
				if strings.EqualFold(m.alias, a) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	switch {
	case onlyIn(la, lm) && onlyIn(ra, rm):
		return b.L, b.R, true
	case onlyIn(la, rm) && onlyIn(ra, lm):
		return b.R, b.L, true
	}
	return nil, nil, false
}

// indexable reports a column of this source compared for equality with
// an expression free of this source's columns: (col, valueExpr).
func (c *conjunct) indexable(alias string, cols []string) (string, sqlast.Expr) {
	if c.hasSub || c.unresolved {
		return "", nil
	}
	b, ok := c.expr.(*sqlast.BinaryExpr)
	if !ok || b.Op != "=" {
		return "", nil
	}
	meta := []entryMeta{{alias: alias, cols: cols}}
	try := func(colSide, valSide sqlast.Expr) (string, sqlast.Expr) {
		cr, ok := colSide.(*sqlast.ColumnRef)
		if !ok {
			return "", nil
		}
		if cr.Table != "" && !strings.EqualFold(cr.Table, alias) {
			return "", nil
		}
		found := false
		for _, cc := range cols {
			if strings.EqualFold(cc, cr.Column) {
				found = true
				break
			}
		}
		if !found {
			return "", nil
		}
		va, _, vsub, vunres := refsOf(valSide, meta)
		if vsub || vunres || len(va) > 0 {
			return "", nil
		}
		return cr.Column, valSide
	}
	if col, v := try(b.L, b.R); col != "" {
		return col, v
	}
	return try(b.R, b.L)
}

// orderByCost stably moves conjuncts that invoke stored routines (or
// contain subqueries) after plain predicates.
func (db *DB) orderByCost(cs []*conjunct) {
	if db.DisableCostOrdering {
		return
	}
	cheap := make([]*conjunct, 0, len(cs))
	var costly []*conjunct
	for _, c := range cs {
		if c.expensive {
			costly = append(costly, c)
		} else {
			cheap = append(cheap, c)
		}
	}
	copy(cs, append(cheap, costly...))
}

// evalQuery evaluates any query body.
func (db *DB) evalQuery(ctx *execCtx, q sqlast.QueryExpr) (*Result, error) {
	return db.evalQueryLimited(ctx, q, 0)
}

// evalQueryLimited is evalQuery with an optional row-count hint
// (0 = unlimited) used by EXISTS and scalar subqueries.
func (db *DB) evalQueryLimited(ctx *execCtx, q sqlast.QueryExpr, limitHint int) (*Result, error) {
	switch x := q.(type) {
	case *sqlast.SelectStmt:
		return db.evalSelect(ctx, x, limitHint)
	case *sqlast.SetOpExpr:
		return db.evalSetOp(ctx, x)
	case *sqlast.ValuesExpr:
		var res Result
		for _, row := range x.Rows {
			var out []types.Value
			for _, e := range row {
				v, err := db.evalExpr(ctx, e)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			}
			res.Rows = append(res.Rows, out)
		}
		if len(x.Rows) > 0 {
			for i := range x.Rows[0] {
				res.Cols = append(res.Cols, fmt.Sprintf("col%d", i+1))
			}
		}
		return &res, nil
	}
	return nil, fmt.Errorf("engine: unsupported query %T", q)
}

func (db *DB) evalSelect(ctx *execCtx, sel *sqlast.SelectStmt, limitHint int) (*Result, error) {
	// FROM-less SELECT evaluates items once in the current scope.
	if len(sel.From) == 0 {
		res := &Result{}
		var row []types.Value
		for i, it := range sel.Items {
			if it.Star || it.TableStar != "" {
				return nil, fmt.Errorf("SELECT * requires a FROM clause")
			}
			v, err := db.evalExpr(ctx, it.Expr)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			res.Cols = append(res.Cols, itemName(it, i))
		}
		if sel.Where != nil {
			v, err := db.evalExpr(ctx, sel.Where)
			if err != nil {
				return nil, err
			}
			if types.TriboolFromValue(v) != types.True {
				return res, nil
			}
		}
		res.Rows = append(res.Rows, row)
		return res, nil
	}

	// Phases A (source metas) and B (conjunct analysis) are pure
	// functions of the statement and the schema; fetch them from the
	// shared plan cache (building on miss).
	plan, err := db.selPlanFor(ctx, sel)
	if err != nil {
		return nil, err
	}
	srcMetas, conjuncts := plan.srcMetas, plan.conjuncts
	used := make(map[*conjunct]bool)

	// Phase C: sequential join.
	acc := &rel{rows: [][][]types.Value{{}}}
	for i, fr := range sel.From {
		ms := srcMetas[i]
		combinedMetas := append(append([]entryMeta{}, acc.metas...), ms...)

		if tf, ok := fr.(*sqlast.TableFunc); ok {
			// Lateral: evaluate per accumulated row.
			next := &rel{metas: combinedMetas}
			var applicable []*conjunct
			for _, c := range conjuncts {
				if !used[c] && c.subsetOf(combinedMetas) && !c.hasSub {
					applicable = append(applicable, c)
					used[c] = true
				}
			}
			db.orderByCost(applicable)
			for _, arow := range acc.rows {
				scope := bindScope(ctx.scope, acc.metas, arow)
				lctx := ctx.withScope(scope)
				rows, err := db.tableFuncRows(lctx, tf, ms[0])
				if err != nil {
					return nil, err
				}
				for _, frow := range rows {
					combined := append(append([][]types.Value{}, arow...), frow)
					cscope := bindScope(ctx.scope, combinedMetas, combined)
					cctx := ctx.withScope(cscope)
					keep := true
					for _, c := range applicable {
						v, err := db.evalExpr(cctx, c.expr)
						if err != nil {
							return nil, err
						}
						if types.TriboolFromValue(v) != types.True {
							keep = false
							break
						}
					}
					if keep {
						next.rows = append(next.rows, combined)
					}
				}
			}
			acc = next
			continue
		}

		// Pushdown: conjuncts referencing only this source.
		var pushdown []*conjunct
		for _, c := range conjuncts {
			if !used[c] && c.subsetOf(ms) && !c.hasSub && len(c.aliases) > 0 {
				pushdown = append(pushdown, c)
				used[c] = true
			}
		}
		loaded, err := db.loadSourcePrepared(ctx, fr, ms, pushdown)
		if err != nil {
			return nil, err
		}

		if len(acc.metas) == 0 {
			acc = loaded
			continue
		}

		// Join conjuncts applicable once this source is added.
		var joinConj []*conjunct
		for _, c := range conjuncts {
			if !used[c] && c.subsetOf(combinedMetas) && !c.hasSub {
				joinConj = append(joinConj, c)
				used[c] = true
			}
		}
		acc, err = db.joinRels(ctx, acc, loaded, joinConj, false)
		if err != nil {
			return nil, err
		}
	}

	// Residual filter. Cheap predicates run before stored-routine
	// invocations so an overlap or comparison can short-circuit an
	// expensive call (simple selectivity ordering).
	var residual []*conjunct
	for _, c := range conjuncts {
		if !used[c] {
			residual = append(residual, c)
		}
	}
	db.orderByCost(residual)
	if len(residual) > 0 {
		kept := acc.rows[:0:0]
		rscope := newBoundScope(ctx.scope, acc.metas)
		rctx := ctx.withScope(rscope)
		for _, row := range acc.rows {
			rscope.bind(row)
			keep := true
			for _, c := range residual {
				v, err := db.evalExpr(rctx, c.expr)
				if err != nil {
					return nil, err
				}
				if types.TriboolFromValue(v) != types.True {
					keep = false
					break
				}
			}
			if keep {
				kept = append(kept, row)
			}
		}
		acc.rows = kept
	}

	// Aggregation or plain projection.
	aggs := collectAggregates(sel)
	if len(sel.GroupBy) > 0 || len(aggs) > 0 {
		return db.evalGrouped(ctx, sel, acc, aggs)
	}
	return db.project(ctx, sel, acc, limitHint)
}

func itemName(it sqlast.SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(*sqlast.ColumnRef); ok {
		return cr.Column
	}
	return fmt.Sprintf("col%d", i+1)
}

// project evaluates the select list per row, then applies DISTINCT,
// ORDER BY, and the row limit.
func (db *DB) project(ctx *execCtx, sel *sqlast.SelectStmt, acc *rel, limitHint int) (*Result, error) {
	res := &Result{}
	// output column names
	for i, it := range sel.Items {
		switch {
		case it.Star:
			for _, m := range acc.metas {
				res.Cols = append(res.Cols, m.cols...)
			}
		case it.TableStar != "":
			for _, m := range acc.metas {
				if strings.EqualFold(m.alias, it.TableStar) {
					res.Cols = append(res.Cols, m.cols...)
				}
			}
		default:
			res.Cols = append(res.Cols, itemName(it, i))
		}
	}

	var rows []projRow
	fastLimit := limitHint > 0 && len(sel.OrderBy) == 0 && !sel.Distinct

	pscope := newBoundScope(ctx.scope, acc.metas)
	rctx := ctx.withScope(pscope)
	for _, row := range acc.rows {
		pscope.bind(row)
		var vals []types.Value
		for _, it := range sel.Items {
			switch {
			case it.Star:
				for _, er := range row {
					vals = append(vals, er...)
				}
			case it.TableStar != "":
				for mi, m := range acc.metas {
					if strings.EqualFold(m.alias, it.TableStar) {
						vals = append(vals, row[mi]...)
					}
				}
			default:
				v, err := db.evalExpr(rctx, it.Expr)
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
			}
		}
		or := projRow{vals: vals}
		if len(sel.OrderBy) > 0 {
			keys, err := db.orderKeys(rctx, sel, vals)
			if err != nil {
				return nil, err
			}
			or.keys = keys
		}
		rows = append(rows, or)
		if fastLimit && len(rows) >= limitHint {
			break
		}
	}

	return db.finishResult(ctx, sel, res, rows)
}

// projRow is a projected output row with its ORDER BY sort keys.
type projRow struct {
	vals []types.Value
	keys []types.Value
}

// finishResult applies DISTINCT, ORDER BY and FETCH FIRST to projected
// rows.
func (db *DB) finishResult(ctx *execCtx, sel *sqlast.SelectStmt, res *Result, rows []projRow) (*Result, error) {
	if sel.Distinct {
		seen := make(map[string]bool, len(rows))
		dedup := rows[:0:0]
		for _, r := range rows {
			k := rowKey(r.vals)
			if !seen[k] {
				seen[k] = true
				dedup = append(dedup, r)
			}
		}
		rows = dedup
	}
	if len(sel.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			return lessKeys(rows[i].keys, rows[j].keys, sel.OrderBy)
		})
	}
	if sel.Limit != nil {
		lv, err := db.evalExpr(ctx, sel.Limit)
		if err != nil {
			return nil, err
		}
		n := int(lv.Int())
		if n < len(rows) {
			rows = rows[:n]
		}
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, r.vals)
	}
	return res, nil
}

// orderKeys computes ORDER BY sort keys for one output row. ORDER BY
// expressions may be ordinals, select-list aliases, or arbitrary
// expressions over the row scope.
func (db *DB) orderKeys(rctx *execCtx, sel *sqlast.SelectStmt, vals []types.Value) ([]types.Value, error) {
	keys := make([]types.Value, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		// ordinal
		if lit, ok := o.Expr.(*sqlast.Literal); ok && lit.Val.Kind == types.KindInt {
			n := int(lit.Val.I)
			if n >= 1 && n <= len(vals) {
				keys[i] = vals[n-1]
				continue
			}
			return nil, fmt.Errorf("ORDER BY ordinal %d out of range", n)
		}
		// select-list alias
		if cr, ok := o.Expr.(*sqlast.ColumnRef); ok && cr.Table == "" {
			found := false
			for j, it := range sel.Items {
				if it.Alias != "" && strings.EqualFold(it.Alias, cr.Column) && j < len(vals) {
					keys[i] = vals[j]
					found = true
					break
				}
			}
			if found {
				continue
			}
		}
		v, err := db.evalExpr(rctx, o.Expr)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

func lessKeys(a, b []types.Value, order []sqlast.OrderItem) bool {
	for i := range order {
		av, bv := a[i], b[i]
		// NULLs sort last in ascending order.
		switch {
		case av.IsNull() && bv.IsNull():
			continue
		case av.IsNull():
			return order[i].Desc
		case bv.IsNull():
			return !order[i].Desc
		}
		c, ok := types.Compare(av, bv)
		if !ok || c == 0 {
			continue
		}
		if order[i].Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

func rowKey(vals []types.Value) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteString(v.HashKey())
		b.WriteByte('|')
	}
	return b.String()
}

func (db *DB) evalSetOp(ctx *execCtx, so *sqlast.SetOpExpr) (*Result, error) {
	l, err := db.evalQuery(ctx, so.L)
	if err != nil {
		return nil, err
	}
	r, err := db.evalQuery(ctx, so.R)
	if err != nil {
		return nil, err
	}
	if len(l.Cols) != len(r.Cols) {
		return nil, fmt.Errorf("%s operands have different column counts (%d vs %d)", so.Op, len(l.Cols), len(r.Cols))
	}
	res := &Result{Cols: l.Cols}
	switch so.Op {
	case "UNION":
		if so.All {
			res.Rows = append(append([][]types.Value{}, l.Rows...), r.Rows...)
		} else {
			seen := map[string]bool{}
			for _, rows := range [][][]types.Value{l.Rows, r.Rows} {
				for _, row := range rows {
					k := rowKey(row)
					if !seen[k] {
						seen[k] = true
						res.Rows = append(res.Rows, row)
					}
				}
			}
		}
	case "EXCEPT":
		counts := map[string]int{}
		for _, row := range r.Rows {
			counts[rowKey(row)]++
		}
		seen := map[string]bool{}
		for _, row := range l.Rows {
			k := rowKey(row)
			if so.All {
				if counts[k] > 0 {
					counts[k]--
					continue
				}
				res.Rows = append(res.Rows, row)
			} else {
				if counts[k] == 0 && !seen[k] {
					seen[k] = true
					res.Rows = append(res.Rows, row)
				}
			}
		}
	case "INTERSECT":
		counts := map[string]int{}
		for _, row := range r.Rows {
			counts[rowKey(row)]++
		}
		seen := map[string]bool{}
		for _, row := range l.Rows {
			k := rowKey(row)
			if so.All {
				if counts[k] > 0 {
					counts[k]--
					res.Rows = append(res.Rows, row)
				}
			} else {
				if counts[k] > 0 && !seen[k] {
					seen[k] = true
					res.Rows = append(res.Rows, row)
				}
			}
		}
	default:
		return nil, fmt.Errorf("unknown set operation %s", so.Op)
	}
	if len(so.OrderBy) > 0 {
		// Sort by ordinal or column name of the combined result.
		type kr struct {
			vals []types.Value
			keys []types.Value
		}
		rows := make([]kr, len(res.Rows))
		for i, row := range res.Rows {
			keys := make([]types.Value, len(so.OrderBy))
			for j, o := range so.OrderBy {
				switch e := o.Expr.(type) {
				case *sqlast.Literal:
					n := int(e.Val.I)
					if n < 1 || n > len(row) {
						return nil, fmt.Errorf("ORDER BY ordinal %d out of range", n)
					}
					keys[j] = row[n-1]
				case *sqlast.ColumnRef:
					idx := -1
					for k, c := range res.Cols {
						if strings.EqualFold(c, e.Column) {
							idx = k
							break
						}
					}
					if idx < 0 {
						return nil, fmt.Errorf("ORDER BY column %s not in result", e.Column)
					}
					keys[j] = row[idx]
				default:
					return nil, fmt.Errorf("unsupported ORDER BY expression after set operation")
				}
			}
			rows[i] = kr{vals: row, keys: keys}
		}
		sort.SliceStable(rows, func(i, j int) bool { return lessKeys(rows[i].keys, rows[j].keys, so.OrderBy) })
		res.Rows = res.Rows[:0]
		for _, r := range rows {
			res.Rows = append(res.Rows, r.vals)
		}
	}
	return res, nil
}
