package engine

import (
	"fmt"
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/types"
)

// execCtx carries the dynamic state of one evaluation: the row scope
// chain for correlated evaluation, the PSM variable frame of the
// enclosing routine (if any), aggregate shortcut values during group
// output, and a recursion depth guard.
type execCtx struct {
	db      *DB
	vars    *varFrame
	scope   *rowScope
	aggVals map[*sqlast.FuncCall]types.Value
	depth   int
	planRec *planRecorder // non-nil only while building a cached plan
	memo    *fnMemoState  // per-statement function-result memo (nil = off)
	journal *Journal      // undo/redo journal of the enclosing statement (nil = unjournaled)
	prep    *Prepared     // shared prepared-plan caches of a fragment batch (nil = unprepared)
}

// child returns a copy of ctx with a new scope pushed.
func (ctx *execCtx) withScope(s *rowScope) *execCtx {
	c := *ctx
	c.scope = s
	return &c
}

// scopeEntry binds one correlation name to a current row.
type scopeEntry struct {
	alias string
	cols  []string
	row   []types.Value
}

// rowScope is one level of FROM-clause bindings; parent points to the
// enclosing query's scope (for correlated subqueries).
type rowScope struct {
	parent  *rowScope
	entries []scopeEntry
	idx     *scopeIdx // built once probes shows the scope is hot
	probes  int
}

// scopeIdxThreshold is the number of linear-scan lookups a scope level
// serves before it builds its name index: scopes are usually short-
// lived (one routine call, one subquery), and two map allocations cost
// more than a handful of case-folding scans. Only scopes that keep
// resolving names — scan and join loops over many rows — cross it.
const scopeIdxThreshold = 64

// scopeRef locates one column within a scope level; entry -1 marks an
// unqualified name that is ambiguous at this level.
type scopeRef struct{ entry, col int }

// scopeIdx indexes one scope level's names. Scopes are reused across
// every row of a scan or join loop (bind replaces only the row
// pointers), so building the maps once replaces a case-folding scan of
// every entry and column per row with two hash probes.
type scopeIdx struct {
	cols    map[string]scopeRef
	byAlias map[string]map[string]scopeRef // alias → col → ref, first entry wins
}

func (sc *rowScope) index() *scopeIdx {
	if sc.idx != nil {
		return sc.idx
	}
	ix := &scopeIdx{
		cols:    make(map[string]scopeRef),
		byAlias: make(map[string]map[string]scopeRef, len(sc.entries)),
	}
	for i := range sc.entries {
		e := &sc.entries[i]
		al := strings.ToLower(e.alias)
		var am map[string]scopeRef
		if _, seen := ix.byAlias[al]; !seen {
			am = make(map[string]scopeRef, len(e.cols))
			ix.byAlias[al] = am
		}
		for j, c := range e.cols {
			lc := strings.ToLower(c)
			if _, dup := ix.cols[lc]; dup {
				ix.cols[lc] = scopeRef{entry: -1, col: -1}
			} else {
				ix.cols[lc] = scopeRef{entry: i, col: j}
			}
			if am != nil {
				if _, dup := am[lc]; !dup {
					am[lc] = scopeRef{entry: i, col: j}
				}
			}
		}
	}
	sc.idx = ix
	return ix
}

// lookup resolves a possibly qualified column reference against the
// scope chain. found=false means the name is not a column anywhere in
// scope (the caller may then try PSM variables).
func (s *rowScope) lookup(tbl, col string) (types.Value, bool, error) {
	for sc := s; sc != nil; sc = sc.parent {
		if sc.idx == nil {
			if sc.probes < scopeIdxThreshold {
				sc.probes++
				v, ok, stop, err := sc.lookupScan(tbl, col)
				if stop {
					return v, ok, err
				}
				continue
			}
			sc.index()
		}
		ix := sc.idx
		if tbl != "" {
			am, ok := ix.byAlias[strings.ToLower(tbl)]
			if !ok {
				continue
			}
			if r, ok := am[strings.ToLower(col)]; ok {
				return sc.entries[r.entry].row[r.col], true, nil
			}
			return types.Null, false, fmt.Errorf("column %s.%s does not exist", tbl, col)
		}
		if r, ok := ix.cols[strings.ToLower(col)]; ok {
			if r.entry < 0 {
				return types.Null, false, fmt.Errorf("column reference %s is ambiguous", col)
			}
			return sc.entries[r.entry].row[r.col], true, nil
		}
	}
	return types.Null, false, nil
}

// lookupScan is the linear-scan resolution of one scope level; stop
// reports that resolution ends here (found, or a hard error) rather
// than continuing to the parent level.
func (sc *rowScope) lookupScan(tbl, col string) (v types.Value, ok, stop bool, err error) {
	if tbl != "" {
		for i := range sc.entries {
			e := &sc.entries[i]
			if strings.EqualFold(e.alias, tbl) {
				for j, c := range e.cols {
					if strings.EqualFold(c, col) {
						return e.row[j], true, true, nil
					}
				}
				return types.Null, false, true, fmt.Errorf("column %s.%s does not exist", tbl, col)
			}
		}
		return types.Null, false, false, nil
	}
	foundIdx := -1
	var val types.Value
	for i := range sc.entries {
		e := &sc.entries[i]
		for j, c := range e.cols {
			if strings.EqualFold(c, col) {
				if foundIdx >= 0 {
					return types.Null, false, true, fmt.Errorf("column reference %s is ambiguous", col)
				}
				foundIdx = i
				val = e.row[j]
			}
		}
	}
	if foundIdx >= 0 {
		return val, true, true, nil
	}
	return types.Null, false, false, nil
}

// evalExpr evaluates a scalar expression in ctx.
func (db *DB) evalExpr(ctx *execCtx, e sqlast.Expr) (types.Value, error) {
	switch x := e.(type) {
	case *sqlast.Literal:
		return x.Val, nil
	case *sqlast.ColumnRef:
		if ctx.scope != nil {
			v, ok, err := ctx.scope.lookup(x.Table, x.Column)
			if err != nil {
				return types.Null, err
			}
			if ok {
				return v, nil
			}
		}
		if x.Table == "" && ctx.vars != nil {
			if v, ok := ctx.vars.get(x.Column); ok {
				return v, nil
			}
		}
		if x.Table != "" {
			return types.Null, fmt.Errorf("column %s.%s not found", x.Table, x.Column)
		}
		return types.Null, fmt.Errorf("name %s is neither a column in scope nor a variable", x.Column)
	case *sqlast.BinaryExpr:
		return db.evalBinary(ctx, x)
	case *sqlast.UnaryExpr:
		v, err := db.evalExpr(ctx, x.X)
		if err != nil {
			return types.Null, err
		}
		switch x.Op {
		case "NOT":
			return types.TriboolFromValue(v).Not().Value(), nil
		case "-":
			return types.Arith("-", types.NewInt(0), v)
		}
		return types.Null, fmt.Errorf("unknown unary operator %q", x.Op)
	case *sqlast.IsNullExpr:
		v, err := db.evalExpr(ctx, x.X)
		if err != nil {
			return types.Null, err
		}
		return types.NewBool(v.IsNull() != x.Not), nil
	case *sqlast.BetweenExpr:
		v, err := db.evalExpr(ctx, x.X)
		if err != nil {
			return types.Null, err
		}
		lo, err := db.evalExpr(ctx, x.Lo)
		if err != nil {
			return types.Null, err
		}
		hi, err := db.evalExpr(ctx, x.Hi)
		if err != nil {
			return types.Null, err
		}
		r := types.CompareOp(">=", v, lo).And(types.CompareOp("<=", v, hi))
		if x.Not {
			r = r.Not()
		}
		return r.Value(), nil
	case *sqlast.InExpr:
		return db.evalIn(ctx, x)
	case *sqlast.ExistsExpr:
		res, err := db.evalQueryLimited(ctx, x.Sub, 1)
		if err != nil {
			return types.Null, err
		}
		return types.NewBool((len(res.Rows) > 0) != x.Not), nil
	case *sqlast.LikeExpr:
		v, err := db.evalExpr(ctx, x.X)
		if err != nil {
			return types.Null, err
		}
		pat, err := db.evalExpr(ctx, x.Pattern)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() || pat.IsNull() {
			return types.Null, nil
		}
		m := likeMatch(v.Text(), pat.Text())
		return types.NewBool(m != x.Not), nil
	case *sqlast.CaseExpr:
		return db.evalCase(ctx, x)
	case *sqlast.CastExpr:
		v, err := db.evalExpr(ctx, x.X)
		if err != nil {
			return types.Null, err
		}
		return castValue(v, x.Type)
	case *sqlast.FuncCall:
		if ctx.aggVals != nil {
			if v, ok := ctx.aggVals[x]; ok {
				return v, nil
			}
		}
		return db.evalFuncCall(ctx, x)
	case *sqlast.SubqueryExpr:
		return db.evalScalarSubquery(ctx, x.Query)
	}
	return types.Null, fmt.Errorf("engine: unsupported expression %T", e)
}

func (db *DB) evalBinary(ctx *execCtx, x *sqlast.BinaryExpr) (types.Value, error) {
	switch x.Op {
	case "AND":
		l, err := db.evalExpr(ctx, x.L)
		if err != nil {
			return types.Null, err
		}
		lt := types.TriboolFromValue(l)
		if lt == types.False {
			return types.NewBool(false), nil
		}
		r, err := db.evalExpr(ctx, x.R)
		if err != nil {
			return types.Null, err
		}
		return lt.And(types.TriboolFromValue(r)).Value(), nil
	case "OR":
		l, err := db.evalExpr(ctx, x.L)
		if err != nil {
			return types.Null, err
		}
		lt := types.TriboolFromValue(l)
		if lt == types.True {
			return types.NewBool(true), nil
		}
		r, err := db.evalExpr(ctx, x.R)
		if err != nil {
			return types.Null, err
		}
		return lt.Or(types.TriboolFromValue(r)).Value(), nil
	case "=", "<>", "<", "<=", ">", ">=":
		l, err := db.evalExpr(ctx, x.L)
		if err != nil {
			return types.Null, err
		}
		r, err := db.evalExpr(ctx, x.R)
		if err != nil {
			return types.Null, err
		}
		return types.CompareOp(x.Op, l, r).Value(), nil
	default:
		l, err := db.evalExpr(ctx, x.L)
		if err != nil {
			return types.Null, err
		}
		r, err := db.evalExpr(ctx, x.R)
		if err != nil {
			return types.Null, err
		}
		return types.Arith(x.Op, l, r)
	}
}

func (db *DB) evalIn(ctx *execCtx, x *sqlast.InExpr) (types.Value, error) {
	v, err := db.evalExpr(ctx, x.X)
	if err != nil {
		return types.Null, err
	}
	result := types.False
	sawNull := v.IsNull()
	if x.Sub != nil {
		res, err := db.evalQuery(ctx, x.Sub)
		if err != nil {
			return types.Null, err
		}
		if len(res.Cols) != 1 {
			return types.Null, fmt.Errorf("IN subquery must return one column, got %d", len(res.Cols))
		}
		for _, r := range res.Rows {
			switch types.CompareOp("=", v, r[0]) {
			case types.True:
				result = types.True
			case types.Unknown:
				sawNull = true
			}
		}
	} else {
		for _, le := range x.List {
			lv, err := db.evalExpr(ctx, le)
			if err != nil {
				return types.Null, err
			}
			switch types.CompareOp("=", v, lv) {
			case types.True:
				result = types.True
			case types.Unknown:
				sawNull = true
			}
		}
	}
	if result != types.True && sawNull {
		result = types.Unknown
	}
	if x.Not {
		result = result.Not()
	}
	return result.Value(), nil
}

func (db *DB) evalCase(ctx *execCtx, x *sqlast.CaseExpr) (types.Value, error) {
	if x.Operand != nil {
		op, err := db.evalExpr(ctx, x.Operand)
		if err != nil {
			return types.Null, err
		}
		for _, w := range x.Whens {
			wv, err := db.evalExpr(ctx, w.When)
			if err != nil {
				return types.Null, err
			}
			if types.CompareOp("=", op, wv) == types.True {
				return db.evalExpr(ctx, w.Then)
			}
		}
	} else {
		for _, w := range x.Whens {
			wv, err := db.evalExpr(ctx, w.When)
			if err != nil {
				return types.Null, err
			}
			if types.TriboolFromValue(wv) == types.True {
				return db.evalExpr(ctx, w.Then)
			}
		}
	}
	if x.Else != nil {
		return db.evalExpr(ctx, x.Else)
	}
	return types.Null, nil
}

func (db *DB) evalScalarSubquery(ctx *execCtx, q sqlast.QueryExpr) (types.Value, error) {
	res, err := db.evalQueryLimited(ctx, q, 2)
	if err != nil {
		return types.Null, err
	}
	if len(res.Cols) != 1 {
		return types.Null, fmt.Errorf("scalar subquery must return one column, got %d", len(res.Cols))
	}
	switch len(res.Rows) {
	case 0:
		return types.Null, nil
	case 1:
		return res.Rows[0][0], nil
	}
	return types.Null, fmt.Errorf("scalar subquery returned more than one row")
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pat string) bool {
	// dynamic programming over pattern and string positions
	return likeRec(s, pat)
}

func likeRec(s, pat string) bool {
	for len(pat) > 0 {
		switch pat[0] {
		case '%':
			for len(pat) > 0 && pat[0] == '%' {
				pat = pat[1:]
			}
			if len(pat) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], pat) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, pat = s[1:], pat[1:]
		default:
			if len(s) == 0 || s[0] != pat[0] {
				return false
			}
			s, pat = s[1:], pat[1:]
		}
	}
	return len(s) == 0
}

func castValue(v types.Value, t sqlast.TypeName) (types.Value, error) {
	if v.IsNull() {
		return types.Null, nil
	}
	switch t.Kind() {
	case types.KindInt:
		return types.NewInt(v.Int()), nil
	case types.KindFloat:
		return types.NewFloat(v.Float()), nil
	case types.KindString:
		s := v.Text()
		if t.Length > 0 && len(s) > t.Length && (t.Base == "CHAR" || t.Base == "VARCHAR") {
			s = s[:t.Length]
		}
		return types.NewString(s), nil
	case types.KindDate:
		switch v.Kind {
		case types.KindDate:
			return v, nil
		case types.KindString:
			d, err := types.ParseDate(strings.TrimSpace(v.S))
			if err != nil {
				return types.Null, err
			}
			return types.NewDate(d), nil
		case types.KindInt:
			return types.NewDate(v.I), nil
		}
		return types.Null, fmt.Errorf("cannot cast %s to DATE", v.Kind)
	case types.KindBool:
		return types.NewBool(types.TriboolFromValue(v) == types.True), nil
	}
	return types.Null, fmt.Errorf("unsupported cast target %s", t.SQL())
}
