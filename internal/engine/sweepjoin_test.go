package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"taupsm/internal/types"
)

// sweepFixture loads a temporal table of n randomized intervals —
// including empty (begin == end), point (one day), and
// fully-overlapping spans — and an outer table of stab dates, the
// worst-case shapes for any interval-join algorithm.
func sweepFixture(t testing.TB, spans, points int, seed int64) *DB {
	db := New()
	exec := func(src string) {
		if _, err := db.ExecScript(src); err != nil {
			t.Fatalf("exec %q: %v", src, err)
		}
	}
	exec(`CREATE TABLE sp (id INTEGER) AS VALIDTIME`)
	exec(`CREATE TABLE pt (d DATE)`)

	rng := rand.New(rand.NewSource(seed))
	base := types.MustDate(2010, 1, 1)
	var vals []string
	add := func(id int, b, e int64) {
		vals = append(vals, fmt.Sprintf("(%d, DATE '%s', DATE '%s')",
			id, types.FormatDate(b), types.FormatDate(e)))
	}
	for id := 0; id < spans; id++ {
		b := base + int64(rng.Intn(1000))
		switch id % 8 {
		case 0: // empty interval: matches no stab point
			add(id, b, b)
		case 1: // point interval: exactly one matching day
			add(id, b, b+1)
		case 2: // fully overlapping: open for the whole timeline
			add(id, base, base+1001)
		default:
			add(id, b, b+int64(1+rng.Intn(90)))
		}
	}
	exec("INSERT INTO sp VALUES " + strings.Join(vals, ", "))

	vals = vals[:0]
	for i := 0; i < points; i++ {
		p := base - 5 + int64(rng.Intn(1010))
		vals = append(vals, fmt.Sprintf("(DATE '%s')", types.FormatDate(p)))
	}
	exec("INSERT INTO pt VALUES " + strings.Join(vals, ", "))
	return db
}

// The sweep-line overlap join must return exactly the rows, in exactly
// the order, of the interval-probe path and of the plain nested loop —
// for inner and left joins over randomized intervals.
func TestSweepJoinAgreesWithProbeAndNested(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		db := sweepFixture(t, 64, 60, seed)
		queries := []string{
			`SELECT d, id FROM pt, sp WHERE sp.begin_time <= pt.d AND pt.d < sp.end_time`,
			`SELECT d, id FROM pt LEFT JOIN sp ON sp.begin_time <= pt.d AND pt.d < sp.end_time`,
		}
		for _, q := range queries {
			s0 := db.Stats.SweepJoins
			swept, err := db.ExecScript(q)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if db.Stats.SweepJoins == s0 {
				t.Fatalf("seed %d: query did not take the sweep path; the test compares nothing", seed)
			}
			if len(swept.Rows) == 0 {
				t.Fatalf("seed %d: empty join result; fixture is degenerate", seed)
			}

			db.DisableSweepJoin = true
			probed, err := db.ExecScript(q)
			if err != nil {
				t.Fatalf("seed %d probe: %v", seed, err)
			}
			db.DisableIndexes = true
			nested, err := db.ExecScript(q)
			if err != nil {
				t.Fatalf("seed %d nested: %v", seed, err)
			}
			db.DisableSweepJoin, db.DisableIndexes = false, false

			want := fmt.Sprint(rowsText(swept))
			if got := fmt.Sprint(rowsText(probed)); got != want {
				t.Errorf("seed %d %q: sweep and probe disagree\nsweep: %v\nprobe: %v",
					seed, q, want, got)
			}
			if got := fmt.Sprint(rowsText(nested)); got != want {
				t.Errorf("seed %d %q: sweep and nested loop disagree\nsweep: %v\nnested: %v",
					seed, q, want, got)
			}
		}
	}
}

// BenchmarkIntervalJoin compares the three overlap-join algorithms on
// one randomized stab join: the sweep-line walk, the per-row
// interval-tree probe, and the nested loop.
func BenchmarkIntervalJoin(b *testing.B) {
	db := sweepFixture(b, 512, 512, 7)
	q := `SELECT d, id FROM pt, sp WHERE sp.begin_time <= pt.d AND pt.d < sp.end_time`
	run := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.ExecScript(q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sweep", func(b *testing.B) {
		s0 := db.Stats.SweepJoins
		run(b)
		if db.Stats.SweepJoins == s0 {
			b.Fatal("sweep path did not fire")
		}
	})
	b.Run("probe", func(b *testing.B) {
		db.DisableSweepJoin = true
		defer func() { db.DisableSweepJoin = false }()
		run(b)
	})
	b.Run("nested", func(b *testing.B) {
		db.DisableSweepJoin, db.DisableIndexes = true, true
		defer func() { db.DisableSweepJoin, db.DisableIndexes = false, false }()
		run(b)
	})
}
