package sqlast

import (
	"strings"
	"testing"

	"taupsm/internal/types"
)

func TestTypeNameSQL(t *testing.T) {
	cases := map[string]TypeName{
		"INTEGER":        {Base: "INTEGER"},
		"CHAR(10)":       {Base: "CHAR", Length: 10},
		"DECIMAL(8, 2)":  {Base: "DECIMAL", Length: 8, Scale: 2},
		"ROW(a INTEGER)": {Base: "ROW", Row: []ColumnDef{{Name: "a", Type: TypeName{Base: "INTEGER"}}}},
		"ROW(v CHAR(5), begin_time DATE) ARRAY": {Base: "ROW", Array: true, Row: []ColumnDef{
			{Name: "v", Type: TypeName{Base: "CHAR", Length: 5}},
			{Name: "begin_time", Type: TypeName{Base: "DATE"}},
		}},
	}
	for want, ty := range cases {
		if got := ty.SQL(); got != want {
			t.Errorf("TypeName.SQL() = %q, want %q", got, want)
		}
	}
}

func TestTypeNameKind(t *testing.T) {
	cases := map[types.Kind][]string{
		types.KindInt:    {"INTEGER", "INT", "SMALLINT", "BIGINT"},
		types.KindFloat:  {"DECIMAL", "FLOAT", "DOUBLE", "REAL", "NUMERIC"},
		types.KindString: {"CHAR", "VARCHAR", "CHARACTER"},
		types.KindDate:   {"DATE"},
		types.KindBool:   {"BOOLEAN"},
	}
	for want, bases := range cases {
		for _, b := range bases {
			if got := (TypeName{Base: b}).Kind(); got != want {
				t.Errorf("Kind(%s) = %v, want %v", b, got, want)
			}
		}
	}
	if !(TypeName{Base: "ROW", Array: true}).IsCollection() {
		t.Error("ROW ARRAY must be a collection")
	}
	if (TypeName{Base: "ROW"}).IsCollection() {
		t.Error("plain ROW is not a collection")
	}
}

func TestModifierAndModeStrings(t *testing.T) {
	if ModCurrent.String() != "" || ModSequenced.String() != "VALIDTIME" ||
		ModNonsequenced.String() != "NONSEQUENCED VALIDTIME" {
		t.Error("modifier strings")
	}
	if DimValid.Keyword() != "VALIDTIME" || DimTransaction.Keyword() != "TRANSACTIONTIME" {
		t.Error("dimension keywords")
	}
	if ModeIn.String() != "IN" || ModeOut.String() != "OUT" || ModeInOut.String() != "INOUT" {
		t.Error("parameter modes")
	}
}

func TestScript(t *testing.T) {
	out := Script([]Stmt{
		&DropTableStmt{Name: "a"},
		&DropTableStmt{Name: "b", IfExists: true},
	})
	if out != "DROP TABLE a;\nDROP TABLE IF EXISTS b;\n" {
		t.Fatalf("Script() = %q", out)
	}
}

func TestPrinterParenthesization(t *testing.T) {
	// programmatically built trees a human wouldn't write must still
	// print with enough parentheses to mean the same thing
	cmp := func(l, r Expr) Expr { return &BinaryExpr{Op: "=", L: l, R: r} }
	lit := func(n int64) Expr { return &Literal{Val: types.NewInt(n)} }

	nested := cmp(cmp(lit(1), lit(2)), lit(3)) // (1 = 2) = 3
	if got := nested.SQL(); got != "(1 = 2) = 3" {
		t.Errorf("nested comparison: %q", got)
	}
	negMul := &UnaryExpr{Op: "-", X: &BinaryExpr{Op: "*", L: lit(2), R: lit(3)}}
	if got := negMul.SQL(); got != "-(2 * 3)" {
		t.Errorf("unary minus over product: %q", got)
	}
	isn := &IsNullExpr{X: cmp(lit(1), lit(1))}
	if got := isn.SQL(); got != "(1 = 1) IS NULL" {
		t.Errorf("IS NULL over comparison: %q", got)
	}
	andInBetween := &BetweenExpr{X: lit(1),
		Lo: &BinaryExpr{Op: "AND", L: lit(1), R: lit(1)}, Hi: lit(9)}
	if !strings.Contains(andInBetween.SQL(), "(1 AND 1)") {
		t.Errorf("AND inside BETWEEN needs parens: %q", andInBetween.SQL())
	}
}

func TestCompoundPrinting(t *testing.T) {
	c := &CompoundStmt{
		Label:  "blk",
		Atomic: true,
		VarDecls: []*VarDecl{{Names: []string{"x", "y"}, Type: TypeName{Base: "INTEGER"},
			Default: &Literal{Val: types.NewInt(0)}}},
		Cursors: []*CursorDecl{{Name: "c1", Query: &SelectStmt{
			Items: []SelectItem{{Expr: &ColumnRef{Column: "a"}}},
			From:  []TableRef{&BaseTable{Name: "t"}},
		}}},
		Handlers: []*HandlerDecl{{Kind: "CONTINUE", Condition: "NOT FOUND",
			Action: &SetStmt{Target: "x", Value: &Literal{Val: types.NewInt(1)}}}},
		Stmts: []Stmt{
			&OpenStmt{Cursor: "c1"},
			&FetchStmt{Cursor: "c1", Into: []string{"x"}},
			&CloseStmt{Cursor: "c1"},
		},
	}
	out := c.SQL()
	for _, want := range []string{
		"blk: BEGIN ATOMIC", "DECLARE x, y INTEGER DEFAULT 0;",
		"DECLARE c1 CURSOR FOR", "DECLARE CONTINUE HANDLER FOR NOT FOUND",
		"OPEN c1;", "FETCH c1 INTO x;", "CLOSE c1;", "END blk",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compound printing missing %q:\n%s", want, out)
		}
	}
}

func TestWalkSkipsChildrenOnFalse(t *testing.T) {
	s := &SelectStmt{
		Items: []SelectItem{{Expr: &SubqueryExpr{Query: &SelectStmt{
			Items: []SelectItem{{Expr: &ColumnRef{Column: "inner_col"}}},
		}}}},
	}
	var names []string
	Walk(s, func(n Node) bool {
		if cr, ok := n.(*ColumnRef); ok {
			names = append(names, cr.Column)
		}
		if _, ok := n.(*SubqueryExpr); ok {
			return false
		}
		return true
	})
	if len(names) != 0 {
		t.Fatalf("Walk must not descend into skipped subquery: %v", names)
	}
}

func TestCloneNilSafety(t *testing.T) {
	if CloneExpr(nil) != nil || CloneStmt(nil) != nil || CloneQuery(nil) != nil {
		t.Fatal("clone of nil must be nil")
	}
}
