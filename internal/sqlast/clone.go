package sqlast

// Deep cloning. The transforms in internal/core clone a routine or
// query first, then rewrite the clone in place, so the catalog's
// original AST is never mutated.

// CloneExpr returns a deep copy of an expression.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Literal:
		c := *x
		return &c
	case *ColumnRef:
		c := *x
		return &c
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, X: CloneExpr(x.X)}
	case *IsNullExpr:
		return &IsNullExpr{X: CloneExpr(x.X), Not: x.Not}
	case *BetweenExpr:
		return &BetweenExpr{X: CloneExpr(x.X), Lo: CloneExpr(x.Lo), Hi: CloneExpr(x.Hi), Not: x.Not}
	case *InExpr:
		c := &InExpr{X: CloneExpr(x.X), Not: x.Not}
		for _, it := range x.List {
			c.List = append(c.List, CloneExpr(it))
		}
		if x.Sub != nil {
			c.Sub = CloneQuery(x.Sub)
		}
		return c
	case *ExistsExpr:
		return &ExistsExpr{Sub: CloneQuery(x.Sub), Not: x.Not}
	case *LikeExpr:
		return &LikeExpr{X: CloneExpr(x.X), Pattern: CloneExpr(x.Pattern), Not: x.Not}
	case *CaseExpr:
		c := &CaseExpr{Operand: CloneExpr(x.Operand), Else: CloneExpr(x.Else)}
		for _, w := range x.Whens {
			c.Whens = append(c.Whens, WhenClause{When: CloneExpr(w.When), Then: CloneExpr(w.Then)})
		}
		return c
	case *CastExpr:
		return &CastExpr{X: CloneExpr(x.X), Type: x.Type}
	case *FuncCall:
		c := &FuncCall{Name: x.Name, Star: x.Star, Distinct: x.Distinct, Pos: x.Pos}
		for _, a := range x.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *SubqueryExpr:
		return &SubqueryExpr{Query: CloneQuery(x.Query)}
	}
	panic("sqlast.CloneExpr: unknown expression type")
}

// CloneQuery returns a deep copy of a query body.
func CloneQuery(q QueryExpr) QueryExpr {
	if q == nil {
		return nil
	}
	switch x := q.(type) {
	case *SelectStmt:
		return cloneSelect(x)
	case *SetOpExpr:
		c := &SetOpExpr{Op: x.Op, All: x.All, L: CloneQuery(x.L), R: CloneQuery(x.R)}
		for _, o := range x.OrderBy {
			c.OrderBy = append(c.OrderBy, OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc})
		}
		return c
	case *ValuesExpr:
		c := &ValuesExpr{}
		for _, row := range x.Rows {
			var r []Expr
			for _, e := range row {
				r = append(r, CloneExpr(e))
			}
			c.Rows = append(c.Rows, r)
		}
		return c
	}
	panic("sqlast.CloneQuery: unknown query type")
}

func cloneSelect(s *SelectStmt) *SelectStmt {
	c := &SelectStmt{Distinct: s.Distinct, Where: CloneExpr(s.Where), Having: CloneExpr(s.Having), Limit: CloneExpr(s.Limit), Pos: s.Pos}
	for _, it := range s.Items {
		c.Items = append(c.Items, SelectItem{Expr: CloneExpr(it.Expr), Alias: it.Alias, Star: it.Star, TableStar: it.TableStar})
	}
	for _, r := range s.From {
		c.From = append(c.From, CloneTableRef(r))
	}
	for _, g := range s.GroupBy {
		c.GroupBy = append(c.GroupBy, CloneExpr(g))
	}
	for _, o := range s.OrderBy {
		c.OrderBy = append(c.OrderBy, OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc})
	}
	return c
}

// CloneTableRef returns a deep copy of a FROM-clause element.
func CloneTableRef(r TableRef) TableRef {
	switch x := r.(type) {
	case *BaseTable:
		c := *x
		return &c
	case *DerivedTable:
		return &DerivedTable{Query: CloneQuery(x.Query), Alias: x.Alias, Cols: append([]string(nil), x.Cols...)}
	case *TableFunc:
		return &TableFunc{Call: CloneExpr(x.Call).(*FuncCall), Alias: x.Alias, Cols: append([]string(nil), x.Cols...)}
	case *JoinExpr:
		return &JoinExpr{L: CloneTableRef(x.L), R: CloneTableRef(x.R), Type: x.Type, On: CloneExpr(x.On)}
	}
	panic("sqlast.CloneTableRef: unknown table reference type")
}

func cloneStmts(ss []Stmt) []Stmt {
	if ss == nil {
		return nil
	}
	out := make([]Stmt, len(ss))
	for i, s := range ss {
		out[i] = CloneStmt(s)
	}
	return out
}

// CloneStmt returns a deep copy of any statement.
func CloneStmt(s Stmt) Stmt {
	if s == nil {
		return nil
	}
	switch x := s.(type) {
	case *SelectStmt:
		return cloneSelect(x)
	case *SetOpExpr:
		return CloneQuery(x).(*SetOpExpr)
	case *TemporalStmt:
		c := &TemporalStmt{Mod: x.Mod, Dim: x.Dim, Body: CloneStmt(x.Body), Pos: x.Pos}
		if x.Period != nil {
			c.Period = &PeriodSpec{Begin: CloneExpr(x.Period.Begin), End: CloneExpr(x.Period.End)}
		}
		if x.Ctx != nil {
			c.Ctx = &DimContext{Dim: x.Ctx.Dim}
			if x.Ctx.Period != nil {
				c.Ctx.Period = &PeriodSpec{Begin: CloneExpr(x.Ctx.Period.Begin), End: CloneExpr(x.Ctx.Period.End)}
			}
		}
		return c
	case *ExplainStmt:
		return &ExplainStmt{Body: CloneStmt(x.Body), Analyze: x.Analyze}
	case *AnalyzeStmt:
		return &AnalyzeStmt{Table: x.Table, Pos: x.Pos}
	case *ShowProcessListStmt:
		return &ShowProcessListStmt{Pos: x.Pos}
	case *KillStmt:
		return &KillStmt{PID: x.PID, Pos: x.Pos}
	case *InsertStmt:
		return &InsertStmt{Table: x.Table, VarTarget: x.VarTarget, Cols: append([]string(nil), x.Cols...), Source: CloneQuery(x.Source), Pos: x.Pos}
	case *UpdateStmt:
		c := &UpdateStmt{Table: x.Table, VarTarget: x.VarTarget, Alias: x.Alias, Where: CloneExpr(x.Where), Pos: x.Pos}
		for _, sc := range x.Sets {
			c.Sets = append(c.Sets, SetClause{Column: sc.Column, Value: CloneExpr(sc.Value), Pos: sc.Pos})
		}
		return c
	case *DeleteStmt:
		return &DeleteStmt{Table: x.Table, VarTarget: x.VarTarget, Alias: x.Alias, Where: CloneExpr(x.Where), Pos: x.Pos}
	case *CreateTableStmt:
		c := *x
		c.Cols = append([]ColumnDef(nil), x.Cols...)
		if x.AsQuery != nil {
			c.AsQuery = CloneQuery(x.AsQuery)
		}
		return &c
	case *DropTableStmt:
		c := *x
		return &c
	case *CreateViewStmt:
		return &CreateViewStmt{Name: x.Name, Cols: append([]string(nil), x.Cols...), Query: CloneQuery(x.Query), Mod: x.Mod, Pos: x.Pos}
	case *DropViewStmt:
		c := *x
		return &c
	case *AlterAddValidTime:
		c := *x
		return &c
	case *CreateFunctionStmt:
		return &CreateFunctionStmt{Name: x.Name, Params: append([]ParamDef(nil), x.Params...), Returns: x.Returns,
			Options: append([]string(nil), x.Options...), Body: CloneStmt(x.Body), Replace: x.Replace, Pos: x.Pos}
	case *CreateProcedureStmt:
		return &CreateProcedureStmt{Name: x.Name, Params: append([]ParamDef(nil), x.Params...),
			Options: append([]string(nil), x.Options...), Body: CloneStmt(x.Body), Replace: x.Replace, Pos: x.Pos}
	case *DropRoutineStmt:
		c := *x
		return &c
	case *CompoundStmt:
		c := &CompoundStmt{Label: x.Label, Atomic: x.Atomic, Stmts: cloneStmts(x.Stmts), Pos: x.Pos}
		for _, d := range x.VarDecls {
			c.VarDecls = append(c.VarDecls, &VarDecl{Names: append([]string(nil), d.Names...), Type: d.Type, Default: CloneExpr(d.Default), Pos: d.Pos})
		}
		for _, cd := range x.Cursors {
			c.Cursors = append(c.Cursors, &CursorDecl{Name: cd.Name, Query: CloneStmt(cd.Query), Pos: cd.Pos})
		}
		for _, h := range x.Handlers {
			c.Handlers = append(c.Handlers, &HandlerDecl{Kind: h.Kind, Condition: h.Condition, Action: CloneStmt(h.Action), Pos: h.Pos})
		}
		return c
	case *SetStmt:
		return &SetStmt{Target: x.Target, Value: CloneExpr(x.Value), Pos: x.Pos}
	case *IfStmt:
		c := &IfStmt{Cond: CloneExpr(x.Cond), Then: cloneStmts(x.Then), Else: cloneStmts(x.Else), Pos: x.Pos}
		for _, ei := range x.ElseIfs {
			c.ElseIfs = append(c.ElseIfs, ElseIf{Cond: CloneExpr(ei.Cond), Then: cloneStmts(ei.Then)})
		}
		return c
	case *CaseStmt:
		c := &CaseStmt{Operand: CloneExpr(x.Operand), Else: cloneStmts(x.Else), Pos: x.Pos}
		for _, w := range x.Whens {
			c.Whens = append(c.Whens, CaseWhenStmt{When: CloneExpr(w.When), Then: cloneStmts(w.Then)})
		}
		return c
	case *WhileStmt:
		return &WhileStmt{Label: x.Label, Cond: CloneExpr(x.Cond), Body: cloneStmts(x.Body), Pos: x.Pos}
	case *RepeatStmt:
		return &RepeatStmt{Label: x.Label, Body: cloneStmts(x.Body), Until: CloneExpr(x.Until), Pos: x.Pos}
	case *LoopStmt:
		return &LoopStmt{Label: x.Label, Body: cloneStmts(x.Body), Pos: x.Pos}
	case *ForStmt:
		return &ForStmt{Label: x.Label, LoopVar: x.LoopVar, Cursor: x.Cursor, Query: CloneStmt(x.Query), Body: cloneStmts(x.Body), Pos: x.Pos}
	case *LeaveStmt:
		c := *x
		return &c
	case *IterateStmt:
		c := *x
		return &c
	case *ReturnStmt:
		return &ReturnStmt{Value: CloneExpr(x.Value), Pos: x.Pos}
	case *CallStmt:
		c := &CallStmt{Name: x.Name, Pos: x.Pos}
		for _, a := range x.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *OpenStmt:
		c := *x
		return &c
	case *FetchStmt:
		return &FetchStmt{Cursor: x.Cursor, Into: append([]string(nil), x.Into...), Pos: x.Pos}
	case *CloseStmt:
		c := *x
		return &c
	case *SignalStmt:
		c := *x
		return &c
	}
	panic("sqlast.CloneStmt: unknown statement type")
}
