// Package sqlast defines the abstract syntax tree for the SQL + PSM
// dialect taupsm speaks: queries, DML, DDL, stored routines (SQL/PSM
// control statements), and the SQL/Temporal statement modifiers
// VALIDTIME and NONSEQUENCED VALIDTIME. It also provides a printer
// (AST back to SQL text, the output side of the source-to-source
// stratum), a deep cloner, and a generic rewriter.
package sqlast

import (
	"taupsm/internal/sqlscan"
	"taupsm/internal/types"
)

// Node is implemented by every AST node.
type Node interface {
	// SQL renders the node as SQL/PSM source text.
	SQL() string
}

// Stmt is any executable statement (query, DML, DDL, or PSM statement).
type Stmt interface {
	Node
	stmtNode()
}

// Expr is any scalar expression.
type Expr interface {
	Node
	exprNode()
}

// QueryExpr is a query body: a SELECT, a set operation over queries, or
// a VALUES constructor.
type QueryExpr interface {
	Node
	queryNode()
}

// TableRef is an element of a FROM clause.
type TableRef interface {
	Node
	tableRefNode()
}

// TemporalModifier is the statement modifier class of a query
// (paper §III): current (none), sequenced (VALIDTIME), or
// nonsequenced (NONSEQUENCED VALIDTIME).
type TemporalModifier uint8

// The three temporal statement modifiers.
const (
	ModCurrent TemporalModifier = iota
	ModSequenced
	ModNonsequenced
)

// String names the modifier as it is spelled in Temporal SQL/PSM.
func (m TemporalModifier) String() string {
	switch m {
	case ModSequenced:
		return "VALIDTIME"
	case ModNonsequenced:
		return "NONSEQUENCED VALIDTIME"
	}
	return ""
}

// TemporalDimension selects which time dimension a statement modifier
// or table definition refers to: valid time (what is true in the
// modeled reality) or transaction time (what the database recorded,
// maintained automatically and append-only). The paper focuses on
// valid time and notes everything also applies to transaction time
// (§III); bitemporal tables remain future work there and here.
type TemporalDimension uint8

// The two time dimensions.
const (
	DimValid TemporalDimension = iota
	DimTransaction
)

// Keyword returns the dimension's statement-modifier keyword.
func (d TemporalDimension) Keyword() string {
	if d == DimTransaction {
		return "TRANSACTIONTIME"
	}
	return "VALIDTIME"
}

// TypeName is a SQL data type, possibly a collection type
// ROW(fields...) ARRAY as used by per-statement slicing return values.
type TypeName struct {
	Base   string // INTEGER, CHAR, VARCHAR, DECIMAL, FLOAT, DATE, BOOLEAN, ROW
	Length int    // CHAR(n)/VARCHAR(n), DECIMAL(p,…)
	Scale  int    // DECIMAL(p,s)
	Row    []ColumnDef
	Array  bool // ROW(...) ARRAY collection type
}

// IsCollection reports whether the type is a ROW(...) ARRAY collection.
func (t TypeName) IsCollection() bool { return t.Base == "ROW" && t.Array }

// Kind maps the declared type to its runtime value kind.
func (t TypeName) Kind() types.Kind {
	switch t.Base {
	case "INTEGER", "INT", "SMALLINT", "BIGINT":
		return types.KindInt
	case "DECIMAL", "NUMERIC", "FLOAT", "DOUBLE", "REAL":
		return types.KindFloat
	case "CHAR", "VARCHAR", "CHARACTER":
		return types.KindString
	case "DATE":
		return types.KindDate
	case "BOOLEAN":
		return types.KindBool
	case "ROW":
		return types.KindTable
	}
	return types.KindNull
}

// ColumnDef is a column in a CREATE TABLE or a field of a ROW type.
type ColumnDef struct {
	Name string
	Type TypeName
	Pos  sqlscan.Pos
}

// ParamMode is the parameter mode of a procedure parameter.
type ParamMode uint8

// Procedure parameter modes.
const (
	ModeIn ParamMode = iota
	ModeOut
	ModeInOut
)

// String names the mode keyword.
func (m ParamMode) String() string {
	switch m {
	case ModeOut:
		return "OUT"
	case ModeInOut:
		return "INOUT"
	}
	return "IN"
}

// ParamDef is a routine parameter.
type ParamDef struct {
	Mode ParamMode
	Name string
	Type TypeName
	Pos  sqlscan.Pos
}
