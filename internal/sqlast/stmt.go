package sqlast

import "taupsm/internal/sqlscan"

// ---------- Queries ----------

// SelectItem is one element of a select list: an expression with an
// optional alias, `*`, or `t.*`.
type SelectItem struct {
	Expr      Expr
	Alias     string
	Star      bool
	TableStar string // "t" for t.*
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a single SELECT block.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // FETCH FIRST n ROWS ONLY
	Pos      sqlscan.Pos
}

func (*SelectStmt) queryNode() {}
func (*SelectStmt) stmtNode()  {} // a bare SELECT is also a statement

// SetOpExpr combines two query bodies with UNION/EXCEPT/INTERSECT.
type SetOpExpr struct {
	Op      string // UNION, EXCEPT, INTERSECT
	All     bool
	L, R    QueryExpr
	OrderBy []OrderItem
}

func (*SetOpExpr) queryNode() {}
func (*SetOpExpr) stmtNode()  {}

// ValuesExpr is a VALUES row constructor used as an INSERT source.
type ValuesExpr struct {
	Rows [][]Expr
}

func (*ValuesExpr) queryNode() {}

// ---------- FROM clause ----------

// BaseTable references a stored table or view.
type BaseTable struct {
	Name  string
	Alias string
	Pos   sqlscan.Pos
}

func (*BaseTable) tableRefNode() {}

// DerivedTable is a parenthesized subquery in FROM.
type DerivedTable struct {
	Query QueryExpr
	Alias string
	Cols  []string
}

func (*DerivedTable) tableRefNode() {}

// TableFunc is a (lateral) table-function reference:
// TABLE(f(args)) AS t — the form per-statement slicing uses to join a
// routine's temporal-table return value into the invoking query.
type TableFunc struct {
	Call  *FuncCall
	Alias string
	Cols  []string
}

func (*TableFunc) tableRefNode() {}

// JoinExpr is an explicit JOIN with an ON condition.
type JoinExpr struct {
	L, R TableRef
	Type string // INNER, LEFT
	On   Expr
}

func (*JoinExpr) tableRefNode() {}

// ---------- Temporal wrapper ----------

// PeriodSpec is the optional temporal context of a sequenced modifier:
// VALIDTIME (BT, ET) — restricting evaluation to [BT, ET).
type PeriodSpec struct {
	Begin Expr
	End   Expr
}

// DimContext is the secondary-dimension context of a combined
// bitemporal modifier: `VALIDTIME (...) AND TRANSACTIONTIME (X)`
// evaluates the valid-time statement against the database state as
// believed during the transaction-time period. A nil Period means the
// current period (belief as of CURRENT_DATE).
type DimContext struct {
	Dim    TemporalDimension
	Period *PeriodSpec
}

// TemporalStmt wraps a statement with a temporal statement modifier
// (paper §IV-B). Body is a query, DML statement, view or cursor
// definition.
type TemporalStmt struct {
	Mod    TemporalModifier
	Dim    TemporalDimension
	Period *PeriodSpec // only for ModSequenced, optional
	// Ctx is the optional secondary-dimension context of a combined
	// bitemporal modifier (`AND TRANSACTIONTIME (...)`). Tables carrying
	// the context dimension are filtered to the context period instead
	// of being sliced along it.
	Ctx  *DimContext
	Body Stmt
	Pos  sqlscan.Pos
}

func (*TemporalStmt) stmtNode() {}

// ExplainStmt asks the stratum to describe how Body would execute —
// the chosen slicing strategy, the slicing statistics (constant
// periods, stored fragments), and the conventional SQL/PSM it compiles
// to — without executing it. With Analyze set (EXPLAIN ANALYZE), the
// body IS executed under a forced trace and the plan is annotated with
// the observed per-stage timings and counts. EXPLAIN is a
// stratum-level statement; it never reaches the conventional engine.
type ExplainStmt struct {
	Body    Stmt
	Analyze bool
}

func (*ExplainStmt) stmtNode() {}

// AnalyzeStmt recomputes the statistics of one table (or of every
// table when Table is empty): `ANALYZE [table]`. Like EXPLAIN it is a
// stratum-level statement — the conventional engine rejects it.
type AnalyzeStmt struct {
	Table string // empty: analyze every catalog table
	Pos   sqlscan.Pos
}

func (*AnalyzeStmt) stmtNode() {}

// ShowProcessListStmt lists the in-flight statements of the process
// registry: `SHOW PROCESSLIST`. Like EXPLAIN it is a stratum-level
// statement — the conventional engine rejects it.
type ShowProcessListStmt struct {
	Pos sqlscan.Pos
}

func (*ShowProcessListStmt) stmtNode() {}

// KillStmt requests cooperative cancellation of the in-flight
// statement with the given process ID: `KILL <pid>`. Stratum-level.
type KillStmt struct {
	PID int64
	Pos sqlscan.Pos
}

func (*KillStmt) stmtNode() {}

// ---------- DML ----------

// InsertStmt inserts rows from a VALUES list or a query. Table-valued
// PSM variables are targeted with the TABLE keyword (VarTarget).
type InsertStmt struct {
	Table     string
	VarTarget bool // INSERT INTO TABLE <variable>
	Cols      []string
	Source    QueryExpr
	Pos       sqlscan.Pos
}

func (*InsertStmt) stmtNode() {}

// SetClause is one column assignment in UPDATE.
type SetClause struct {
	Column string
	Value  Expr
	Pos    sqlscan.Pos
}

// UpdateStmt updates rows in a table or table-valued variable.
type UpdateStmt struct {
	Table     string
	VarTarget bool
	Alias     string
	Sets      []SetClause
	Where     Expr
	Pos       sqlscan.Pos
}

func (*UpdateStmt) stmtNode() {}

// DeleteStmt deletes rows from a table or table-valued variable.
type DeleteStmt struct {
	Table     string
	VarTarget bool
	Alias     string
	Where     Expr
	Pos       sqlscan.Pos
}

func (*DeleteStmt) stmtNode() {}

// ---------- DDL ----------

// CreateTableStmt creates a table, optionally temporary, optionally
// populated from a query (AS (query) WITH DATA), optionally with
// valid-time support (AS VALIDTIME), which appends begin_time/end_time.
type CreateTableStmt struct {
	Name            string
	Temporary       bool
	Cols            []ColumnDef
	AsQuery         QueryExpr
	WithData        bool
	ValidTime       bool
	TransactionTime bool
	Pos             sqlscan.Pos
}

func (*CreateTableStmt) stmtNode() {}

// DropTableStmt drops a table.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

func (*DropTableStmt) stmtNode() {}

// CreateViewStmt creates a view; Mod carries an optional temporal
// modifier on the view body.
type CreateViewStmt struct {
	Name  string
	Cols  []string
	Query QueryExpr
	Mod   TemporalModifier
	Pos   sqlscan.Pos
}

func (*CreateViewStmt) stmtNode() {}

// DropViewStmt drops a view.
type DropViewStmt struct {
	Name     string
	IfExists bool
}

func (*DropViewStmt) stmtNode() {}

// AlterAddValidTime is ALTER TABLE t ADD VALIDTIME (or ADD
// TRANSACTIONTIME): renders an existing snapshot table temporal (rows
// become valid over [today, forever)).
type AlterAddValidTime struct {
	Table       string
	Transaction bool
}

func (*AlterAddValidTime) stmtNode() {}

// CreateFunctionStmt defines a stored SQL function (PSM).
type CreateFunctionStmt struct {
	Name    string
	Params  []ParamDef
	Returns TypeName
	Options []string // READS SQL DATA, LANGUAGE SQL, DETERMINISTIC, ...
	Body    Stmt     // usually *CompoundStmt or *ReturnStmt
	Replace bool
	Pos     sqlscan.Pos
}

func (*CreateFunctionStmt) stmtNode() {}

// CreateProcedureStmt defines a stored procedure (PSM).
type CreateProcedureStmt struct {
	Name    string
	Params  []ParamDef
	Options []string
	Body    Stmt
	Replace bool
	Pos     sqlscan.Pos
}

func (*CreateProcedureStmt) stmtNode() {}

// DropRoutineStmt drops a FUNCTION or PROCEDURE.
type DropRoutineStmt struct {
	Kind     string // FUNCTION or PROCEDURE
	Name     string
	IfExists bool
}

func (*DropRoutineStmt) stmtNode() {}
