package sqlast

import "taupsm/internal/sqlscan"

// PosOf returns the source position recorded on a node, or the zero
// position for node kinds that do not carry one (positions are filled
// by the parser; synthesized nodes report the zero position).
func PosOf(n Node) sqlscan.Pos {
	switch x := n.(type) {
	case *ColumnRef:
		return x.Pos
	case *FuncCall:
		return x.Pos
	case *SelectStmt:
		return x.Pos
	case *BaseTable:
		return x.Pos
	case *TemporalStmt:
		return x.Pos
	case *InsertStmt:
		return x.Pos
	case *UpdateStmt:
		return x.Pos
	case *DeleteStmt:
		return x.Pos
	case *CreateTableStmt:
		return x.Pos
	case *CreateViewStmt:
		return x.Pos
	case *CreateFunctionStmt:
		return x.Pos
	case *CreateProcedureStmt:
		return x.Pos
	case *CompoundStmt:
		return x.Pos
	case *SetStmt:
		return x.Pos
	case *IfStmt:
		return x.Pos
	case *CaseStmt:
		return x.Pos
	case *WhileStmt:
		return x.Pos
	case *RepeatStmt:
		return x.Pos
	case *LoopStmt:
		return x.Pos
	case *ForStmt:
		return x.Pos
	case *LeaveStmt:
		return x.Pos
	case *IterateStmt:
		return x.Pos
	case *ReturnStmt:
		return x.Pos
	case *CallStmt:
		return x.Pos
	case *OpenStmt:
		return x.Pos
	case *FetchStmt:
		return x.Pos
	case *CloseStmt:
		return x.Pos
	case *SignalStmt:
		return x.Pos
	case *ExplainStmt:
		if x.Body != nil {
			return PosOf(x.Body)
		}
	case *SetOpExpr:
		if x.L != nil {
			return PosOf(x.L)
		}
	}
	return sqlscan.Pos{}
}
