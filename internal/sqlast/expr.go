package sqlast

import (
	"taupsm/internal/sqlscan"
	"taupsm/internal/types"
)

// Literal is a constant value.
type Literal struct {
	Val types.Value
}

func (*Literal) exprNode() {}

// ColumnRef names a column, a routine variable, or a routine parameter;
// the engine resolves columns first (SQL scoping), then variables.
type ColumnRef struct {
	Table  string // optional qualifier
	Column string
	Pos    sqlscan.Pos
}

func (*ColumnRef) exprNode() {}

// BinaryExpr applies a binary operator: arithmetic (+ - * / ||),
// comparison (= <> < <= > >=), or logical (AND OR).
type BinaryExpr struct {
	Op string
	L  Expr
	R  Expr
}

func (*BinaryExpr) exprNode() {}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	X  Expr
}

func (*UnaryExpr) exprNode() {}

// IsNullExpr is X IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (*IsNullExpr) exprNode() {}

// BetweenExpr is X [NOT] BETWEEN Lo AND Hi.
type BetweenExpr struct {
	X   Expr
	Lo  Expr
	Hi  Expr
	Not bool
}

func (*BetweenExpr) exprNode() {}

// InExpr is X [NOT] IN (list) or X [NOT] IN (subquery).
type InExpr struct {
	X    Expr
	List []Expr
	Sub  QueryExpr
	Not  bool
}

func (*InExpr) exprNode() {}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Sub QueryExpr
	Not bool
}

func (*ExistsExpr) exprNode() {}

// LikeExpr is X [NOT] LIKE pattern.
type LikeExpr struct {
	X       Expr
	Pattern Expr
	Not     bool
}

func (*LikeExpr) exprNode() {}

// WhenClause is one WHEN ... THEN ... arm of a CASE expression.
type WhenClause struct {
	When Expr
	Then Expr
}

// CaseExpr is a simple (Operand != nil) or searched CASE expression.
type CaseExpr struct {
	Operand Expr
	Whens   []WhenClause
	Else    Expr
}

func (*CaseExpr) exprNode() {}

// CastExpr is CAST(X AS type).
type CastExpr struct {
	X    Expr
	Type TypeName
}

func (*CastExpr) exprNode() {}

// FuncCall invokes a builtin or stored function. Star marks COUNT(*).
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
	Pos      sqlscan.Pos
}

func (*FuncCall) exprNode() {}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct {
	Query QueryExpr
}

func (*SubqueryExpr) exprNode() {}
