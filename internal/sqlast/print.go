package sqlast

import (
	"fmt"
	"strings"
)

// The printer renders AST nodes back to SQL/PSM source text. It is the
// output half of the source-to-source stratum: transformed routines and
// queries are printed and can be re-parsed, executed, or shown to users.

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) nl() {
	p.b.WriteByte('\n')
	for i := 0; i < p.indent; i++ {
		p.b.WriteString("  ")
	}
}

func (p *printer) ws(s string) { p.b.WriteString(s) }

// ---------- types ----------

// SQL renders the type name.
func (t TypeName) SQL() string {
	switch {
	case t.Base == "ROW":
		var parts []string
		for _, f := range t.Row {
			parts = append(parts, f.Name+" "+f.Type.SQL())
		}
		s := "ROW(" + strings.Join(parts, ", ") + ")"
		if t.Array {
			s += " ARRAY"
		}
		return s
	case t.Length > 0 && t.Scale > 0:
		return fmt.Sprintf("%s(%d, %d)", t.Base, t.Length, t.Scale)
	case t.Length > 0:
		return fmt.Sprintf("%s(%d)", t.Base, t.Length)
	default:
		return t.Base
	}
}

// ---------- expressions ----------

func (e *Literal) SQL() string { return e.Val.SQLLiteral() }

func (e *ColumnRef) SQL() string {
	if e.Table != "" {
		return e.Table + "." + e.Column
	}
	return e.Column
}

// Expression precedence levels, mirroring the parser's grammar:
//
//	1 OR   2 AND   3 NOT   4 predicate (comparison, IS NULL, BETWEEN,
//	IN, LIKE — non-associative)   5 additive (+ - ||)
//	6 multiplicative   7 unary minus   8 primary
//
// The printer parenthesizes any operand whose level is too low for its
// position so that SQL() output always re-parses to the same tree —
// important because the transforms build expression trees
// programmatically in shapes a human would not write.
func exprLevel(e Expr) int {
	switch x := e.(type) {
	case *BinaryExpr:
		switch x.Op {
		case "OR":
			return 1
		case "AND":
			return 2
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			return 4
		case "+", "-", "||":
			return 5
		case "*", "/":
			return 6
		}
		return 8
	case *UnaryExpr:
		if x.Op == "NOT" {
			return 3
		}
		return 7
	case *IsNullExpr, *BetweenExpr, *InExpr, *LikeExpr:
		return 4
	default:
		return 8
	}
}

// operand prints child, parenthesizing unless its level is at least
// min. nonAssoc additionally parenthesizes an exact-level child (for
// the non-associative predicate position).
func operand(child Expr, min int, nonAssoc bool) string {
	s := child.SQL()
	lv := exprLevel(child)
	if lv < min || (nonAssoc && lv == min) {
		return "(" + s + ")"
	}
	return s
}

func (e *BinaryExpr) SQL() string {
	switch e.Op {
	case "OR":
		return operand(e.L, 1, false) + " OR " + operand(e.R, 1, false)
	case "AND":
		return operand(e.L, 2, false) + " AND " + operand(e.R, 2, false)
	case "=", "<>", "!=", "<", "<=", ">", ">=":
		// comparisons are non-associative; operands are additive
		return operand(e.L, 5, false) + " " + e.Op + " " + operand(e.R, 5, false)
	case "+", "||":
		return operand(e.L, 5, false) + " " + e.Op + " " + operand(e.R, 6, false)
	case "-":
		return operand(e.L, 5, false) + " - " + operand(e.R, 6, false)
	case "*":
		return operand(e.L, 6, false) + " * " + operand(e.R, 7, false)
	case "/":
		return operand(e.L, 6, false) + " / " + operand(e.R, 7, false)
	}
	return operand(e.L, 8, false) + " " + e.Op + " " + operand(e.R, 8, false)
}

func (e *UnaryExpr) SQL() string {
	if e.Op == "NOT" {
		return "NOT " + operand(e.X, 3, false)
	}
	return e.Op + operand(e.X, 8, false)
}

func (e *IsNullExpr) SQL() string {
	if e.Not {
		return operand(e.X, 5, false) + " IS NOT NULL"
	}
	return operand(e.X, 5, false) + " IS NULL"
}

func (e *BetweenExpr) SQL() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	// Hi must not swallow a following AND: keep it at multiplicative
	// level when it contains AND... additive suffices since AND is
	// level 2 and gets parenthesized by the min-5 rule.
	return operand(e.X, 5, false) + " " + not + "BETWEEN " + operand(e.Lo, 5, false) + " AND " + operand(e.Hi, 5, false)
}

func (e *InExpr) SQL() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	if e.Sub != nil {
		return operand(e.X, 5, false) + " " + not + "IN (" + e.Sub.SQL() + ")"
	}
	var parts []string
	for _, x := range e.List {
		parts = append(parts, x.SQL())
	}
	return operand(e.X, 5, false) + " " + not + "IN (" + strings.Join(parts, ", ") + ")"
}

func (e *ExistsExpr) SQL() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return not + "EXISTS (" + e.Sub.SQL() + ")"
}

func (e *LikeExpr) SQL() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return operand(e.X, 5, false) + " " + not + "LIKE " + operand(e.Pattern, 5, false)
}

func (e *CaseExpr) SQL() string {
	var b strings.Builder
	b.WriteString("CASE")
	if e.Operand != nil {
		b.WriteString(" " + e.Operand.SQL())
	}
	for _, w := range e.Whens {
		b.WriteString(" WHEN " + w.When.SQL() + " THEN " + w.Then.SQL())
	}
	if e.Else != nil {
		b.WriteString(" ELSE " + e.Else.SQL())
	}
	b.WriteString(" END")
	return b.String()
}

func (e *CastExpr) SQL() string {
	return "CAST(" + e.X.SQL() + " AS " + e.Type.SQL() + ")"
}

// niladicBuiltins print without parentheses, matching SQL syntax.
var niladicBuiltins = map[string]bool{
	"CURRENT_DATE": true, "CURRENT_TIME": true, "CURRENT_TIMESTAMP": true,
}

func (e *FuncCall) SQL() string {
	if e.Star {
		return e.Name + "(*)"
	}
	if len(e.Args) == 0 && niladicBuiltins[strings.ToUpper(e.Name)] {
		return strings.ToUpper(e.Name)
	}
	var parts []string
	for _, a := range e.Args {
		parts = append(parts, a.SQL())
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + strings.Join(parts, ", ") + ")"
}

func (e *SubqueryExpr) SQL() string { return "(" + e.Query.SQL() + ")" }

// ---------- queries ----------

func (s *SelectStmt) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	var items []string
	for _, it := range s.Items {
		switch {
		case it.Star:
			items = append(items, "*")
		case it.TableStar != "":
			items = append(items, it.TableStar+".*")
		default:
			x := it.Expr.SQL()
			if it.Alias != "" {
				x += " AS " + it.Alias
			}
			items = append(items, x)
		}
	}
	b.WriteString(strings.Join(items, ", "))
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		var refs []string
		for _, r := range s.From {
			refs = append(refs, r.SQL())
		}
		b.WriteString(strings.Join(refs, ", "))
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		var gs []string
		for _, g := range s.GroupBy {
			gs = append(gs, g.SQL())
		}
		b.WriteString(" GROUP BY " + strings.Join(gs, ", "))
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY " + orderBySQL(s.OrderBy))
	}
	if s.Limit != nil {
		b.WriteString(" FETCH FIRST " + s.Limit.SQL() + " ROWS ONLY")
	}
	return b.String()
}

func orderBySQL(items []OrderItem) string {
	var os []string
	for _, o := range items {
		x := o.Expr.SQL()
		if o.Desc {
			x += " DESC"
		}
		os = append(os, x)
	}
	return strings.Join(os, ", ")
}

func (s *SetOpExpr) SQL() string {
	op := s.Op
	if s.All {
		op += " ALL"
	}
	out := s.L.SQL() + " " + op + " " + s.R.SQL()
	if len(s.OrderBy) > 0 {
		out += " ORDER BY " + orderBySQL(s.OrderBy)
	}
	return out
}

func (v *ValuesExpr) SQL() string {
	var rows []string
	for _, r := range v.Rows {
		var vals []string
		for _, e := range r {
			vals = append(vals, e.SQL())
		}
		rows = append(rows, "("+strings.Join(vals, ", ")+")")
	}
	return "VALUES " + strings.Join(rows, ", ")
}

// ---------- table refs ----------

func (t *BaseTable) SQL() string {
	if t.Alias != "" && t.Alias != t.Name {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}

func (t *DerivedTable) SQL() string {
	s := "(" + t.Query.SQL() + ") AS " + t.Alias
	if len(t.Cols) > 0 {
		s += "(" + strings.Join(t.Cols, ", ") + ")"
	}
	return s
}

func (t *TableFunc) SQL() string {
	s := "TABLE(" + t.Call.SQL() + ") AS " + t.Alias
	if len(t.Cols) > 0 {
		s += "(" + strings.Join(t.Cols, ", ") + ")"
	}
	return s
}

func (t *JoinExpr) SQL() string {
	return t.L.SQL() + " " + t.Type + " JOIN " + t.R.SQL() + " ON " + t.On.SQL()
}

// ---------- temporal wrapper ----------

func (t *TemporalStmt) SQL() string {
	var prefix string
	switch t.Mod {
	case ModSequenced:
		prefix = t.Dim.Keyword()
		if t.Period != nil {
			prefix += " (" + t.Period.Begin.SQL() + ", " + t.Period.End.SQL() + ")"
		}
	case ModNonsequenced:
		prefix = "NONSEQUENCED " + t.Dim.Keyword()
	}
	if t.Ctx != nil {
		prefix += " AND " + t.Ctx.Dim.Keyword()
		if t.Ctx.Period != nil {
			prefix += " (" + t.Ctx.Period.Begin.SQL() + ", " + t.Ctx.Period.End.SQL() + ")"
		}
	}
	if prefix == "" {
		return t.Body.SQL()
	}
	return prefix + " " + t.Body.SQL()
}

func (s *ExplainStmt) SQL() string {
	if s.Analyze {
		return "EXPLAIN ANALYZE " + s.Body.SQL()
	}
	return "EXPLAIN " + s.Body.SQL()
}

func (s *AnalyzeStmt) SQL() string {
	if s.Table == "" {
		return "ANALYZE"
	}
	return "ANALYZE " + s.Table
}

func (s *ShowProcessListStmt) SQL() string {
	return "SHOW PROCESSLIST"
}

func (s *KillStmt) SQL() string {
	return fmt.Sprintf("KILL %d", s.PID)
}

// ---------- DML ----------

func (s *InsertStmt) SQL() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	if s.VarTarget {
		b.WriteString("TABLE ")
	}
	b.WriteString(s.Table)
	if len(s.Cols) > 0 {
		b.WriteString(" (" + strings.Join(s.Cols, ", ") + ")")
	}
	b.WriteString(" " + s.Source.SQL())
	return b.String()
}

func (s *UpdateStmt) SQL() string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	if s.VarTarget {
		b.WriteString("TABLE ")
	}
	b.WriteString(s.Table)
	if s.Alias != "" {
		b.WriteString(" AS " + s.Alias)
	}
	var sets []string
	for _, sc := range s.Sets {
		sets = append(sets, sc.Column+" = "+sc.Value.SQL())
	}
	b.WriteString(" SET " + strings.Join(sets, ", "))
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	return b.String()
}

func (s *DeleteStmt) SQL() string {
	var b strings.Builder
	b.WriteString("DELETE FROM ")
	if s.VarTarget {
		b.WriteString("TABLE ")
	}
	b.WriteString(s.Table)
	if s.Alias != "" {
		b.WriteString(" AS " + s.Alias)
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	return b.String()
}

// ---------- DDL ----------

func (s *CreateTableStmt) SQL() string {
	var b strings.Builder
	b.WriteString("CREATE ")
	if s.Temporary {
		b.WriteString("TEMPORARY ")
	}
	b.WriteString("TABLE " + s.Name)
	if len(s.Cols) > 0 {
		var cols []string
		for _, c := range s.Cols {
			cols = append(cols, c.Name+" "+c.Type.SQL())
		}
		b.WriteString(" (" + strings.Join(cols, ", ") + ")")
	}
	if s.AsQuery != nil {
		b.WriteString(" AS (" + s.AsQuery.SQL() + ")")
		if s.WithData {
			b.WriteString(" WITH DATA")
		}
	}
	if s.ValidTime {
		b.WriteString(" AS VALIDTIME")
	}
	if s.TransactionTime {
		b.WriteString(" AS TRANSACTIONTIME")
	}
	return b.String()
}

func (s *DropTableStmt) SQL() string {
	x := "DROP TABLE "
	if s.IfExists {
		x += "IF EXISTS "
	}
	return x + s.Name
}

func (s *CreateViewStmt) SQL() string {
	var b strings.Builder
	b.WriteString("CREATE VIEW " + s.Name)
	if len(s.Cols) > 0 {
		b.WriteString(" (" + strings.Join(s.Cols, ", ") + ")")
	}
	b.WriteString(" AS ")
	if m := s.Mod.String(); m != "" {
		b.WriteString(m + " ")
	}
	b.WriteString("(" + s.Query.SQL() + ")")
	return b.String()
}

func (s *DropViewStmt) SQL() string {
	x := "DROP VIEW "
	if s.IfExists {
		x += "IF EXISTS "
	}
	return x + s.Name
}

func (s *AlterAddValidTime) SQL() string {
	if s.Transaction {
		return "ALTER TABLE " + s.Table + " ADD TRANSACTIONTIME"
	}
	return "ALTER TABLE " + s.Table + " ADD VALIDTIME"
}

func routineHeader(kind, name string, params []ParamDef, proc bool) string {
	var ps []string
	for _, p := range params {
		if proc {
			ps = append(ps, p.Mode.String()+" "+p.Name+" "+p.Type.SQL())
		} else {
			ps = append(ps, p.Name+" "+p.Type.SQL())
		}
	}
	return "CREATE " + kind + " " + name + " (" + strings.Join(ps, ", ") + ")"
}

func (s *CreateFunctionStmt) SQL() string {
	p := &printer{}
	p.ws(routineHeader("FUNCTION", s.Name, s.Params, false))
	p.nl()
	p.ws("RETURNS " + s.Returns.SQL())
	for _, o := range s.Options {
		p.nl()
		p.ws(o)
	}
	p.nl()
	printStmt(p, s.Body)
	return p.b.String()
}

func (s *CreateProcedureStmt) SQL() string {
	p := &printer{}
	p.ws(routineHeader("PROCEDURE", s.Name, s.Params, true))
	for _, o := range s.Options {
		p.nl()
		p.ws(o)
	}
	p.nl()
	printStmt(p, s.Body)
	return p.b.String()
}

func (s *DropRoutineStmt) SQL() string {
	x := "DROP " + s.Kind + " "
	if s.IfExists {
		x += "IF EXISTS "
	}
	return x + s.Name
}

// ---------- PSM ----------

func printBody(p *printer, stmts []Stmt) {
	p.indent++
	for _, st := range stmts {
		p.nl()
		printStmt(p, st)
		p.ws(";")
	}
	p.indent--
}

// printStmt prints a statement at the printer's current indentation.
func printStmt(p *printer, s Stmt) {
	switch st := s.(type) {
	case *CompoundStmt:
		if st.Label != "" {
			p.ws(st.Label + ": ")
		}
		p.ws("BEGIN")
		if st.Atomic {
			p.ws(" ATOMIC")
		}
		p.indent++
		for _, d := range st.VarDecls {
			p.nl()
			p.ws("DECLARE " + strings.Join(d.Names, ", ") + " " + d.Type.SQL())
			if d.Default != nil {
				p.ws(" DEFAULT " + d.Default.SQL())
			}
			p.ws(";")
		}
		for _, c := range st.Cursors {
			p.nl()
			p.ws("DECLARE " + c.Name + " CURSOR FOR " + c.Query.SQL() + ";")
		}
		for _, h := range st.Handlers {
			p.nl()
			p.ws("DECLARE " + h.Kind + " HANDLER FOR " + h.Condition + " ")
			printStmt(p, h.Action)
			p.ws(";")
		}
		p.indent--
		printBody(p, st.Stmts)
		p.nl()
		p.ws("END")
		if st.Label != "" {
			p.ws(" " + st.Label)
		}
	case *SetStmt:
		p.ws("SET " + st.Target + " = " + st.Value.SQL())
	case *IfStmt:
		p.ws("IF " + st.Cond.SQL() + " THEN")
		printBody(p, st.Then)
		for _, ei := range st.ElseIfs {
			p.nl()
			p.ws("ELSEIF " + ei.Cond.SQL() + " THEN")
			printBody(p, ei.Then)
		}
		if st.Else != nil {
			p.nl()
			p.ws("ELSE")
			printBody(p, st.Else)
		}
		p.nl()
		p.ws("END IF")
	case *CaseStmt:
		p.ws("CASE")
		if st.Operand != nil {
			p.ws(" " + st.Operand.SQL())
		}
		for _, w := range st.Whens {
			p.nl()
			p.ws("WHEN " + w.When.SQL() + " THEN")
			printBody(p, w.Then)
		}
		if st.Else != nil {
			p.nl()
			p.ws("ELSE")
			printBody(p, st.Else)
		}
		p.nl()
		p.ws("END CASE")
	case *WhileStmt:
		if st.Label != "" {
			p.ws(st.Label + ": ")
		}
		p.ws("WHILE " + st.Cond.SQL() + " DO")
		printBody(p, st.Body)
		p.nl()
		p.ws("END WHILE")
		if st.Label != "" {
			p.ws(" " + st.Label)
		}
	case *RepeatStmt:
		if st.Label != "" {
			p.ws(st.Label + ": ")
		}
		p.ws("REPEAT")
		printBody(p, st.Body)
		p.nl()
		p.ws("UNTIL " + st.Until.SQL() + " END REPEAT")
		if st.Label != "" {
			p.ws(" " + st.Label)
		}
	case *LoopStmt:
		if st.Label != "" {
			p.ws(st.Label + ": ")
		}
		p.ws("LOOP")
		printBody(p, st.Body)
		p.nl()
		p.ws("END LOOP")
		if st.Label != "" {
			p.ws(" " + st.Label)
		}
	case *ForStmt:
		if st.Label != "" {
			p.ws(st.Label + ": ")
		}
		p.ws("FOR " + st.LoopVar + " AS ")
		if st.Cursor != "" {
			p.ws(st.Cursor + " CURSOR FOR ")
		}
		p.ws(st.Query.SQL() + " DO")
		printBody(p, st.Body)
		p.nl()
		p.ws("END FOR")
		if st.Label != "" {
			p.ws(" " + st.Label)
		}
	case *LeaveStmt:
		p.ws("LEAVE " + st.Label)
	case *IterateStmt:
		p.ws("ITERATE " + st.Label)
	case *ReturnStmt:
		p.ws("RETURN")
		if st.Value != nil {
			p.ws(" " + st.Value.SQL())
		}
	case *CallStmt:
		var args []string
		for _, a := range st.Args {
			args = append(args, a.SQL())
		}
		p.ws("CALL " + st.Name + "(" + strings.Join(args, ", ") + ")")
	case *OpenStmt:
		p.ws("OPEN " + st.Cursor)
	case *FetchStmt:
		p.ws("FETCH " + st.Cursor + " INTO " + strings.Join(st.Into, ", "))
	case *CloseStmt:
		p.ws("CLOSE " + st.Cursor)
	case *SignalStmt:
		p.ws("SIGNAL SQLSTATE '" + st.SQLState + "'")
		if st.Message != "" {
			p.ws(" SET MESSAGE_TEXT = '" + st.Message + "'")
		}
	default:
		// Plain SQL statements print on one line.
		p.ws(s.SQL())
	}
}

func stmtSQL(s Stmt) string {
	p := &printer{}
	printStmt(p, s)
	return p.b.String()
}

// SQL renders PSM statements; these share the block printer.
func (s *CompoundStmt) SQL() string { return stmtSQL(s) }

// SQL renders the SET statement.
func (s *SetStmt) SQL() string { return stmtSQL(s) }

// SQL renders the IF statement.
func (s *IfStmt) SQL() string { return stmtSQL(s) }

// SQL renders the CASE statement.
func (s *CaseStmt) SQL() string { return stmtSQL(s) }

// SQL renders the WHILE statement.
func (s *WhileStmt) SQL() string { return stmtSQL(s) }

// SQL renders the REPEAT statement.
func (s *RepeatStmt) SQL() string { return stmtSQL(s) }

// SQL renders the LOOP statement.
func (s *LoopStmt) SQL() string { return stmtSQL(s) }

// SQL renders the FOR statement.
func (s *ForStmt) SQL() string { return stmtSQL(s) }

// SQL renders LEAVE.
func (s *LeaveStmt) SQL() string { return stmtSQL(s) }

// SQL renders ITERATE.
func (s *IterateStmt) SQL() string { return stmtSQL(s) }

// SQL renders RETURN.
func (s *ReturnStmt) SQL() string { return stmtSQL(s) }

// SQL renders CALL.
func (s *CallStmt) SQL() string { return stmtSQL(s) }

// SQL renders OPEN.
func (s *OpenStmt) SQL() string { return stmtSQL(s) }

// SQL renders FETCH.
func (s *FetchStmt) SQL() string { return stmtSQL(s) }

// SQL renders CLOSE.
func (s *CloseStmt) SQL() string { return stmtSQL(s) }

// SQL renders SIGNAL.
func (s *SignalStmt) SQL() string { return stmtSQL(s) }

// Script renders a sequence of top-level statements separated by
// semicolons, the form accepted back by the parser.
func Script(stmts []Stmt) string {
	var b strings.Builder
	for _, s := range stmts {
		b.WriteString(s.SQL())
		b.WriteString(";\n")
	}
	return b.String()
}
