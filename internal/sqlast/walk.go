package sqlast

// Walk traverses the AST rooted at n in depth-first pre-order, calling
// visit for every node (statements, queries, table references, and
// expressions). If visit returns false for a node, its children are
// skipped. Walk powers the static analyses in internal/core:
// table-reachability, routine call graphs, and the per-statement
// applicability check.
func Walk(n Node, visit func(Node) bool) {
	if n == nil || !visit(n) {
		return
	}
	switch x := n.(type) {
	// ----- expressions -----
	case *Literal, *ColumnRef:
	case *BinaryExpr:
		Walk(x.L, visit)
		Walk(x.R, visit)
	case *UnaryExpr:
		Walk(x.X, visit)
	case *IsNullExpr:
		Walk(x.X, visit)
	case *BetweenExpr:
		Walk(x.X, visit)
		Walk(x.Lo, visit)
		Walk(x.Hi, visit)
	case *InExpr:
		Walk(x.X, visit)
		for _, e := range x.List {
			Walk(e, visit)
		}
		if x.Sub != nil {
			Walk(x.Sub, visit)
		}
	case *ExistsExpr:
		Walk(x.Sub, visit)
	case *LikeExpr:
		Walk(x.X, visit)
		Walk(x.Pattern, visit)
	case *CaseExpr:
		if x.Operand != nil {
			Walk(x.Operand, visit)
		}
		for _, w := range x.Whens {
			Walk(w.When, visit)
			Walk(w.Then, visit)
		}
		if x.Else != nil {
			Walk(x.Else, visit)
		}
	case *CastExpr:
		Walk(x.X, visit)
	case *FuncCall:
		for _, a := range x.Args {
			Walk(a, visit)
		}
	case *SubqueryExpr:
		Walk(x.Query, visit)

	// ----- queries -----
	case *SelectStmt:
		for _, it := range x.Items {
			if it.Expr != nil {
				Walk(it.Expr, visit)
			}
		}
		for _, r := range x.From {
			Walk(r, visit)
		}
		if x.Where != nil {
			Walk(x.Where, visit)
		}
		for _, g := range x.GroupBy {
			Walk(g, visit)
		}
		if x.Having != nil {
			Walk(x.Having, visit)
		}
		for _, o := range x.OrderBy {
			Walk(o.Expr, visit)
		}
		if x.Limit != nil {
			Walk(x.Limit, visit)
		}
	case *SetOpExpr:
		Walk(x.L, visit)
		Walk(x.R, visit)
	case *ValuesExpr:
		for _, row := range x.Rows {
			for _, e := range row {
				Walk(e, visit)
			}
		}

	// ----- table refs -----
	case *BaseTable:
	case *DerivedTable:
		Walk(x.Query, visit)
	case *TableFunc:
		Walk(x.Call, visit)
	case *JoinExpr:
		Walk(x.L, visit)
		Walk(x.R, visit)
		if x.On != nil {
			Walk(x.On, visit)
		}

	// ----- statements -----
	case *TemporalStmt:
		if x.Period != nil {
			Walk(x.Period.Begin, visit)
			Walk(x.Period.End, visit)
		}
		if x.Ctx != nil && x.Ctx.Period != nil {
			Walk(x.Ctx.Period.Begin, visit)
			Walk(x.Ctx.Period.End, visit)
		}
		Walk(x.Body, visit)
	case *ExplainStmt:
		Walk(x.Body, visit)
	case *AnalyzeStmt, *ShowProcessListStmt, *KillStmt:
		// No sub-nodes.
	case *InsertStmt:
		Walk(x.Source, visit)
	case *UpdateStmt:
		for _, sc := range x.Sets {
			Walk(sc.Value, visit)
		}
		if x.Where != nil {
			Walk(x.Where, visit)
		}
	case *DeleteStmt:
		if x.Where != nil {
			Walk(x.Where, visit)
		}
	case *CreateTableStmt:
		if x.AsQuery != nil {
			Walk(x.AsQuery, visit)
		}
	case *CreateViewStmt:
		Walk(x.Query, visit)
	case *CreateFunctionStmt:
		Walk(x.Body, visit)
	case *CreateProcedureStmt:
		Walk(x.Body, visit)
	case *CompoundStmt:
		for _, d := range x.VarDecls {
			if d.Default != nil {
				Walk(d.Default, visit)
			}
		}
		for _, c := range x.Cursors {
			Walk(c.Query, visit)
		}
		for _, h := range x.Handlers {
			Walk(h.Action, visit)
		}
		for _, s := range x.Stmts {
			Walk(s, visit)
		}
	case *SetStmt:
		Walk(x.Value, visit)
	case *IfStmt:
		Walk(x.Cond, visit)
		walkStmts(x.Then, visit)
		for _, ei := range x.ElseIfs {
			Walk(ei.Cond, visit)
			walkStmts(ei.Then, visit)
		}
		walkStmts(x.Else, visit)
	case *CaseStmt:
		if x.Operand != nil {
			Walk(x.Operand, visit)
		}
		for _, w := range x.Whens {
			Walk(w.When, visit)
			walkStmts(w.Then, visit)
		}
		walkStmts(x.Else, visit)
	case *WhileStmt:
		Walk(x.Cond, visit)
		walkStmts(x.Body, visit)
	case *RepeatStmt:
		walkStmts(x.Body, visit)
		Walk(x.Until, visit)
	case *LoopStmt:
		walkStmts(x.Body, visit)
	case *ForStmt:
		Walk(x.Query, visit)
		walkStmts(x.Body, visit)
	case *ReturnStmt:
		if x.Value != nil {
			Walk(x.Value, visit)
		}
	case *CallStmt:
		for _, a := range x.Args {
			Walk(a, visit)
		}
	case *DropTableStmt, *DropViewStmt, *AlterAddValidTime, *DropRoutineStmt,
		*LeaveStmt, *IterateStmt, *OpenStmt, *FetchStmt, *CloseStmt, *SignalStmt:
	}
}

func walkStmts(ss []Stmt, visit func(Node) bool) {
	for _, s := range ss {
		Walk(s, visit)
	}
}

// MapExprs rewrites, in place and bottom-up, every expression contained
// in the AST rooted at n (including expressions inside subqueries,
// PSM statement bodies, and cursor declarations). The transforms use it
// to rewrite stored-function invocations without reconstructing whole
// trees.
func MapExprs(n Node, f func(Expr) Expr) {
	switch x := n.(type) {
	case *SelectStmt:
		for i := range x.Items {
			if x.Items[i].Expr != nil {
				x.Items[i].Expr = mapExpr(x.Items[i].Expr, f)
			}
		}
		for _, r := range x.From {
			MapExprs(r, f)
		}
		if x.Where != nil {
			x.Where = mapExpr(x.Where, f)
		}
		for i := range x.GroupBy {
			x.GroupBy[i] = mapExpr(x.GroupBy[i], f)
		}
		if x.Having != nil {
			x.Having = mapExpr(x.Having, f)
		}
		for i := range x.OrderBy {
			x.OrderBy[i].Expr = mapExpr(x.OrderBy[i].Expr, f)
		}
		if x.Limit != nil {
			x.Limit = mapExpr(x.Limit, f)
		}
	case *SetOpExpr:
		MapExprs(x.L, f)
		MapExprs(x.R, f)
	case *ValuesExpr:
		for _, row := range x.Rows {
			for i := range row {
				row[i] = mapExpr(row[i], f)
			}
		}
	case *BaseTable:
	case *DerivedTable:
		MapExprs(x.Query, f)
	case *TableFunc:
		x.Call = mapExpr(x.Call, f).(*FuncCall)
	case *JoinExpr:
		MapExprs(x.L, f)
		MapExprs(x.R, f)
		if x.On != nil {
			x.On = mapExpr(x.On, f)
		}
	case *TemporalStmt:
		MapExprs(x.Body, f)
	case *ExplainStmt:
		MapExprs(x.Body, f)
	case *AnalyzeStmt, *ShowProcessListStmt, *KillStmt:
		// No expressions.
	case *InsertStmt:
		MapExprs(x.Source, f)
	case *UpdateStmt:
		for i := range x.Sets {
			x.Sets[i].Value = mapExpr(x.Sets[i].Value, f)
		}
		if x.Where != nil {
			x.Where = mapExpr(x.Where, f)
		}
	case *DeleteStmt:
		if x.Where != nil {
			x.Where = mapExpr(x.Where, f)
		}
	case *CreateViewStmt:
		MapExprs(x.Query, f)
	case *CreateFunctionStmt:
		MapExprs(x.Body, f)
	case *CreateProcedureStmt:
		MapExprs(x.Body, f)
	case *CompoundStmt:
		for _, d := range x.VarDecls {
			if d.Default != nil {
				d.Default = mapExpr(d.Default, f)
			}
		}
		for _, c := range x.Cursors {
			MapExprs(c.Query, f)
		}
		for _, h := range x.Handlers {
			MapExprs(h.Action, f)
		}
		mapStmts(x.Stmts, f)
	case *SetStmt:
		x.Value = mapExpr(x.Value, f)
	case *IfStmt:
		x.Cond = mapExpr(x.Cond, f)
		mapStmts(x.Then, f)
		for i := range x.ElseIfs {
			x.ElseIfs[i].Cond = mapExpr(x.ElseIfs[i].Cond, f)
			mapStmts(x.ElseIfs[i].Then, f)
		}
		mapStmts(x.Else, f)
	case *CaseStmt:
		if x.Operand != nil {
			x.Operand = mapExpr(x.Operand, f)
		}
		for i := range x.Whens {
			x.Whens[i].When = mapExpr(x.Whens[i].When, f)
			mapStmts(x.Whens[i].Then, f)
		}
		mapStmts(x.Else, f)
	case *WhileStmt:
		x.Cond = mapExpr(x.Cond, f)
		mapStmts(x.Body, f)
	case *RepeatStmt:
		mapStmts(x.Body, f)
		x.Until = mapExpr(x.Until, f)
	case *LoopStmt:
		mapStmts(x.Body, f)
	case *ForStmt:
		MapExprs(x.Query, f)
		mapStmts(x.Body, f)
	case *ReturnStmt:
		if x.Value != nil {
			x.Value = mapExpr(x.Value, f)
		}
	case *CallStmt:
		for i := range x.Args {
			x.Args[i] = mapExpr(x.Args[i], f)
		}
	}
}

func mapStmts(ss []Stmt, f func(Expr) Expr) {
	for _, s := range ss {
		MapExprs(s, f)
	}
}

// mapExpr rewrites the expression tree bottom-up: children first, then
// the node itself through f. Subqueries inside expressions are also
// rewritten.
func mapExpr(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *BinaryExpr:
		x.L = mapExpr(x.L, f)
		x.R = mapExpr(x.R, f)
	case *UnaryExpr:
		x.X = mapExpr(x.X, f)
	case *IsNullExpr:
		x.X = mapExpr(x.X, f)
	case *BetweenExpr:
		x.X = mapExpr(x.X, f)
		x.Lo = mapExpr(x.Lo, f)
		x.Hi = mapExpr(x.Hi, f)
	case *InExpr:
		x.X = mapExpr(x.X, f)
		for i := range x.List {
			x.List[i] = mapExpr(x.List[i], f)
		}
		if x.Sub != nil {
			MapExprs(x.Sub, f)
		}
	case *ExistsExpr:
		MapExprs(x.Sub, f)
	case *LikeExpr:
		x.X = mapExpr(x.X, f)
		x.Pattern = mapExpr(x.Pattern, f)
	case *CaseExpr:
		if x.Operand != nil {
			x.Operand = mapExpr(x.Operand, f)
		}
		for i := range x.Whens {
			x.Whens[i].When = mapExpr(x.Whens[i].When, f)
			x.Whens[i].Then = mapExpr(x.Whens[i].Then, f)
		}
		if x.Else != nil {
			x.Else = mapExpr(x.Else, f)
		}
	case *CastExpr:
		x.X = mapExpr(x.X, f)
	case *FuncCall:
		for i := range x.Args {
			x.Args[i] = mapExpr(x.Args[i], f)
		}
	case *SubqueryExpr:
		MapExprs(x.Query, f)
	}
	return f(e)
}
