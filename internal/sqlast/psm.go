package sqlast

// PSM statement nodes: SQL control statements (ISO 9075-4).

import "taupsm/internal/sqlscan"

// VarDecl declares one or more local variables: DECLARE a, b INT
// DEFAULT 0. Collection-typed variables (ROW(...) ARRAY) behave as
// table-valued variables at runtime.
type VarDecl struct {
	Names   []string
	Type    TypeName
	Default Expr
	Pos     sqlscan.Pos
}

// CursorDecl declares a cursor over a query. The query may carry a
// temporal modifier in Temporal SQL/PSM source (rejected by the
// translator outside nonsequenced contexts, per paper §IV-A).
type CursorDecl struct {
	Name  string
	Query Stmt // *SelectStmt/*SetOpExpr wrapped or *TemporalStmt
	Pos   sqlscan.Pos
}

// HandlerDecl declares a condition handler:
// DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1.
type HandlerDecl struct {
	Kind      string // CONTINUE or EXIT
	Condition string // NOT FOUND, SQLEXCEPTION, or SQLSTATE 'xxxxx'
	Action    Stmt
	Pos       sqlscan.Pos
}

// CompoundStmt is a [label:] BEGIN [ATOMIC] ... END [label] block.
type CompoundStmt struct {
	Label    string
	Atomic   bool
	VarDecls []*VarDecl
	Cursors  []*CursorDecl
	Handlers []*HandlerDecl
	Stmts    []Stmt
	Pos      sqlscan.Pos
}

func (*CompoundStmt) stmtNode() {}

// SetStmt assigns an expression to a variable: SET v = expr.
type SetStmt struct {
	Target string
	Value  Expr
	Pos    sqlscan.Pos
}

func (*SetStmt) stmtNode() {}

// ElseIf is one ELSEIF arm of an IF statement.
type ElseIf struct {
	Cond Expr
	Then []Stmt
}

// IfStmt is IF ... THEN ... [ELSEIF ...]* [ELSE ...] END IF.
type IfStmt struct {
	Cond    Expr
	Then    []Stmt
	ElseIfs []ElseIf
	Else    []Stmt
	Pos     sqlscan.Pos
}

func (*IfStmt) stmtNode() {}

// CaseWhenStmt is one WHEN arm of a CASE statement.
type CaseWhenStmt struct {
	When Expr
	Then []Stmt
}

// CaseStmt is a simple or searched CASE statement.
type CaseStmt struct {
	Operand Expr
	Whens   []CaseWhenStmt
	Else    []Stmt
	Pos     sqlscan.Pos
}

func (*CaseStmt) stmtNode() {}

// WhileStmt is [label:] WHILE cond DO ... END WHILE [label].
type WhileStmt struct {
	Label string
	Cond  Expr
	Body  []Stmt
	Pos   sqlscan.Pos
}

func (*WhileStmt) stmtNode() {}

// RepeatStmt is [label:] REPEAT ... UNTIL cond END REPEAT [label].
type RepeatStmt struct {
	Label string
	Body  []Stmt
	Until Expr
	Pos   sqlscan.Pos
}

func (*RepeatStmt) stmtNode() {}

// LoopStmt is [label:] LOOP ... END LOOP [label].
type LoopStmt struct {
	Label string
	Body  []Stmt
	Pos   sqlscan.Pos
}

func (*LoopStmt) stmtNode() {}

// ForStmt is [label:] FOR loopvar AS [cursor CURSOR FOR] query DO ...
// END FOR: iterate a query's result, binding its columns.
type ForStmt struct {
	Label   string
	LoopVar string
	Cursor  string
	Query   Stmt // query or *TemporalStmt
	Body    []Stmt
	Pos     sqlscan.Pos
}

func (*ForStmt) stmtNode() {}

// LeaveStmt exits the labeled statement.
type LeaveStmt struct {
	Label string
	Pos   sqlscan.Pos
}

func (*LeaveStmt) stmtNode() {}

// IterateStmt restarts the labeled loop.
type IterateStmt struct {
	Label string
	Pos   sqlscan.Pos
}

func (*IterateStmt) stmtNode() {}

// ReturnStmt returns a value from a function.
type ReturnStmt struct {
	Value Expr
	Pos   sqlscan.Pos
}

func (*ReturnStmt) stmtNode() {}

// CallStmt invokes a stored procedure. Arguments for OUT/INOUT
// parameters must be variable references.
type CallStmt struct {
	Name string
	Args []Expr
	Pos  sqlscan.Pos
}

func (*CallStmt) stmtNode() {}

// OpenStmt opens a declared cursor.
type OpenStmt struct {
	Cursor string
	Pos    sqlscan.Pos
}

func (*OpenStmt) stmtNode() {}

// FetchStmt is FETCH [FROM] cursor INTO v1, v2, ...
type FetchStmt struct {
	Cursor string
	Into   []string
	Pos    sqlscan.Pos
}

func (*FetchStmt) stmtNode() {}

// CloseStmt closes a cursor.
type CloseStmt struct {
	Cursor string
	Pos    sqlscan.Pos
}

func (*CloseStmt) stmtNode() {}

// SignalStmt raises a condition: SIGNAL SQLSTATE 'xxxxx' SET
// MESSAGE_TEXT = '...'.
type SignalStmt struct {
	SQLState string
	Message  string
	Pos      sqlscan.Pos
}

func (*SignalStmt) stmtNode() {}
