package check

import (
	"sort"
	"strings"

	"taupsm/internal/sqlast"
)

// Interprocedural effect summaries. Where effects.go answers the
// boolean questions the engine asked historically (Pure, WriteFree),
// this pass computes the full effect lattice: per statement or routine,
// the exact set of stored tables read and written, the temporal
// dimension each access touches, and the dependency set (routines and
// table names consulted) the verdict rests on. Recursive and mutually
// recursive routines are handled by fixpoint iteration — summaries only
// grow, so iteration terminates.
//
// The engine uses summaries three ways: parallel MAX evaluation runs
// fragments concurrently when their shared write set is empty (writes
// confined to collection variables and frame-local temporary tables
// don't count), EXPLAIN renders the read/write sets, and the
// translation/plan/purity caches revalidate against the dependency set
// instead of discarding on every catalog version bump.

// AccessDims records which temporal context(s) a table access occurs
// under, as a bitmask.
type AccessDims uint8

// Access-dimension bits. A non-temporal table access has no bits set.
const (
	// AccessCurrent is a current-semantics access to a temporal table.
	AccessCurrent AccessDims = 1 << iota
	// AccessValid is an access under a VALIDTIME modifier.
	AccessValid
	// AccessTransaction is an access under a TRANSACTIONTIME modifier.
	AccessTransaction
)

// String renders the dimension set for EXPLAIN output.
func (d AccessDims) String() string {
	if d == 0 {
		return "snapshot"
	}
	var parts []string
	if d&AccessCurrent != 0 {
		parts = append(parts, "current")
	}
	if d&AccessValid != 0 {
		parts = append(parts, "validtime")
	}
	if d&AccessTransaction != 0 {
		parts = append(parts, "transactiontime")
	}
	return strings.Join(parts, "+")
}

// Summary is the inferred effect set of one statement or routine,
// closed over everything it can call.
type Summary struct {
	// Reads and Writes map folded stored-table (or view) names to the
	// temporal dimensions the accesses touch.
	Reads  map[string]AccessDims
	Writes map[string]AccessDims
	// LocalWrites are writes confined to the invocation: DML against
	// temporary tables a called routine itself creates. They never
	// escape the call and are discounted from parallel-safety.
	LocalWrites map[string]bool
	// DDL reports a schema change against the shared catalog (a
	// routine's own temporary tables are frame-local and don't count).
	DDL bool
	// Unknown reports the analysis could not bound the effect set.
	Unknown bool
	// Routines is the dependency set: every routine name (folded) whose
	// definition the verdict depends on, including unresolved callees —
	// defining one later changes the verdict.
	Routines map[string]bool
	// Tables maps every table name consulted (folded) to whether it
	// existed as a stored base table at analysis time; creating or
	// dropping one of these invalidates the summary.
	Tables map[string]bool
}

func newSummary() *Summary {
	return &Summary{
		Reads:       map[string]AccessDims{},
		Writes:      map[string]AccessDims{},
		LocalWrites: map[string]bool{},
		Routines:    map[string]bool{},
		Tables:      map[string]bool{},
	}
}

// SharedWriteFree reports that the summarized code writes no stored
// table and changes no schema: all its effects (if any) are confined
// to collection variables and frame-local temporary tables, so
// identical concurrent invocations cannot interfere.
func (s *Summary) SharedWriteFree() bool {
	return !s.DDL && !s.Unknown && len(s.Writes) == 0
}

// ReadList returns the read set sorted for deterministic output.
func (s *Summary) ReadList() []string { return sortedKeys(s.Reads) }

// WriteList returns the write set sorted for deterministic output.
func (s *Summary) WriteList() []string { return sortedKeys(s.Writes) }

func sortedKeys(m map[string]AccessDims) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// merge folds o into s (monotone), reporting whether s grew.
func (s *Summary) merge(o *Summary) bool {
	if o == nil {
		return false
	}
	grew := false
	for k, d := range o.Reads {
		if s.Reads[k]&d != d {
			s.Reads[k] |= d
			grew = true
		}
	}
	for k, d := range o.Writes {
		if s.Writes[k]&d != d {
			s.Writes[k] |= d
			grew = true
		}
	}
	for k := range o.LocalWrites {
		if !s.LocalWrites[k] {
			s.LocalWrites[k] = true
			grew = true
		}
	}
	if o.DDL && !s.DDL {
		s.DDL = true
		grew = true
	}
	if o.Unknown && !s.Unknown {
		s.Unknown = true
		grew = true
	}
	for k := range o.Routines {
		if !s.Routines[k] {
			s.Routines[k] = true
			grew = true
		}
	}
	for k, v := range o.Tables {
		if have, ok := s.Tables[k]; !ok || have != v {
			s.Tables[k] = v
			grew = true
		}
	}
	return grew
}

// Summarize computes the effect summary of n, resolving routine calls
// through locals (folded name → body) first, then cat. The root n is
// analyzed at top level: a CREATE TEMPORARY TABLE there is shared DDL,
// while the same statement inside a called routine is frame-local.
func Summarize(cat Catalog, locals map[string]sqlast.Stmt, n sqlast.Node) *Summary {
	s := &summarizer{cat: cat, locals: locals, memo: map[string]*Summary{}}
	var out *Summary
	for range [64]struct{}{} { // fixpoint: bound is #routines, cap for safety
		s.changed = false
		s.done = map[string]bool{}
		out = newSummary()
		s.node(n, out, nil, 0)
		if !s.changed {
			break
		}
	}
	return out
}

// SummarizeRoutine computes the effect summary of invoking the named
// stored routine (its own temporary tables discounted as frame-local).
// The routine itself is always part of the dependency set, so callers
// get an invalidation stamp even for an unresolved name.
func SummarizeRoutine(cat Catalog, name string) *Summary {
	s := &summarizer{cat: cat, memo: map[string]*Summary{}}
	var out *Summary
	for range [64]struct{}{} {
		s.changed = false
		s.done = map[string]bool{}
		out = newSummary()
		out.Routines[fold(name)] = true
		out.merge(s.routineSummary(name))
		if !s.changed {
			break
		}
	}
	return out
}

type summarizer struct {
	cat     Catalog
	locals  map[string]sqlast.Stmt
	memo    map[string]*Summary // per-routine summaries across iterations
	done    map[string]bool     // routines recomputed this iteration
	onStack map[string]bool
	changed bool
}

func (s *summarizer) resolve(name string) (sqlast.Stmt, bool) {
	if s.locals != nil {
		if body, ok := s.locals[fold(name)]; ok {
			return body, true
		}
	}
	if body := routineBody(s.cat, name); body != nil {
		return body, true
	}
	return nil, false
}

// routineSummary returns the (possibly still-growing) summary of one
// routine, computing it at most once per fixpoint iteration.
func (s *summarizer) routineSummary(name string) *Summary {
	k := fold(name)
	if s.onStack[k] || s.done[k] {
		return s.memo[k] // partial under recursion; final once done
	}
	body, ok := s.resolve(name)
	if !ok {
		return nil
	}
	if s.onStack == nil {
		s.onStack = map[string]bool{}
	}
	s.onStack[k] = true
	sum := newSummary()
	s.node(body, sum, localTemps(s.cat, body), 1)
	delete(s.onStack, k)
	s.done[k] = true
	prev := s.memo[k]
	if prev == nil {
		s.memo[k] = sum
		s.changed = true
		return sum
	}
	if prev.merge(sum) {
		s.changed = true
	}
	return prev
}

// localTemps collects the names of temporary tables a routine body
// creates for itself. The engine binds those frames-locally (each
// invocation gets a private instance), so DML against them is not a
// shared effect. A name that is already a stored base table is
// excluded: the CREATE fails at run time rather than shadowing it.
func localTemps(cat Catalog, body sqlast.Stmt) map[string]bool {
	var temps map[string]bool
	sqlast.Walk(body, func(m sqlast.Node) bool {
		if x, ok := m.(*sqlast.CreateTableStmt); ok && x.Temporary && !cat.IsTable(x.Name) {
			if temps == nil {
				temps = map[string]bool{}
			}
			temps[fold(x.Name)] = true
		}
		return true
	})
	return temps
}

// node walks one subtree, accumulating effects into sum. temps is the
// frame-local temporary-table set of the enclosing routine body (nil
// at top level); depth distinguishes top-level statements (0) from
// routine bodies (≥1). dim context is tracked through TemporalStmt
// wrappers.
func (s *summarizer) node(n sqlast.Node, sum *Summary, temps map[string]bool, depth int) {
	s.walk(n, sum, temps, depth, 0)
}

func (s *summarizer) walk(n sqlast.Node, sum *Summary, temps map[string]bool, depth int, dim AccessDims) {
	sqlast.Walk(n, func(m sqlast.Node) bool {
		switch x := m.(type) {
		case *sqlast.TemporalStmt:
			d := AccessValid
			if x.Dim == sqlast.DimTransaction {
				d = AccessTransaction
			}
			if x.Mod == sqlast.ModCurrent {
				d = 0
			}
			if x.Period != nil {
				s.walk(x.Period.Begin, sum, temps, depth, dim)
				s.walk(x.Period.End, sum, temps, depth, dim)
			}
			if x.Ctx != nil && x.Ctx.Period != nil {
				s.walk(x.Ctx.Period.Begin, sum, temps, depth, dim)
				s.walk(x.Ctx.Period.End, sum, temps, depth, dim)
			}
			s.walk(x.Body, sum, temps, depth, dim|d)
			return false
		case *sqlast.BaseTable:
			s.access(x.Name, sum, temps, dim, false)
		case *sqlast.InsertStmt:
			s.access(x.Table, sum, temps, dim, true)
		case *sqlast.UpdateStmt:
			s.access(x.Table, sum, temps, dim, true)
		case *sqlast.DeleteStmt:
			s.access(x.Table, sum, temps, dim, true)
		case *sqlast.CreateTableStmt:
			if x.Temporary && depth > 0 && temps[fold(x.Name)] {
				// Frame-local: each invocation creates a private instance.
				sum.LocalWrites[fold(x.Name)] = true
			} else {
				sum.DDL = true
			}
			sum.Tables[fold(x.Name)] = s.cat.IsTable(x.Name)
		case *sqlast.DropTableStmt:
			if depth > 0 && temps[fold(x.Name)] {
				sum.LocalWrites[fold(x.Name)] = true
			} else {
				sum.DDL = true
			}
		case *sqlast.CreateViewStmt, *sqlast.DropViewStmt,
			*sqlast.CreateFunctionStmt, *sqlast.CreateProcedureStmt,
			*sqlast.DropRoutineStmt, *sqlast.AlterAddValidTime:
			sum.DDL = true
		case *sqlast.FuncCall:
			s.call(x.Name, sum)
		case *sqlast.CallStmt:
			s.call(x.Name, sum)
		}
		return true
	})
}

// access records one table read or write. Collection variables and
// names that are neither stored tables nor views are skipped — but
// every name is recorded in the dependency set, because creating a
// table with that name later changes the resolution.
func (s *summarizer) access(name string, sum *Summary, temps map[string]bool, dim AccessDims, write bool) {
	k := fold(name)
	if temps[k] {
		if write {
			sum.LocalWrites[k] = true
		}
		return
	}
	isTable := s.cat.IsTable(name)
	sum.Tables[k] = isTable
	if !isTable {
		if !write && s.cat.IsView(name) {
			sum.Reads[k] |= s.tableDim(name, dim)
		}
		// Collection variable or unknown name: no stored effect.
		return
	}
	d := s.tableDim(name, dim)
	if write {
		sum.Writes[k] |= d
	} else {
		sum.Reads[k] |= d
	}
}

// tableDim resolves the dimension an access touches: non-temporal
// tables have none; temporal tables are touched in the statement's
// modifier dimension, or with current semantics outside any modifier.
// A bitemporal table under any modifier is touched in both dimensions
// (the sliced one plus the orthogonal context filter).
func (s *summarizer) tableDim(name string, dim AccessDims) AccessDims {
	if !s.cat.IsTemporalTable(name) {
		return 0
	}
	if dim != 0 {
		if s.cat.IsBitemporalTable(name) {
			return dim | AccessValid | AccessTransaction
		}
		return dim
	}
	return AccessCurrent
}

func (s *summarizer) call(name string, sum *Summary) {
	k := fold(name)
	sum.Routines[k] = true
	if cs := s.routineSummary(name); cs != nil {
		// Merging a partial (on-stack) summary is sound: the fixpoint
		// loop re-runs until no summary grows.
		sum.merge(cs)
	}
}
