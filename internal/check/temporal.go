package check

import (
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/sqlscan"
)

// Temporal applicability lint: a static mirror of the stratum's
// reachability analysis (internal/core/analyze.go) and of the
// per-statement slicing preconditions, so misapplied modifiers are
// reported before translation instead of failing (or silently falling
// back) at run time.

// closure is the reachable table/routine set of one statement.
type closure struct {
	tables   []string // reachable base tables, first-seen order
	routines []string // reachable, defined routines, first-seen order
	bodies   map[string]sqlast.Stmt
	modifier map[string]bool // routine contains a temporal modifier
}

// buildClosure mirrors analyzeDim's BFS over the call graph. Unknown
// callees are skipped here — the scope pass reports them as TAU006.
func (c *checker) buildClosure(stmt sqlast.Stmt) *closure {
	cl := &closure{bodies: map[string]sqlast.Stmt{}, modifier: map[string]bool{}}
	seenT := map[string]bool{}
	seenR := map[string]bool{}
	var queue []string

	collect := func(n sqlast.Node) {
		sqlast.Walk(n, func(m sqlast.Node) bool {
			switch x := m.(type) {
			case *sqlast.BaseTable:
				k := fold(x.Name)
				if !seenT[k] && (c.cat.IsTable(x.Name) || c.cat.IsView(x.Name)) {
					seenT[k] = true
					cl.tables = append(cl.tables, x.Name)
				}
			case *sqlast.FuncCall:
				queue = append(queue, x.Name)
			case *sqlast.CallStmt:
				queue = append(queue, x.Name)
			}
			return true
		})
	}
	collect(stmt)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		k := fold(name)
		if seenR[k] {
			continue
		}
		seenR[k] = true
		body := routineBody(c.cat, name)
		if body == nil {
			continue
		}
		cl.routines = append(cl.routines, name)
		cl.bodies[k] = body
		sqlast.Walk(body, func(m sqlast.Node) bool {
			if ts, ok := m.(*sqlast.TemporalStmt); ok && ts.Mod != sqlast.ModCurrent {
				cl.modifier[k] = true
			}
			return true
		})
		collect(body)
	}
	return cl
}

func (c *checker) dimOf(table string) sqlast.TemporalDimension {
	if c.cat.IsTransactionTable(table) {
		return sqlast.DimTransaction
	}
	return sqlast.DimValid
}

// carriesDim mirrors core's carriesDim: bitemporal tables carry both
// dimensions; single-dimension tables carry only their own.
func (c *checker) carriesDim(table string, d sqlast.TemporalDimension) bool {
	if c.cat.IsBitemporalTable(table) {
		return true
	}
	return c.dimOf(table) == d
}

// temporalStmt lints one modifier-wrapped top-level statement.
func (c *checker) temporalStmt(ts *sqlast.TemporalStmt) {
	if ts.Mod == sqlast.ModCurrent {
		return
	}
	cl := c.buildClosure(ts.Body)

	var reached, mismatched []string
	for _, t := range cl.tables {
		if !c.cat.IsTemporalTable(t) {
			continue
		}
		if c.carriesDim(t, ts.Dim) {
			reached = append(reached, t)
		} else {
			mismatched = append(mismatched, t)
		}
	}

	if ts.Mod == sqlast.ModSequenced && len(mismatched) > 0 && ts.Ctx == nil {
		c.addHint(CodeMixedDimensions, Warning, ts.Pos,
			"add AND "+otherDim(ts.Dim).Keyword()+" (...) to the modifier to pick a different context",
			"statement slices %s but also reaches %s-only table(s) %s; they are filtered to the current %s context",
			ts.Dim.Keyword(), otherDim(ts.Dim).Keyword(), strings.Join(mismatched, ", "),
			otherDim(ts.Dim).Keyword())
	}
	if len(reached) == 0 && len(mismatched) == 0 && len(cl.tables) > 0 {
		c.addHint(CodeNoTemporalTable, Warning, ts.Pos,
			"drop the modifier, or add temporal support with ALTER TABLE ... ADD "+ts.Dim.Keyword(),
			"%s modifier has no effect: no %s table is reachable from this statement",
			ts.Mod, ts.Dim.Keyword())
	}

	// A reachable routine containing a temporal modifier is rejected in
	// every context except nonsequenced (§IV-A).
	if ts.Mod != sqlast.ModNonsequenced {
		for _, r := range cl.routines {
			if cl.modifier[fold(r)] {
				c.add(CodeModifierInBody, Error, ts.Pos,
					"routine %s: a routine containing a temporal statement modifier may only be invoked from a nonsequenced context", r)
			}
		}
	}

	// Transaction time is system-maintained; only current modifications
	// may write those tables, and slicing it for DML would rewrite the
	// audit past.
	if ts.Mod == sqlast.ModSequenced && ts.Dim == sqlast.DimTransaction {
		switch ts.Body.(type) {
		case *sqlast.InsertStmt, *sqlast.UpdateStmt, *sqlast.DeleteStmt:
			c.add(CodeManualTransTime, Error, ts.Pos,
				"sequenced transaction-time modifications would rewrite the audit past; transaction time is append-only")
		}
	}
	c.manualTransactionDML(ts.Body, ts.Mod)
	c.timeColumnWrites(ts.Body, ts.Mod)

	// Predict per-statement slicing fallbacks for sequenced statements.
	if ts.Mod == sqlast.ModSequenced && ts.Dim == sqlast.DimValid {
		for _, h := range c.perstHazards(ts.Body) {
			c.emitHazard(h)
		}
		for _, r := range cl.routines {
			for _, h := range c.perstHazards(cl.bodies[fold(r)]) {
				c.emitHazard(h)
			}
		}
	}
}

func otherDim(d sqlast.TemporalDimension) sqlast.TemporalDimension {
	if d == sqlast.DimTransaction {
		return sqlast.DimValid
	}
	return sqlast.DimTransaction
}

// manualTransactionDML mirrors core's checkNoManualTransactionDML and
// checkNonseqBitemporalDML. Transaction-time-only tables reject every
// modifier-wrapped modification; bitemporal tables accept sequenced and
// current valid-time DML (the stratum versions transaction time), and
// under NONSEQUENCED only a top-level INSERT.
func (c *checker) manualTransactionDML(body sqlast.Stmt, mod sqlast.TemporalModifier) {
	sqlast.Walk(body, func(n sqlast.Node) bool {
		var target string
		var pos sqlscan.Pos
		insert := false
		switch x := n.(type) {
		case *sqlast.InsertStmt:
			if !x.VarTarget {
				target, pos = x.Table, x.Pos
				insert = true
			}
		case *sqlast.UpdateStmt:
			if !x.VarTarget {
				target, pos = x.Table, x.Pos
			}
		case *sqlast.DeleteStmt:
			if !x.VarTarget {
				target, pos = x.Table, x.Pos
			}
		}
		if target == "" || !c.cat.IsTransactionTable(target) {
			return true
		}
		if c.cat.IsBitemporalTable(target) {
			if mod == sqlast.ModNonsequenced && !(insert && n == sqlast.Node(body)) {
				c.add(CodeManualTransTime, Error, pos,
					"nonsequenced modification of bitemporal table %s: only top-level INSERT is supported", target)
				return false
			}
			return true
		}
		c.add(CodeManualTransTime, Error, pos,
			"transaction time of table %s is system-maintained; only current modifications are allowed", target)
		return false
	})
}

// timeColumnWrites flags explicit UPDATE assignments to the period
// columns of a temporal table outside NONSEQUENCED statements, where
// the stratum maintains them (a TUC hazard: the write is either
// overwritten or corrupts period invariants).
func (c *checker) timeColumnWrites(body sqlast.Stmt, mod sqlast.TemporalModifier) {
	if mod == sqlast.ModNonsequenced {
		return
	}
	sqlast.Walk(body, func(n sqlast.Node) bool {
		up, ok := n.(*sqlast.UpdateStmt)
		if !ok || up.VarTarget || !c.cat.IsTemporalTable(up.Table) {
			return true
		}
		for _, set := range up.Sets {
			lc := fold(set.Column)
			if lc == "begin_time" || lc == "end_time" || lc == "tt_begin_time" || lc == "tt_end_time" {
				c.addHint(CodeTimeColumnWrite, Warning, set.Pos,
					"use a NONSEQUENCED VALIDTIME statement for explicit period surgery",
					"explicit write to system-maintained period column %s.%s", up.Table, set.Column)
			}
		}
		return true
	})
}

// hazard is one construct per-statement slicing cannot transform.
type hazard struct {
	pos sqlscan.Pos
	msg string
}

func (c *checker) emitHazard(h hazard) {
	c.add(CodePerstFallback, Warning, h.pos,
		"per-statement slicing will not apply (sequenced invocations fall back to MAX): %s", h.msg)
}

// perstHazards statically detects the ErrNotTransformable constructs
// of the per-statement transform (internal/core/perst_stmts.go) that
// depend only on shape and schema: temporal cursors over non-plain
// SELECTs, temporal FOR loops over non-plain SELECTs, and q17b's
// non-nested FETCH of a temporal cursor inside per-period iteration.
func (c *checker) perstHazards(body sqlast.Stmt) []hazard {
	var out []hazard
	cursors := map[string]sqlast.Stmt{}
	var scanList func(list []sqlast.Stmt, inTemporalFor bool)
	var scan func(s sqlast.Stmt, inTemporalFor bool)
	scan = func(s sqlast.Stmt, inTemporalFor bool) {
		switch x := s.(type) {
		case nil:
		case *sqlast.CompoundStmt:
			for _, cd := range x.Cursors {
				cursors[fold(cd.Name)] = cd.Query
				if c.queryTemporal(cd.Query) {
					if _, plain := unwrapTemporal(cd.Query).(*sqlast.SelectStmt); !plain {
						out = append(out, hazard{cd.Pos,
							"temporal cursor " + cd.Name + " requires a plain SELECT"})
					}
				}
			}
			for _, h := range x.Handlers {
				scan(h.Action, inTemporalFor)
			}
			scanList(x.Stmts, inTemporalFor)
		case *sqlast.IfStmt:
			scanList(x.Then, inTemporalFor)
			for _, ei := range x.ElseIfs {
				scanList(ei.Then, inTemporalFor)
			}
			scanList(x.Else, inTemporalFor)
		case *sqlast.CaseStmt:
			for _, w := range x.Whens {
				scanList(w.Then, inTemporalFor)
			}
			scanList(x.Else, inTemporalFor)
		case *sqlast.WhileStmt:
			scanList(x.Body, inTemporalFor)
		case *sqlast.RepeatStmt:
			scanList(x.Body, inTemporalFor)
		case *sqlast.LoopStmt:
			scanList(x.Body, inTemporalFor)
		case *sqlast.ForStmt:
			temporal := c.queryTemporal(x.Query)
			if temporal {
				if _, plain := unwrapTemporal(x.Query).(*sqlast.SelectStmt); !plain {
					out = append(out, hazard{x.Pos, "temporal FOR loop requires a plain SELECT"})
				}
			}
			scanList(x.Body, inTemporalFor || temporal)
		case *sqlast.FetchStmt:
			if inTemporalFor {
				if q, ok := cursors[fold(x.Cursor)]; ok && c.queryTemporal(q) {
					out = append(out, hazard{x.Pos,
						"non-nested FETCH of cursor " + x.Cursor + " inside per-period iteration"})
				}
			}
		}
	}
	scanList = func(list []sqlast.Stmt, inTemporalFor bool) {
		for _, s := range list {
			scan(s, inTemporalFor)
		}
	}
	scan(body, false)
	return out
}

func unwrapTemporal(s sqlast.Stmt) sqlast.Stmt {
	if ts, ok := s.(*sqlast.TemporalStmt); ok {
		return ts.Body
	}
	return s
}

// queryTemporal reports whether a query references a temporal table
// directly.
func (c *checker) queryTemporal(q sqlast.Stmt) bool {
	found := false
	sqlast.Walk(q, func(n sqlast.Node) bool {
		if bt, ok := n.(*sqlast.BaseTable); ok && c.cat.IsTemporalTable(bt.Name) {
			found = true
		}
		return !found
	})
	return found
}

// routineTemporal emits CREATE-time temporal lint for one routine
// definition: predicted per-statement slicing fallbacks. (Modifiers
// inside the body are reported by the statement walker as TAU023.)
func (c *checker) routineTemporal(body sqlast.Stmt) {
	for _, h := range c.perstHazards(body) {
		c.emitHazard(h)
	}
}
