package check

import (
	"taupsm/internal/sqlast"
	"taupsm/internal/sqlscan"
)

// checkRecursion reports whether the routine being defined can reach
// itself through the stored call graph (directly or mutually).
// Recursion is legal at run time for write-free routines under
// parallel evaluation, but it defeats the purity cache and usually
// indicates a mistake in SQL/PSM, so it is a warning.
func (c *checker) checkRecursion(name string, body sqlast.Stmt, pos sqlscan.Pos) {
	target := fold(name)
	seen := map[string]bool{target: true}
	if c.reaches(body, target, seen) {
		c.add(CodeRecursion, Warning, pos,
			"routine %s is directly or mutually recursive", name)
	}
}

// reaches walks body's callees depth-first looking for target.
func (c *checker) reaches(body sqlast.Stmt, target string, seen map[string]bool) bool {
	found := false
	sqlast.Walk(body, func(n sqlast.Node) bool {
		if found {
			return false
		}
		var callee string
		switch x := n.(type) {
		case *sqlast.FuncCall:
			callee = x.Name
		case *sqlast.CallStmt:
			callee = x.Name
		default:
			return true
		}
		f := fold(callee)
		if f == target {
			found = true
			return false
		}
		if seen[f] {
			return true
		}
		seen[f] = true
		var next sqlast.Stmt
		if fn := c.cat.Function(callee); fn != nil {
			next = fn.Body
		} else if pr := c.cat.Procedure(callee); pr != nil {
			next = pr.Body
		}
		if next != nil && c.reaches(next, target, seen) {
			found = true
			return false
		}
		return true
	})
	return found
}
