package check

import (
	"taupsm/internal/sqlast"
	"taupsm/internal/sqlscan"
	"taupsm/internal/types"
)

// labelInfo is one enclosing label; ITERATE requires a loop label,
// LEAVE accepts either kind (matching the engine's unwinding).
type labelInfo struct {
	name string // folded
	loop bool
}

func findLabel(labels []labelInfo, name string) (labelInfo, bool) {
	f := fold(name)
	for i := len(labels) - 1; i >= 0; i-- {
		if labels[i].name == f {
			return labels[i], true
		}
	}
	return labelInfo{}, false
}

// stmts walks a statement list, reporting the first statement that
// control flow can never reach.
func (c *checker) stmts(list []sqlast.Stmt, sc *scope, labels []labelInfo) {
	reported := false
	for i, s := range list {
		if i > 0 && !reported && terminates(list[i-1]) {
			if pos := sqlast.PosOf(s); pos != (sqlscan.Pos{}) {
				c.add(CodeUnreachable, Warning, pos, "unreachable statement")
			}
			reported = true
		}
		c.stmt(s, sc, labels)
	}
}

func (c *checker) stmt(s sqlast.Stmt, sc *scope, labels []labelInfo) {
	if pos := sqlast.PosOf(s); pos != (sqlscan.Pos{}) {
		c.curPos = pos
	}
	switch x := s.(type) {
	case nil:
	case *sqlast.CompoundStmt:
		c.compound(x, sc, labels)
	case *sqlast.SetStmt:
		c.expr(x.Value, sc)
		v := sc.lookupVar(x.Target)
		if v == nil {
			c.add(CodeUndeclaredVar, Error, x.Pos, "variable %s is not declared", x.Target)
			return
		}
		v.written = true
		c.useBeforeDecl(v, x.Pos)
		if !v.collection {
			c.checkAssign(CodeAssignMismatch, v.kind, x.Value, sc, x.Pos, "SET "+v.display)
		}
	case *sqlast.IfStmt:
		c.expr(x.Cond, sc)
		c.condition(x.Cond, x.Pos, sc)
		c.foldIf(x)
		c.stmts(x.Then, sc, labels)
		for _, ei := range x.ElseIfs {
			c.expr(ei.Cond, sc)
			c.condition(ei.Cond, x.Pos, sc)
			c.stmts(ei.Then, sc, labels)
		}
		c.stmts(x.Else, sc, labels)
	case *sqlast.CaseStmt:
		c.expr(x.Operand, sc)
		for _, w := range x.Whens {
			c.expr(w.When, sc)
			c.stmts(w.Then, sc, labels)
		}
		c.stmts(x.Else, sc, labels)
	case *sqlast.WhileStmt:
		c.expr(x.Cond, sc)
		c.condition(x.Cond, x.Pos, sc)
		c.foldLoop(x)
		c.stmts(x.Body, sc, c.pushLabel(labels, x.Label, true))
	case *sqlast.RepeatStmt:
		c.stmts(x.Body, sc, c.pushLabel(labels, x.Label, true))
		c.expr(x.Until, sc)
		c.condition(x.Until, x.Pos, sc)
		c.foldLoop(x)
	case *sqlast.LoopStmt:
		c.stmts(x.Body, sc, c.pushLabel(labels, x.Label, true))
	case *sqlast.ForStmt:
		c.forStmt(x, sc, labels)
	case *sqlast.LeaveStmt:
		if _, ok := findLabel(labels, x.Label); !ok {
			c.add(CodeUnknownLabel, Error, x.Pos, "no enclosing statement labeled %s", x.Label)
		}
	case *sqlast.IterateStmt:
		l, ok := findLabel(labels, x.Label)
		if !ok || !l.loop {
			c.add(CodeUnknownLabel, Error, x.Pos, "no enclosing loop labeled %s", x.Label)
		}
	case *sqlast.ReturnStmt:
		c.expr(x.Value, sc)
		c.checkAssign(CodeReturnMismatch, c.retKind, x.Value, sc, x.Pos, "RETURN")
	case *sqlast.CallStmt:
		c.callStmt(x, sc)
	case *sqlast.OpenStmt:
		c.cursorUse(x.Cursor, x.Pos, sc)
	case *sqlast.CloseStmt:
		c.cursorUse(x.Cursor, x.Pos, sc)
	case *sqlast.FetchStmt:
		c.fetchStmt(x, sc)
	case *sqlast.SignalStmt:
	case *sqlast.SelectStmt:
		c.query(x, sc)
	case *sqlast.SetOpExpr:
		c.query(x, sc)
	case *sqlast.InsertStmt:
		c.insertStmt(x, sc)
	case *sqlast.UpdateStmt:
		c.updateStmt(x, sc)
	case *sqlast.DeleteStmt:
		c.deleteStmt(x, sc)
	case *sqlast.TemporalStmt:
		if c.inRoutine && x.Mod != sqlast.ModCurrent {
			c.add(CodeModifierInBody, Warning, x.Pos,
				"%s inside a routine body: sequenced statement modifiers in routines are rejected by per-statement slicing", x.Mod)
		}
		c.foldPeriod(x)
		c.stmt(x.Body, sc, labels)
	case *sqlast.CreateTableStmt:
		if x.AsQuery != nil {
			c.query(x.AsQuery, sc)
		}
	case *sqlast.CreateViewStmt:
		c.query(x.Query, sc)
	}
}

func (c *checker) pushLabel(labels []labelInfo, name string, loop bool) []labelInfo {
	if name == "" {
		return labels
	}
	out := make([]labelInfo, len(labels), len(labels)+1)
	copy(out, labels)
	return append(out, labelInfo{name: fold(name), loop: loop})
}

// compound analyzes a BEGIN/END block: declarations are hoisted by the
// engine, but we still track lexical order for use-before-declare.
func (c *checker) compound(s *sqlast.CompoundStmt, parent *scope, labels []labelInfo) {
	sc := newScope(parent)
	for _, d := range s.VarDecls {
		c.expr(d.Default, sc)
		if !d.Type.IsCollection() {
			c.checkAssign(CodeAssignMismatch, d.Type.Kind(), d.Default, sc, d.Pos,
				"DEFAULT for "+firstName(d.Names))
		}
		for _, name := range d.Names {
			if sc.localVar(name) != nil {
				c.add(CodeDuplicate, Warning, d.Pos, "duplicate declaration of %s", name)
				continue
			}
			v := &varInfo{
				name: fold(name), display: name, declPos: d.Pos,
				collection: d.Type.IsCollection(),
				rowCols:    rowColNames(d.Type), rowKinds: rowColKinds(d.Type),
			}
			if !v.collection {
				v.kind = d.Type.Kind()
			}
			sc.vars = append(sc.vars, v)
		}
	}
	for _, cd := range s.Cursors {
		if sc.localCursor(cd.Name) != nil {
			c.add(CodeDuplicate, Warning, cd.Pos, "duplicate declaration of cursor %s", cd.Name)
			continue
		}
		sc.cursors = append(sc.cursors, &cursorInfo{
			name: fold(cd.Name), display: cd.Name, declPos: cd.Pos, query: cd.Query,
		})
	}
	// Cursor queries see the full variable frame (they are evaluated
	// at OPEN, after all declarations are in effect).
	for _, cd := range s.Cursors {
		c.cursorQuery(cd.Query, sc, labels)
	}
	blabels := c.pushLabel(labels, s.Label, false)
	for _, h := range s.Handlers {
		c.stmt(h.Action, sc, blabels)
	}
	c.stmts(s.Stmts, sc, blabels)
	c.popScope(sc)
}

// cursorQuery checks a cursor/loop query, which may carry a temporal
// wrapper.
func (c *checker) cursorQuery(q sqlast.Stmt, sc *scope, labels []labelInfo) {
	switch x := q.(type) {
	case nil:
	case *sqlast.TemporalStmt:
		if c.inRoutine && x.Mod != sqlast.ModCurrent {
			c.add(CodeModifierInBody, Warning, x.Pos,
				"%s inside a routine body: sequenced statement modifiers in routines are rejected by per-statement slicing", x.Mod)
		}
		c.cursorQuery(x.Body, sc, labels)
	case sqlast.QueryExpr:
		c.query(x, sc)
	default:
		c.stmt(q, sc, labels)
	}
}

// popScope reports dead stores and unused declarations as the block
// closes.
func (c *checker) popScope(sc *scope) {
	for _, v := range sc.vars {
		if v.isParam || v.read {
			continue
		}
		if v.written {
			c.add(CodeDeadStore, Warning, v.declPos,
				"value assigned to %s is never read", v.display)
		} else {
			c.add(CodeDeadStore, Warning, v.declPos,
				"variable %s is declared but never used", v.display)
		}
	}
	for _, cu := range sc.cursors {
		if !cu.used {
			c.add(CodeDeadStore, Warning, cu.declPos,
				"cursor %s is declared but never used", cu.display)
		}
	}
}

func (c *checker) forStmt(x *sqlast.ForStmt, sc *scope, labels []labelInfo) {
	c.cursorQuery(x.Query, sc, labels)
	body := newScope(sc)
	if x.LoopVar != "" {
		body.rows = append(body.rows, loopEntry(x.LoopVar, x.Query))
	} else {
		body.rows = append(body.rows, rowEntry{opaque: true})
	}
	// The loop's columns are also referable without qualification.
	if cols := cursorCols(x.Query); cols != nil {
		body.rows = append(body.rows, rowEntry{cols: cols})
	} else {
		body.rows = append(body.rows, rowEntry{opaque: true})
	}
	c.stmts(x.Body, body, c.pushLabel(labels, x.Label, true))
}

func (c *checker) cursorUse(name string, pos sqlscan.Pos, sc *scope) *cursorInfo {
	cu := sc.lookupCursor(name)
	if cu == nil {
		c.add(CodeUndeclaredCursor, Error, pos, "cursor %s is not declared", name)
		return nil
	}
	cu.used = true
	return cu
}

func (c *checker) fetchStmt(x *sqlast.FetchStmt, sc *scope) {
	cu := c.cursorUse(x.Cursor, x.Pos, sc)
	for _, name := range x.Into {
		v := sc.lookupVar(name)
		if v == nil {
			c.add(CodeUndeclaredVar, Error, x.Pos, "variable %s is not declared", name)
			continue
		}
		v.written = true
		c.useBeforeDecl(v, x.Pos)
	}
	if cu != nil {
		if cols := cursorCols(cu.query); cols != nil && len(cols) != len(x.Into) {
			c.add(CodeBadArity, Warning, x.Pos,
				"FETCH %s: %d variables for %d columns", x.Cursor, len(x.Into), len(cols))
		}
	}
}

func (c *checker) callStmt(x *sqlast.CallStmt, sc *scope) {
	pr := c.cat.Procedure(x.Name)
	if pr == nil {
		for _, a := range x.Args {
			c.expr(a, sc)
		}
		if c.cat.Function(x.Name) != nil {
			c.add(CodeKindMismatch, Error, x.Pos,
				"%s is a function; invoke it in an expression", x.Name)
			return
		}
		c.add(CodeUnknownRoutine, Error, x.Pos, "procedure %s does not exist", x.Name)
		return
	}
	if len(x.Args) != len(pr.Params) {
		c.add(CodeBadArity, Error, x.Pos,
			"procedure %s expects %d arguments, got %d",
			x.Name, len(pr.Params), len(x.Args))
		for _, a := range x.Args {
			c.expr(a, sc)
		}
		return
	}
	for i, a := range x.Args {
		p := pr.Params[i]
		if p.Mode == sqlast.ModeOut || p.Mode == sqlast.ModeInOut {
			cr, ok := a.(*sqlast.ColumnRef)
			if !ok || cr.Table != "" {
				pos := sqlast.PosOf(a)
				if pos == (sqlscan.Pos{}) {
					pos = x.Pos
				}
				c.add(CodeBadArity, Error, pos,
					"argument %d of %s must be a variable (parameter %s is %s)",
					i+1, x.Name, p.Name, p.Mode)
				continue
			}
			v := sc.lookupVar(cr.Column)
			if v == nil {
				c.add(CodeUndeclaredVar, Error, cr.Pos,
					"variable %s is not declared", cr.Column)
				continue
			}
			v.written = true
			if p.Mode == sqlast.ModeInOut {
				v.read = true
			}
			c.useBeforeDecl(v, cr.Pos)
			if !v.collection && !p.Type.IsCollection() && !assignable(v.kind, p.Type.Kind()) {
				c.add(CodeArgMismatch, Warning, cr.Pos,
					"argument %d of %s: %s variable bound to %s %s parameter %s",
					i+1, x.Name, v.kind, p.Type.Kind(), p.Mode, p.Name)
			}
			continue
		}
		c.expr(a, sc)
	}
	c.checkArgs(x.Name, pr.Params, x.Args, sc, x.Pos)
}

func firstName(names []string) string {
	if len(names) == 0 {
		return "?"
	}
	return names[0]
}

// ---------- DML ----------

func (c *checker) insertStmt(x *sqlast.InsertStmt, sc *scope) {
	cols, kinds := c.dmlTarget(x.Table, x.VarTarget, true, x.Pos, sc)
	if x.Cols != nil && cols != nil {
		for _, name := range x.Cols {
			if !colIn(cols, name) {
				c.add(CodeUnknownColumn, c.tableSev(), x.Pos,
					"column %s.%s does not exist", x.Table, name)
			}
		}
	}
	c.insertShape(x, cols, kinds, sc)
	c.query(x.Source, sc)
}

func (c *checker) updateStmt(x *sqlast.UpdateStmt, sc *scope) {
	cols, kinds := c.dmlTarget(x.Table, x.VarTarget, false, x.Pos, sc)
	alias := x.Alias
	if alias == "" {
		alias = x.Table
	}
	body := newScope(sc)
	body.rows = append(body.rows, rowEntry{alias: fold(alias), cols: cols, kinds: kinds, opaque: cols == nil})
	for _, set := range x.Sets {
		if cols != nil && !colIn(cols, set.Column) {
			c.add(CodeUnknownColumn, c.tableSev(), set.Pos,
				"column %s.%s does not exist", x.Table, set.Column)
		}
		c.expr(set.Value, body)
		if kinds != nil {
			for i, cn := range cols {
				if i < len(kinds) && equalFoldASCII(cn, set.Column) {
					c.checkAssign(CodeInsertMismatch, kinds[i], set.Value, body, set.Pos,
						"UPDATE "+x.Table+" SET "+set.Column)
					break
				}
			}
		}
	}
	c.expr(x.Where, body)
}

func (c *checker) deleteStmt(x *sqlast.DeleteStmt, sc *scope) {
	cols, _ := c.dmlTarget(x.Table, x.VarTarget, false, x.Pos, sc)
	alias := x.Alias
	if alias == "" {
		alias = x.Table
	}
	body := newScope(sc)
	body.rows = append(body.rows, rowEntry{alias: fold(alias), cols: cols, opaque: cols == nil})
	c.expr(x.Where, body)
}

// dmlTarget resolves a DML target (table or collection variable) and
// returns its columns and their kinds (nil when unknown). insert
// reports whether the statement may target a collection variable
// without the TABLE keyword (the engine resolves UPDATE/DELETE targets
// through variables too, so variables are accepted for all three).
func (c *checker) dmlTarget(name string, varTarget, insert bool, pos sqlscan.Pos, sc *scope) ([]string, []types.Kind) {
	if v := sc.lookupVar(name); v != nil && v.collection {
		v.written = true
		v.read = true
		return v.rowCols, v.rowKinds
	}
	if varTarget {
		c.add(CodeUndeclaredVar, Error, pos,
			"variable %s is not declared", name)
		return nil, nil
	}
	if cols := c.cat.TableColumns(name); cols != nil {
		return cols, c.cat.TableColumnKinds(name)
	}
	if c.cat.IsTable(name) || c.cat.IsView(name) {
		return nil, nil
	}
	msg := "table %s does not exist"
	if !insert {
		msg = "table or view %s does not exist"
	}
	c.add(CodeUnknownTable, c.tableSev(), pos, msg, name)
	return nil, nil
}

func colIn(cols []string, name string) bool {
	for _, c := range cols {
		if equalFoldASCII(c, name) {
			return true
		}
	}
	return false
}

func equalFoldASCII(a, b string) bool { return fold(a) == fold(b) }
