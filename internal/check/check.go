package check

import (
	"fmt"
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/sqlscan"
	"taupsm/internal/types"
)

// checker carries the state of one analysis run.
type checker struct {
	cat       Catalog
	diags     []Diagnostic
	inRoutine bool        // analyzing a routine body (late binding: relax table/column severity)
	selfName  string      // routine being defined, lowercase ("" outside CheckRoutine)
	isFunc    bool        // the routine being defined is a function
	retKind   types.Kind  // declared scalar return kind (KindNull: unknown/procedure/collection)
	curPos    sqlscan.Pos // position of the statement being checked (expression-diagnostic anchor)
}

// Check analyzes one top-level statement against cat and returns its
// diagnostics sorted by position. CREATE FUNCTION/PROCEDURE statements
// get the full routine analysis (scopes, call graph, control flow,
// temporal applicability); queries and DML are checked for name
// resolution and temporal applicability directly.
func Check(cat Catalog, stmt sqlast.Stmt) []Diagnostic {
	c := &checker{cat: cat}
	c.top(stmt)
	sortDiags(c.diags)
	return c.diags
}

// CheckRoutine analyzes a routine definition. stmt must be a
// *sqlast.CreateFunctionStmt or *sqlast.CreateProcedureStmt.
func CheckRoutine(cat Catalog, stmt sqlast.Stmt) []Diagnostic {
	c := &checker{cat: cat}
	switch x := stmt.(type) {
	case *sqlast.CreateFunctionStmt:
		c.routine(x)
	case *sqlast.CreateProcedureStmt:
		c.routine(x)
	}
	sortDiags(c.diags)
	return c.diags
}

func (c *checker) add(code string, sev Severity, pos sqlscan.Pos, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{Code: code, Severity: sev, Pos: pos,
		Message: fmt.Sprintf(format, args...)})
}

func (c *checker) addHint(code string, sev Severity, pos sqlscan.Pos, hint, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{Code: code, Severity: sev, Pos: pos,
		Message: fmt.Sprintf(format, args...), Hint: hint})
}

// tableSev is the severity for unknown-table/column findings: errors
// at top level, warnings inside routine bodies, where name binding is
// late (a table may legitimately be created before the routine runs,
// even by the routine itself).
func (c *checker) tableSev() Severity {
	if c.inRoutine {
		return Warning
	}
	return Error
}

// top dispatches a top-level statement.
func (c *checker) top(stmt sqlast.Stmt) {
	switch x := stmt.(type) {
	case nil:
	case *sqlast.ExplainStmt:
		c.top(x.Body)
	case *sqlast.CreateFunctionStmt:
		c.routine(x)
	case *sqlast.CreateProcedureStmt:
		c.routine(x)
	case *sqlast.TemporalStmt:
		c.temporalStmt(x)
		c.foldPeriod(x)
		c.stmt(x.Body, newScope(nil), nil)
	case *sqlast.CreateViewStmt:
		c.query(x.Query, newScope(nil))
	case *sqlast.CreateTableStmt:
		if x.AsQuery != nil {
			c.query(x.AsQuery, newScope(nil))
		}
	case *sqlast.DropTableStmt, *sqlast.DropViewStmt, *sqlast.DropRoutineStmt,
		*sqlast.AlterAddValidTime, *sqlast.AnalyzeStmt,
		*sqlast.ShowProcessListStmt, *sqlast.KillStmt:
	default:
		c.timeColumnWrites(stmt, sqlast.ModCurrent)
		c.stmt(stmt, newScope(nil), nil)
	}
}

// routine analyzes one CREATE FUNCTION/PROCEDURE definition.
func (c *checker) routine(def sqlast.Stmt) {
	var (
		name   string
		params []sqlast.ParamDef
		body   sqlast.Stmt
		pos    sqlscan.Pos
	)
	switch x := def.(type) {
	case *sqlast.CreateFunctionStmt:
		name, params, body, pos = x.Name, x.Params, x.Body, x.Pos
		c.isFunc = true
		if !x.Returns.IsCollection() {
			c.retKind = x.Returns.Kind()
		}
		c.cat = withRoutine{Catalog: c.cat, name: x.Name, fn: x}
	case *sqlast.CreateProcedureStmt:
		name, params, body, pos = x.Name, x.Params, x.Body, x.Pos
		c.cat = withRoutine{Catalog: c.cat, name: x.Name, proc: x}
	default:
		return
	}
	c.inRoutine = true
	c.selfName = strings.ToLower(name)

	// Root scope: the parameter frame.
	sc := newScope(nil)
	for i := range params {
		p := &params[i]
		if sc.localVar(p.Name) != nil {
			c.add(CodeDuplicate, Warning, p.Pos, "duplicate parameter %s", p.Name)
			continue
		}
		v := &varInfo{
			name: fold(p.Name), display: p.Name, declPos: p.Pos,
			isParam: true, mode: p.Mode,
			collection: p.Type.IsCollection(),
			rowCols:    rowColNames(p.Type), rowKinds: rowColKinds(p.Type),
		}
		if !v.collection {
			v.kind = p.Type.Kind()
		}
		sc.vars = append(sc.vars, v)
	}
	c.stmt(body, sc, nil)

	if c.isFunc && !definitelyReturns(body) {
		c.add(CodeMissingRet, Warning, pos, "function %s may end without RETURN", name)
	}
	c.checkRecursion(name, body, pos)
	c.routineTemporal(body)
}

// rowColNames returns the field names of a ROW(...) ARRAY type, or nil.
func rowColNames(t sqlast.TypeName) []string {
	if !t.IsCollection() {
		return nil
	}
	out := make([]string, len(t.Row))
	for i, c := range t.Row {
		out[i] = c.Name
	}
	return out
}
