package check

import (
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/storage"
	"taupsm/internal/types"
)

// Catalog is the schema view the analyzer resolves names against.
// IsTable covers base tables only (matching the engine's effect
// inference, which treats only base-table DML as impure), while
// TableColumns answers for tables and views alike.
type Catalog interface {
	// IsTable reports whether name is a stored base table.
	IsTable(name string) bool
	// IsView reports whether name is a view.
	IsView(name string) bool
	// TableColumns returns the column names of a table or view, or
	// nil when the object is unknown or its columns cannot be
	// determined statically.
	TableColumns(name string) []string
	// TableColumnKinds returns the runtime value kinds of a table's
	// columns, parallel to TableColumns, or nil when the kinds cannot
	// be determined statically (unknown object, view, derived
	// columns). A KindNull entry marks a single column of unknown
	// type.
	TableColumnKinds(name string) []types.Kind
	// IsTemporalTable reports whether name is a table with temporal
	// (valid-time or transaction-time) support.
	IsTemporalTable(name string) bool
	// IsTransactionTable reports whether name is a transaction-time
	// (audit) table.
	IsTransactionTable(name string) bool
	// IsBitemporalTable reports whether name carries both valid-time
	// and transaction-time support.
	IsBitemporalTable(name string) bool
	// Function returns the definition of a stored function, or nil.
	Function(name string) *sqlast.CreateFunctionStmt
	// Procedure returns the definition of a stored procedure, or nil.
	Procedure(name string) *sqlast.CreateProcedureStmt
}

// storageCat adapts *storage.Catalog to the analyzer's Catalog.
type storageCat struct {
	c *storage.Catalog
}

// FromStorage wraps a live storage catalog for analysis.
func FromStorage(c *storage.Catalog) Catalog { return storageCat{c} }

func (s storageCat) IsTable(name string) bool { return s.c.Table(name) != nil }
func (s storageCat) IsView(name string) bool  { return s.c.View(name) != nil }

func (s storageCat) TableColumns(name string) []string {
	if t := s.c.Table(name); t != nil {
		return t.Schema.Names()
	}
	if v := s.c.View(name); v != nil {
		if len(v.Cols) > 0 {
			return v.Cols
		}
		return deriveQueryCols(v.Query)
	}
	return nil
}

func (s storageCat) TableColumnKinds(name string) []types.Kind {
	t := s.c.Table(name)
	if t == nil {
		return nil
	}
	kinds := make([]types.Kind, len(t.Schema.Cols))
	for i, c := range t.Schema.Cols {
		kinds[i] = c.Type.Kind()
	}
	return kinds
}

func (s storageCat) IsTemporalTable(name string) bool {
	t := s.c.Table(name)
	return t != nil && (t.ValidTime || t.TransactionTime)
}

func (s storageCat) IsTransactionTable(name string) bool {
	t := s.c.Table(name)
	return t != nil && t.TransactionTime
}

func (s storageCat) IsBitemporalTable(name string) bool {
	t := s.c.Table(name)
	return t != nil && t.ValidTime && t.TransactionTime
}

func (s storageCat) Function(name string) *sqlast.CreateFunctionStmt {
	if r := s.c.Routine(name); r != nil && r.Kind == storage.KindFunction {
		return r.Fn
	}
	return nil
}

func (s storageCat) Procedure(name string) *sqlast.CreateProcedureStmt {
	if r := s.c.Routine(name); r != nil && r.Kind == storage.KindProcedure {
		return r.Proc
	}
	return nil
}

// scriptTable is a table definition accumulated by ScriptCatalog.
type scriptTable struct {
	cols      []string     // nil when not statically derivable
	kinds     []types.Kind // parallel to cols; nil when types are unknown
	validTime bool
	transTime bool
}

// ScriptCatalog is a shadow catalog built by applying a script's DDL
// in order without executing it. `taupsm vet` uses it to check each
// statement against the schema the preceding statements would have
// created. An optional base catalog (e.g. a live database) answers
// lookups the script itself does not define.
type ScriptCatalog struct {
	base    Catalog
	tables  map[string]*scriptTable
	views   map[string][]string
	fns     map[string]*sqlast.CreateFunctionStmt
	procs   map[string]*sqlast.CreateProcedureStmt
	dropped map[string]bool // objects dropped by the script
}

// NewScriptCatalog creates an empty shadow catalog layered over base
// (which may be nil).
func NewScriptCatalog(base Catalog) *ScriptCatalog {
	return &ScriptCatalog{
		base:    base,
		tables:  make(map[string]*scriptTable),
		views:   make(map[string][]string),
		fns:     make(map[string]*sqlast.CreateFunctionStmt),
		procs:   make(map[string]*sqlast.CreateProcedureStmt),
		dropped: make(map[string]bool),
	}
}

func fold(name string) string { return strings.ToLower(name) }

// Apply records the schema effect of one statement (DDL only; all
// other statements are no-ops).
func (s *ScriptCatalog) Apply(stmt sqlast.Stmt) {
	switch x := stmt.(type) {
	case *sqlast.CreateTableStmt:
		t := &scriptTable{validTime: x.ValidTime, transTime: x.TransactionTime}
		if len(x.Cols) > 0 {
			for _, c := range x.Cols {
				t.cols = append(t.cols, c.Name)
				t.kinds = append(t.kinds, c.Type.Kind())
			}
		} else if x.AsQuery != nil {
			t.cols = deriveQueryCols(x.AsQuery)
		}
		if t.cols != nil && (x.ValidTime || x.TransactionTime) {
			t.cols = append(t.cols, "begin_time", "end_time")
			if t.kinds != nil {
				t.kinds = append(t.kinds, types.KindDate, types.KindDate)
			}
			if x.ValidTime && x.TransactionTime {
				t.cols = append(t.cols, "tt_begin_time", "tt_end_time")
				if t.kinds != nil {
					t.kinds = append(t.kinds, types.KindDate, types.KindDate)
				}
			}
		}
		s.tables[fold(x.Name)] = t
		delete(s.dropped, fold(x.Name))
	case *sqlast.DropTableStmt:
		delete(s.tables, fold(x.Name))
		s.dropped[fold(x.Name)] = true
	case *sqlast.CreateViewStmt:
		cols := x.Cols
		if cols == nil {
			cols = deriveQueryCols(x.Query)
		}
		s.views[fold(x.Name)] = cols
		delete(s.dropped, fold(x.Name))
	case *sqlast.DropViewStmt:
		delete(s.views, fold(x.Name))
		s.dropped[fold(x.Name)] = true
	case *sqlast.AlterAddValidTime:
		t := s.tables[fold(x.Table)]
		if t == nil {
			if s.base != nil && s.base.IsTable(x.Table) {
				t = &scriptTable{cols: s.base.TableColumns(x.Table), kinds: s.base.TableColumnKinds(x.Table)}
				s.tables[fold(x.Table)] = t
			} else {
				return
			}
		}
		if t.validTime && x.Transaction && !t.transTime {
			// Valid-time → bitemporal migration: append the
			// transaction-time pair (mirrors engine.execAddValidTime).
			t.transTime = true
			if t.cols != nil {
				t.cols = append(t.cols, "tt_begin_time", "tt_end_time")
				if t.kinds != nil {
					t.kinds = append(t.kinds, types.KindDate, types.KindDate)
				}
			}
			return
		}
		already := t.validTime || t.transTime
		if x.Transaction {
			t.transTime = true
		} else {
			t.validTime = true
		}
		if t.cols != nil && !already {
			t.cols = append(t.cols, "begin_time", "end_time")
			if t.kinds != nil {
				t.kinds = append(t.kinds, types.KindDate, types.KindDate)
			}
		}
	case *sqlast.CreateFunctionStmt:
		s.fns[fold(x.Name)] = x
		delete(s.procs, fold(x.Name))
		delete(s.dropped, fold(x.Name))
	case *sqlast.CreateProcedureStmt:
		s.procs[fold(x.Name)] = x
		delete(s.fns, fold(x.Name))
		delete(s.dropped, fold(x.Name))
	case *sqlast.DropRoutineStmt:
		delete(s.fns, fold(x.Name))
		delete(s.procs, fold(x.Name))
		s.dropped[fold(x.Name)] = true
	case *sqlast.TemporalStmt:
		s.Apply(x.Body)
	}
}

func (s *ScriptCatalog) IsTable(name string) bool {
	if _, ok := s.tables[fold(name)]; ok {
		return true
	}
	return !s.dropped[fold(name)] && s.base != nil && s.base.IsTable(name)
}

func (s *ScriptCatalog) IsView(name string) bool {
	if _, ok := s.views[fold(name)]; ok {
		return true
	}
	return !s.dropped[fold(name)] && s.base != nil && s.base.IsView(name)
}

func (s *ScriptCatalog) TableColumns(name string) []string {
	if t, ok := s.tables[fold(name)]; ok {
		return t.cols
	}
	if v, ok := s.views[fold(name)]; ok {
		return v
	}
	if !s.dropped[fold(name)] && s.base != nil {
		return s.base.TableColumns(name)
	}
	return nil
}

func (s *ScriptCatalog) TableColumnKinds(name string) []types.Kind {
	if t, ok := s.tables[fold(name)]; ok {
		return t.kinds
	}
	if _, ok := s.views[fold(name)]; ok {
		return nil
	}
	if !s.dropped[fold(name)] && s.base != nil {
		return s.base.TableColumnKinds(name)
	}
	return nil
}

func (s *ScriptCatalog) IsTemporalTable(name string) bool {
	if t, ok := s.tables[fold(name)]; ok {
		return t.validTime || t.transTime
	}
	return !s.dropped[fold(name)] && s.base != nil && s.base.IsTemporalTable(name)
}

func (s *ScriptCatalog) IsTransactionTable(name string) bool {
	if t, ok := s.tables[fold(name)]; ok {
		return t.transTime
	}
	return !s.dropped[fold(name)] && s.base != nil && s.base.IsTransactionTable(name)
}

func (s *ScriptCatalog) IsBitemporalTable(name string) bool {
	if t, ok := s.tables[fold(name)]; ok {
		return t.validTime && t.transTime
	}
	return !s.dropped[fold(name)] && s.base != nil && s.base.IsBitemporalTable(name)
}

func (s *ScriptCatalog) Function(name string) *sqlast.CreateFunctionStmt {
	if f, ok := s.fns[fold(name)]; ok {
		return f
	}
	if _, ok := s.procs[fold(name)]; ok {
		return nil
	}
	if !s.dropped[fold(name)] && s.base != nil {
		return s.base.Function(name)
	}
	return nil
}

func (s *ScriptCatalog) Procedure(name string) *sqlast.CreateProcedureStmt {
	if p, ok := s.procs[fold(name)]; ok {
		return p
	}
	if _, ok := s.fns[fold(name)]; ok {
		return nil
	}
	if !s.dropped[fold(name)] && s.base != nil {
		return s.base.Procedure(name)
	}
	return nil
}

// withRoutine overlays the routine currently being defined onto a
// catalog, so self-recursive definitions resolve at CREATE time.
type withRoutine struct {
	Catalog
	name string
	fn   *sqlast.CreateFunctionStmt
	proc *sqlast.CreateProcedureStmt
}

func (w withRoutine) Function(name string) *sqlast.CreateFunctionStmt {
	if strings.EqualFold(name, w.name) {
		return w.fn
	}
	return w.Catalog.Function(name)
}

func (w withRoutine) Procedure(name string) *sqlast.CreateProcedureStmt {
	if strings.EqualFold(name, w.name) {
		return w.proc
	}
	return w.Catalog.Procedure(name)
}

// deriveQueryCols statically determines a query's output column names,
// or nil when any column is not statically nameable (stars, unaliased
// expressions, temporal wrappers).
func deriveQueryCols(q sqlast.QueryExpr) []string {
	switch x := q.(type) {
	case *sqlast.SelectStmt:
		var out []string
		for _, it := range x.Items {
			switch {
			case it.Star, it.TableStar != "":
				return nil
			case it.Alias != "":
				out = append(out, it.Alias)
			default:
				cr, ok := it.Expr.(*sqlast.ColumnRef)
				if !ok {
					return nil
				}
				out = append(out, cr.Column)
			}
		}
		return out
	case *sqlast.SetOpExpr:
		return deriveQueryCols(x.L)
	}
	return nil
}
