package check

import (
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/sqlscan"
	"taupsm/internal/types"
)

// varInfo tracks one declared variable or parameter.
type varInfo struct {
	name       string // folded
	display    string
	declPos    sqlscan.Pos
	isParam    bool
	mode       sqlast.ParamMode
	collection bool
	kind       types.Kind   // declared scalar kind; KindNull when unknown
	rowCols    []string     // ROW field names for collection types
	rowKinds   []types.Kind // ROW field kinds, parallel to rowCols
	read       bool
	written    bool
	warnedUse  bool // use-before-declare already reported
}

// cursorInfo tracks one declared cursor.
type cursorInfo struct {
	name    string // folded
	display string
	declPos sqlscan.Pos
	query   sqlast.Stmt
	used    bool
}

// rowEntry is one FROM-clause binding (or loop-variable binding)
// visible to column references.
type rowEntry struct {
	alias  string       // folded, "" when the source has no name
	cols   []string     // output columns; nil when unknown
	kinds  []types.Kind // column kinds, parallel to cols; nil when unknown
	opaque bool         // columns not statically known
}

// kindOf returns the statically-known kind of the named column, or
// KindNull when the entry's kinds are unknown or the column is absent.
func (r *rowEntry) kindOf(name string) types.Kind {
	if r.kinds == nil {
		return types.KindNull
	}
	for i, c := range r.cols {
		if i < len(r.kinds) && strings.EqualFold(c, name) {
			return r.kinds[i]
		}
	}
	return types.KindNull
}

func (r *rowEntry) hasCol(name string) bool {
	if r.opaque {
		return true
	}
	for _, c := range r.cols {
		if strings.EqualFold(c, name) {
			return true
		}
	}
	return false
}

// scope is one lexical frame: a routine's parameter frame, a BEGIN/END
// block, or a query's FROM bindings. Frames chain outward.
type scope struct {
	parent  *scope
	vars    []*varInfo
	cursors []*cursorInfo
	rows    []rowEntry
}

func newScope(parent *scope) *scope { return &scope{parent: parent} }

func (s *scope) localVar(name string) *varInfo {
	f := fold(name)
	for _, v := range s.vars {
		if v.name == f {
			return v
		}
	}
	return nil
}

func (s *scope) lookupVar(name string) *varInfo {
	for sc := s; sc != nil; sc = sc.parent {
		if v := sc.localVar(name); v != nil {
			return v
		}
	}
	return nil
}

func (s *scope) localCursor(name string) *cursorInfo {
	f := fold(name)
	for _, c := range s.cursors {
		if c.name == f {
			return c
		}
	}
	return nil
}

func (s *scope) lookupCursor(name string) *cursorInfo {
	for sc := s; sc != nil; sc = sc.parent {
		if c := sc.localCursor(name); c != nil {
			return c
		}
	}
	return nil
}

// anyOpaque reports whether any visible FROM binding has statically
// unknown columns, in which case unresolved names must not be reported
// (they may well be columns of that binding).
func (s *scope) anyOpaque() bool {
	for sc := s; sc != nil; sc = sc.parent {
		for i := range sc.rows {
			if sc.rows[i].opaque {
				return true
			}
		}
	}
	return false
}

// aliasEntry finds the FROM binding with the given alias.
func (s *scope) aliasEntry(alias string) *rowEntry {
	f := fold(alias)
	for sc := s; sc != nil; sc = sc.parent {
		for i := range sc.rows {
			if sc.rows[i].alias == f {
				return &sc.rows[i]
			}
		}
	}
	return nil
}

// posBefore reports a < b in source order (both nonzero).
func posBefore(a, b sqlscan.Pos) bool {
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col < b.Col
}

// markRead records a read of v, reporting use-before-declare once.
func (c *checker) markRead(v *varInfo, use sqlscan.Pos) {
	v.read = true
	c.useBeforeDecl(v, use)
}

func (c *checker) useBeforeDecl(v *varInfo, use sqlscan.Pos) {
	if v.warnedUse || v.isParam {
		return
	}
	zero := sqlscan.Pos{}
	if use == zero || v.declPos == zero || !posBefore(use, v.declPos) {
		return
	}
	v.warnedUse = true
	c.add(CodeUseBeforeDec, Warning, use,
		"%s is used before its declaration at %s (declarations are hoisted, but this is fragile)",
		v.display, v.declPos)
}

// ---------- Expressions ----------

func (c *checker) expr(e sqlast.Expr, sc *scope) {
	switch x := e.(type) {
	case nil, *sqlast.Literal:
	case *sqlast.ColumnRef:
		c.columnRef(x, sc)
	case *sqlast.BinaryExpr:
		c.expr(x.L, sc)
		c.expr(x.R, sc)
		c.checkBinary(x, sc)
	case *sqlast.UnaryExpr:
		c.expr(x.X, sc)
		c.checkUnary(x, sc)
	case *sqlast.IsNullExpr:
		c.expr(x.X, sc)
	case *sqlast.BetweenExpr:
		c.expr(x.X, sc)
		c.expr(x.Lo, sc)
		c.expr(x.Hi, sc)
	case *sqlast.InExpr:
		c.expr(x.X, sc)
		for _, it := range x.List {
			c.expr(it, sc)
		}
		if x.Sub != nil {
			c.query(x.Sub, sc)
		}
	case *sqlast.ExistsExpr:
		c.query(x.Sub, sc)
	case *sqlast.LikeExpr:
		c.expr(x.X, sc)
		c.expr(x.Pattern, sc)
	case *sqlast.CaseExpr:
		c.expr(x.Operand, sc)
		for _, w := range x.Whens {
			c.expr(w.When, sc)
			c.expr(w.Then, sc)
		}
		c.expr(x.Else, sc)
	case *sqlast.CastExpr:
		c.expr(x.X, sc)
	case *sqlast.FuncCall:
		c.funcCall(x, sc)
	case *sqlast.SubqueryExpr:
		c.query(x.Query, sc)
	}
}

// columnRef resolves a name the way the engine does: FROM bindings
// first (SQL scoping), then variables.
func (c *checker) columnRef(x *sqlast.ColumnRef, sc *scope) {
	if x.Table != "" {
		if e := sc.aliasEntry(x.Table); e != nil {
			if !e.hasCol(x.Column) {
				c.add(CodeUnknownColumn, c.tableSev(), x.Pos,
					"column %s.%s does not exist", x.Table, x.Column)
			}
			return
		}
		if !sc.anyOpaque() {
			c.add(CodeUnknownColumn, c.tableSev(), x.Pos,
				"column %s.%s not found", x.Table, x.Column)
		}
		return
	}
	// Bare name: any FROM binding providing the column wins.
	for s := sc; s != nil; s = s.parent {
		for i := range s.rows {
			if s.rows[i].hasCol(x.Column) {
				return
			}
		}
	}
	if v := sc.lookupVar(x.Column); v != nil {
		c.markRead(v, x.Pos)
		return
	}
	if sc.anyOpaque() {
		return
	}
	c.addHint(CodeUndeclaredVar, Error, x.Pos,
		"declare the variable with DECLARE, or check the column name",
		"name %s is neither a column in scope nor a variable", x.Column)
}

// builtinArity maps builtin function names to {min,max} argument
// counts (max -1 = unbounded), mirroring internal/engine/builtins.go.
var builtinArity = map[string][2]int{
	"CURRENT_DATE": {0, 0}, "CURRENT_TIME": {0, 0}, "CURRENT_TIMESTAMP": {0, 0},
	"FIRST_INSTANCE": {2, 2}, "LAST_INSTANCE": {2, 2},
	"UPPER": {1, 1}, "UCASE": {1, 1}, "LOWER": {1, 1}, "LCASE": {1, 1},
	"LENGTH": {1, 1}, "CHAR_LENGTH": {1, 1}, "CHARACTER_LENGTH": {1, 1},
	"TRIM": {1, 1}, "SUBSTR": {2, 3}, "SUBSTRING": {2, 3},
	"ABS": {1, 1}, "MOD": {2, 2}, "COALESCE": {1, -1}, "NULLIF": {2, 2},
	"YEAR": {1, 1}, "MONTH": {1, 1}, "DAY": {1, 1}, "DATE": {1, 1},
}

// aggregateNames are evaluated by the grouping machinery, not the
// scalar builtin dispatcher; context (HAVING vs WHERE) is not modeled.
var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

func (c *checker) funcCall(x *sqlast.FuncCall, sc *scope) {
	for _, a := range x.Args {
		c.expr(a, sc)
	}
	if fn := c.cat.Function(x.Name); fn != nil {
		if len(x.Args) != len(fn.Params) {
			c.add(CodeBadArity, Error, x.Pos,
				"function %s expects %d arguments, got %d",
				x.Name, len(fn.Params), len(x.Args))
			return
		}
		c.checkArgs(x.Name, fn.Params, x.Args, sc, x.Pos)
		return
	}
	if c.cat.Procedure(x.Name) != nil {
		c.addHint(CodeKindMismatch, Error, x.Pos,
			"use CALL "+x.Name+"(...) as a statement",
			"%s is a procedure; it cannot be invoked in an expression", x.Name)
		return
	}
	upper := strings.ToUpper(x.Name)
	if aggregateNames[upper] {
		return
	}
	if ar, ok := builtinArity[upper]; ok {
		n := len(x.Args)
		if n < ar[0] || (ar[1] >= 0 && n > ar[1]) {
			want := ar[0]
			c.add(CodeBadArity, Error, x.Pos,
				"%s expects %d argument(s), got %d", upper, want, n)
		}
		return
	}
	c.add(CodeUnknownRoutine, Error, x.Pos, "unknown function %s", x.Name)
}

// ---------- Queries and FROM resolution ----------

func (c *checker) query(q sqlast.QueryExpr, parent *scope) {
	switch x := q.(type) {
	case nil:
	case *sqlast.SelectStmt:
		c.selectStmt(x, parent)
	case *sqlast.SetOpExpr:
		c.query(x.L, parent)
		c.query(x.R, parent)
		// ORDER BY on a set operation addresses output columns or
		// ordinals; no scope to check against.
	case *sqlast.ValuesExpr:
		for _, row := range x.Rows {
			for _, e := range row {
				c.expr(e, parent)
			}
		}
	}
}

func (c *checker) selectStmt(s *sqlast.SelectStmt, parent *scope) {
	sc := newScope(parent)
	for _, ref := range s.From {
		c.fromRef(ref, sc)
	}
	for _, it := range s.Items {
		switch {
		case it.Star:
		case it.TableStar != "":
			if sc.aliasEntry(it.TableStar) == nil && !sc.anyOpaque() {
				c.add(CodeUnknownColumn, c.tableSev(), s.Pos,
					"column %s.* not found", it.TableStar)
			}
		default:
			c.expr(it.Expr, sc)
		}
	}
	// Select-list aliases are referable from GROUP BY / ORDER BY;
	// expose them as an extra unnamed binding.
	var aliases []string
	for _, it := range s.Items {
		if it.Alias != "" {
			aliases = append(aliases, it.Alias)
		}
	}
	if len(aliases) > 0 {
		sc.rows = append(sc.rows, rowEntry{cols: aliases})
	}
	c.expr(s.Where, sc)
	c.condition(s.Where, s.Pos, sc)
	for _, g := range s.GroupBy {
		c.expr(g, sc)
	}
	c.expr(s.Having, sc)
	c.condition(s.Having, s.Pos, sc)
	for _, o := range s.OrderBy {
		c.expr(o.Expr, sc)
	}
	c.expr(s.Limit, sc)
}

// fromRef resolves one FROM element, appending its bindings to sc.
// Join conditions are checked after both sides are bound.
func (c *checker) fromRef(ref sqlast.TableRef, sc *scope) {
	switch x := ref.(type) {
	case *sqlast.BaseTable:
		alias := x.Alias
		if alias == "" {
			alias = x.Name
		}
		// A collection-typed variable is a legal row source.
		if v := sc.lookupVar(x.Name); v != nil && v.collection {
			c.markRead(v, x.Pos)
			sc.rows = append(sc.rows, rowEntry{alias: fold(alias),
				cols: v.rowCols, kinds: v.rowKinds, opaque: v.rowCols == nil})
			return
		}
		if cols := c.cat.TableColumns(x.Name); cols != nil {
			sc.rows = append(sc.rows, rowEntry{alias: fold(alias), cols: cols,
				kinds: c.cat.TableColumnKinds(x.Name)})
			return
		}
		if c.cat.IsTable(x.Name) || c.cat.IsView(x.Name) {
			sc.rows = append(sc.rows, rowEntry{alias: fold(alias), opaque: true})
			return
		}
		c.add(CodeUnknownTable, c.tableSev(), x.Pos,
			"table or view %s does not exist", x.Name)
		sc.rows = append(sc.rows, rowEntry{alias: fold(alias), opaque: true})
	case *sqlast.DerivedTable:
		c.query(x.Query, sc.parent)
		cols := x.Cols
		if cols == nil {
			cols = deriveQueryCols(x.Query)
		}
		sc.rows = append(sc.rows, rowEntry{alias: fold(x.Alias),
			cols: cols, opaque: cols == nil})
	case *sqlast.TableFunc:
		c.expr(x.Call, sc)
		cols := x.Cols
		var kinds []types.Kind
		if cols == nil {
			if fn := c.cat.Function(x.Call.Name); fn != nil && fn.Returns.IsCollection() {
				cols = rowColNames(fn.Returns)
				kinds = rowColKinds(fn.Returns)
			}
		}
		sc.rows = append(sc.rows, rowEntry{alias: fold(x.Alias),
			cols: cols, kinds: kinds, opaque: cols == nil})
	case *sqlast.JoinExpr:
		c.fromRef(x.L, sc)
		c.fromRef(x.R, sc)
		c.expr(x.On, sc)
	}
}

// queryScope builds the row binding a FOR loop or cursor produces.
func loopEntry(alias string, q sqlast.Stmt) rowEntry {
	cols := cursorCols(q)
	return rowEntry{alias: fold(alias), cols: cols, opaque: cols == nil}
}

// cursorCols derives the output columns of a cursor/loop query, or nil
// when unknown (temporal wrappers append period columns at run time,
// so their shape is left opaque).
func cursorCols(q sqlast.Stmt) []string {
	switch x := q.(type) {
	case *sqlast.TemporalStmt:
		return nil
	case sqlast.QueryExpr:
		return deriveQueryCols(x)
	}
	return nil
}
