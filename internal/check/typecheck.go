package check

import (
	"fmt"
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/sqlscan"
	"taupsm/internal/types"
)

// Typed IR: static expression typing for Temporal SQL/PSM.
//
// The checker infers a runtime value kind for every expression it can
// and compares the inference against the engine's actual runtime
// behaviour — types.Arith/Compare/TriboolFromValue for evaluation and
// the engine's assignment coercions for SET/INSERT/RETURN/arguments.
// The inference is deliberately conservative: types.KindNull stands
// for "statically unknown" and unknown kinds never produce a
// diagnostic, so opaque schemas, scalar subqueries, and dynamic SQL
// stay silent.
//
// Severity calibration mirrors the engine. Constructs the engine
// rejects deterministically whenever the expression is evaluated
// (DATE+DATE, string arithmetic, division by a constant zero) are
// errors; constructs it executes but that cannot mean what was written
// (incomparable comparisons that are always UNKNOWN, conditions of a
// kind that is never TRUE, silently-coerced assignment mismatches) are
// warnings.

// inferKind returns the statically-known runtime kind of e, or
// types.KindNull when it cannot be determined.
func (c *checker) inferKind(e sqlast.Expr, sc *scope) types.Kind {
	switch x := e.(type) {
	case *sqlast.Literal:
		return x.Val.Kind
	case *sqlast.ColumnRef:
		return c.refKind(x, sc)
	case *sqlast.BinaryExpr:
		switch x.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=":
			return types.KindBool
		case "||":
			return types.KindString
		}
		return staticArith(x.Op, c.inferKind(x.L, sc), c.inferKind(x.R, sc))
	case *sqlast.UnaryExpr:
		if x.Op == "NOT" {
			return types.KindBool
		}
		if k := c.inferKind(x.X, sc); k == types.KindInt || k == types.KindFloat {
			return k
		}
		return types.KindNull
	case *sqlast.IsNullExpr, *sqlast.BetweenExpr, *sqlast.InExpr,
		*sqlast.ExistsExpr, *sqlast.LikeExpr:
		return types.KindBool
	case *sqlast.CaseExpr:
		k := types.KindNull
		for _, w := range x.Whens {
			k = mergeKind(k, c.inferKind(w.Then, sc))
		}
		if x.Else != nil {
			k = mergeKind(k, c.inferKind(x.Else, sc))
		}
		return k
	case *sqlast.CastExpr:
		if x.Type.IsCollection() {
			return types.KindNull
		}
		return x.Type.Kind()
	case *sqlast.FuncCall:
		return c.callKind(x, sc)
	}
	return types.KindNull
}

// refKind resolves a column reference's kind the way columnRef
// resolves its name: FROM bindings first, then variables.
func (c *checker) refKind(x *sqlast.ColumnRef, sc *scope) types.Kind {
	if x.Table != "" {
		if e := sc.aliasEntry(x.Table); e != nil {
			return e.kindOf(x.Column)
		}
		return types.KindNull
	}
	for s := sc; s != nil; s = s.parent {
		for i := range s.rows {
			if s.rows[i].hasCol(x.Column) {
				return s.rows[i].kindOf(x.Column)
			}
		}
	}
	if v := sc.lookupVar(x.Column); v != nil && !v.collection {
		return v.kind
	}
	return types.KindNull
}

// callKind infers a function call's result kind: stored functions from
// their declared return type, builtins from their documented result.
func (c *checker) callKind(x *sqlast.FuncCall, sc *scope) types.Kind {
	if fn := c.cat.Function(x.Name); fn != nil {
		if fn.Returns.IsCollection() {
			return types.KindTable
		}
		return fn.Returns.Kind()
	}
	upper := strings.ToUpper(x.Name)
	if aggregateNames[upper] {
		switch upper {
		case "COUNT":
			return types.KindInt
		case "MIN", "MAX":
			if len(x.Args) == 1 {
				return c.inferKind(x.Args[0], sc)
			}
		}
		return types.KindNull
	}
	switch upper {
	case "CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP",
		"FIRST_INSTANCE", "LAST_INSTANCE", "DATE":
		return types.KindDate
	case "UPPER", "UCASE", "LOWER", "LCASE", "TRIM", "SUBSTR", "SUBSTRING":
		return types.KindString
	case "LENGTH", "CHAR_LENGTH", "CHARACTER_LENGTH", "MOD", "YEAR", "MONTH", "DAY":
		return types.KindInt
	case "ABS", "NULLIF":
		if len(x.Args) >= 1 {
			return c.inferKind(x.Args[0], sc)
		}
	}
	return types.KindNull
}

// mergeKind folds branch kinds: the common kind when they agree,
// unknown otherwise. NULL-typed branches (NULL literals) are neutral.
func mergeKind(a, b types.Kind) types.Kind {
	switch {
	case a == types.KindNull:
		return b
	case b == types.KindNull || a == b:
		return a
	}
	return types.KindNull
}

// staticArith mirrors types.Arith over kinds: the result kind when the
// operation is well-typed, KindNull when unknown or ill-typed (the
// ill-typed cases are diagnosed separately by checkBinary).
func staticArith(op string, l, r types.Kind) types.Kind {
	if l == types.KindNull || r == types.KindNull {
		return types.KindNull
	}
	if l == types.KindDate || r == types.KindDate {
		switch {
		case l == types.KindDate && r == types.KindDate:
			if op == "-" {
				return types.KindInt
			}
		case l == types.KindDate && (r == types.KindInt || r == types.KindBool):
			if op == "+" || op == "-" {
				return types.KindDate
			}
		case r == types.KindDate && (l == types.KindInt || l == types.KindBool):
			if op == "+" {
				return types.KindDate
			}
		}
		return types.KindNull
	}
	if l == types.KindString || r == types.KindString {
		return types.KindNull // rejected at run time (diagnosed by checkBinary)
	}
	if l == types.KindFloat || r == types.KindFloat {
		return types.KindFloat
	}
	return types.KindInt
}

// exprPos finds a position to anchor an expression diagnostic on: the
// first positioned node inside e, else the checker's current statement.
func (c *checker) exprPos(e sqlast.Expr) sqlscan.Pos {
	if p := findExprPos(e); p != (sqlscan.Pos{}) {
		return p
	}
	return c.curPos
}

func findExprPos(e sqlast.Expr) sqlscan.Pos {
	switch x := e.(type) {
	case *sqlast.ColumnRef:
		return x.Pos
	case *sqlast.FuncCall:
		return x.Pos
	case *sqlast.BinaryExpr:
		if p := findExprPos(x.L); p != (sqlscan.Pos{}) {
			return p
		}
		return findExprPos(x.R)
	case *sqlast.UnaryExpr:
		return findExprPos(x.X)
	case *sqlast.IsNullExpr:
		return findExprPos(x.X)
	case *sqlast.BetweenExpr:
		return findExprPos(x.X)
	case *sqlast.InExpr:
		return findExprPos(x.X)
	case *sqlast.LikeExpr:
		return findExprPos(x.X)
	case *sqlast.CastExpr:
		return findExprPos(x.X)
	case *sqlast.CaseExpr:
		if p := findExprPos(x.Operand); p != (sqlscan.Pos{}) {
			return p
		}
		for _, w := range x.Whens {
			if p := findExprPos(w.When); p != (sqlscan.Pos{}) {
				return p
			}
			if p := findExprPos(w.Then); p != (sqlscan.Pos{}) {
				return p
			}
		}
		return findExprPos(x.Else)
	case *sqlast.SubqueryExpr:
		if sel, ok := x.Query.(*sqlast.SelectStmt); ok {
			return sel.Pos
		}
	}
	return sqlscan.Pos{}
}

// checkBinary types one binary operation against the engine's runtime
// rules.
func (c *checker) checkBinary(x *sqlast.BinaryExpr, sc *scope) {
	switch x.Op {
	case "AND", "OR", "||":
		return
	case "=", "<>", "<", "<=", ">", ">=":
		l, r := c.inferKind(x.L, sc), c.inferKind(x.R, sc)
		if l == types.KindNull || r == types.KindNull {
			return
		}
		// The only statically-decidable incomparable pairing is string
		// against numeric (string↔date depends on the string's content).
		if (l == types.KindString && isNumeric(r)) || (isNumeric(l) && r == types.KindString) {
			c.add(CodeIncomparable, Warning, c.exprPos(x),
				"comparison of %s and %s is always UNKNOWN", l, r)
		}
		return
	case "+", "-", "*", "/":
		if x.Op == "/" {
			if v, ok := foldConst(x.R); ok && !v.IsNull() && isNumeric(v.Kind) && v.Float() == 0 {
				c.add(CodeConstDivZero, Error, c.exprPos(x), "division by zero")
				return
			}
		}
		l, r := c.inferKind(x.L, sc), c.inferKind(x.R, sc)
		if l == types.KindNull || r == types.KindNull {
			return
		}
		if l == types.KindDate || r == types.KindDate {
			if staticArith(x.Op, l, r) == types.KindNull {
				c.add(CodeBadArith, Error, c.exprPos(x),
					"cannot apply %s to %s and %s", x.Op, l, r)
			}
			return
		}
		if l == types.KindString || r == types.KindString {
			c.add(CodeBadArith, Error, c.exprPos(x),
				"cannot apply %s to %s and %s (use || for concatenation)", x.Op, l, r)
		}
	}
}

// checkUnary types a unary operation: negating a string or date is
// rejected by the engine (it evaluates -x as 0 - x).
func (c *checker) checkUnary(x *sqlast.UnaryExpr, sc *scope) {
	if x.Op != "-" {
		return
	}
	if k := c.inferKind(x.X, sc); k == types.KindString || k == types.KindDate {
		c.add(CodeBadArith, Error, c.exprPos(x), "cannot negate a %s value", k)
	}
}

func isNumeric(k types.Kind) bool {
	return k == types.KindInt || k == types.KindFloat || k == types.KindBool
}

// condition checks a predicate position (IF/WHILE/UNTIL/WHERE/HAVING):
// the engine's TriboolFromValue treats only TRUE booleans and nonzero
// integers as TRUE, so a condition statically known to be a string,
// date, or float can never pass.
func (c *checker) condition(e sqlast.Expr, pos sqlscan.Pos, sc *scope) {
	if e == nil {
		return
	}
	switch k := c.inferKind(e, sc); k {
	case types.KindString, types.KindDate, types.KindFloat:
		if p := findExprPos(e); p != (sqlscan.Pos{}) {
			pos = p
		}
		c.add(CodeNonBoolCond, Warning, pos,
			"condition has type %s and can never be TRUE", k)
	}
}

// assignable reports whether a value of kind val may be assigned to a
// target of kind tgt without the engine's coercion losing the declared
// type: exact matches, the numeric kinds among themselves, any value
// into a string target (rendered via Text), and strings or integers
// into a date target (the engine parses/shifts them).
func assignable(tgt, val types.Kind) bool {
	if tgt == types.KindNull || val == types.KindNull || tgt == val {
		return true
	}
	switch tgt {
	case types.KindString:
		return true
	case types.KindDate:
		return val == types.KindString || val == types.KindInt
	case types.KindInt, types.KindFloat, types.KindBool:
		return isNumeric(val)
	}
	return false
}

// checkAssign reports an assignment-shaped type mismatch (SET,
// DECLARE ... DEFAULT, RETURN, arguments, INSERT/UPDATE values). A
// string literal assigned to a DATE target is additionally parsed: the
// engine's coercion raises a runtime error for a malformed literal, so
// that case is an error rather than a warning.
func (c *checker) checkAssign(code string, tgt types.Kind, e sqlast.Expr, sc *scope, pos sqlscan.Pos, what string) {
	if e == nil || tgt == types.KindNull {
		return
	}
	val := c.inferKind(e, sc)
	if val == types.KindNull {
		return
	}
	if tgt == types.KindDate && val == types.KindString {
		if lit, ok := e.(*sqlast.Literal); ok && lit.Val.Kind == types.KindString {
			if _, err := types.ParseDate(strings.TrimSpace(lit.Val.S)); err != nil {
				c.add(code, Error, pos, "%s: string %q is not a valid DATE", what, lit.Val.S)
			}
		}
		return
	}
	if !assignable(tgt, val) {
		c.add(code, Warning, pos, "%s: %s value where %s is expected", what, val, tgt)
	}
}

// rowColKinds returns the field kinds of a ROW(...) ARRAY type,
// parallel to rowColNames.
func rowColKinds(t sqlast.TypeName) []types.Kind {
	if !t.IsCollection() {
		return nil
	}
	out := make([]types.Kind, len(t.Row))
	for i, c := range t.Row {
		out[i] = c.Type.Kind()
	}
	return out
}

// checkArgs types a routine invocation's arguments against the
// callee's declared parameter types (IN parameters only; OUT/INOUT
// binding is checked by callStmt).
func (c *checker) checkArgs(name string, params []sqlast.ParamDef, args []sqlast.Expr, sc *scope, pos sqlscan.Pos) {
	if len(args) != len(params) {
		return
	}
	for i, a := range args {
		p := params[i]
		if p.Mode != sqlast.ModeIn || p.Type.IsCollection() {
			continue
		}
		apos := findExprPos(a)
		if apos == (sqlscan.Pos{}) {
			apos = pos
		}
		c.checkAssign(CodeArgMismatch, p.Type.Kind(), a, sc, apos,
			fmt.Sprintf("argument %d of %s (parameter %s)", i+1, name, p.Name))
	}
}

// insertShape checks an INSERT's arity and value kinds against the
// target's columns. Temporal targets accept rows with or without the
// trailing begin_time/end_time pair — the stratum's current-semantics
// transform supplies the period when the user omits it.
func (c *checker) insertShape(x *sqlast.InsertStmt, cols []string, kinds []types.Kind, sc *scope) {
	if cols == nil {
		return
	}
	targetCols := cols
	targetKinds := kinds
	if len(x.Cols) > 0 {
		targetCols = x.Cols
		targetKinds = nil
		if kinds != nil {
			targetKinds = make([]types.Kind, len(x.Cols))
			for i, name := range x.Cols {
				targetKinds[i] = types.KindNull
				for j, cn := range cols {
					if j < len(kinds) && equalFoldASCII(cn, name) {
						targetKinds[i] = kinds[j]
						break
					}
				}
			}
		}
	}
	arities := []int{len(targetCols)}
	if len(x.Cols) == 0 && c.cat.IsTemporalTable(x.Table) && len(targetCols) >= 2 {
		arities = append(arities, len(targetCols)-2)
	}
	okArity := func(n int) bool {
		for _, a := range arities {
			if n == a {
				return true
			}
		}
		return false
	}
	switch src := x.Source.(type) {
	case *sqlast.ValuesExpr:
		for _, row := range src.Rows {
			if !okArity(len(row)) {
				c.add(CodeInsertArity, c.tableSev(), x.Pos,
					"INSERT into %s: %d values for %d columns", x.Table, len(row), len(targetCols))
				continue
			}
			if targetKinds == nil {
				continue
			}
			for i, e := range row {
				if i >= len(targetKinds) {
					break
				}
				pos := findExprPos(e)
				if pos == (sqlscan.Pos{}) {
					pos = x.Pos
				}
				c.checkAssign(CodeInsertMismatch, targetKinds[i], e, sc, pos,
					"INSERT into "+x.Table+" column "+targetCols[i])
			}
		}
	case *sqlast.SelectStmt:
		n := 0
		for _, it := range src.Items {
			if it.Star || it.TableStar != "" {
				return
			}
			n++
		}
		if !okArity(n) {
			c.add(CodeInsertArity, c.tableSev(), x.Pos,
				"INSERT into %s: query yields %d columns for %d target columns", x.Table, n, len(targetCols))
		}
	}
}
