package check

import "taupsm/internal/sqlast"

// terminates reports whether control definitely does not continue to
// the statement after s (conservative: false when unsure, so only
// certainly-unreachable code is flagged).
func terminates(s sqlast.Stmt) bool {
	switch x := s.(type) {
	case *sqlast.ReturnStmt, *sqlast.LeaveStmt, *sqlast.IterateStmt:
		return true
	case *sqlast.IfStmt:
		if x.Else == nil || !listTerminates(x.Then) || !listTerminates(x.Else) {
			return false
		}
		for _, ei := range x.ElseIfs {
			if !listTerminates(ei.Then) {
				return false
			}
		}
		return true
	case *sqlast.CaseStmt:
		if x.Else == nil || !listTerminates(x.Else) {
			return false
		}
		for _, w := range x.Whens {
			if !listTerminates(w.Then) {
				return false
			}
		}
		return true
	}
	// SIGNAL is not a terminator: a CONTINUE handler may resume right
	// after it. Compound blocks are not either: a LEAVE inside may
	// target the block's own label, which lands control after it.
	return false
}

func listTerminates(list []sqlast.Stmt) bool {
	for _, s := range list {
		if terminates(s) {
			return true
		}
	}
	return false
}

// definitelyReturns reports whether every execution of a function body
// ends in RETURN (or raises). Conservative in the no-warning
// direction: true when unsure, so TAU013 only fires on bodies that
// clearly can fall off the end.
func definitelyReturns(s sqlast.Stmt) bool {
	switch x := s.(type) {
	case *sqlast.ReturnStmt, *sqlast.SignalStmt:
		return true
	case *sqlast.CompoundStmt:
		return returnsList(x.Stmts)
	case *sqlast.IfStmt:
		if x.Else == nil || !returnsList(x.Then) || !returnsList(x.Else) {
			return false
		}
		for _, ei := range x.ElseIfs {
			if !returnsList(ei.Then) {
				return false
			}
		}
		return true
	case *sqlast.CaseStmt:
		if x.Else == nil || !returnsList(x.Else) {
			return false
		}
		for _, w := range x.Whens {
			if !returnsList(w.Then) {
				return false
			}
		}
		return true
	case *sqlast.RepeatStmt:
		return returnsList(x.Body)
	case *sqlast.LoopStmt:
		// A plain LOOP only exits via LEAVE or RETURN; if it contains
		// a RETURN anywhere, assume that is the exit path.
		return containsReturn(x.Body)
	}
	return false
}

func returnsList(list []sqlast.Stmt) bool {
	for _, s := range list {
		if definitelyReturns(s) {
			return true
		}
	}
	return false
}

func containsReturn(list []sqlast.Stmt) bool {
	found := false
	for _, s := range list {
		sqlast.Walk(s, func(n sqlast.Node) bool {
			if _, ok := n.(*sqlast.ReturnStmt); ok {
				found = true
				return false
			}
			return !found
		})
	}
	return found
}
