package check

import (
	"strings"
	"testing"

	"taupsm/internal/sqlast"
	"taupsm/internal/sqlparser"
)

// testCatalog builds a shadow catalog from a schema script.
func testCatalog(t *testing.T, schema string) *ScriptCatalog {
	t.Helper()
	cat := NewScriptCatalog(nil)
	if schema == "" {
		return cat
	}
	stmts, err := sqlparser.ParseScript(schema)
	if err != nil {
		t.Fatalf("schema parse: %v", err)
	}
	for _, s := range stmts {
		cat.Apply(s)
	}
	return cat
}

const testSchema = `
CREATE TABLE item (item_id CHAR(10), title VARCHAR(100), price FLOAT, subject VARCHAR(30)) AS VALIDTIME;
CREATE TABLE author (author_id CHAR(10), name VARCHAR(60)) AS VALIDTIME;
CREATE TABLE item_author (item_id CHAR(10), author_id CHAR(10));
CREATE TABLE audit_log (op VARCHAR(10), who VARCHAR(20)) AS TRANSACTIONTIME;
CREATE FUNCTION item_price (iid CHAR(10)) RETURNS FLOAT READS SQL DATA
BEGIN
  RETURN (SELECT price FROM item WHERE item_id = iid);
END;
CREATE PROCEDURE log_op (IN op VARCHAR(10), OUT n INTEGER)
BEGIN
  SET n = 1;
END;
CREATE FUNCTION shift_date (d DATE, n INTEGER) RETURNS DATE
BEGIN
  RETURN d + n;
END;
`

func checkOne(t *testing.T, cat Catalog, src string) []Diagnostic {
	t.Helper()
	stmt, err := sqlparser.ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Check(cat, stmt)
}

// find returns the first diagnostic with the given code.
func find(diags []Diagnostic, code string) (Diagnostic, bool) {
	for _, d := range diags {
		if d.Code == code {
			return d, true
		}
	}
	return Diagnostic{}, false
}

func TestDiagnosticCodes(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		code     string
		sev      Severity
		line     int // 1-based line of the expected diagnostic within src
		col      int
		contains string
	}{
		{
			name: "TAU001 undeclared variable in SET",
			src: `CREATE FUNCTION f () RETURNS INTEGER
BEGIN
  SET x = 1;
  RETURN 0;
END`,
			code: CodeUndeclaredVar, sev: Error, line: 3, col: 3,
			contains: "variable x is not declared",
		},
		{
			name: "TAU001 bare name neither column nor variable",
			src: `CREATE FUNCTION f () RETURNS INTEGER
BEGIN
  RETURN (SELECT price FROM item WHERE item_id = nosuch);
END`,
			code: CodeUndeclaredVar, sev: Error, line: 3, col: 50,
			contains: "name nosuch is neither a column in scope nor a variable",
		},
		{
			name: "TAU002 undeclared cursor",
			src: `CREATE FUNCTION f () RETURNS INTEGER
BEGIN
  OPEN c;
  RETURN 0;
END`,
			code: CodeUndeclaredCursor, sev: Error, line: 3, col: 3,
			contains: "cursor c is not declared",
		},
		{
			name: "TAU003 LEAVE unknown label",
			src: `CREATE FUNCTION f () RETURNS INTEGER
BEGIN
  LEAVE nowhere;
  RETURN 0;
END`,
			code: CodeUnknownLabel, sev: Error, line: 3, col: 3,
			contains: "no enclosing statement labeled nowhere",
		},
		{
			name: "TAU003 ITERATE of compound label",
			src: `CREATE FUNCTION f () RETURNS INTEGER
blk: BEGIN
  ITERATE blk;
  RETURN 0;
END`,
			code: CodeUnknownLabel, sev: Error, line: 3, col: 3,
			contains: "no enclosing loop labeled blk",
		},
		{
			name: "TAU004 unknown table top-level",
			src:  `SELECT * FROM nosuch_table`,
			code: CodeUnknownTable, sev: Error, line: 1, col: 15,
			contains: "table or view nosuch_table does not exist",
		},
		{
			name: "TAU005 unknown qualified column top-level",
			src:  `SELECT i.nosuch FROM item i`,
			code: CodeUnknownColumn, sev: Error, line: 1, col: 8,
			contains: "column i.nosuch does not exist",
		},
		{
			name: "TAU006 unknown function",
			src: `CREATE FUNCTION f () RETURNS INTEGER
BEGIN
  RETURN no_such_fn(1);
END`,
			code: CodeUnknownRoutine, sev: Error, line: 3, col: 10,
			contains: "unknown function no_such_fn",
		},
		{
			name: "TAU006 unknown procedure",
			src: `CREATE PROCEDURE p ()
BEGIN
  CALL no_such_proc();
END`,
			code: CodeUnknownRoutine, sev: Error, line: 3, col: 3,
			contains: "procedure no_such_proc does not exist",
		},
		{
			name: "TAU007 CALL of a function",
			src: `CREATE PROCEDURE p ()
BEGIN
  CALL item_price('i1');
END`,
			code: CodeKindMismatch, sev: Error, line: 3, col: 3,
			contains: "item_price is a function; invoke it in an expression",
		},
		{
			name: "TAU007 procedure invoked as function",
			src: `CREATE FUNCTION f () RETURNS INTEGER
BEGIN
  RETURN log_op('x');
END`,
			code: CodeKindMismatch, sev: Error, line: 3, col: 10,
			contains: "log_op is a procedure",
		},
		{
			name: "TAU008 direct recursion",
			src: `CREATE FUNCTION f (n INTEGER) RETURNS INTEGER
BEGIN
  RETURN f(n);
END`,
			code: CodeRecursion, sev: Warning, line: 1, col: 8,
			contains: "routine f is directly or mutually recursive",
		},
		{
			name: "TAU009 stored function arity",
			src: `CREATE FUNCTION f () RETURNS FLOAT
BEGIN
  RETURN item_price('a', 'b');
END`,
			code: CodeBadArity, sev: Error, line: 3, col: 10,
			contains: "function item_price expects 1 arguments, got 2",
		},
		{
			name: "TAU009 builtin arity",
			src:  `SELECT MOD(price) FROM item`,
			code: CodeBadArity, sev: Error, line: 1, col: 8,
			contains: "MOD expects 2 argument(s), got 1",
		},
		{
			name: "TAU009 OUT argument must be a variable",
			src: `CREATE PROCEDURE p ()
BEGIN
  CALL log_op('x', 42);
END`,
			code: CodeBadArity, sev: Error, line: 3, col: 3,
			contains: "argument 2 of log_op must be a variable (parameter n is OUT)",
		},
		{
			name: "TAU010 declared but never used",
			src: `CREATE FUNCTION f () RETURNS INTEGER
BEGIN
  DECLARE unused INTEGER;
  RETURN 0;
END`,
			code: CodeDeadStore, sev: Warning, line: 3, col: 3,
			contains: "variable unused is declared but never used",
		},
		{
			name: "TAU010 assigned but never read",
			src: `CREATE FUNCTION f () RETURNS INTEGER
BEGIN
  DECLARE v INTEGER;
  SET v = 3;
  RETURN 0;
END`,
			code: CodeDeadStore, sev: Warning, line: 3, col: 3,
			contains: "value assigned to v is never read",
		},
		{
			name: "TAU011 unreachable after RETURN",
			src: `CREATE FUNCTION f () RETURNS INTEGER
BEGIN
  RETURN 1;
  SET x = 2;
END`,
			code: CodeUnreachable, sev: Warning, line: 4, col: 3,
			contains: "unreachable statement",
		},
		{
			name: "TAU012 duplicate declaration",
			src: `CREATE FUNCTION f () RETURNS INTEGER
BEGIN
  DECLARE v INTEGER;
  DECLARE v FLOAT;
  RETURN v;
END`,
			code: CodeDuplicate, sev: Warning, line: 4, col: 3,
			contains: "duplicate declaration of v",
		},
		{
			name: "TAU013 function may end without RETURN",
			src: `CREATE FUNCTION f (n INTEGER) RETURNS INTEGER
BEGIN
  IF n > 0 THEN
    RETURN 1;
  END IF;
END`,
			code: CodeMissingRet, sev: Warning, line: 1, col: 8,
			contains: "function f may end without RETURN",
		},
		{
			name: "TAU020 modifier reaches no temporal table",
			src:  `VALIDTIME SELECT * FROM item_author`,
			code: CodeNoTemporalTable, sev: Warning, line: 1, col: 1,
			contains: "no VALIDTIME table is reachable",
		},
		{
			name: "TAU021 mixed dimensions",
			src:  `VALIDTIME SELECT i.title FROM item i, audit_log a`,
			code: CodeMixedDimensions, sev: Warning, line: 1, col: 1,
			contains: "filtered to the current TRANSACTIONTIME context",
		},
		{
			name: "TAU022 explicit period column write",
			src:  `UPDATE item SET end_time = DATE '2001-01-01' WHERE item_id = 'i1'`,
			code: CodeTimeColumnWrite, sev: Warning, line: 1, col: 17,
			contains: "explicit write to system-maintained period column item.end_time",
		},
		{
			name: "TAU031 manual DML on transaction-time table",
			src:  `NONSEQUENCED TRANSACTIONTIME DELETE FROM audit_log`,
			code: CodeManualTransTime, sev: Error, line: 1, col: 30,
			contains: "transaction time of table audit_log is system-maintained",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cat := testCatalog(t, testSchema)
			diags := checkOne(t, cat, tc.src)
			d, ok := find(diags, tc.code)
			if !ok {
				t.Fatalf("no %s diagnostic; got %v", tc.code, diags)
			}
			if d.Severity != tc.sev {
				t.Errorf("severity = %v, want %v", d.Severity, tc.sev)
			}
			if d.Pos.Line != tc.line || d.Pos.Col != tc.col {
				t.Errorf("pos = %d:%d, want %d:%d (%s)", d.Pos.Line, d.Pos.Col, tc.line, tc.col, d.Message)
			}
			if !strings.Contains(d.Message, tc.contains) {
				t.Errorf("message %q does not contain %q", d.Message, tc.contains)
			}
		})
	}
}

// TestTypedDiagnosticCodes is the golden corpus for the typed-IR
// block (TAU04x) and the constant-folding block (TAU05x): one exact
// position, severity, and message fragment per defect class.
func TestTypedDiagnosticCodes(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		code     string
		sev      Severity
		line     int
		col      int
		contains string
	}{
		{
			name: "TAU040 DATE plus DATE",
			src:  `SELECT begin_time + end_time FROM item`,
			code: CodeBadArith, sev: Error, line: 1, col: 8,
			contains: "cannot apply + to DATE and DATE",
		},
		{
			name: "TAU040 string arithmetic",
			src:  `SELECT title * 2 FROM item`,
			code: CodeBadArith, sev: Error, line: 1, col: 8,
			contains: "cannot apply * to VARCHAR and INTEGER",
		},
		{
			name: "TAU040 negated string",
			src:  `SELECT -title FROM item`,
			code: CodeBadArith, sev: Error, line: 1, col: 9,
			contains: "cannot negate a VARCHAR value",
		},
		{
			name: "TAU041 string compared to number",
			src:  `SELECT item_id FROM item WHERE title = 1`,
			code: CodeIncomparable, sev: Warning, line: 1, col: 32,
			contains: "comparison of VARCHAR and INTEGER is always UNKNOWN",
		},
		{
			name: "TAU042 string condition",
			src:  `SELECT item_id FROM item WHERE 'open'`,
			code: CodeNonBoolCond, sev: Warning, line: 1, col: 1,
			contains: "condition has type VARCHAR and can never be TRUE",
		},
		{
			name: "TAU043 DATE assigned to INTEGER",
			src: `CREATE FUNCTION f () RETURNS INTEGER
BEGIN
  DECLARE n INTEGER;
  SET n = CURRENT_DATE;
  RETURN n;
END`,
			code: CodeAssignMismatch, sev: Warning, line: 4, col: 3,
			contains: "DATE value where INTEGER is expected",
		},
		{
			name: "TAU043 malformed DATE default",
			src: `CREATE FUNCTION f () RETURNS DATE
BEGIN
  DECLARE d DATE DEFAULT 'not-a-date';
  RETURN d;
END`,
			code: CodeAssignMismatch, sev: Error, line: 3, col: 3,
			contains: `string "not-a-date" is not a valid DATE`,
		},
		{
			name: "TAU044 RETURN of the wrong type",
			src: `CREATE FUNCTION f () RETURNS INTEGER
BEGIN
  RETURN CURRENT_DATE;
END`,
			code: CodeReturnMismatch, sev: Warning, line: 3, col: 3,
			contains: "RETURN: DATE value where INTEGER is expected",
		},
		{
			name: "TAU045 argument of the wrong type",
			src:  `SELECT shift_date(DATE '2010-01-01', 'x') FROM item`,
			code: CodeArgMismatch, sev: Warning, line: 1, col: 8,
			contains: "argument 2 of shift_date (parameter n): VARCHAR value where INTEGER is expected",
		},
		{
			name: "TAU045 malformed DATE argument",
			src:  `SELECT shift_date('zzz', 1) FROM item`,
			code: CodeArgMismatch, sev: Error, line: 1, col: 8,
			contains: `string "zzz" is not a valid DATE`,
		},
		{
			name: "TAU046 INSERT arity",
			src:  `INSERT INTO item_author VALUES ('a1')`,
			code: CodeInsertArity, sev: Error, line: 1, col: 1,
			contains: "INSERT into item_author: 1 values for 2 columns",
		},
		{
			name: "TAU047 UPDATE value of the wrong type",
			src:  `UPDATE item SET price = 'cheap' WHERE item_id = 'i1'`,
			code: CodeInsertMismatch, sev: Warning, line: 1, col: 17,
			contains: "UPDATE item SET price: VARCHAR value where FLOAT is expected",
		},
		{
			name: "TAU050 constant IF condition",
			src: `CREATE FUNCTION f () RETURNS INTEGER
BEGIN
  IF 1 > 2 THEN
    RETURN 1;
  END IF;
  RETURN 0;
END`,
			code: CodeConstCond, sev: Warning, line: 3, col: 3,
			contains: "IF condition is always FALSE; the THEN branch never runs",
		},
		{
			name: "TAU051 dead branch statement",
			src: `CREATE FUNCTION f () RETURNS INTEGER
BEGIN
  IF 1 > 2 THEN
    RETURN 1;
  END IF;
  RETURN 0;
END`,
			code: CodeFoldedDead, sev: Warning, line: 4, col: 5,
			contains: "statement is unreachable: the guarding condition is constant",
		},
		{
			name: "TAU052 empty applicability period",
			src:  `VALIDTIME (DATE '2011-01-01', DATE '2010-01-01') SELECT title FROM item`,
			code: CodeEmptyPeriod, sev: Warning, line: 1, col: 1,
			contains: "is empty; the statement has no effect",
		},
		{
			name: "TAU053 constant division by zero",
			src:  `SELECT price / (3 - 3) FROM item`,
			code: CodeConstDivZero, sev: Error, line: 1, col: 8,
			contains: "division by zero",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cat := testCatalog(t, testSchema)
			diags := checkOne(t, cat, tc.src)
			d, ok := find(diags, tc.code)
			if !ok {
				t.Fatalf("no %s diagnostic; got %v", tc.code, diags)
			}
			if d.Severity != tc.sev {
				t.Errorf("severity = %v, want %v", d.Severity, tc.sev)
			}
			if d.Pos.Line != tc.line || d.Pos.Col != tc.col {
				t.Errorf("pos = %d:%d, want %d:%d (%s)", d.Pos.Line, d.Pos.Col, tc.line, tc.col, d.Message)
			}
			if !strings.Contains(d.Message, tc.contains) {
				t.Errorf("message %q does not contain %q", d.Message, tc.contains)
			}
		})
	}
}

// TestCleanTypedExpressionsStaySilent pins the conservative side of
// the typed IR: unknown kinds and engine-accepted coercions must not
// produce TAU04x/TAU05x noise.
func TestCleanTypedExpressionsStaySilent(t *testing.T) {
	for _, src := range []string{
		`SELECT price * 2 FROM item`,                        // numeric arithmetic
		`SELECT begin_time + 30 FROM item`,                  // date + int is date shifting
		`SELECT begin_time - end_time FROM item`,            // date - date is a day count
		`SELECT item_id FROM item WHERE price > 1`,          // comparable kinds
		`SELECT item_id FROM item WHERE item_id = 'i1'`,     // string = string
		`SELECT shift_date(DATE '2010-01-01', 7) FROM item`, // well-typed call
		`INSERT INTO item_author VALUES ('i1', 'a1')`,       // exact arity
		`UPDATE item SET price = 2 WHERE item_id = 'i1'`,    // int into float target
		`SELECT price / 2 FROM item`,                        // nonzero constant divisor
	} {
		cat := testCatalog(t, testSchema)
		diags := checkOne(t, cat, src)
		for _, d := range diags {
			if strings.HasPrefix(d.Code, "TAU04") || strings.HasPrefix(d.Code, "TAU05") {
				t.Errorf("%s: unexpected %s: %s", src, d.Code, d.Message)
			}
		}
	}
}

func TestUseBeforeDeclareWarns(t *testing.T) {
	cat := testCatalog(t, testSchema)
	diags := checkOne(t, cat, `CREATE FUNCTION f () RETURNS INTEGER
BEGIN
  SET v = 1;
  DECLARE v INTEGER;
  RETURN v;
END`)
	if _, ok := find(diags, CodeUseBeforeDec); !ok {
		t.Fatalf("no %s diagnostic; got %v", CodeUseBeforeDec, diags)
	}
	if errs := Errors(diags); len(errs) != 0 {
		t.Fatalf("use-before-declare must not be an error (declarations are hoisted): %v", errs)
	}
}

func TestPerstFallbackPrediction(t *testing.T) {
	cat := testCatalog(t, testSchema)
	// q17b's shape: a FETCH of a temporal cursor inside a FOR loop
	// over a temporal query.
	diags := checkOne(t, cat, `CREATE FUNCTION mixed_scan () RETURNS INTEGER
BEGIN
  DECLARE iid CHAR(10);
  DECLARE n INTEGER DEFAULT 0;
  DECLARE all_items CURSOR FOR SELECT item_id FROM item;
  OPEN all_items;
  FOR r AS SELECT author_id FROM author DO
    FETCH all_items INTO iid;
    SET n = n + 1;
  END FOR;
  CLOSE all_items;
  RETURN n;
END`)
	d, ok := find(diags, CodePerstFallback)
	if !ok {
		t.Fatalf("no %s diagnostic; got %v", CodePerstFallback, diags)
	}
	if !strings.Contains(d.Message, "non-nested FETCH of cursor all_items") {
		t.Errorf("unexpected message %q", d.Message)
	}
	if len(Errors(diags)) != 0 {
		t.Errorf("fallback prediction must be warning-only: %v", Errors(diags))
	}
}

func TestCleanRoutineHasNoDiagnostics(t *testing.T) {
	cat := testCatalog(t, testSchema)
	diags := checkOne(t, cat, `CREATE FUNCTION total (iid CHAR(10)) RETURNS FLOAT
BEGIN
  DECLARE p FLOAT;
  SET p = (SELECT price FROM item WHERE item_id = iid);
  RETURN p * 1.1;
END`)
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics, got %v", diags)
	}
}

func TestSelfRecursionResolvesAtCreate(t *testing.T) {
	// Self-call must not be TAU006: the routine being defined is in
	// scope for its own body.
	cat := testCatalog(t, testSchema)
	diags := checkOne(t, cat, `CREATE FUNCTION fact (n INTEGER) RETURNS INTEGER
BEGIN
  IF n <= 1 THEN
    RETURN 1;
  END IF;
  RETURN n * fact(n - 1);
END`)
	if _, ok := find(diags, CodeUnknownRoutine); ok {
		t.Fatalf("self-recursion reported as unknown routine: %v", diags)
	}
	if _, ok := find(diags, CodeRecursion); !ok {
		t.Fatalf("expected %s for self-recursion, got %v", CodeRecursion, diags)
	}
}

func TestPureAndWriteFree(t *testing.T) {
	cat := testCatalog(t, testSchema+`
CREATE FUNCTION reader (iid CHAR(10)) RETURNS FLOAT
BEGIN
  RETURN item_price(iid);
END;
CREATE PROCEDURE writer ()
BEGIN
  DELETE FROM item_author;
END;
CREATE FUNCTION calls_writer () RETURNS INTEGER
BEGIN
  CALL writer();
  RETURN 0;
END;
CREATE FUNCTION collector () RETURNS INTEGER
BEGIN
  DECLARE acc ROW(aid CHAR(10)) ARRAY;
  INSERT INTO TABLE acc SELECT author_id FROM item_author;
  RETURN 0;
END;
CREATE FUNCTION rec (n INTEGER) RETURNS INTEGER
BEGIN
  RETURN rec(n - 1);
END;
`)
	for name, want := range map[string]bool{
		"item_price":   true,
		"reader":       true,
		"writer":       false,
		"calls_writer": false,
		"collector":    true,  // collection-variable writes are private
		"rec":          false, // recursion resolves to impure
	} {
		if got := Pure(cat, name); got != want {
			t.Errorf("Pure(%s) = %v, want %v", name, got, want)
		}
	}

	// WriteFree tolerates recursion and honors locals-first resolution.
	recBody := cat.Function("rec").Body
	if !WriteFree(cat, nil, recBody) {
		t.Errorf("WriteFree must tolerate recursion")
	}
	locals := map[string]sqlast.Stmt{
		"item_price": cat.Procedure("writer").Body, // shadow with a writing body
	}
	readerBody := cat.Function("reader").Body
	if WriteFree(cat, locals, readerBody) {
		t.Errorf("WriteFree must resolve callees through locals first")
	}
	if !WriteFree(cat, nil, readerBody) {
		t.Errorf("WriteFree(reader) without locals should be true")
	}
}

func TestChunkOrderSafe(t *testing.T) {
	for src, want := range map[string]bool{
		`SELECT title FROM item`:                               true,
		`SELECT title FROM item ORDER BY title`:                false,
		`SELECT title FROM item FETCH FIRST 3 ROWS ONLY`:       false,
		`SELECT title FROM item UNION SELECT name FROM author`: true,
	} {
		stmt, err := sqlparser.ParseStatement(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if got := ChunkOrderSafe(stmt.(sqlast.QueryExpr)); got != want {
			t.Errorf("ChunkOrderSafe(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestScriptCatalogFollowsDDL(t *testing.T) {
	cat := testCatalog(t, `
CREATE TABLE t (a INTEGER, b INTEGER);
ALTER TABLE t ADD VALIDTIME;
CREATE VIEW v AS SELECT a FROM t;
`)
	if !cat.IsTable("t") || cat.IsTransactionTable("t") || !cat.IsTemporalTable("t") {
		t.Fatalf("t misclassified")
	}
	cols := cat.TableColumns("t")
	if len(cols) != 4 || cols[2] != "begin_time" || cols[3] != "end_time" {
		t.Fatalf("ALTER ADD VALIDTIME must append period columns, got %v", cols)
	}
	if !cat.IsView("v") || len(cat.TableColumns("v")) != 1 {
		t.Fatalf("view v misclassified: %v", cat.TableColumns("v"))
	}
	cat.Apply(&sqlast.DropTableStmt{Name: "t"})
	if cat.IsTable("t") {
		t.Fatalf("drop not applied")
	}
}
