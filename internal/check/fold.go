package check

import (
	"taupsm/internal/sqlast"
	"taupsm/internal/sqlscan"
	"taupsm/internal/types"
)

// Constant propagation and dead-branch detection over PSM bodies.
//
// foldConst evaluates an expression exactly as the engine would when
// every operand is a literal, using the same types.Arith/CompareOp/
// Tribool machinery, so a folded verdict is never a guess. The checker
// uses the results three ways: TAU050 flags IF/WHILE conditions that
// fold to a constant producing a dead branch, TAU051 marks the first
// statement of each branch that can never run, and TAU052 flags
// sequenced statements whose applicability period is statically empty.
// checkBinary reuses foldConst for TAU053 (constant division by zero).
//
// Always-true loop conditions (WHILE TRUE ... LEAVE) are idiomatic and
// deliberately not flagged; only constants that kill a branch are.

// foldConst evaluates e when it is built entirely from literals,
// mirroring the engine's evaluator. The second result is false when
// the expression is not statically evaluable (including when the
// engine would raise a runtime error — those cases are diagnosed
// separately by checkBinary).
func foldConst(e sqlast.Expr) (types.Value, bool) {
	switch x := e.(type) {
	case *sqlast.Literal:
		return x.Val, true
	case *sqlast.UnaryExpr:
		switch x.Op {
		case "NOT":
			if t, ok := foldTri(x.X); ok {
				return t.Not().Value(), true
			}
		case "-":
			if v, ok := foldConst(x.X); ok {
				if r, err := types.Arith("-", types.NewInt(0), v); err == nil {
					return r, true
				}
			}
		}
	case *sqlast.BinaryExpr:
		switch x.Op {
		case "AND", "OR":
			if t, ok := foldTri(x); ok {
				return t.Value(), true
			}
		case "=", "<>", "<", "<=", ">", ">=":
			l, ok := foldConst(x.L)
			if !ok {
				return types.Value{}, false
			}
			r, ok := foldConst(x.R)
			if !ok {
				return types.Value{}, false
			}
			return types.CompareOp(x.Op, l, r).Value(), true
		case "+", "-", "*", "/", "||":
			l, ok := foldConst(x.L)
			if !ok {
				return types.Value{}, false
			}
			r, ok := foldConst(x.R)
			if !ok {
				return types.Value{}, false
			}
			if v, err := types.Arith(x.Op, l, r); err == nil {
				return v, true
			}
		}
	case *sqlast.IsNullExpr:
		if v, ok := foldConst(x.X); ok {
			return types.NewBool(v.IsNull() != x.Not), true
		}
	}
	return types.Value{}, false
}

// foldTri evaluates e as a predicate when statically possible,
// honouring AND/OR short-circuit: FALSE AND <anything> folds even when
// the other operand does not.
func foldTri(e sqlast.Expr) (types.Tribool, bool) {
	if x, ok := e.(*sqlast.BinaryExpr); ok && (x.Op == "AND" || x.Op == "OR") {
		l, lok := foldTri(x.L)
		r, rok := foldTri(x.R)
		if x.Op == "AND" {
			switch {
			case lok && rok:
				return l.And(r), true
			case lok && l == types.False, rok && r == types.False:
				return types.False, true
			}
		} else {
			switch {
			case lok && rok:
				return l.Or(r), true
			case lok && l == types.True, rok && r == types.True:
				return types.True, true
			}
		}
		return types.Unknown, false
	}
	if v, ok := foldConst(e); ok {
		return types.TriboolFromValue(v), true
	}
	return types.Unknown, false
}

// foldIf reports constant IF conditions and the branch they kill. Only
// conditions producing dead code are flagged: an always-true condition
// with no ELSE merely makes the IF redundant, not wrong.
func (c *checker) foldIf(x *sqlast.IfStmt) {
	t, ok := foldTri(x.Cond)
	if !ok {
		return
	}
	pos := findExprPos(x.Cond)
	if pos == (sqlscan.Pos{}) {
		pos = x.Pos
	}
	if t == types.True {
		if len(x.ElseIfs) > 0 || len(x.Else) > 0 {
			c.add(CodeConstCond, Warning, pos,
				"IF condition is always TRUE; the other branches never run")
			c.foldDead(firstStmt(append(elseIfFirst(x.ElseIfs), x.Else...)))
		}
		return
	}
	// FALSE and UNKNOWN both skip the THEN branch.
	c.add(CodeConstCond, Warning, pos,
		"IF condition is always %s; the THEN branch never runs", foldWord(t))
	c.foldDead(firstStmt(x.Then))
}

// foldLoop reports WHILE/REPEAT conditions that statically kill or
// never leave their loop body.
func (c *checker) foldLoop(x sqlast.Stmt) {
	switch s := x.(type) {
	case *sqlast.WhileStmt:
		t, ok := foldTri(s.Cond)
		if !ok || t == types.True {
			return // WHILE TRUE ... LEAVE is idiomatic
		}
		pos := findExprPos(s.Cond)
		if pos == (sqlscan.Pos{}) {
			pos = s.Pos
		}
		c.add(CodeConstCond, Warning, pos,
			"WHILE condition is always %s; the loop body never runs", foldWord(t))
		c.foldDead(firstStmt(s.Body))
	case *sqlast.RepeatStmt:
		// REPEAT runs its body at least once; only an UNTIL that can
		// never become TRUE is suspicious (infinite loop unless LEAVE).
		t, ok := foldTri(s.Until)
		if ok && t == types.True {
			c.add(CodeConstCond, Warning, s.Pos,
				"REPEAT ... UNTIL condition is always TRUE; the loop runs exactly once")
		}
	}
}

func foldWord(t types.Tribool) string {
	if t == types.False {
		return "FALSE"
	}
	return "UNKNOWN"
}

func elseIfFirst(eis []sqlast.ElseIf) []sqlast.Stmt {
	var out []sqlast.Stmt
	for _, ei := range eis {
		out = append(out, ei.Then...)
	}
	return out
}

func firstStmt(list []sqlast.Stmt) sqlast.Stmt {
	if len(list) == 0 {
		return nil
	}
	return list[0]
}

// foldDead marks the first statement of a branch that constant folding
// proved unreachable.
func (c *checker) foldDead(s sqlast.Stmt) {
	if s == nil {
		return
	}
	if pos := sqlast.PosOf(s); pos != (sqlscan.Pos{}) {
		c.add(CodeFoldedDead, Warning, pos,
			"statement is unreachable: the guarding condition is constant")
	}
}

// foldPeriod flags a sequenced statement whose explicit applicability
// period is statically empty (begin >= end): the engine executes it
// but it can never select or modify anything.
func (c *checker) foldPeriod(x *sqlast.TemporalStmt) {
	if x.Period == nil || x.Period.Begin == nil || x.Period.End == nil {
		return
	}
	b, ok := foldConst(x.Period.Begin)
	if !ok {
		return
	}
	e, ok := foldConst(x.Period.End)
	if !ok {
		return
	}
	b, e = asDate(b), asDate(e)
	if b.Kind != types.KindDate || e.Kind != types.KindDate {
		return
	}
	if cmp, ok := types.Compare(b, e); ok && cmp >= 0 {
		c.add(CodeEmptyPeriod, Warning, x.Pos,
			"applicability period [%s, %s) is empty; the statement has no effect", b.Text(), e.Text())
	}
}

// asDate coerces a folded period bound the way the engine does: string
// literals are parsed as dates, integers are day numbers.
func asDate(v types.Value) types.Value {
	switch v.Kind {
	case types.KindDate:
		return v
	case types.KindString:
		if d, err := types.ParseDate(v.S); err == nil {
			return types.NewDate(d)
		}
	case types.KindInt:
		return types.NewDate(v.I)
	}
	return v
}
