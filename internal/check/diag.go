// Package check is a compile-time semantic analyzer for Temporal
// SQL/PSM. It statically mirrors the conventional engine's name
// resolution, call semantics, and effect inference, plus the temporal
// stratum's applicability rules, and reports findings as
// position-carrying diagnostics. The stratum consults it at CREATE
// FUNCTION/PROCEDURE time, EXPLAIN renders its findings, and the
// `taupsm vet` subcommand and REPL \lint run it over whole scripts.
package check

import (
	"fmt"
	"sort"

	"taupsm/internal/sqlscan"
)

// Severity classifies a diagnostic.
type Severity uint8

// Diagnostic severities. Errors describe statements the engine is
// guaranteed (or overwhelmingly likely) to reject at run time;
// warnings describe suspicious-but-executable constructs.
const (
	Warning Severity = iota
	Error
)

// String names the severity.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic codes. The TAU0xx block covers name/scope resolution and
// control flow, TAU00x errors mirror exact engine runtime errors;
// TAU02x/TAU03x cover temporal applicability.
const (
	// Name and scope resolution.
	CodeUndeclaredVar    = "TAU001" // variable or bare name not resolvable
	CodeUndeclaredCursor = "TAU002" // cursor not declared
	CodeUnknownLabel     = "TAU003" // LEAVE/ITERATE of an unknown or non-loop label
	CodeUnknownTable     = "TAU004" // table or view does not exist
	CodeUnknownColumn    = "TAU005" // qualified column not found
	// Call graph.
	CodeUnknownRoutine = "TAU006" // callee is neither stored routine nor builtin
	CodeKindMismatch   = "TAU007" // procedure invoked as function or vice versa
	CodeRecursion      = "TAU008" // routine is directly or mutually recursive
	CodeBadArity       = "TAU009" // argument/variable count mismatch
	// Dead code.
	CodeDeadStore    = "TAU010" // variable or cursor declared/assigned but never read
	CodeUnreachable  = "TAU011" // statement cannot be reached
	CodeDuplicate    = "TAU012" // duplicate declaration in one block
	CodeMissingRet   = "TAU013" // function may end without RETURN
	CodeUseBeforeDec = "TAU014" // name used lexically before its declaration
	// Temporal applicability.
	CodeNoTemporalTable = "TAU020" // modifier reaches no temporal table
	CodeMixedDimensions = "TAU021" // one sequenced statement reaches both dimensions
	CodeTimeColumnWrite = "TAU022" // explicit write to begin_time/end_time
	CodeModifierInBody  = "TAU023" // temporal modifier inside a routine body
	CodePerstFallback   = "TAU030" // per-statement slicing will not apply
	CodeManualTransTime = "TAU031" // manual DML on a transaction-time table
	// Typed IR (typecheck.go). Severities mirror the engine's runtime
	// coercions: constructs the engine rejects deterministically are
	// errors, constructs it silently coerces (or that yield a constant
	// NULL/UNKNOWN) are warnings.
	CodeBadArith       = "TAU040" // arithmetic the engine rejects (DATE+DATE, string arithmetic)
	CodeIncomparable   = "TAU041" // comparison of incomparable types (always UNKNOWN)
	CodeNonBoolCond    = "TAU042" // condition of a type that can never be TRUE
	CodeAssignMismatch = "TAU043" // SET/DEFAULT value of incompatible type
	CodeReturnMismatch = "TAU044" // RETURN value incompatible with declared return type
	CodeArgMismatch    = "TAU045" // argument incompatible with parameter type
	CodeInsertArity    = "TAU046" // INSERT arity does not match target columns
	CodeInsertMismatch = "TAU047" // INSERT/UPDATE value incompatible with column type
	// Constant folding (fold.go).
	CodeConstCond    = "TAU050" // condition folds to a constant
	CodeFoldedDead   = "TAU051" // statement unreachable under constant folding
	CodeEmptyPeriod  = "TAU052" // statically-empty applicability period
	CodeConstDivZero = "TAU053" // constant division by zero
)

// Diagnostic is one analyzer finding anchored to a source position.
type Diagnostic struct {
	Code     string
	Severity Severity
	Pos      sqlscan.Pos
	Message  string
	Hint     string // optional fix suggestion
}

// String renders the diagnostic as "line:col: severity CODE: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%d:%d: %s %s: %s", d.Pos.Line, d.Pos.Col, d.Severity, d.Code, d.Message)
}

// Errors filters diags down to error severity.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// sortDiags orders diagnostics by (line, col, code) for stable output:
// golden tests and vet output must not depend on map-iteration or
// analysis-pass order.
func sortDiags(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Code < b.Code
	})
}
