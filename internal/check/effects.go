package check

import (
	"taupsm/internal/sqlast"
)

// Effect and purity inference. These walkers are the single source of
// truth for "does this routine write SQL data": the engine's function
// memoization (fnPure) delegates to Pure, and the stratum's parallel
// chunk evaluation delegates to WriteFree and ChunkOrderSafe.

// Pure reports whether the named routine is free of SQL side effects:
// no DML against stored base tables (collection-variable writes are
// private per call), no DDL, and only pure routines called,
// transitively. Direct or mutual recursion resolves to impure — the
// verdict must be computable without running the routine, and a
// recursive chain gives the provisional answer, exactly as the
// engine's original walker did. Unknown callees are ignored (they fail
// at run time before they could write).
func Pure(cat Catalog, name string) bool {
	body := routineBody(cat, name)
	if body == nil {
		return false
	}
	w := &effectWalker{
		cat:             cat,
		recursionImpure: true,
		onStack:         map[string]bool{fold(name): true},
	}
	return !w.hasEffects(body)
}

// WriteFree reports whether n — with routine calls resolved through
// locals first (lowercased name → body), then the catalog — reaches no
// DML on a stored base table and no DDL. Unlike Pure, recursion is
// tolerated: a recursive read-only routine is still safe to evaluate
// in parallel.
func WriteFree(cat Catalog, locals map[string]sqlast.Stmt, n sqlast.Node) bool {
	w := &effectWalker{
		cat:     cat,
		locals:  locals,
		onStack: map[string]bool{},
	}
	return !w.hasEffects(n)
}

// ChunkOrderSafe reports that no top-level query block orders or
// limits across periods, so chunked evaluation keeps result order.
func ChunkOrderSafe(q sqlast.QueryExpr) bool {
	switch x := q.(type) {
	case *sqlast.SelectStmt:
		return len(x.OrderBy) == 0 && x.Limit == nil
	case *sqlast.SetOpExpr:
		if len(x.OrderBy) > 0 {
			return false
		}
		return ChunkOrderSafe(x.L) && ChunkOrderSafe(x.R)
	case *sqlast.ValuesExpr:
		return true
	}
	return false
}

func routineBody(cat Catalog, name string) sqlast.Stmt {
	if fn := cat.Function(name); fn != nil {
		return fn.Body
	}
	if pr := cat.Procedure(name); pr != nil {
		return pr.Body
	}
	return nil
}

type effectWalker struct {
	cat             Catalog
	locals          map[string]sqlast.Stmt
	onStack         map[string]bool
	recursionImpure bool
	visited         map[string]bool
	effects         bool
}

func (w *effectWalker) resolve(name string) (sqlast.Stmt, bool) {
	if w.locals != nil {
		if body, ok := w.locals[fold(name)]; ok {
			return body, true
		}
	}
	if body := routineBody(w.cat, name); body != nil {
		return body, true
	}
	return nil, false
}

func (w *effectWalker) hasEffects(n sqlast.Node) bool {
	sqlast.Walk(n, func(m sqlast.Node) bool {
		if w.effects {
			return false
		}
		switch x := m.(type) {
		case *sqlast.InsertStmt:
			// Writes to routine-local collection variables are private
			// per call; only stored tables carry state across calls.
			// The name test mirrors the engine exactly: a stored table
			// shadowed by a variable is still treated as a write.
			if w.cat.IsTable(x.Table) {
				w.effects = true
			}
		case *sqlast.UpdateStmt:
			if w.cat.IsTable(x.Table) {
				w.effects = true
			}
		case *sqlast.DeleteStmt:
			if w.cat.IsTable(x.Table) {
				w.effects = true
			}
		case *sqlast.CreateTableStmt, *sqlast.DropTableStmt,
			*sqlast.CreateViewStmt, *sqlast.DropViewStmt,
			*sqlast.CreateFunctionStmt, *sqlast.CreateProcedureStmt,
			*sqlast.DropRoutineStmt, *sqlast.AlterAddValidTime:
			w.effects = true
		case *sqlast.FuncCall:
			w.call(x.Name)
		case *sqlast.CallStmt:
			w.call(x.Name)
		}
		return !w.effects
	})
	return w.effects
}

func (w *effectWalker) call(name string) {
	k := fold(name)
	if w.onStack[k] {
		if w.recursionImpure {
			w.effects = true
		}
		return
	}
	if w.visited[k] {
		return
	}
	body, ok := w.resolve(name)
	if !ok {
		return
	}
	if w.visited == nil {
		w.visited = map[string]bool{}
	}
	w.visited[k] = true
	w.onStack[k] = true
	w.hasEffects(body)
	delete(w.onStack, k)
}
