package types

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCivilRoundTripQuick(t *testing.T) {
	f := func(n int32) bool {
		days := int64(n % 4_000_000)
		y, m, d := DaysToCivil(days)
		return CivilToDays(y, m, d) == days
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCivilAgreesWithTimePackage(t *testing.T) {
	// cross-check against the standard library over a wide range
	for days := int64(-100_000); days <= 100_000; days += 137 {
		tm := time.Unix(days*86400, 0).UTC()
		y, m, d := DaysToCivil(days)
		if y != tm.Year() || m != int(tm.Month()) || d != tm.Day() {
			t.Fatalf("days=%d: got %04d-%02d-%02d, time pkg says %s", days, y, m, d, tm.Format("2006-01-02"))
		}
	}
}

func TestKnownDates(t *testing.T) {
	if CivilToDays(1970, 1, 1) != 0 {
		t.Fatal("epoch must be day 0")
	}
	if CivilToDays(1970, 1, 2) != 1 {
		t.Fatal("day after epoch")
	}
	if CivilToDays(1969, 12, 31) != -1 {
		t.Fatal("day before epoch")
	}
	// leap years
	if CivilToDays(2000, 3, 1)-CivilToDays(2000, 2, 28) != 2 {
		t.Fatal("2000 is a leap year")
	}
	if CivilToDays(1900, 3, 1)-CivilToDays(1900, 2, 28) != 1 {
		t.Fatal("1900 is not a leap year")
	}
	if CivilToDays(2012, 3, 1)-CivilToDays(2012, 2, 29) != 1 {
		t.Fatal("2012-02-29 exists")
	}
}

func TestParseFormatDate(t *testing.T) {
	for _, s := range []string{"2010-01-01", "1999-12-31", "2012-02-29", "0001-01-01", "9999-12-31"} {
		d, err := ParseDate(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if got := FormatDate(d); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	}
	for _, s := range []string{"", "2010", "2010-13-01", "2010-00-10", "2010-02-30", "2011-02-29", "abcd-ef-gh", "2010/01/01"} {
		if _, err := ParseDate(s); err == nil {
			t.Errorf("expected error for %q", s)
		}
	}
}

func TestMustDatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid date")
		}
	}()
	MustDate(2011, 2, 29)
}

func TestForever(t *testing.T) {
	if FormatDate(Forever) != "9999-12-31" {
		t.Fatalf("Forever = %s", FormatDate(Forever))
	}
}
