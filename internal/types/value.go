// Package types defines the SQL value model used throughout taupsm:
// typed values with SQL NULL semantics, DATE arithmetic on epoch days,
// and the three-valued logic required by SQL predicates.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime kinds a Value can take.
type Kind uint8

const (
	// KindNull is the SQL NULL value (of any declared type).
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer (INTEGER, SMALLINT, BIGINT).
	KindInt
	// KindFloat is a 64-bit float (FLOAT, DOUBLE, DECIMAL).
	KindFloat
	// KindString is a character string (CHAR, VARCHAR).
	KindString
	// KindBool is a boolean (BOOLEAN and predicate results).
	KindBool
	// KindDate is a DATE stored as days since 1970-01-01.
	KindDate
	// KindTable is an engine-internal table-valued result (collection
	// types such as ROW(...) ARRAY). The payload lives in Aux.
	KindTable
)

// String returns the kind's SQL-ish name.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindDate:
		return "DATE"
	case KindTable:
		return "TABLE"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is a single SQL value. The zero Value is SQL NULL.
//
// The representation is a small tagged union: I holds integers, booleans
// (0/1) and dates (epoch days); F holds floats; S holds strings; Aux
// holds engine-internal payloads for table-valued results.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	Aux  any
}

// Null is the SQL NULL value.
var Null = Value{Kind: KindNull}

// NewInt returns an INTEGER value.
func NewInt(i int64) Value { return Value{Kind: KindInt, I: i} }

// NewFloat returns a FLOAT value.
func NewFloat(f float64) Value { return Value{Kind: KindFloat, F: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{Kind: KindString, S: s} }

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value {
	if b {
		return Value{Kind: KindBool, I: 1}
	}
	return Value{Kind: KindBool, I: 0}
}

// NewDate returns a DATE value from epoch days.
func NewDate(days int64) Value { return Value{Kind: KindDate, I: days} }

// NewTable returns an engine-internal table-valued Value.
func NewTable(aux any) Value { return Value{Kind: KindTable, Aux: aux} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Bool reports the value as a Go bool; NULL and non-booleans are false.
func (v Value) Bool() bool { return v.Kind == KindBool && v.I != 0 }

// Int returns the value as an int64, coercing floats by truncation.
func (v Value) Int() int64 {
	switch v.Kind {
	case KindInt, KindBool, KindDate:
		return v.I
	case KindFloat:
		return int64(v.F)
	case KindString:
		n, _ := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
		return n
	}
	return 0
}

// Float returns the value as a float64.
func (v Value) Float() float64 {
	switch v.Kind {
	case KindInt, KindBool, KindDate:
		return float64(v.I)
	case KindFloat:
		return v.F
	case KindString:
		f, _ := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		return f
	}
	return 0
}

// Text returns the value rendered as a string, the way a result row
// prints it. NULL renders as "NULL".
func (v Value) Text() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return strconv.FormatFloat(v.F, 'f', 1, 64)
		}
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindDate:
		return FormatDate(v.I)
	case KindTable:
		return "<table>"
	}
	return "?"
}

// SQLLiteral renders the value as a SQL literal usable in generated code.
func (v Value) SQLLiteral() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case KindDate:
		return "DATE '" + FormatDate(v.I) + "'"
	default:
		return v.Text()
	}
}

// Equal reports strict equality used by tests and hashing (NULL equals
// NULL here, unlike SQL comparison; use Compare for SQL semantics).
func (v Value) Equal(o Value) bool {
	if v.Kind == KindNull || o.Kind == KindNull {
		return v.Kind == o.Kind
	}
	c, ok := Compare(v, o)
	return ok && c == 0
}

// numericKind reports whether k participates in numeric comparison.
func numericKind(k Kind) bool {
	return k == KindInt || k == KindFloat || k == KindBool
}

// Compare compares two non-NULL values. It returns -1, 0 or +1 and
// ok=true when the values are comparable; ok=false when either side is
// NULL or the kinds are incomparable (SQL "unknown").
func Compare(a, b Value) (int, bool) {
	if a.Kind == KindNull || b.Kind == KindNull {
		return 0, false
	}
	switch {
	case a.Kind == KindString && b.Kind == KindString:
		// CHAR comparison ignores trailing blanks.
		as := strings.TrimRight(a.S, " ")
		bs := strings.TrimRight(b.S, " ")
		return strings.Compare(as, bs), true
	case a.Kind == KindDate && b.Kind == KindDate:
		return cmpInt(a.I, b.I), true
	case numericKind(a.Kind) && numericKind(b.Kind):
		if a.Kind == KindFloat || b.Kind == KindFloat {
			af, bf := a.Float(), b.Float()
			switch {
			case af < bf:
				return -1, true
			case af > bf:
				return 1, true
			}
			return 0, true
		}
		return cmpInt(a.I, b.I), true
	case a.Kind == KindDate && numericKind(b.Kind):
		return cmpInt(a.I, b.Int()), true
	case numericKind(a.Kind) && b.Kind == KindDate:
		return cmpInt(a.Int(), b.I), true
	case a.Kind == KindString && b.Kind == KindDate:
		if d, err := ParseDate(strings.TrimSpace(a.S)); err == nil {
			return cmpInt(d, b.I), true
		}
		return 0, false
	case a.Kind == KindDate && b.Kind == KindString:
		if d, err := ParseDate(strings.TrimSpace(b.S)); err == nil {
			return cmpInt(a.I, d), true
		}
		return 0, false
	}
	return 0, false
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// HashKey returns a string key identifying the value for hash joins and
// grouping. Numeric kinds normalize so 1 and 1.0 collide.
func (v Value) HashKey() string {
	switch v.Kind {
	case KindNull:
		return "\x00N"
	case KindInt, KindBool:
		return "\x01" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return "\x01" + strconv.FormatInt(int64(v.F), 10)
		}
		return "\x02" + strconv.FormatFloat(v.F, 'b', -1, 64)
	case KindString:
		return "\x03" + strings.TrimRight(v.S, " ")
	case KindDate:
		return "\x04" + strconv.FormatInt(v.I, 10)
	}
	return "\x05"
}
