package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null must be null")
	}
	if v := NewInt(42); v.Int() != 42 || v.Float() != 42 || v.Text() != "42" {
		t.Fatalf("int value: %+v", v)
	}
	if v := NewFloat(2.5); v.Float() != 2.5 || v.Int() != 2 || v.Text() != "2.5" {
		t.Fatalf("float value: %+v", v)
	}
	if v := NewFloat(3); v.Text() != "3.0" {
		t.Fatalf("whole float renders with decimal: %q", v.Text())
	}
	if v := NewString("hi"); v.Text() != "hi" {
		t.Fatalf("string value: %+v", v)
	}
	if v := NewBool(true); !v.Bool() || v.Text() != "TRUE" {
		t.Fatalf("bool value: %+v", v)
	}
	if v := NewBool(false); v.Bool() || v.Text() != "FALSE" {
		t.Fatalf("bool value: %+v", v)
	}
	d := MustDate(2010, 6, 15)
	if v := NewDate(d); v.Text() != "2010-06-15" {
		t.Fatalf("date value: %q", v.Text())
	}
	if NewString("123").Int() != 123 {
		t.Fatal("string to int coercion")
	}
	if NewString(" 2.5 ").Float() != 2.5 {
		t.Fatal("string to float coercion")
	}
}

func TestSQLLiteral(t *testing.T) {
	cases := map[string]Value{
		"NULL":              Null,
		"42":                NewInt(42),
		"'it''s'":           NewString("it's"),
		"DATE '2010-01-02'": NewDate(MustDate(2010, 1, 2)),
		"TRUE":              NewBool(true),
	}
	for want, v := range cases {
		if got := v.SQLLiteral(); got != want {
			t.Errorf("SQLLiteral(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	type tc struct {
		a, b Value
		cmp  int
		ok   bool
	}
	d1 := NewDate(MustDate(2010, 1, 1))
	d2 := NewDate(MustDate(2010, 1, 2))
	for _, c := range []tc{
		{NewInt(1), NewInt(2), -1, true},
		{NewInt(2), NewInt(2), 0, true},
		{NewInt(3), NewInt(2), 1, true},
		{NewInt(1), NewFloat(1.5), -1, true},
		{NewFloat(2.0), NewInt(2), 0, true},
		{NewString("a"), NewString("b"), -1, true},
		{NewString("a  "), NewString("a"), 0, true}, // CHAR trailing blanks
		{d1, d2, -1, true},
		{d1, NewString("2010-01-01"), 0, true}, // date vs date-literal string
		{NewString("2010-01-02"), d1, 1, true},
		{Null, NewInt(1), 0, false},
		{NewInt(1), Null, 0, false},
		{NewString("x"), NewInt(1), 0, false}, // incomparable
	} {
		cmp, ok := Compare(c.a, c.b)
		if ok != c.ok || (ok && cmp != c.cmp) {
			t.Errorf("Compare(%v, %v) = (%d, %v), want (%d, %v)", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestCompareAntisymmetryQuick(t *testing.T) {
	f := func(a, b int64) bool {
		c1, ok1 := Compare(NewInt(a), NewInt(b))
		c2, ok2 := Compare(NewInt(b), NewInt(a))
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashKeyAgreesWithEquality(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		eq := va.Equal(vb)
		hk := va.HashKey() == vb.HashKey()
		return eq == hk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// cross-kind: int and equal-valued float must collide
	if NewInt(7).HashKey() != NewFloat(7).HashKey() {
		t.Fatal("int 7 and float 7.0 must share a hash key")
	}
	if NewInt(7).HashKey() == NewFloat(7.5).HashKey() {
		t.Fatal("7 and 7.5 must not collide")
	}
	if Null.HashKey() == NewInt(0).HashKey() {
		t.Fatal("NULL must not collide with 0")
	}
	if NewString("a ").HashKey() != NewString("a").HashKey() {
		t.Fatal("trailing blanks must not affect string hash keys (CHAR semantics)")
	}
}

func TestTribool(t *testing.T) {
	if True.And(Unknown) != Unknown || False.And(Unknown) != False {
		t.Fatal("AND 3VL")
	}
	if True.Or(Unknown) != True || False.Or(Unknown) != Unknown {
		t.Fatal("OR 3VL")
	}
	if Unknown.Not() != Unknown || True.Not() != False || False.Not() != True {
		t.Fatal("NOT 3VL")
	}
	if !Unknown.Value().IsNull() {
		t.Fatal("Unknown renders as NULL")
	}
	if TriboolFromValue(Null) != Unknown {
		t.Fatal("NULL is Unknown")
	}
	if TriboolFromValue(NewInt(1)) != True || TriboolFromValue(NewInt(0)) != False {
		t.Fatal("integers as predicates")
	}
}

func TestArith(t *testing.T) {
	mustVal := func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := mustVal(Arith("+", NewInt(2), NewInt(3))); got.Int() != 5 {
		t.Fatalf("2+3 = %v", got)
	}
	if got := mustVal(Arith("/", NewInt(7), NewInt(2))); got.Int() != 3 {
		t.Fatalf("integer division 7/2 = %v", got)
	}
	if got := mustVal(Arith("/", NewFloat(7), NewInt(2))); got.Float() != 3.5 {
		t.Fatalf("float division = %v", got)
	}
	if _, err := Arith("/", NewInt(1), NewInt(0)); err == nil {
		t.Fatal("expected division-by-zero error")
	}
	if got := mustVal(Arith("||", NewString("a"), NewString("b"))); got.S != "ab" {
		t.Fatalf("concat = %v", got)
	}
	// NULL propagation
	if got := mustVal(Arith("+", Null, NewInt(1))); !got.IsNull() {
		t.Fatal("NULL + 1 must be NULL")
	}
	// date arithmetic
	d := NewDate(MustDate(2010, 1, 31))
	if got := mustVal(Arith("+", d, NewInt(1))); got.Text() != "2010-02-01" {
		t.Fatalf("date + 1 = %v", got.Text())
	}
	if got := mustVal(Arith("-", d, NewInt(31))); got.Text() != "2009-12-31" {
		t.Fatalf("date - 31 = %v", got.Text())
	}
	d2 := NewDate(MustDate(2010, 3, 1))
	if got := mustVal(Arith("-", d2, d)); got.Int() != 29 {
		t.Fatalf("date - date = %v", got.Int())
	}
	if _, err := Arith("*", d, d2); err == nil {
		t.Fatal("expected error multiplying dates")
	}
}

func TestCompareOp(t *testing.T) {
	if CompareOp("=", NewInt(1), NewInt(1)) != True {
		t.Fatal("1 = 1")
	}
	if CompareOp("<>", NewInt(1), NewInt(2)) != True {
		t.Fatal("1 <> 2")
	}
	if CompareOp("<", Null, NewInt(1)) != Unknown {
		t.Fatal("NULL < 1 must be Unknown")
	}
	if CompareOp(">=", NewFloat(2), NewInt(2)) != True {
		t.Fatal("2.0 >= 2")
	}
}

func TestFloatTextStability(t *testing.T) {
	// very large floats should not render in fixed notation forever
	v := NewFloat(math.Pow(10, 16))
	if v.Text() == "" {
		t.Fatal("render failed")
	}
}
