package types

import (
	"fmt"
	"strconv"
	"strings"
)

// Dates are stored as int64 days since the Unix epoch (1970-01-01).
// Conversions use Howard Hinnant's proleptic-Gregorian civil algorithms,
// which are exact over the full SQL DATE range.

// Forever is the epoch-day encoding of 9999-12-31, used as the
// "until changed" end time of current rows, mirroring the convention
// temporal databases use for open-ended validity.
var Forever = MustDate(9999, 12, 31)

// CivilToDays converts a calendar date to epoch days.
func CivilToDays(y, m, d int) int64 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	var era int64
	if yy >= 0 {
		era = yy / 400
	} else {
		era = (yy - 399) / 400
	}
	yoe := yy - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1     // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468
}

// DaysToCivil converts epoch days to a calendar date.
func DaysToCivil(z int64) (y, m, d int) {
	z += 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	y = int(yy)
	if m <= 2 {
		y++
	}
	return
}

// MustDate returns the epoch days of y-m-d; it panics on an impossible
// calendar date and is intended for constants in tests and generators.
func MustDate(y, m, d int) int64 {
	days := CivilToDays(y, m, d)
	yy, mm, dd := DaysToCivil(days)
	if yy != y || mm != m || dd != d {
		panic(fmt.Sprintf("types.MustDate: invalid date %04d-%02d-%02d", y, m, d))
	}
	return days
}

// ParseDate parses 'YYYY-MM-DD' into epoch days.
func ParseDate(s string) (int64, error) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 3 {
		return 0, fmt.Errorf("invalid DATE literal %q (want YYYY-MM-DD)", s)
	}
	y, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	d, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, fmt.Errorf("invalid DATE literal %q (want YYYY-MM-DD)", s)
	}
	if m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, fmt.Errorf("invalid DATE literal %q: month or day out of range", s)
	}
	days := CivilToDays(y, m, d)
	yy, mm, dd := DaysToCivil(days)
	if yy != y || mm != m || dd != d {
		return 0, fmt.Errorf("invalid DATE literal %q: no such calendar day", s)
	}
	return days, nil
}

// FormatDate renders epoch days as 'YYYY-MM-DD'.
func FormatDate(days int64) string {
	y, m, d := DaysToCivil(days)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}
