package types

import "fmt"

// Tribool is SQL three-valued logic: True, False, or Unknown.
type Tribool uint8

// The three truth values of SQL predicates.
const (
	False Tribool = iota
	True
	Unknown
)

// TriboolOf lifts a Go bool into a Tribool.
func TriboolOf(b bool) Tribool {
	if b {
		return True
	}
	return False
}

// And is three-valued conjunction.
func (t Tribool) And(o Tribool) Tribool {
	if t == False || o == False {
		return False
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return True
}

// Or is three-valued disjunction.
func (t Tribool) Or(o Tribool) Tribool {
	if t == True || o == True {
		return True
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return False
}

// Not is three-valued negation.
func (t Tribool) Not() Tribool {
	switch t {
	case True:
		return False
	case False:
		return True
	}
	return Unknown
}

// Value converts the tribool to a SQL value (Unknown becomes NULL).
func (t Tribool) Value() Value {
	switch t {
	case True:
		return NewBool(true)
	case False:
		return NewBool(false)
	}
	return Null
}

// TriboolFromValue interprets a SQL value as a predicate result.
func TriboolFromValue(v Value) Tribool {
	if v.IsNull() {
		return Unknown
	}
	if v.Bool() || (v.Kind == KindInt && v.I != 0) {
		return True
	}
	return False
}

// Arith applies a SQL arithmetic operator (+, -, *, /) to two values.
// NULL operands yield NULL; DATE +/- INTEGER shifts by days (DB2-style
// date arithmetic at DATE granularity); DATE - DATE yields days.
func Arith(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if a.Kind == KindDate || b.Kind == KindDate {
		return dateArith(op, a, b)
	}
	if a.Kind == KindString || b.Kind == KindString {
		if op == "||" {
			return NewString(a.Text() + b.Text()), nil
		}
		return Null, fmt.Errorf("cannot apply %s to %s and %s", op, a.Kind, b.Kind)
	}
	if op == "||" {
		return NewString(a.Text() + b.Text()), nil
	}
	if a.Kind == KindFloat || b.Kind == KindFloat {
		af, bf := a.Float(), b.Float()
		switch op {
		case "+":
			return NewFloat(af + bf), nil
		case "-":
			return NewFloat(af - bf), nil
		case "*":
			return NewFloat(af * bf), nil
		case "/":
			if bf == 0 {
				return Null, fmt.Errorf("division by zero")
			}
			return NewFloat(af / bf), nil
		}
		return Null, fmt.Errorf("unknown arithmetic operator %q", op)
	}
	ai, bi := a.Int(), b.Int()
	switch op {
	case "+":
		return NewInt(ai + bi), nil
	case "-":
		return NewInt(ai - bi), nil
	case "*":
		return NewInt(ai * bi), nil
	case "/":
		if bi == 0 {
			return Null, fmt.Errorf("division by zero")
		}
		return NewInt(ai / bi), nil
	}
	return Null, fmt.Errorf("unknown arithmetic operator %q", op)
}

func dateArith(op string, a, b Value) (Value, error) {
	switch {
	case a.Kind == KindDate && b.Kind == KindDate:
		if op == "-" {
			return NewInt(a.I - b.I), nil
		}
		return Null, fmt.Errorf("cannot apply %s to two DATEs", op)
	case a.Kind == KindDate:
		switch op {
		case "+":
			return NewDate(a.I + b.Int()), nil
		case "-":
			return NewDate(a.I - b.Int()), nil
		}
	case b.Kind == KindDate:
		if op == "+" {
			return NewDate(b.I + a.Int()), nil
		}
	}
	return Null, fmt.Errorf("cannot apply %s to %s and %s", op, a.Kind, b.Kind)
}

// CompareOp evaluates a SQL comparison operator with 3VL semantics.
func CompareOp(op string, a, b Value) Tribool {
	c, ok := Compare(a, b)
	if !ok {
		return Unknown
	}
	switch op {
	case "=":
		return TriboolOf(c == 0)
	case "<>", "!=":
		return TriboolOf(c != 0)
	case "<":
		return TriboolOf(c < 0)
	case "<=":
		return TriboolOf(c <= 0)
	case ">":
		return TriboolOf(c > 0)
	case ">=":
		return TriboolOf(c >= 0)
	}
	return Unknown
}
