package proc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var p *Process
	if err := p.Killed(); err != nil {
		t.Fatalf("nil Killed = %v", err)
	}
	p.Kill(nil)
	p.SetStage("x")
	p.SetStrategy("MAX")
	p.AddRows(1)
	p.AddRowsScanned(1)
	p.AddRoutineCalls(1)
	p.AddCPDone(1)
	p.AddFragsDone(1)
	p.SetCPTotal(1)
	p.SetFragsTotal(1)
	p.SetWALPending(1)
	p.SetWorkers(1)
	p.WatchContext(context.Background())
	if p.KilledBy(errors.New("x")) {
		t.Fatal("nil KilledBy = true")
	}
	if s := p.Snapshot(); s.ID != 0 {
		t.Fatalf("nil Snapshot = %+v", s)
	}

	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry enabled")
	}
	if q := r.Begin("s", "k", "sql", "d", ""); q != nil {
		t.Fatalf("nil registry Begin = %v", q)
	}
	r.Finish(nil)
	if r.Kill(1, nil) {
		t.Fatal("nil registry Kill = true")
	}
	if r.List() != nil || r.Len() != 0 {
		t.Fatal("nil registry has entries")
	}
	r.SetDisabled(true)
}

func TestBeginFinishList(t *testing.T) {
	r := NewRegistry()
	a := r.Begin("embedded", "sequenced", "SELECT 1", "abc", "t1")
	b := r.Begin("embedded", "current", "SELECT 2", "def", "")
	if a.ID == b.ID || a.ID <= 0 || b.ID <= a.ID {
		t.Fatalf("IDs not increasing: %d %d", a.ID, b.ID)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	ls := r.List()
	if len(ls) != 2 || ls[0].ID != a.ID || ls[1].ID != b.ID {
		t.Fatalf("List = %+v", ls)
	}
	if ls[0].SQL != "SELECT 1" || ls[0].Digest != "abc" || ls[0].TraceID != "t1" {
		t.Fatalf("snapshot fields = %+v", ls[0])
	}
	r.Finish(a)
	r.Finish(a) // idempotent
	if r.Len() != 1 {
		t.Fatalf("Len after finish = %d", r.Len())
	}
	select {
	case <-a.Done():
	default:
		t.Fatal("Done not closed after Finish")
	}
	r.Finish(b)
	if r.Len() != 0 {
		t.Fatal("registry not empty after finishing all")
	}
}

func TestDisabled(t *testing.T) {
	r := NewRegistry()
	r.SetDisabled(true)
	if r.Enabled() {
		t.Fatal("Enabled after SetDisabled(true)")
	}
	if p := r.Begin("s", "k", "sql", "d", ""); p != nil {
		t.Fatalf("Begin while disabled = %v", p)
	}
	r.SetDisabled(false)
	if !r.Enabled() {
		t.Fatal("not Enabled after SetDisabled(false)")
	}
	if p := r.Begin("s", "k", "sql", "d", ""); p == nil {
		t.Fatal("Begin while enabled = nil")
	}
}

func TestKill(t *testing.T) {
	r := NewRegistry()
	p := r.Begin("s", "sequenced", "UPDATE ...", "d", "")
	if err := p.Killed(); err != nil {
		t.Fatalf("fresh process killed: %v", err)
	}
	if r.Kill(p.ID+100, nil) {
		t.Fatal("Kill of unknown pid = true")
	}
	if !r.Kill(p.ID, nil) {
		t.Fatal("Kill of live pid = false")
	}
	cause := p.Killed()
	if cause == nil || !errors.Is(cause, ErrQueryKilled) {
		t.Fatalf("cause = %v, want ErrQueryKilled", cause)
	}
	// Wrapping the cause through frames must stay recognizable.
	wrapped := fmt.Errorf("routine f: %w", fmt.Errorf("statement 3: %w", cause))
	if !p.KilledBy(wrapped) {
		t.Fatal("KilledBy(wrapped cause) = false")
	}
	if p.KilledBy(errors.New("unrelated")) {
		t.Fatal("KilledBy(unrelated) = true")
	}
	// First kill wins.
	p.Kill(errors.New("second"))
	if got := p.Killed(); !errors.Is(got, ErrQueryKilled) {
		t.Fatalf("second kill replaced cause: %v", got)
	}
	if !p.Snapshot().Killed {
		t.Fatal("snapshot not marked killed")
	}
	r.Finish(p)
}

func TestKillCustomCauseWrapped(t *testing.T) {
	r := NewRegistry()
	p := r.Begin("s", "k", "sql", "d", "")
	custom := errors.New("deadline")
	r.Kill(p.ID, custom)
	got := p.Killed()
	if !errors.Is(got, ErrQueryKilled) || !errors.Is(got, custom) {
		t.Fatalf("cause = %v, want both ErrQueryKilled and custom", got)
	}
}

func TestWatchContext(t *testing.T) {
	r := NewRegistry()
	p := r.Begin("s", "k", "sql", "d", "")
	ctx, cancel := context.WithCancelCause(context.Background())
	done := make(chan struct{})
	go func() { p.WatchContext(ctx); close(done) }()
	cause := errors.New("client went away")
	cancel(cause)
	<-done
	got := p.Killed()
	if !errors.Is(got, cause) {
		t.Fatalf("Killed = %v, want context cause", got)
	}
	if !p.KilledBy(fmt.Errorf("wrap: %w", got)) {
		t.Fatal("KilledBy(context cause) = false")
	}
	r.Finish(p)
}

func TestWatchContextExitsOnFinish(t *testing.T) {
	r := NewRegistry()
	p := r.Begin("s", "k", "sql", "d", "")
	ctx := context.Background() // never cancelled
	done := make(chan struct{})
	go func() { p.WatchContext(ctx); close(done) }()
	r.Finish(p)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watcher leaked past Finish")
	}
	if p.Killed() != nil {
		t.Fatal("finish killed the process")
	}
}

func TestSnapshotFractionsAndStages(t *testing.T) {
	r := NewRegistry()
	p := r.Begin("s", "sequenced", "sql", "d", "")
	s := p.Snapshot()
	if s.CPFraction != -1 || s.FragsFraction != -1 {
		t.Fatalf("fractions before totals: %v %v", s.CPFraction, s.FragsFraction)
	}
	p.SetCPTotal(4)
	p.SetFragsTotal(4)
	p.AddCPDone(1)
	p.AddFragsDone(2)
	s = p.Snapshot()
	if s.CPFraction != 0.25 || s.FragsFraction != 0.5 {
		t.Fatalf("fractions = %v %v", s.CPFraction, s.FragsFraction)
	}
	p.AddCPDone(100) // over-counting clamps at 1
	if f := p.Snapshot().CPFraction; f != 1 {
		t.Fatalf("clamped fraction = %v", f)
	}

	p.SetStage("translate")
	p.SetStage("execute")
	s = p.Snapshot()
	if s.Stage != "execute" {
		t.Fatalf("Stage = %q", s.Stage)
	}
	if len(s.Stages) != 2 || s.Stages[0].Name != "translate" || s.Stages[1].Name != "execute" {
		t.Fatalf("Stages = %+v", s.Stages)
	}
	r.Finish(p)
}

// TestConcurrentMirrors hammers one process from parallel workers while
// a reader snapshots, checking counter totals and that snapshots only
// ever see monotonically non-decreasing values.
func TestConcurrentMirrors(t *testing.T) {
	r := NewRegistry()
	p := r.Begin("s", "k", "sql", "d", "")
	const workers, per = 8, 1000
	stop := make(chan struct{})
	var prev Snapshot
	var monErr error
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := p.Snapshot()
			if s.Rows < prev.Rows || s.CPDone < prev.CPDone || s.RowsScanned < prev.RowsScanned {
				monErr = fmt.Errorf("counters regressed: %+v -> %+v", prev, s)
				return
			}
			prev = s
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.AddRows(1)
				p.AddRowsScanned(2)
				p.AddCPDone(1)
				p.AddFragsDone(1)
				p.AddRoutineCalls(1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	if monErr != nil {
		t.Fatal(monErr)
	}
	s := p.Snapshot()
	if s.Rows != workers*per || s.RowsScanned != 2*workers*per || s.CPDone != workers*per {
		t.Fatalf("totals = %+v", s)
	}
	r.Finish(p)
}
