// Package proc implements the in-flight statement registry: every
// statement entering the stratum registers a Process whose progress
// counters are updated from the engine hot path and the parallel MAX
// workers, and read concurrently by SHOW PROCESSLIST, the
// tau_stat_activity system table, the REPL and the /processlist
// telemetry endpoint. A Process also carries the cooperative-
// cancellation switch: KILL (or a cancelled client context) stores a
// cause, and the execution layers poll Killed at statement, scan,
// routine-call and fragment-chunk boundaries.
//
// The update path is lock-free — counter mirrors are single atomic
// adds and the kill check is one atomic pointer load — so the registry
// can stay always-on under the same <2% overhead discipline as the
// tracer (measured by taubench -exp procoverhead).
package proc

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueryKilled is the sentinel wrapped by every KILL-statement
// cancellation cause, so callers can distinguish an administrative
// kill (errors.Is(err, ErrQueryKilled)) from a client context
// cancellation (which surfaces the context's own cause).
var ErrQueryKilled = errors.New("query killed")

// StageElapsed is one entry of a process's per-stage time breakdown,
// in stage-entry order. The last entry is the in-progress stage, whose
// elapsed time is still growing.
type StageElapsed struct {
	Name string `json:"stage"`
	NS   int64  `json:"elapsed_ns"`
}

// Snapshot is a point-in-time copy of one process entry, safe to
// render or serialize after the process has finished. Fraction fields
// are -1 when the corresponding total is not yet known.
type Snapshot struct {
	ID          int64  `json:"pid"`
	Session     string `json:"session"`
	TraceID     string `json:"trace_id,omitempty"`
	Digest      string `json:"digest"`
	SQL         string `json:"statement"`
	Kind        string `json:"kind"`
	Strategy    string `json:"strategy,omitempty"`
	Stage       string `json:"stage"`
	StartUnixNS int64  `json:"start_unix_ns"`
	ElapsedNS   int64  `json:"elapsed_ns"`

	CPDone        int64   `json:"cp_done"`
	CPTotal       int64   `json:"cp_total"`
	CPFraction    float64 `json:"cp_fraction"`
	FragsDone     int64   `json:"fragments_done"`
	FragsTotal    int64   `json:"fragments_total"`
	FragsFraction float64 `json:"fragments_fraction"`
	Rows          int64   `json:"rows"`
	RowsScanned   int64   `json:"rows_scanned"`
	RoutineCalls  int64   `json:"routine_calls"`
	WALPending    int64   `json:"wal_pending"`
	Workers       int64   `json:"workers"`
	Killed        bool    `json:"killed"`

	Stages []StageElapsed `json:"stages,omitempty"`
}

// Process is one registered in-flight statement. All exported methods
// are nil-receiver safe so call sites need no registry-enabled checks:
// with tracking off every mirror and kill check degrades to a single
// nil comparison.
type Process struct {
	ID      int64
	Session string
	TraceID string
	Digest  string
	SQL     string // truncated statement text
	Kind    string
	Start   time.Time

	cpDone       atomic.Int64
	cpTotal      atomic.Int64
	fragsDone    atomic.Int64
	fragsTotal   atomic.Int64
	rows         atomic.Int64
	rowsScanned  atomic.Int64
	routineCalls atomic.Int64
	walPending   atomic.Int64
	workers      atomic.Int64

	strategy atomic.Pointer[string]
	killed   atomic.Pointer[error]

	done chan struct{}

	mu       sync.Mutex
	finished []StageElapsed // completed stages, entry order
	curStage string
	curSince time.Time
}

// Killed returns the cancellation cause if this process has been
// killed, nil otherwise. This is the hot-path check — one nil test
// plus one atomic load — polled at statement, scan, routine-call and
// fragment-chunk boundaries.
func (p *Process) Killed() error {
	if p == nil {
		return nil
	}
	if e := p.killed.Load(); e != nil {
		return *e
	}
	return nil
}

// Kill requests cooperative cancellation with the given cause (nil
// defaults to ErrQueryKilled). Only the first kill wins; the stored
// cause is exactly the error the execution layers return, so callers
// can match it with errors.Is.
func (p *Process) Kill(cause error) {
	if p == nil {
		return
	}
	if cause == nil {
		cause = fmt.Errorf("%w (pid %d)", ErrQueryKilled, p.ID)
	}
	p.killed.CompareAndSwap(nil, &cause)
}

// KilledBy reports whether err is (or wraps) this process's stored
// kill cause — the test execution layers use to tell a cancellation
// apart from an ordinary execution error carrying similar text.
func (p *Process) KilledBy(err error) bool {
	if p == nil || err == nil {
		return false
	}
	cause := p.Killed()
	return cause != nil && errors.Is(err, cause)
}

// Done is closed when the process is finished (deregistered), letting
// context watchers exit without leaking.
func (p *Process) Done() <-chan struct{} {
	if p == nil {
		return nil
	}
	return p.done
}

// WatchContext kills the process when ctx is cancelled before the
// process finishes, propagating the context's cause. Run it in its own
// goroutine; it exits as soon as either side resolves.
func (p *Process) WatchContext(ctx context.Context) {
	if p == nil {
		return
	}
	select {
	case <-ctx.Done():
		p.Kill(context.Cause(ctx))
	case <-p.done:
	}
}

// SetStage records entry into a named execution stage, closing the
// elapsed-time account of the previous one. Called a handful of times
// per statement, never per row.
func (p *Process) SetStage(name string) {
	if p == nil {
		return
	}
	now := time.Now()
	p.mu.Lock()
	if p.curStage != "" {
		p.finished = append(p.finished, StageElapsed{Name: p.curStage, NS: now.Sub(p.curSince).Nanoseconds()})
	}
	p.curStage, p.curSince = name, now
	p.mu.Unlock()
}

// SetStrategy publishes the translation strategy once it is chosen.
func (p *Process) SetStrategy(s string) {
	if p == nil {
		return
	}
	p.strategy.Store(&s)
}

// Counter mirrors: single atomic adds/stores, all nil-safe. The adds
// are batched at the call sites (whole scan, whole fragment chunk)
// rather than per row.

func (p *Process) AddRows(n int64) {
	if p != nil {
		p.rows.Add(n)
	}
}

func (p *Process) AddRowsScanned(n int64) {
	if p != nil {
		p.rowsScanned.Add(n)
	}
}

func (p *Process) AddRoutineCalls(n int64) {
	if p != nil {
		p.routineCalls.Add(n)
	}
}

func (p *Process) AddCPDone(n int64) {
	if p != nil {
		p.cpDone.Add(n)
	}
}

func (p *Process) AddFragsDone(n int64) {
	if p != nil {
		p.fragsDone.Add(n)
	}
}

func (p *Process) SetCPTotal(n int64) {
	if p != nil {
		p.cpTotal.Store(n)
	}
}

func (p *Process) SetFragsTotal(n int64) {
	if p != nil {
		p.fragsTotal.Store(n)
	}
}

func (p *Process) SetWALPending(n int64) {
	if p != nil {
		p.walPending.Store(n)
	}
}

func (p *Process) SetWorkers(n int64) {
	if p != nil {
		p.workers.Store(n)
	}
}

// Snapshot copies the process state at this instant. The returned
// value is detached: safe to hold, render and serialize after the
// process finishes.
func (p *Process) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	now := time.Now()
	s := Snapshot{
		ID:          p.ID,
		Session:     p.Session,
		TraceID:     p.TraceID,
		Digest:      p.Digest,
		SQL:         p.SQL,
		Kind:        p.Kind,
		StartUnixNS: p.Start.UnixNano(),
		ElapsedNS:   now.Sub(p.Start).Nanoseconds(),

		CPDone:       p.cpDone.Load(),
		CPTotal:      p.cpTotal.Load(),
		FragsDone:    p.fragsDone.Load(),
		FragsTotal:   p.fragsTotal.Load(),
		Rows:         p.rows.Load(),
		RowsScanned:  p.rowsScanned.Load(),
		RoutineCalls: p.routineCalls.Load(),
		WALPending:   p.walPending.Load(),
		Workers:      p.workers.Load(),
		Killed:       p.killed.Load() != nil,
	}
	if sp := p.strategy.Load(); sp != nil {
		s.Strategy = *sp
	}
	s.CPFraction = fraction(s.CPDone, s.CPTotal)
	s.FragsFraction = fraction(s.FragsDone, s.FragsTotal)
	p.mu.Lock()
	s.Stages = append(s.Stages, p.finished...)
	if p.curStage != "" {
		s.Stage = p.curStage
		s.Stages = append(s.Stages, StageElapsed{Name: p.curStage, NS: now.Sub(p.curSince).Nanoseconds()})
	}
	p.mu.Unlock()
	return s
}

func fraction(done, total int64) float64 {
	if total <= 0 {
		return -1
	}
	f := float64(done) / float64(total)
	if f > 1 {
		f = 1
	}
	return f
}

// Registry is the shared process table. A nil *Registry is a valid
// disabled registry: Begin returns nil and every downstream mirror
// degrades to a nil check.
type Registry struct {
	disabled atomic.Bool

	mu    sync.Mutex
	next  int64
	procs map[int64]*Process
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{procs: make(map[int64]*Process)}
}

// SetDisabled turns process tracking off (Begin returns nil) or back
// on. The switch exists for the A/A overhead measurement; production
// code leaves the registry on.
func (r *Registry) SetDisabled(off bool) {
	if r != nil {
		r.disabled.Store(off)
	}
}

// Enabled reports whether Begin would register anything — callers use
// it to skip snapshot-text rendering work when tracking is off.
func (r *Registry) Enabled() bool {
	return r != nil && !r.disabled.Load()
}

// Begin registers a new process and returns its entry, or nil when the
// registry is nil or disabled (callers pass the nil straight through —
// every Process method tolerates it).
func (r *Registry) Begin(session, kind, sql, digest, traceID string) *Process {
	if r == nil || r.disabled.Load() {
		return nil
	}
	p := &Process{
		Session: session,
		TraceID: traceID,
		Digest:  digest,
		SQL:     sql,
		Kind:    kind,
		Start:   time.Now(),
		done:    make(chan struct{}),
	}
	r.mu.Lock()
	r.next++
	p.ID = r.next
	r.procs[p.ID] = p
	r.mu.Unlock()
	return p
}

// Finish deregisters the process and releases any context watcher.
// Safe to call with nil and idempotent per process.
func (r *Registry) Finish(p *Process) {
	if r == nil || p == nil {
		return
	}
	r.mu.Lock()
	if _, live := r.procs[p.ID]; live {
		delete(r.procs, p.ID)
		close(p.done)
	}
	r.mu.Unlock()
}

// Kill requests cancellation of the process with the given ID,
// wrapping ErrQueryKilled (plus cause detail when provided). It
// reports whether such a process was in flight.
func (r *Registry) Kill(id int64, cause error) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	p := r.procs[id]
	r.mu.Unlock()
	if p == nil {
		return false
	}
	if cause == nil {
		cause = fmt.Errorf("%w (pid %d)", ErrQueryKilled, id)
	} else if !errors.Is(cause, ErrQueryKilled) {
		cause = fmt.Errorf("%w (pid %d): %w", ErrQueryKilled, id, cause)
	}
	p.Kill(cause)
	return true
}

// List snapshots every in-flight process, ordered by process ID.
func (r *Registry) List() []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	procs := make([]*Process, 0, len(r.procs))
	for _, p := range r.procs {
		procs = append(procs, p)
	}
	r.mu.Unlock()
	sort.Slice(procs, func(i, j int) bool { return procs[i].ID < procs[j].ID })
	out := make([]Snapshot, len(procs))
	for i, p := range procs {
		out[i] = p.Snapshot()
	}
	return out
}

// Len reports the number of in-flight processes.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.procs)
}
