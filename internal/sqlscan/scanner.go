// Package sqlscan tokenizes SQL/PSM source text: identifiers and
// keywords (case-insensitive), quoted identifiers, string/number/date
// literals, operators, and both comment styles (-- and /* */).
package sqlscan

import (
	"fmt"
	"strings"
)

// TokenKind classifies a token.
type TokenKind uint8

// Token kinds.
const (
	EOF TokenKind = iota
	Ident
	Keyword
	Number
	String
	Op
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string // keywords are uppercased; idents keep original case
	Pos  Pos
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line int
	Col  int
}

// String renders the position for error messages.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// keywords is the reserved-word set of the dialect. Identifiers that
// match (case-insensitively) are tokenized as Keyword with uppercase
// text.
var keywords = map[string]bool{}

func init() {
	// Only genuinely structural words are reserved; everything else
	// (type names, routine options, ATOMIC, ROW, ARRAY, CURRENT_DATE,
	// ...) is matched contextually by the parser so that ordinary
	// column names such as "name" or "data" stay usable.
	for _, w := range []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
		"DISTINCT", "ALL", "AS", "ON", "JOIN", "INNER", "LEFT",
		"UNION", "EXCEPT", "INTERSECT", "VALUES", "INSERT", "INTO", "UPDATE", "SET",
		"DELETE", "CREATE", "DROP", "TABLE", "VIEW", "ALTER", "ADD",
		"AND", "OR", "NOT", "NULL", "IS", "IN", "EXISTS", "BETWEEN", "LIKE", "CASE",
		"WHEN", "THEN", "ELSE", "END", "CAST", "TRUE", "FALSE",
		"FUNCTION", "PROCEDURE", "RETURNS", "RETURN", "BEGIN", "DECLARE",
		"DEFAULT", "IF", "ELSEIF", "WHILE", "DO", "REPEAT", "UNTIL", "LOOP", "FOR",
		"LEAVE", "ITERATE", "CALL", "CURSOR", "OPEN", "FETCH", "CLOSE", "HANDLER",
		"CONTINUE", "EXIT", "SIGNAL", "VALIDTIME", "NONSEQUENCED", "TRANSACTIONTIME",
		"OUT", "INOUT", "WITH", "EXPLAIN",
	} {
		keywords[w] = true
	}
}

// Scanner tokenizes an input string.
type Scanner struct {
	src  string
	off  int
	line int
	col  int
}

// New returns a Scanner over src.
func New(src string) *Scanner {
	return &Scanner{src: src, line: 1, col: 1}
}

func (s *Scanner) peekByte() byte {
	if s.off >= len(s.src) {
		return 0
	}
	return s.src[s.off]
}

func (s *Scanner) peekByteAt(i int) byte {
	if s.off+i >= len(s.src) {
		return 0
	}
	return s.src[s.off+i]
}

func (s *Scanner) advance() byte {
	c := s.src[s.off]
	s.off++
	if c == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return c
}

func (s *Scanner) pos() Pos { return Pos{Line: s.line, Col: s.col} }

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// skipTrivia consumes whitespace and comments.
func (s *Scanner) skipTrivia() error {
	for s.off < len(s.src) {
		c := s.peekByte()
		switch {
		case isSpace(c):
			s.advance()
		case c == '-' && s.peekByteAt(1) == '-':
			for s.off < len(s.src) && s.peekByte() != '\n' {
				s.advance()
			}
		case c == '/' && s.peekByteAt(1) == '*':
			start := s.pos()
			s.advance()
			s.advance()
			for {
				if s.off >= len(s.src) {
					return fmt.Errorf("%s: unterminated block comment", start)
				}
				if s.peekByte() == '*' && s.peekByteAt(1) == '/' {
					s.advance()
					s.advance()
					break
				}
				s.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (s *Scanner) Next() (Token, error) {
	if err := s.skipTrivia(); err != nil {
		return Token{}, err
	}
	pos := s.pos()
	if s.off >= len(s.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := s.peekByte()
	switch {
	case isIdentStart(c):
		start := s.off
		for s.off < len(s.src) && isIdentPart(s.peekByte()) {
			s.advance()
		}
		word := s.src[start:s.off]
		up := strings.ToUpper(word)
		if keywords[up] {
			return Token{Kind: Keyword, Text: up, Pos: pos}, nil
		}
		return Token{Kind: Ident, Text: word, Pos: pos}, nil
	case isDigit(c) || (c == '.' && isDigit(s.peekByteAt(1))):
		start := s.off
		seenDot := false
		for s.off < len(s.src) {
			c := s.peekByte()
			if isDigit(c) {
				s.advance()
			} else if c == '.' && !seenDot && isDigit(s.peekByteAt(1)) {
				seenDot = true
				s.advance()
			} else {
				break
			}
		}
		return Token{Kind: Number, Text: s.src[start:s.off], Pos: pos}, nil
	case c == '\'':
		s.advance()
		var b strings.Builder
		for {
			if s.off >= len(s.src) {
				return Token{}, fmt.Errorf("%s: unterminated string literal", pos)
			}
			ch := s.advance()
			if ch == '\'' {
				if s.peekByte() == '\'' { // escaped quote
					s.advance()
					b.WriteByte('\'')
					continue
				}
				break
			}
			b.WriteByte(ch)
		}
		return Token{Kind: String, Text: b.String(), Pos: pos}, nil
	case c == '"':
		s.advance()
		start := s.off
		for s.off < len(s.src) && s.peekByte() != '"' {
			s.advance()
		}
		if s.off >= len(s.src) {
			return Token{}, fmt.Errorf("%s: unterminated quoted identifier", pos)
		}
		word := s.src[start:s.off]
		s.advance()
		return Token{Kind: Ident, Text: word, Pos: pos}, nil
	default:
		// operators and punctuation
		two := ""
		if s.off+1 < len(s.src) {
			two = s.src[s.off : s.off+2]
		}
		switch two {
		case "<>", "<=", ">=", "!=", "||":
			s.advance()
			s.advance()
			return Token{Kind: Op, Text: two, Pos: pos}, nil
		}
		switch c {
		case '+', '-', '*', '/', '(', ')', ',', ';', '=', '<', '>', '.', ':':
			s.advance()
			return Token{Kind: Op, Text: string(c), Pos: pos}, nil
		}
		return Token{}, fmt.Errorf("%s: unexpected character %q", pos, string(c))
	}
}

// ScanAll tokenizes the whole input, ending with an EOF token.
func ScanAll(src string) ([]Token, error) {
	s := New(src)
	var out []Token
	for {
		t, err := s.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}
