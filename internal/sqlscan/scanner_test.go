package sqlscan

import "testing"

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestScanBasics(t *testing.T) {
	toks, err := ScanAll(`SELECT a, b2 FROM t WHERE x = 'it''s' AND y <= 3.14`)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{Keyword, "SELECT"}, {Ident, "a"}, {Op, ","}, {Ident, "b2"},
		{Keyword, "FROM"}, {Ident, "t"}, {Keyword, "WHERE"},
		{Ident, "x"}, {Op, "="}, {String, "it's"}, {Keyword, "AND"},
		{Ident, "y"}, {Op, "<="}, {Number, "3.14"}, {EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Fatalf("token %d: got (%v, %q), want (%v, %q)", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	toks, err := ScanAll("select SeLeCt SELECT")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks[:3] {
		if tok.Kind != Keyword || tok.Text != "SELECT" {
			t.Fatalf("expected uppercased keyword, got %+v", tok)
		}
	}
}

func TestNonReservedWordsAreIdents(t *testing.T) {
	// column-ish names that are keywords in other dialects
	for _, w := range []string{"name", "data", "date", "first", "rows", "language", "temporary", "row", "array", "atomic"} {
		toks, err := ScanAll(w)
		if err != nil {
			t.Fatal(err)
		}
		if toks[0].Kind != Ident {
			t.Errorf("%q should scan as identifier, got %v", w, toks[0].Kind)
		}
	}
}

func TestComments(t *testing.T) {
	toks, err := ScanAll(`
		-- line comment with SELECT keywords
		a /* block
		   comment */ b`)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("comments not skipped: %v", toks)
	}
	if _, err := ScanAll("a /* unterminated"); err == nil {
		t.Fatal("expected error for unterminated block comment")
	}
}

func TestOperators(t *testing.T) {
	toks, err := ScanAll(`<> <= >= != || + - * / ( ) , ; . < > = :`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<>", "<=", ">=", "!=", "||", "+", "-", "*", "/", "(", ")", ",", ";", ".", "<", ">", "=", ":"}
	for i, w := range want {
		if toks[i].Kind != Op || toks[i].Text != w {
			t.Fatalf("op %d: got %+v, want %q", i, toks[i], w)
		}
	}
}

func TestQuotedIdentifier(t *testing.T) {
	toks, err := ScanAll(`"Select"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != Ident || toks[0].Text != "Select" {
		t.Fatalf("quoted identifier: %+v", toks[0])
	}
	if _, err := ScanAll(`"unterminated`); err == nil {
		t.Fatal("expected error for unterminated quoted identifier")
	}
}

func TestStringErrors(t *testing.T) {
	if _, err := ScanAll(`'unterminated`); err == nil {
		t.Fatal("expected error")
	}
}

func TestPositions(t *testing.T) {
	toks, err := ScanAll("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("first token pos: %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("second token pos: %v", toks[1].Pos)
	}
	if toks[1].Pos.String() != "2:3" {
		t.Fatalf("pos rendering: %s", toks[1].Pos)
	}
}

func TestNumbers(t *testing.T) {
	toks, err := ScanAll("1 2.5 .5 10.")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "1" || toks[1].Text != "2.5" || toks[2].Text != ".5" {
		t.Fatalf("numbers: %v", toks)
	}
	// "10." scans as number 10 then dot
	if toks[3].Text != "10" || toks[4].Text != "." {
		t.Fatalf("trailing dot: %v %v", toks[3], toks[4])
	}
}

func TestUnexpectedCharacter(t *testing.T) {
	if _, err := ScanAll("a ? b"); err == nil {
		t.Fatal("expected error for unexpected character")
	}
}
