package enginetest

import "testing"

// TestEngineScenarios runs the full declarative scenario corpus over
// the axis grid. Subtests are <scenario>/<strategy>-<par>-<durability>,
// so CI can filter one durability axis with e.g.
// -run 'TestEngineScenarios/.*/.*-mem$'.
func TestEngineScenarios(t *testing.T) {
	Run(t, Scenarios)
}
