package enginetest

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"taupsm"
)

// TestBitemporalHistoryProperty drives two databases — one per
// sequenced-slicing strategy — through the same fixed-seed stream of
// random valid-time DML interleaved with clock shifts, and asserts two
// invariants of a bitemporal table:
//
//  1. Transaction time is append-only: the multiset of closed belief
//     versions (tt_end_time in the past) only ever grows.
//  2. Every sampled audit snapshot — "what did we believe on date X
//     about date Y" — returns the same coalesced rows under MAX and
//     PERST.
func TestBitemporalHistoryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const ddl = `CREATE TABLE bt (id CHAR(4), title CHAR(20)) AS VALIDTIME AS TRANSACTIONTIME`

	open := func(s taupsm.Strategy) *taupsm.DB {
		db := taupsm.Open()
		db.SetStrategy(s)
		db.SetNow(2011, 1, 1)
		db.MustExec(ddl)
		return db
	}
	maxDB := open(taupsm.Max)
	perstDB := open(taupsm.PerStatement)
	defer maxDB.Close()
	defer perstDB.Close()

	ids := []string{"p1", "p2", "p3"}
	titles := []string{"engineer", "manager", "director", "intern"}
	day := func(n int) (int, int) { return 1 + (n-1)/28, 1 + (n-1)%28 } // month, day within 2011
	randPeriod := func() (string, string) {
		b := 1 + rng.Intn(300)
		e := b + 1 + rng.Intn(36) // stays within day()'s 12×28-day calendar
		bm, bd := day(b)
		em, ed := day(e)
		return date(2011, bm, bd), date(2011, em, ed)
	}

	closedSet := func(db *taupsm.DB) map[string]int {
		res, err := db.Query(`NONSEQUENCED TRANSACTIONTIME SELECT id, title, begin_time, end_time, tt_begin_time, tt_end_time FROM bt`)
		if err != nil {
			t.Fatalf("audit scan: %v", err)
		}
		out := map[string]int{}
		for _, r := range Rows(res) {
			if !strings.HasSuffix(r, "|9999-12-31") {
				out[r]++
			}
		}
		return out
	}

	clock := 1 // day number within 2011
	var prevMax, prevPerst map[string]int
	for step := 0; step < 60; step++ {
		clock += 1 + rng.Intn(4)
		if clock > 330 {
			break
		}
		m, d := day(clock)
		maxDB.SetNow(2011, m, d)
		perstDB.SetNow(2011, m, d)

		id := ids[rng.Intn(len(ids))]
		title := titles[rng.Intn(len(titles))]
		b, e := randPeriod()
		var stmt string
		switch rng.Intn(5) {
		case 0:
			stmt = fmt.Sprintf(`VALIDTIME (%s, %s) INSERT INTO bt VALUES ('%s', '%s')`, b, e, id, title)
		case 1:
			stmt = fmt.Sprintf(`VALIDTIME (%s, %s) UPDATE bt SET title = '%s' WHERE id = '%s'`, b, e, title, id)
		case 2:
			stmt = fmt.Sprintf(`VALIDTIME (%s, %s) DELETE FROM bt WHERE id = '%s'`, b, e, id)
		case 3:
			stmt = fmt.Sprintf(`UPDATE bt SET title = '%s' WHERE id = '%s'`, title, id)
		case 4:
			stmt = fmt.Sprintf(`INSERT INTO bt VALUES ('%s', '%s')`, id, title)
		}
		if _, err := maxDB.Exec(stmt); err != nil {
			t.Fatalf("step %d MAX (%s): %v", step, stmt, err)
		}
		if _, err := perstDB.Exec(stmt); err != nil {
			t.Fatalf("step %d PERST (%s): %v", step, stmt, err)
		}

		// Invariant 1: closed belief versions are never lost or edited.
		for name, db := range map[string]*taupsm.DB{"MAX": maxDB, "PERST": perstDB} {
			cur := closedSet(db)
			prev := prevMax
			if name == "PERST" {
				prev = prevPerst
			}
			for row, n := range prev {
				if cur[row] < n {
					t.Fatalf("step %d %s: closed version lost after %q:\n%s (had %d, now %d)",
						step, name, stmt, row, n, cur[row])
				}
			}
			if name == "MAX" {
				prevMax = cur
			} else {
				prevPerst = cur
			}
		}
	}

	// Invariant 2: sampled audit snapshots agree across strategies.
	maxDB.CoalesceResults = true
	perstDB.CoalesceResults = true
	for i := 0; i < 40; i++ {
		xm, xd := day(1 + rng.Intn(330)) // belief date X
		ym, yd := day(1 + rng.Intn(336)) // about date Y
		q := fmt.Sprintf(`VALIDTIME (%s) AND TRANSACTIONTIME (%s) SELECT id, title FROM bt`,
			date(2011, ym, yd), date(2011, xm, xd))
		mres, err := maxDB.Query(q)
		if err != nil {
			t.Fatalf("MAX %s: %v", q, err)
		}
		pres, err := perstDB.Query(q)
		if err != nil {
			t.Fatalf("PERST %s: %v", q, err)
		}
		if SortedRows(mres) != SortedRows(pres) {
			t.Errorf("snapshot disagreement for %s:\nMAX:\n%s\nPERST:\n%s", q, SortedRows(mres), SortedRows(pres))
		}
	}
}
