package enginetest

import (
	"strings"
	"testing"

	"taupsm"
	"taupsm/internal/engine"
	"taupsm/internal/taubench"
)

// The shared corpus loaders. Every test that runs the 16-query
// benchmark corpus — differential recovery, the batched-execution
// property, the analyzer agreement suite — goes through these two
// helpers instead of wiring its own.

// LoadCorpus loads the benchmark dataset and every corpus query's
// routines into db, with the benchmark runner's fixed clock.
func LoadCorpus(tb testing.TB, db *taupsm.DB, spec taubench.Spec) {
	tb.Helper()
	db.SetNow(2011, 1, 1)
	if _, err := taubench.Load(db, spec); err != nil {
		tb.Fatalf("load: %v", err)
	}
	for _, q := range taubench.Queries() {
		if _, err := db.Exec(q.Routines); err != nil {
			tb.Fatalf("%s routines: %v", q.Name, err)
		}
	}
}

// CorpusEngine loads the benchmark schema and one query's routines
// into a bare engine (no stratum, no CREATE-time checks).
func CorpusEngine(tb testing.TB, routines string) *engine.DB {
	tb.Helper()
	e := engine.New()
	if _, err := e.ExecScript(taubench.Schema); err != nil {
		tb.Fatalf("schema: %v", err)
	}
	if strings.TrimSpace(routines) != "" {
		if _, err := e.ExecScript(routines); err != nil {
			tb.Fatalf("routines: %v", err)
		}
	}
	return e
}
