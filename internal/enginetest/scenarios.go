package enginetest

// Scenarios is the declarative scenario corpus the runner executes
// over the full axis grid. Add new coverage here: a scenario written
// once runs on MAX × PERST, serial × parallel, in-memory × persistent
// × crash-recovered, with automatic cross-axis row agreement.

var Scenarios = []Scenario{
	{
		// Harness sanity: the classic valid-time lifecycle, as a
		// baseline every axis must agree on.
		Name: "validtime-basics",
		Now:  Clock{2011, 1, 1},
		Setup: []Step{
			{Exec: `CREATE TABLE item (id CHAR(4), title CHAR(20)) AS VALIDTIME`},
			{Exec: `INSERT INTO item VALUES ('i1', 'Book')`},
			{SetNow: &Clock{2011, 3, 1}, Exec: `UPDATE item SET title = 'Tome' WHERE id = 'i1'`},
		},
		Steps: []Step{
			{Query: `SELECT title FROM item`, Expect: []string{"Tome"}},
			{Query: `VALIDTIME (DATE '2011-01-01', DATE '2011-06-01') SELECT title FROM item`,
				Coalesce: true,
				Expect: []string{
					"2011-01-01|2011-03-01|Book",
					"2011-03-01|2011-06-01|Tome",
				}},
		},
	},
	{
		// The tentpole acceptance scenario: a bitemporal table built by
		// sequenced valid-time DML, audited with "what did we believe on
		// date X about date Y" queries.
		Name: "bitemporal-audit",
		Now:  Clock{2011, 1, 10},
		Setup: []Step{
			{Exec: `CREATE TABLE position (id CHAR(4), title CHAR(20)) AS VALIDTIME AS TRANSACTIONTIME`},
			// Recorded on Jan 10: p1 is an engineer from Jan through June.
			{Exec: `VALIDTIME (DATE '2011-01-01', DATE '2011-07-01') INSERT INTO position VALUES ('p1', 'engineer')`},
			// Recorded on Feb 10: correction — p1 became a manager on Mar 1.
			{SetNow: &Clock{2011, 2, 10},
				Exec: `VALIDTIME (DATE '2011-03-01', DATE '2011-07-01') UPDATE position SET title = 'manager' WHERE id = 'p1'`},
		},
		Steps: []Step{
			// Current state, asked on Apr 1.
			{SetNow: &Clock{2011, 4, 1},
				Query: `SELECT title FROM position WHERE id = 'p1'`, Expect: []string{"manager"}},
			// Today's belief about the whole year. The plan must show the
			// bitemporal table as sliced and temporally read.
			{Query: `VALIDTIME (DATE '2011-01-01', DATE '2012-01-01') SELECT title FROM position`,
				Coalesce:      true,
				ExpectExplain: []string{"kind|sequenced", "temporal_tables|position"},
				Expect: []string{
					"2011-01-01|2011-03-01|engineer",
					"2011-03-01|2011-07-01|manager",
				}},
			// What did we believe on Jan 15 about May 1? (Before the
			// correction was recorded: still an engineer.)
			{Query: `VALIDTIME (DATE '2011-05-01') AND TRANSACTIONTIME (DATE '2011-01-15') SELECT title FROM position`,
				Coalesce: true,
				Expect:   []string{"2011-05-01|2011-05-02|engineer"}},
			// What did we believe on Mar 15 about May 1? (After it.)
			{Query: `VALIDTIME (DATE '2011-05-01') AND TRANSACTIONTIME (DATE '2011-03-15') SELECT title FROM position`,
				Coalesce: true,
				Expect:   []string{"2011-05-01|2011-05-02|manager"}},
			// How did our belief about today evolve? Transaction-time
			// slice with valid time pinned to the current instant.
			{Query: `TRANSACTIONTIME (DATE '2011-01-01', DATE '2011-05-01') SELECT title FROM position`,
				Coalesce: true,
				Expect: []string{
					"2011-01-10|2011-02-10|engineer",
					"2011-02-10|2011-05-01|manager",
				}},
			// The raw assertion history, both periods visible.
			{Query: `NONSEQUENCED TRANSACTIONTIME SELECT title, begin_time, end_time, tt_begin_time, tt_end_time FROM position`,
				Expect: []string{
					"engineer|2011-01-01|2011-07-01|2011-01-10|2011-02-10",
					"engineer|2011-01-01|2011-03-01|2011-02-10|9999-12-31",
					"manager|2011-03-01|2011-07-01|2011-02-10|9999-12-31",
				}},
		},
	},
	{
		// Schema migration: a valid-time table upgraded in place with
		// ALTER TABLE ... ADD TRANSACTIONTIME, then corrected — the
		// audit distinguishes pre- and post-migration beliefs.
		Name: "bitemporal-migration",
		Now:  Clock{2011, 1, 5},
		Setup: []Step{
			{Exec: `CREATE TABLE job (id CHAR(4), title CHAR(20)) AS VALIDTIME`},
			{Exec: `VALIDTIME (DATE '2011-01-01', DATE '2011-06-01') INSERT INTO job VALUES ('p1', 'engineer')`},
			// Migration on Feb 10: existing versions become believed
			// from the migration instant on.
			{SetNow: &Clock{2011, 2, 10}, Exec: `ALTER TABLE job ADD TRANSACTIONTIME`},
			// Post-migration correction on Mar 15.
			{SetNow: &Clock{2011, 3, 15},
				Exec: `VALIDTIME (DATE '2011-04-01', DATE '2011-06-01') UPDATE job SET title = 'manager' WHERE id = 'p1'`},
		},
		Steps: []Step{
			{SetNow: &Clock{2011, 5, 1},
				Query: `SELECT title FROM job`, Expect: []string{"manager"}},
			// Belief on Feb 20 (post-migration, pre-correction) about May 1.
			{Query: `VALIDTIME (DATE '2011-05-01') AND TRANSACTIONTIME (DATE '2011-02-20') SELECT title FROM job`,
				Coalesce: true,
				Expect:   []string{"2011-05-01|2011-05-02|engineer"}},
			// Today's belief about May 1.
			{Query: `VALIDTIME (DATE '2011-05-01') SELECT title FROM job`,
				Coalesce: true,
				Expect:   []string{"2011-05-01|2011-05-02|manager"}},
			{Query: `NONSEQUENCED TRANSACTIONTIME SELECT title, begin_time, end_time, tt_begin_time, tt_end_time FROM job`,
				Expect: []string{
					"engineer|2011-01-01|2011-06-01|2011-02-10|2011-03-15",
					"engineer|2011-01-01|2011-04-01|2011-03-15|9999-12-31",
					"manager|2011-04-01|2011-06-01|2011-03-15|9999-12-31",
				}},
		},
	},
	{
		// Mixed-dimension slicing: one statement reaching a valid-time
		// and a transaction-time table slices the dimension it names and
		// pins the other table to the current context.
		Name: "mixed-dimension-slicing",
		Now:  Clock{2024, 1, 1},
		Setup: []Step{
			{Exec: `CREATE TABLE account (id CHAR(10), balance FLOAT) AS TRANSACTIONTIME`},
			{Exec: `INSERT INTO account VALUES ('a1', 100.0)`},
			{Exec: `CREATE TABLE rate (id CHAR(10), r FLOAT) AS VALIDTIME`},
			{Exec: `VALIDTIME (DATE '2024-01-01', DATE '2024-03-01') INSERT INTO rate VALUES ('a1', 0.05)`},
			{SetNow: &Clock{2024, 2, 1}, Exec: `UPDATE account SET balance = 150.0 WHERE id = 'a1'`},
		},
		Steps: []Step{
			// Valid-time slice: rate is sliced, account contributes its
			// currently believed balance.
			{SetNow: &Clock{2024, 2, 15},
				Query:    `VALIDTIME (DATE '2024-01-15', DATE '2024-02-15') SELECT r.r, a.balance FROM rate r, account a WHERE a.id = r.id`,
				Coalesce: true,
				Expect:   []string{"2024-01-15|2024-02-15|0.05|150.0"}},
			// Transaction-time slice: account's recorded history is
			// sliced, rate contributes its currently valid rate.
			{Query: `TRANSACTIONTIME (DATE '2024-01-01', DATE '2024-03-01') SELECT a.balance, r.r FROM account a, rate r WHERE a.id = r.id`,
				Coalesce: true,
				Expect: []string{
					"2024-01-01|2024-02-01|100.0|0.05",
					"2024-02-01|2024-03-01|150.0|0.05",
				}},
		},
	},
	{
		// The still-invalid forms: transaction time stays
		// system-maintained and append-only on bitemporal tables too.
		Name: "bitemporal-rejections",
		Now:  Clock{2011, 1, 10},
		Setup: []Step{
			{Exec: `CREATE TABLE position (id CHAR(4), title CHAR(20)) AS VALIDTIME AS TRANSACTIONTIME`},
			{Exec: `VALIDTIME (DATE '2011-01-01', DATE '2011-07-01') INSERT INTO position VALUES ('p1', 'engineer')`},
		},
		Steps: []Step{
			// Manual transaction timestamps.
			{Exec: `NONSEQUENCED VALIDTIME INSERT INTO position (id, title, begin_time, end_time, tt_begin_time, tt_end_time)
				VALUES ('p2', 'intern', DATE '2011-01-01', DATE '2011-02-01', DATE '2000-01-01', DATE '2001-01-01')`,
				ExpectErr: "system-maintained"},
			// Rewriting the recorded past.
			{Exec: `TRANSACTIONTIME (DATE '2011-01-01', DATE '2011-02-01') DELETE FROM position`,
				ExpectErr: "audit past"},
			// Modifications always apply to the current belief.
			{Exec: `VALIDTIME (DATE '2011-02-01', DATE '2011-03-01') AND TRANSACTIONTIME (DATE '2011-01-05') DELETE FROM position`,
				ExpectErr: "current belief"},
			// Nonsequenced period surgery is insert-only on bitemporal tables.
			{Exec: `NONSEQUENCED VALIDTIME DELETE FROM position WHERE id = 'p1'`,
				ExpectErr: "only top-level INSERT"},
			// The table is still intact and queryable afterwards.
			{Query: `SELECT title FROM position`, Expect: []string{"engineer"}},
		},
	},
}
