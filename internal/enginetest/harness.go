// Package enginetest is the declarative cross-axis test harness: a
// scenario is data — setup SQL, steps with queries and expected rows
// or errors — and one runner executes every scenario across the full
// axis grid: sequenced-slicing strategy (MAX × PERST) × parallelism
// (serial × parallel) × durability (in-memory × persistent ×
// crash-recovered). Every query step's row multiset is additionally
// checked for cross-axis agreement, so a scenario written once is born
// covered on every execution path the stratum has.
//
// To add coverage, append a Scenario to Scenarios in scenarios.go; the
// runner does the rest. Use Skip predicates to carve out axis points a
// scenario cannot run on (with the reason as the return value), and
// Coalesce on steps whose sequenced results fragment differently
// between strategies.
package enginetest

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"taupsm"
	"taupsm/internal/wal"
)

// Durability is the persistence axis of the grid.
type Durability int

const (
	// Memory runs against a purely in-memory database.
	Memory Durability = iota
	// Persistent runs against a database backed by an in-memory WAL
	// filesystem, so every statement flows through the effect journal.
	Persistent
	// Recovered runs the setup against a persistent database, then
	// checkpoints, simulates a crash, and runs the steps against the
	// database recovered from snapshot + WAL.
	Recovered
)

func (d Durability) String() string {
	switch d {
	case Persistent:
		return "persist"
	case Recovered:
		return "recovered"
	}
	return "mem"
}

// Axis is one point of the execution grid.
type Axis struct {
	Strategy    taupsm.Strategy
	Parallelism int
	Durability  Durability
}

// Name renders the axis as a subtest-name segment, ending in the
// durability token so CI can filter per durability axis
// (-run 'TestEngineScenarios/.*/.*-mem$' and friends).
func (a Axis) Name() string {
	s := "max"
	if a.Strategy == taupsm.PerStatement {
		s = "perst"
	}
	p := "serial"
	if a.Parallelism > 1 {
		p = "parallel"
	}
	return s + "-" + p + "-" + a.Durability.String()
}

// Grid returns every axis combination the runner covers.
func Grid() []Axis {
	var out []Axis
	for _, st := range []taupsm.Strategy{taupsm.Max, taupsm.PerStatement} {
		for _, par := range []int{1, 4} {
			for _, d := range []Durability{Memory, Persistent, Recovered} {
				out = append(out, Axis{Strategy: st, Parallelism: par, Durability: d})
			}
		}
	}
	return out
}

// Clock is a calendar date for SetNow.
type Clock struct{ Year, Month, Day int }

// Step is one statement of a scenario.
type Step struct {
	// Exec is a statement executed for effect.
	Exec string
	// Query is a statement whose rows are checked — against Expect when
	// given, and for cross-axis agreement always. Mutually exclusive
	// with Exec.
	Query string
	// Expect is the expected rows, each rendered "v1|v2|...". Compared
	// as a multiset unless Ordered.
	Expect []string
	// Ordered makes Expect (and the cross-axis check) order-sensitive.
	Ordered bool
	// ExpectErr requires the statement to fail with an error containing
	// this substring.
	ExpectErr string
	// ExpectExplain lists substrings EXPLAIN of this statement must
	// contain on every axis — keep expectations axis-independent
	// (table names, dimension facts), not strategy- or cache-dependent.
	ExpectExplain []string
	// Coalesce evaluates the query with CoalesceResults on, so MAX's
	// per-constant-period rows and PERST's per-fragment rows converge
	// to the same canonical periods.
	Coalesce bool
	// SetNow advances the database clock before the statement runs.
	SetNow *Clock
	// Skip returns a non-empty reason to skip this step on an axis.
	Skip func(Axis) string
}

// Scenario is one named, self-contained test case.
type Scenario struct {
	Name string
	// Now is the initial clock (defaults to 2011-01-01, the benchmark
	// runner's fixed date).
	Now Clock
	// Setup steps create the schema and initial data (usually Exec
	// statements, with SetNow shifts to build temporal history). On the
	// Recovered axis they run before the simulated crash; Steps run
	// after recovery.
	Setup []Step
	// Steps run in order on every axis.
	Steps []Step
	// Skip returns a non-empty reason to skip an entire axis.
	Skip func(Axis) string
}

// Run executes every scenario over the full axis grid. Subtests are
// named <scenario>/<strategy>-<parallelism>-<durability>.
func Run(t *testing.T, scenarios []Scenario) {
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) { runScenario(t, sc) })
	}
}

func setNow(db *taupsm.DB, c Clock) {
	if c == (Clock{}) {
		c = Clock{2011, 1, 1}
	}
	db.SetNow(c.Year, c.Month, c.Day)
}

// finalClock is the clock the setup leaves the database at; the
// Recovered axis restores it after the crash (session state is not
// durable).
func finalClock(sc Scenario) Clock {
	c := sc.Now
	if c == (Clock{}) {
		c = Clock{2011, 1, 1}
	}
	for _, st := range sc.Setup {
		if st.SetNow != nil {
			c = *st.SetNow
		}
	}
	return c
}

// openAxis builds the database for one axis point, with the scenario's
// setup applied (pre-crash on the Recovered axis).
func openAxis(t *testing.T, sc Scenario, ax Axis) *taupsm.DB {
	t.Helper()
	apply := func(db *taupsm.DB) {
		setNow(db, sc.Now)
		for i, st := range sc.Setup {
			runStep(t, db, i, st, ax)
		}
	}
	var db *taupsm.DB
	switch ax.Durability {
	case Memory:
		db = taupsm.Open()
		apply(db)
	case Persistent:
		d, err := taupsm.OpenFS(wal.NewMemFS())
		if err != nil {
			t.Fatalf("open persistent: %v", err)
		}
		apply(d)
		db = d
	case Recovered:
		fs := wal.NewMemFS()
		pre, err := taupsm.OpenFS(fs)
		if err != nil {
			t.Fatalf("open pre-crash: %v", err)
		}
		apply(pre)
		if err := pre.Checkpoint(); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		pre.Close()
		rec, err := taupsm.OpenFS(fs.CrashImage())
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		// The clock is session state, not durable state.
		setNow(rec, finalClock(sc))
		db = rec
	}
	db.SetStrategy(ax.Strategy)
	db.SetParallelism(ax.Parallelism)
	return db
}

// runScenario executes the scenario on every axis and then checks that
// each query step returned the same rows everywhere it ran.
func runScenario(t *testing.T, sc Scenario) {
	type axisRows struct {
		axis string
		rows string
	}
	agreement := map[int][]axisRows{}
	for _, ax := range Grid() {
		ax := ax
		t.Run(ax.Name(), func(t *testing.T) {
			if sc.Skip != nil {
				if why := sc.Skip(ax); why != "" {
					t.Skip(why)
				}
			}
			db := openAxis(t, sc, ax)
			defer db.Close()
			for i, st := range sc.Steps {
				rows, ok := runStep(t, db, i, st, ax)
				if ok {
					agreement[i] = append(agreement[i], axisRows{ax.Name(), rows})
				}
			}
		})
	}
	for i, results := range agreement {
		for _, r := range results[1:] {
			if r.rows != results[0].rows {
				t.Errorf("step %d: axis %s disagrees with %s\n--- %s\n%s\n--- %s\n%s",
					i, r.axis, results[0].axis, results[0].axis, results[0].rows, r.axis, r.rows)
			}
		}
	}
}

// runStep executes one step; for a successful query it returns the
// canonical row rendering for the cross-axis agreement check.
func runStep(t *testing.T, db *taupsm.DB, i int, st Step, ax Axis) (string, bool) {
	t.Helper()
	if st.SetNow != nil {
		db.SetNow(st.SetNow.Year, st.SetNow.Month, st.SetNow.Day)
	}
	if st.Skip != nil {
		if why := st.Skip(ax); why != "" {
			return "", false
		}
	}
	src := st.Exec
	isQuery := st.Query != ""
	if isQuery {
		src = st.Query
	}
	if src == "" {
		return "", false
	}
	if st.Coalesce {
		db.CoalesceResults = true
		defer func() { db.CoalesceResults = false }()
	}
	if len(st.ExpectExplain) > 0 {
		e, err := db.Explain(src)
		if err != nil {
			t.Fatalf("step %d EXPLAIN (%s): %v", i, src, err)
		}
		plan := strings.Join(Rows(e.Result()), "\n")
		for _, want := range st.ExpectExplain {
			if !strings.Contains(plan, want) {
				t.Errorf("step %d (%s): EXPLAIN missing %q:\n%s", i, src, want, plan)
			}
		}
	}
	var res *taupsm.Result
	var err error
	if isQuery {
		res, err = db.Query(src)
	} else {
		_, err = db.Exec(src)
	}
	if st.ExpectErr != "" {
		if err == nil {
			t.Errorf("step %d (%s): expected error containing %q, got none", i, src, st.ExpectErr)
		} else if !strings.Contains(err.Error(), st.ExpectErr) {
			t.Errorf("step %d (%s): error %q does not contain %q", i, src, err, st.ExpectErr)
		}
		return "", false
	}
	if err != nil {
		t.Fatalf("step %d (%s): %v", i, src, err)
	}
	if !isQuery {
		return "", false
	}
	rows := Rows(res)
	if !st.Ordered {
		sort.Strings(rows)
	}
	if st.Expect != nil {
		want := append([]string(nil), st.Expect...)
		if !st.Ordered {
			sort.Strings(want)
		}
		if strings.Join(rows, "\n") != strings.Join(want, "\n") {
			t.Errorf("step %d (%s):\ngot  %v\nwant %v", i, src, rows, want)
		}
	}
	return strings.Join(rows, "\n"), true
}

// Rows renders a result one line per row, values joined with "|".
func Rows(res *taupsm.Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		var b strings.Builder
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		out = append(out, b.String())
	}
	return out
}

// RenderRows renders a result in result order, one line per row —
// the order-sensitive canonical form.
func RenderRows(res *taupsm.Result) string {
	var b strings.Builder
	for _, r := range Rows(res) {
		b.WriteString(r)
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedRows canonicalizes a result as an order-insensitive multiset.
func SortedRows(res *taupsm.Result) string {
	rows := Rows(res)
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

// date renders a Clock as a SQL DATE literal — a convenience for
// scenario authors.
func date(y, m, d int) string { return fmt.Sprintf("DATE '%04d-%02d-%02d'", y, m, d) }
