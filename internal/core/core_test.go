package core

import (
	"errors"
	"strings"
	"testing"

	"taupsm/internal/sqlast"
	"taupsm/internal/sqlparser"
)

// fakeInfo is a SchemaInfo for translator unit tests, with no engine.
type fakeInfo struct {
	temporal    map[string]bool
	transaction map[string]bool
	bitemporal  map[string]bool
	tables      map[string][]string
	fns         map[string]*sqlast.CreateFunctionStmt
	procs       map[string]*sqlast.CreateProcedureStmt
}

func newFakeInfo() *fakeInfo {
	return &fakeInfo{
		temporal: map[string]bool{},
		tables:   map[string][]string{},
		fns:      map[string]*sqlast.CreateFunctionStmt{},
		procs:    map[string]*sqlast.CreateProcedureStmt{},
	}
}

func (f *fakeInfo) addTable(name string, temporalTable bool, cols ...string) {
	if temporalTable {
		cols = append(cols, "begin_time", "end_time")
	}
	f.tables[strings.ToLower(name)] = cols
	f.temporal[strings.ToLower(name)] = temporalTable
}

func (f *fakeInfo) addBitemporalTable(name string, cols ...string) {
	cols = append(cols, "begin_time", "end_time", "tt_begin_time", "tt_end_time")
	k := strings.ToLower(name)
	f.tables[k] = cols
	f.temporal[k] = true
	if f.transaction == nil {
		f.transaction = map[string]bool{}
	}
	f.transaction[k] = true
	if f.bitemporal == nil {
		f.bitemporal = map[string]bool{}
	}
	f.bitemporal[k] = true
}

func (f *fakeInfo) addRoutine(t *testing.T, src string) {
	t.Helper()
	s, err := sqlparser.ParseStatement(src)
	if err != nil {
		t.Fatalf("routine parse: %v", err)
	}
	switch d := s.(type) {
	case *sqlast.CreateFunctionStmt:
		f.fns[strings.ToLower(d.Name)] = d
	case *sqlast.CreateProcedureStmt:
		f.procs[strings.ToLower(d.Name)] = d
	default:
		t.Fatalf("not a routine: %T", s)
	}
}

func (f *fakeInfo) IsTemporalTable(name string) bool { return f.temporal[strings.ToLower(name)] }
func (f *fakeInfo) IsTable(name string) bool {
	_, ok := f.tables[strings.ToLower(name)]
	return ok
}
func (f *fakeInfo) Function(name string) *sqlast.CreateFunctionStmt {
	return f.fns[strings.ToLower(name)]
}
func (f *fakeInfo) Procedure(name string) *sqlast.CreateProcedureStmt {
	return f.procs[strings.ToLower(name)]
}
func (f *fakeInfo) TableColumns(name string) []string { return f.tables[strings.ToLower(name)] }

func (f *fakeInfo) IsTransactionTable(name string) bool {
	return f.transaction[strings.ToLower(name)]
}

func (f *fakeInfo) IsBitemporalTable(name string) bool {
	return f.bitemporal[strings.ToLower(name)]
}

// bookInfo builds the running-example schema.
func bookInfo(t *testing.T) *fakeInfo {
	t.Helper()
	info := newFakeInfo()
	info.addTable("item", true, "id", "title")
	info.addTable("author", true, "author_id", "first_name")
	info.addTable("item_author", true, "item_id", "author_id")
	info.addTable("snapshot_notes", false, "id", "note")
	info.addRoutine(t, `
CREATE FUNCTION get_author_name (aid CHAR(10))
RETURNS CHAR(50)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE fname CHAR(50);
  SET fname = (SELECT first_name FROM author WHERE author_id = aid);
  RETURN fname;
END`)
	info.addRoutine(t, `
CREATE FUNCTION pure_math (x INTEGER)
RETURNS INTEGER
LANGUAGE SQL
BEGIN
  RETURN x * 2;
END`)
	return info
}

func parse(t *testing.T, src string) sqlast.Stmt {
	t.Helper()
	s, err := sqlparser.ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return s
}

// ---------- analysis ----------

func TestAnalyzeReachability(t *testing.T) {
	info := bookInfo(t)
	info.addRoutine(t, `
CREATE FUNCTION wrapper (aid CHAR(10))
RETURNS CHAR(50)
LANGUAGE SQL
BEGIN
  RETURN get_author_name(aid);
END`)
	tr := NewTranslator(info)
	a, err := tr.analyze(parse(t, `SELECT i.title FROM item i WHERE wrapper(i.id) = 'x'`))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.routines) != 2 {
		t.Fatalf("expected wrapper and get_author_name reachable, got %v", a.routines)
	}
	if !a.temporalRoutine("wrapper") || !a.temporalRoutine("get_author_name") {
		t.Fatal("temporal-ness must propagate up the call graph")
	}
	// item (direct) + author (via routine)
	if len(a.temporalTables) != 2 {
		t.Fatalf("temporal tables: %v", a.temporalTables)
	}
}

func TestAnalyzeNonTemporalRoutine(t *testing.T) {
	info := bookInfo(t)
	tr := NewTranslator(info)
	a, err := tr.analyze(parse(t, `SELECT id FROM snapshot_notes WHERE pure_math(id) = 4`))
	if err != nil {
		t.Fatal(err)
	}
	if a.temporalRoutine("pure_math") {
		t.Fatal("pure_math must not be temporal")
	}
	if len(a.temporalTables) != 0 {
		t.Fatalf("no temporal tables expected, got %v", a.temporalTables)
	}
}

func TestAnalyzeUndefinedRoutineReferenced(t *testing.T) {
	info := bookInfo(t)
	info.addRoutine(t, `
CREATE FUNCTION broken (x INTEGER) RETURNS INTEGER LANGUAGE SQL BEGIN RETURN missing_fn(x); END`)
	tr := NewTranslator(info)
	// missing_fn is not a defined routine: it's treated as a builtin
	// candidate, not an analysis error.
	if _, err := tr.analyze(parse(t, `SELECT broken(1) FROM snapshot_notes`)); err != nil {
		t.Fatalf("unexpected analysis error: %v", err)
	}
}

func TestRecursiveRoutineAnalysis(t *testing.T) {
	info := bookInfo(t)
	info.addRoutine(t, `
CREATE FUNCTION recf (x INTEGER) RETURNS INTEGER LANGUAGE SQL BEGIN RETURN recf(x - 1); END`)
	tr := NewTranslator(info)
	a, err := tr.analyze(parse(t, `SELECT recf(3) FROM item`))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.routines) != 1 {
		t.Fatalf("cycle must not loop: %v", a.routines)
	}
}

// ---------- current ----------

func TestCurrentAddsPredicates(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	tl, err := tr.Translate(parse(t, `SELECT i.title FROM item i, snapshot_notes n WHERE i.id = n.id`), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	sql := tl.Main.SQL()
	if !strings.Contains(sql, "i.begin_time <= CURRENT_DATE") || !strings.Contains(sql, "CURRENT_DATE < i.end_time") {
		t.Fatalf("missing current predicate for temporal table: %s", sql)
	}
	if strings.Contains(sql, "n.begin_time") {
		t.Fatalf("snapshot table must not get a predicate: %s", sql)
	}
}

func TestCurrentPredicateInSubquery(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	tl, err := tr.Translate(parse(t,
		`SELECT id FROM snapshot_notes WHERE id IN (SELECT item_id FROM item_author)`), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tl.Main.SQL(), "item_author.begin_time <= CURRENT_DATE") {
		t.Fatalf("subquery must get current predicate: %s", tl.Main.SQL())
	}
}

func TestCurrentRoutineClones(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	tl, err := tr.Translate(parse(t,
		`SELECT i.title FROM item i WHERE get_author_name(i.id) = 'Ben' AND pure_math(3) = 6`), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Routines) != 1 {
		t.Fatalf("only the temporal routine needs a clone, got %d", len(tl.Routines))
	}
	r := tl.Routines[0].SQL()
	if !strings.Contains(r, "curr_get_author_name") || !strings.Contains(r, "CURRENT_DATE") {
		t.Fatalf("bad curr_ clone: %s", r)
	}
	main := tl.Main.SQL()
	if !strings.Contains(main, "curr_get_author_name(") {
		t.Fatalf("temporal call not renamed: %s", main)
	}
	if strings.Contains(main, "curr_pure_math") {
		t.Fatalf("non-temporal call must stay: %s", main)
	}
}

func TestCurrentInsertValues(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	tl, err := tr.Translate(parse(t, `INSERT INTO item VALUES ('i9', 'New Book')`), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	sql := tl.Main.SQL()
	if !strings.Contains(sql, "CURRENT_DATE") || !strings.Contains(sql, "9999-12-31") {
		t.Fatalf("current insert must append [now, forever): %s", sql)
	}
}

func TestCurrentDeleteClosesPeriods(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	tl, err := tr.Translate(parse(t, `DELETE FROM item WHERE id = 'i1'`), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	upd, ok := tl.Main.(*sqlast.UpdateStmt)
	if !ok {
		t.Fatalf("current delete must become an update, got %T", tl.Main)
	}
	if upd.Sets[0].Column != "end_time" {
		t.Fatalf("must set end_time: %s", tl.Main.SQL())
	}
}

func TestCurrentUpdateVersions(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	tl, err := tr.Translate(parse(t, `UPDATE item SET title = 'X' WHERE id = 'i1'`), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Setup) != 1 {
		t.Fatalf("expected insert-new-versions setup, got %d statements", len(tl.Setup))
	}
	if _, ok := tl.Setup[0].(*sqlast.InsertStmt); !ok {
		t.Fatalf("setup must insert, got %T", tl.Setup[0])
	}
	if _, ok := tl.Main.(*sqlast.UpdateStmt); !ok {
		t.Fatalf("main must close old versions, got %T", tl.Main)
	}
}

func TestRoutineDefinitionsPassThrough(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	src := `CREATE FUNCTION g (x INTEGER) RETURNS INTEGER LANGUAGE SQL BEGIN RETURN (SELECT id FROM item WHERE title = 'a'); END`
	tl, err := tr.Translate(parse(t, src), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tl.Main.SQL(), "CURRENT_DATE") {
		t.Fatalf("stored definition must not be rewritten: %s", tl.Main.SQL())
	}
}

// ---------- sequenced: MAX ----------

func seqStmt(t *testing.T, q string) sqlast.Stmt {
	return parse(t, "VALIDTIME (DATE '2010-01-01', DATE '2011-01-01') "+q)
}

func TestMaxSliceShapes(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	tl, err := tr.Translate(seqStmt(t, `SELECT i.title FROM item i WHERE get_author_name(i.id) = 'Ben'`), StrategyMax)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Strategy != StrategyMax {
		t.Fatal("strategy")
	}
	all := tl.SQL()
	for _, want := range []string{
		"CREATE TEMPORARY TABLE taupsm_ts",
		"CREATE TEMPORARY TABLE taupsm_cp",
		"NOT EXISTS",
		"max_get_author_name (aid CHAR(10), begin_time_in DATE)",
		"max_get_author_name(i.id, cp.begin_time)",
		"i.begin_time <= cp.begin_time AND cp.begin_time < i.end_time",
		"author.begin_time <= begin_time_in",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("MAX translation missing %q:\n%s", want, all)
		}
	}
	if len(tl.Teardown) == 0 {
		t.Error("expected teardown drops")
	}
}

func TestMaxNestedRoutinePropagation(t *testing.T) {
	info := bookInfo(t)
	info.addRoutine(t, `
CREATE FUNCTION wrapper (aid CHAR(10)) RETURNS CHAR(50) LANGUAGE SQL
BEGIN RETURN get_author_name(aid); END`)
	tr := NewTranslator(info)
	tl, err := tr.Translate(seqStmt(t, `SELECT i.title FROM item i WHERE wrapper(i.id) = 'Ben'`), StrategyMax)
	if err != nil {
		t.Fatal(err)
	}
	all := tl.SQL()
	if !strings.Contains(all, "max_get_author_name(aid, begin_time_in)") {
		t.Fatalf("instant must propagate to nested calls:\n%s", all)
	}
}

func TestMaxSnapshotOnlyQuery(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	tl, err := tr.Translate(seqStmt(t, `SELECT note FROM snapshot_notes`), StrategyMax)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Setup) != 0 {
		t.Fatal("snapshot-only sequenced query needs no cp")
	}
	sql := tl.Main.SQL()
	if !strings.Contains(sql, "DATE '2010-01-01' AS begin_time") {
		t.Fatalf("result must carry the context period: %s", sql)
	}
}

func TestMaxAggregateGroupsByPeriod(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	tl, err := tr.Translate(seqStmt(t, `SELECT COUNT(*) FROM item`), StrategyMax)
	if err != nil {
		t.Fatal(err)
	}
	sql := tl.Main.SQL()
	if !strings.Contains(sql, "GROUP BY cp.begin_time, cp.end_time") {
		t.Fatalf("sequenced aggregate must group by constant period: %s", sql)
	}
}

func TestMaxInnerModifierRejected(t *testing.T) {
	info := bookInfo(t)
	info.addRoutine(t, `
CREATE FUNCTION weird (x INTEGER) RETURNS INTEGER LANGUAGE SQL
BEGIN
  DECLARE n INTEGER DEFAULT 0;
  FOR r AS NONSEQUENCED VALIDTIME SELECT id FROM item DO SET n = n + 1; END FOR;
  RETURN n;
END`)
	tr := NewTranslator(info)
	_, err := tr.Translate(seqStmt(t, `SELECT weird(1) FROM item`), StrategyMax)
	if !errors.Is(err, ErrSequencedModifierInRoutine) {
		t.Fatalf("expected semantic error, got %v", err)
	}
}

// ---------- sequenced: PERST ----------

func TestPerstSignatureAndReturn(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	tl, err := tr.Translate(seqStmt(t, `SELECT i.title FROM item i WHERE get_author_name(i.id) = 'Ben'`), StrategyPerStatement)
	if err != nil {
		t.Fatal(err)
	}
	all := tl.SQL()
	for _, want := range []string{
		"ps_get_author_name (aid CHAR(10), period_begin DATE, period_end DATE)",
		"RETURNS ROW(taupsm_result CHAR(50), begin_time DATE, end_time DATE) ARRAY",
		"TABLE(ps_get_author_name(i.id, DATE '2010-01-01', DATE '2011-01-01')) AS taupsm_f",
		"LAST_INSTANCE",
		"FIRST_INSTANCE",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("PERST translation missing %q:\n%s", want, all)
		}
	}
}

func TestPerstRejectsTemporalSubquery(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	_, err := tr.Translate(seqStmt(t,
		`SELECT note FROM snapshot_notes WHERE id IN (SELECT item_id FROM item_author)`), StrategyPerStatement)
	if !errors.Is(err, ErrNotTransformable) {
		t.Fatalf("expected ErrNotTransformable, got %v", err)
	}
}

func TestPerstRejectsTemporalAggregate(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	_, err := tr.Translate(seqStmt(t, `SELECT COUNT(*) FROM item`), StrategyPerStatement)
	if !errors.Is(err, ErrNotTransformable) {
		t.Fatalf("expected ErrNotTransformable, got %v", err)
	}
}

func TestPerstRejectsTimeVaryingIf(t *testing.T) {
	info := bookInfo(t)
	info.addRoutine(t, `
CREATE FUNCTION tvif (aid CHAR(10)) RETURNS INTEGER LANGUAGE SQL
BEGIN
  DECLARE nm CHAR(50);
  SET nm = (SELECT first_name FROM author WHERE author_id = aid);
  IF nm = 'Ben' THEN RETURN 1; END IF;
  RETURN 0;
END`)
	tr := NewTranslator(info)
	_, err := tr.Translate(seqStmt(t, `SELECT tvif(id) FROM item`), StrategyPerStatement)
	if !errors.Is(err, ErrNotTransformable) {
		t.Fatalf("expected ErrNotTransformable for IF over time-varying condition, got %v", err)
	}
}

func TestPerstAutoFallsBackToMax(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	tl, err := tr.Translate(seqStmt(t, `SELECT COUNT(*) FROM item`), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Strategy != StrategyMax {
		t.Fatalf("Auto must fall back to MAX, got %v", tl.Strategy)
	}
}

func TestPerstAccumulatorBecomesTimeVarying(t *testing.T) {
	info := bookInfo(t)
	info.addRoutine(t, `
CREATE FUNCTION cnt (iid CHAR(10)) RETURNS INTEGER LANGUAGE SQL
BEGIN
  DECLARE done INTEGER DEFAULT 0;
  DECLARE n INTEGER DEFAULT 0;
  DECLARE aid CHAR(10) DEFAULT '';
  DECLARE cur CURSOR FOR SELECT author_id FROM item_author WHERE item_id = iid;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
  OPEN cur;
  wl: WHILE done = 0 DO
    FETCH cur INTO aid;
    IF done = 0 THEN SET n = n + 1; END IF;
  END WHILE wl;
  CLOSE cur;
  RETURN n;
END`)
	tr := NewTranslator(info)
	tl, err := tr.Translate(seqStmt(t, `SELECT cnt(id) FROM item`), StrategyPerStatement)
	if err != nil {
		t.Fatal(err)
	}
	if !tl.UsesPerPeriodCursor {
		t.Fatal("per-period cursor use must be reported")
	}
	all := tl.SQL()
	// n must have become a collection variable...
	if !strings.Contains(all, "DECLARE n ROW(taupsm_result INTEGER") {
		t.Fatalf("accumulator must become time-varying:\n%s", all)
	}
	// ...while the done flag stays scalar.
	if !strings.Contains(all, "DECLARE done INTEGER DEFAULT 0") {
		t.Fatalf("control flag must stay scalar:\n%s", all)
	}
	// the cursor gains period columns and the fetch gains aux targets
	if !strings.Contains(all, "taupsm_bt") {
		t.Fatalf("fetch must capture the period:\n%s", all)
	}
}

func TestPerstNonNestedFetchRejected(t *testing.T) {
	info := bookInfo(t)
	info.addRoutine(t, `
CREATE FUNCTION nnf (iid CHAR(10)) RETURNS INTEGER LANGUAGE SQL
BEGIN
  DECLARE done INTEGER DEFAULT 0;
  DECLARE aid CHAR(10) DEFAULT '';
  DECLARE n INTEGER DEFAULT 0;
  DECLARE cur CURSOR FOR SELECT author_id FROM item_author WHERE item_id = iid;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
  OPEN cur;
  FOR r AS SELECT first_name FROM author DO
    FETCH cur INTO aid;
    SET n = n + 1;
  END FOR;
  CLOSE cur;
  RETURN n;
END`)
	tr := NewTranslator(info)
	_, err := tr.Translate(seqStmt(t, `SELECT nnf(id) FROM item`), StrategyPerStatement)
	if !errors.Is(err, ErrNotTransformable) || !strings.Contains(err.Error(), "non-nested FETCH") {
		t.Fatalf("expected non-nested FETCH rejection, got %v", err)
	}
}

func TestPerstProcedureOutBecomesCollection(t *testing.T) {
	info := bookInfo(t)
	info.addRoutine(t, `
CREATE PROCEDURE getp (IN iid CHAR(10), OUT ttl CHAR(100))
LANGUAGE SQL
BEGIN
  SET ttl = (SELECT title FROM item WHERE id = iid);
END`)
	info.addRoutine(t, `
CREATE FUNCTION callp (iid CHAR(10)) RETURNS CHAR(100) LANGUAGE SQL
BEGIN
  DECLARE v CHAR(100) DEFAULT '';
  CALL getp(iid, v);
  RETURN v;
END`)
	tr := NewTranslator(info)
	tl, err := tr.Translate(seqStmt(t, `SELECT callp(id) FROM item`), StrategyPerStatement)
	if err != nil {
		t.Fatal(err)
	}
	all := tl.SQL()
	if !strings.Contains(all, "OUT ttl ROW(taupsm_result CHAR(100)") {
		t.Fatalf("OUT parameter must become a collection:\n%s", all)
	}
	if !strings.Contains(all, "ps_getp(iid, v, period_begin, period_end)") {
		t.Fatalf("CALL must pass the period:\n%s", all)
	}
}

// ---------- sequenced DML ----------

func TestSequencedDeleteTranslation(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	tl, err := tr.Translate(seqStmt(t, `DELETE FROM item WHERE id = 'i1'`), StrategyMax)
	if err != nil {
		t.Fatal(err)
	}
	all := tl.SQL()
	for _, want := range []string{"taupsm_dml", "DELETE FROM item", "INSERT INTO item"} {
		if !strings.Contains(all, want) {
			t.Errorf("sequenced delete missing %q:\n%s", want, all)
		}
	}
}

func TestSequencedUpdateTranslation(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	tl, err := tr.Translate(seqStmt(t, `UPDATE item SET title = 'X' WHERE id = 'i1'`), StrategyPerStatement)
	if err != nil {
		t.Fatal(err)
	}
	all := tl.SQL()
	if !strings.Contains(all, "LAST_INSTANCE(begin_time, DATE '2010-01-01')") {
		t.Errorf("updated portion must clip periods:\n%s", all)
	}
}

func TestSequencedInsertTranslation(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	tl, err := tr.Translate(seqStmt(t, `INSERT INTO item VALUES ('i9', 'T')`), StrategyMax)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tl.Main.SQL(), "DATE '2010-01-01', DATE '2011-01-01'") {
		t.Errorf("sequenced insert must timestamp with the context: %s", tl.Main.SQL())
	}
}

func TestSequencedDMLOnSnapshotRejected(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	if _, err := tr.Translate(seqStmt(t, `DELETE FROM snapshot_notes`), StrategyMax); err == nil {
		t.Fatal("sequenced delete of a snapshot table must fail")
	}
}

// ---------- nonsequenced ----------

func TestNonsequencedPassThrough(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	tl, err := tr.Translate(parse(t, `NONSEQUENCED VALIDTIME SELECT begin_time FROM item`), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Main.SQL() != "SELECT begin_time FROM item" {
		t.Fatalf("nonsequenced must strip the modifier only: %s", tl.Main.SQL())
	}
}

// ---------- heuristic ----------

func TestHeuristicClauses(t *testing.T) {
	base := Features{PerstTransformable: true, TemporalRows: 100_000, ContextDays: 365}
	if Choose(base) != StrategyPerStatement {
		t.Fatal("default must be PERST")
	}
	a := base
	a.PerstTransformable = false
	if Choose(a) != StrategyMax {
		t.Fatal("clause (a)")
	}
	b := base
	b.UsesPerPeriodCursor = true
	if Choose(b) != StrategyMax {
		t.Fatal("clause (b): per-period cursors on a large data set")
	}
	b.TemporalRows = 1000
	if Choose(b) != StrategyPerStatement {
		t.Fatal("clause (b) requires a large data set")
	}
	c := base
	c.TemporalRows = 1000
	c.ContextDays = 1
	if Choose(c) != StrategyMax {
		t.Fatal("clause (c): small database, short context")
	}
	c.ContextDays = 365
	if Choose(c) != StrategyPerStatement {
		t.Fatal("clause (c) requires a short context")
	}
}

// ---------- Translation rendering ----------

func TestTranslationSQLOrdering(t *testing.T) {
	tr := NewTranslator(bookInfo(t))
	tl, err := tr.Translate(seqStmt(t, `SELECT i.title FROM item i WHERE get_author_name(i.id) = 'Ben'`), StrategyMax)
	if err != nil {
		t.Fatal(err)
	}
	all := tl.SQL()
	ri := strings.Index(all, "max_get_author_name")
	si := strings.Index(all, "taupsm_cp")
	mi := strings.Index(all, "SELECT cp.begin_time")
	if !(ri < si && si < mi) {
		t.Fatalf("script order must be routines, setup, main:\n%s", all)
	}
}

// ---------- transaction time ----------

// ttInfo extends the book schema with a transaction-time audit table.
func ttInfo(t *testing.T) *fakeInfo {
	info := bookInfo(t)
	info.addTable("audit_log", true, "id", "note")
	info.transaction = map[string]bool{"audit_log": true}
	return info
}

func TestTransactionTimeSlicedSeparately(t *testing.T) {
	info := ttInfo(t)
	tr := NewTranslator(info)
	// TRANSACTIONTIME over the audit table: sliced like valid time.
	tl, err := tr.Translate(parse(t,
		`TRANSACTIONTIME (DATE '2024-01-01', DATE '2024-06-01') SELECT note FROM audit_log`), StrategyMax)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.TemporalTables) != 1 || tl.TemporalTables[0] != "audit_log" {
		t.Fatalf("audit_log must be the sliced operand: %v", tl.TemporalTables)
	}
	// VALIDTIME over the audit table: audit_log carries only
	// transaction time, so it is not sliced — it is pinned to the
	// current transaction-time context instead.
	tl, err = tr.Translate(parse(t, `VALIDTIME SELECT note FROM audit_log`), StrategyMax)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.TemporalTables) != 0 {
		t.Fatalf("audit_log must not be a sliced operand of a VALIDTIME statement: %v", tl.TemporalTables)
	}
	if sql := tl.Main.SQL(); !strings.Contains(sql, "audit_log.begin_time <= CURRENT_DATE") {
		t.Fatalf("audit_log must be filtered to the current transaction-time context: %s", sql)
	}
	// Mixing dimensions in one sequenced statement: the table carrying
	// the sliced dimension is sliced, the other is context-filtered.
	tl, err = tr.Translate(parse(t,
		`TRANSACTIONTIME SELECT a.note FROM audit_log a, item i WHERE a.id = i.id`), StrategyMax)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.TemporalTables) != 1 || tl.TemporalTables[0] != "audit_log" {
		t.Fatalf("only audit_log carries transaction time: %v", tl.TemporalTables)
	}
	if sql := tl.SQL(); !strings.Contains(sql, "i.begin_time <= CURRENT_DATE") {
		t.Fatalf("item must be filtered to the current valid-time context: %s", sql)
	}
}

func TestTransactionTimeCurrentCoversBothDims(t *testing.T) {
	info := ttInfo(t)
	tr := NewTranslator(info)
	tl, err := tr.Translate(parse(t, `SELECT a.note, i.title FROM audit_log a, item i WHERE a.id = i.id`), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	sql := tl.Main.SQL()
	if !strings.Contains(sql, "a.begin_time <= CURRENT_DATE") || !strings.Contains(sql, "i.begin_time <= CURRENT_DATE") {
		t.Fatalf("current semantics must filter both dimensions: %s", sql)
	}
}

func TestTransactionTimeDMLProtection(t *testing.T) {
	info := ttInfo(t)
	tr := NewTranslator(info)
	// Sequenced TT modification: rejected.
	if _, err := tr.Translate(parse(t,
		`TRANSACTIONTIME (DATE '2024-01-01', DATE '2024-02-01') DELETE FROM audit_log`), StrategyMax); err == nil {
		t.Fatal("sequenced transaction-time DML must be rejected")
	}
	// Sequenced valid-time DML against a TT table: rejected.
	if _, err := tr.Translate(parse(t,
		`VALIDTIME (DATE '2024-01-01', DATE '2024-02-01') DELETE FROM audit_log`), StrategyMax); err == nil {
		t.Fatal("sequenced DML against a transaction-time table must be rejected")
	}
	// Nonsequenced DML with manual timestamps: rejected.
	if _, err := tr.Translate(parse(t,
		`NONSEQUENCED TRANSACTIONTIME INSERT INTO audit_log VALUES ('x', 'y', DATE '2000-01-01', DATE '2001-01-01')`),
		StrategyAuto); err == nil {
		t.Fatal("manual transaction timestamps must be rejected")
	}
	// Current DML: fine (automatic auditing).
	if _, err := tr.Translate(parse(t, `DELETE FROM audit_log WHERE id = 'x'`), StrategyAuto); err != nil {
		t.Fatalf("current delete must audit automatically: %v", err)
	}
}

// ---------- bitemporal tables ----------

// biInfo extends the book schema with a bitemporal position table.
func biInfo(t *testing.T) *fakeInfo {
	info := bookInfo(t)
	info.addBitemporalTable("position", "id", "title")
	return info
}

func TestBitemporalSlicingBothDims(t *testing.T) {
	info := biInfo(t)
	tr := NewTranslator(info)

	// VALIDTIME slicing: position is a sliced operand and its
	// transaction time is pinned to the current belief.
	tl, err := tr.Translate(parse(t,
		`VALIDTIME (DATE '2011-01-01', DATE '2012-01-01') SELECT title FROM position`), StrategyMax)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.TemporalTables) != 1 || tl.TemporalTables[0] != "position" {
		t.Fatalf("position must be sliced: %v", tl.TemporalTables)
	}
	if sql := tl.SQL(); !strings.Contains(sql, "tt_begin_time <= CURRENT_DATE") {
		t.Fatalf("VALIDTIME slice must pin transaction time to the current belief: %s", sql)
	}

	// TRANSACTIONTIME slicing: sliced along tt_begin_time/tt_end_time,
	// valid time pinned to the current context.
	tl, err = tr.Translate(parse(t,
		`TRANSACTIONTIME (DATE '2011-01-01', DATE '2012-01-01') SELECT title FROM position`), StrategyMax)
	if err != nil {
		t.Fatal(err)
	}
	sql := tl.SQL()
	if !strings.Contains(sql, "position.tt_begin_time") {
		t.Fatalf("TRANSACTIONTIME slice must read the tt period columns: %s", sql)
	}
	if !strings.Contains(sql, "position.begin_time <= CURRENT_DATE") {
		t.Fatalf("TRANSACTIONTIME slice must pin valid time to the current context: %s", sql)
	}
}

func TestBitemporalCombinedModifier(t *testing.T) {
	info := biInfo(t)
	tr := NewTranslator(info)
	// The audit question: what did we believe on 2010-06-01 about
	// validity during 2011?
	tl, err := tr.Translate(parse(t,
		`VALIDTIME (DATE '2011-01-01', DATE '2012-01-01') AND TRANSACTIONTIME (DATE '2010-06-01') SELECT title FROM position`),
		StrategyMax)
	if err != nil {
		t.Fatal(err)
	}
	sql := tl.SQL()
	if !strings.Contains(sql, "tt_begin_time < ") || !strings.Contains(sql, "DATE '2010-06-01'") {
		t.Fatalf("explicit transaction-time context must become an overlap filter: %s", sql)
	}
	if strings.Contains(sql, "tt_begin_time <= CURRENT_DATE") {
		t.Fatalf("explicit context must replace the current-belief default: %s", sql)
	}
}

func TestBitemporalCurrentDMLVersionsTT(t *testing.T) {
	info := biInfo(t)
	tr := NewTranslator(info)

	// A current UPDATE closes the old belief and asserts the new one.
	tl, err := tr.Translate(parse(t, `UPDATE position SET title = 'x' WHERE id = 'p1'`), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	sql := tl.SQL()
	if !strings.Contains(sql, "SET tt_end_time = CURRENT_DATE") {
		t.Fatalf("current update must close the superseded belief: %s", sql)
	}
	if len(tl.Setup) == 0 {
		t.Fatalf("current update must insert new versions via setup statements")
	}

	// A current DELETE likewise closes rather than removes.
	tl, err = tr.Translate(parse(t, `DELETE FROM position WHERE id = 'p1'`), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if sql := tl.SQL(); !strings.Contains(sql, "SET tt_end_time = CURRENT_DATE") {
		t.Fatalf("current delete must close the superseded belief: %s", sql)
	}
}

func TestBitemporalSequencedDMLVersionsTT(t *testing.T) {
	info := biInfo(t)
	tr := NewTranslator(info)
	tl, err := tr.Translate(parse(t,
		`VALIDTIME (DATE '2011-03-01', DATE '2011-06-01') DELETE FROM position WHERE id = 'p1'`), StrategyMax)
	if err != nil {
		t.Fatal(err)
	}
	sql := tl.SQL()
	if !strings.Contains(sql, "SET tt_end_time = CURRENT_DATE") {
		t.Fatalf("sequenced delete on a bitemporal table must retire beliefs, not rows: %s", sql)
	}
	// Sequenced TT DML stays rejected even on bitemporal tables.
	if _, err := tr.Translate(parse(t,
		`TRANSACTIONTIME (DATE '2011-01-01', DATE '2011-06-01') DELETE FROM position`), StrategyMax); err == nil {
		t.Fatal("sequenced transaction-time DML must stay rejected")
	}
	// An explicit context cannot be combined with a modification.
	if _, err := tr.Translate(parse(t,
		`VALIDTIME (DATE '2011-03-01', DATE '2011-06-01') AND TRANSACTIONTIME (DATE '2010-01-01') DELETE FROM position`),
		StrategyMax); err == nil {
		t.Fatal("explicit context on DML must be rejected")
	}
}

func TestBitemporalNonsequencedInsert(t *testing.T) {
	info := biInfo(t)
	tr := NewTranslator(info)
	// Top-level nonsequenced INSERT supplies the valid-time period;
	// the stratum appends the transaction-time pair.
	tl, err := tr.Translate(parse(t,
		`NONSEQUENCED VALIDTIME INSERT INTO position VALUES ('p1', 'x', DATE '2011-01-01', DATE '2012-01-01')`),
		StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if sql := tl.SQL(); !strings.Contains(sql, "CURRENT_DATE") || !strings.Contains(sql, "DATE '9999-12-31'") {
		t.Fatalf("nonsequenced insert must append the tt pair: %s", sql)
	}
	// Manual transaction timestamps stay rejected.
	if _, err := tr.Translate(parse(t,
		`NONSEQUENCED VALIDTIME INSERT INTO position (id, title, begin_time, end_time, tt_begin_time, tt_end_time) VALUES ('p1', 'x', DATE '2011-01-01', DATE '2012-01-01', DATE '2000-01-01', DATE '2001-01-01')`),
		StrategyAuto); err == nil {
		t.Fatal("manual transaction timestamps must be rejected")
	}
	// Nonsequenced UPDATE/DELETE of a bitemporal table: rejected.
	if _, err := tr.Translate(parse(t,
		`NONSEQUENCED VALIDTIME DELETE FROM position WHERE id = 'p1'`), StrategyAuto); err == nil {
		t.Fatal("nonsequenced delete of a bitemporal table must be rejected")
	}
}
