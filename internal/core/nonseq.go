package core

import (
	"fmt"
	"strings"

	"taupsm/internal/sqlast"
)

// Nonsequenced semantics (paper §IV-B): the valid-time timestamps are
// ordinary columns the user manipulates explicitly, so the statement
// itself needs no rewriting. A routine containing temporal statement
// modifiers is only legal here; its inner statements are resolved —
// NONSEQUENCED modifiers are stripped, and inner sequenced (VALIDTIME)
// SELECT statements are rewritten with the standard sequenced-SELECT
// transformation when they do not themselves invoke temporal routines.

// checkNonseqBitemporalDML limits nonsequenced modifications of
// bitemporal tables to top-level INSERT: the transform can append the
// system-maintained transaction-time period there, but cannot rewrite
// UPDATE/DELETE (which must version the audit history — use current or
// sequenced semantics) or statements buried in routine bodies.
func (tr *Translator) checkNonseqBitemporalDML(body sqlast.Stmt) error {
	var firstErr error
	sqlast.Walk(body, func(n sqlast.Node) bool {
		if firstErr != nil {
			return false
		}
		var target string
		insert := false
		switch x := n.(type) {
		case *sqlast.InsertStmt:
			if !x.VarTarget {
				target, insert = x.Table, true
			}
		case *sqlast.UpdateStmt:
			if !x.VarTarget {
				target = x.Table
			}
		case *sqlast.DeleteStmt:
			if !x.VarTarget {
				target = x.Table
			}
		}
		if target == "" || !tr.isBitemporalTable(target) {
			return true
		}
		if insert && n == sqlast.Node(body) {
			return true
		}
		firstErr = fmt.Errorf("nonsequenced modification of bitemporal table %s: only top-level INSERT is supported; use current or sequenced semantics to version transaction time", target)
		return false
	})
	return firstErr
}

// appendNonseqTT extends a nonsequenced INSERT into a bitemporal table
// with the system transaction-time period [CURRENT_DATE, forever).
func (tr *Translator) appendNonseqTT(ins *sqlast.InsertStmt) error {
	for _, c := range ins.Cols {
		if strings.EqualFold(c, "tt_begin_time") || strings.EqualFold(c, "tt_end_time") {
			return fmt.Errorf("transaction time of table %s is system-maintained; do not write %s", ins.Table, c)
		}
	}
	if len(ins.Cols) > 0 {
		ins.Cols = append(ins.Cols, "tt_begin_time", "tt_end_time")
	}
	switch src := ins.Source.(type) {
	case *sqlast.ValuesExpr:
		for i := range src.Rows {
			src.Rows[i] = append(src.Rows[i], currentDate(), foreverLit())
		}
	case *sqlast.SelectStmt:
		src.Items = append(src.Items,
			sqlast.SelectItem{Expr: currentDate(), Alias: "tt_begin_time"},
			sqlast.SelectItem{Expr: foreverLit(), Alias: "tt_end_time"})
	default:
		return fmt.Errorf("nonsequenced INSERT into bitemporal table %s requires a VALUES or SELECT source", ins.Table)
	}
	return nil
}

// nonseqRoutines produces the nonseq_ clone of the named routine (and
// transitively of modifier-carrying routines it calls).
func (tr *Translator) nonseqRoutines(a *analysis, name string) ([]sqlast.Stmt, error) {
	def := sqlast.CloneStmt(a.routineDef[strings.ToLower(name)])
	switch d := def.(type) {
	case *sqlast.CreateFunctionStmt:
		d.Name = "nonseq_" + d.Name
		d.Replace = true
	case *sqlast.CreateProcedureStmt:
		d.Name = "nonseq_" + d.Name
		d.Replace = true
	}
	if err := tr.resolveInnerModifiers(def, a); err != nil {
		return nil, fmt.Errorf("routine %s: %w", name, err)
	}
	renameCalls(def, a, "nonseq_", func(n string) bool { return a.modifierIn[strings.ToLower(n)] })
	out := []sqlast.Stmt{def}
	for _, callee := range a.callees[strings.ToLower(name)] {
		if a.modifierIn[strings.ToLower(callee)] {
			more, err := tr.nonseqRoutines(a, callee)
			if err != nil {
				return nil, err
			}
			out = append(out, more...)
		}
	}
	return out, nil
}

// resolveInnerModifiers rewrites the TemporalStmt nodes inside a
// routine used in a nonsequenced context.
func (tr *Translator) resolveInnerModifiers(def sqlast.Stmt, a *analysis) error {
	var firstErr error
	replace := func(ts *sqlast.TemporalStmt) sqlast.Stmt {
		switch ts.Mod {
		case sqlast.ModNonsequenced, sqlast.ModCurrent:
			return ts.Body
		case sqlast.ModSequenced:
			sel, ok := ts.Body.(*sqlast.SelectStmt)
			if !ok {
				if firstErr == nil {
					firstErr = fmt.Errorf("inner VALIDTIME on %T is not supported inside routines", ts.Body)
				}
				return ts
			}
			begin, end := defaultContext()
			if ts.Period != nil {
				begin, end = ts.Period.Begin, ts.Period.End
			}
			counter := 0
			sc := &seqCtx{a: a, pBegin: begin, pEnd: end,
				localTemporal: map[string]bool{}, lateralCounter: &counter}
			if err := tr.rewriteSequencedSelect(sel, sc); err != nil && firstErr == nil {
				firstErr = err
			}
			return sel
		}
		return ts
	}
	// TemporalStmt nodes appear as cursor queries, FOR queries, and
	// block statements; rewrite each occurrence in place.
	sqlast.Walk(def, func(n sqlast.Node) bool {
		switch x := n.(type) {
		case *sqlast.CompoundStmt:
			for _, c := range x.Cursors {
				if ts, ok := c.Query.(*sqlast.TemporalStmt); ok {
					c.Query = replace(ts)
				}
			}
			for i, s := range x.Stmts {
				if ts, ok := s.(*sqlast.TemporalStmt); ok {
					x.Stmts[i] = replace(ts)
				}
			}
		case *sqlast.ForStmt:
			if ts, ok := x.Query.(*sqlast.TemporalStmt); ok {
				x.Query = replace(ts)
			}
		}
		return true
	})
	return firstErr
}
