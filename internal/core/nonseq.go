package core

import (
	"fmt"
	"strings"

	"taupsm/internal/sqlast"
)

// Nonsequenced semantics (paper §IV-B): the valid-time timestamps are
// ordinary columns the user manipulates explicitly, so the statement
// itself needs no rewriting. A routine containing temporal statement
// modifiers is only legal here; its inner statements are resolved —
// NONSEQUENCED modifiers are stripped, and inner sequenced (VALIDTIME)
// SELECT statements are rewritten with the standard sequenced-SELECT
// transformation when they do not themselves invoke temporal routines.

// nonseqRoutines produces the nonseq_ clone of the named routine (and
// transitively of modifier-carrying routines it calls).
func (tr *Translator) nonseqRoutines(a *analysis, name string) ([]sqlast.Stmt, error) {
	def := sqlast.CloneStmt(a.routineDef[strings.ToLower(name)])
	switch d := def.(type) {
	case *sqlast.CreateFunctionStmt:
		d.Name = "nonseq_" + d.Name
		d.Replace = true
	case *sqlast.CreateProcedureStmt:
		d.Name = "nonseq_" + d.Name
		d.Replace = true
	}
	if err := tr.resolveInnerModifiers(def, a); err != nil {
		return nil, fmt.Errorf("routine %s: %w", name, err)
	}
	renameCalls(def, a, "nonseq_", func(n string) bool { return a.modifierIn[strings.ToLower(n)] })
	out := []sqlast.Stmt{def}
	for _, callee := range a.callees[strings.ToLower(name)] {
		if a.modifierIn[strings.ToLower(callee)] {
			more, err := tr.nonseqRoutines(a, callee)
			if err != nil {
				return nil, err
			}
			out = append(out, more...)
		}
	}
	return out, nil
}

// resolveInnerModifiers rewrites the TemporalStmt nodes inside a
// routine used in a nonsequenced context.
func (tr *Translator) resolveInnerModifiers(def sqlast.Stmt, a *analysis) error {
	var firstErr error
	replace := func(ts *sqlast.TemporalStmt) sqlast.Stmt {
		switch ts.Mod {
		case sqlast.ModNonsequenced, sqlast.ModCurrent:
			return ts.Body
		case sqlast.ModSequenced:
			sel, ok := ts.Body.(*sqlast.SelectStmt)
			if !ok {
				if firstErr == nil {
					firstErr = fmt.Errorf("inner VALIDTIME on %T is not supported inside routines", ts.Body)
				}
				return ts
			}
			begin, end := defaultContext()
			if ts.Period != nil {
				begin, end = ts.Period.Begin, ts.Period.End
			}
			counter := 0
			sc := &seqCtx{a: a, pBegin: begin, pEnd: end,
				localTemporal: map[string]bool{}, lateralCounter: &counter}
			if err := tr.rewriteSequencedSelect(sel, sc); err != nil && firstErr == nil {
				firstErr = err
			}
			return sel
		}
		return ts
	}
	// TemporalStmt nodes appear as cursor queries, FOR queries, and
	// block statements; rewrite each occurrence in place.
	sqlast.Walk(def, func(n sqlast.Node) bool {
		switch x := n.(type) {
		case *sqlast.CompoundStmt:
			for _, c := range x.Cursors {
				if ts, ok := c.Query.(*sqlast.TemporalStmt); ok {
					c.Query = replace(ts)
				}
			}
			for i, s := range x.Stmts {
				if ts, ok := s.(*sqlast.TemporalStmt); ok {
					x.Stmts[i] = replace(ts)
				}
			}
		case *sqlast.ForStmt:
			if ts, ok := x.Query.(*sqlast.TemporalStmt); ok {
				x.Query = replace(ts)
			}
		}
		return true
	})
	return firstErr
}
