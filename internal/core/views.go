package core

import (
	"fmt"

	"taupsm/internal/sqlast"
)

// Temporal views. SQL/Temporal's statement modifiers apply to view
// definitions too (§III: the modifiers cover "a query, a modification,
// a view definition, a cursor, etc."). A *sequenced* view must be
// translated data-independently — the view is defined once but queried
// as the data changes — so constant-period slicing does not apply;
// instead the body gets the per-statement sequenced rewrite over the
// whole timeline, which references only base tables and ps_ routines
// and therefore stays valid as data evolves. A *nonsequenced* view
// passes through. Views over constructs the sequenced rewrite cannot
// express (temporal subqueries, temporal aggregation) are rejected.

// translateView handles CREATE VIEW with a temporal modifier on its
// body.
func (tr *Translator) translateView(v *sqlast.CreateViewStmt) (*Translation, error) {
	out := &Translation{}
	switch v.Mod {
	case sqlast.ModNonsequenced:
		nv := sqlast.CloneStmt(v).(*sqlast.CreateViewStmt)
		nv.Mod = sqlast.ModCurrent
		out.Main = nv
		return out, nil
	case sqlast.ModSequenced:
		a, err := tr.analyzeDim(v, sqlast.DimValid)
		if err != nil {
			return nil, err
		}
		if err := tr.checkNoInnerModifiers(a); err != nil {
			return nil, err
		}
		out.TemporalTables = a.temporalTables
		for _, rn := range a.routines {
			if !a.temporalRoutine(rn) {
				continue
			}
			def, _, err := tr.psRoutine(a, rn)
			if err != nil {
				return nil, fmt.Errorf("sequenced view %s: %w", v.Name, err)
			}
			out.Routines = append(out.Routines, def)
		}
		nv := sqlast.CloneStmt(v).(*sqlast.CreateViewStmt)
		nv.Mod = sqlast.ModCurrent
		begin, end := defaultContext()
		counter := 0
		var rewrite func(q sqlast.QueryExpr) error
		rewrite = func(q sqlast.QueryExpr) error {
			switch x := q.(type) {
			case *sqlast.SelectStmt:
				sc := &seqCtx{a: a, pBegin: begin, pEnd: end,
					localTemporal: map[string]bool{}, lateralCounter: &counter}
				return tr.rewriteSequencedSelect(x, sc)
			case *sqlast.SetOpExpr:
				if err := rewrite(x.L); err != nil {
					return err
				}
				return rewrite(x.R)
			}
			return fmt.Errorf("%w: unsupported view body %T", ErrNotTransformable, q)
		}
		if err := rewrite(nv.Query); err != nil {
			return nil, fmt.Errorf("sequenced view %s: %w", v.Name, err)
		}
		if len(nv.Cols) > 0 {
			nv.Cols = append([]string{"begin_time", "end_time"}, nv.Cols...)
		}
		out.Main = nv
		return out, nil
	}
	out.Main = sqlast.CloneStmt(v)
	return out, nil
}
