package core

import (
	"fmt"
	"strings"

	"taupsm/internal/sqlast"
)

// Bitemporal tables carry both periods: the valid-time pair keeps the
// standard begin_time/end_time names (so every name-based valid-time
// transform applies unchanged) and the transaction-time pair is
// appended as tt_begin_time/tt_end_time. A sequenced statement slices
// along its own dimension; the orthogonal dimension is a *context*:
// tables carrying it are filtered to the context period (the current
// instant by default, or an explicit `AND <dim> (...)` clause), not
// sliced. This turns the old mixed-dimension rejection into a defined
// semantics: "what did we believe on X about Y".

// isBitemporalTable consults the optional extension of SchemaInfo.
func (tr *Translator) isBitemporalTable(name string) bool {
	if bi, ok := tr.Info.(interface{ IsBitemporalTable(string) bool }); ok {
		return bi.IsBitemporalTable(name)
	}
	return false
}

// carriesDim reports whether the temporal table name carries dimension
// d: bitemporal tables carry both, single-dimension tables only their
// own. dimAny matches every temporal table.
func (tr *Translator) carriesDim(name string, d sqlast.TemporalDimension) bool {
	if d == dimAny || tr.isBitemporalTable(name) {
		return true
	}
	if d == sqlast.DimTransaction {
		return tr.isTransactionTable(name)
	}
	return !tr.isTransactionTable(name)
}

// slicePeriodCols names the period columns of table along dimension d.
// Only the transaction-time pair of a bitemporal table deviates from
// the standard names (transaction-time-only tables reuse
// begin_time/end_time).
func (tr *Translator) slicePeriodCols(table string, d sqlast.TemporalDimension) (string, string) {
	if d == sqlast.DimTransaction && tr.isBitemporalTable(table) {
		return "tt_begin_time", "tt_end_time"
	}
	return "begin_time", "end_time"
}

// ctxFilter builds the overlap predicate restricting (bcol, ecol) of
// alias to the context: the current instant when begin is nil, the
// period [begin, end) otherwise.
func ctxFilter(alias, bcol, ecol string, begin, end sqlast.Expr) sqlast.Expr {
	if begin == nil {
		return andExpr(
			&sqlast.BinaryExpr{Op: "<=", L: col(alias, bcol), R: currentDate()},
			&sqlast.BinaryExpr{Op: "<", L: currentDate(), R: col(alias, ecol)})
	}
	return andExpr(
		&sqlast.BinaryExpr{Op: "<", L: col(alias, bcol), R: sqlast.CloneExpr(end)},
		&sqlast.BinaryExpr{Op: "<", L: sqlast.CloneExpr(begin), R: col(alias, ecol)})
}

// addContextFilters restricts, in every SELECT under stmt, every
// temporal table carrying the dimension orthogonal to dim down to the
// context [ctxBegin, ctxEnd) (the current instant when ctxBegin is
// nil). After this filter a bitemporal table exposes one consistent
// belief and a table carrying only the orthogonal dimension is
// constant with respect to the sliced one.
func (tr *Translator) addContextFilters(stmt sqlast.Node, dim sqlast.TemporalDimension, ctxBegin, ctxEnd sqlast.Expr) {
	cd := otherDim(dim)
	forEachSelect(stmt, func(sel *sqlast.SelectStmt) {
		for _, fe := range fromEntries(sel) {
			if !tr.Info.IsTemporalTable(fe.Name) || !tr.carriesDim(fe.Name, cd) {
				continue
			}
			bcol, ecol := tr.slicePeriodCols(fe.Name, cd)
			sel.Where = andExpr(sel.Where, ctxFilter(fe.Alias, bcol, ecol, ctxBegin, ctxEnd))
		}
	})
}

// checkExplicitContext rejects an explicit secondary-dimension context
// on statements whose reachable routines touch tables carrying the
// context dimension: routine clones are named deterministically and
// cannot embed per-statement context literals, so they always evaluate
// against the default (current) context.
func (tr *Translator) checkExplicitContext(a *analysis, dim sqlast.TemporalDimension, ctxBegin sqlast.Expr) error {
	if ctxBegin == nil {
		return nil
	}
	cd := otherDim(dim)
	for _, r := range a.routines {
		for _, t := range a.directTables[strings.ToLower(r)] {
			if tr.Info.IsTemporalTable(t) && tr.carriesDim(t, cd) {
				return fmt.Errorf("explicit %s context cannot reach stored routine %s over table %s; routines evaluate against the current context",
					cd.Keyword(), r, t)
			}
		}
	}
	return nil
}
