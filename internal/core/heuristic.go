package core

// The strategy heuristic of paper §VII-F: per-statement slicing is
// faster for roughly 70% of the measured configurations, so a query
// optimizer should choose PERST unless
//
//	(a) the transformation rules don't work for PERST
//	    (e.g. non-nested FETCHes),
//	(b) cursors are required on a per-period basis by PERST and the
//	    data set is large, or
//	(c) the query is on a small database and has a short temporal
//	    context.
type Features struct {
	// PerstTransformable is false when the PERST transform returned
	// ErrNotTransformable (clause a).
	PerstTransformable bool
	// UsesPerPeriodCursor reports per-period cursor processing in the
	// PERST translation (clause b).
	UsesPerPeriodCursor bool
	// TemporalRows counts the rows of the reachable temporal tables —
	// the "data set size" proxy.
	TemporalRows int
	// ContextDays is the length of the temporal context in granules.
	ContextDays int64
	// HasStats reports that the statistics registry supplied estimates
	// for this statement; the stats-informed clause fires only then, so
	// databases without statistics decide exactly as before.
	HasStats bool
	// EstConstantPeriods is the registry's estimate of the constant
	// periods MAX slicing would evaluate: distinct stored endpoints
	// strictly inside the context, plus one. Exact for single-table
	// statements; an upper bound across tables.
	EstConstantPeriods int64
	// EstRows is the registry's estimate of the stored fragments
	// overlapping the context.
	EstRows int64
}

// Thresholds calibrating "large data set" and "small database / short
// context" for clauses (b) and (c). They are exported so the benchmark
// harness can recalibrate them against measured crossovers.
// The values are calibrated against this engine's measured crossovers
// (see EXPERIMENTS.md): clause (c)'s short-context rule applies broadly
// because the stratum computes constant periods natively, making MAX's
// fixed cost lower than it was on DB2.
var (
	// LargeRowsThreshold is the data-set size above which per-period
	// cursors make PERST lose (clause b).
	LargeRowsThreshold = 10_000
	// SmallRowsThreshold and ShortContextDays bound clause (c): on a
	// small database with a short temporal context the constant-period
	// overhead is low and MAX's simpler statements win.
	SmallRowsThreshold = 50_000
	ShortContextDays   = int64(7)
	// FewPeriodsThreshold bounds the stats-informed clause: when the
	// registry estimates at most this many constant periods, MAX
	// evaluates the statement a handful of times and its simpler
	// per-period statements win regardless of context length.
	FewPeriodsThreshold = int64(4)
)

// Reason labels which clause of the §VII-F heuristic decided the
// strategy; the observability layer records it so a strategy choice is
// explainable after the fact (EXPLAIN output, stratum.auto.* metrics).
type Reason string

// The heuristic's decision reasons.
const (
	// ReasonNotTransformable: clause (a) — the PERST transformation
	// rules do not apply, MAX is the only option.
	ReasonNotTransformable Reason = "perst_not_transformable"
	// ReasonPerPeriodCursor: clause (b) — PERST would process cursors
	// per period on a large data set.
	ReasonPerPeriodCursor Reason = "per_period_cursor"
	// ReasonShortContext: clause (c) — small database and short
	// temporal context make MAX's fixed cost negligible.
	ReasonShortContext Reason = "short_context"
	// ReasonStatsFewPeriods: the statistics registry estimates so few
	// constant periods that MAX's per-period evaluation count is
	// trivially small. A stats-informed refinement of clause (c): it
	// fires on period count where (c) fires on context length.
	ReasonStatsFewPeriods Reason = "stats_few_periods"
	// ReasonDefault: none of the clauses fired; PERST wins ~70% of the
	// measured configurations.
	ReasonDefault Reason = "perst_default"
	// ReasonProbeError: the PERST probe translation failed with an
	// error other than ErrNotTransformable; the stratum conservatively
	// picks MAX. (Recorded by the stratum, never returned by Choose.)
	ReasonProbeError Reason = "perst_probe_error"
)

// JoinFeatures describes one interval-overlap join the engine (or
// EXPLAIN, predictively) must pick an algorithm for: probe the inner
// table's interval tree once per outer row, or sweep the inner side's
// begin-sorted spans against the sorted outer stab points.
type JoinFeatures struct {
	// OuterRows and InnerRows are the joined relation sizes.
	OuterRows, InnerRows int64
	// OverlapDepth is the inner table's peak overlap depth from the
	// statistics registry's last ANALYZE, 0 when unknown. Deep overlap
	// makes every probe collect (and re-sort) a large candidate list,
	// which the sweep shares across equal stab points.
	OverlapDepth int64
	// SpansCached reports that the begin-sorted spans already exist
	// (storage caches them with the interval index for full-table
	// scans; a prepared plan caches them for filtered scans), so the
	// sweep skips its O(n log n) setup.
	SpansCached bool
}

// Join algorithm reasons, recorded by EXPLAIN's join row.
const (
	// ReasonSweepDepth: the sweep was chosen; with ANALYZE statistics
	// the overlap-depth term contributed to the decision.
	ReasonSweepDepth Reason = "sweep_overlap_depth"
	// ReasonSweepSize: the sweep was chosen on relation sizes alone
	// (no ANALYZE statistics).
	ReasonSweepSize Reason = "sweep_size"
	// ReasonProbeSmall: either side is too small for the sweep's setup
	// to amortize; per-row probing (or the nested loop) wins.
	ReasonProbeSmall Reason = "probe_small"
	// ReasonProbeCost: the modeled probe cost stayed below the sweep's.
	ReasonProbeCost Reason = "probe_cost"
)

// SweepMinRows is the relation size below which a sweep join is never
// considered: the per-probe tree descent is cheap in absolute terms and
// unit-scale workloads should keep the probe path's counters.
var SweepMinRows = int64(32)

// ChooseJoin picks the overlap-join algorithm from a simple cost
// model. Probing costs one tree descent plus a candidate collection
// and sort per outer row; sweeping costs one sort of the outer stab
// points, one walk of the inner spans (plus their sort when not
// cached), and a heap scan per distinct point. The per-candidate
// residual evaluation is identical on both sides and cancels.
func ChooseJoin(f JoinFeatures) (sweep bool, reason Reason) {
	if f.OuterRows < SweepMinRows || f.InnerRows < SweepMinRows {
		return false, ReasonProbeSmall
	}
	depth := f.OverlapDepth
	if depth < 1 {
		depth = 1
	}
	// Per outer row, a probe pays a tree descent with poor locality
	// (constant ~4 on top of the comparison count) and sorts its own
	// candidate list of ~depth entries.
	probe := float64(f.OuterRows) * (lg(f.InnerRows) + 4 + float64(depth)*lg(depth))
	setup := float64(f.InnerRows) * lg(f.InnerRows)
	if f.SpansCached {
		setup = 0
	}
	// The sweep pays one sort of the outer points, the span walk, and
	// a heap scan of ~depth open intervals per outer row.
	cost := float64(f.OuterRows)*lg(f.OuterRows) + float64(f.InnerRows) + setup +
		float64(f.OuterRows)*float64(depth)
	if cost >= probe {
		return false, ReasonProbeCost
	}
	if f.OverlapDepth > 0 {
		return true, ReasonSweepDepth
	}
	return true, ReasonSweepSize
}

// lg is log2 clamped below at 1, on counts.
func lg(n int64) float64 {
	l := float64(0)
	for v := n; v > 1; v >>= 1 {
		l++
	}
	if l < 1 {
		return 1
	}
	return l
}

// Choose applies the §VII-F heuristic.
func Choose(f Features) Strategy {
	s, _ := ChooseExplained(f)
	return s
}

// ChooseExplained applies the §VII-F heuristic and reports which
// clause decided.
func ChooseExplained(f Features) (Strategy, Reason) {
	if !f.PerstTransformable {
		return StrategyMax, ReasonNotTransformable // (a)
	}
	if f.UsesPerPeriodCursor && f.TemporalRows >= LargeRowsThreshold {
		return StrategyMax, ReasonPerPeriodCursor // (b)
	}
	if f.TemporalRows <= SmallRowsThreshold && f.ContextDays <= ShortContextDays {
		return StrategyMax, ReasonShortContext // (c)
	}
	if f.HasStats && f.EstConstantPeriods > 0 && f.EstConstantPeriods <= FewPeriodsThreshold {
		return StrategyMax, ReasonStatsFewPeriods
	}
	return StrategyPerStatement, ReasonDefault
}
