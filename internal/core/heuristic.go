package core

// The strategy heuristic of paper §VII-F: per-statement slicing is
// faster for roughly 70% of the measured configurations, so a query
// optimizer should choose PERST unless
//
//	(a) the transformation rules don't work for PERST
//	    (e.g. non-nested FETCHes),
//	(b) cursors are required on a per-period basis by PERST and the
//	    data set is large, or
//	(c) the query is on a small database and has a short temporal
//	    context.
type Features struct {
	// PerstTransformable is false when the PERST transform returned
	// ErrNotTransformable (clause a).
	PerstTransformable bool
	// UsesPerPeriodCursor reports per-period cursor processing in the
	// PERST translation (clause b).
	UsesPerPeriodCursor bool
	// TemporalRows counts the rows of the reachable temporal tables —
	// the "data set size" proxy.
	TemporalRows int
	// ContextDays is the length of the temporal context in granules.
	ContextDays int64
	// HasStats reports that the statistics registry supplied estimates
	// for this statement; the stats-informed clause fires only then, so
	// databases without statistics decide exactly as before.
	HasStats bool
	// EstConstantPeriods is the registry's estimate of the constant
	// periods MAX slicing would evaluate: distinct stored endpoints
	// strictly inside the context, plus one. Exact for single-table
	// statements; an upper bound across tables.
	EstConstantPeriods int64
	// EstRows is the registry's estimate of the stored fragments
	// overlapping the context.
	EstRows int64
}

// Thresholds calibrating "large data set" and "small database / short
// context" for clauses (b) and (c). They are exported so the benchmark
// harness can recalibrate them against measured crossovers.
// The values are calibrated against this engine's measured crossovers
// (see EXPERIMENTS.md): clause (c)'s short-context rule applies broadly
// because the stratum computes constant periods natively, making MAX's
// fixed cost lower than it was on DB2.
var (
	// LargeRowsThreshold is the data-set size above which per-period
	// cursors make PERST lose (clause b).
	LargeRowsThreshold = 10_000
	// SmallRowsThreshold and ShortContextDays bound clause (c): on a
	// small database with a short temporal context the constant-period
	// overhead is low and MAX's simpler statements win.
	SmallRowsThreshold = 50_000
	ShortContextDays   = int64(7)
	// FewPeriodsThreshold bounds the stats-informed clause: when the
	// registry estimates at most this many constant periods, MAX
	// evaluates the statement a handful of times and its simpler
	// per-period statements win regardless of context length.
	FewPeriodsThreshold = int64(4)
)

// Reason labels which clause of the §VII-F heuristic decided the
// strategy; the observability layer records it so a strategy choice is
// explainable after the fact (EXPLAIN output, stratum.auto.* metrics).
type Reason string

// The heuristic's decision reasons.
const (
	// ReasonNotTransformable: clause (a) — the PERST transformation
	// rules do not apply, MAX is the only option.
	ReasonNotTransformable Reason = "perst_not_transformable"
	// ReasonPerPeriodCursor: clause (b) — PERST would process cursors
	// per period on a large data set.
	ReasonPerPeriodCursor Reason = "per_period_cursor"
	// ReasonShortContext: clause (c) — small database and short
	// temporal context make MAX's fixed cost negligible.
	ReasonShortContext Reason = "short_context"
	// ReasonStatsFewPeriods: the statistics registry estimates so few
	// constant periods that MAX's per-period evaluation count is
	// trivially small. A stats-informed refinement of clause (c): it
	// fires on period count where (c) fires on context length.
	ReasonStatsFewPeriods Reason = "stats_few_periods"
	// ReasonDefault: none of the clauses fired; PERST wins ~70% of the
	// measured configurations.
	ReasonDefault Reason = "perst_default"
	// ReasonProbeError: the PERST probe translation failed with an
	// error other than ErrNotTransformable; the stratum conservatively
	// picks MAX. (Recorded by the stratum, never returned by Choose.)
	ReasonProbeError Reason = "perst_probe_error"
)

// Choose applies the §VII-F heuristic.
func Choose(f Features) Strategy {
	s, _ := ChooseExplained(f)
	return s
}

// ChooseExplained applies the §VII-F heuristic and reports which
// clause decided.
func ChooseExplained(f Features) (Strategy, Reason) {
	if !f.PerstTransformable {
		return StrategyMax, ReasonNotTransformable // (a)
	}
	if f.UsesPerPeriodCursor && f.TemporalRows >= LargeRowsThreshold {
		return StrategyMax, ReasonPerPeriodCursor // (b)
	}
	if f.TemporalRows <= SmallRowsThreshold && f.ContextDays <= ShortContextDays {
		return StrategyMax, ReasonShortContext // (c)
	}
	if f.HasStats && f.EstConstantPeriods > 0 && f.EstConstantPeriods <= FewPeriodsThreshold {
		return StrategyMax, ReasonStatsFewPeriods
	}
	return StrategyPerStatement, ReasonDefault
}
