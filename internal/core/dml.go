package core

import (
	"fmt"

	"taupsm/internal/sqlast"
)

// Sequenced modifications (VALIDTIME [(P1, P2)] INSERT/UPDATE/DELETE):
// the modification applies independently at every instant of the
// period, which in period-timestamped storage means splitting rows that
// straddle the period boundaries. The transform materializes the
// affected rows in a temporary table, deletes the originals, and
// re-inserts the preserved remnants (plus the modified portion for
// UPDATE) — all in conventional SQL, usable by both slicing strategies.

const seqDMLTemp = "taupsm_dml"

// overlapPred builds alias.begin_time < P2 AND P1 < alias.end_time.
func overlapPred(alias string, begin, end sqlast.Expr) sqlast.Expr {
	return andExpr(
		&sqlast.BinaryExpr{Op: "<", L: col(alias, "begin_time"), R: sqlast.CloneExpr(end)},
		&sqlast.BinaryExpr{Op: "<", L: sqlast.CloneExpr(begin), R: col(alias, "end_time")},
	)
}

func (tr *Translator) sequencedDML(body sqlast.Stmt, begin, end sqlast.Expr, strategy Strategy, dim sqlast.TemporalDimension, ctxBegin, ctxEnd sqlast.Expr) (*Translation, error) {
	if dim == sqlast.DimTransaction {
		return nil, fmt.Errorf("sequenced transaction-time modifications would rewrite the audit past; transaction time is append-only")
	}
	if ctxBegin != nil {
		return nil, fmt.Errorf("a %s context cannot be combined with a modification; modifications always apply to the current belief", otherDim(dim).Keyword())
	}
	if err := tr.checkNoManualTransactionDML(body); err != nil {
		return nil, err
	}
	a, err := tr.analyzeDim(body, dim)
	if err != nil {
		return nil, err
	}
	if err := tr.checkNoInnerModifiers(a); err != nil {
		return nil, err
	}
	if len(a.routines) > 0 {
		return nil, fmt.Errorf("sequenced modifications invoking stored routines are not supported")
	}
	out := &Translation{Strategy: strategy, Dim: dim, ContextBegin: begin, ContextEnd: end, TemporalTables: a.temporalTables}

	switch s := body.(type) {
	case *sqlast.InsertStmt:
		return tr.seqInsert(out, s, begin, end)
	case *sqlast.DeleteStmt:
		return tr.seqDelete(out, s, begin, end)
	case *sqlast.UpdateStmt:
		return tr.seqUpdate(out, s, begin, end)
	}
	return nil, fmt.Errorf("unsupported sequenced modification %T", body)
}

// seqInsert inserts rows valid over exactly [P1, P2); on bitemporal
// targets the assertion is believed from today on.
func (tr *Translator) seqInsert(out *Translation, ins *sqlast.InsertStmt, begin, end sqlast.Expr) (*Translation, error) {
	st := sqlast.CloneStmt(ins).(*sqlast.InsertStmt)
	if !tr.Info.IsTemporalTable(st.Table) {
		return nil, fmt.Errorf("sequenced INSERT requires a temporal target table, %s is not temporal", st.Table)
	}
	bi := tr.isBitemporalTable(st.Table)
	if len(st.Cols) > 0 {
		st.Cols = append(st.Cols, "begin_time", "end_time")
		if bi {
			st.Cols = append(st.Cols, "tt_begin_time", "tt_end_time")
		}
	}
	switch src := st.Source.(type) {
	case *sqlast.ValuesExpr:
		for i := range src.Rows {
			src.Rows[i] = append(src.Rows[i], sqlast.CloneExpr(begin), sqlast.CloneExpr(end))
			if bi {
				src.Rows[i] = append(src.Rows[i], currentDate(), foreverLit())
			}
		}
	case *sqlast.SelectStmt:
		src.Items = append(src.Items,
			sqlast.SelectItem{Expr: sqlast.CloneExpr(begin), Alias: "begin_time"},
			sqlast.SelectItem{Expr: sqlast.CloneExpr(end), Alias: "end_time"})
		if bi {
			src.Items = append(src.Items,
				sqlast.SelectItem{Expr: currentDate(), Alias: "tt_begin_time"},
				sqlast.SelectItem{Expr: foreverLit(), Alias: "tt_end_time"})
		}
	default:
		return nil, fmt.Errorf("sequenced INSERT requires a VALUES or SELECT source")
	}
	out.Main = st
	return out, nil
}

// checkRowLocalWhere rejects WHERE clauses that reference other tables:
// sequenced DML supports row-local predicates on the target table.
func checkRowLocalWhere(where sqlast.Expr) error {
	bad := false
	sqlast.Walk(where, func(n sqlast.Node) bool {
		switch n.(type) {
		case *sqlast.SubqueryExpr, *sqlast.ExistsExpr:
			bad = true
			return false
		case *sqlast.InExpr:
			if in := n.(*sqlast.InExpr); in.Sub != nil {
				bad = true
			}
		}
		return true
	})
	if bad {
		return fmt.Errorf("sequenced modifications support only row-local WHERE predicates on the target table")
	}
	return nil
}

// seqDelete removes validity inside [P1, P2), preserving the parts of
// straddling rows outside the period.
func (tr *Translator) seqDelete(out *Translation, del *sqlast.DeleteStmt, begin, end sqlast.Expr) (*Translation, error) {
	if !tr.Info.IsTemporalTable(del.Table) {
		return nil, fmt.Errorf("sequenced DELETE requires a temporal target table, %s is not temporal", del.Table)
	}
	if err := checkRowLocalWhere(del.Where); err != nil {
		return nil, err
	}
	alias := del.Alias
	if alias == "" {
		alias = del.Table
	}
	bi := tr.isBitemporalTable(del.Table)
	affected := andExpr(sqlast.CloneExpr(del.Where), overlapPred(alias, begin, end))
	if bi {
		affected = andExpr(affected, ttCurrentOverlap(alias))
	}

	cols := tr.tableColumns(del.Table)
	if cols == nil {
		return nil, fmt.Errorf("unknown temporal table %s", del.Table)
	}
	dataCols := cols[:len(cols)-2]
	if bi {
		dataCols = cols[:len(cols)-4]
	}

	// 1. Materialize the affected rows.
	out.Setup = append(out.Setup,
		&sqlast.DropTableStmt{Name: seqDMLTemp, IfExists: true},
		&sqlast.CreateTableStmt{Name: seqDMLTemp, Temporary: true, WithData: true,
			AsQuery: &sqlast.SelectStmt{
				Items: []sqlast.SelectItem{{Star: true}},
				From:  []sqlast.TableRef{&sqlast.BaseTable{Name: del.Table, Alias: alias}},
				Where: sqlast.CloneExpr(affected),
			}})
	// 2. Retire the originals: plain deletion on a valid-time table,
	// belief versioning on a bitemporal one (same-day assertions vanish,
	// older ones are closed at today).
	out.Setup = append(out.Setup, tr.retireAffected(del.Table, del.Alias, alias, affected, bi)...)
	out.Setup = append(out.Setup,
		// 3. Re-insert the left remnants [b, P1).
		remnantInsert(del.Table, dataCols, begin, end, true, bi),
		// 4. Re-insert the right remnants [P2, e).
		remnantInsert(del.Table, dataCols, begin, end, false, bi),
	)
	out.Main = &sqlast.DropTableStmt{Name: seqDMLTemp, IfExists: true}
	return out, nil
}

// retireAffected removes the affected originals. On a valid-time table
// that is a DELETE; on a bitemporal table the beliefs asserted today
// are deleted outright (date-granular transaction time never recorded
// them) and the rest are closed at CURRENT_DATE, preserving the audit
// past.
func (tr *Translator) retireAffected(table, declAlias, alias string, affected sqlast.Expr, bi bool) []sqlast.Stmt {
	if !bi {
		return []sqlast.Stmt{
			&sqlast.DeleteStmt{Table: table, Alias: declAlias, Where: sqlast.CloneExpr(affected)},
		}
	}
	return []sqlast.Stmt{
		&sqlast.DeleteStmt{Table: table, Alias: declAlias,
			Where: andExpr(sqlast.CloneExpr(affected),
				&sqlast.BinaryExpr{Op: "=", L: col(alias, "tt_begin_time"), R: currentDate()})},
		&sqlast.UpdateStmt{Table: table, Alias: declAlias,
			Sets:  []sqlast.SetClause{{Column: "tt_end_time", Value: currentDate()}},
			Where: sqlast.CloneExpr(affected)},
	}
}

// remnantInsert builds INSERT INTO target SELECT data..., for the left
// (left=true: [begin_time, P1) where begin_time < P1) or right remnant
// ([P2, end_time) where end_time > P2) of the materialized rows. On a
// bitemporal target the remnants are fresh assertions believed from
// today on.
func remnantInsert(target string, dataCols []string, p1, p2 sqlast.Expr, left, bi bool) sqlast.Stmt {
	items := make([]sqlast.SelectItem, 0, len(dataCols)+4)
	for _, c := range dataCols {
		items = append(items, sqlast.SelectItem{Expr: col("", c)})
	}
	var where sqlast.Expr
	if left {
		items = append(items,
			sqlast.SelectItem{Expr: col("", "begin_time")},
			sqlast.SelectItem{Expr: sqlast.CloneExpr(p1)})
		where = &sqlast.BinaryExpr{Op: "<", L: col("", "begin_time"), R: sqlast.CloneExpr(p1)}
	} else {
		items = append(items,
			sqlast.SelectItem{Expr: sqlast.CloneExpr(p2)},
			sqlast.SelectItem{Expr: col("", "end_time")})
		where = &sqlast.BinaryExpr{Op: ">", L: col("", "end_time"), R: sqlast.CloneExpr(p2)}
	}
	if bi {
		items = append(items,
			sqlast.SelectItem{Expr: currentDate()},
			sqlast.SelectItem{Expr: foreverLit()})
	}
	return &sqlast.InsertStmt{Table: target, Source: &sqlast.SelectStmt{
		Items: items,
		From:  []sqlast.TableRef{&sqlast.BaseTable{Name: seqDMLTemp}},
		Where: where,
	}}
}

// seqUpdate applies the SET clauses inside [P1, P2) only, preserving
// the original values outside.
func (tr *Translator) seqUpdate(out *Translation, upd *sqlast.UpdateStmt, begin, end sqlast.Expr) (*Translation, error) {
	if !tr.Info.IsTemporalTable(upd.Table) {
		return nil, fmt.Errorf("sequenced UPDATE requires a temporal target table, %s is not temporal", upd.Table)
	}
	if err := checkRowLocalWhere(upd.Where); err != nil {
		return nil, err
	}
	alias := upd.Alias
	if alias == "" {
		alias = upd.Table
	}
	bi := tr.isBitemporalTable(upd.Table)
	affected := andExpr(sqlast.CloneExpr(upd.Where), overlapPred(alias, begin, end))
	if bi {
		affected = andExpr(affected, ttCurrentOverlap(alias))
	}

	cols := tr.tableColumns(upd.Table)
	if cols == nil {
		return nil, fmt.Errorf("unknown temporal table %s", upd.Table)
	}
	dataCols := cols[:len(cols)-2]
	if bi {
		dataCols = cols[:len(cols)-4]
	}

	// Updated portion: SET applied, period clipped to the overlap.
	updItems := make([]sqlast.SelectItem, 0, len(cols))
	for _, c := range dataCols {
		var e sqlast.Expr = col("", c)
		for _, sc := range upd.Sets {
			if equalFoldName(sc.Column, c) {
				e = sqlast.CloneExpr(sc.Value)
			}
		}
		updItems = append(updItems, sqlast.SelectItem{Expr: e})
	}
	updItems = append(updItems,
		sqlast.SelectItem{Expr: &sqlast.FuncCall{Name: "LAST_INSTANCE",
			Args: []sqlast.Expr{col("", "begin_time"), sqlast.CloneExpr(begin)}}},
		sqlast.SelectItem{Expr: &sqlast.FuncCall{Name: "FIRST_INSTANCE",
			Args: []sqlast.Expr{col("", "end_time"), sqlast.CloneExpr(end)}}})
	if bi {
		updItems = append(updItems,
			sqlast.SelectItem{Expr: currentDate()},
			sqlast.SelectItem{Expr: foreverLit()})
	}

	out.Setup = append(out.Setup,
		&sqlast.DropTableStmt{Name: seqDMLTemp, IfExists: true},
		&sqlast.CreateTableStmt{Name: seqDMLTemp, Temporary: true, WithData: true,
			AsQuery: &sqlast.SelectStmt{
				Items: []sqlast.SelectItem{{Star: true}},
				From:  []sqlast.TableRef{&sqlast.BaseTable{Name: upd.Table, Alias: alias}},
				Where: sqlast.CloneExpr(affected),
			}})
	out.Setup = append(out.Setup, tr.retireAffected(upd.Table, upd.Alias, alias, affected, bi)...)
	out.Setup = append(out.Setup,
		remnantInsert(upd.Table, dataCols, begin, end, true, bi),
		remnantInsert(upd.Table, dataCols, begin, end, false, bi),
		&sqlast.InsertStmt{Table: upd.Table, Source: &sqlast.SelectStmt{
			Items: updItems,
			From:  []sqlast.TableRef{&sqlast.BaseTable{Name: seqDMLTemp}},
		}},
	)
	out.Main = &sqlast.DropTableStmt{Name: seqDMLTemp, IfExists: true}
	return out, nil
}

func equalFoldName(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'a' <= ca && ca <= 'z' {
			ca -= 'a' - 'A'
		}
		if 'a' <= cb && cb <= 'z' {
			cb -= 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
