package core

import "testing"

// Table-driven coverage of the §VII-F heuristic: every clause, both
// sides of every threshold, and the decision reason reported for each.
func TestChooseExplained(t *testing.T) {
	tests := []struct {
		name   string
		f      Features
		want   Strategy
		reason Reason
	}{
		{
			name: "clause a: not transformable forces MAX",
			f:    Features{PerstTransformable: false},
			want: StrategyMax, reason: ReasonNotTransformable,
		},
		{
			name: "clause a wins even when other clauses would pick PERST",
			f: Features{PerstTransformable: false, TemporalRows: SmallRowsThreshold + 1,
				ContextDays: ShortContextDays + 1},
			want: StrategyMax, reason: ReasonNotTransformable,
		},
		{
			name: "clause b: per-period cursor on a large data set",
			f: Features{PerstTransformable: true, UsesPerPeriodCursor: true,
				TemporalRows: LargeRowsThreshold, ContextDays: ShortContextDays + 1},
			want: StrategyMax, reason: ReasonPerPeriodCursor,
		},
		{
			name: "clause b does not fire below the large-rows threshold",
			f: Features{PerstTransformable: true, UsesPerPeriodCursor: true,
				TemporalRows: LargeRowsThreshold - 1, ContextDays: ShortContextDays + 1},
			want: StrategyPerStatement, reason: ReasonDefault,
		},
		{
			name: "clause b needs the cursor pattern, not just size",
			f: Features{PerstTransformable: true, UsesPerPeriodCursor: false,
				TemporalRows: LargeRowsThreshold * 100, ContextDays: ShortContextDays + 1},
			want: StrategyPerStatement, reason: ReasonDefault,
		},
		{
			name: "clause c: small database with short context",
			f: Features{PerstTransformable: true,
				TemporalRows: SmallRowsThreshold, ContextDays: ShortContextDays},
			want: StrategyMax, reason: ReasonShortContext,
		},
		{
			name: "clause c does not fire on a large database",
			f: Features{PerstTransformable: true,
				TemporalRows: SmallRowsThreshold + 1, ContextDays: ShortContextDays},
			want: StrategyPerStatement, reason: ReasonDefault,
		},
		{
			name: "clause c does not fire on a long context",
			f: Features{PerstTransformable: true,
				TemporalRows: SmallRowsThreshold, ContextDays: ShortContextDays + 1},
			want: StrategyPerStatement, reason: ReasonDefault,
		},
		{
			name: "default: PERST wins most measured configurations",
			f: Features{PerstTransformable: true,
				TemporalRows: SmallRowsThreshold + 1, ContextDays: 365},
			want: StrategyPerStatement, reason: ReasonDefault,
		},
		{
			name: "clause b is checked before clause c",
			f: Features{PerstTransformable: true, UsesPerPeriodCursor: true,
				TemporalRows: LargeRowsThreshold, ContextDays: ShortContextDays},
			want: StrategyMax, reason: ReasonPerPeriodCursor,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, reason := ChooseExplained(tc.f)
			if got != tc.want || reason != tc.reason {
				t.Fatalf("ChooseExplained(%+v) = (%v, %q), want (%v, %q)",
					tc.f, got, reason, tc.want, tc.reason)
			}
			if only := Choose(tc.f); only != got {
				t.Fatalf("Choose and ChooseExplained disagree: %v vs %v", only, got)
			}
		})
	}
}
