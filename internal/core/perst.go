package core

import (
	"fmt"
	"strings"

	"taupsm/internal/sqlast"
)

// Per-statement slicing (paper §VI): each sequenced routine becomes a
// semantically equivalent conventional routine operating on temporal
// tables. The signature gains (period_begin, period_end); the return
// value becomes a temporal table ROW(taupsm_result T, begin_time,
// end_time) ARRAY; time-varying local variables become table-valued;
// SET becomes a sequenced delete+insert; RETURN inserts into the return
// collection; cursors and FOR loops over temporal queries process rows
// per period. The mapping is not complete: constructs it cannot express
// (notably the non-nested FETCH of τPSM q17b, temporal subqueries and
// temporal aggregation) yield ErrNotTransformable, and callers fall
// back to MAX.

func (tr *Translator) perStatement(body sqlast.Stmt, begin, end sqlast.Expr, dim sqlast.TemporalDimension, ctxBegin, ctxEnd sqlast.Expr) (*Translation, error) {
	switch body.(type) {
	case *sqlast.InsertStmt, *sqlast.UpdateStmt, *sqlast.DeleteStmt:
		return tr.sequencedDML(body, begin, end, StrategyPerStatement, dim, ctxBegin, ctxEnd)
	}
	a, err := tr.analyzeDim(body, dim)
	if err != nil {
		return nil, err
	}
	if err := tr.checkNoInnerModifiers(a); err != nil {
		return nil, err
	}
	if err := tr.checkExplicitContext(a, dim, ctxBegin); err != nil {
		return nil, err
	}
	out := &Translation{
		Strategy: StrategyPerStatement, Dim: dim, ContextBegin: begin, ContextEnd: end,
		TemporalTables: a.temporalTables,
	}
	if _, ok := body.(sqlast.QueryExpr); !ok {
		return nil, fmt.Errorf("%w: only queries and modifications are supported under %s", ErrNotTransformable, dim.Keyword())
	}

	if len(a.temporalTables) == 0 {
		main := sqlast.CloneStmt(body).(sqlast.QueryExpr)
		tr.addContextFilters(main, dim, ctxBegin, ctxEnd)
		prependPeriodItems(main, sqlast.CloneExpr(begin), sqlast.CloneExpr(end))
		out.Main = main.(sqlast.Stmt)
		return out, nil
	}

	for _, rn := range a.routines {
		if !a.temporalRoutine(rn) {
			continue
		}
		def, ppc, err := tr.psRoutine(a, rn)
		if err != nil {
			return nil, err
		}
		out.Routines = append(out.Routines, def)
		out.UsesPerPeriodCursor = out.UsesPerPeriodCursor || ppc
	}

	counter := 0
	main := sqlast.CloneStmt(body).(sqlast.QueryExpr)
	var rewriteTree func(q sqlast.QueryExpr) error
	rewriteTree = func(q sqlast.QueryExpr) error {
		switch x := q.(type) {
		case *sqlast.SelectStmt:
			sc := &seqCtx{a: a, pBegin: begin, pEnd: end,
				ctxBegin: ctxBegin, ctxEnd: ctxEnd,
				localTemporal: map[string]bool{}, lateralCounter: &counter}
			return tr.rewriteSequencedSelect(x, sc)
		case *sqlast.SetOpExpr:
			if err := rewriteTree(x.L); err != nil {
				return err
			}
			return rewriteTree(x.R)
		}
		return fmt.Errorf("%w: unsupported query form %T", ErrNotTransformable, q)
	}
	if err := rewriteTree(main); err != nil {
		return nil, err
	}
	out.Main = main.(sqlast.Stmt)
	return out, nil
}

// ---------- routine transformation ----------

const returnVar = "taupsm_return"

// psState is the per-routine transformation state.
type psState struct {
	tr *Translator
	a  *analysis

	tv            map[string]bool            // time-varying variables
	varTypes      map[string]sqlast.TypeName // declared variable types
	hasDefault    map[string]bool            // variables declared with DEFAULT
	assignCount   map[string]int             // assignments per variable
	cursorQueries map[string]sqlast.Stmt     // cursor name -> query
	tempLoopVars  map[string]bool            // FOR loop vars over temporal queries
	localTemporal map[string]bool            // local temp tables holding temporal data
	localTables   map[string][]string        // local temp tables' declared columns

	usesPPC        bool
	lateralCounter int
	auxCounter     int

	// pending auxiliary declarations for the innermost compound
	pendingDecls []*sqlast.VarDecl
}

// psEnv is the evaluation-period environment at one point in the body.
type psEnv struct {
	pBegin, pEnd   sqlast.Expr
	inTemporalLoop bool
}

func (tr *Translator) psRoutine(a *analysis, name string) (sqlast.Stmt, bool, error) {
	def := sqlast.CloneStmt(a.routineDef[strings.ToLower(name)])
	st := &psState{
		tr: tr, a: a,
		tv:            map[string]bool{},
		varTypes:      map[string]sqlast.TypeName{},
		hasDefault:    map[string]bool{},
		assignCount:   map[string]int{},
		cursorQueries: map[string]sqlast.Stmt{},
		tempLoopVars:  map[string]bool{},
		localTemporal: map[string]bool{},
		localTables:   map[string][]string{},
	}
	periodParams := []sqlast.ParamDef{
		{Name: "period_begin", Type: sqlast.TypeName{Base: "DATE"}},
		{Name: "period_end", Type: sqlast.TypeName{Base: "DATE"}},
	}
	var body sqlast.Stmt
	var origReturns sqlast.TypeName
	isFunc := false
	switch d := def.(type) {
	case *sqlast.CreateFunctionStmt:
		isFunc = true
		d.Name = "ps_" + d.Name
		d.Params = append(d.Params, periodParams...)
		d.Replace = true
		origReturns = d.Returns
		if d.Returns.IsCollection() {
			d.Returns.Row = append(append([]sqlast.ColumnDef{}, d.Returns.Row...),
				sqlast.ColumnDef{Name: "begin_time", Type: sqlast.TypeName{Base: "DATE"}},
				sqlast.ColumnDef{Name: "end_time", Type: sqlast.TypeName{Base: "DATE"}})
		} else {
			d.Returns = psCollectionType(d.Returns)
		}
		body = d.Body
	case *sqlast.CreateProcedureStmt:
		d.Name = "ps_" + d.Name
		// OUT/INOUT parameters of a sequenced procedure carry temporal
		// tables (§VI-A: "the output and return values are all
		// temporal tables").
		for i := range d.Params {
			if d.Params[i].Mode != sqlast.ModeIn && !d.Params[i].Type.IsCollection() {
				st.tv[strings.ToLower(d.Params[i].Name)] = true
				st.varTypes[strings.ToLower(d.Params[i].Name)] = d.Params[i].Type
				d.Params[i].Type = psCollectionType(d.Params[i].Type)
			}
		}
		d.Params = append(d.Params, periodParams...)
		d.Replace = true
		body = d.Body
	default:
		return nil, false, fmt.Errorf("%w: cannot transform routine %s", ErrNotTransformable, name)
	}

	comp, ok := body.(*sqlast.CompoundStmt)
	if !ok {
		comp = &sqlast.CompoundStmt{Stmts: []sqlast.Stmt{body}}
	}

	st.preAnalyze(comp)
	env := psEnv{pBegin: &sqlast.ColumnRef{Column: "period_begin"}, pEnd: &sqlast.ColumnRef{Column: "period_end"}}
	newComp, err := st.transformCompound(comp, env)
	if err != nil {
		return nil, false, fmt.Errorf("routine %s: %w", name, err)
	}

	if isFunc && !origReturns.IsCollection() {
		// Declare the return collection and make sure the function ends
		// by returning it.
		newComp.VarDecls = append([]*sqlast.VarDecl{{
			Names: []string{returnVar}, Type: psCollectionType(origReturns),
		}}, newComp.VarDecls...)
		last := len(newComp.Stmts)
		if last == 0 || !isReturn(newComp.Stmts[last-1]) {
			newComp.Stmts = append(newComp.Stmts, &sqlast.ReturnStmt{Value: &sqlast.ColumnRef{Column: returnVar}})
		}
	}

	switch d := def.(type) {
	case *sqlast.CreateFunctionStmt:
		d.Body = newComp
	case *sqlast.CreateProcedureStmt:
		d.Body = newComp
	}
	return def, st.usesPPC, nil
}

func isReturn(s sqlast.Stmt) bool {
	_, ok := s.(*sqlast.ReturnStmt)
	return ok
}

// psCollectionType builds ROW(taupsm_result T, begin_time DATE,
// end_time DATE) ARRAY.
func psCollectionType(t sqlast.TypeName) sqlast.TypeName {
	return sqlast.TypeName{Base: "ROW", Array: true, Row: []sqlast.ColumnDef{
		{Name: "taupsm_result", Type: t},
		{Name: "begin_time", Type: sqlast.TypeName{Base: "DATE"}},
		{Name: "end_time", Type: sqlast.TypeName{Base: "DATE"}},
	}}
}

// ---------- compile-time analysis of the routine body ----------

// preAnalyze records variable types, cursor queries, assignment counts,
// temporal loop variables and locally created temporal temp tables, and
// runs the time-varying fixpoint (§VI-C: "Compile-time analysis is used
// [to] determine the scope of each time-varying variable").
func (st *psState) preAnalyze(body sqlast.Stmt) {
	sqlast.Walk(body, func(n sqlast.Node) bool {
		switch x := n.(type) {
		case *sqlast.CompoundStmt:
			for _, d := range x.VarDecls {
				for _, nm := range d.Names {
					k := strings.ToLower(nm)
					st.varTypes[k] = d.Type
					if d.Default != nil {
						st.hasDefault[k] = true
					}
					if d.Type.IsCollection() {
						// Collection variables in a temporal routine
						// carry periods and act as temporal operands.
						st.localTemporal[k] = true
					}
				}
			}
			for _, c := range x.Cursors {
				st.cursorQueries[strings.ToLower(c.Name)] = c.Query
			}
		case *sqlast.SetStmt:
			st.assignCount[strings.ToLower(x.Target)]++
		case *sqlast.FetchStmt:
			for _, v := range x.Into {
				st.assignCount[strings.ToLower(v)]++
			}
		case *sqlast.CallStmt:
			if pr := st.tr.Info.Procedure(x.Name); pr != nil {
				for i, p := range pr.Params {
					if p.Mode != sqlast.ModeIn && i < len(x.Args) {
						if cr, ok := x.Args[i].(*sqlast.ColumnRef); ok && cr.Table == "" {
							st.assignCount[strings.ToLower(cr.Column)]++
						}
					}
				}
			}
		case *sqlast.CreateTableStmt:
			if x.Temporary {
				// Locally created table: temporal if anything temporal
				// is ever inserted (resolved after the fixpoint).
				k := strings.ToLower(x.Name)
				if _, seen := st.localTemporal[k]; !seen {
					st.localTemporal[k] = false
				}
				var cols []string
				for _, c := range x.Cols {
					cols = append(cols, c.Name)
				}
				st.localTables[k] = cols
			}
		}
		return true
	})

	// Time-varying fixpoint.
	for changed := true; changed; {
		changed = false
		mark := func(name string) {
			k := strings.ToLower(name)
			if !st.tv[k] {
				st.tv[k] = true
				changed = true
			}
		}
		sqlast.Walk(body, func(n sqlast.Node) bool {
			switch x := n.(type) {
			case *sqlast.SetStmt:
				if st.exprTemporal(x.Value) {
					mark(x.Target)
				}
			case *sqlast.FetchStmt:
				q := st.cursorQueries[strings.ToLower(x.Cursor)]
				if q != nil && st.nodeTemporal(q) {
					for _, v := range x.Into {
						mark(v)
					}
				}
			case *sqlast.ForStmt:
				if st.nodeTemporal(x.Query) {
					k := strings.ToLower(x.LoopVar)
					if !st.tempLoopVars[k] {
						st.tempLoopVars[k] = true
						changed = true
					}
				}
			case *sqlast.CallStmt:
				if pr := st.tr.Info.Procedure(x.Name); pr != nil && st.a.temporalRoutine(x.Name) {
					for i, p := range pr.Params {
						if p.Mode != sqlast.ModeIn && i < len(x.Args) {
							if cr, ok := x.Args[i].(*sqlast.ColumnRef); ok && cr.Table == "" {
								mark(cr.Column)
							}
						}
					}
				}
			case *sqlast.InsertStmt:
				k := strings.ToLower(x.Table)
				if lt, isLocal := st.localTemporal[k]; isLocal && !lt && st.nodeTemporal(x.Source) {
					st.localTemporal[k] = true
					changed = true
				}
			}
			return true
		})
		// Accumulator rule: a self-referencing assignment (SET n =
		// n + 1) inside per-period iteration — a loop containing a
		// temporal FETCH, or the body of a FOR over a temporal query —
		// accumulates per period and is therefore time-varying.
		if st.markAccumulators(bodyStmts(body), false) {
			changed = true
		}
	}
}

// bodyStmts unwraps a compound body into its statement list.
func bodyStmts(s sqlast.Stmt) []sqlast.Stmt {
	if c, ok := s.(*sqlast.CompoundStmt); ok {
		return c.Stmts
	}
	return []sqlast.Stmt{s}
}

// containsTemporalFetch reports a FETCH of a temporal cursor anywhere
// under the statements.
func (st *psState) containsTemporalFetch(stmts []sqlast.Stmt) bool {
	found := false
	for _, s := range stmts {
		sqlast.Walk(s, func(n sqlast.Node) bool {
			if f, ok := n.(*sqlast.FetchStmt); ok {
				if q := st.cursorQueries[strings.ToLower(f.Cursor)]; q != nil && st.nodeTemporal(q) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// markAccumulators walks the body marking self-referencing assignment
// targets inside per-period iteration as time-varying; it reports
// whether anything changed.
func (st *psState) markAccumulators(stmts []sqlast.Stmt, inPerPeriod bool) bool {
	changed := false
	for _, s := range stmts {
		switch x := s.(type) {
		case *sqlast.SetStmt:
			if inPerPeriod && referencesVar(x.Value, x.Target) {
				k := strings.ToLower(x.Target)
				if !st.tv[k] {
					st.tv[k] = true
					changed = true
				}
			}
		case *sqlast.CompoundStmt:
			changed = st.markAccumulators(x.Stmts, inPerPeriod) || changed
		case *sqlast.IfStmt:
			changed = st.markAccumulators(x.Then, inPerPeriod) || changed
			for _, ei := range x.ElseIfs {
				changed = st.markAccumulators(ei.Then, inPerPeriod) || changed
			}
			changed = st.markAccumulators(x.Else, inPerPeriod) || changed
		case *sqlast.CaseStmt:
			for _, w := range x.Whens {
				changed = st.markAccumulators(w.Then, inPerPeriod) || changed
			}
			changed = st.markAccumulators(x.Else, inPerPeriod) || changed
		case *sqlast.WhileStmt:
			pp := inPerPeriod || st.containsTemporalFetch(x.Body)
			changed = st.markAccumulators(x.Body, pp) || changed
		case *sqlast.RepeatStmt:
			pp := inPerPeriod || st.containsTemporalFetch(x.Body)
			changed = st.markAccumulators(x.Body, pp) || changed
		case *sqlast.LoopStmt:
			pp := inPerPeriod || st.containsTemporalFetch(x.Body)
			changed = st.markAccumulators(x.Body, pp) || changed
		case *sqlast.ForStmt:
			pp := inPerPeriod || st.nodeTemporal(x.Query) || st.containsTemporalFetch(x.Body)
			changed = st.markAccumulators(x.Body, pp) || changed
		}
	}
	return changed
}

// exprTemporal reports whether evaluating e involves temporal data:
// temporal tables (in subqueries), temporal routines, time-varying
// variables, or temporal loop variables.
func (st *psState) exprTemporal(e sqlast.Expr) bool {
	if e == nil {
		return false
	}
	return st.nodeTemporal(e)
}

func (st *psState) nodeTemporal(n sqlast.Node) bool {
	found := false
	sqlast.Walk(n, func(m sqlast.Node) bool {
		switch x := m.(type) {
		case *sqlast.BaseTable:
			if st.tr.Info.IsTemporalTable(x.Name) || st.localTemporal[strings.ToLower(x.Name)] {
				found = true
			}
		case *sqlast.FuncCall:
			if st.a.temporalRoutine(x.Name) {
				found = true
			}
		case *sqlast.ColumnRef:
			if x.Table == "" && st.tv[strings.ToLower(x.Column)] {
				found = true
			}
			if x.Table != "" && st.tempLoopVars[strings.ToLower(x.Table)] {
				found = true
			}
		}
		return !found
	})
	return found
}

func (st *psState) freshAux(prefix string) string {
	st.auxCounter++
	return fmt.Sprintf("taupsm_%s%d", prefix, st.auxCounter)
}
