// Package core implements the paper's contribution: the stratum that
// translates Temporal SQL/PSM — queries and stored routines carrying
// the SQL/Temporal statement modifiers VALIDTIME and NONSEQUENCED
// VALIDTIME — into conventional SQL/PSM over tables with explicit
// begin_time/end_time columns.
//
// Three semantics are implemented (paper §IV):
//
//   - current (no modifier): every WHERE over a temporal table gains a
//     begin_time <= CURRENT_DATE AND CURRENT_DATE < end_time predicate,
//     in the statement and in curr_-prefixed clones of every reachable
//     routine; current modifications maintain validity periods.
//   - sequenced (VALIDTIME [(bt, et)]): two slicing strategies —
//     maximally-fragmented slicing (§V) and per-statement slicing (§VI).
//   - nonsequenced (NONSEQUENCED VALIDTIME): timestamps are ordinary
//     columns; the statement passes through with routines unchanged.
package core

import (
	"errors"
	"fmt"

	"taupsm/internal/sqlast"
	"taupsm/internal/types"
)

// Strategy selects how sequenced statements are sliced.
type Strategy int

// Slicing strategies.
const (
	// StrategyAuto picks MAX or PERST with the §VII-F heuristic.
	StrategyAuto Strategy = iota
	// StrategyMax is maximally-fragmented slicing: evaluate once per
	// constant period. Always applicable.
	StrategyMax
	// StrategyPerStatement is per-statement slicing: routines are
	// rewritten to operate on temporal tables. Not complete.
	StrategyPerStatement
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyMax:
		return "MAX"
	case StrategyPerStatement:
		return "PERST"
	}
	return "AUTO"
}

// ErrNotTransformable reports that per-statement slicing cannot handle
// a construct (e.g. the non-nested FETCH of τPSM q17b); callers fall
// back to maximally-fragmented slicing, which always applies.
var ErrNotTransformable = errors.New("per-statement slicing cannot transform this statement")

// ErrSequencedModifierInRoutine reports a temporal modifier inside a
// routine invoked from a sequenced or current context, which the paper
// defines as a semantic error (§IV-A).
var ErrSequencedModifierInRoutine = errors.New(
	"a routine containing a temporal statement modifier may only be invoked from a nonsequenced context")

// SchemaInfo is what the translator needs to know about the database
// schema. The public facade implements it over the engine's catalog.
type SchemaInfo interface {
	// IsTemporalTable reports whether name is a table with valid-time
	// support.
	IsTemporalTable(name string) bool
	// IsTable reports whether name is a stored table or view.
	IsTable(name string) bool
	// Function returns the definition of a stored SQL function, or nil.
	Function(name string) *sqlast.CreateFunctionStmt
	// Procedure returns the definition of a stored procedure, or nil.
	Procedure(name string) *sqlast.CreateProcedureStmt
}

// Translation is the conventional SQL/PSM a temporal statement compiles
// to.
type Translation struct {
	// Strategy actually used (meaningful for sequenced statements).
	Strategy Strategy
	// Dim is the dimension a sequenced statement slices along
	// (DimValid unless the statement modifier named TRANSACTIONTIME).
	Dim sqlast.TemporalDimension
	// Routines are transformed routine definitions (curr_/max_/ps_
	// clones) that must exist before Main runs. Idempotent: callers
	// may skip ones already registered.
	Routines []sqlast.Stmt
	// Setup statements run before Main (e.g. the Figure-8 ts/cp
	// construction for MAX slicing, or the materialize/delete/re-insert
	// sequence of sequenced modifications).
	Setup []sqlast.Stmt
	// NeedsConstantPeriods marks MAX-sliced queries whose Setup builds
	// the taupsm_ts/taupsm_cp tables; executors may substitute a native
	// constant-period computation for that Setup. Other translations'
	// Setup statements must always run.
	NeedsConstantPeriods bool
	// Main is the rewritten statement.
	Main sqlast.Stmt
	// Teardown statements run after Main (dropping temp objects).
	Teardown []sqlast.Stmt

	// Context is the sequenced temporal context [Begin, End) as
	// expressions (literals for defaulted contexts).
	ContextBegin, ContextEnd sqlast.Expr

	// TemporalTables are the temporal tables reachable from the
	// statement (directly or through routines), in first-seen order.
	TemporalTables []string

	// UsesPerPeriodCursor reports that the PERST translation processes
	// cursors on a per-period basis via auxiliary tables (the
	// heuristic's clause (b), paper §VII-F).
	UsesPerPeriodCursor bool
}

// SQL renders the complete translation as a script.
func (t *Translation) SQL() string {
	var stmts []sqlast.Stmt
	stmts = append(stmts, t.Routines...)
	stmts = append(stmts, t.Setup...)
	if t.Main != nil {
		stmts = append(stmts, t.Main)
	}
	stmts = append(stmts, t.Teardown...)
	return sqlast.Script(stmts)
}

// Translator converts Temporal SQL/PSM statements to conventional
// SQL/PSM against a schema.
type Translator struct {
	Info SchemaInfo
}

// NewTranslator returns a Translator over the given schema.
func NewTranslator(info SchemaInfo) *Translator {
	return &Translator{Info: info}
}

// defaultContext is the whole-timeline temporal context used when a
// sequenced statement has no explicit period.
func defaultContext() (sqlast.Expr, sqlast.Expr) {
	return &sqlast.Literal{Val: types.NewDate(types.MustDate(1, 1, 1))},
		&sqlast.Literal{Val: types.NewDate(types.Forever)}
}

// Translate rewrites one Temporal SQL/PSM statement. Statements without
// a modifier get current semantics; VALIDTIME statements are sliced
// with the requested strategy (StrategyAuto applies the heuristic after
// attempting PERST); NONSEQUENCED VALIDTIME statements pass through.
func (tr *Translator) Translate(stmt sqlast.Stmt, strategy Strategy) (*Translation, error) {
	if v, ok := stmt.(*sqlast.CreateViewStmt); ok && v.Mod != sqlast.ModCurrent {
		return tr.translateView(v)
	}
	ts, ok := stmt.(*sqlast.TemporalStmt)
	if !ok {
		return tr.translateCurrent(stmt)
	}
	switch ts.Mod {
	case sqlast.ModCurrent:
		return tr.translateCurrent(ts.Body)
	case sqlast.ModNonsequenced:
		return tr.translateNonsequenced(ts.Body, ts.Dim, ts.Ctx)
	case sqlast.ModSequenced:
		var begin, end sqlast.Expr
		if ts.Period != nil {
			begin, end = ts.Period.Begin, ts.Period.End
		} else {
			begin, end = defaultContext()
		}
		ctxBegin, ctxEnd := ctxPeriod(ts.Ctx)
		return tr.translateSequenced(ts.Body, begin, end, strategy, ts.Dim, ctxBegin, ctxEnd)
	}
	return nil, fmt.Errorf("unknown temporal modifier %v", ts.Mod)
}

// ctxPeriod extracts the explicit secondary-dimension context period;
// (nil, nil) means the default context, the current instant.
func ctxPeriod(ctx *sqlast.DimContext) (sqlast.Expr, sqlast.Expr) {
	if ctx == nil || ctx.Period == nil {
		return nil, nil
	}
	return ctx.Period.Begin, ctx.Period.End
}

func (tr *Translator) translateSequenced(body sqlast.Stmt, begin, end sqlast.Expr, strategy Strategy, dim sqlast.TemporalDimension, ctxBegin, ctxEnd sqlast.Expr) (*Translation, error) {
	if v, ok := body.(*sqlast.CreateViewStmt); ok {
		if dim == sqlast.DimTransaction {
			return nil, fmt.Errorf("sequenced transaction-time views are not supported")
		}
		sv := sqlast.CloneStmt(v).(*sqlast.CreateViewStmt)
		sv.Mod = sqlast.ModSequenced
		return tr.translateView(sv)
	}
	switch strategy {
	case StrategyMax:
		return tr.maxSlice(body, begin, end, dim, ctxBegin, ctxEnd)
	case StrategyPerStatement:
		return tr.perStatement(body, begin, end, dim, ctxBegin, ctxEnd)
	default: // StrategyAuto: prefer PERST, falling back to MAX
		t, err := tr.perStatement(body, begin, end, dim, ctxBegin, ctxEnd)
		if err == nil {
			return t, nil
		}
		if errors.Is(err, ErrNotTransformable) {
			return tr.maxSlice(body, begin, end, dim, ctxBegin, ctxEnd)
		}
		return nil, err
	}
}

// translateNonsequenced strips the modifier: timestamps are ordinary
// columns the user manipulates explicitly. Inner sequenced queries in
// reachable routines are legal in this context (paper §IV-A); routines
// are used as stored, with any inner NONSEQUENCED modifiers stripped.
// On bitemporal tables only the statement's own dimension is exposed as
// ordinary columns; the orthogonal transaction-time pair stays
// system-maintained, and an `AND <dim> (...)` clause filters tables
// carrying the orthogonal dimension to that context.
func (tr *Translator) translateNonsequenced(body sqlast.Stmt, dim sqlast.TemporalDimension, ctx *sqlast.DimContext) (*Translation, error) {
	a, err := tr.analyze(body)
	if err != nil {
		return nil, err
	}
	if err := tr.checkNoManualTransactionDML(body); err != nil {
		return nil, err
	}
	if err := tr.checkNonseqBitemporalDML(body); err != nil {
		return nil, err
	}
	out := &Translation{Main: sqlast.CloneStmt(body), TemporalTables: a.temporalTables, Dim: dim}
	if ins, ok := out.Main.(*sqlast.InsertStmt); ok && !ins.VarTarget && tr.isBitemporalTable(ins.Table) {
		if err := tr.appendNonseqTT(ins); err != nil {
			return nil, err
		}
	}
	if ctx != nil {
		ctxBegin, ctxEnd := ctxPeriod(ctx)
		tr.addContextFilters(out.Main, dim, ctxBegin, ctxEnd)
	}
	// Inner sequenced statements inside routines would need their own
	// sequenced rewrite; plain SPJ ones are rewritten, others rejected.
	for _, rn := range a.routines {
		if a.modifierIn[rn] {
			routines, err := tr.nonseqRoutines(a, rn)
			if err != nil {
				return nil, err
			}
			out.Routines = append(out.Routines, routines...)
			renameCalls(out.Main, a, "nonseq_", func(name string) bool { return a.modifierIn[name] })
		}
	}
	return out, nil
}
