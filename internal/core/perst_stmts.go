package core

import (
	"fmt"
	"strings"

	"taupsm/internal/sqlast"
	"taupsm/internal/types"
)

// Statement-by-statement transformation of a routine body under
// per-statement slicing (paper §VI-B, §VI-C).

func (st *psState) transformCompound(c *sqlast.CompoundStmt, env psEnv) (*sqlast.CompoundStmt, error) {
	out := &sqlast.CompoundStmt{Label: c.Label, Atomic: c.Atomic}

	// Declarations: time-varying variables become table-valued, and
	// DEFAULT values become rows valid over the whole period.
	// Collection-typed variables gain period fields.
	var initStmts []sqlast.Stmt
	for _, d := range c.VarDecls {
		if d.Type.IsCollection() {
			ext := d.Type
			ext.Row = append(append([]sqlast.ColumnDef{}, ext.Row...),
				sqlast.ColumnDef{Name: "begin_time", Type: sqlast.TypeName{Base: "DATE"}},
				sqlast.ColumnDef{Name: "end_time", Type: sqlast.TypeName{Base: "DATE"}})
			out.VarDecls = append(out.VarDecls, &sqlast.VarDecl{
				Names: append([]string{}, d.Names...), Type: ext})
			continue
		}
		var plain, varying []string
		for _, nm := range d.Names {
			if st.tv[strings.ToLower(nm)] {
				varying = append(varying, nm)
			} else {
				plain = append(plain, nm)
			}
		}
		if len(plain) > 0 {
			out.VarDecls = append(out.VarDecls, &sqlast.VarDecl{
				Names: plain, Type: d.Type, Default: sqlast.CloneExpr(d.Default)})
		}
		for _, nm := range varying {
			out.VarDecls = append(out.VarDecls, &sqlast.VarDecl{
				Names: []string{nm}, Type: psCollectionType(d.Type)})
			if d.Default != nil {
				initStmts = append(initStmts, &sqlast.InsertStmt{
					Table: nm, VarTarget: true,
					Cols: []string{"taupsm_result", "begin_time", "end_time"},
					Source: &sqlast.ValuesExpr{Rows: [][]sqlast.Expr{{
						sqlast.CloneExpr(d.Default),
						sqlast.CloneExpr(env.pBegin), sqlast.CloneExpr(env.pEnd),
					}}}})
			}
		}
	}
	out.Stmts = append(out.Stmts, initStmts...)

	// Cursors over temporal queries are rewritten to sequenced form.
	for _, cd := range c.Cursors {
		q := sqlast.CloneStmt(cd.Query)
		if st.nodeTemporal(q) {
			sel, ok := q.(*sqlast.SelectStmt)
			if !ok {
				return nil, fmt.Errorf("%w: temporal cursor %s requires a plain SELECT", ErrNotTransformable, cd.Name)
			}
			if err := st.rewriteRoutineSelect(sel, env); err != nil {
				return nil, err
			}
			q = sel
		}
		out.Cursors = append(out.Cursors, &sqlast.CursorDecl{Name: cd.Name, Query: q})
	}

	// Handlers: actions transformed.
	for _, h := range c.Handlers {
		action, err := st.transformStmt(h.Action, env)
		if err != nil {
			return nil, err
		}
		if len(action) != 1 {
			action = []sqlast.Stmt{&sqlast.CompoundStmt{Stmts: action}}
		}
		out.Handlers = append(out.Handlers, &sqlast.HandlerDecl{Kind: h.Kind, Condition: h.Condition, Action: action[0]})
	}

	savedPending := st.pendingDecls
	st.pendingDecls = nil
	for _, s := range c.Stmts {
		ts, err := st.transformStmt(s, env)
		if err != nil {
			return nil, err
		}
		out.Stmts = append(out.Stmts, ts...)
	}
	out.VarDecls = append(out.VarDecls, st.pendingDecls...)
	st.pendingDecls = savedPending
	return out, nil
}

func (st *psState) transformStmts(stmts []sqlast.Stmt, env psEnv) ([]sqlast.Stmt, error) {
	var out []sqlast.Stmt
	for _, s := range stmts {
		// A FETCH from a temporal cursor re-scopes the evaluation
		// period of the following statements in this list to the
		// fetched row's period (per-period processing, §VI-C).
		if f, ok := s.(*sqlast.FetchStmt); ok {
			ts, newEnv, err := st.transformFetch(f, env)
			if err != nil {
				return nil, err
			}
			out = append(out, ts...)
			if newEnv != nil {
				env = *newEnv
			}
			continue
		}
		ts, err := st.transformStmt(s, env)
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
	return out, nil
}

func (st *psState) transformStmt(s sqlast.Stmt, env psEnv) ([]sqlast.Stmt, error) {
	switch x := s.(type) {
	case *sqlast.CompoundStmt:
		c, err := st.transformCompound(x, env)
		if err != nil {
			return nil, err
		}
		return []sqlast.Stmt{c}, nil

	case *sqlast.SetStmt:
		return st.transformSet(x, env)

	case *sqlast.ReturnStmt:
		return st.transformReturn(x, env)

	case *sqlast.IfStmt:
		if st.exprTemporal(x.Cond) {
			return nil, fmt.Errorf("%w: IF over a time-varying condition", ErrNotTransformable)
		}
		ni := &sqlast.IfStmt{Cond: sqlast.CloneExpr(x.Cond)}
		var err error
		if ni.Then, err = st.transformStmts(x.Then, env); err != nil {
			return nil, err
		}
		for _, ei := range x.ElseIfs {
			if st.exprTemporal(ei.Cond) {
				return nil, fmt.Errorf("%w: ELSEIF over a time-varying condition", ErrNotTransformable)
			}
			body, err := st.transformStmts(ei.Then, env)
			if err != nil {
				return nil, err
			}
			ni.ElseIfs = append(ni.ElseIfs, sqlast.ElseIf{Cond: sqlast.CloneExpr(ei.Cond), Then: body})
		}
		if x.Else != nil {
			if ni.Else, err = st.transformStmts(x.Else, env); err != nil {
				return nil, err
			}
		}
		return []sqlast.Stmt{ni}, nil

	case *sqlast.CaseStmt:
		if st.exprTemporal(x.Operand) {
			return nil, fmt.Errorf("%w: CASE over a time-varying operand", ErrNotTransformable)
		}
		nc := &sqlast.CaseStmt{Operand: sqlast.CloneExpr(x.Operand)}
		for _, w := range x.Whens {
			if st.exprTemporal(w.When) {
				return nil, fmt.Errorf("%w: CASE WHEN over a time-varying condition", ErrNotTransformable)
			}
			body, err := st.transformStmts(w.Then, env)
			if err != nil {
				return nil, err
			}
			nc.Whens = append(nc.Whens, sqlast.CaseWhenStmt{When: sqlast.CloneExpr(w.When), Then: body})
		}
		if x.Else != nil {
			var err error
			if nc.Else, err = st.transformStmts(x.Else, env); err != nil {
				return nil, err
			}
		}
		return []sqlast.Stmt{nc}, nil

	case *sqlast.WhileStmt:
		if st.exprTemporal(x.Cond) {
			return nil, fmt.Errorf("%w: WHILE over a time-varying condition", ErrNotTransformable)
		}
		body, err := st.transformStmts(x.Body, env)
		if err != nil {
			return nil, err
		}
		return []sqlast.Stmt{&sqlast.WhileStmt{Label: x.Label, Cond: sqlast.CloneExpr(x.Cond), Body: body}}, nil

	case *sqlast.RepeatStmt:
		if st.exprTemporal(x.Until) {
			return nil, fmt.Errorf("%w: REPEAT over a time-varying condition", ErrNotTransformable)
		}
		body, err := st.transformStmts(x.Body, env)
		if err != nil {
			return nil, err
		}
		return []sqlast.Stmt{&sqlast.RepeatStmt{Label: x.Label, Body: body, Until: sqlast.CloneExpr(x.Until)}}, nil

	case *sqlast.LoopStmt:
		body, err := st.transformStmts(x.Body, env)
		if err != nil {
			return nil, err
		}
		return []sqlast.Stmt{&sqlast.LoopStmt{Label: x.Label, Body: body}}, nil

	case *sqlast.ForStmt:
		return st.transformFor(x, env)

	case *sqlast.FetchStmt:
		ts, _, err := st.transformFetch(x, env)
		return ts, err

	case *sqlast.OpenStmt, *sqlast.CloseStmt, *sqlast.LeaveStmt, *sqlast.IterateStmt, *sqlast.SignalStmt:
		return []sqlast.Stmt{sqlast.CloneStmt(s)}, nil

	case *sqlast.CallStmt:
		nc := sqlast.CloneStmt(x).(*sqlast.CallStmt)
		if st.a.temporalRoutine(nc.Name) {
			nc.Name = "ps_" + nc.Name
			nc.Args = append(nc.Args, sqlast.CloneExpr(env.pBegin), sqlast.CloneExpr(env.pEnd))
		}
		return []sqlast.Stmt{nc}, nil

	case *sqlast.CreateTableStmt:
		nt := sqlast.CloneStmt(x).(*sqlast.CreateTableStmt)
		if st.localTemporal[strings.ToLower(nt.Name)] {
			nt.Cols = append(nt.Cols,
				sqlast.ColumnDef{Name: "begin_time", Type: sqlast.TypeName{Base: "DATE"}},
				sqlast.ColumnDef{Name: "end_time", Type: sqlast.TypeName{Base: "DATE"}})
		}
		return []sqlast.Stmt{nt}, nil

	case *sqlast.DropTableStmt:
		return []sqlast.Stmt{sqlast.CloneStmt(s)}, nil

	case *sqlast.InsertStmt:
		return st.transformInsert(x, env)

	case *sqlast.DeleteStmt, *sqlast.UpdateStmt:
		tbl := ""
		if d, ok := x.(*sqlast.DeleteStmt); ok {
			tbl = d.Table
		} else {
			tbl = x.(*sqlast.UpdateStmt).Table
		}
		if st.tr.Info.IsTemporalTable(tbl) || st.localTemporal[strings.ToLower(tbl)] {
			return nil, fmt.Errorf("%w: modification of temporal table %s inside a sequenced routine", ErrNotTransformable, tbl)
		}
		return []sqlast.Stmt{sqlast.CloneStmt(s)}, nil

	case *sqlast.SelectStmt:
		sel := sqlast.CloneStmt(x).(*sqlast.SelectStmt)
		if st.nodeTemporal(sel) {
			if err := st.rewriteRoutineSelect(sel, env); err != nil {
				return nil, err
			}
		}
		return []sqlast.Stmt{sel}, nil

	case *sqlast.TemporalStmt:
		return nil, ErrSequencedModifierInRoutine
	}
	return nil, fmt.Errorf("%w: unsupported statement %T", ErrNotTransformable, s)
}

// ---------- queries inside the routine ----------

// rewriteRoutineSelect rewrites a SELECT inside the routine body to its
// sequenced equivalent over env's period: time-varying variable
// references become joins against the variables' tables, then the
// standard sequenced rewrite applies.
func (st *psState) rewriteRoutineSelect(sel *sqlast.SelectStmt, env psEnv) error {
	sc := &seqCtx{a: st.a, pBegin: env.pBegin, pEnd: env.pEnd,
		localTemporal: map[string]bool{}, lateralCounter: &st.lateralCounter}
	for k, temporal := range st.localTemporal {
		if temporal {
			sc.localTemporal[k] = true
		}
	}
	st.bindVarRefs(sel, sc)
	return st.tr.rewriteSequencedSelect(sel, sc)
}

// bindVarRefs replaces unqualified references to time-varying variables
// with references to joined variable tables. Column names of the FROM
// tables shadow variables, per SQL scoping.
func (st *psState) bindVarRefs(sel *sqlast.SelectStmt, sc *seqCtx) {
	shadowed := map[string]bool{}
	for _, fe := range fromEntries(sel) {
		for _, c := range st.tr.tableColumns(fe.Name) {
			shadowed[strings.ToLower(c)] = true
		}
	}
	joined := map[string]string{} // var name -> alias
	sqlast.MapExprs(sel, func(e sqlast.Expr) sqlast.Expr {
		cr, ok := e.(*sqlast.ColumnRef)
		if !ok || cr.Table != "" {
			return e
		}
		k := strings.ToLower(cr.Column)
		if !st.tv[k] || shadowed[k] {
			return e
		}
		alias, ok := joined[k]
		if !ok {
			alias = sc.freshAlias()
			joined[k] = alias
			sel.From = append(sel.From, &sqlast.BaseTable{Name: cr.Column, Alias: alias})
			sc.localTemporal[k] = true
		}
		return &sqlast.ColumnRef{Table: alias, Column: "taupsm_result"}
	})
	// Mark the joined variable tables temporal by their FROM names so
	// the sequenced rewrite picks them up as operands.
	for k := range joined {
		sc.localTemporal[k] = true
	}
}

// ---------- assignments ----------

// sequencedVarDelete emits the conventional three-statement sequenced
// delete on a table-valued variable over [p1, p2): insert the left and
// right remnants of straddling rows, then delete everything overlapping.
func sequencedVarDelete(name string, cols []string, p1, p2 sqlast.Expr) []sqlast.Stmt {
	items := func(beginExpr, endExpr sqlast.Expr) []sqlast.SelectItem {
		var out []sqlast.SelectItem
		for _, c := range cols {
			out = append(out, sqlast.SelectItem{Expr: col("", c)})
		}
		out = append(out,
			sqlast.SelectItem{Expr: beginExpr},
			sqlast.SelectItem{Expr: endExpr})
		return out
	}
	from := []sqlast.TableRef{&sqlast.BaseTable{Name: name}}
	return []sqlast.Stmt{
		// left remnant [begin_time, p1)
		&sqlast.InsertStmt{Table: name, VarTarget: true, Source: &sqlast.SelectStmt{
			Items: items(col("", "begin_time"), sqlast.CloneExpr(p1)),
			From:  from,
			Where: andExpr(
				&sqlast.BinaryExpr{Op: "<", L: col("", "begin_time"), R: sqlast.CloneExpr(p1)},
				&sqlast.BinaryExpr{Op: ">", L: col("", "end_time"), R: sqlast.CloneExpr(p1)}),
		}},
		// right remnant [p2, end_time)
		&sqlast.InsertStmt{Table: name, VarTarget: true, Source: &sqlast.SelectStmt{
			Items: items(sqlast.CloneExpr(p2), col("", "end_time")),
			From:  []sqlast.TableRef{&sqlast.BaseTable{Name: name}},
			Where: andExpr(
				&sqlast.BinaryExpr{Op: "<", L: col("", "begin_time"), R: sqlast.CloneExpr(p2)},
				&sqlast.BinaryExpr{Op: ">", L: col("", "end_time"), R: sqlast.CloneExpr(p2)}),
		}},
		// delete the overlapping originals (remnants don't overlap)
		&sqlast.DeleteStmt{Table: name, VarTarget: true, Where: andExpr(
			&sqlast.BinaryExpr{Op: "<", L: col("", "begin_time"), R: sqlast.CloneExpr(p2)},
			&sqlast.BinaryExpr{Op: ">", L: col("", "end_time"), R: sqlast.CloneExpr(p1)})},
	}
}

// transformSet implements ps[[SET target = value]] (§VI-B): a sequenced
// delete of the target's period followed by a sequenced insert of the
// value expression.
func (st *psState) transformSet(x *sqlast.SetStmt, env psEnv) ([]sqlast.Stmt, error) {
	k := strings.ToLower(x.Target)
	if !st.tv[k] {
		// Non-time-varying assignment stays as written.
		return []sqlast.Stmt{sqlast.CloneStmt(x)}, nil
	}
	needDelete := st.assignCount[k] > 1 || st.hasDefault[k]

	// A self-referencing assignment (SET n = n + 1) must read the old
	// rows before the sequenced delete removes them: stage the new
	// rows in a scratch collection first.
	if needDelete && referencesVar(x.Value, x.Target) {
		scratch := st.freshAux("set")
		ty := st.varTypes[k]
		st.pendingDecls = append(st.pendingDecls, &sqlast.VarDecl{
			Names: []string{scratch}, Type: psCollectionType(ty)})
		ins, err := st.sequencedValueInsert(scratch, x.Value, env)
		if err != nil {
			return nil, err
		}
		out := []sqlast.Stmt{ins}
		out = append(out, sequencedVarDelete(x.Target, []string{"taupsm_result"}, env.pBegin, env.pEnd)...)
		out = append(out,
			&sqlast.InsertStmt{Table: x.Target, VarTarget: true,
				Cols: []string{"taupsm_result", "begin_time", "end_time"},
				Source: &sqlast.SelectStmt{
					Items: []sqlast.SelectItem{
						{Expr: col("", "taupsm_result")},
						{Expr: col("", "begin_time")},
						{Expr: col("", "end_time")},
					},
					From: []sqlast.TableRef{&sqlast.BaseTable{Name: scratch}},
				}},
			&sqlast.DeleteStmt{Table: scratch, VarTarget: true})
		return out, nil
	}

	var out []sqlast.Stmt
	// First-assignment optimization (§VI-B): skip the delete when this
	// is the variable's only assignment and it has no DEFAULT rows.
	if needDelete {
		out = append(out, sequencedVarDelete(x.Target, []string{"taupsm_result"}, env.pBegin, env.pEnd)...)
	}
	ins, err := st.sequencedValueInsert(x.Target, x.Value, env)
	if err != nil {
		return nil, err
	}
	return append(out, ins), nil
}

// referencesVar reports whether e contains an unqualified reference to
// the named variable.
func referencesVar(e sqlast.Expr, name string) bool {
	found := false
	sqlast.Walk(e, func(n sqlast.Node) bool {
		if cr, ok := n.(*sqlast.ColumnRef); ok && cr.Table == "" && strings.EqualFold(cr.Column, name) {
			found = true
		}
		return !found
	})
	return found
}

// sequencedValueInsert builds INSERT INTO TABLE target <sequenced value
// expression> for a scalar value expression evaluated over env's
// period.
func (st *psState) sequencedValueInsert(target string, value sqlast.Expr, env psEnv) (sqlast.Stmt, error) {
	cols := []string{"begin_time", "end_time", "taupsm_result"}
	// Scalar subquery: the paradigmatic case (Figure 11).
	if sub, ok := value.(*sqlast.SubqueryExpr); ok {
		sel, ok2 := sub.Query.(*sqlast.SelectStmt)
		if !ok2 {
			return nil, fmt.Errorf("%w: assignment from a set-operation subquery", ErrNotTransformable)
		}
		if len(sel.Items) != 1 {
			return nil, fmt.Errorf("assignment subquery must return one column")
		}
		sel = sqlast.CloneStmt(sel).(*sqlast.SelectStmt)
		if err := st.rewriteRoutineSelect(sel, env); err != nil {
			return nil, err
		}
		return &sqlast.InsertStmt{Table: target, VarTarget: true, Cols: cols, Source: sel}, nil
	}
	if !st.exprTemporal(value) {
		// Constant over the whole period: a single timestamped tuple.
		return &sqlast.InsertStmt{Table: target, VarTarget: true,
			Cols: []string{"taupsm_result", "begin_time", "end_time"},
			Source: &sqlast.ValuesExpr{Rows: [][]sqlast.Expr{{
				sqlast.CloneExpr(value), sqlast.CloneExpr(env.pBegin), sqlast.CloneExpr(env.pEnd),
			}}}}, nil
	}
	// General time-varying expression: join the periods of every
	// time-varying operand (variables become their tables; temporal
	// function calls become lateral TABLE refs) — the per-statement
	// slicing happens through this join.
	sel := &sqlast.SelectStmt{Items: []sqlast.SelectItem{{Expr: sqlast.CloneExpr(value)}}}
	if err := st.rewriteRoutineSelect(sel, env); err != nil {
		return nil, err
	}
	return &sqlast.InsertStmt{Table: target, VarTarget: true, Cols: cols, Source: sel}, nil
}

// transformReturn implements ps[[RETURN value]] (§VI-B): insert the
// sequenced value into the return collection, then return it.
func (st *psState) transformReturn(x *sqlast.ReturnStmt, env psEnv) ([]sqlast.Stmt, error) {
	if x.Value == nil {
		return []sqlast.Stmt{&sqlast.ReturnStmt{}}, nil
	}
	// Returning a collection variable directly.
	if cr, ok := x.Value.(*sqlast.ColumnRef); ok && cr.Table == "" {
		k := strings.ToLower(cr.Column)
		if ty, ok2 := st.varTypes[k]; ok2 && ty.IsCollection() {
			return []sqlast.Stmt{&sqlast.ReturnStmt{Value: sqlast.CloneExpr(x.Value)}}, nil
		}
	}
	ins, err := st.sequencedValueInsert(returnVar, x.Value, env)
	if err != nil {
		return nil, err
	}
	return []sqlast.Stmt{ins, &sqlast.ReturnStmt{Value: &sqlast.ColumnRef{Column: returnVar}}}, nil
}

// ---------- per-period iteration ----------

// transformFor slices a FOR loop over a temporal query: the query is
// rewritten sequenced (gaining begin_time/end_time), and the body
// executes once per row with the row's period as its evaluation period.
func (st *psState) transformFor(x *sqlast.ForStmt, env psEnv) ([]sqlast.Stmt, error) {
	q := sqlast.CloneStmt(x.Query)
	if !st.nodeTemporal(q) {
		body, err := st.transformStmts(x.Body, env)
		if err != nil {
			return nil, err
		}
		return []sqlast.Stmt{&sqlast.ForStmt{Label: x.Label, LoopVar: x.LoopVar, Cursor: x.Cursor, Query: q, Body: body}}, nil
	}
	sel, ok := q.(*sqlast.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("%w: temporal FOR loop requires a plain SELECT", ErrNotTransformable)
	}
	if err := st.rewriteRoutineSelect(sel, env); err != nil {
		return nil, err
	}
	st.usesPPC = true
	inner := psEnv{
		pBegin:         col(x.LoopVar, "begin_time"),
		pEnd:           col(x.LoopVar, "end_time"),
		inTemporalLoop: true,
	}
	body, err := st.transformStmts(x.Body, inner)
	if err != nil {
		return nil, err
	}
	return []sqlast.Stmt{&sqlast.ForStmt{Label: x.Label, LoopVar: x.LoopVar, Cursor: x.Cursor, Query: sel, Body: body}}, nil
}

// transformFetch slices a FETCH from a temporal cursor: the rewritten
// cursor yields (begin_time, end_time, values...); the fetched values
// are stored into the time-varying variables for exactly the fetched
// period via auxiliary scalars. A FETCH of a temporal cursor inside a
// loop introduced over temporal results is the paper's *non-nested
// FETCH* (τPSM q17b) and cannot be transformed.
func (st *psState) transformFetch(x *sqlast.FetchStmt, env psEnv) ([]sqlast.Stmt, *psEnv, error) {
	q := st.cursorQueries[strings.ToLower(x.Cursor)]
	if q == nil || !st.nodeTemporal(q) {
		return []sqlast.Stmt{sqlast.CloneStmt(x)}, nil, nil
	}
	if env.inTemporalLoop {
		return nil, nil, fmt.Errorf("%w: non-nested FETCH of cursor %s inside per-period iteration", ErrNotTransformable, x.Cursor)
	}
	st.usesPPC = true

	bt := st.freshAux("bt")
	et := st.freshAux("et")
	st.pendingDecls = append(st.pendingDecls,
		&sqlast.VarDecl{Names: []string{bt, et}, Type: sqlast.TypeName{Base: "DATE"},
			Default: &sqlast.Literal{Val: types.Null}})

	into := []string{bt, et}
	var stores []sqlast.Stmt
	period := psEnv{pBegin: &sqlast.ColumnRef{Column: bt}, pEnd: &sqlast.ColumnRef{Column: et}}
	for _, v := range x.Into {
		k := strings.ToLower(v)
		if !st.tv[k] {
			into = append(into, v)
			continue
		}
		aux := st.freshAux("v")
		ty, ok := st.varTypes[k]
		if !ok {
			ty = sqlast.TypeName{Base: "VARCHAR", Length: 255}
		}
		st.pendingDecls = append(st.pendingDecls, &sqlast.VarDecl{Names: []string{aux}, Type: ty})
		into = append(into, aux)
		stores = append(stores, sequencedVarDelete(v, []string{"taupsm_result"}, period.pBegin, period.pEnd)...)
		stores = append(stores, &sqlast.InsertStmt{Table: v, VarTarget: true,
			Cols: []string{"taupsm_result", "begin_time", "end_time"},
			Source: &sqlast.ValuesExpr{Rows: [][]sqlast.Expr{{
				&sqlast.ColumnRef{Column: aux},
				&sqlast.ColumnRef{Column: bt},
				&sqlast.ColumnRef{Column: et},
			}}}})
	}
	out := []sqlast.Stmt{&sqlast.FetchStmt{Cursor: x.Cursor, Into: into}}
	if len(stores) > 0 {
		// Guard the stores so a failed FETCH (NOT FOUND) doesn't store
		// a stale period: the auxiliary timestamps stay NULL initially
		// and are only non-NULL after a successful fetch.
		out = append(out, &sqlast.IfStmt{
			Cond: &sqlast.IsNullExpr{X: &sqlast.ColumnRef{Column: bt}, Not: true},
			Then: stores,
		})
	}
	return out, &period, nil
}

// transformInsert slices an INSERT inside the routine body: inserts
// into locally created temporal temp tables gain the period columns;
// other inserts keep their shape with sequenced sources.
func (st *psState) transformInsert(x *sqlast.InsertStmt, env psEnv) ([]sqlast.Stmt, error) {
	ni := sqlast.CloneStmt(x).(*sqlast.InsertStmt)
	k := strings.ToLower(ni.Table)
	if st.tr.Info.IsTemporalTable(ni.Table) {
		return nil, fmt.Errorf("%w: modification of temporal table %s inside a sequenced routine", ErrNotTransformable, ni.Table)
	}
	targetTemporal := st.localTemporal[k] || (ni.VarTarget && st.tv[k])
	srcTemporal := st.nodeTemporal(ni.Source)

	if srcTemporal {
		sel, ok := ni.Source.(*sqlast.SelectStmt)
		if !ok {
			return nil, fmt.Errorf("%w: temporal INSERT source must be a plain SELECT", ErrNotTransformable)
		}
		if err := st.rewriteRoutineSelect(sel, env); err != nil {
			return nil, err
		}
		// The rewritten select prepends begin_time/end_time; map the
		// columns explicitly since target schemas place the period
		// columns last.
		if len(ni.Cols) > 0 {
			ni.Cols = append([]string{"begin_time", "end_time"}, ni.Cols...)
		} else if ty, ok := st.varTypes[k]; ok && ty.IsCollection() {
			cols := []string{"begin_time", "end_time"}
			for _, f := range ty.Row {
				cols = append(cols, f.Name)
			}
			ni.Cols = cols
		} else if lc, ok := st.localTables[k]; ok {
			ni.Cols = append([]string{"begin_time", "end_time"}, lc...)
		} else if ni.VarTarget {
			ni.Cols = []string{"begin_time", "end_time", "taupsm_result"}
		}
		if !targetTemporal && !ni.VarTarget {
			return nil, fmt.Errorf("%w: temporal data inserted into snapshot table %s", ErrNotTransformable, ni.Table)
		}
		return []sqlast.Stmt{ni}, nil
	}
	if targetTemporal {
		// Snapshot data into a temporal target: valid over the period.
		switch src := ni.Source.(type) {
		case *sqlast.ValuesExpr:
			for i := range src.Rows {
				src.Rows[i] = append(src.Rows[i], sqlast.CloneExpr(env.pBegin), sqlast.CloneExpr(env.pEnd))
			}
		case *sqlast.SelectStmt:
			src.Items = append(src.Items,
				sqlast.SelectItem{Expr: sqlast.CloneExpr(env.pBegin), Alias: "begin_time"},
				sqlast.SelectItem{Expr: sqlast.CloneExpr(env.pEnd), Alias: "end_time"})
		default:
			return nil, fmt.Errorf("%w: unsupported INSERT source", ErrNotTransformable)
		}
		if len(ni.Cols) > 0 {
			ni.Cols = append(ni.Cols, "begin_time", "end_time")
		}
	}
	return []sqlast.Stmt{ni}, nil
}
